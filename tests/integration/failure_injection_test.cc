// Failure injection: corrupt inputs (NaN/Inf cells, degenerate columns,
// hostile CSVs) must surface as clean Status errors or finite outputs —
// never hangs, crashes, or silent garbage.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/attack_suite.h"
#include "core/be_dr.h"
#include "core/pca_dr.h"
#include "data/csv.h"
#include "data/synthetic.h"
#include "linalg/cholesky.h"
#include "linalg/eigen.h"
#include "linalg/lu.h"
#include "perturb/schemes.h"

namespace randrecon {
namespace {

using linalg::Matrix;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

Matrix CorruptedDisguisedData(double poison) {
  stats::Rng rng(501);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = data::TwoLevelSpectrum(6, 2, 50.0, 1.0);
  auto synthetic = data::GenerateSpectrumDataset(spec, 200, &rng);
  EXPECT_TRUE(synthetic.ok());
  auto scheme = perturb::IndependentNoiseScheme::Gaussian(6, 3.0);
  auto disguised = scheme.Disguise(synthetic.value().dataset, &rng);
  EXPECT_TRUE(disguised.ok());
  Matrix y = disguised.value().records();
  y(10, 3) = poison;
  return y;
}

TEST(FailureInjectionTest, EigenSolverRejectsNanMatrixCleanly) {
  Matrix a = Matrix::Identity(4);
  a(1, 2) = kNan;
  a(2, 1) = kNan;
  auto eig = linalg::SymmetricEigen(a);
  EXPECT_FALSE(eig.ok());
  // Must terminate (no hang) with a status, whatever the category.
}

TEST(FailureInjectionTest, CholeskyRejectsNanAndInf) {
  Matrix a{{1.0, 0.0}, {0.0, kNan}};
  EXPECT_FALSE(linalg::CholeskyFactorization::Compute(a).ok());
  Matrix b{{kInf, 0.0}, {0.0, 1.0}};
  EXPECT_FALSE(linalg::CholeskyFactorization::Compute(b).ok());
}

TEST(FailureInjectionTest, LuRejectsNan) {
  Matrix a{{kNan, 1.0}, {1.0, 2.0}};
  auto lu = linalg::LuFactorization::Compute(a);
  // Either the factorization fails, or the solve yields non-finite
  // values that the caller can detect; it must not crash.
  if (lu.ok()) {
    const auto x = lu.value().Solve(linalg::Vector{1.0, 1.0});
    EXPECT_FALSE(std::isfinite(x[0]) && std::isfinite(x[1]));
  }
}

TEST(FailureInjectionTest, PcaDrFailsCleanlyOnNanCell) {
  const Matrix y = CorruptedDisguisedData(kNan);
  core::PcaReconstructor pca;
  auto result =
      pca.Reconstruct(y, perturb::NoiseModel::IndependentGaussian(6, 3.0));
  // A NaN cell poisons the covariance; the eigensolver must report
  // non-convergence rather than looping forever.
  EXPECT_FALSE(result.ok());
}

TEST(FailureInjectionTest, BeDrFailsCleanlyOnNanCell) {
  const Matrix y = CorruptedDisguisedData(kNan);
  core::BayesEstimateReconstructor be;
  auto result =
      be.Reconstruct(y, perturb::NoiseModel::IndependentGaussian(6, 3.0));
  EXPECT_FALSE(result.ok());
}

TEST(FailureInjectionTest, AttackSuiteSurfacesFirstFailure) {
  const Matrix y = CorruptedDisguisedData(kNan);
  auto reports = core::AttackSuite::PaperSuite().RunAll(
      Matrix(y.rows(), y.cols()), y,
      perturb::NoiseModel::IndependentGaussian(6, 3.0));
  EXPECT_FALSE(reports.ok());
}

TEST(FailureInjectionTest, InfCellDoesNotHangAttacks) {
  const Matrix y = CorruptedDisguisedData(kInf);
  core::PcaReconstructor pca;
  auto result =
      pca.Reconstruct(y, perturb::NoiseModel::IndependentGaussian(6, 3.0));
  // Inf overflows the covariance to inf/NaN; must fail, not hang.
  EXPECT_FALSE(result.ok());
}

TEST(FailureInjectionTest, ZeroVarianceColumnSurvivesPipeline) {
  // A constant attribute (zero variance) is legal input: the estimated
  // covariance is singular in that direction; the default (gain-form)
  // attacks must handle it.
  stats::Rng rng(502);
  Matrix y(300, 3);
  for (size_t i = 0; i < 300; ++i) {
    y(i, 0) = rng.Gaussian(0.0, 5.0);
    y(i, 1) = 42.0;  // Constant column.
    y(i, 2) = y(i, 0) * 0.5 + rng.Gaussian(0.0, 1.0);
  }
  const perturb::NoiseModel noise =
      perturb::NoiseModel::IndependentGaussian(3, 1.0);
  core::BayesEstimateReconstructor be;
  auto be_hat = be.Reconstruct(y, noise);
  ASSERT_TRUE(be_hat.ok()) << be_hat.status().ToString();
  for (size_t i = 0; i < 300; ++i) {
    EXPECT_TRUE(std::isfinite(be_hat.value()(i, 1)));
  }
  core::PcaReconstructor pca;
  EXPECT_TRUE(pca.Reconstruct(y, noise).ok());
}

TEST(FailureInjectionTest, DuplicatedColumnsSurvivePipeline) {
  // Perfectly collinear attributes -> exactly singular covariance.
  stats::Rng rng(503);
  Matrix y(400, 4);
  for (size_t i = 0; i < 400; ++i) {
    const double v = rng.Gaussian(0.0, 10.0);
    y(i, 0) = v;
    y(i, 1) = v;  // Exact duplicate.
    y(i, 2) = -v;
    y(i, 3) = rng.Gaussian(0.0, 10.0);
  }
  const perturb::NoiseModel noise =
      perturb::NoiseModel::IndependentGaussian(4, 2.0);
  EXPECT_TRUE(core::BayesEstimateReconstructor().Reconstruct(y, noise).ok());
  EXPECT_TRUE(core::PcaReconstructor().Reconstruct(y, noise).ok());
}

TEST(FailureInjectionTest, CsvWithNanTokenIsHandled) {
  // from_chars accepts "nan": the dataset loads, and the attacks then
  // fail with a clean status rather than crashing.
  auto parsed = data::FromCsvString("a,b\n1.0,nan\n2.0,3.0\n");
  if (parsed.ok()) {
    core::PcaReconstructor pca;
    auto result = pca.Reconstruct(
        parsed.value().records(),
        perturb::NoiseModel::IndependentGaussian(2, 1.0));
    EXPECT_FALSE(result.ok());
  }
}

TEST(FailureInjectionTest, HugeMagnitudeCellsDoNotCrash) {
  Matrix y = CorruptedDisguisedData(1e150);
  core::PcaReconstructor pca;
  auto result =
      pca.Reconstruct(y, perturb::NoiseModel::IndependentGaussian(6, 3.0));
  // 1e150 squares to 1e300 in the covariance — still finite, so the
  // pipeline may legitimately succeed; it must not crash, and any
  // output must be finite where computed.
  if (result.ok()) {
    EXPECT_TRUE(std::isfinite(result.value()(0, 0)));
  }
}

TEST(FailureInjectionTest, SingleRecordDatasetRejected) {
  Matrix y(1, 3);
  auto moments = core::EstimateOriginalMoments(
      y, perturb::NoiseModel::IndependentGaussian(3, 1.0));
  EXPECT_FALSE(moments.ok());
  EXPECT_EQ(moments.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace randrecon
