// Full-pipeline integration tests: generate -> disguise -> (CSV round
// trip) -> attack -> evaluate, exercising the same flow as the examples.

#include <cstdio>

#include <gtest/gtest.h>

#include "core/attack_suite.h"
#include "core/be_dr.h"
#include "data/csv.h"
#include "data/realistic.h"
#include "data/synthetic.h"
#include "linalg/matrix_util.h"
#include "perturb/schemes.h"
#include "stats/dissimilarity.h"
#include "stats/moments.h"

namespace randrecon {
namespace {

using linalg::Matrix;

TEST(EndToEndTest, SyntheticPipelineThroughCsv) {
  // The adversary's realistic position: they receive the disguised table
  // as a *file*, not in memory.
  stats::Rng rng(171);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = data::TwoLevelSpectrum(12, 2, 300.0, 1.0);
  auto synthetic = data::GenerateSpectrumDataset(spec, 800, &rng);
  ASSERT_TRUE(synthetic.ok());
  auto scheme = perturb::IndependentNoiseScheme::Gaussian(12, 5.0);
  auto disguised = scheme.Disguise(synthetic.value().dataset, &rng);
  ASSERT_TRUE(disguised.ok());

  const std::string path = ::testing::TempDir() + "/disguised.csv";
  ASSERT_TRUE(data::WriteCsv(disguised.value(), path).ok());
  auto loaded = data::ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  std::remove(path.c_str());

  core::AttackSuite suite = core::AttackSuite::PaperSuite();
  auto reports = suite.RunAll(synthetic.value().dataset, loaded.value(),
                              scheme.noise_model());
  ASSERT_TRUE(reports.ok()) << reports.status().ToString();
  // BE-DR must break most of the privacy on this strongly correlated
  // table: RMSE well under the noise floor of 5.
  for (const auto& report : reports.value()) {
    if (report.attack_name == "BE-DR") {
      EXPECT_LT(report.rmse, 2.8);
      EXPECT_GT(report.fraction_within_epsilon, 0.5);
    }
  }
}

TEST(EndToEndTest, MedicalRecordsAttackLeaksSensitiveColumns) {
  // The §3 motivating scenario on the realistic medical table.
  stats::Rng rng(172);
  auto table = data::GenerateLatentFactorTable(data::MedicalRecordsSpec(),
                                               2000, &rng);
  ASSERT_TRUE(table.ok());
  // Disguise every attribute with σ = 20% of its own stddev-scale noise;
  // use a fixed sizable σ in raw units for simplicity.
  auto scheme =
      perturb::IndependentNoiseScheme::Gaussian(table.value().num_attributes(),
                                                10.0);
  auto disguised = scheme.Disguise(table.value(), &rng);
  ASSERT_TRUE(disguised.ok());

  core::BayesEstimateReconstructor be;
  auto x_hat =
      be.Reconstruct(disguised.value().records(), scheme.noise_model());
  ASSERT_TRUE(x_hat.ok());
  auto report = core::EvaluateReconstruction("BE-DR", table.value().records(),
                                             x_hat.value());
  ASSERT_TRUE(report.ok());
  // Strong factor structure: most of the 10-unit noise must be filtered
  // out on the tightly coupled vitals columns.
  auto idx = table.value().AttributeIndex("systolic_bp");
  ASSERT_TRUE(idx.ok());
  EXPECT_LT(report.value().per_attribute_rmse[idx.value()], 8.0);
}

TEST(EndToEndTest, CorrelatedNoiseDefenseRaisesReconstructionError) {
  // §8's defense, end to end: same data, same noise power, noise
  // correlation mimicking the data -> all attacks get worse.
  stats::Rng rng(173);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = data::TwoLevelSpectrum(20, 4, 480.0, 1.0);
  auto synthetic = data::GenerateSpectrumDataset(spec, 1200, &rng);
  ASSERT_TRUE(synthetic.ok());
  const double sigma2 = 25.0;
  const double trace_x = linalg::Trace(synthetic.value().covariance);
  const double scale = sigma2 * 20.0 / trace_x;  // Equal total noise power.

  auto iid = perturb::IndependentNoiseScheme::Gaussian(20, 5.0);
  auto mimic = perturb::CorrelatedGaussianScheme::MimicCovariance(
      synthetic.value().covariance, scale);
  ASSERT_TRUE(mimic.ok());

  auto disguised_iid = iid.Disguise(synthetic.value().dataset, &rng);
  auto disguised_mimic = mimic.value().Disguise(synthetic.value().dataset, &rng);
  ASSERT_TRUE(disguised_iid.ok());
  ASSERT_TRUE(disguised_mimic.ok());

  core::BayesEstimateReconstructor be;
  auto hat_iid = be.Reconstruct(disguised_iid.value().records(),
                                iid.noise_model());
  auto hat_mimic = be.Reconstruct(disguised_mimic.value().records(),
                                  mimic.value().noise_model());
  ASSERT_TRUE(hat_iid.ok());
  ASSERT_TRUE(hat_mimic.ok());
  const Matrix& x = synthetic.value().dataset.records();
  const double rmse_iid = stats::RootMeanSquareError(x, hat_iid.value());
  const double rmse_mimic = stats::RootMeanSquareError(x, hat_mimic.value());
  EXPECT_GT(rmse_mimic, 1.5 * rmse_iid);
}

TEST(EndToEndTest, DefenseKeepsAggregateDistributionRecoverable) {
  // §8.1's utility argument: under correlated noise the miner can still
  // recover Σx via Theorem 8.2 — data mining on aggregates survives.
  stats::Rng rng(174);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = data::TwoLevelSpectrum(8, 2, 80.0, 2.0);
  auto synthetic = data::GenerateSpectrumDataset(spec, 50000, &rng);
  ASSERT_TRUE(synthetic.ok());
  auto mimic = perturb::CorrelatedGaussianScheme::MimicCovariance(
      synthetic.value().covariance, 0.3);
  ASSERT_TRUE(mimic.ok());
  auto disguised = mimic.value().Disguise(synthetic.value().dataset, &rng);
  ASSERT_TRUE(disguised.ok());

  const Matrix sigma_y = stats::SampleCovariance(disguised.value().records());
  const Matrix recovered = sigma_y - mimic.value().noise_model().covariance();
  EXPECT_LT(linalg::MaxAbsDifference(recovered, synthetic.value().covariance),
            0.06 * linalg::FrobeniusNorm(synthetic.value().covariance));
}

TEST(EndToEndTest, UniformNoiseIsAlsoAttackable) {
  // The attacks only need the noise *variance* (PCA/BE) or pdf (UDR);
  // uniform perturbation is no safer.
  stats::Rng rng(175);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = data::TwoLevelSpectrum(15, 3, 400.0, 1.0);
  auto synthetic = data::GenerateSpectrumDataset(spec, 1000, &rng);
  ASSERT_TRUE(synthetic.ok());
  // Uniform noise on [-8.66, 8.66): variance = 25, same power as σ = 5.
  auto scheme = perturb::IndependentNoiseScheme::Uniform(15, 8.6602540378);
  auto disguised = scheme.Disguise(synthetic.value().dataset, &rng);
  ASSERT_TRUE(disguised.ok());

  core::BayesEstimateReconstructor be;
  auto x_hat =
      be.Reconstruct(disguised.value().records(), scheme.noise_model());
  ASSERT_TRUE(x_hat.ok());
  const double rmse = stats::RootMeanSquareError(
      synthetic.value().dataset.records(), x_hat.value());
  EXPECT_LT(rmse, 3.0);  // Noise floor is 5.
}

TEST(EndToEndTest, DissimilarityMetricSeparatesSchemes) {
  stats::Rng rng(176);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = data::TwoLevelSpectrum(10, 3, 100.0, 1.0);
  auto synthetic = data::GenerateSpectrumDataset(spec, 4000, &rng);
  ASSERT_TRUE(synthetic.ok());

  auto mimic = perturb::CorrelatedGaussianScheme::MimicCovariance(
      synthetic.value().covariance, 0.25);
  ASSERT_TRUE(mimic.ok());
  auto iid = perturb::IndependentNoiseScheme::Gaussian(10, 5.0);

  const Matrix corr_x =
      linalg::CovarianceToCorrelation(synthetic.value().covariance);
  auto dis_mimic = stats::CorrelationDissimilarity(
      corr_x,
      linalg::CovarianceToCorrelation(mimic.value().noise_model().covariance()));
  auto dis_iid = stats::CorrelationDissimilarity(
      corr_x, linalg::CovarianceToCorrelation(iid.noise_model().covariance()));
  ASSERT_TRUE(dis_mimic.ok());
  ASSERT_TRUE(dis_iid.ok());
  EXPECT_LT(dis_mimic.value(), 1e-9);
  EXPECT_GT(dis_iid.value(), 0.05);
}

}  // namespace
}  // namespace randrecon
