// Property-based sweeps over the linear-algebra substrate: the algebraic
// laws every attack silently relies on, checked on random inputs across
// shapes (TEST_P).

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/cholesky.h"
#include "linalg/eigen.h"
#include "linalg/lu.h"
#include "linalg/matrix_util.h"
#include "linalg/svd.h"
#include "linalg/vector_ops.h"
#include "stats/random_orthogonal.h"
#include "stats/rng.h"

namespace randrecon {
namespace linalg {
namespace {

class AlgebraSweep : public ::testing::TestWithParam<size_t> {
 protected:
  size_t m() const { return GetParam(); }
  stats::Rng MakeRng(uint64_t salt) const { return stats::Rng(salt * 1000 + m()); }
};

TEST_P(AlgebraSweep, MultiplicationIsAssociative) {
  stats::Rng rng = MakeRng(1);
  const Matrix a = rng.GaussianMatrix(m(), m());
  const Matrix b = rng.GaussianMatrix(m(), m());
  const Matrix c = rng.GaussianMatrix(m(), m());
  EXPECT_LT(MaxAbsDifference((a * b) * c, a * (b * c)),
            1e-9 * (1.0 + FrobeniusNorm(a) * FrobeniusNorm(b) *
                              FrobeniusNorm(c)));
}

TEST_P(AlgebraSweep, MultiplicationDistributesOverAddition) {
  stats::Rng rng = MakeRng(2);
  const Matrix a = rng.GaussianMatrix(m(), m());
  const Matrix b = rng.GaussianMatrix(m(), m());
  const Matrix c = rng.GaussianMatrix(m(), m());
  EXPECT_LT(MaxAbsDifference(a * (b + c), a * b + a * c), 1e-9 * m() * m());
}

TEST_P(AlgebraSweep, TransposeReversesProducts) {
  stats::Rng rng = MakeRng(3);
  const Matrix a = rng.GaussianMatrix(m(), m() + 2);
  const Matrix b = rng.GaussianMatrix(m() + 2, m());
  EXPECT_LT(MaxAbsDifference((a * b).Transpose(),
                             b.Transpose() * a.Transpose()),
            1e-9 * m() * m());
}

TEST_P(AlgebraSweep, TraceIsSimilarityInvariant) {
  // trace(QᵀAQ) = trace(A) for orthogonal Q — the identity behind
  // Theorem 5.2's "noise variance is evenly distributed".
  stats::Rng rng = MakeRng(4);
  const Matrix a = Symmetrize(rng.GaussianMatrix(m(), m()));
  const Matrix q = stats::RandomOrthogonalMatrix(m(), &rng);
  EXPECT_NEAR(Trace(q.Transpose() * a * q), Trace(a),
              1e-8 * (1.0 + std::fabs(Trace(a))));
}

TEST_P(AlgebraSweep, FrobeniusNormIsOrthogonallyInvariant) {
  stats::Rng rng = MakeRng(5);
  const Matrix a = rng.GaussianMatrix(m(), m());
  const Matrix q = stats::RandomOrthogonalMatrix(m(), &rng);
  EXPECT_NEAR(FrobeniusNorm(q * a), FrobeniusNorm(a),
              1e-9 * (1.0 + FrobeniusNorm(a)));
}

TEST_P(AlgebraSweep, CholeskyAndLuSolveAgreeOnSpd) {
  stats::Rng rng = MakeRng(6);
  Matrix g = rng.GaussianMatrix(m(), m());
  Matrix a = Symmetrize(g * g.Transpose());
  for (size_t i = 0; i < m(); ++i) a(i, i) += 1.0;
  const Vector b = rng.GaussianVector(m());
  auto chol = CholeskyFactorization::Compute(a);
  auto lu = LuFactorization::Compute(a);
  ASSERT_TRUE(chol.ok());
  ASSERT_TRUE(lu.ok());
  const Vector x1 = chol.value().Solve(b);
  const Vector x2 = lu.value().Solve(b);
  for (size_t i = 0; i < m(); ++i) EXPECT_NEAR(x1[i], x2[i], 1e-7);
}

TEST_P(AlgebraSweep, EigenAndSvdAgreeOnSpdSpectra) {
  // For SPD A, singular values equal eigenvalues.
  stats::Rng rng = MakeRng(7);
  Matrix g = rng.GaussianMatrix(m(), m());
  Matrix a = Symmetrize(g * g.Transpose());
  auto eig = SymmetricEigen(a);
  auto svd = ThinSvd(a);
  ASSERT_TRUE(eig.ok());
  ASSERT_TRUE(svd.ok());
  for (size_t i = 0; i < m(); ++i) {
    EXPECT_NEAR(svd.value().singular_values[i], eig.value().eigenvalues[i],
                1e-7 * (1.0 + eig.value().eigenvalues[0]));
  }
}

TEST_P(AlgebraSweep, DeterminantMultiplicative) {
  stats::Rng rng = MakeRng(8);
  Matrix a = rng.GaussianMatrix(m(), m());
  Matrix b = rng.GaussianMatrix(m(), m());
  for (size_t i = 0; i < m(); ++i) {
    a(i, i) += 3.0;
    b(i, i) += 3.0;
  }
  auto lu_a = LuFactorization::Compute(a);
  auto lu_b = LuFactorization::Compute(b);
  auto lu_ab = LuFactorization::Compute(a * b);
  ASSERT_TRUE(lu_a.ok());
  ASSERT_TRUE(lu_b.ok());
  ASSERT_TRUE(lu_ab.ok());
  const double expected = lu_a.value().Determinant() * lu_b.value().Determinant();
  EXPECT_NEAR(lu_ab.value().Determinant() / expected, 1.0, 1e-8);
}

TEST_P(AlgebraSweep, ProjectionMatrixIsIdempotentAndSymmetric) {
  // P = Q̂Q̂ᵀ with orthonormal Q̂ — the operator at the heart of PCA-DR
  // and SF.
  stats::Rng rng = MakeRng(9);
  const Matrix q = stats::RandomOrthogonalMatrix(m(), &rng);
  const size_t p = std::max<size_t>(1, m() / 2);
  const Matrix q_hat = q.LeftColumns(p);
  const Matrix projector = q_hat * q_hat.Transpose();
  EXPECT_LT(MaxAbsDifference(projector * projector, projector), 1e-9);
  EXPECT_TRUE(IsSymmetric(projector, 1e-10));
  EXPECT_NEAR(Trace(projector), static_cast<double>(p), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Dims, AlgebraSweep,
                         ::testing::Values(2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace linalg
}  // namespace randrecon
