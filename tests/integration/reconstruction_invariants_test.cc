// Cross-cutting invariants every reconstruction attack must satisfy,
// checked for each attack in the paper suite (TEST_P over attacks).

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/be_dr.h"
#include "core/ndr.h"
#include "core/pca_dr.h"
#include "core/spectral_filtering.h"
#include "core/udr.h"
#include "data/synthetic.h"
#include "linalg/matrix_util.h"
#include "perturb/schemes.h"
#include "stats/moments.h"

namespace randrecon {
namespace core {
namespace {

using linalg::Matrix;
using linalg::Vector;

enum class Attack { kNdr, kUdr, kSf, kPca, kBe };

std::unique_ptr<Reconstructor> MakeAttack(Attack which) {
  switch (which) {
    case Attack::kNdr:
      return std::make_unique<NdrReconstructor>();
    case Attack::kUdr: {
      UdrOptions options;
      options.estimator = UdrDensityEstimator::kGaussianClosedForm;
      return std::make_unique<UdrReconstructor>(options);
    }
    case Attack::kSf:
      return std::make_unique<SpectralFilteringReconstructor>();
    case Attack::kPca:
      return std::make_unique<PcaReconstructor>();
    case Attack::kBe:
      return std::make_unique<BayesEstimateReconstructor>();
  }
  return nullptr;
}

class AttackInvariantSweep : public ::testing::TestWithParam<Attack> {
 protected:
  struct Scenario {
    Matrix x;
    Matrix y;
    perturb::NoiseModel noise = perturb::NoiseModel::IndependentGaussian(1, 1);
  };

  static Scenario MakeScenario(uint64_t seed) {
    stats::Rng rng(seed);
    data::SyntheticDatasetSpec spec;
    spec.eigenvalues = data::TwoLevelSpectrumWithTrace(12, 3, 1.0, 100.0);
    auto synthetic = data::GenerateSpectrumDataset(spec, 800, &rng);
    EXPECT_TRUE(synthetic.ok());
    auto scheme = perturb::IndependentNoiseScheme::Gaussian(12, 5.0);
    auto disguised = scheme.Disguise(synthetic.value().dataset, &rng);
    EXPECT_TRUE(disguised.ok());
    Scenario s;
    s.x = synthetic.value().dataset.records();
    s.y = disguised.value().records();
    s.noise = scheme.noise_model();
    return s;
  }
};

TEST_P(AttackInvariantSweep, OutputShapeMatchesInput) {
  Scenario s = MakeScenario(301);
  auto attack = MakeAttack(GetParam());
  auto x_hat = attack->Reconstruct(s.y, s.noise);
  ASSERT_TRUE(x_hat.ok()) << attack->name();
  EXPECT_EQ(x_hat.value().rows(), s.y.rows());
  EXPECT_EQ(x_hat.value().cols(), s.y.cols());
}

TEST_P(AttackInvariantSweep, DeterministicGivenSameInput) {
  Scenario s = MakeScenario(302);
  auto attack = MakeAttack(GetParam());
  auto first = attack->Reconstruct(s.y, s.noise);
  auto second = attack->Reconstruct(s.y, s.noise);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(first.value() == second.value()) << attack->name();
}

TEST_P(AttackInvariantSweep, NeverWorseThanTwiceNoiseFloor) {
  // Sanity envelope: no attack should blow the error up beyond ~2x the
  // do-nothing baseline on well-conditioned correlated data.
  Scenario s = MakeScenario(303);
  auto attack = MakeAttack(GetParam());
  auto x_hat = attack->Reconstruct(s.y, s.noise);
  ASSERT_TRUE(x_hat.ok());
  EXPECT_LT(stats::RootMeanSquareError(s.x, x_hat.value()), 10.0)
      << attack->name();
}

TEST_P(AttackInvariantSweep, PreservesColumnMeansApproximately) {
  // Noise is zero-mean, so every sane reconstruction keeps the column
  // means near the disguised-data means.
  Scenario s = MakeScenario(304);
  auto attack = MakeAttack(GetParam());
  auto x_hat = attack->Reconstruct(s.y, s.noise);
  ASSERT_TRUE(x_hat.ok());
  const Vector original_means = stats::ColumnMeans(s.x);
  const Vector reconstructed_means = stats::ColumnMeans(x_hat.value());
  for (size_t j = 0; j < original_means.size(); ++j) {
    EXPECT_NEAR(reconstructed_means[j], original_means[j], 1.5)
        << attack->name() << " attr " << j;
  }
}

TEST_P(AttackInvariantSweep, MeanShiftEquivariance) {
  // Shifting every record by a constant vector shifts the reconstruction
  // by the same vector (all attacks center on column means).
  Scenario s = MakeScenario(305);
  auto attack = MakeAttack(GetParam());
  auto base = attack->Reconstruct(s.y, s.noise);
  ASSERT_TRUE(base.ok());

  Matrix shifted = s.y;
  for (size_t i = 0; i < shifted.rows(); ++i) {
    for (size_t j = 0; j < shifted.cols(); ++j) {
      shifted(i, j) += 100.0 + static_cast<double>(j);
    }
  }
  auto shifted_hat = attack->Reconstruct(shifted, s.noise);
  ASSERT_TRUE(shifted_hat.ok());
  Matrix unshifted = shifted_hat.value();
  for (size_t i = 0; i < unshifted.rows(); ++i) {
    for (size_t j = 0; j < unshifted.cols(); ++j) {
      unshifted(i, j) -= 100.0 + static_cast<double>(j);
    }
  }
  EXPECT_LT(linalg::MaxAbsDifference(unshifted, base.value()), 1e-6)
      << attack->name();
}

TEST_P(AttackInvariantSweep, RejectsMismatchedNoiseModel) {
  Scenario s = MakeScenario(306);
  auto attack = MakeAttack(GetParam());
  auto bad = attack->Reconstruct(
      s.y, perturb::NoiseModel::IndependentGaussian(5, 1.0));
  EXPECT_FALSE(bad.ok()) << attack->name();
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(Attacks, AttackInvariantSweep,
                         ::testing::Values(Attack::kNdr, Attack::kUdr,
                                           Attack::kSf, Attack::kPca,
                                           Attack::kBe));

}  // namespace
}  // namespace core
}  // namespace randrecon
