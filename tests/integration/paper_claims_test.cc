// The paper's qualitative evaluation claims, asserted on scaled-down runs
// of the actual figure pipelines. These are the "shape" guarantees the
// benchmark harness regenerates at full size: who wins, what is flat,
// what crosses what, and in which direction curves move.

#include <gtest/gtest.h>

#include "experiment/figures.h"

namespace randrecon {
namespace experiment {
namespace {

CommonConfig ClaimConfig() {
  CommonConfig common;
  common.num_records = 600;
  common.num_trials = 2;
  return common;
}

double FirstY(const ExperimentResult& r, const std::string& name) {
  const Series* s = r.FindSeries(name);
  EXPECT_NE(s, nullptr) << name;
  return s->points.front().y;
}

double LastY(const ExperimentResult& r, const std::string& name) {
  const Series* s = r.FindSeries(name);
  EXPECT_NE(s, nullptr) << name;
  return s->points.back().y;
}

// --- Figure 1 claims (§7.2) ------------------------------------------------

class Figure1Claims : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Figure1Config config;
    config.common = ClaimConfig();
    config.attribute_counts = {5, 20, 50, 100};
    auto run = RunFigure1(config);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    result_ = new ExperimentResult(std::move(run).value());
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static const ExperimentResult* result_;
};

const ExperimentResult* Figure1Claims::result_ = nullptr;

TEST_F(Figure1Claims, CorrelationSchemesImproveWithMoreAttributes) {
  // "all the correlation-based reconstruction schemes (SF, PCA-DR, and
  // BE-DR) have lower reconstruction errors when the number of attributes
  // increase."
  for (const std::string name : {"SF", "PCA-DR", "BE-DR"}) {
    EXPECT_LT(LastY(*result_, name), 0.75 * FirstY(*result_, name)) << name;
  }
}

TEST_F(Figure1Claims, UdrIsInsensitiveToCorrelation) {
  // "UDR scheme is not sensitive to the change of correlations" — the
  // Eq. 12 trace pin keeps it flat.
  EXPECT_NEAR(LastY(*result_, "UDR"), FirstY(*result_, "UDR"),
              0.15 * FirstY(*result_, "UDR"));
}

TEST_F(Figure1Claims, UdrMuchWorseThanCorrelationSchemesAtHighCorrelation) {
  EXPECT_GT(LastY(*result_, "UDR"), 2.0 * LastY(*result_, "BE-DR"));
  EXPECT_GT(LastY(*result_, "UDR"), 2.0 * LastY(*result_, "PCA-DR"));
}

TEST_F(Figure1Claims, BeDrBeatsPcaDrAndSf) {
  // "BE-DR achieves better performance than PCA-DR and SF schemes ...
  // consistent throughout all our experiments." (skip the m = p point
  // where correlation is absent and all schemes coincide).
  for (size_t i = 1; i < result_->FindSeries("BE-DR")->points.size(); ++i) {
    const double be = result_->FindSeries("BE-DR")->points[i].y;
    EXPECT_LE(be, result_->FindSeries("PCA-DR")->points[i].y * 1.02) << i;
    EXPECT_LE(be, result_->FindSeries("SF")->points[i].y * 1.02) << i;
  }
}

// --- Figure 2 claims (§7.3) ------------------------------------------------

class Figure2Claims : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Figure2Config config;
    config.common = ClaimConfig();
    config.num_attributes = 60;
    config.principal_counts = {2, 15, 40, 60};
    auto run = RunFigure2(config);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    result_ = new ExperimentResult(std::move(run).value());
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static const ExperimentResult* result_;
};

const ExperimentResult* Figure2Claims::result_ = nullptr;

TEST_F(Figure2Claims, AccuracyDegradesAsPrincipalComponentsIncrease) {
  // "SF, PCA-DR and BE-DR achieve better accuracy when the number of
  // principal components becomes less."
  for (const std::string name : {"SF", "PCA-DR", "BE-DR"}) {
    EXPECT_GT(LastY(*result_, name), 1.5 * FirstY(*result_, name)) << name;
  }
}

TEST_F(Figure2Claims, BeDrStaysBest) {
  const Series* be = result_->FindSeries("BE-DR");
  for (size_t i = 0; i + 1 < be->points.size(); ++i) {  // Skip p = m end.
    EXPECT_LE(be->points[i].y,
              result_->FindSeries("PCA-DR")->points[i].y * 1.02)
        << i;
  }
}

TEST_F(Figure2Claims, BeDrConvergesToUdrAtFullRank) {
  // At p = m the data is uncorrelated and BE-DR ≈ UDR (§6's relationship
  // discussion).
  EXPECT_NEAR(LastY(*result_, "BE-DR"), LastY(*result_, "UDR"),
              0.1 * LastY(*result_, "UDR"));
}

// --- Figure 3 claims (§7.4) ------------------------------------------------

class Figure3Claims : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Figure3Config config;
    config.common = ClaimConfig();
    config.num_attributes = 60;
    config.num_principal = 12;
    config.residual_eigenvalues = {1.0, 15.0, 30.0, 50.0};
    auto run = RunFigure3(config);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    result_ = new ExperimentResult(std::move(run).value());
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static const ExperimentResult* result_;
};

const ExperimentResult* Figure3Claims::result_ = nullptr;

TEST_F(Figure3Claims, ErrorsGrowWithNonPrincipalEigenvalues) {
  // "When the eigenvalues become larger ... the accuracy of SF, PCA-DR
  // and BE-DR all become worse."
  for (const std::string name : {"SF", "PCA-DR", "BE-DR"}) {
    EXPECT_GT(LastY(*result_, name), FirstY(*result_, name)) << name;
  }
}

TEST_F(Figure3Claims, PcaCrossesAboveUdrButBeDrDoesNot) {
  // "After certain points, the original information is discarded so much
  // that the errors of SF and PCA-DR schemes are even higher than UDR"
  // while "the performance of BE-DR converges to the performance of UDR".
  EXPECT_GT(LastY(*result_, "PCA-DR"), LastY(*result_, "UDR"));
  EXPECT_LE(LastY(*result_, "BE-DR"), LastY(*result_, "UDR") * 1.03);
}

TEST_F(Figure3Claims, UdrStaysRoughlyFlat) {
  EXPECT_NEAR(LastY(*result_, "UDR"), FirstY(*result_, "UDR"),
              0.2 * FirstY(*result_, "UDR"));
}

// --- Figure 4 claims (§8.2) ------------------------------------------------

class Figure4Claims : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Figure4Config config;
    config.common = ClaimConfig();
    config.num_attributes = 60;
    config.num_principal = 30;
    config.similarity_knobs = {0.0, 0.5, 1.0};
    auto run = RunFigure4(config);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    result_ = new ExperimentResult(std::move(run).value());
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static const ExperimentResult* result_;
};

const ExperimentResult* Figure4Claims::result_ = nullptr;

TEST_F(Figure4Claims, SimilarNoiseGivesBestPrivacy) {
  // "when the correlations of the random noises are almost the same as
  // that of the original data, data reconstruction has the highest
  // error" — errors fall as dissimilarity grows (SF excepted).
  for (const std::string name : {"PCA-DR", "Improved-BE-DR"}) {
    EXPECT_LT(LastY(*result_, name), 0.7 * FirstY(*result_, name)) << name;
  }
}

TEST_F(Figure4Claims, SimilarNoiseNearlyDefeatsPca) {
  // At dissimilarity ≈ 0 the PCA projection cannot separate noise from
  // signal: error stays near the full noise level σ = 5.
  EXPECT_GT(FirstY(*result_, "PCA-DR"), 4.0);
}

TEST_F(Figure4Claims, NotesLocateIndependentNoise) {
  ASSERT_FALSE(result_->notes.empty());
  EXPECT_NE(result_->notes[0].find("dissimilarity"), std::string::npos);
}

TEST_F(Figure4Claims, DissimilarityAxisSpansPaperRange) {
  // With the RMS reading of Definition 8.1 the x-axis lands in the
  // paper's 0.0-0.25 range (Figure 4 shows 0.04-0.2).
  const Series* pca = result_->FindSeries("PCA-DR");
  EXPECT_LT(pca->points.front().x, 0.02);
  EXPECT_GT(pca->points.back().x, 0.05);
  EXPECT_LT(pca->points.back().x, 0.5);
}

}  // namespace
}  // namespace experiment
}  // namespace randrecon
