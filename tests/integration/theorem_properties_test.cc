// Property-based verification of the paper's theorems, parameterized over
// dimensions, noise levels and seeds (TEST_P sweeps).

#include <cmath>

#include <gtest/gtest.h>

#include "core/be_dr.h"
#include "core/covariance_estimation.h"
#include "core/pca_dr.h"
#include "data/synthetic.h"
#include "linalg/eigen.h"
#include "linalg/matrix_util.h"
#include "linalg/vector_ops.h"
#include "perturb/schemes.h"
#include "stats/moments.h"
#include "stats/random_orthogonal.h"
#include "stats/rng.h"

namespace randrecon {
namespace {

using linalg::Matrix;
using linalg::Vector;

// ---------------------------------------------------------------------------
// Theorem 4.1: among constant guesses z, the mean of the distribution
// minimizes E[(x − z)²].
// ---------------------------------------------------------------------------

class Theorem41Sweep : public ::testing::TestWithParam<double> {};

TEST_P(Theorem41Sweep, MeanMinimizesMeanSquareError) {
  const double mu = GetParam();
  stats::Rng rng(161);
  const Vector sample = rng.GaussianVector(20000, mu, 3.0);
  auto mse_for = [&](double z) {
    double sum = 0.0;
    for (double x : sample) sum += (x - z) * (x - z);
    return sum / static_cast<double>(sample.size());
  };
  const double at_mean = mse_for(linalg::Mean(sample));
  for (double offset : {-2.0, -0.5, 0.5, 2.0}) {
    EXPECT_GT(mse_for(linalg::Mean(sample) + offset), at_mean);
  }
}

INSTANTIATE_TEST_SUITE_P(Means, Theorem41Sweep,
                         ::testing::Values(-10.0, 0.0, 3.5, 100.0));

// ---------------------------------------------------------------------------
// Theorem 5.1: Cov(Y) has Cov(X) off-diagonal and Cov(X) + σ² on the
// diagonal, for any noise level.
// ---------------------------------------------------------------------------

class Theorem51Sweep
    : public ::testing::TestWithParam<std::tuple<double, size_t>> {};

TEST_P(Theorem51Sweep, DiagonalShiftBySigmaSquared) {
  const double sigma = std::get<0>(GetParam());
  const size_t m = std::get<1>(GetParam());
  stats::Rng rng(162 + m);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = data::TwoLevelSpectrum(m, std::max<size_t>(1, m / 4),
                                            60.0, 2.0);
  auto synthetic = data::GenerateSpectrumDataset(spec, 30000, &rng);
  ASSERT_TRUE(synthetic.ok());
  auto scheme = perturb::IndependentNoiseScheme::Gaussian(m, sigma);
  auto disguised = scheme.Disguise(synthetic.value().dataset, &rng);
  ASSERT_TRUE(disguised.ok());

  const Matrix cov_y = stats::SampleCovariance(disguised.value().records());
  const Matrix cov_x =
      stats::SampleCovariance(synthetic.value().dataset.records());
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < m; ++j) {
      const double expected =
          i == j ? cov_x(i, j) + sigma * sigma : cov_x(i, j);
      // Sampling error of a covariance entry scales with the product of
      // the disguised-attribute standard deviations (≈ σx² + σ² here).
      const double tol =
          0.07 * (1.0 + std::fabs(expected)) + 0.03 * sigma * sigma + 0.5;
      EXPECT_NEAR(cov_y(i, j), expected, tol)
          << "(" << i << "," << j << ") sigma=" << sigma;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    NoiseAndDims, Theorem51Sweep,
    ::testing::Combine(::testing::Values(1.0, 3.0, 8.0),
                       ::testing::Values(4u, 8u, 16u)));

// ---------------------------------------------------------------------------
// Theorem 5.2: projecting i.i.d. noise of variance σ² onto p of m
// orthonormal directions leaves mean square exactly σ² p/m.
// ---------------------------------------------------------------------------

struct Theorem52Case {
  size_t m;
  size_t p;
  double sigma;
};

class Theorem52Sweep : public ::testing::TestWithParam<Theorem52Case> {};

TEST_P(Theorem52Sweep, ProjectedNoiseMeanSquareIsSigma2POverM) {
  const Theorem52Case c = GetParam();
  stats::Rng rng(163 + c.m * 7 + c.p);
  const size_t n = 60000;
  auto scheme = perturb::IndependentNoiseScheme::Gaussian(c.m, c.sigma);
  const Matrix noise = scheme.GenerateNoise(n, &rng);
  const Matrix q = stats::RandomOrthogonalMatrix(c.m, &rng);
  const Matrix q_hat = q.LeftColumns(c.p);
  const Matrix projected = (noise * q_hat) * q_hat.Transpose();
  double mean_square = 0.0;
  for (size_t i = 0; i < projected.size(); ++i) {
    mean_square += projected.data()[i] * projected.data()[i];
  }
  mean_square /= static_cast<double>(projected.size());
  const double expected = c.sigma * c.sigma * static_cast<double>(c.p) /
                          static_cast<double>(c.m);
  EXPECT_NEAR(mean_square, expected, 0.03 * expected + 0.01)
      << "m=" << c.m << " p=" << c.p;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Theorem52Sweep,
    ::testing::Values(Theorem52Case{4, 1, 5.0}, Theorem52Case{4, 4, 5.0},
                      Theorem52Case{10, 2, 5.0}, Theorem52Case{10, 7, 2.0},
                      Theorem52Case{25, 5, 5.0}, Theorem52Case{25, 20, 1.0}));

// ---------------------------------------------------------------------------
// Theorem 8.1 sanity: the correlated-noise Bayes estimate with Σr = σ²I
// must coincide with the independent-noise Eq. 11 result.
// ---------------------------------------------------------------------------

TEST(Theorem81Test, ReducesToEq11ForIsotropicNoise) {
  stats::Rng rng(164);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = data::TwoLevelSpectrum(6, 2, 90.0, 2.0);
  auto synthetic = data::GenerateSpectrumDataset(spec, 800, &rng);
  ASSERT_TRUE(synthetic.ok());
  const double sigma = 4.0;
  auto iid_scheme = perturb::IndependentNoiseScheme::Gaussian(6, sigma);
  auto disguised = iid_scheme.Disguise(synthetic.value().dataset, &rng);
  ASSERT_TRUE(disguised.ok());

  // Same disguised data, two noise descriptions: iid model vs correlated
  // model with Σr = σ²I.
  auto correlated_model = perturb::NoiseModel::CorrelatedGaussian(
      Matrix::Identity(6) * (sigma * sigma));
  ASSERT_TRUE(correlated_model.ok());

  core::BayesEstimateReconstructor be;
  auto from_iid =
      be.Reconstruct(disguised.value().records(), iid_scheme.noise_model());
  auto from_correlated =
      be.Reconstruct(disguised.value().records(), correlated_model.value());
  ASSERT_TRUE(from_iid.ok());
  ASSERT_TRUE(from_correlated.ok());
  EXPECT_LT(
      linalg::MaxAbsDifference(from_iid.value(), from_correlated.value()),
      1e-9);
}

// ---------------------------------------------------------------------------
// Theorem 8.2: Σy = Σx + Σr for correlated noise, across noise scales.
// ---------------------------------------------------------------------------

class Theorem82Sweep : public ::testing::TestWithParam<double> {};

TEST_P(Theorem82Sweep, CovarianceAdds) {
  const double scale = GetParam();
  stats::Rng rng(165);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = data::TwoLevelSpectrum(5, 2, 50.0, 1.0);
  auto synthetic = data::GenerateSpectrumDataset(spec, 40000, &rng);
  ASSERT_TRUE(synthetic.ok());
  auto scheme = perturb::CorrelatedGaussianScheme::MimicCovariance(
      synthetic.value().covariance, scale);
  ASSERT_TRUE(scheme.ok());
  auto disguised = scheme.value().Disguise(synthetic.value().dataset, &rng);
  ASSERT_TRUE(disguised.ok());
  const Matrix sigma_y = stats::SampleCovariance(disguised.value().records());
  const Matrix expected =
      synthetic.value().covariance * (1.0 + scale);  // Σx + scale·Σx.
  EXPECT_LT(linalg::MaxAbsDifference(sigma_y, expected),
            0.05 * linalg::FrobeniusNorm(expected));
}

INSTANTIATE_TEST_SUITE_P(Scales, Theorem82Sweep,
                         ::testing::Values(0.05, 0.25, 1.0));

// ---------------------------------------------------------------------------
// Eq. 12: Σλᵢ = Σaᵢᵢ on the synthesized covariance, for every spectrum
// the experiments use.
// ---------------------------------------------------------------------------

class Eq12Sweep : public ::testing::TestWithParam<size_t> {};

TEST_P(Eq12Sweep, SpectrumTraceMatchesCovarianceTrace) {
  const size_t m = GetParam();
  stats::Rng rng(166 + m);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues =
      data::TwoLevelSpectrumWithTrace(m, std::max<size_t>(1, m / 5), 1.0, 100.0);
  auto synthetic = data::GenerateSpectrumDataset(spec, 5, &rng);
  ASSERT_TRUE(synthetic.ok());
  EXPECT_NEAR(linalg::Trace(synthetic.value().covariance),
              static_cast<double>(m) * 100.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Dims, Eq12Sweep,
                         ::testing::Values(5, 10, 20, 50, 100));

}  // namespace
}  // namespace randrecon
