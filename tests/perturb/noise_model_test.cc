#include "perturb/noise_model.h"

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/matrix_util.h"

namespace randrecon {
namespace perturb {
namespace {

using linalg::Matrix;

TEST(NoiseModelTest, IndependentGaussianBasics) {
  NoiseModel model = NoiseModel::IndependentGaussian(4, 5.0);
  EXPECT_EQ(model.num_attributes(), 4u);
  EXPECT_FALSE(model.is_correlated());
  EXPECT_TRUE(model.HasUniformVariance());
  for (size_t j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(model.Variance(j), 25.0);
}

TEST(NoiseModelTest, IndependentGaussianCovarianceIsDiagonal) {
  NoiseModel model = NoiseModel::IndependentGaussian(3, 2.0);
  const Matrix& cov = model.covariance();
  EXPECT_DOUBLE_EQ(cov(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(cov(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(cov(1, 2), 0.0);
}

TEST(NoiseModelTest, MarginalIsZeroMeanNormal) {
  NoiseModel model = NoiseModel::IndependentGaussian(2, 3.0);
  const stats::ScalarDistribution& marginal = model.Marginal(0);
  EXPECT_DOUBLE_EQ(marginal.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(marginal.Variance(), 9.0);
}

TEST(NoiseModelTest, IndependentCustomDistribution) {
  auto model = NoiseModel::Independent(
      std::make_unique<stats::UniformDistribution>(-3.0, 3.0), 5);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.value().num_attributes(), 5u);
  EXPECT_NEAR(model.value().Variance(2), 3.0, 1e-12);
  EXPECT_FALSE(model.value().is_correlated());
}

TEST(NoiseModelTest, IndependentRejectsNonZeroMean) {
  auto model = NoiseModel::Independent(
      std::make_unique<stats::UniformDistribution>(0.0, 2.0), 3);
  EXPECT_FALSE(model.ok());
  EXPECT_NE(model.status().message().find("zero mean"), std::string::npos);
}

TEST(NoiseModelTest, IndependentRejectsNullAndZeroAttrs) {
  EXPECT_FALSE(NoiseModel::Independent(nullptr, 3).ok());
  EXPECT_FALSE(NoiseModel::Independent(
                   std::make_unique<stats::NormalDistribution>(0.0, 1.0), 0)
                   .ok());
}

TEST(NoiseModelTest, CorrelatedGaussianBasics) {
  Matrix cov{{4.0, 1.0}, {1.0, 2.0}};
  auto model = NoiseModel::CorrelatedGaussian(cov);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model.value().is_correlated());
  EXPECT_DOUBLE_EQ(model.value().Variance(0), 4.0);
  EXPECT_DOUBLE_EQ(model.value().Variance(1), 2.0);
  EXPECT_FALSE(model.value().HasUniformVariance());
  // Marginals reflect the diagonal.
  EXPECT_DOUBLE_EQ(model.value().Marginal(0).Variance(), 4.0);
}

TEST(NoiseModelTest, CorrelatedRejectsBadCovariance) {
  EXPECT_FALSE(NoiseModel::CorrelatedGaussian(Matrix(2, 3)).ok());
  EXPECT_FALSE(
      NoiseModel::CorrelatedGaussian(Matrix{{1.0, 0.9}, {0.2, 1.0}}).ok());
  // Non-positive diagonal.
  EXPECT_FALSE(
      NoiseModel::CorrelatedGaussian(Matrix{{0.0, 0.0}, {0.0, 1.0}}).ok());
}

TEST(NoiseModelTest, CopyIsDeep) {
  NoiseModel original = NoiseModel::IndependentGaussian(2, 1.0);
  NoiseModel copy = original;
  EXPECT_EQ(copy.num_attributes(), 2u);
  EXPECT_DOUBLE_EQ(copy.Marginal(1).Variance(), 1.0);
  NoiseModel assigned = NoiseModel::IndependentGaussian(3, 2.0);
  assigned = original;
  EXPECT_EQ(assigned.num_attributes(), 2u);
  EXPECT_DOUBLE_EQ(assigned.Variance(0), 1.0);
}

TEST(NoiseModelTest, HasUniformVarianceToleratesTinyDiffs) {
  Matrix cov = Matrix::Diagonal({1.0, 1.0 + 1e-14});
  auto model = NoiseModel::CorrelatedGaussian(cov);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model.value().HasUniformVariance(1e-12));
  EXPECT_FALSE(model.value().HasUniformVariance(1e-16));
}

TEST(NoiseModelTest, BatchSamplingSupportFollowsMarginals) {
  const NoiseModel gaussian = NoiseModel::IndependentGaussian(3, 1.0);
  EXPECT_TRUE(gaussian.SupportsBatchSampling());
  EXPECT_TRUE(gaussian.HasIdenticalMarginals());

  auto uniform = NoiseModel::Independent(
      std::make_unique<stats::UniformDistribution>(-1.0, 1.0), 2);
  ASSERT_TRUE(uniform.ok());
  EXPECT_TRUE(uniform.value().SupportsBatchSampling());

  auto laplace = NoiseModel::Independent(
      std::make_unique<stats::LaplaceDistribution>(0.0, 2.0), 2);
  ASSERT_TRUE(laplace.ok());
  EXPECT_TRUE(laplace.value().SupportsBatchSampling());

  // A mixture has no batch sampler, so the model must say so.
  std::vector<std::unique_ptr<stats::ScalarDistribution>> parts;
  parts.push_back(std::make_unique<stats::NormalDistribution>(-1.0, 1.0));
  parts.push_back(std::make_unique<stats::NormalDistribution>(1.0, 1.0));
  auto mix = stats::MixtureDistribution::Create(std::move(parts), {1.0, 1.0});
  ASSERT_TRUE(mix.ok());
  auto mixture_model = NoiseModel::Independent(
      std::make_unique<stats::MixtureDistribution>(std::move(mix).value()), 2);
  ASSERT_TRUE(mixture_model.ok());
  EXPECT_FALSE(mixture_model.value().SupportsBatchSampling());
}

TEST(NoiseModelTest, MarginalSliceMatchesDistributionStatistics) {
  const NoiseModel model = NoiseModel::IndependentGaussian(2, 3.0);
  const size_t n = 100000;
  std::vector<double> draws(n);
  model.SampleMarginalSliceAt(0, stats::Philox(5, 0), 0, draws.data(), n);
  double sum = 0.0, sq = 0.0;
  for (double v : draws) {
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(sq / n - mean * mean, 9.0, 0.2);
}

}  // namespace
}  // namespace perturb
}  // namespace randrecon
