#include "perturb/randomized_response.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/rng.h"

namespace randrecon {
namespace perturb {
namespace {

using linalg::Matrix;

BitVector MakeBits(double pi, size_t n, stats::Rng* rng) {
  BitVector bits(n);
  for (auto& bit : bits) {
    bit = rng->Uniform(0.0, 1.0) < pi ? 1 : 0;
  }
  return bits;
}

TEST(WarnerSchemeTest, CreateValidation) {
  EXPECT_TRUE(WarnerScheme::Create(0.8).ok());
  EXPECT_FALSE(WarnerScheme::Create(0.0).ok());
  EXPECT_FALSE(WarnerScheme::Create(1.0).ok());
  EXPECT_FALSE(WarnerScheme::Create(0.5).ok());  // Non-invertible channel.
}

TEST(WarnerSchemeTest, FlipRateMatchesTheta) {
  stats::Rng rng(401);
  auto scheme = WarnerScheme::Create(0.7);
  ASSERT_TRUE(scheme.ok());
  size_t kept = 0;
  const size_t n = 50000;
  for (size_t i = 0; i < n; ++i) {
    if (scheme.value().Disguise(1, &rng) == 1) ++kept;
  }
  EXPECT_NEAR(static_cast<double>(kept) / n, 0.7, 0.01);
}

TEST(WarnerSchemeTest, ProportionEstimateIsUnbiased) {
  stats::Rng rng(402);
  auto scheme = WarnerScheme::Create(0.75);
  ASSERT_TRUE(scheme.ok());
  const double true_pi = 0.3;
  const BitVector bits = MakeBits(true_pi, 200000, &rng);
  const BitVector disguised = scheme.value().DisguiseAll(bits, &rng);
  auto estimate = scheme.value().EstimateProportion(disguised);
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(estimate.value(), true_pi, 0.01);
}

TEST(WarnerSchemeTest, EstimateClampedToUnitInterval) {
  auto scheme = WarnerScheme::Create(0.9);
  ASSERT_TRUE(scheme.ok());
  // All-zeros reported with high θ: raw inversion goes negative; clamp.
  auto estimate = scheme.value().EstimateProportion(BitVector(100, 0));
  ASSERT_TRUE(estimate.ok());
  EXPECT_GE(estimate.value(), 0.0);
  EXPECT_FALSE(scheme.value().EstimateProportion({}).ok());
}

TEST(WarnerSchemeTest, VarianceGrowsAsThetaApproachesHalf) {
  auto strong = WarnerScheme::Create(0.95);
  auto weak = WarnerScheme::Create(0.55);
  ASSERT_TRUE(strong.ok());
  ASSERT_TRUE(weak.ok());
  EXPECT_GT(weak.value().EstimatorVariance(0.3, 1000),
            10.0 * strong.value().EstimatorVariance(0.3, 1000));
}

TEST(WarnerSchemeTest, VarianceShrinksWithN) {
  auto scheme = WarnerScheme::Create(0.8);
  ASSERT_TRUE(scheme.ok());
  EXPECT_NEAR(scheme.value().EstimatorVariance(0.4, 4000),
              scheme.value().EstimatorVariance(0.4, 1000) / 4.0, 1e-12);
}

TEST(WarnerSchemeTest, PosteriorInterpolatesPriorAndCertainty) {
  // θ -> 1: reported bit is the truth; θ -> 0.5: posterior -> prior.
  auto strong = WarnerScheme::Create(0.999);
  auto weak = WarnerScheme::Create(0.501);
  ASSERT_TRUE(strong.ok());
  ASSERT_TRUE(weak.ok());
  EXPECT_GT(strong.value().PosteriorGivenReportedOne(0.2), 0.99);
  EXPECT_NEAR(weak.value().PosteriorGivenReportedOne(0.2), 0.2, 0.01);
}

class WarnerThetaSweep : public ::testing::TestWithParam<double> {};

TEST_P(WarnerThetaSweep, EstimateRecoversTruthAcrossChannels) {
  const double theta = GetParam();
  stats::Rng rng(403 + static_cast<uint64_t>(theta * 100));
  auto scheme = WarnerScheme::Create(theta);
  ASSERT_TRUE(scheme.ok());
  const double true_pi = 0.62;
  const BitVector bits = MakeBits(true_pi, 300000, &rng);
  const BitVector disguised = scheme.value().DisguiseAll(bits, &rng);
  auto estimate = scheme.value().EstimateProportion(disguised);
  ASSERT_TRUE(estimate.ok());
  // Tolerance widens as the channel weakens (variance formula).
  const double tol =
      5.0 * std::sqrt(scheme.value().EstimatorVariance(true_pi, 300000));
  EXPECT_NEAR(estimate.value(), true_pi, tol) << "theta=" << theta;
}

INSTANTIATE_TEST_SUITE_P(Channels, WarnerThetaSweep,
                         ::testing::Values(0.55, 0.65, 0.8, 0.9, 0.99, 0.3,
                                           0.1));

TEST(MaskSchemeTest, DisguiseValidatesBits) {
  stats::Rng rng(404);
  auto scheme = MaskScheme::Create(0.9);
  ASSERT_TRUE(scheme.ok());
  Matrix bad{{0.0, 2.0}};
  EXPECT_FALSE(scheme.value().Disguise(bad, &rng).ok());
}

TEST(MaskSchemeTest, ItemSupportRecovered) {
  stats::Rng rng(405);
  auto scheme = MaskScheme::Create(0.85);
  ASSERT_TRUE(scheme.ok());
  const size_t n = 100000;
  Matrix transactions(n, 2);
  for (size_t i = 0; i < n; ++i) {
    transactions(i, 0) = rng.Uniform(0.0, 1.0) < 0.4 ? 1.0 : 0.0;
    transactions(i, 1) = rng.Uniform(0.0, 1.0) < 0.15 ? 1.0 : 0.0;
  }
  auto disguised = scheme.value().Disguise(transactions, &rng);
  ASSERT_TRUE(disguised.ok());
  auto support0 = scheme.value().EstimateItemSupport(disguised.value(), 0);
  auto support1 = scheme.value().EstimateItemSupport(disguised.value(), 1);
  ASSERT_TRUE(support0.ok());
  ASSERT_TRUE(support1.ok());
  EXPECT_NEAR(support0.value(), 0.4, 0.02);
  EXPECT_NEAR(support1.value(), 0.15, 0.02);
}

TEST(MaskSchemeTest, PairSupportRecovered) {
  // Items co-occur: item B present only when A is (support_AB = 0.3).
  stats::Rng rng(406);
  auto scheme = MaskScheme::Create(0.9);
  ASSERT_TRUE(scheme.ok());
  const size_t n = 150000;
  Matrix transactions(n, 2);
  for (size_t i = 0; i < n; ++i) {
    const bool a = rng.Uniform(0.0, 1.0) < 0.5;
    const bool b = a && rng.Uniform(0.0, 1.0) < 0.6;
    transactions(i, 0) = a ? 1.0 : 0.0;
    transactions(i, 1) = b ? 1.0 : 0.0;
  }
  auto disguised = scheme.value().Disguise(transactions, &rng);
  ASSERT_TRUE(disguised.ok());
  auto support = scheme.value().EstimatePairSupport(disguised.value(), 0, 1);
  ASSERT_TRUE(support.ok());
  EXPECT_NEAR(support.value(), 0.3, 0.02);
}

TEST(MaskSchemeTest, PairSupportValidation) {
  auto scheme = MaskScheme::Create(0.8);
  ASSERT_TRUE(scheme.ok());
  Matrix data(10, 3);
  EXPECT_FALSE(scheme.value().EstimatePairSupport(data, 0, 0).ok());
  EXPECT_FALSE(scheme.value().EstimatePairSupport(data, 0, 9).ok());
  EXPECT_FALSE(
      scheme.value().EstimatePairSupport(Matrix(0, 3), 0, 1).ok());
}

TEST(MaskSchemeTest, LowThetaStillRecoversSupportWithMoreSamples) {
  // Even an aggressive θ = 0.2 channel (80% flips) is invertible.
  stats::Rng rng(407);
  auto scheme = MaskScheme::Create(0.2);
  ASSERT_TRUE(scheme.ok());
  const size_t n = 200000;
  Matrix transactions(n, 1);
  for (size_t i = 0; i < n; ++i) {
    transactions(i, 0) = rng.Uniform(0.0, 1.0) < 0.25 ? 1.0 : 0.0;
  }
  auto disguised = scheme.value().Disguise(transactions, &rng);
  ASSERT_TRUE(disguised.ok());
  auto support = scheme.value().EstimateItemSupport(disguised.value(), 0);
  ASSERT_TRUE(support.ok());
  EXPECT_NEAR(support.value(), 0.25, 0.03);
}

TEST(WarnerSchemeTest, BatchDisguiseMatchesEstimatorContract) {
  auto scheme = WarnerScheme::Create(0.8);
  ASSERT_TRUE(scheme.ok());
  const size_t n = 50000;
  BitVector truth(n);
  for (size_t i = 0; i < n; ++i) truth[i] = i % 4 == 0 ? 1 : 0;  // pi = 0.25
  stats::Philox gen(11, 0);
  const BitVector disguised = scheme.value().DisguiseAll(truth, &gen);
  ASSERT_EQ(disguised.size(), n);
  auto pi = scheme.value().EstimateProportion(disguised);
  ASSERT_TRUE(pi.ok());
  EXPECT_NEAR(pi.value(), 0.25, 0.02);
  // Deterministic: same seed, same disguise.
  stats::Philox gen2(11, 0);
  EXPECT_EQ(scheme.value().DisguiseAll(truth, &gen2), disguised);
  // Different seeds flip different coins.
  stats::Philox gen3(12, 0);
  EXPECT_NE(scheme.value().DisguiseAll(truth, &gen3), disguised);
}

TEST(MaskSchemeTest, BatchDisguiseSupportsEstimation) {
  auto scheme = MaskScheme::Create(0.9);
  ASSERT_TRUE(scheme.ok());
  const size_t n = 40000;
  linalg::Matrix transactions(n, 2, 0.0);
  for (size_t i = 0; i < n; ++i) {
    transactions(i, 0) = i % 4 == 0 ? 1.0 : 0.0;  // support 0.25
    transactions(i, 1) = i % 2 == 0 ? 1.0 : 0.0;  // support 0.5
  }
  stats::Philox gen(19, 0);
  auto disguised = scheme.value().Disguise(transactions, &gen);
  ASSERT_TRUE(disguised.ok());
  auto support0 = scheme.value().EstimateItemSupport(disguised.value(), 0);
  auto support1 = scheme.value().EstimateItemSupport(disguised.value(), 1);
  ASSERT_TRUE(support0.ok());
  ASSERT_TRUE(support1.ok());
  EXPECT_NEAR(support0.value(), 0.25, 0.03);
  EXPECT_NEAR(support1.value(), 0.5, 0.03);
  // Batch disguise validates input like the scalar path.
  linalg::Matrix bad(1, 2, 0.5);
  stats::Philox gen2(1, 0);
  EXPECT_FALSE(scheme.value().Disguise(bad, &gen2).ok());
}

}  // namespace
}  // namespace perturb
}  // namespace randrecon
