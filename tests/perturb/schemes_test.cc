#include "perturb/schemes.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "linalg/eigen.h"
#include "linalg/matrix_util.h"
#include "linalg/vector_ops.h"
#include "stats/moments.h"
#include "stats/random_orthogonal.h"

namespace randrecon {
namespace perturb {
namespace {

using linalg::Matrix;
using linalg::Vector;

TEST(IndependentSchemeTest, NoiseMomentsMatchSpec) {
  auto scheme = IndependentNoiseScheme::Gaussian(3, 4.0);
  stats::Rng rng(81);
  Matrix noise = scheme.GenerateNoise(30000, &rng);
  const Vector means = stats::ColumnMeans(noise);
  const Vector vars = stats::ColumnVariances(noise);
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(means[j], 0.0, 0.1);
    EXPECT_NEAR(vars[j], 16.0, 0.5);
  }
}

TEST(IndependentSchemeTest, NoiseColumnsAreUncorrelated) {
  auto scheme = IndependentNoiseScheme::Gaussian(3, 2.0);
  stats::Rng rng(82);
  Matrix noise = scheme.GenerateNoise(30000, &rng);
  const Matrix corr = stats::SampleCorrelation(noise);
  EXPECT_NEAR(corr(0, 1), 0.0, 0.03);
  EXPECT_NEAR(corr(0, 2), 0.0, 0.03);
  EXPECT_NEAR(corr(1, 2), 0.0, 0.03);
}

TEST(IndependentSchemeTest, UniformNoiseBoundedAndZeroMean) {
  auto scheme = IndependentNoiseScheme::Uniform(2, 3.0);
  stats::Rng rng(83);
  Matrix noise = scheme.GenerateNoise(5000, &rng);
  for (size_t i = 0; i < noise.rows(); ++i) {
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_GE(noise(i, j), -3.0);
      EXPECT_LT(noise(i, j), 3.0);
    }
  }
  EXPECT_NEAR(stats::ColumnMeans(noise)[0], 0.0, 0.1);
  EXPECT_DOUBLE_EQ(scheme.noise_model().Variance(0), 3.0);  // (2·3)²/12.
}

TEST(DisguiseTest, DisguisedEqualsOriginalPlusNoise) {
  auto scheme = IndependentNoiseScheme::Gaussian(2, 1.0);
  Matrix x{{1.0, 2.0}, {3.0, 4.0}};
  data::Dataset original(x);
  // Same seed twice: once through Disguise, once through GenerateNoise.
  stats::Rng rng1(84), rng2(84);
  auto disguised = scheme.Disguise(original, &rng1);
  ASSERT_TRUE(disguised.ok());
  Matrix expected_noise = scheme.GenerateNoise(2, &rng2);
  EXPECT_LT(linalg::MaxAbsDifference(disguised.value().records(),
                                     x + expected_noise),
            1e-12);
  // Attribute names preserved.
  EXPECT_EQ(disguised.value().attribute_names(), original.attribute_names());
}

TEST(DisguiseTest, RejectsAttributeMismatch) {
  auto scheme = IndependentNoiseScheme::Gaussian(3, 1.0);
  data::Dataset original(Matrix(5, 2));
  stats::Rng rng(85);
  EXPECT_FALSE(scheme.Disguise(original, &rng).ok());
}

TEST(CorrelatedSchemeTest, NoiseCovarianceMatchesSigmaR) {
  Matrix sigma_r{{4.0, 1.5}, {1.5, 3.0}};
  auto scheme = CorrelatedGaussianScheme::Create(sigma_r);
  ASSERT_TRUE(scheme.ok());
  stats::Rng rng(86);
  Matrix noise = scheme.value().GenerateNoise(40000, &rng);
  EXPECT_LT(
      linalg::MaxAbsDifference(stats::SampleCovariance(noise), sigma_r), 0.15);
  EXPECT_TRUE(scheme.value().noise_model().is_correlated());
}

TEST(CorrelatedSchemeTest, MimicCovarianceScales) {
  Matrix sigma_x{{10.0, 5.0}, {5.0, 8.0}};
  auto scheme = CorrelatedGaussianScheme::MimicCovariance(sigma_x, 0.5);
  ASSERT_TRUE(scheme.ok());
  EXPECT_LT(linalg::MaxAbsDifference(scheme.value().noise_model().covariance(),
                                     sigma_x * 0.5),
            1e-12);
}

TEST(CorrelatedSchemeTest, MimicPreservesCorrelationStructure) {
  // §8.1: Σr ∝ Σx means identical correlation-coefficient matrices.
  Matrix sigma_x{{10.0, 5.0}, {5.0, 8.0}};
  auto scheme = CorrelatedGaussianScheme::MimicCovariance(sigma_x, 0.25);
  ASSERT_TRUE(scheme.ok());
  EXPECT_LT(linalg::MaxAbsDifference(
                linalg::CovarianceToCorrelation(sigma_x),
                linalg::CovarianceToCorrelation(
                    scheme.value().noise_model().covariance())),
            1e-12);
}

TEST(CorrelatedSchemeTest, MimicRejectsNonPositiveScale) {
  EXPECT_FALSE(
      CorrelatedGaussianScheme::MimicCovariance(Matrix::Identity(2), 0.0).ok());
}

TEST(CorrelatedSchemeTest, FromEigenstructureComposesCovariance) {
  stats::Rng rng(87);
  Matrix q = stats::RandomOrthogonalMatrix(4, &rng);
  const Vector noise_ev{8.0, 4.0, 2.0, 1.0};
  auto scheme = CorrelatedGaussianScheme::FromEigenstructure(q, noise_ev);
  ASSERT_TRUE(scheme.ok());
  auto eig =
      linalg::SymmetricEigen(scheme.value().noise_model().covariance());
  ASSERT_TRUE(eig.ok());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(eig.value().eigenvalues[i], noise_ev[i], 1e-9);
  }
}

TEST(CorrelatedSchemeTest, FromEigenstructureValidation) {
  stats::Rng rng(88);
  Matrix q = stats::RandomOrthogonalMatrix(3, &rng);
  EXPECT_FALSE(
      CorrelatedGaussianScheme::FromEigenstructure(q, {1.0, 2.0}).ok());
  EXPECT_FALSE(
      CorrelatedGaussianScheme::FromEigenstructure(q, {1.0, 2.0, -1.0}).ok());
  Matrix not_orthogonal = q * 2.0;
  EXPECT_FALSE(CorrelatedGaussianScheme::FromEigenstructure(
                   not_orthogonal, {1.0, 2.0, 3.0})
                   .ok());
}

TEST(CorrelatedSchemeTest, CreateRejectsNonPsd) {
  EXPECT_FALSE(
      CorrelatedGaussianScheme::Create(Matrix::Diagonal({1.0, -2.0})).ok());
}

TEST(InterpolateSpectraTest, EndpointsAndMidpoint) {
  const Vector a{10.0, 0.0};
  const Vector b{0.0, 10.0};
  EXPECT_EQ(InterpolateSpectra(a, b, 0.0), a);
  EXPECT_EQ(InterpolateSpectra(a, b, 1.0), b);
  EXPECT_EQ(InterpolateSpectra(a, b, 0.5), (Vector{5.0, 5.0}));
}

TEST(InterpolateSpectraTest, PreservesTotalMass) {
  const Vector a{8.0, 2.0, 0.0};
  const Vector b{1.0, 4.0, 5.0};
  for (double t : {0.1, 0.3, 0.7}) {
    const Vector mix = InterpolateSpectra(a, b, t);
    EXPECT_NEAR(linalg::Sum(mix), 10.0, 1e-12);
  }
}

TEST(InterpolateSpectraDeathTest, RejectsBadArguments) {
  EXPECT_DEATH({ InterpolateSpectra({1.0}, {1.0, 2.0}, 0.5); }, "RR_CHECK");
  EXPECT_DEATH({ InterpolateSpectra({1.0}, {2.0}, 1.5); }, "out of");
}

TEST(Theorem82Test, DisguisedCovarianceIsSumOfParts) {
  // Σy = Σx + Σr on real sampled data (Theorem 8.2).
  stats::Rng rng(89);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = {30.0, 10.0, 2.0};
  auto synthetic = data::GenerateSpectrumDataset(spec, 60000, &rng);
  ASSERT_TRUE(synthetic.ok());
  Matrix sigma_r{{5.0, 2.0, 0.0}, {2.0, 5.0, 1.0}, {0.0, 1.0, 5.0}};
  auto scheme = CorrelatedGaussianScheme::Create(sigma_r);
  ASSERT_TRUE(scheme.ok());
  auto disguised = scheme.value().Disguise(synthetic.value().dataset, &rng);
  ASSERT_TRUE(disguised.ok());
  const Matrix sigma_y =
      stats::SampleCovariance(disguised.value().records());
  const Matrix expected = synthetic.value().covariance + sigma_r;
  EXPECT_LT(linalg::MaxAbsDifference(sigma_y, expected),
            0.05 * linalg::FrobeniusNorm(expected));
}

TEST(SchemesTest, AddNoiseAtMatchesIndependentNoiseStatistics) {
  const auto scheme = IndependentNoiseScheme::Gaussian(3, 2.0);
  ASSERT_TRUE(scheme.SupportsBatchNoise());
  const size_t n = 60000;
  Matrix chunk(n, 3, 0.0);
  scheme.AddNoiseAt(stats::Philox(17, 0), 0, n, &chunk);
  const Matrix cov = stats::SampleCovariance(chunk);
  EXPECT_NEAR(cov(0, 0), 4.0, 0.15);
  EXPECT_NEAR(cov(1, 1), 4.0, 0.15);
  EXPECT_NEAR(cov(0, 1), 0.0, 0.1);
  const linalg::Vector means = stats::ColumnMeans(chunk);
  for (size_t j = 0; j < 3; ++j) EXPECT_NEAR(means[j], 0.0, 0.05);
}

TEST(SchemesTest, AddNoiseAtIsSplitInvariant) {
  // Adding noise for [0, n) in one call equals any sequence of
  // consecutive-range calls — the chunk-size invariance the perturbing
  // record source builds on.
  const auto scheme = IndependentNoiseScheme::Uniform(2, 1.5);
  ASSERT_TRUE(scheme.SupportsBatchNoise());
  const stats::Philox base(3, 2);
  const size_t n = 700;
  Matrix whole(n, 2, 0.0);
  scheme.AddNoiseAt(base, 0, n, &whole);
  for (size_t chunk_rows : {size_t{1}, size_t{7}, size_t{64}, size_t{256}}) {
    Matrix pieces(n, 2, 0.0);
    for (size_t begin = 0; begin < n; begin += chunk_rows) {
      const size_t rows = std::min(chunk_rows, n - begin);
      Matrix piece(rows, 2, 0.0);
      scheme.AddNoiseAt(base, begin, rows, &piece);
      for (size_t i = 0; i < rows; ++i) {
        for (size_t j = 0; j < 2; ++j) pieces(begin + i, j) = piece(i, j);
      }
    }
    EXPECT_EQ(linalg::MaxAbsDifference(whole, pieces), 0.0)
        << "chunk " << chunk_rows;
  }
}

TEST(SchemesTest, CorrelatedAddNoiseAtReproducesCovariance) {
  Matrix sigma_r{{4.0, 1.2}, {1.2, 2.0}};
  auto scheme = CorrelatedGaussianScheme::Create(sigma_r);
  ASSERT_TRUE(scheme.ok());
  ASSERT_TRUE(scheme.value().SupportsBatchNoise());
  const size_t n = 60000;
  Matrix chunk(n, 2, 0.0);
  scheme.value().AddNoiseAt(stats::Philox(23, 0), 0, n, &chunk);
  const Matrix cov = stats::SampleCovariance(chunk);
  EXPECT_LT(linalg::MaxAbsDifference(cov, sigma_r),
            0.05 * linalg::FrobeniusNorm(sigma_r));
}

}  // namespace
}  // namespace perturb
}  // namespace randrecon
