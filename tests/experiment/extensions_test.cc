#include "experiment/extensions.h"

#include <gtest/gtest.h>

namespace randrecon {
namespace experiment {
namespace {

CommonConfig FastCommon() {
  CommonConfig common;
  common.num_records = 400;
  common.num_trials = 1;
  return common;
}

TEST(PartialDisclosureSweepTest, ProducesTwoAlignedSeries) {
  PartialDisclosureConfig config;
  config.common = FastCommon();
  config.num_attributes = 12;
  config.known_counts = {0, 2, 6};
  auto result = RunPartialDisclosureSweep(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().series.size(), 2u);
  EXPECT_EQ(result.value().series[0].name, "est");
  EXPECT_EQ(result.value().series[1].name, "oracle");
  for (const Series& s : result.value().series) {
    ASSERT_EQ(s.points.size(), 3u);
    EXPECT_EQ(s.points[0].x, 0.0);
    EXPECT_EQ(s.points[2].x, 6.0);
  }
}

TEST(PartialDisclosureSweepTest, OracleCurveDecreasesWithKnowledge) {
  PartialDisclosureConfig config;
  config.common = FastCommon();
  config.common.num_records = 800;
  config.num_attributes = 12;
  config.num_principal = 2;
  config.known_counts = {0, 4, 10};
  auto result = RunPartialDisclosureSweep(config);
  ASSERT_TRUE(result.ok());
  const Series* oracle = result.value().FindSeries("oracle");
  ASSERT_NE(oracle, nullptr);
  EXPECT_LT(oracle->points[2].y, oracle->points[0].y);
}

TEST(PartialDisclosureSweepTest, RejectsKnownCountAtOrAboveM) {
  PartialDisclosureConfig config;
  config.common = FastCommon();
  config.num_attributes = 8;
  config.known_counts = {8};
  EXPECT_FALSE(RunPartialDisclosureSweep(config).ok());
}

TEST(SerialDependencySweepTest, ProducesWindowSeriesPlusNdr) {
  SerialDependencyConfig config;
  config.common = FastCommon();
  config.common.num_records = 2000;
  config.coefficients = {0.0, 0.9};
  config.windows = {4, 16};
  auto result = RunSerialDependencySweep(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().series.size(), 3u);
  EXPECT_EQ(result.value().series[0].name, "w=4");
  EXPECT_EQ(result.value().series[2].name, "NDR");
  // NDR sits at sigma regardless of rho.
  for (const SeriesPoint& p : result.value().series[2].points) {
    EXPECT_NEAR(p.y, config.common.noise_stddev,
                0.2 * config.common.noise_stddev);
  }
}

TEST(SerialDependencySweepTest, StrongerDependenceLowersError) {
  SerialDependencyConfig config;
  config.common = FastCommon();
  config.common.num_records = 3000;
  config.coefficients = {0.0, 0.95};
  config.windows = {16};
  auto result = RunSerialDependencySweep(config);
  ASSERT_TRUE(result.ok());
  const Series* w16 = result.value().FindSeries("w=16");
  ASSERT_NE(w16, nullptr);
  EXPECT_LT(w16->points[1].y, 0.75 * w16->points[0].y);
}

TEST(SerialDependencySweepTest, Validation) {
  SerialDependencyConfig config;
  config.common = FastCommon();
  config.coefficients = {1.0};
  EXPECT_FALSE(RunSerialDependencySweep(config).ok());
  config.coefficients = {0.5};
  config.windows = {};
  EXPECT_FALSE(RunSerialDependencySweep(config).ok());
  config.windows = {8};
  config.stationary_stddev = 0.0;
  EXPECT_FALSE(RunSerialDependencySweep(config).ok());
}

TEST(ExtensionSweepsTest, Deterministic) {
  PartialDisclosureConfig config;
  config.common = FastCommon();
  config.num_attributes = 10;
  config.known_counts = {0, 3};
  auto a = RunPartialDisclosureSweep(config);
  auto b = RunPartialDisclosureSweep(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t s = 0; s < a.value().series.size(); ++s) {
    for (size_t i = 0; i < a.value().series[s].points.size(); ++i) {
      EXPECT_DOUBLE_EQ(a.value().series[s].points[i].y,
                       b.value().series[s].points[i].y);
    }
  }
}

}  // namespace
}  // namespace experiment
}  // namespace randrecon
