// Fast plumbing tests for the figure runners (small sweeps, 1 trial).
// The paper's qualitative claims are asserted at full strength in
// tests/integration/paper_claims_test.cc.

#include "experiment/figures.h"

#include <gtest/gtest.h>

namespace randrecon {
namespace experiment {
namespace {

CommonConfig FastCommon() {
  CommonConfig common;
  common.num_records = 300;
  common.num_trials = 1;
  return common;
}

TEST(Figure1RunnerTest, ProducesFourAlignedSeries) {
  Figure1Config config;
  config.common = FastCommon();
  config.attribute_counts = {5, 20, 40};
  auto result = RunFigure1(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().series.size(), 4u);
  EXPECT_EQ(result.value().series[0].name, "UDR");
  EXPECT_EQ(result.value().series[3].name, "BE-DR");
  for (const Series& s : result.value().series) {
    ASSERT_EQ(s.points.size(), 3u) << s.name;
    EXPECT_EQ(s.points[0].x, 5.0);
    EXPECT_EQ(s.points[2].x, 40.0);
    for (const SeriesPoint& p : s.points) EXPECT_GT(p.y, 0.0);
  }
}

TEST(Figure1RunnerTest, RejectsBadConfig) {
  Figure1Config config;
  config.common = FastCommon();
  config.attribute_counts = {3};  // Below num_principal = 5.
  EXPECT_FALSE(RunFigure1(config).ok());

  Figure1Config zero_trials;
  zero_trials.common = FastCommon();
  zero_trials.common.num_trials = 0;
  EXPECT_FALSE(RunFigure1(zero_trials).ok());

  Figure1Config bad_sigma;
  bad_sigma.common = FastCommon();
  bad_sigma.common.noise_stddev = 0.0;
  EXPECT_FALSE(RunFigure1(bad_sigma).ok());
}

TEST(Figure2RunnerTest, ProducesSeries) {
  Figure2Config config;
  config.common = FastCommon();
  config.num_attributes = 30;
  config.principal_counts = {2, 15, 30};
  auto result = RunFigure2(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().series.size(), 4u);
  EXPECT_EQ(result.value().series[0].points.size(), 3u);
}

TEST(Figure2RunnerTest, RejectsInvalidPrincipalCounts) {
  Figure2Config config;
  config.common = FastCommon();
  config.num_attributes = 10;
  config.principal_counts = {11};
  EXPECT_FALSE(RunFigure2(config).ok());
  config.principal_counts = {0};
  EXPECT_FALSE(RunFigure2(config).ok());
}

TEST(Figure3RunnerTest, ProducesSeries) {
  Figure3Config config;
  config.common = FastCommon();
  config.num_attributes = 30;
  config.num_principal = 6;
  config.residual_eigenvalues = {1.0, 25.0};
  auto result = RunFigure3(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().series.size(), 4u);
  EXPECT_EQ(result.value().series[0].points[1].x, 25.0);
}

TEST(Figure3RunnerTest, RejectsResidualAboveLambda) {
  Figure3Config config;
  config.common = FastCommon();
  config.residual_eigenvalues = {500.0};  // >= principal 400.
  EXPECT_FALSE(RunFigure3(config).ok());
}

TEST(Figure4RunnerTest, ProducesThreeSeriesAndNote) {
  Figure4Config config;
  config.common = FastCommon();
  config.num_attributes = 30;
  config.num_principal = 15;
  config.similarity_knobs = {0.0, 0.5, 1.0};
  auto result = RunFigure4(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().series.size(), 3u);
  EXPECT_EQ(result.value().series[0].name, "SF");
  EXPECT_EQ(result.value().series[1].name, "PCA-DR");
  EXPECT_EQ(result.value().series[2].name, "Improved-BE-DR");
  ASSERT_EQ(result.value().notes.size(), 1u);
  EXPECT_NE(result.value().notes[0].find("independent"), std::string::npos);
  // Dissimilarity x-axis is increasing in the knob.
  const Series& pca = result.value().series[1];
  EXPECT_LT(pca.points[0].x, pca.points[1].x);
  EXPECT_LT(pca.points[1].x, pca.points[2].x);
}

TEST(Figure4RunnerTest, RejectsKnobOutOfRange) {
  Figure4Config config;
  config.common = FastCommon();
  config.similarity_knobs = {1.5};
  EXPECT_FALSE(RunFigure4(config).ok());
}

TEST(FigureRunnersTest, DeterministicAcrossRuns) {
  Figure1Config config;
  config.common = FastCommon();
  config.attribute_counts = {10, 20};
  auto a = RunFigure1(config);
  auto b = RunFigure1(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t s = 0; s < a.value().series.size(); ++s) {
    for (size_t i = 0; i < a.value().series[s].points.size(); ++i) {
      EXPECT_DOUBLE_EQ(a.value().series[s].points[i].y,
                       b.value().series[s].points[i].y);
    }
  }
}

TEST(FigureRunnersTest, HonestAttackerModeAlsoRuns) {
  Figure1Config config;
  config.common = FastCommon();
  config.common.oracle_moments = false;
  config.attribute_counts = {10, 30};
  auto result = RunFigure1(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().series.size(), 4u);
}

}  // namespace
}  // namespace experiment
}  // namespace randrecon
