#include "experiment/series.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace randrecon {
namespace experiment {
namespace {

ExperimentResult MakeResult() {
  ExperimentResult result;
  result.experiment_id = "Figure X";
  result.title = "Test";
  result.x_label = "x";
  result.y_label = "RMSE";
  result.series = {
      {"A", {{1.0, 10.0}, {2.0, 20.0}}},
      {"B", {{1.0, 11.0}, {2.0, 21.0}}},
  };
  result.notes.push_back("a note");
  return result;
}

TEST(SeriesTest, FindSeries) {
  ExperimentResult r = MakeResult();
  ASSERT_NE(r.FindSeries("A"), nullptr);
  EXPECT_EQ(r.FindSeries("A")->points[1].y, 20.0);
  EXPECT_EQ(r.FindSeries("missing"), nullptr);
}

TEST(SeriesTest, TableContainsHeadersValuesAndNotes) {
  const std::string table = FormatExperimentTable(MakeResult());
  EXPECT_NE(table.find("Figure X"), std::string::npos);
  EXPECT_NE(table.find("A"), std::string::npos);
  EXPECT_NE(table.find("B"), std::string::npos);
  EXPECT_NE(table.find("21.0000"), std::string::npos);
  EXPECT_NE(table.find("note: a note"), std::string::npos);
}

TEST(SeriesTest, CsvLayout) {
  auto csv = ExperimentToCsv(MakeResult());
  ASSERT_TRUE(csv.ok());
  EXPECT_NE(csv.value().find("x,A,B"), std::string::npos);
  EXPECT_NE(csv.value().find("1.000000,10.000000,11.000000"),
            std::string::npos);
  EXPECT_NE(csv.value().find("2.000000,20.000000,21.000000"),
            std::string::npos);
}

TEST(SeriesTest, CsvRejectsLengthMismatch) {
  ExperimentResult r = MakeResult();
  r.series[1].points.pop_back();
  EXPECT_FALSE(ExperimentToCsv(r).ok());
}

TEST(SeriesTest, CsvRejectsMismatchedXGrids) {
  ExperimentResult r = MakeResult();
  r.series[1].points[0].x = 99.0;
  EXPECT_FALSE(ExperimentToCsv(r).ok());
}

TEST(SeriesTest, EmptyResultFormatsWithoutCrash) {
  ExperimentResult r;
  r.experiment_id = "empty";
  EXPECT_NE(FormatExperimentTable(r).find("empty"), std::string::npos);
  EXPECT_TRUE(ExperimentToCsv(r).ok());
}

TEST(SeriesTest, WriteCsvRoundTrip) {
  const std::string path = ::testing::TempDir() + "/series_test.csv";
  ASSERT_TRUE(WriteExperimentCsv(MakeResult(), path).ok());
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(SeriesTest, WriteCsvToBadPathFails) {
  EXPECT_EQ(WriteExperimentCsv(MakeResult(), "/no/such/dir/x.csv").code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace experiment
}  // namespace randrecon
