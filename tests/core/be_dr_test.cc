#include "core/be_dr.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/ndr.h"
#include "core/pca_dr.h"
#include "core/udr.h"
#include "data/synthetic.h"
#include "linalg/matrix_util.h"
#include "perturb/schemes.h"
#include "stats/moments.h"

namespace randrecon {
namespace core {
namespace {

using linalg::Matrix;
using linalg::Vector;

struct Scenario {
  data::SyntheticDataset synthetic;
  data::Dataset disguised;
  perturb::NoiseModel noise;
};

Scenario MakeScenario(size_t m, size_t p, double principal, double residual,
                      size_t n, double sigma, uint64_t seed) {
  stats::Rng rng(seed);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = data::TwoLevelSpectrum(m, p, principal, residual);
  auto synthetic = data::GenerateSpectrumDataset(spec, n, &rng);
  EXPECT_TRUE(synthetic.ok());
  auto scheme = perturb::IndependentNoiseScheme::Gaussian(m, sigma);
  auto disguised = scheme.Disguise(synthetic.value().dataset, &rng);
  EXPECT_TRUE(disguised.ok());
  return {std::move(synthetic).value(), std::move(disguised).value(),
          scheme.noise_model()};
}

TEST(BeDrTest, BeatsNdrAndUdrOnCorrelatedData) {
  Scenario s = MakeScenario(25, 3, 600.0, 1.0, 1500, 5.0, 121);
  const Matrix& x = s.synthetic.dataset.records();
  BayesEstimateReconstructor be;
  UdrOptions udr_options;
  udr_options.estimator = UdrDensityEstimator::kGaussianClosedForm;
  UdrReconstructor udr(udr_options);
  NdrReconstructor ndr;
  auto be_hat = be.Reconstruct(s.disguised.records(), s.noise);
  auto udr_hat = udr.Reconstruct(s.disguised.records(), s.noise);
  auto ndr_hat = ndr.Reconstruct(s.disguised.records(), s.noise);
  ASSERT_TRUE(be_hat.ok());
  ASSERT_TRUE(udr_hat.ok());
  ASSERT_TRUE(ndr_hat.ok());
  const double be_rmse = stats::RootMeanSquareError(x, be_hat.value());
  EXPECT_LT(be_rmse, stats::RootMeanSquareError(x, udr_hat.value()));
  EXPECT_LT(be_rmse, stats::RootMeanSquareError(x, ndr_hat.value()));
}

TEST(BeDrTest, OracleBeBeatsOraclePca) {
  // §6/§7: "BE-DR achieves better performance than PCA-DR ... consistent
  // throughout all our experiments" — exact statement holds with the
  // §5.3 oracle covariance both schemes share.
  Scenario s = MakeScenario(40, 5, 700.0, 1.0, 1000, 5.0, 122);
  const Matrix original_cov =
      stats::SampleCovariance(s.synthetic.dataset.records());
  BeDrOptions be_options;
  be_options.oracle_covariance = original_cov;
  PcaOptions pca_options;
  pca_options.oracle_covariance = original_cov;
  auto be_hat = BayesEstimateReconstructor(be_options)
                    .Reconstruct(s.disguised.records(), s.noise);
  auto pca_hat = PcaReconstructor(pca_options)
                     .Reconstruct(s.disguised.records(), s.noise);
  ASSERT_TRUE(be_hat.ok());
  ASSERT_TRUE(pca_hat.ok());
  const Matrix& x = s.synthetic.dataset.records();
  EXPECT_LT(stats::RootMeanSquareError(x, be_hat.value()),
            stats::RootMeanSquareError(x, pca_hat.value()));
}

TEST(BeDrTest, LiteralFormulaMatchesGainForm) {
  // Eq. 11 evaluated verbatim must agree with the default gain form when
  // Σ̂x is invertible.
  Scenario s = MakeScenario(8, 2, 100.0, 2.0, 600, 3.0, 123);
  BeDrOptions literal;
  literal.use_literal_formula = true;
  literal.moment_options.eigen_floor = 1e-6;
  BeDrOptions gain;
  gain.moment_options.eigen_floor = 1e-6;
  auto literal_hat = BayesEstimateReconstructor(literal).Reconstruct(
      s.disguised.records(), s.noise);
  auto gain_hat = BayesEstimateReconstructor(gain).Reconstruct(
      s.disguised.records(), s.noise);
  ASSERT_TRUE(literal_hat.ok()) << literal_hat.status().ToString();
  ASSERT_TRUE(gain_hat.ok());
  EXPECT_LT(linalg::MaxAbsDifference(literal_hat.value(), gain_hat.value()),
            1e-6);
}

TEST(BeDrTest, Theorem81LiteralMatchesGainFormUnderCorrelatedNoise) {
  stats::Rng rng(124);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = data::TwoLevelSpectrum(6, 2, 80.0, 2.0);
  auto synthetic = data::GenerateSpectrumDataset(spec, 800, &rng);
  ASSERT_TRUE(synthetic.ok());
  auto scheme = perturb::CorrelatedGaussianScheme::MimicCovariance(
      synthetic.value().covariance, 0.2);
  ASSERT_TRUE(scheme.ok());
  auto disguised = scheme.value().Disguise(synthetic.value().dataset, &rng);
  ASSERT_TRUE(disguised.ok());

  BeDrOptions literal;
  literal.use_literal_formula = true;
  literal.moment_options.eigen_floor = 1e-6;
  BeDrOptions gain;
  gain.moment_options.eigen_floor = 1e-6;
  auto literal_hat = BayesEstimateReconstructor(literal).Reconstruct(
      disguised.value().records(), scheme.value().noise_model());
  auto gain_hat = BayesEstimateReconstructor(gain).Reconstruct(
      disguised.value().records(), scheme.value().noise_model());
  ASSERT_TRUE(literal_hat.ok()) << literal_hat.status().ToString();
  ASSERT_TRUE(gain_hat.ok());
  EXPECT_LT(linalg::MaxAbsDifference(literal_hat.value(), gain_hat.value()),
            1e-6);
}

TEST(BeDrTest, IndependentDataReducesToUnivariateShrinkage) {
  // §6: "when the correlations among data are low ... the results of
  // BE-DR should converge to the univariate data reconstruction."
  stats::Rng rng(125);
  const size_t n = 8000, m = 4;
  const double sx = 4.0, sigma = 3.0;
  Matrix x(n, m);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) x(i, j) = rng.Gaussian(0.0, sx);
  }
  auto scheme = perturb::IndependentNoiseScheme::Gaussian(m, sigma);
  Matrix y = x + scheme.GenerateNoise(n, &rng);

  BayesEstimateReconstructor be;
  UdrOptions udr_options;
  udr_options.estimator = UdrDensityEstimator::kGaussianClosedForm;
  UdrReconstructor udr(udr_options);
  auto be_hat = be.Reconstruct(y, scheme.noise_model());
  auto udr_hat = udr.Reconstruct(y, scheme.noise_model());
  ASSERT_TRUE(be_hat.ok());
  ASSERT_TRUE(udr_hat.ok());
  const double be_rmse = stats::RootMeanSquareError(x, be_hat.value());
  const double udr_rmse = stats::RootMeanSquareError(x, udr_hat.value());
  EXPECT_NEAR(be_rmse, udr_rmse, 0.05 * udr_rmse);
}

TEST(BeDrTest, GainFormHandlesSingularEstimatedCovariance) {
  // Strong rank deficiency: m = 10 but rank 1. The gain form must not
  // fail even though Σ̂x is (near-)singular.
  Scenario s = MakeScenario(10, 1, 500.0, 0.0, 400, 2.0, 126);
  BayesEstimateReconstructor be;
  auto x_hat = be.Reconstruct(s.disguised.records(), s.noise);
  ASSERT_TRUE(x_hat.ok()) << x_hat.status().ToString();
}

TEST(BeDrTest, LiteralFormulaFailsGracefullyOnSingularCovariance) {
  Scenario s = MakeScenario(2, 1, 50.0, 1.0, 300, 2.0, 127);
  BeDrOptions literal;
  literal.use_literal_formula = true;
  // An exactly singular prior covariance: Eq. 11 needs Σx⁻¹, which does
  // not exist; the gain form handles the same input fine.
  literal.oracle_covariance = Matrix::Diagonal({4.0, 0.0});
  auto x_hat = BayesEstimateReconstructor(literal).Reconstruct(
      s.disguised.records(), s.noise);
  EXPECT_FALSE(x_hat.ok());
  EXPECT_EQ(x_hat.status().code(), StatusCode::kNumericalError);
  EXPECT_NE(x_hat.status().message().find("eigen_floor"), std::string::npos);

  BeDrOptions gain;
  gain.oracle_covariance = Matrix::Diagonal({4.0, 0.0});
  EXPECT_TRUE(BayesEstimateReconstructor(gain)
                  .Reconstruct(s.disguised.records(), s.noise)
                  .ok());
}

TEST(BeDrTest, OracleMeanIsUsed) {
  Scenario s = MakeScenario(5, 1, 50.0, 1.0, 300, 2.0, 128);
  BeDrOptions options;
  options.oracle_mean = Vector(5, 1000.0);  // Deliberately absurd prior mean.
  auto biased = BayesEstimateReconstructor(options).Reconstruct(
      s.disguised.records(), s.noise);
  auto normal = BayesEstimateReconstructor().Reconstruct(
      s.disguised.records(), s.noise);
  ASSERT_TRUE(biased.ok());
  ASSERT_TRUE(normal.ok());
  // The absurd prior mean must pull the reconstruction away.
  EXPECT_GT(linalg::MaxAbsDifference(biased.value(), normal.value()), 1.0);
}

TEST(BeDrTest, OracleDimensionValidation) {
  Scenario s = MakeScenario(5, 1, 50.0, 1.0, 300, 2.0, 129);
  BeDrOptions bad_cov;
  bad_cov.oracle_covariance = Matrix::Identity(3);
  EXPECT_FALSE(BayesEstimateReconstructor(bad_cov)
                   .Reconstruct(s.disguised.records(), s.noise)
                   .ok());
  BeDrOptions bad_mean;
  bad_mean.oracle_mean = Vector(3, 0.0);
  EXPECT_FALSE(BayesEstimateReconstructor(bad_mean)
                   .Reconstruct(s.disguised.records(), s.noise)
                   .ok());
}

TEST(BeDrTest, ZeroNoiseLimitReturnsDataUnchanged) {
  // As σ → 0 the gain K → I and BE-DR trusts the observation completely.
  Scenario s = MakeScenario(6, 2, 100.0, 1.0, 500, 0.01, 130);
  BayesEstimateReconstructor be;
  auto x_hat = be.Reconstruct(s.disguised.records(), s.noise);
  ASSERT_TRUE(x_hat.ok());
  EXPECT_LT(linalg::MaxAbsDifference(x_hat.value(), s.disguised.records()),
            0.05);
}

TEST(BeDrTest, HugeNoiseShrinksToMean) {
  // As σ → ∞ the posterior collapses onto the prior mean.
  Scenario s = MakeScenario(4, 2, 10.0, 1.0, 2000, 1000.0, 131);
  BeDrOptions options;
  options.oracle_covariance = s.synthetic.covariance;
  options.oracle_mean = Vector(4, 0.0);
  auto x_hat = BayesEstimateReconstructor(options).Reconstruct(
      s.disguised.records(), s.noise);
  ASSERT_TRUE(x_hat.ok());
  for (size_t i = 0; i < 20; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_LT(std::fabs(x_hat.value()(i, j)), 1.0);
    }
  }
}

TEST(BeDrTest, NameIsStable) {
  EXPECT_EQ(BayesEstimateReconstructor().name(), "BE-DR");
}

}  // namespace
}  // namespace core
}  // namespace randrecon
