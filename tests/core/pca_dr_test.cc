#include "core/pca_dr.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/ndr.h"
#include "data/synthetic.h"
#include "linalg/matrix_util.h"
#include "perturb/schemes.h"
#include "stats/moments.h"

namespace randrecon {
namespace core {
namespace {

using linalg::Matrix;
using linalg::Vector;

/// Standard fixture data: spiked spectrum, disguised with iid Gaussian σ.
struct Scenario {
  data::SyntheticDataset synthetic;
  data::Dataset disguised;
  perturb::NoiseModel noise;
};

Scenario MakeScenario(size_t m, size_t p, double principal, double residual,
                      size_t n, double sigma, uint64_t seed) {
  stats::Rng rng(seed);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = data::TwoLevelSpectrum(m, p, principal, residual);
  auto synthetic = data::GenerateSpectrumDataset(spec, n, &rng);
  EXPECT_TRUE(synthetic.ok());
  auto scheme = perturb::IndependentNoiseScheme::Gaussian(m, sigma);
  auto disguised = scheme.Disguise(synthetic.value().dataset, &rng);
  EXPECT_TRUE(disguised.ok());
  return {std::move(synthetic).value(), std::move(disguised).value(),
          scheme.noise_model()};
}

TEST(SelectNumComponentsTest, FixedCountClamped) {
  PcaOptions options;
  options.selection = PcSelection::kFixedCount;
  options.fixed_count = 3;
  EXPECT_EQ(SelectNumComponents({9, 8, 7, 6}, options), 3u);
  options.fixed_count = 99;
  EXPECT_EQ(SelectNumComponents({9, 8, 7, 6}, options), 4u);
  options.fixed_count = 0;
  EXPECT_EQ(SelectNumComponents({9, 8, 7, 6}, options), 1u);
}

TEST(SelectNumComponentsTest, VarianceFraction) {
  PcaOptions options;
  options.selection = PcSelection::kVarianceFraction;
  options.variance_fraction = 0.90;
  // 100 + 80 = 180 of 200 = 90%.
  EXPECT_EQ(SelectNumComponents({100, 80, 15, 5}, options), 2u);
  options.variance_fraction = 0.91;
  EXPECT_EQ(SelectNumComponents({100, 80, 15, 5}, options), 3u);
  options.variance_fraction = 1.0;
  EXPECT_EQ(SelectNumComponents({100, 80, 15, 5}, options), 4u);
}

TEST(SelectNumComponentsTest, VarianceFractionIgnoresNegatives) {
  PcaOptions options;
  options.selection = PcSelection::kVarianceFraction;
  options.variance_fraction = 0.99;
  EXPECT_EQ(SelectNumComponents({10, -5, -5}, options), 1u);
}

TEST(SelectNumComponentsTest, LargestGapFindsTwoLevelSplit) {
  PcaOptions options;  // Default kLargestGap.
  EXPECT_EQ(SelectNumComponents({400, 399, 398, 5, 4, 3}, options), 3u);
  EXPECT_EQ(SelectNumComponents({1000, 2, 1}, options), 1u);
}

TEST(SelectNumComponentsTest, LargestGapFlatSpectrumKeepsAll) {
  // No dominant structure -> p = m (the dominance check).
  PcaOptions options;
  EXPECT_EQ(SelectNumComponents({100, 99, 98, 97}, options), 4u);
  EXPECT_EQ(SelectNumComponents({1.0}, options), 1u);
}

TEST(SelectNumComponentsTest, GapDominanceRatioIsRespected) {
  PcaOptions options;
  options.gap_dominance_ratio = 0.9;
  // λ2/λ1 = 0.5 < 0.9: accepted as a gap.
  EXPECT_EQ(SelectNumComponents({100, 50, 49}, options), 1u);
  options.gap_dominance_ratio = 0.4;
  // λ2/λ1 = 0.5 > 0.4: rejected, keep all.
  EXPECT_EQ(SelectNumComponents({100, 50, 49}, options), 3u);
}

TEST(PcaDrTest, FullRankProjectionReturnsDisguisedData) {
  // §5.2.2: "If p = m ... the reconstruction procedure gets back to Y."
  Scenario s = MakeScenario(6, 2, 50.0, 5.0, 400, 2.0, 111);
  PcaOptions options;
  options.selection = PcSelection::kFixedCount;
  options.fixed_count = 6;
  PcaReconstructor pca(options);
  auto x_hat = pca.Reconstruct(s.disguised.records(), s.noise);
  ASSERT_TRUE(x_hat.ok());
  EXPECT_LT(linalg::MaxAbsDifference(x_hat.value(), s.disguised.records()),
            1e-8);
}

TEST(PcaDrTest, BeatsNdrOnCorrelatedData) {
  Scenario s = MakeScenario(30, 3, 500.0, 1.0, 1000, 5.0, 112);
  PcaReconstructor pca;
  NdrReconstructor ndr;
  auto pca_hat = pca.Reconstruct(s.disguised.records(), s.noise);
  auto ndr_hat = ndr.Reconstruct(s.disguised.records(), s.noise);
  ASSERT_TRUE(pca_hat.ok());
  ASSERT_TRUE(ndr_hat.ok());
  const Matrix& x = s.synthetic.dataset.records();
  EXPECT_LT(stats::RootMeanSquareError(x, pca_hat.value()),
            0.6 * stats::RootMeanSquareError(x, ndr_hat.value()));
}

TEST(PcaDrTest, DiagnosticsReportSelectedComponents) {
  Scenario s = MakeScenario(20, 4, 300.0, 1.0, 2000, 5.0, 113);
  PcaReconstructor pca;
  PcaDiagnostics diagnostics;
  auto x_hat = pca.ReconstructWithDiagnostics(s.disguised.records(), s.noise,
                                              &diagnostics);
  ASSERT_TRUE(x_hat.ok());
  EXPECT_EQ(diagnostics.num_components, 4u);  // Gap rule finds the truth.
  EXPECT_EQ(diagnostics.eigenvalues.size(), 20u);
  EXPECT_GT(diagnostics.retained_variance_fraction, 0.9);
}

TEST(PcaDrTest, OracleCovarianceModeWorks) {
  Scenario s = MakeScenario(15, 3, 200.0, 1.0, 800, 5.0, 114);
  PcaOptions options;
  options.oracle_covariance = s.synthetic.covariance;
  PcaReconstructor pca(options);
  PcaDiagnostics diagnostics;
  auto x_hat = pca.ReconstructWithDiagnostics(s.disguised.records(), s.noise,
                                              &diagnostics);
  ASSERT_TRUE(x_hat.ok());
  EXPECT_EQ(diagnostics.num_components, 3u);
  // Oracle eigenvalues are exact.
  EXPECT_NEAR(diagnostics.eigenvalues[0], 200.0, 1e-6);
  EXPECT_NEAR(diagnostics.eigenvalues[3], 1.0, 1e-6);
}

TEST(PcaDrTest, OracleDimensionMismatchRejected) {
  Scenario s = MakeScenario(5, 2, 50.0, 1.0, 100, 2.0, 115);
  PcaOptions options;
  options.oracle_covariance = Matrix::Identity(4);
  PcaReconstructor pca(options);
  EXPECT_FALSE(pca.Reconstruct(s.disguised.records(), s.noise).ok());
}

TEST(PcaDrTest, MeansAreRestored) {
  // Non-zero-mean data: the §5.1.1 center/add-back steps must round-trip.
  stats::Rng rng(116);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = data::TwoLevelSpectrum(8, 2, 100.0, 1.0);
  spec.mean = Vector(8, 50.0);
  auto synthetic = data::GenerateSpectrumDataset(spec, 3000, &rng);
  ASSERT_TRUE(synthetic.ok());
  auto scheme = perturb::IndependentNoiseScheme::Gaussian(8, 3.0);
  auto disguised = scheme.Disguise(synthetic.value().dataset, &rng);
  ASSERT_TRUE(disguised.ok());
  PcaReconstructor pca;
  auto x_hat = pca.Reconstruct(disguised.value().records(), scheme.noise_model());
  ASSERT_TRUE(x_hat.ok());
  const Vector means = stats::ColumnMeans(x_hat.value());
  for (size_t j = 0; j < 8; ++j) EXPECT_NEAR(means[j], 50.0, 0.5);
}

TEST(PcaDrTest, HigherCorrelationGivesBetterReconstruction) {
  // §5.2: more redundancy -> more noise filtered. Same m, increasing p
  // (weaker correlation) must not improve accuracy.
  double prev_rmse = 0.0;
  for (size_t p : {2u, 8u, 16u}) {
    Scenario s = MakeScenario(16, p, 1600.0 / static_cast<double>(p), 1.0,
                              1500, 5.0, 117);
    PcaReconstructor pca;
    auto x_hat = pca.Reconstruct(s.disguised.records(), s.noise);
    ASSERT_TRUE(x_hat.ok());
    const double rmse = stats::RootMeanSquareError(
        s.synthetic.dataset.records(), x_hat.value());
    if (p > 2u) {
      EXPECT_GT(rmse, prev_rmse) << "p=" << p;
    }
    prev_rmse = rmse;
  }
}

TEST(PcaDrTest, RejectsShapeMismatch) {
  PcaReconstructor pca;
  EXPECT_FALSE(
      pca.Reconstruct(Matrix(5, 3),
                      perturb::NoiseModel::IndependentGaussian(2, 1.0))
          .ok());
}

TEST(PcaDrTest, NameIsStable) { EXPECT_EQ(PcaReconstructor().name(), "PCA-DR"); }

class PcaFixedCountSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(PcaFixedCountSweep, NoiseReductionFollowsTheorem52Trend) {
  // Residual noise MSE grows with p (δ² = σ² p/m), so with a strongly
  // correlated signal the total error should grow once p exceeds the
  // true signal rank.
  const size_t p = GetParam();
  Scenario s = MakeScenario(20, 2, 900.0, 0.01, 3000, 5.0, 118);
  PcaOptions options;
  options.selection = PcSelection::kFixedCount;
  options.fixed_count = p;
  PcaReconstructor pca(options);
  auto x_hat = pca.Reconstruct(s.disguised.records(), s.noise);
  ASSERT_TRUE(x_hat.ok());
  const double mse = stats::MeanSquareError(s.synthetic.dataset.records(),
                                            x_hat.value());
  // Theorem 5.2 lower bound (noise part alone): σ² p/m; allow estimation
  // slack. Signal loss above rank 2 is negligible (residual 0.01).
  const double noise_part =
      25.0 * static_cast<double>(p) / 20.0;
  EXPECT_GT(mse, 0.6 * noise_part) << "p=" << p;
  EXPECT_LT(mse, noise_part + 3.0) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(ComponentCounts, PcaFixedCountSweep,
                         ::testing::Values(2, 5, 10, 15, 20));

}  // namespace
}  // namespace core
}  // namespace randrecon
