#include "core/attack_suite.h"

#include <gtest/gtest.h>

#include "core/ndr.h"
#include "data/synthetic.h"
#include "perturb/schemes.h"

namespace randrecon {
namespace core {
namespace {

using linalg::Matrix;

TEST(AttackSuiteTest, PaperSuiteHasFiveAttacks) {
  AttackSuite suite = AttackSuite::PaperSuite();
  EXPECT_EQ(suite.size(), 5u);
  EXPECT_EQ(suite.attack(0).name(), "NDR");
  EXPECT_EQ(suite.attack(1).name(), "UDR");
  EXPECT_EQ(suite.attack(2).name(), "SF");
  EXPECT_EQ(suite.attack(3).name(), "PCA-DR");
  EXPECT_EQ(suite.attack(4).name(), "BE-DR");
}

TEST(AttackSuiteTest, RunAllProducesOneReportPerAttack) {
  stats::Rng rng(151);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = data::TwoLevelSpectrum(10, 2, 200.0, 1.0);
  auto synthetic = data::GenerateSpectrumDataset(spec, 500, &rng);
  ASSERT_TRUE(synthetic.ok());
  auto scheme = perturb::IndependentNoiseScheme::Gaussian(10, 5.0);
  auto disguised = scheme.Disguise(synthetic.value().dataset, &rng);
  ASSERT_TRUE(disguised.ok());

  AttackSuite suite = AttackSuite::PaperSuite();
  auto reports = suite.RunAll(synthetic.value().dataset, disguised.value(),
                              scheme.noise_model());
  ASSERT_TRUE(reports.ok()) << reports.status().ToString();
  ASSERT_EQ(reports.value().size(), 5u);
  // On highly correlated data, the correlation-aware attacks must beat
  // NDR (rmse σ = 5).
  for (const ReconstructionReport& report : reports.value()) {
    if (report.attack_name == "PCA-DR" || report.attack_name == "BE-DR") {
      EXPECT_LT(report.rmse, 4.0) << report.attack_name;
    }
    if (report.attack_name == "NDR") {
      EXPECT_NEAR(report.rmse, 5.0, 0.5);
    }
  }
}

TEST(AttackSuiteTest, CustomSuite) {
  AttackSuite suite;
  suite.Add(std::make_unique<NdrReconstructor>())
      .Add(std::make_unique<NdrReconstructor>());
  EXPECT_EQ(suite.size(), 2u);
}

TEST(AttackSuiteTest, RunAllFailsOnShapeMismatch) {
  AttackSuite suite = AttackSuite::PaperSuite();
  auto reports = suite.RunAll(Matrix(10, 2), Matrix(10, 2),
                              perturb::NoiseModel::IndependentGaussian(3, 1.0));
  EXPECT_FALSE(reports.ok());
}

TEST(AttackSuiteDeathTest, AddNullAborts) {
  AttackSuite suite;
  EXPECT_DEATH({ suite.Add(nullptr); }, "RR_CHECK");
}

}  // namespace
}  // namespace core
}  // namespace randrecon
