#include "core/udr.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/ndr.h"
#include "perturb/schemes.h"
#include "stats/moments.h"
#include "stats/rng.h"

namespace randrecon {
namespace core {
namespace {

using linalg::Matrix;

/// Original: one column of N(mu, sx²); returns (X, Y) with noise σ.
std::pair<Matrix, Matrix> MakeUnivariate(size_t n, double mu, double sx,
                                         double sigma, uint64_t seed) {
  stats::Rng rng(seed);
  Matrix x(n, 1);
  for (size_t i = 0; i < n; ++i) x(i, 0) = rng.Gaussian(mu, sx);
  Matrix y = x;
  for (size_t i = 0; i < n; ++i) y(i, 0) += rng.Gaussian(0.0, sigma);
  return {x, y};
}

TEST(UdrTest, GaussianClosedFormMatchesTheoreticalShrinkage) {
  // For X ~ N(mu, sx²), the exact posterior mean is
  // mu + sx²/(sx²+σ²)(y − mu); RMSE ≈ sqrt(sx²σ²/(sx²+σ²)).
  const double sx = 4.0, sigma = 3.0;
  auto [x, y] = MakeUnivariate(20000, 5.0, sx, sigma, 93);
  UdrOptions options;
  options.estimator = UdrDensityEstimator::kGaussianClosedForm;
  UdrReconstructor udr(options);
  auto x_hat =
      udr.Reconstruct(y, perturb::NoiseModel::IndependentGaussian(1, sigma));
  ASSERT_TRUE(x_hat.ok());
  const double expected_rmse =
      std::sqrt(sx * sx * sigma * sigma / (sx * sx + sigma * sigma));
  EXPECT_NEAR(stats::RootMeanSquareError(x, x_hat.value()), expected_rmse,
              0.05 * expected_rmse);
}

TEST(UdrTest, BeatsNdrOnGaussianData) {
  const double sigma = 3.0;
  auto [x, y] = MakeUnivariate(10000, 0.0, 4.0, sigma, 94);
  const perturb::NoiseModel noise =
      perturb::NoiseModel::IndependentGaussian(1, sigma);
  UdrOptions fast;
  fast.estimator = UdrDensityEstimator::kGaussianClosedForm;
  auto udr_hat = UdrReconstructor(fast).Reconstruct(y, noise);
  auto ndr_hat = NdrReconstructor().Reconstruct(y, noise);
  ASSERT_TRUE(udr_hat.ok());
  ASSERT_TRUE(ndr_hat.ok());
  EXPECT_LT(stats::RootMeanSquareError(x, udr_hat.value()),
            stats::RootMeanSquareError(x, ndr_hat.value()));
}

TEST(UdrTest, As2000GridAgreesWithClosedFormOnGaussianData) {
  // Ablation A5's claim in unit-test form.
  const double sigma = 2.0;
  auto [x, y] = MakeUnivariate(3000, 1.0, 3.0, sigma, 95);
  const perturb::NoiseModel noise =
      perturb::NoiseModel::IndependentGaussian(1, sigma);
  UdrOptions grid;
  grid.estimator = UdrDensityEstimator::kAs2000Grid;
  UdrOptions closed;
  closed.estimator = UdrDensityEstimator::kGaussianClosedForm;
  auto grid_hat = UdrReconstructor(grid).Reconstruct(y, noise);
  auto closed_hat = UdrReconstructor(closed).Reconstruct(y, noise);
  ASSERT_TRUE(grid_hat.ok()) << grid_hat.status().ToString();
  ASSERT_TRUE(closed_hat.ok());
  const double rmse_grid = stats::RootMeanSquareError(x, grid_hat.value());
  const double rmse_closed = stats::RootMeanSquareError(x, closed_hat.value());
  EXPECT_NEAR(rmse_grid, rmse_closed, 0.1 * rmse_closed);
}

TEST(UdrTest, GridHandlesBimodalDataBetterThanGaussianAssumption) {
  // Two far-apart clusters: the Gaussian closed form shrinks toward the
  // global mean (between the clusters), the AS2000 grid posterior snaps
  // to the nearest cluster.
  stats::Rng rng(96);
  const size_t n = 4000;
  Matrix x(n, 1);
  for (size_t i = 0; i < n; ++i) {
    const double center = (i % 2 == 0) ? -10.0 : 10.0;
    x(i, 0) = rng.Gaussian(center, 1.0);
  }
  const double sigma = 2.0;
  Matrix y = x;
  for (size_t i = 0; i < n; ++i) y(i, 0) += rng.Gaussian(0.0, sigma);
  const perturb::NoiseModel noise =
      perturb::NoiseModel::IndependentGaussian(1, sigma);
  UdrOptions grid;
  grid.estimator = UdrDensityEstimator::kAs2000Grid;
  UdrOptions closed;
  closed.estimator = UdrDensityEstimator::kGaussianClosedForm;
  auto grid_hat = UdrReconstructor(grid).Reconstruct(y, noise);
  auto closed_hat = UdrReconstructor(closed).Reconstruct(y, noise);
  ASSERT_TRUE(grid_hat.ok());
  ASSERT_TRUE(closed_hat.ok());
  EXPECT_LT(stats::RootMeanSquareError(x, grid_hat.value()),
            stats::RootMeanSquareError(x, closed_hat.value()));
}

TEST(UdrTest, TreatsAttributesIndependently) {
  // Permuting one column's rows must not change another column's
  // reconstruction (UDR uses no cross-attribute information).
  stats::Rng rng(97);
  Matrix y(200, 2);
  for (size_t i = 0; i < 200; ++i) {
    y(i, 0) = rng.Gaussian(0.0, 3.0);
    y(i, 1) = rng.Gaussian(5.0, 2.0);
  }
  const perturb::NoiseModel noise =
      perturb::NoiseModel::IndependentGaussian(2, 1.0);
  UdrOptions options;
  options.estimator = UdrDensityEstimator::kGaussianClosedForm;
  UdrReconstructor udr(options);
  auto base = udr.Reconstruct(y, noise);
  ASSERT_TRUE(base.ok());

  Matrix y_permuted = y;
  // Reverse column 1.
  for (size_t i = 0; i < 200; ++i) y_permuted(i, 1) = y(199 - i, 1);
  auto permuted = udr.Reconstruct(y_permuted, noise);
  ASSERT_TRUE(permuted.ok());
  for (size_t i = 0; i < 200; ++i) {
    EXPECT_DOUBLE_EQ(base.value()(i, 0), permuted.value()(i, 0));
  }
}

TEST(UdrTest, PerAttributeNoiseVariancesAreHonored) {
  // Attribute 0 disguised with σ=1, attribute 1 with σ=10 (via a
  // correlated model with diagonal covariance): shrinkage must differ.
  stats::Rng rng(98);
  const size_t n = 20000;
  Matrix x(n, 2);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.Gaussian(0.0, 3.0);
    x(i, 1) = rng.Gaussian(0.0, 3.0);
  }
  Matrix y = x;
  for (size_t i = 0; i < n; ++i) {
    y(i, 0) += rng.Gaussian(0.0, 1.0);
    y(i, 1) += rng.Gaussian(0.0, 10.0);
  }
  auto noise = perturb::NoiseModel::CorrelatedGaussian(
      Matrix::Diagonal({1.0, 100.0}));
  ASSERT_TRUE(noise.ok());
  UdrOptions options;
  options.estimator = UdrDensityEstimator::kGaussianClosedForm;
  auto x_hat = UdrReconstructor(options).Reconstruct(y, noise.value());
  ASSERT_TRUE(x_hat.ok());
  const linalg::Vector rmse = stats::PerAttributeRmse(x, x_hat.value());
  // Attribute 0: light noise, nearly full recovery; attribute 1: noise
  // dominates, shrinks toward the mean so error ≈ sx = 3.
  EXPECT_LT(rmse[0], 1.1);
  EXPECT_GT(rmse[1], 2.5);
  EXPECT_LT(rmse[1], 3.3);
}

TEST(UdrTest, RejectsShapeMismatch) {
  UdrReconstructor udr;
  EXPECT_FALSE(
      udr.Reconstruct(Matrix(2, 3),
                      perturb::NoiseModel::IndependentGaussian(2, 1.0))
          .ok());
}

TEST(UdrTest, NameIsStable) { EXPECT_EQ(UdrReconstructor().name(), "UDR"); }

}  // namespace
}  // namespace core
}  // namespace randrecon
