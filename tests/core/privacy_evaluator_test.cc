#include "core/privacy_evaluator.h"

#include <cmath>

#include <gtest/gtest.h>

namespace randrecon {
namespace core {
namespace {

using linalg::Matrix;

TEST(PrivacyEvaluatorTest, PerfectReconstructionHasZeroError) {
  Matrix x{{1.0, 2.0}, {3.0, 4.0}};
  auto report = EvaluateReconstruction("perfect", x, x);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report.value().rmse, 0.0);
  EXPECT_DOUBLE_EQ(report.value().mse, 0.0);
  EXPECT_DOUBLE_EQ(report.value().fraction_within_epsilon, 1.0);
  EXPECT_EQ(report.value().attack_name, "perfect");
}

TEST(PrivacyEvaluatorTest, KnownErrorValues) {
  Matrix x{{0.0, 0.0}, {0.0, 0.0}};
  Matrix x_hat{{3.0, 0.0}, {4.0, 0.0}};
  auto report = EvaluateReconstruction("a", x, x_hat, 1.0);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report.value().mse, 25.0 / 4.0);
  EXPECT_DOUBLE_EQ(report.value().rmse, 2.5);
  EXPECT_DOUBLE_EQ(report.value().epsilon, 1.0);
  EXPECT_DOUBLE_EQ(report.value().fraction_within_epsilon, 0.5);
  EXPECT_DOUBLE_EQ(report.value().per_attribute_rmse[0],
                   std::sqrt(12.5));
  EXPECT_DOUBLE_EQ(report.value().per_attribute_rmse[1], 0.0);
}

TEST(PrivacyEvaluatorTest, DefaultEpsilonIsHalfPooledStddev) {
  // Original columns have variances 1 and 9 -> pooled std = sqrt(5).
  Matrix x{{1.0, 3.0}, {-1.0, -3.0}};
  auto report = EvaluateReconstruction("a", x, x);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report.value().epsilon, 0.5 * std::sqrt(5.0), 1e-12);
}

TEST(PrivacyEvaluatorTest, RelativeRmseNormalizesByPooledStd) {
  Matrix x{{1.0}, {-1.0}};  // Variance 1.
  Matrix x_hat{{3.0}, {1.0}};  // Error 2 everywhere.
  auto report = EvaluateReconstruction("a", x, x_hat);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report.value().relative_rmse, 2.0, 1e-12);
}

TEST(PrivacyEvaluatorTest, RejectsShapeMismatch) {
  EXPECT_FALSE(EvaluateReconstruction("a", Matrix(2, 2), Matrix(2, 3)).ok());
  EXPECT_FALSE(EvaluateReconstruction("a", Matrix(0, 0), Matrix(0, 0)).ok());
}

TEST(PrivacyEvaluatorTest, FormatReportContainsKeyNumbers) {
  Matrix x{{0.0}, {0.0}};
  Matrix x_hat{{1.0}, {1.0}};
  auto report = EvaluateReconstruction("ATTACK", x, x_hat, 2.0);
  ASSERT_TRUE(report.ok());
  const std::string line = FormatReport(report.value());
  EXPECT_NE(line.find("ATTACK"), std::string::npos);
  EXPECT_NE(line.find("rmse=1.0000"), std::string::npos);
  EXPECT_NE(line.find("100.0%"), std::string::npos);
}

TEST(PrivacyEvaluatorTest, TableSortsByRmseAscending) {
  Matrix x{{0.0}, {0.0}};
  Matrix close{{0.1}, {0.1}};
  Matrix far{{5.0}, {5.0}};
  auto good = EvaluateReconstruction("good", x, close);
  auto bad = EvaluateReconstruction("bad", x, far);
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(bad.ok());
  const std::string table =
      FormatReportTable({bad.value(), good.value()});
  const size_t good_pos = table.find("good");
  const size_t bad_pos = table.find("bad");
  ASSERT_NE(good_pos, std::string::npos);
  ASSERT_NE(bad_pos, std::string::npos);
  EXPECT_LT(good_pos, bad_pos);  // Most successful attack first.
}

}  // namespace
}  // namespace core
}  // namespace randrecon
