#include "core/numerical_bayes.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/be_dr.h"
#include "data/synthetic.h"
#include "linalg/matrix_util.h"
#include "linalg/vector_ops.h"
#include "perturb/schemes.h"
#include "stats/moments.h"

namespace randrecon {
namespace core {
namespace {

using linalg::Matrix;
using linalg::Vector;

GaussianMixturePrior SingleComponent(const Vector& mean,
                                     const Matrix& covariance) {
  auto prior = GaussianMixturePrior::Create(
      {GaussianComponent{1.0, mean, covariance}});
  EXPECT_TRUE(prior.ok()) << prior.status().ToString();
  return std::move(prior).value();
}

TEST(GaussianMixturePriorTest, CreateValidation) {
  EXPECT_FALSE(GaussianMixturePrior::Create({}).ok());
  // Dimension mismatch between components.
  EXPECT_FALSE(GaussianMixturePrior::Create(
                   {GaussianComponent{1.0, {0.0}, Matrix::Identity(1)},
                    GaussianComponent{1.0, {0.0, 0.0}, Matrix::Identity(2)}})
                   .ok());
  // Non-positive weight.
  EXPECT_FALSE(GaussianMixturePrior::Create(
                   {GaussianComponent{0.0, {0.0}, Matrix::Identity(1)}})
                   .ok());
  // Indefinite covariance.
  EXPECT_FALSE(GaussianMixturePrior::Create(
                   {GaussianComponent{1.0, {0.0, 0.0},
                                      Matrix::Diagonal({1.0, -1.0})}})
                   .ok());
}

TEST(GaussianMixturePriorTest, SingleGaussianLogDensity) {
  GaussianMixturePrior prior =
      SingleComponent({0.0, 0.0}, Matrix::Identity(2));
  // N(0; 0, I2) density = 1/(2π).
  EXPECT_NEAR(prior.LogDensity({0.0, 0.0}), -std::log(2.0 * M_PI), 1e-10);
  // One unit away: subtract 1/2.
  EXPECT_NEAR(prior.LogDensity({1.0, 0.0}), -std::log(2.0 * M_PI) - 0.5,
              1e-10);
}

TEST(GaussianMixturePriorTest, GradientMatchesFiniteDifferences) {
  std::vector<GaussianComponent> components;
  components.push_back(
      {0.4, {1.0, -2.0}, Matrix{{2.0, 0.5}, {0.5, 1.0}}});
  components.push_back(
      {0.6, {-3.0, 4.0}, Matrix{{1.5, -0.2}, {-0.2, 0.8}}});
  auto prior = GaussianMixturePrior::Create(std::move(components));
  ASSERT_TRUE(prior.ok());
  const Vector x{0.3, 0.7};
  const Vector gradient = prior.value().LogDensityGradient(x);
  const double h = 1e-6;
  for (size_t j = 0; j < 2; ++j) {
    Vector plus = x, minus = x;
    plus[j] += h;
    minus[j] -= h;
    const double numeric = (prior.value().LogDensity(plus) -
                            prior.value().LogDensity(minus)) /
                           (2.0 * h);
    EXPECT_NEAR(gradient[j], numeric, 1e-5) << "j=" << j;
  }
}

TEST(GaussianMixturePriorTest, WeightsAreNormalized) {
  auto prior = GaussianMixturePrior::Create(
      {GaussianComponent{3.0, {0.0}, Matrix::Identity(1)},
       GaussianComponent{1.0, {5.0}, Matrix::Identity(1)}});
  ASSERT_TRUE(prior.ok());
  EXPECT_NEAR(prior.value().component(0).weight, 0.75, 1e-12);
  EXPECT_NEAR(prior.value().component(1).weight, 0.25, 1e-12);
}

TEST(NumericalBayesTest, SingleComponentMatchesClosedFormEq11) {
  // With one Gaussian component the MAP optimum is Eq. 11; the gradient
  // ascent must land on the same reconstruction BE-DR computes.
  stats::Rng rng(241);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = data::TwoLevelSpectrum(5, 2, 60.0, 2.0);
  auto synthetic = data::GenerateSpectrumDataset(spec, 200, &rng);
  ASSERT_TRUE(synthetic.ok());
  auto scheme = perturb::IndependentNoiseScheme::Gaussian(5, 3.0);
  auto disguised = scheme.Disguise(synthetic.value().dataset, &rng);
  ASSERT_TRUE(disguised.ok());

  const Matrix original_cov =
      stats::SampleCovariance(synthetic.value().dataset.records());
  const Vector original_mean =
      stats::ColumnMeans(synthetic.value().dataset.records());

  NumericalBayesReconstructor numerical(
      SingleComponent(original_mean, original_cov));
  BeDrOptions closed_options;
  closed_options.oracle_covariance = original_cov;
  closed_options.oracle_mean = original_mean;
  BayesEstimateReconstructor closed(closed_options);

  auto numerical_hat =
      numerical.Reconstruct(disguised.value().records(), scheme.noise_model());
  auto closed_hat =
      closed.Reconstruct(disguised.value().records(), scheme.noise_model());
  ASSERT_TRUE(numerical_hat.ok()) << numerical_hat.status().ToString();
  ASSERT_TRUE(closed_hat.ok());
  EXPECT_LT(
      linalg::MaxAbsDifference(numerical_hat.value(), closed_hat.value()),
      1e-4);
}

TEST(NumericalBayesTest, MixturePriorBeatsSingleGaussianOnClusteredData) {
  // Two well-separated clusters: BE-DR's single-Gaussian prior smears
  // them; the mixture-prior MAP snaps records toward the right cluster.
  stats::Rng rng(242);
  Matrix means{{-15.0, -15.0, -15.0, -15.0}, {15.0, 15.0, 15.0, 15.0}};
  auto mixture = data::GenerateGaussianMixtureDataset(
      means, Vector{8.0, 4.0, 2.0, 1.0}, 600, &rng);
  ASSERT_TRUE(mixture.ok()) << mixture.status().ToString();
  const Matrix& x = mixture.value().dataset.records();

  const double sigma = 6.0;
  auto scheme = perturb::IndependentNoiseScheme::Gaussian(4, sigma);
  Matrix y = x + scheme.GenerateNoise(600, &rng);

  // The numerical attack with the true mixture prior.
  std::vector<GaussianComponent> components;
  for (size_t k = 0; k < 2; ++k) {
    components.push_back(GaussianComponent{
        0.5, means.Row(k), mixture.value().within_covariance});
  }
  auto prior = GaussianMixturePrior::Create(std::move(components));
  ASSERT_TRUE(prior.ok());
  NumericalBayesReconstructor numerical(std::move(prior).value());
  auto nb_hat = numerical.Reconstruct(y, scheme.noise_model());
  ASSERT_TRUE(nb_hat.ok());

  // Plain BE-DR (single Gaussian fitted to the pooled data).
  BayesEstimateReconstructor be;
  auto be_hat = be.Reconstruct(y, scheme.noise_model());
  ASSERT_TRUE(be_hat.ok());

  const double nb_rmse = stats::RootMeanSquareError(x, nb_hat.value());
  const double be_rmse = stats::RootMeanSquareError(x, be_hat.value());
  EXPECT_LT(nb_rmse, 0.8 * be_rmse);
  EXPECT_LT(nb_rmse, sigma);  // It must actually filter noise.
}

TEST(NumericalBayesTest, WorksWithCorrelatedNoiseModel) {
  stats::Rng rng(243);
  const Vector mean(3, 0.0);
  Matrix cov = Matrix::Diagonal({30.0, 20.0, 10.0});
  auto noise_model = perturb::NoiseModel::CorrelatedGaussian(
      Matrix{{4.0, 1.0, 0.0}, {1.0, 4.0, 1.0}, {0.0, 1.0, 4.0}});
  ASSERT_TRUE(noise_model.ok());
  NumericalBayesReconstructor numerical(SingleComponent(mean, cov));
  Matrix y = rng.GaussianMatrix(50, 3);
  auto x_hat = numerical.Reconstruct(y, noise_model.value());
  ASSERT_TRUE(x_hat.ok()) << x_hat.status().ToString();
  EXPECT_EQ(x_hat.value().rows(), 50u);
}

TEST(NumericalBayesTest, ValidationErrors) {
  NumericalBayesReconstructor numerical(
      SingleComponent({0.0, 0.0}, Matrix::Identity(2)));
  // Prior dimension mismatch.
  EXPECT_FALSE(numerical
                   .Reconstruct(Matrix(10, 3),
                                perturb::NoiseModel::IndependentGaussian(3, 1.0))
                   .ok());
  // Shape mismatch between data and noise model.
  EXPECT_FALSE(numerical
                   .Reconstruct(Matrix(10, 2),
                                perturb::NoiseModel::IndependentGaussian(3, 1.0))
                   .ok());
}

TEST(NumericalBayesTest, NameIsStable) {
  NumericalBayesReconstructor numerical(
      SingleComponent({0.0}, Matrix::Identity(1)));
  EXPECT_EQ(numerical.name(), "NB-DR");
}

}  // namespace
}  // namespace core
}  // namespace randrecon
