#include "core/serial_reconstruction.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/timeseries.h"
#include "linalg/vector_ops.h"
#include "stats/rng.h"

namespace randrecon {
namespace core {
namespace {

using linalg::Vector;

/// RMSE between two series.
double SeriesRmse(const Vector& a, const Vector& b) {
  EXPECT_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t t = 0; t < a.size(); ++t) {
    sum += (a[t] - b[t]) * (a[t] - b[t]);
  }
  return std::sqrt(sum / static_cast<double>(a.size()));
}

/// Generates an AR(1) series with stationary variance 100 and disguises
/// it with N(0, sigma²) noise.
struct SeriesScenario {
  Vector original;
  Vector disguised;
};

SeriesScenario MakeScenario(double rho, size_t length, double sigma,
                            uint64_t seed) {
  stats::Rng rng(seed);
  data::Ar1Spec spec;
  spec.coefficient = rho;
  spec.innovation_stddev = std::sqrt(100.0 * (1.0 - rho * rho));
  auto series = data::GenerateAr1Series(spec, length, &rng);
  EXPECT_TRUE(series.ok());
  SeriesScenario out;
  out.original = series.value();
  out.disguised = out.original;
  for (double& y : out.disguised) y += rng.Gaussian(0.0, sigma);
  return out;
}

TEST(SerialReconstructionTest, StrongDependenceFiltersMostNoise) {
  const double sigma = 5.0;
  SeriesScenario s = MakeScenario(0.95, 4000, sigma, 231);
  SerialReconstructionOptions options;
  options.window = 32;  // Long-memory series rewards a wide embedding.
  SerialCorrelationReconstructor attack(options);
  auto x_hat = attack.Reconstruct(s.disguised, sigma * sigma);
  ASSERT_TRUE(x_hat.ok()) << x_hat.status().ToString();
  // Raw noise floor is 5 and univariate shrinkage can only reach 4.47;
  // serial redundancy must get close to the Wiener-filter optimum, which
  // sits near 2.8 for this (rho, SNR) — allow a small estimation margin.
  EXPECT_LT(SeriesRmse(s.original, x_hat.value()), 3.1);
}

TEST(SerialReconstructionTest, WhiteNoiseSeriesGainsNothingBeyondShrinkage) {
  // rho = 0: no serial dependency to exploit; the best any method can do
  // is univariate shrinkage with RMSE sqrt(sx²σ²/(sx²+σ²)) ≈ 4.47.
  const double sigma = 5.0;
  SeriesScenario s = MakeScenario(0.0, 4000, sigma, 232);
  SerialCorrelationReconstructor attack;
  auto x_hat = attack.Reconstruct(s.disguised, sigma * sigma);
  ASSERT_TRUE(x_hat.ok());
  const double rmse = SeriesRmse(s.original, x_hat.value());
  EXPECT_GT(rmse, 4.0);
  EXPECT_LT(rmse, 5.2);
}

TEST(SerialReconstructionTest, ErrorDecreasesWithDependence) {
  const double sigma = 5.0;
  double previous = 1e9;
  for (double rho : {0.0, 0.6, 0.9, 0.98}) {
    SeriesScenario s = MakeScenario(rho, 4000, sigma, 233);
    SerialCorrelationReconstructor attack;
    auto x_hat = attack.Reconstruct(s.disguised, sigma * sigma);
    ASSERT_TRUE(x_hat.ok()) << "rho=" << rho;
    const double rmse = SeriesRmse(s.original, x_hat.value());
    EXPECT_LT(rmse, previous * 1.02) << "rho=" << rho;
    previous = rmse;
  }
}

TEST(SerialReconstructionTest, BeatsNaiveGuessOnDependentData) {
  const double sigma = 5.0;
  SeriesScenario s = MakeScenario(0.9, 3000, sigma, 234);
  SerialCorrelationReconstructor attack;
  auto x_hat = attack.Reconstruct(s.disguised, sigma * sigma);
  ASSERT_TRUE(x_hat.ok());
  // The disguised series itself is the NDR baseline with RMSE ≈ σ.
  EXPECT_LT(SeriesRmse(s.original, x_hat.value()),
            0.7 * SeriesRmse(s.original, s.disguised));
}

TEST(SerialReconstructionTest, WiderWindowHelpsOnLongMemorySeries) {
  const double sigma = 5.0;
  SeriesScenario s = MakeScenario(0.98, 6000, sigma, 235);
  SerialReconstructionOptions narrow;
  narrow.window = 2;
  SerialReconstructionOptions wide;
  wide.window = 32;
  auto narrow_hat = SerialCorrelationReconstructor(narrow).Reconstruct(
      s.disguised, sigma * sigma);
  auto wide_hat = SerialCorrelationReconstructor(wide).Reconstruct(
      s.disguised, sigma * sigma);
  ASSERT_TRUE(narrow_hat.ok());
  ASSERT_TRUE(wide_hat.ok());
  EXPECT_LT(SeriesRmse(s.original, wide_hat.value()),
            SeriesRmse(s.original, narrow_hat.value()));
}

TEST(SerialReconstructionTest, ValidationErrors) {
  SerialCorrelationReconstructor attack;
  // Too short for the default window of 16.
  EXPECT_FALSE(attack.Reconstruct(Vector(20, 1.0), 1.0).ok());
  // Bad variance.
  EXPECT_FALSE(attack.Reconstruct(Vector(100, 1.0), 0.0).ok());
  // Bad window.
  SerialReconstructionOptions zero;
  zero.window = 0;
  EXPECT_FALSE(
      SerialCorrelationReconstructor(zero).Reconstruct(Vector(100, 1.0), 1.0)
          .ok());
}

TEST(SerialReconstructionTest, PreservesSeriesLength) {
  const double sigma = 2.0;
  SeriesScenario s = MakeScenario(0.8, 500, sigma, 236);
  SerialCorrelationReconstructor attack;
  auto x_hat = attack.Reconstruct(s.disguised, sigma * sigma);
  ASSERT_TRUE(x_hat.ok());
  EXPECT_EQ(x_hat.value().size(), s.original.size());
}

}  // namespace
}  // namespace core
}  // namespace randrecon
