#include "core/spectral_filtering.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/ndr.h"
#include "data/synthetic.h"
#include "linalg/eigen.h"
#include "linalg/matrix_util.h"
#include "perturb/schemes.h"
#include "stats/moments.h"

namespace randrecon {
namespace core {
namespace {

using linalg::Matrix;

TEST(SfBoundTest, MatchesMarchenkoPasturFormula) {
  // σ²(1 + √(m/n))².
  const double bound =
      SpectralFilteringReconstructor::NoiseEigenvalueUpperBound(25.0, 400, 100);
  const double expected = 25.0 * (1.0 + 0.5) * (1.0 + 0.5);
  EXPECT_NEAR(bound, expected, 1e-12);
}

TEST(SfBoundTest, GrowsWithDimensionShrinksWithSamples) {
  const double base =
      SpectralFilteringReconstructor::NoiseEigenvalueUpperBound(4.0, 1000, 50);
  EXPECT_GT(SpectralFilteringReconstructor::NoiseEigenvalueUpperBound(4.0, 1000,
                                                                      100),
            base);
  EXPECT_LT(
      SpectralFilteringReconstructor::NoiseEigenvalueUpperBound(4.0, 4000, 50),
      base);
}

TEST(SfBoundTest, PureNoiseEigenvaluesRespectTheBound) {
  // The bound's whole claim: eigenvalues of a pure-noise sample
  // covariance stay (essentially) below it.
  stats::Rng rng(141);
  const size_t n = 2000, m = 40;
  const double sigma = 3.0;
  auto scheme = perturb::IndependentNoiseScheme::Gaussian(m, sigma);
  Matrix noise = scheme.GenerateNoise(n, &rng);
  auto eig = linalg::SymmetricEigen(stats::SampleCovariance(noise));
  ASSERT_TRUE(eig.ok());
  const double bound = SpectralFilteringReconstructor::NoiseEigenvalueUpperBound(
      sigma * sigma, n, m);
  EXPECT_LT(eig.value().eigenvalues[0], bound * 1.05);
}

TEST(SfTest, RecoversCorrelatedSignal) {
  stats::Rng rng(142);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = data::TwoLevelSpectrum(30, 3, 600.0, 1.0);
  auto synthetic = data::GenerateSpectrumDataset(spec, 1500, &rng);
  ASSERT_TRUE(synthetic.ok());
  auto scheme = perturb::IndependentNoiseScheme::Gaussian(30, 5.0);
  auto disguised = scheme.Disguise(synthetic.value().dataset, &rng);
  ASSERT_TRUE(disguised.ok());

  SpectralFilteringReconstructor sf;
  NdrReconstructor ndr;
  auto sf_hat = sf.Reconstruct(disguised.value().records(), scheme.noise_model());
  auto ndr_hat =
      ndr.Reconstruct(disguised.value().records(), scheme.noise_model());
  ASSERT_TRUE(sf_hat.ok());
  ASSERT_TRUE(ndr_hat.ok());
  const Matrix& x = synthetic.value().dataset.records();
  EXPECT_LT(stats::RootMeanSquareError(x, sf_hat.value()),
            0.6 * stats::RootMeanSquareError(x, ndr_hat.value()));
}

TEST(SfTest, PureNoiseCollapsesToMinComponents) {
  // With no signal every eigenvalue sits below the bound; SF keeps only
  // min_components and the reconstruction is close to the column means.
  stats::Rng rng(143);
  const size_t n = 1500, m = 10;
  Matrix x(n, m);  // Zero original.
  auto scheme = perturb::IndependentNoiseScheme::Gaussian(m, 4.0);
  Matrix y = x + scheme.GenerateNoise(n, &rng);
  SpectralFilteringReconstructor sf;
  auto x_hat = sf.Reconstruct(y, scheme.noise_model());
  ASSERT_TRUE(x_hat.ok());
  // RMSE ≈ σ·sqrt(min_components/m) per Theorem 5.2 with p = 1: ≈ 1.26.
  const double rmse = stats::RootMeanSquareError(x, x_hat.value());
  EXPECT_LT(rmse, 2.0);
  EXPECT_GT(rmse, 0.8);
}

TEST(SfTest, BoundScaleControlsSelectivity) {
  stats::Rng rng(144);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = data::TwoLevelSpectrum(20, 5, 100.0, 20.0);
  auto synthetic = data::GenerateSpectrumDataset(spec, 2000, &rng);
  ASSERT_TRUE(synthetic.ok());
  auto scheme = perturb::IndependentNoiseScheme::Gaussian(20, 5.0);
  auto disguised = scheme.Disguise(synthetic.value().dataset, &rng);
  ASSERT_TRUE(disguised.ok());

  // A huge bound_scale rejects everything -> min_components survives ->
  // heavy signal loss; the default keeps the 5 spikes.
  SfOptions aggressive;
  aggressive.bound_scale = 100.0;
  auto strict_hat = SpectralFilteringReconstructor(aggressive)
                        .Reconstruct(disguised.value().records(),
                                     scheme.noise_model());
  auto default_hat = SpectralFilteringReconstructor().Reconstruct(
      disguised.value().records(), scheme.noise_model());
  ASSERT_TRUE(strict_hat.ok());
  ASSERT_TRUE(default_hat.ok());
  const Matrix& x = synthetic.value().dataset.records();
  EXPECT_GT(stats::RootMeanSquareError(x, strict_hat.value()),
            stats::RootMeanSquareError(x, default_hat.value()));
}

TEST(SfTest, DoesNotUseOriginalCovariance) {
  // SF must run on Cov(Y) alone — feed it a noise model whose variance
  // lies and confirm behaviour changes only through the bound.
  stats::Rng rng(145);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = data::TwoLevelSpectrum(10, 2, 300.0, 1.0);
  auto synthetic = data::GenerateSpectrumDataset(spec, 1000, &rng);
  ASSERT_TRUE(synthetic.ok());
  auto scheme = perturb::IndependentNoiseScheme::Gaussian(10, 4.0);
  auto disguised = scheme.Disguise(synthetic.value().dataset, &rng);
  ASSERT_TRUE(disguised.ok());
  SpectralFilteringReconstructor sf;
  auto honest = sf.Reconstruct(disguised.value().records(), scheme.noise_model());
  // Lying model (σ = 100): bound explodes, everything filtered to
  // min_components.
  auto lying = sf.Reconstruct(disguised.value().records(),
                              perturb::NoiseModel::IndependentGaussian(10, 100.0));
  ASSERT_TRUE(honest.ok());
  ASSERT_TRUE(lying.ok());
  EXPECT_GT(linalg::MaxAbsDifference(honest.value(), lying.value()), 0.1);
}

TEST(SfTest, RejectsShapeMismatch) {
  SpectralFilteringReconstructor sf;
  EXPECT_FALSE(
      sf.Reconstruct(Matrix(5, 3),
                     perturb::NoiseModel::IndependentGaussian(2, 1.0))
          .ok());
}

TEST(SfTest, NameIsStable) {
  EXPECT_EQ(SpectralFilteringReconstructor().name(), "SF");
}

}  // namespace
}  // namespace core
}  // namespace randrecon
