#include "core/covariance_estimation.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "linalg/eigen.h"
#include "linalg/matrix_util.h"
#include "perturb/schemes.h"
#include "stats/moments.h"

namespace randrecon {
namespace core {
namespace {

using linalg::Matrix;
using linalg::Vector;

TEST(Theorem51Test, RecoversOriginalCovarianceFromDisguisedData) {
  // The headline of Theorem 5.1: Cov(Y) − σ²I ≈ Cov(X).
  stats::Rng rng(101);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = {40.0, 10.0, 3.0, 1.0};
  auto synthetic = data::GenerateSpectrumDataset(spec, 50000, &rng);
  ASSERT_TRUE(synthetic.ok());
  auto scheme = perturb::IndependentNoiseScheme::Gaussian(4, 5.0);
  auto disguised = scheme.Disguise(synthetic.value().dataset, &rng);
  ASSERT_TRUE(disguised.ok());

  auto moments =
      EstimateOriginalMoments(disguised.value().records(), scheme.noise_model());
  ASSERT_TRUE(moments.ok());
  EXPECT_LT(linalg::MaxAbsDifference(moments.value().covariance,
                                     synthetic.value().covariance),
            0.05 * linalg::FrobeniusNorm(synthetic.value().covariance));
}

TEST(Theorem51Test, OffDiagonalsUntouchedDiagonalShifted) {
  // Direct statement check: Cov(Y) equals Cov(X) off-diagonal and
  // Cov(X) + σ² on the diagonal — verified via the estimator on
  // synthetic data where both sides are computable.
  stats::Rng rng(102);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = {20.0, 5.0};
  auto synthetic = data::GenerateSpectrumDataset(spec, 80000, &rng);
  ASSERT_TRUE(synthetic.ok());
  const double sigma = 3.0;
  auto scheme = perturb::IndependentNoiseScheme::Gaussian(2, sigma);
  auto disguised = scheme.Disguise(synthetic.value().dataset, &rng);
  ASSERT_TRUE(disguised.ok());

  const Matrix cov_y = stats::SampleCovariance(disguised.value().records());
  const Matrix cov_x = stats::SampleCovariance(synthetic.value().dataset.records());
  EXPECT_NEAR(cov_y(0, 1), cov_x(0, 1), 0.3);
  EXPECT_NEAR(cov_y(0, 0), cov_x(0, 0) + sigma * sigma, 0.5);
  EXPECT_NEAR(cov_y(1, 1), cov_x(1, 1) + sigma * sigma, 0.5);
}

TEST(MomentEstimationTest, MeanEstimateTracksOriginal) {
  stats::Rng rng(103);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = {5.0, 5.0};
  spec.mean = {100.0, -50.0};
  auto synthetic = data::GenerateSpectrumDataset(spec, 30000, &rng);
  ASSERT_TRUE(synthetic.ok());
  auto scheme = perturb::IndependentNoiseScheme::Gaussian(2, 4.0);
  auto disguised = scheme.Disguise(synthetic.value().dataset, &rng);
  ASSERT_TRUE(disguised.ok());
  auto moments =
      EstimateOriginalMoments(disguised.value().records(), scheme.noise_model());
  ASSERT_TRUE(moments.ok());
  EXPECT_NEAR(moments.value().mean[0], 100.0, 0.2);
  EXPECT_NEAR(moments.value().mean[1], -50.0, 0.2);
}

TEST(MomentEstimationTest, PsdClipRemovesNegativeEigenvalues) {
  // Small n: the subtraction overshoots and the raw estimate is
  // indefinite; clipping must restore PSD.
  stats::Rng rng(104);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = {1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  auto synthetic = data::GenerateSpectrumDataset(spec, 30, &rng);
  ASSERT_TRUE(synthetic.ok());
  auto scheme = perturb::IndependentNoiseScheme::Gaussian(6, 5.0);
  auto disguised = scheme.Disguise(synthetic.value().dataset, &rng);
  ASSERT_TRUE(disguised.ok());

  MomentEstimationOptions options;
  options.clip_to_psd = true;
  auto moments = EstimateOriginalMoments(disguised.value().records(),
                                         scheme.noise_model(), options);
  ASSERT_TRUE(moments.ok());
  auto eig = linalg::SymmetricEigen(moments.value().covariance);
  ASSERT_TRUE(eig.ok());
  EXPECT_GE(eig.value().eigenvalues.back(), -1e-9);

  // Without clipping the same input must show a negative eigenvalue
  // (that's why the option exists).
  options.clip_to_psd = false;
  auto raw = EstimateOriginalMoments(disguised.value().records(),
                                     scheme.noise_model(), options);
  ASSERT_TRUE(raw.ok());
  auto raw_eig = linalg::SymmetricEigen(raw.value().covariance);
  ASSERT_TRUE(raw_eig.ok());
  EXPECT_LT(raw_eig.value().eigenvalues.back(), 0.0);
}

TEST(MomentEstimationTest, EigenFloorKeepsMatrixInvertible) {
  stats::Rng rng(105);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = {10.0, 0.0};  // Singular original covariance.
  auto synthetic = data::GenerateSpectrumDataset(spec, 500, &rng);
  ASSERT_TRUE(synthetic.ok());
  auto scheme = perturb::IndependentNoiseScheme::Gaussian(2, 2.0);
  auto disguised = scheme.Disguise(synthetic.value().dataset, &rng);
  ASSERT_TRUE(disguised.ok());
  MomentEstimationOptions options;
  options.eigen_floor = 0.1;
  auto moments = EstimateOriginalMoments(disguised.value().records(),
                                         scheme.noise_model(), options);
  ASSERT_TRUE(moments.ok());
  auto eig = linalg::SymmetricEigen(moments.value().covariance);
  ASSERT_TRUE(eig.ok());
  EXPECT_GE(eig.value().eigenvalues.back(), 0.1 - 1e-9);
}

TEST(MomentEstimationTest, BulkAveragingFlattensNonPrincipalSpectrum) {
  stats::Rng rng(106);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = data::TwoLevelSpectrum(20, 3, 200.0, 1.0);
  auto synthetic = data::GenerateSpectrumDataset(spec, 400, &rng);
  ASSERT_TRUE(synthetic.ok());
  auto scheme = perturb::IndependentNoiseScheme::Gaussian(20, 5.0);
  auto disguised = scheme.Disguise(synthetic.value().dataset, &rng);
  ASSERT_TRUE(disguised.ok());

  MomentEstimationOptions options;
  options.bulk_average_nonprincipal = true;
  auto moments = EstimateOriginalMoments(disguised.value().records(),
                                         scheme.noise_model(), options);
  ASSERT_TRUE(moments.ok());
  auto eig = linalg::SymmetricEigen(moments.value().covariance);
  ASSERT_TRUE(eig.ok());
  // All non-principal eigenvalues equal (the bulk average).
  const Vector& ev = eig.value().eigenvalues;
  for (size_t i = 4; i < 20; ++i) {
    EXPECT_NEAR(ev[i], ev[3], 1e-8) << "i=" << i;
  }
  EXPECT_GT(ev[2], 10.0 * ev[3]);  // Principal part preserved.
}

TEST(MomentEstimationTest, CorrelatedNoiseUsesTheorem82) {
  stats::Rng rng(107);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = {25.0, 9.0, 4.0};
  auto synthetic = data::GenerateSpectrumDataset(spec, 40000, &rng);
  ASSERT_TRUE(synthetic.ok());
  Matrix sigma_r{{4.0, 1.0, 0.5}, {1.0, 3.0, 0.2}, {0.5, 0.2, 2.0}};
  auto scheme = perturb::CorrelatedGaussianScheme::Create(sigma_r);
  ASSERT_TRUE(scheme.ok());
  auto disguised = scheme.value().Disguise(synthetic.value().dataset, &rng);
  ASSERT_TRUE(disguised.ok());
  auto moments = EstimateOriginalMoments(disguised.value().records(),
                                         scheme.value().noise_model());
  ASSERT_TRUE(moments.ok());
  EXPECT_LT(linalg::MaxAbsDifference(moments.value().covariance,
                                     synthetic.value().covariance),
            0.06 * linalg::FrobeniusNorm(synthetic.value().covariance));
}

TEST(MomentEstimationTest, RejectsTooFewRecords) {
  auto moments = EstimateOriginalMoments(
      Matrix(1, 2), perturb::NoiseModel::IndependentGaussian(2, 1.0));
  EXPECT_FALSE(moments.ok());
}

TEST(MomentEstimationTest, RejectsShapeMismatch) {
  auto moments = EstimateOriginalMoments(
      Matrix(10, 3), perturb::NoiseModel::IndependentGaussian(2, 1.0));
  EXPECT_FALSE(moments.ok());
  EXPECT_EQ(moments.status().code(), StatusCode::kInvalidArgument);
}

class Theorem51SampleSizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(Theorem51SampleSizeSweep, EstimateConvergesWithN) {
  // The paper: "when the number of samples becomes larger, the
  // approximation becomes more accurate."
  const size_t n = GetParam();
  stats::Rng rng(108);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = {30.0, 10.0, 1.0};
  auto synthetic = data::GenerateSpectrumDataset(spec, n, &rng);
  ASSERT_TRUE(synthetic.ok());
  auto scheme = perturb::IndependentNoiseScheme::Gaussian(3, 5.0);
  auto disguised = scheme.Disguise(synthetic.value().dataset, &rng);
  ASSERT_TRUE(disguised.ok());
  auto moments =
      EstimateOriginalMoments(disguised.value().records(), scheme.noise_model());
  ASSERT_TRUE(moments.ok());
  const double error = linalg::MaxAbsDifference(
      moments.value().covariance, synthetic.value().covariance);
  // Loose O(1/√n)-style envelope: generous constant, still decreasing.
  EXPECT_LT(error, 200.0 / std::sqrt(static_cast<double>(n))) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(SampleSizes, Theorem51SampleSizeSweep,
                         ::testing::Values(200, 800, 3200, 12800));

}  // namespace
}  // namespace core
}  // namespace randrecon
