#include "core/ndr.h"

#include <cmath>

#include <gtest/gtest.h>

#include "perturb/schemes.h"
#include "stats/moments.h"
#include "stats/rng.h"

namespace randrecon {
namespace core {
namespace {

using linalg::Matrix;

TEST(NdrTest, ReturnsDisguisedDataVerbatim) {
  NdrReconstructor ndr;
  Matrix y{{1.0, 2.0}, {3.0, 4.0}};
  auto x_hat = ndr.Reconstruct(y, perturb::NoiseModel::IndependentGaussian(2, 1.0));
  ASSERT_TRUE(x_hat.ok());
  EXPECT_TRUE(x_hat.value() == y);
}

TEST(NdrTest, NameIsStable) {
  EXPECT_EQ(NdrReconstructor().name(), "NDR");
}

TEST(NdrTest, RejectsShapeMismatch) {
  NdrReconstructor ndr;
  auto bad = ndr.Reconstruct(Matrix(2, 3),
                             perturb::NoiseModel::IndependentGaussian(2, 1.0));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(NdrTest, RejectsEmptyData) {
  NdrReconstructor ndr;
  EXPECT_FALSE(
      ndr.Reconstruct(Matrix(0, 2),
                      perturb::NoiseModel::IndependentGaussian(2, 1.0))
          .ok());
}

TEST(NdrTest, MseEqualsNoiseVariance) {
  // §4.1: "the m.s.e. of NDR is exactly the variance of the random
  // numbers."
  stats::Rng rng(91);
  Matrix x(5000, 3);  // Original is all zeros.
  auto scheme = perturb::IndependentNoiseScheme::Gaussian(3, 4.0);
  Matrix noise = scheme.GenerateNoise(5000, &rng);
  Matrix y = x + noise;
  NdrReconstructor ndr;
  auto x_hat = ndr.Reconstruct(y, scheme.noise_model());
  ASSERT_TRUE(x_hat.ok());
  EXPECT_NEAR(stats::MeanSquareError(x, x_hat.value()), 16.0, 0.5);
}

class NdrNoiseLevelSweep : public ::testing::TestWithParam<double> {};

TEST_P(NdrNoiseLevelSweep, RmseTracksSigma) {
  const double sigma = GetParam();
  stats::Rng rng(92);
  Matrix x(4000, 2);
  auto scheme = perturb::IndependentNoiseScheme::Gaussian(2, sigma);
  Matrix y = x + scheme.GenerateNoise(4000, &rng);
  auto x_hat = NdrReconstructor().Reconstruct(y, scheme.noise_model());
  ASSERT_TRUE(x_hat.ok());
  EXPECT_NEAR(stats::RootMeanSquareError(x, x_hat.value()), sigma,
              0.05 * sigma);
}

INSTANTIATE_TEST_SUITE_P(Sigmas, NdrNoiseLevelSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 5.0, 10.0));

}  // namespace
}  // namespace core
}  // namespace randrecon
