#include "core/partial_disclosure.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/be_dr.h"
#include "data/synthetic.h"
#include "linalg/matrix_util.h"
#include "perturb/schemes.h"
#include "stats/moments.h"

namespace randrecon {
namespace core {
namespace {

using linalg::Matrix;
using linalg::Vector;

struct Scenario {
  data::SyntheticDataset synthetic;
  data::Dataset disguised;
  perturb::NoiseModel noise;
};

Scenario MakeScenario(size_t m, size_t p, size_t n, double sigma,
                      uint64_t seed) {
  stats::Rng rng(seed);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = data::TwoLevelSpectrumWithTrace(m, p, 1.0, 100.0);
  auto synthetic = data::GenerateSpectrumDataset(spec, n, &rng);
  EXPECT_TRUE(synthetic.ok());
  auto scheme = perturb::IndependentNoiseScheme::Gaussian(m, sigma);
  auto disguised = scheme.Disguise(synthetic.value().dataset, &rng);
  EXPECT_TRUE(disguised.ok());
  return {std::move(synthetic).value(), std::move(disguised).value(),
          scheme.noise_model()};
}

/// True values of the given columns (the side channel).
Matrix KnownColumns(const Matrix& x, const std::vector<size_t>& indices) {
  Matrix out(x.rows(), indices.size());
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t k = 0; k < indices.size(); ++k) {
      out(i, k) = x(i, indices[k]);
    }
  }
  return out;
}

/// RMSE restricted to the columns NOT in `known`.
double UnknownRmse(const Matrix& x, const Matrix& x_hat,
                   const std::vector<size_t>& known) {
  double sum = 0.0;
  size_t count = 0;
  for (size_t j = 0; j < x.cols(); ++j) {
    if (std::find(known.begin(), known.end(), j) != known.end()) continue;
    for (size_t i = 0; i < x.rows(); ++i) {
      const double d = x(i, j) - x_hat(i, j);
      sum += d * d;
      ++count;
    }
  }
  return std::sqrt(sum / static_cast<double>(count));
}

TEST(PartialDisclosureTest, EmptyKnowledgeEqualsBeDr) {
  Scenario s = MakeScenario(10, 2, 600, 5.0, 221);
  PartialDisclosureReconstructor partial({});
  BayesEstimateReconstructor be;
  auto partial_hat = partial.Reconstruct(s.disguised.records(), s.noise,
                                         Matrix(s.disguised.num_records(), 0));
  auto be_hat = be.Reconstruct(s.disguised.records(), s.noise);
  ASSERT_TRUE(partial_hat.ok()) << partial_hat.status().ToString();
  ASSERT_TRUE(be_hat.ok());
  EXPECT_LT(linalg::MaxAbsDifference(partial_hat.value(), be_hat.value()),
            1e-9);
}

TEST(PartialDisclosureTest, KnownColumnsAreCopiedVerbatim) {
  Scenario s = MakeScenario(8, 2, 400, 5.0, 222);
  const std::vector<size_t> known{1, 5};
  PartialDisclosureReconstructor partial({known});
  const Matrix known_values =
      KnownColumns(s.synthetic.dataset.records(), known);
  auto x_hat = partial.Reconstruct(s.disguised.records(), s.noise,
                                   known_values);
  ASSERT_TRUE(x_hat.ok());
  for (size_t i = 0; i < s.disguised.num_records(); ++i) {
    EXPECT_DOUBLE_EQ(x_hat.value()(i, 1), s.synthetic.dataset.records()(i, 1));
    EXPECT_DOUBLE_EQ(x_hat.value()(i, 5), s.synthetic.dataset.records()(i, 5));
  }
}

TEST(PartialDisclosureTest, SideChannelImprovesUnknownAttributes) {
  // The §3 claim: knowing some attributes helps estimate the others.
  Scenario s = MakeScenario(12, 2, 1000, 5.0, 223);
  const Matrix& x = s.synthetic.dataset.records();

  BayesEstimateReconstructor be;
  auto baseline = be.Reconstruct(s.disguised.records(), s.noise);
  ASSERT_TRUE(baseline.ok());

  const std::vector<size_t> known{0, 1, 2, 3};
  PartialDisclosureReconstructor partial({known});
  auto with_knowledge =
      partial.Reconstruct(s.disguised.records(), s.noise,
                          KnownColumns(x, known));
  ASSERT_TRUE(with_knowledge.ok());

  EXPECT_LT(UnknownRmse(x, with_knowledge.value(), known),
            0.95 * UnknownRmse(x, baseline.value(), known));
}

TEST(PartialDisclosureTest, MoreKnowledgeMonotonicallyHelpsWithOracle) {
  // Monotonicity is a property of the *true* conditional prior (the MVN
  // conditional variance shrinks as K grows), so assert it in the §5.3
  // oracle-moments mode. With attacker-estimated moments, conditioning
  // on a noisy Σ_KK can amplify estimation error — the honest-attacker
  // benefit is covered by SideChannelImprovesUnknownAttributes.
  Scenario s = MakeScenario(16, 2, 1500, 5.0, 224);
  const Matrix& x = s.synthetic.dataset.records();
  BeDrOptions oracle;
  oracle.oracle_covariance = stats::SampleCovariance(x);
  oracle.oracle_mean = stats::ColumnMeans(x);
  double previous = 1e9;
  for (size_t k : {0u, 2u, 6u, 12u}) {
    std::vector<size_t> known;
    for (size_t j = 0; j < k; ++j) known.push_back(j);
    PartialDisclosureReconstructor partial({known}, oracle);
    auto x_hat = partial.Reconstruct(s.disguised.records(), s.noise,
                                     KnownColumns(x, known));
    ASSERT_TRUE(x_hat.ok()) << "k=" << k;
    const double rmse = UnknownRmse(x, x_hat.value(), known);
    EXPECT_LE(rmse, previous * 1.02) << "k=" << k;
    previous = rmse;
  }
}

TEST(PartialDisclosureTest, PerfectCorrelationNearPerfectRecovery) {
  // Two perfectly correlated attributes: knowing one pins the other even
  // under enormous noise.
  stats::Rng rng(225);
  const size_t n = 2000;
  Matrix x(n, 2);
  for (size_t i = 0; i < n; ++i) {
    const double v = rng.Gaussian(0.0, 10.0);
    x(i, 0) = v;
    x(i, 1) = 2.0 * v;  // Deterministically tied.
  }
  auto scheme = perturb::IndependentNoiseScheme::Gaussian(2, 50.0);
  Matrix y = x + scheme.GenerateNoise(n, &rng);

  PartialDisclosureReconstructor partial({{0}});
  BeDrOptions oracle;
  oracle.oracle_covariance = stats::SampleCovariance(x);
  oracle.oracle_mean = stats::ColumnMeans(x);
  PartialDisclosureReconstructor partial_oracle({{0}}, oracle);
  auto x_hat = partial_oracle.Reconstruct(y, scheme.noise_model(),
                                          KnownColumns(x, {0}));
  ASSERT_TRUE(x_hat.ok());
  EXPECT_LT(UnknownRmse(x, x_hat.value(), {0}), 0.5);  // Noise was 50!
}

TEST(PartialDisclosureTest, AllAttributesKnownReturnsTruth) {
  Scenario s = MakeScenario(5, 2, 300, 5.0, 226);
  const std::vector<size_t> known{0, 1, 2, 3, 4};
  PartialDisclosureReconstructor partial({known});
  const Matrix& x = s.synthetic.dataset.records();
  auto x_hat = partial.Reconstruct(s.disguised.records(), s.noise,
                                   KnownColumns(x, known));
  ASSERT_TRUE(x_hat.ok());
  EXPECT_LT(linalg::MaxAbsDifference(x_hat.value(), x), 1e-12);
}

TEST(PartialDisclosureTest, ValidationErrors) {
  Scenario s = MakeScenario(4, 1, 200, 5.0, 227);
  const Matrix& y = s.disguised.records();
  // Out-of-range index.
  EXPECT_FALSE(PartialDisclosureReconstructor({{7}})
                   .Reconstruct(y, s.noise, Matrix(y.rows(), 1))
                   .ok());
  // Duplicate index.
  EXPECT_FALSE(PartialDisclosureReconstructor({{1, 1}})
                   .Reconstruct(y, s.noise, Matrix(y.rows(), 2))
                   .ok());
  // Wrong known_values shape.
  EXPECT_FALSE(PartialDisclosureReconstructor({{1}})
                   .Reconstruct(y, s.noise, Matrix(y.rows(), 2))
                   .ok());
  EXPECT_FALSE(PartialDisclosureReconstructor({{1}})
                   .Reconstruct(y, s.noise, Matrix(3, 1))
                   .ok());
}

}  // namespace
}  // namespace core
}  // namespace randrecon
