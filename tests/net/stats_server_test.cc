#include "net/stats_server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"

namespace randrecon {
namespace net {
namespace {

metrics::Counter test_net_counter("test.net.counter");
metrics::Gauge test_net_gauge("test.net.gauge");
metrics::Histogram test_net_histogram("test.net.histogram");

struct HttpResponse {
  int status = 0;
  std::string headers;
  std::string body;
};

/// One raw-socket GET (or arbitrary `request`) against 127.0.0.1:port.
/// The server answers Connection: close, so reading to EOF frames the
/// response.
HttpResponse RawRequest(int port, const std::string& request) {
  HttpResponse response;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ADD_FAILURE() << "send failed";
      ::close(fd);
      return response;
    }
    sent += static_cast<size_t>(n);
  }
  std::string raw;
  char buffer[4096];
  ssize_t got;
  while ((got = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    raw.append(buffer, static_cast<size_t>(got));
  }
  ::close(fd);
  const size_t split = raw.find("\r\n\r\n");
  EXPECT_NE(split, std::string::npos) << "no header/body split in " << raw;
  if (split == std::string::npos) return response;
  response.headers = raw.substr(0, split);
  response.body = raw.substr(split + 4);
  EXPECT_EQ(raw.rfind("HTTP/1.1 ", 0), 0u) << raw;
  response.status = std::atoi(raw.c_str() + strlen("HTTP/1.1 "));
  return response;
}

HttpResponse Get(int port, const std::string& target) {
  return RawRequest(port, "GET " + target +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n");
}

class StatsServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics::ResetAllMetrics();
    trace::ClearRecentCaptures();
    auto started = StatsServer::Start(StatsServer::Options{});
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    server_ = std::move(started).value();
  }

  std::unique_ptr<StatsServer> server_;
};

// ---- TcpListener (the reusable transport).

TEST(TcpListenerTest, EphemeralPortIsAssigned) {
  auto listened = TcpListener::Listen(0);
  ASSERT_TRUE(listened.ok()) << listened.status().ToString();
  EXPECT_GT(std::move(listened).value()->port(), 0);
}

TEST(TcpListenerTest, WakeUnblocksAccept) {
  auto listened = TcpListener::Listen(0);
  ASSERT_TRUE(listened.ok());
  std::unique_ptr<TcpListener> listener = std::move(listened).value();
  std::thread waker([&listener] { listener->Wake(); });
  const Result<int> accepted = listener->Accept();
  waker.join();
  ASSERT_FALSE(accepted.ok());
  EXPECT_EQ(accepted.status().code(), StatusCode::kUnavailable)
      << accepted.status().ToString();
  // Wake is sticky: the next Accept returns immediately too.
  EXPECT_FALSE(listener->Accept().ok());
}

TEST(TcpListenerTest, AcceptReturnsAConnectedFd) {
  auto listened = TcpListener::Listen(0);
  ASSERT_TRUE(listened.ok());
  std::unique_ptr<TcpListener> listener = std::move(listened).value();
  const int port = listener->port();
  std::thread client([port] {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    ::close(fd);
  });
  const Result<int> accepted = listener->Accept();
  client.join();
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  EXPECT_GE(accepted.value(), 0);
  ::close(accepted.value());
}

// ---- Endpoints.

TEST_F(StatsServerTest, HealthzAnswersOk) {
  const HttpResponse response = Get(server_->port(), "/healthz");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "ok\n");
}

TEST_F(StatsServerTest, VarzIsTheRegistryJson) {
  test_net_counter.Add(7);
  const HttpResponse response = Get(server_->port(), "/varz");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.headers.find("application/json"), std::string::npos);
  EXPECT_NE(response.body.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(response.body.find("\"test.net.counter\":7"),
            std::string::npos);
}

TEST_F(StatsServerTest, MetricszRendersExposition) {
  test_net_counter.Add(3);
  test_net_gauge.Set(-4);
  test_net_histogram.Record(5);
  const HttpResponse response = Get(server_->port(), "/metricsz");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.headers.find("text/plain"), std::string::npos);
  EXPECT_NE(
      response.body.find("# TYPE randrecon_test_net_counter counter"),
      std::string::npos);
  EXPECT_NE(response.body.find("randrecon_test_net_counter 3"),
            std::string::npos);
  EXPECT_NE(response.body.find("randrecon_test_net_gauge -4"),
            std::string::npos);
  EXPECT_NE(
      response.body.find("# TYPE randrecon_test_net_histogram histogram"),
      std::string::npos);
  EXPECT_NE(response.body.find(
                "randrecon_test_net_histogram_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(response.body.find("randrecon_test_net_histogram_sum 5"),
            std::string::npos);
  EXPECT_NE(response.body.find("randrecon_test_net_histogram_count 1"),
            std::string::npos);
}

TEST_F(StatsServerTest, StatuszHasBuildInfoAndRegisteredSections) {
  server_->AddStatusSection("demo", [] { return R"({"answer":42})"; });
  const HttpResponse response = Get(server_->port(), "/statusz");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"build_info\":{\"git_describe\":"),
            std::string::npos);
  EXPECT_NE(response.body.find("\"armed_failpoints\":["), std::string::npos);
  EXPECT_NE(response.body.find("\"uptime_nanos\":"), std::string::npos);
  EXPECT_NE(response.body.find("\"demo\":{\"answer\":42}"),
            std::string::npos);
}

TEST_F(StatsServerTest, TracezServesTheRecentCaptureRing) {
  std::vector<trace::Span> spans(1);
  spans[0].name = "probe.span";
  spans[0].start_nanos = 10;
  spans[0].duration_nanos = 5;
  spans[0].parent = -1;
  trace::PushRecentCapture("probe capture", std::move(spans));
  const HttpResponse response = Get(server_->port(), "/tracez");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"label\":\"probe capture\""),
            std::string::npos);
  EXPECT_NE(response.body.find("\"name\":\"probe.span\""),
            std::string::npos);
}

TEST_F(StatsServerTest, RootListsTheEndpoints) {
  const HttpResponse response = Get(server_->port(), "/");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("/metricsz"), std::string::npos);
}

TEST_F(StatsServerTest, UnknownPathIs404) {
  const HttpResponse response = Get(server_->port(), "/nope");
  EXPECT_EQ(response.status, 404);
}

TEST_F(StatsServerTest, QueryStringIsStripped) {
  const HttpResponse response = Get(server_->port(), "/healthz?probe=1");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "ok\n");
}

TEST_F(StatsServerTest, NonGetMethodIs405) {
  const HttpResponse response = RawRequest(
      server_->port(),
      "POST /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
  EXPECT_EQ(response.status, 405);
}

TEST_F(StatsServerTest, GarbageRequestIs400) {
  const HttpResponse response =
      RawRequest(server_->port(), "NOT-HTTP\r\n\r\n");
  EXPECT_EQ(response.status, 400);
}

TEST_F(StatsServerTest, ServesManySequentialScrapes) {
  for (int i = 0; i < 20; ++i) {
    const HttpResponse response = Get(server_->port(), "/healthz");
    ASSERT_EQ(response.status, 200);
  }
  // The serving counters observed the traffic (>= because other tests'
  // requests in this process share the registry until Reset).
  const HttpResponse varz = Get(server_->port(), "/varz");
  EXPECT_NE(varz.body.find("\"net.requests\":"), std::string::npos);
}

TEST_F(StatsServerTest, StopIsIdempotentAndFast) {
  const int port = server_->port();
  server_->Stop();
  server_->Stop();
  // The port was released: a connect is refused immediately instead of
  // parking in the dead listener's kernel backlog.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_NE(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  ::close(fd);
}

TEST_F(StatsServerTest, StartOnBusyPortFailsCleanly) {
  // The fixture's server holds its port; a second Start on the same
  // fixed port must return the bind error — and destroying the failed
  // server must not touch the never-created listener.
  StatsServer::Options options;
  options.port = static_cast<uint16_t>(server_->port());
  auto second = StatsServer::Start(options);
  EXPECT_FALSE(second.ok());
}

TEST_F(StatsServerTest, ConcurrentStopsJoinOnce) {
  std::vector<std::thread> stoppers;
  for (int i = 0; i < 4; ++i) {
    stoppers.emplace_back([this] { server_->Stop(); });
  }
  for (std::thread& stopper : stoppers) stopper.join();
}

// ---- PrometheusText (unit-level, no sockets).

TEST(PrometheusTextTest, RendersCumulativeLogBuckets) {
  metrics::MetricsSnapshot snapshot;
  metrics::HistogramSnapshot histogram;
  histogram.name = "probe.latency_nanos";
  histogram.count = 4;
  histogram.sum = 1 + 2 + 3 + 9;
  histogram.min = 1;
  histogram.max = 9;
  histogram.buckets[metrics::Histogram::BucketIndex(1)] += 1;
  histogram.buckets[metrics::Histogram::BucketIndex(2)] += 1;
  histogram.buckets[metrics::Histogram::BucketIndex(3)] += 1;
  histogram.buckets[metrics::Histogram::BucketIndex(9)] += 1;
  snapshot.histograms.push_back(histogram);
  const std::string text = PrometheusText(snapshot);
  EXPECT_NE(
      text.find("# TYPE randrecon_probe_latency_nanos histogram"),
      std::string::npos);
  // Cumulative: le="1" holds the 1-sample, le="3" adds the 2 and 3,
  // le="15" adds the 9, then +Inf == count.
  EXPECT_NE(text.find("randrecon_probe_latency_nanos_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("randrecon_probe_latency_nanos_bucket{le=\"3\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("randrecon_probe_latency_nanos_bucket{le=\"15\"} 4"),
            std::string::npos);
  EXPECT_NE(
      text.find("randrecon_probe_latency_nanos_bucket{le=\"+Inf\"} 4"),
      std::string::npos);
  EXPECT_NE(text.find("randrecon_probe_latency_nanos_sum 15"),
            std::string::npos);
  EXPECT_NE(text.find("randrecon_probe_latency_nanos_count 4"),
            std::string::npos);
}

TEST(PrometheusTextTest, CountComesFromTheBucketTotal) {
  // A torn scalar count must not leak into the exposition: _count and
  // +Inf both derive from the captured bucket array.
  metrics::MetricsSnapshot snapshot;
  metrics::HistogramSnapshot histogram;
  histogram.name = "torn.histogram";
  histogram.count = 99;  // Deliberately inconsistent with the buckets.
  histogram.sum = 2;
  histogram.min = 2;
  histogram.max = 2;
  histogram.buckets[metrics::Histogram::BucketIndex(2)] = 1;
  snapshot.histograms.push_back(histogram);
  const std::string text = PrometheusText(snapshot);
  EXPECT_NE(text.find("randrecon_torn_histogram_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("randrecon_torn_histogram_count 1"),
            std::string::npos);
}

TEST(PrometheusTextTest, SanitizesMetricNames) {
  metrics::MetricsSnapshot snapshot;
  snapshot.counters.push_back({"weird-name.with/chars", 1});
  const std::string text = PrometheusText(snapshot);
  EXPECT_NE(text.find("randrecon_weird_name_with_chars 1"),
            std::string::npos);
}

}  // namespace
}  // namespace net
}  // namespace randrecon
