// MetricsRecorder (src/net/metrics_recorder.h): fake-clock cadence,
// rotation, retention, index continuation across runs, crash-safe
// publish under the recorder.write / recorder.publish failpoints, and
// the reconciliation contract — the final sample Close() takes agrees
// EXACTLY with a run report written just before it. Zero sleeps: every
// test drives the trace::NowNanos() fake clock by hand.

#include "net/metrics_recorder.h"

#include <dirent.h>
#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/run_report.h"
#include "common/trace.h"

namespace randrecon {
namespace net {
namespace {

metrics::Counter test_recorder_counter("test.recorder.counter");

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

std::vector<std::string> ListDir(const std::string& dir) {
  std::vector<std::string> names;
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return names;
  while (struct dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(handle);
  return names;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream file(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(file, line)) lines.push_back(line);
  return lines;
}

class MetricsRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics::ResetAllMetrics();
    DisarmAllFailpoints();
    dir_ = ::testing::TempDir() + "/recorder_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    for (const std::string& name : ListDir(dir_)) {
      std::remove((dir_ + "/" + name).c_str());
    }
    ::rmdir(dir_.c_str());
  }

  void TearDown() override { DisarmAllFailpoints(); }

  std::unique_ptr<MetricsRecorder> MustCreate(MetricsRecorder::Options
                                                  options) {
    auto created = MetricsRecorder::Create(std::move(options));
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    return std::move(created).value();
  }

  MetricsRecorder::Options DefaultOptions() {
    MetricsRecorder::Options options;
    options.series_dir = dir_;
    options.interval_nanos = 100;
    return options;
  }

  std::string dir_;
};

TEST_F(MetricsRecorderTest, CreateValidatesOptions) {
  MetricsRecorder::Options options;
  EXPECT_FALSE(MetricsRecorder::Create(options).ok());  // No series_dir.
  options.series_dir = dir_;
  options.interval_nanos = 0;
  EXPECT_FALSE(MetricsRecorder::Create(options).ok());
  options.interval_nanos = 100;
  options.samples_per_file = 0;
  EXPECT_FALSE(MetricsRecorder::Create(options).ok());
}

TEST_F(MetricsRecorderTest, TickSamplesOnTheFakeClockCadence) {
  trace::FakeClockGuard clock(0);
  std::unique_ptr<MetricsRecorder> recorder = MustCreate(DefaultOptions());
  EXPECT_FALSE(recorder->Tick());  // Parked one interval out.
  clock.Advance(99);
  EXPECT_FALSE(recorder->Tick());
  clock.Advance(1);
  EXPECT_TRUE(recorder->Tick());   // Due at exactly +interval.
  EXPECT_FALSE(recorder->Tick());  // Re-armed.
  // A big jump yields ONE sample — state, not backfill.
  clock.Advance(100000);
  EXPECT_TRUE(recorder->Tick());
  EXPECT_FALSE(recorder->Tick());
  EXPECT_EQ(recorder->samples(), 2u);

  const std::vector<std::string> lines =
      ReadLines(dir_ + "/metrics-000001.jsonl");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"seq\":1,\"t_nanos\":100,"), std::string::npos);
  EXPECT_NE(lines[1].find("\"seq\":2,\"t_nanos\":100100,"),
            std::string::npos);
  EXPECT_NE(lines[0].find("\"counters\":{"), std::string::npos);
}

TEST_F(MetricsRecorderTest, RotatesEverySamplesPerFile) {
  trace::FakeClockGuard clock(0);
  MetricsRecorder::Options options = DefaultOptions();
  options.samples_per_file = 2;
  std::unique_ptr<MetricsRecorder> recorder = MustCreate(options);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(recorder->SampleNow().ok());
  }
  EXPECT_EQ(ReadLines(dir_ + "/metrics-000001.jsonl").size(), 2u);
  EXPECT_EQ(ReadLines(dir_ + "/metrics-000002.jsonl").size(), 2u);
  EXPECT_EQ(ReadLines(dir_ + "/metrics-000003.jsonl").size(), 1u);
  EXPECT_EQ(recorder->PublishedFiles().size(), 3u);
}

TEST_F(MetricsRecorderTest, RetentionUnlinksTheOldestFiles) {
  trace::FakeClockGuard clock(0);
  MetricsRecorder::Options options = DefaultOptions();
  options.samples_per_file = 1;
  options.retain_files = 1;
  std::unique_ptr<MetricsRecorder> recorder = MustCreate(options);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(recorder->SampleNow().ok());
  }
  EXPECT_FALSE(FileExists(dir_ + "/metrics-000001.jsonl"));
  EXPECT_FALSE(FileExists(dir_ + "/metrics-000002.jsonl"));
  EXPECT_TRUE(FileExists(dir_ + "/metrics-000003.jsonl"));
  const std::vector<std::string> published = recorder->PublishedFiles();
  ASSERT_EQ(published.size(), 1u);
  EXPECT_EQ(published[0], dir_ + "/metrics-000003.jsonl");
}

TEST_F(MetricsRecorderTest, ContinuesTheIndexSequenceAcrossRuns) {
  trace::FakeClockGuard clock(0);
  {
    std::unique_ptr<MetricsRecorder> first = MustCreate(DefaultOptions());
    ASSERT_TRUE(first->SampleNow().ok());
    ASSERT_TRUE(first->SampleNow().ok());
    ASSERT_TRUE(first->Close().ok());
  }
  // A new recorder never appends to published history: it opens the
  // next index and restarts seq at 1 (the run-boundary marker).
  std::unique_ptr<MetricsRecorder> second = MustCreate(DefaultOptions());
  ASSERT_TRUE(second->SampleNow().ok());
  const std::vector<std::string> lines =
      ReadLines(dir_ + "/metrics-000002.jsonl");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"seq\":1,"), std::string::npos);
  EXPECT_EQ(ReadLines(dir_ + "/metrics-000001.jsonl").size(), 3u);
}

TEST_F(MetricsRecorderTest, WriteFaultLeavesPublishedSeriesIntact) {
  trace::FakeClockGuard clock(0);
  std::unique_ptr<MetricsRecorder> recorder = MustCreate(DefaultOptions());
  ASSERT_TRUE(recorder->SampleNow().ok());
  const std::vector<std::string> before =
      ReadLines(dir_ + "/metrics-000001.jsonl");

  ASSERT_TRUE(ArmFailpoint("recorder.write", FailpointAction::kError).ok());
  EXPECT_FALSE(recorder->SampleNow().ok());
  // The published file is untouched and no temp was left behind.
  EXPECT_EQ(ReadLines(dir_ + "/metrics-000001.jsonl"), before);
  EXPECT_EQ(ListDir(dir_).size(), 1u);

  // The failed sample was retained in memory: the next publish lands
  // it together with the new one.
  DisarmAllFailpoints();
  ASSERT_TRUE(recorder->SampleNow().ok());
  EXPECT_EQ(ReadLines(dir_ + "/metrics-000001.jsonl").size(), 3u);
}

TEST_F(MetricsRecorderTest, PublishFaultLeavesNoTempBehind) {
  trace::FakeClockGuard clock(0);
  std::unique_ptr<MetricsRecorder> recorder = MustCreate(DefaultOptions());
  ASSERT_TRUE(
      ArmFailpoint("recorder.publish", FailpointAction::kError).ok());
  EXPECT_FALSE(recorder->SampleNow().ok());
  EXPECT_TRUE(ListDir(dir_).empty());
  // The buffered-but-unpublished sample must not surface a path that
  // does not exist on disk.
  EXPECT_TRUE(recorder->PublishedFiles().empty());
  DisarmAllFailpoints();
  ASSERT_TRUE(recorder->SampleNow().ok());
  EXPECT_EQ(ListDir(dir_).size(), 1u);
  EXPECT_EQ(recorder->PublishedFiles().size(), 1u);
}

TEST_F(MetricsRecorderTest, IndexContinuationBeyondSixDigits) {
  trace::FakeClockGuard clock(0);
  // FilePath pads to 6 digits but emits more past 999999; the restart
  // scan must still see such files and continue after them.
  ASSERT_EQ(::mkdir(dir_.c_str(), 0755), 0);
  {
    std::ofstream file(dir_ + "/metrics-1000000.jsonl");
    file << "{\"seq\":1,\"t_nanos\":0,\"counters\":{}}\n";
  }
  std::unique_ptr<MetricsRecorder> recorder = MustCreate(DefaultOptions());
  ASSERT_TRUE(recorder->SampleNow().ok());
  const std::vector<std::string> published = recorder->PublishedFiles();
  ASSERT_EQ(published.size(), 1u);
  EXPECT_EQ(published[0], dir_ + "/metrics-1000001.jsonl");
  EXPECT_TRUE(FileExists(dir_ + "/metrics-1000001.jsonl"));
}

TEST_F(MetricsRecorderTest, PublishFailuresAreCounted) {
  trace::FakeClockGuard clock(0);
  std::unique_ptr<MetricsRecorder> recorder = MustCreate(DefaultOptions());
  ASSERT_TRUE(
      ArmFailpoint("recorder.publish", FailpointAction::kError).ok());
  EXPECT_FALSE(recorder->SampleNow().ok());
  DisarmAllFailpoints();
  ASSERT_TRUE(recorder->SampleNow().ok());
  const std::string json = metrics::SnapshotJson();
  EXPECT_NE(json.find("\"recorder.publish_failures\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"recorder.samples\":1"), std::string::npos);
}

/// The metrics sections ("counters":{...} through "histograms":{...})
/// of a document that embeds metrics::SnapshotJson() members verbatim.
std::string MetricsSections(const std::string& document) {
  const size_t begin = document.find("\"counters\":{");
  const size_t histograms = document.find("\"histograms\":{");
  EXPECT_NE(begin, std::string::npos);
  EXPECT_NE(histograms, std::string::npos);
  // The histograms object runs to the last '}' before either the next
  // top-level key ("spans" in reports) or the end of the sample line.
  size_t end = document.find(",\"spans\"", histograms);
  if (end == std::string::npos) end = document.rfind('}') ;
  return document.substr(begin, end - begin);
}

// THE reconciliation gate: quiesce -> write the run report -> Close().
// The final sample must agree exactly — including the recorder's own
// counters, which are bumped only AFTER a sample's snapshot is taken.
TEST_F(MetricsRecorderTest, FinalSampleReconcilesExactlyWithRunReport) {
  trace::FakeClockGuard clock(0);
  std::unique_ptr<MetricsRecorder> recorder = MustCreate(DefaultOptions());
  test_recorder_counter.Add(3);
  ASSERT_TRUE(recorder->SampleNow().ok());  // Mid-run samples.
  test_recorder_counter.Add(4);
  ASSERT_TRUE(recorder->SampleNow().ok());

  // Quiesce: all instrumented work done. The report snapshots now...
  report::RunReportBuilder builder("recorder_test");
  const std::string report_json = builder.ToJson();
  // ...and the recorder's final sample must see the identical state.
  ASSERT_TRUE(recorder->Close().ok());

  const std::vector<std::string> lines =
      ReadLines(dir_ + "/metrics-000001.jsonl");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(MetricsSections(lines.back()), MetricsSections(report_json));
  // And the mid-run samples genuinely differ (the counter moved), so
  // the equality above is not vacuous.
  EXPECT_NE(MetricsSections(lines[0]), MetricsSections(lines.back()));
}

TEST_F(MetricsRecorderTest, CloseIsIdempotentAndStopsTicks) {
  trace::FakeClockGuard clock(0);
  std::unique_ptr<MetricsRecorder> recorder = MustCreate(DefaultOptions());
  ASSERT_TRUE(recorder->Close().ok());
  EXPECT_EQ(recorder->samples(), 1u);  // The final sample.
  ASSERT_TRUE(recorder->Close().ok());
  EXPECT_EQ(recorder->samples(), 1u);
  clock.Advance(1000);
  EXPECT_FALSE(recorder->Tick());
}

}  // namespace
}  // namespace net
}  // namespace randrecon
