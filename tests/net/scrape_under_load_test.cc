// The determinism contract of the introspection plane (contract 10):
// scraping and recording OBSERVE the daemons, they never perturb them.
// A scheduler cycle run under a live stats server, a sampling
// MetricsRecorder, concurrent ingest producers, and hammering HTTP
// clients publishes a report whose attack numbers are BITWISE identical
// to a quiet baseline run. Built into the thread-sanitize CI job with
// the rest of net_ — every scrape races a real cycle here.

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "data/rolling_store.h"
#include "linalg/matrix.h"
#include "net/metrics_recorder.h"
#include "net/stats_server.h"
#include "pipeline/attack_scheduler.h"
#include "pipeline/ingest.h"
#include "stats/rng.h"

namespace randrecon {
namespace net {
namespace {

using linalg::Matrix;

constexpr size_t kCols = 4;
constexpr size_t kShardRows = 40;
constexpr size_t kShards = 3;

std::vector<std::string> Names() { return {"a", "b", "c", "d"}; }

/// Deterministic disguised records — shard `index` of every test store.
Matrix ShardRecords(size_t index) {
  stats::Rng rng(777 + index);
  return rng.GaussianMatrix(kShardRows, kCols);
}

void PublishShards(const std::string& manifest_path) {
  data::RollingStoreOptions options;
  options.shard_rows = kShardRows;
  options.block_rows = 16;
  auto created = data::RollingShardedStoreWriter::Create(manifest_path,
                                                         Names(), options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  data::RollingShardedStoreWriter writer = std::move(created).value();
  for (size_t s = 0; s < kShards; ++s) {
    ASSERT_TRUE(writer.Append(ShardRecords(s), kShardRows).ok());
  }
  ASSERT_TRUE(writer.Close().ok());
}

std::string SlurpFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  std::stringstream content;
  content << file.rdbuf();
  return content.str();
}

void RemoveDirFiles(const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return;
  while (struct dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    std::remove((dir + "/" + name).c_str());
  }
  ::closedir(handle);
  ::rmdir(dir.c_str());
}

pipeline::AttackSchedulerOptions SchedulerOptions(
    const std::string& report_dir) {
  pipeline::AttackSchedulerOptions options;
  options.sigma = 0.5;
  options.attack.chunk_rows = 64;
  options.attack.parallel.num_threads = 1;
  options.report_dir = report_dir;
  options.num_workers = 1;
  options.store_options.parallel.num_threads = 1;
  return options;
}

/// The attack-numbers slice of a scheduler report: everything from the
/// jobs array through the exclusions array, minus the one wall-clock
/// field (elapsed_seconds). Eigen-derived values are printed at full
/// precision, so equality here is bitwise equality of the
/// reconstruction numbers.
std::string AttackNumbers(const std::string& report) {
  const size_t begin = report.find("\"jobs\":[");
  const size_t end = report.find(",\"report_series\"");
  EXPECT_NE(begin, std::string::npos);
  EXPECT_NE(end, std::string::npos);
  if (begin == std::string::npos || end == std::string::npos) return "";
  std::string slice = report.substr(begin, end - begin);
  for (size_t at = slice.find(",\"elapsed_seconds\":");
       at != std::string::npos;
       at = slice.find(",\"elapsed_seconds\":", at)) {
    size_t stop = at + 1;
    while (stop < slice.size() && slice[stop] != ',' &&
           slice[stop] != '}') {
      ++stop;
    }
    slice.erase(at, stop - at);
  }
  return slice;
}

/// One blocking HTTP/1.1 GET; returns the raw response bytes ("" on any
/// socket error — the hammer loop tolerates races with server Stop).
std::string HttpGet(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\n"
                              "Host: localhost\r\n"
                              "Connection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent,
                             request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buffer[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

class ScrapeUnderLoadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DisarmAllFailpoints();
    metrics::ResetAllMetrics();
    for (const char* manifest : {kLoadedManifest, kIngestManifest}) {
      data::RemoveShardedStoreFiles(manifest);
    }
    for (const char* dir : {kQuietReports, kLoadedReports, kSeries}) {
      RemoveDirFiles(dir);
    }
  }
  void TearDown() override {
    DisarmAllFailpoints();
    for (const char* manifest : {kLoadedManifest, kIngestManifest}) {
      data::RemoveShardedStoreFiles(manifest);
    }
    for (const char* dir : {kQuietReports, kLoadedReports, kSeries}) {
      RemoveDirFiles(dir);
    }
  }

  static constexpr const char* kLoadedManifest = "scrape_load_loaded.rrcm";
  static constexpr const char* kIngestManifest = "scrape_load_ingest.rrcm";
  static constexpr const char* kQuietReports = "scrape_load_quiet_reports";
  static constexpr const char* kLoadedReports = "scrape_load_loaded_reports";
  static constexpr const char* kSeries = "scrape_load_series";
};

TEST_F(ScrapeUnderLoadTest, CycleIsBitwiseIdenticalUnderScrapeLoad) {
  // --- Baseline: the store attacked with nothing else running. The
  // loaded run below reuses the SAME manifest (different report dir),
  // so the job names match byte for byte too.
  PublishShards(kLoadedManifest);
  {
    auto created = pipeline::AttackScheduler::Create(
        kLoadedManifest, SchedulerOptions(kQuietReports));
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    const pipeline::SchedulerCycleResult cycle =
        created.value()->RunCycleNow();
    ASSERT_EQ(cycle.outcome, pipeline::CycleOutcome::kOk)
        << cycle.status.ToString();
  }
  const std::string baseline =
      AttackNumbers(SlurpFile(std::string(kQuietReports) +
                              "/report-000001.json"));
  ASSERT_NE(baseline, "");

  // --- Loaded run: identical store bytes, but now a live stats server
  // hammered by scraping clients, a sampling recorder, and ingest
  // producers flooding a separate store all race the cycle.
  pipeline::AttackSchedulerOptions loaded_options =
      SchedulerOptions(kLoadedReports);
  loaded_options.trace_cycles = true;  // Tracing observes, never steers.
  auto sched_created = pipeline::AttackScheduler::Create(
      kLoadedManifest, loaded_options);
  ASSERT_TRUE(sched_created.ok()) << sched_created.status().ToString();
  pipeline::AttackScheduler& scheduler = *sched_created.value();

  MetricsRecorder::Options recorder_options;
  recorder_options.series_dir = kSeries;
  recorder_options.interval_nanos = 1000 * 1000;  // 1ms of real time.
  auto recorder_created = MetricsRecorder::Create(recorder_options);
  ASSERT_TRUE(recorder_created.ok())
      << recorder_created.status().ToString();
  MetricsRecorder& recorder = *recorder_created.value();
  recorder.Start();

  pipeline::IngestOptions ingest_options;
  ingest_options.queue_batches = 4;  // Small: sheds exercise the
  ingest_options.admission_timeout_nanos = 0;  // rate-limited log site.
  ingest_options.store.shard_rows = kShardRows;
  ingest_options.store.block_rows = 16;
  auto ingest_created = pipeline::IngestService::Start(
      kIngestManifest, Names(), ingest_options);
  ASSERT_TRUE(ingest_created.ok()) << ingest_created.status().ToString();
  pipeline::IngestService& ingest = *ingest_created.value();

  StatsServer::Options server_options;
  auto server_created = StatsServer::Start(server_options);
  ASSERT_TRUE(server_created.ok()) << server_created.status().ToString();
  StatsServer& server = *server_created.value();
  server.AddStatusSection(
      "scheduler", [&scheduler] { return scheduler.StatusJson(); });
  const int port = server.port();

  std::atomic<bool> stop_load{false};
  std::atomic<uint64_t> good_scrapes{0};
  std::vector<std::thread> load;
  for (int client = 0; client < 2; ++client) {
    load.emplace_back([port, &stop_load, &good_scrapes] {
      const char* targets[] = {"/healthz", "/varz", "/metricsz",
                               "/statusz", "/tracez"};
      size_t i = 0;
      while (!stop_load.load(std::memory_order_relaxed)) {
        const std::string response = HttpGet(port, targets[i++ % 5]);
        if (response.rfind("HTTP/1.1 200", 0) == 0) {
          good_scrapes.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  load.emplace_back([&ingest, &stop_load] {
    const Matrix batch = ShardRecords(99);
    while (!stop_load.load(std::memory_order_relaxed)) {
      (void)ingest.Offer(batch, batch.rows());  // Shed or appended: both
    }                                           // are load, not failures.
  });

  // The hammer is demonstrably serving before the cycle starts, and it
  // keeps hammering throughout — the cycle genuinely races scrapes.
  while (good_scrapes.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  const pipeline::SchedulerCycleResult loaded_cycle =
      scheduler.RunCycleNow();
  ASSERT_EQ(loaded_cycle.outcome, pipeline::CycleOutcome::kOk)
      << loaded_cycle.status.ToString();

  stop_load.store(true, std::memory_order_relaxed);
  for (std::thread& thread : load) thread.join();
  ASSERT_TRUE(ingest.Close().ok());
  ASSERT_TRUE(recorder.Close().ok());
  server.Stop();

  // The attack numbers did not move by one bit.
  const std::string loaded =
      AttackNumbers(SlurpFile(std::string(kLoadedReports) +
                              "/report-000001.json"));
  EXPECT_EQ(loaded, baseline);

  // The scrapes were real: clients parsed well-formed 200s while the
  // cycle ran, and the recorder published at least its final sample.
  EXPECT_GT(good_scrapes.load(), 0u);
  EXPECT_GE(recorder.samples(), 1u);
  const std::string varz = HttpGet(port, "/varz");
  EXPECT_EQ(varz, "");  // Stopped server answers nothing.
}

// Scrape responses stay parseable while every daemon is live — the
// hammer above only counted status lines; this pins the bodies.
TEST_F(ScrapeUnderLoadTest, ResponsesParseWhileDaemonsRun) {
  PublishShards(kLoadedManifest);
  auto sched_created = pipeline::AttackScheduler::Create(
      kLoadedManifest, SchedulerOptions(kLoadedReports));
  ASSERT_TRUE(sched_created.ok());
  pipeline::AttackScheduler& scheduler = *sched_created.value();

  StatsServer::Options server_options;
  auto server_created = StatsServer::Start(server_options);
  ASSERT_TRUE(server_created.ok());
  StatsServer& server = *server_created.value();
  server.AddStatusSection(
      "scheduler", [&scheduler] { return scheduler.StatusJson(); });

  std::atomic<bool> stop_cycles{false};
  std::thread cycler([&scheduler, &stop_cycles] {
    while (!stop_cycles.load(std::memory_order_relaxed)) {
      (void)scheduler.RunCycleNow();
    }
  });

  const int port = server.port();
  for (int round = 0; round < 10; ++round) {
    EXPECT_NE(HttpGet(port, "/healthz").find("ok"), std::string::npos);
    const std::string varz = HttpGet(port, "/varz");
    EXPECT_NE(varz.find("\"counters\":{"), std::string::npos);
    EXPECT_NE(varz.find("\"histograms\":{"), std::string::npos);
    const std::string metricsz = HttpGet(port, "/metricsz");
    EXPECT_NE(metricsz.find("# TYPE randrecon_"), std::string::npos);
    const std::string statusz = HttpGet(port, "/statusz");
    EXPECT_NE(statusz.find("\"build_info\":{"), std::string::npos);
    EXPECT_NE(statusz.find("\"scheduler\":{"), std::string::npos);
    EXPECT_NE(HttpGet(port, "/tracez").find("\"captures\":["),
              std::string::npos);
  }

  stop_cycles.store(true, std::memory_order_relaxed);
  cycler.join();
  server.Stop();
}

}  // namespace
}  // namespace net
}  // namespace randrecon
