#include "common/status.h"

#include <gtest/gtest.h>

namespace randrecon {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
}

TEST(StatusTest, InvalidArgumentCarriesMessage) {
  Status s = Status::InvalidArgument("bad value");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad value");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad value");
}

TEST(StatusTest, EveryFactoryProducesItsCode) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NumericalError("x").code(), StatusCode::kNumericalError);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IoError("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNumericalError),
               "NumericalError");
}

TEST(StatusTest, ReturnNotOkPropagates) {
  auto fails = []() -> Status {
    RR_RETURN_NOT_OK(Status::IoError("inner"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kIoError);

  auto succeeds = []() -> Status {
    RR_RETURN_NOT_OK(Status::OK());
    return Status::InvalidArgument("reached end");
  };
  EXPECT_EQ(succeeds().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace randrecon
