#include "common/result.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace randrecon {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrReturnsFallbackOnError) {
  Result<std::string> bad(Status::IoError("x"));
  EXPECT_EQ(bad.ValueOr("fallback"), "fallback");
  Result<std::string> good(std::string("real"));
  EXPECT_EQ(good.ValueOr("fallback"), "real");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  std::unique_ptr<int> v = std::move(r).value();
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto inner = []() -> Result<int> { return Status::NumericalError("sing"); };
  auto outer = [&]() -> Status {
    RR_ASSIGN_OR_RETURN(int v, inner());
    (void)v;
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kNumericalError);
}

TEST(ResultTest, AssignOrReturnBindsValue) {
  auto inner = []() -> Result<int> { return 5; };
  auto outer = [&]() -> Result<int> {
    RR_ASSIGN_OR_RETURN(int v, inner());
    return v * 2;
  };
  ASSERT_TRUE(outer().ok());
  EXPECT_EQ(outer().value(), 10);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_DEATH({ (void)r.value(); }, "missing");
}

}  // namespace
}  // namespace randrecon
