#include "common/run_report.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/failpoint.h"
#include "common/metrics.h"

namespace randrecon {
namespace report {
namespace {

class RunReportTest : public ::testing::Test {
 protected:
  void SetUp() override { metrics::ResetAllMetrics(); }
};

TEST_F(RunReportTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST_F(RunReportTest, TopLevelKeysInFixedOrder) {
  RunReportBuilder builder("test_tool");
  builder.AddConfig("input", "a.csv");
  builder.AddConfigInt("rows", 5);
  builder.AddRawSection("extras", "[1,2]");
  const std::string json = builder.ToJson();
  const size_t schema = json.find("\"schema_version\":2");
  const size_t tool = json.find("\"tool\":\"test_tool\"");
  const size_t build_info = json.find("\"build_info\":{");
  const size_t git_describe = json.find("\"git_describe\":\"");
  const size_t config = json.find("\"config\":{");
  const size_t counters = json.find("\"counters\":{");
  const size_t gauges = json.find("\"gauges\":{");
  const size_t histograms = json.find("\"histograms\":{");
  const size_t spans = json.find("\"spans\":[");
  const size_t extras = json.find("\"extras\":[1,2]");
  ASSERT_NE(schema, std::string::npos);
  ASSERT_NE(build_info, std::string::npos);
  ASSERT_NE(git_describe, std::string::npos);
  ASSERT_NE(extras, std::string::npos);
  EXPECT_LT(schema, tool);
  EXPECT_LT(tool, build_info);
  EXPECT_LT(build_info, git_describe);
  EXPECT_LT(git_describe, config);
  EXPECT_LT(config, counters);
  EXPECT_LT(counters, gauges);
  EXPECT_LT(gauges, histograms);
  EXPECT_LT(histograms, spans);
  EXPECT_LT(spans, extras);
}

TEST_F(RunReportTest, ConfigRendersEveryScalarKind) {
  RunReportBuilder builder("t");
  builder.AddConfig("s", "quo\"ted");
  builder.AddConfigInt("i", -7);
  builder.AddConfigDouble("d", 0.5);
  builder.AddConfigBool("b", true);
  const std::string json = builder.ToJson();
  EXPECT_NE(json.find("\"s\":\"quo\\\"ted\""), std::string::npos);
  EXPECT_NE(json.find("\"i\":-7"), std::string::npos);
  EXPECT_NE(json.find("\"d\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"b\":true"), std::string::npos);
}

TEST_F(RunReportTest, NanRendersAsNull) {
  RunReportBuilder builder("t");
  builder.AddConfigDouble("bad", std::nan(""));
  EXPECT_NE(builder.ToJson().find("\"bad\":null"), std::string::npos);
}

TEST_F(RunReportTest, SpansEmbedViaSetSpans) {
  RunReportBuilder builder("t");
  std::vector<trace::Span> spans(1);
  spans[0].name = "stage";
  spans[0].duration_nanos = 4;
  builder.SetSpans(std::move(spans));
  EXPECT_NE(builder.ToJson().find("\"spans\":[{\"name\":\"stage\""),
            std::string::npos);
}

TEST_F(RunReportTest, WriteFileIsAtomicAndRereadable) {
  const std::string path = "run_report_test_out.json";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  RunReportBuilder builder("t");
  builder.AddConfigInt("x", 1);
  ASSERT_TRUE(builder.WriteFile(path).ok());
  // The temp never survives a successful write.
  std::ifstream temp(path + ".tmp");
  EXPECT_FALSE(temp.is_open());
  std::ifstream file(path);
  ASSERT_TRUE(file.is_open());
  std::stringstream content;
  content << file.rdbuf();
  EXPECT_EQ(content.str(), builder.ToJson() + "\n");
  file.close();
  std::remove(path.c_str());
}

TEST_F(RunReportTest, WriteFailpointFailsBeforeAnyFileExists) {
  // A full disk / EIO at the temp-write step (report.write) leaves
  // NEITHER the report nor a stray temp — the previous report, if any,
  // is untouched.
  const std::string path = "run_report_test_fp_write.json";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  ASSERT_TRUE(ArmFailpoint("report.write", FailpointAction::kError).ok());
  RunReportBuilder builder("t");
  builder.AddConfigInt("x", 1);
  const Status written = builder.WriteFile(path);
  DisarmAllFailpoints();
  EXPECT_EQ(written.code(), StatusCode::kIoError);
  EXPECT_FALSE(std::ifstream(path).is_open());
  EXPECT_FALSE(std::ifstream(path + ".tmp").is_open());
}

TEST_F(RunReportTest, RenameFailpointCleansTheTempAndSparesThePrevious) {
  const std::string path = "run_report_test_fp_rename.json";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  // A previous report is already published...
  RunReportBuilder previous("t");
  previous.AddConfigInt("x", 1);
  ASSERT_TRUE(previous.WriteFile(path).ok());
  // ...and the next publish dies at the rename step (report.rename):
  // the temp is cleaned up and the previous report survives verbatim.
  ASSERT_TRUE(ArmFailpoint("report.rename", FailpointAction::kError).ok());
  RunReportBuilder next("t");
  next.AddConfigInt("x", 2);
  const Status written = next.WriteFile(path);
  DisarmAllFailpoints();
  EXPECT_EQ(written.code(), StatusCode::kIoError);
  EXPECT_FALSE(std::ifstream(path + ".tmp").is_open());
  std::ifstream file(path);
  ASSERT_TRUE(file.is_open());
  std::stringstream content;
  content << file.rdbuf();
  EXPECT_EQ(content.str(), previous.ToJson() + "\n");
  // Disarmed, the same builder publishes cleanly over the old report.
  ASSERT_TRUE(next.WriteFile(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace report
}  // namespace randrecon
