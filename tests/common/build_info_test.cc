#include "common/build_info.h"

#include <gtest/gtest.h>

#include <string>

#include "common/logging.h"
#include "stats/philox.h"

namespace randrecon {
namespace {

TEST(BuildInfoTest, FieldsAreNonEmpty) {
  const BuildInfo& info = GetBuildInfo();
  EXPECT_NE(std::string(info.git_describe), "");
  EXPECT_NE(std::string(info.compiler), "");
  EXPECT_NE(std::string(info.build_type), "");
  EXPECT_NE(std::string(info.simd_compiled), "");
  EXPECT_NE(std::string(info.simd_dispatch), "");
}

TEST(BuildInfoTest, SingletonIsStable) {
  EXPECT_EQ(&GetBuildInfo(), &GetBuildInfo());
  EXPECT_EQ(GetBuildInfo().simd_dispatch, GetBuildInfo().simd_dispatch);
}

// build_info.cc duplicates philox's dispatch policy (common/ cannot
// depend on stats/): this pin is what keeps the two from drifting.
TEST(BuildInfoTest, SimdDispatchMatchesPhiloxActiveEngine) {
  EXPECT_EQ(std::string(GetBuildInfo().simd_dispatch),
            std::string(stats::philox_internal::ActiveEngine()));
}

TEST(BuildInfoTest, JsonHasEveryKeyInFixedOrder) {
  const std::string json = BuildInfoJson();
  const size_t git = json.find("\"git_describe\":");
  const size_t compiler = json.find("\"compiler\":");
  const size_t flags = json.find("\"flags\":");
  const size_t build_type = json.find("\"build_type\":");
  const size_t compiled = json.find("\"simd_compiled\":");
  const size_t dispatch = json.find("\"simd_dispatch\":");
  const size_t metrics = json.find("\"metrics_disabled\":");
  ASSERT_NE(git, std::string::npos);
  ASSERT_NE(compiler, std::string::npos);
  ASSERT_NE(flags, std::string::npos);
  ASSERT_NE(build_type, std::string::npos);
  ASSERT_NE(compiled, std::string::npos);
  ASSERT_NE(dispatch, std::string::npos);
  ASSERT_NE(metrics, std::string::npos);
  EXPECT_LT(git, compiler);
  EXPECT_LT(compiler, flags);
  EXPECT_LT(flags, build_type);
  EXPECT_LT(build_type, compiled);
  EXPECT_LT(compiled, dispatch);
  EXPECT_LT(dispatch, metrics);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
#ifdef RANDRECON_DISABLE_METRICS
  EXPECT_NE(json.find("\"metrics_disabled\":true"), std::string::npos);
#else
  EXPECT_NE(json.find("\"metrics_disabled\":false"), std::string::npos);
#endif
}

TEST(BuildInfoTest, BannerNamesTheBinaryFacts) {
  const LogLevel previous = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  LogBuildInfoBanner();
  const std::string captured = testing::internal::GetCapturedStderr();
  SetLogLevel(previous);
  EXPECT_NE(captured.find("randrecon "), std::string::npos);
  EXPECT_NE(captured.find(GetBuildInfo().git_describe), std::string::npos);
  EXPECT_NE(captured.find("simd="), std::string::npos);
  EXPECT_NE(captured.find(GetBuildInfo().simd_dispatch), std::string::npos);
}

}  // namespace
}  // namespace randrecon
