// Tests for the thread pool layer: coverage (every index visited exactly
// once), and — the load-bearing property for the kernel layer —
// determinism: identical results whether the work runs on 1, 2, or 8
// threads.

#include "common/parallel.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/kernels.h"
#include "linalg/matrix_util.h"
#include "stats/rng.h"

namespace randrecon {
namespace {

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    std::vector<std::atomic<int>> visits(1000);
    for (auto& v : visits) v.store(0);
    ParallelOptions options;
    options.num_threads = threads;
    ParallelFor(
        0, visits.size(),
        [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
        },
        options);
    for (size_t i = 0; i < visits.size(); ++i) {
      ASSERT_EQ(visits[i].load(), 1) << "index " << i << " with " << threads
                                     << " threads";
    }
  }
}

TEST(ParallelForEachTest, VisitsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    std::vector<std::atomic<int>> visits(237);
    for (auto& v : visits) v.store(0);
    ParallelOptions options;
    options.num_threads = threads;
    ParallelForEach(
        5, 5 + visits.size(), [&](size_t i) { visits[i - 5].fetch_add(1); },
        options);
    for (size_t i = 0; i < visits.size(); ++i) {
      ASSERT_EQ(visits[i].load(), 1) << "index " << i << " with " << threads
                                     << " threads";
    }
  }
}

TEST(ParallelForEachTest, EmptyRangeIsANoOp) {
  int calls = 0;
  ParallelForEach(3, 3, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, HandlesEmptyAndTinyRanges) {
  int calls = 0;
  ParallelFor(5, 5, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  size_t sum = 0;
  ParallelFor(3, 4, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum, 3u);
}

TEST(ParallelForTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ParallelOptions options;
  options.num_threads = 4;
  std::vector<std::atomic<int>> visits(64);
  for (auto& v : visits) v.store(0);
  ParallelFor(
      0, 8,
      [&](size_t outer_begin, size_t outer_end) {
        for (size_t outer = outer_begin; outer < outer_end; ++outer) {
          // Inner call from inside a pool task must run inline, not
          // re-enter the (single-job) pool.
          ParallelFor(
              0, 8,
              [&](size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) {
                  visits[outer * 8 + i].fetch_add(1);
                }
              },
              options);
        }
      },
      options);
  for (size_t i = 0; i < visits.size(); ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, MoreThreadsThanItems) {
  ParallelOptions options;
  options.num_threads = 8;
  std::vector<int> visits(3, 0);
  ParallelFor(
      0, visits.size(),
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) ++visits[i];
      },
      options);
  EXPECT_EQ(visits, (std::vector<int>{1, 1, 1}));
}

TEST(ParallelReduceTest, SumIsBitwiseIdenticalAcrossThreadCounts) {
  // Random magnitudes make the grand total order-sensitive in floating
  // point; fixed chunking + in-order combine must erase the thread count
  // from the result entirely.
  stats::Rng rng(11);
  const linalg::Matrix values = rng.GaussianMatrix(1, 100000);
  const double* data = values.data();
  auto chunk_sum = [&](size_t begin, size_t end) {
    double sum = 0.0;
    for (size_t i = begin; i < end; ++i) sum += data[i] * data[i] * 1e-3;
    return sum;
  };
  std::vector<double> totals;
  for (int threads : {1, 2, 8}) {
    ParallelOptions options;
    options.num_threads = threads;
    totals.push_back(
        ParallelReduceSum(0, values.size(), 4096, chunk_sum, options));
  }
  EXPECT_EQ(totals[0], totals[1]);
  EXPECT_EQ(totals[0], totals[2]);
  EXPECT_GT(totals[0], 0.0);
}

TEST(ParallelKernelTest, BlockedMatMulIsBitwiseIdenticalAcrossThreadCounts) {
  stats::Rng rng(12);
  // Big enough for both the blocked path and the parallel dispatch.
  const linalg::Matrix a = rng.GaussianMatrix(260, 260);
  const linalg::Matrix b = rng.GaussianMatrix(260, 260);
  std::vector<linalg::Matrix> products;
  for (int threads : {1, 2, 8}) {
    ParallelOptions options;
    options.num_threads = threads;
    products.push_back(linalg::kernels::MatMul(a, b, options));
  }
  EXPECT_TRUE(products[0] == products[1]);
  EXPECT_TRUE(products[0] == products[2]);
}

TEST(ParallelKernelTest, GramIsBitwiseIdenticalAcrossThreadCounts) {
  stats::Rng rng(13);
  const linalg::Matrix data = rng.GaussianMatrix(900, 140);
  std::vector<linalg::Matrix> grams;
  for (int threads : {1, 2, 8}) {
    ParallelOptions options;
    options.num_threads = threads;
    grams.push_back(linalg::kernels::GramMatrix(data, 900.0, options));
  }
  EXPECT_TRUE(grams[0] == grams[1]);
  EXPECT_TRUE(grams[0] == grams[2]);
}

TEST(EffectiveThreadCountTest, RespectsForcedCountAndItemCap) {
  ParallelOptions options;
  options.num_threads = 4;
  EXPECT_EQ(EffectiveThreadCount(options, 100), 4u);
  EXPECT_EQ(EffectiveThreadCount(options, 2), 2u);   // Capped by items.
  EXPECT_EQ(EffectiveThreadCount(options, 1), 1u);
  options.num_threads = 1;
  EXPECT_EQ(EffectiveThreadCount(options, 1000), 1u);
}

TEST(EffectiveThreadCountTest, SmallRangesStaySerial) {
  ParallelOptions options;
  options.num_threads = 8;
  options.min_parallel_items = 500;
  EXPECT_EQ(EffectiveThreadCount(options, 499), 1u);
  EXPECT_EQ(EffectiveThreadCount(options, 500), 8u);
}

}  // namespace
}  // namespace randrecon
