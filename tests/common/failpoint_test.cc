// The deterministic fault-injection seam (src/common/failpoint.h):
// registration, arming (API + spec strings), trigger-on-Nth-hit
// semantics, firing windows, and the disarmed fast path being a no-op.
// The crash action is exercised end-to-end by the fork-based torture
// matrix in tests/data/store_recovery_test.cc.

#include "common/failpoint.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace randrecon {
namespace {

/// A failpoint owned by this test binary, so tests can arm/fire it
/// without disturbing the library's real injection points.
Failpoint test_point("test.point");
Failpoint other_point("test.other");

/// The guarded operation under test: returns OK unless the failpoint
/// fires, exactly like a guarded store write.
Status GuardedOperation() {
  RR_FAILPOINT(test_point);
  return Status::OK();
}

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { DisarmAllFailpoints(); }
  void TearDown() override { DisarmAllFailpoints(); }
};

TEST_F(FailpointTest, DisarmedIsANoOp) {
  EXPECT_FALSE(test_point.armed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(GuardedOperation().ok());
  }
  // A disarmed failpoint does not even count hits.
  EXPECT_EQ(FailpointHitCount("test.point"), 0u);
}

TEST_F(FailpointTest, RegistryListsEveryLinkedFailpoint) {
  // Only the failpoints of object files actually LINKED register: this
  // binary pulls just failpoint.o from the static library, so the
  // store/pipeline injection points are absent here by design. The full
  // production set is enumerated by `example_convert_csv
  // --list_failpoints` (which links everything) and exercised one by
  // one in the CI fault-injection matrix; arming them by name is also
  // load-bearing in tests/data/store_recovery_test.cc.
  const std::vector<std::string> names = ListFailpoints();
  for (const char* expected : {"test.point", "test.other"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "failpoint '" << expected << "' is not registered";
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST_F(FailpointTest, ErrorActionFiresOnceAtFirstHit) {
  ASSERT_TRUE(
      ArmFailpoint("test.point", FailpointAction::kError).ok());
  EXPECT_TRUE(test_point.armed());
  const Status fired = GuardedOperation();
  EXPECT_EQ(fired.code(), StatusCode::kIoError);
  EXPECT_NE(fired.message().find("test.point"), std::string::npos)
      << fired.ToString();
  EXPECT_NE(fired.message().find("hit 1"), std::string::npos)
      << fired.ToString();
  // The default firing window is one shot: later hits pass (and still
  // count).
  EXPECT_TRUE(GuardedOperation().ok());
  EXPECT_TRUE(GuardedOperation().ok());
  EXPECT_EQ(FailpointHitCount("test.point"), 3u);
}

TEST_F(FailpointTest, TriggerOnNthHit) {
  ASSERT_TRUE(
      ArmFailpoint("test.point", FailpointAction::kError, /*trigger_hit=*/3)
          .ok());
  EXPECT_TRUE(GuardedOperation().ok());
  EXPECT_TRUE(GuardedOperation().ok());
  const Status fired = GuardedOperation();
  EXPECT_EQ(fired.code(), StatusCode::kIoError);
  EXPECT_NE(fired.message().find("hit 3"), std::string::npos)
      << fired.ToString();
}

TEST_F(FailpointTest, FireForeverKeepsFiring) {
  FailpointConfig config;
  config.fire_count = kFailpointFireForever;
  ASSERT_TRUE(ArmFailpoint("test.point", config).ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(GuardedOperation().code(), StatusCode::kIoError) << i;
  }
}

TEST_F(FailpointTest, CustomStatusCode) {
  FailpointConfig config;
  config.code = StatusCode::kUnavailable;
  ASSERT_TRUE(ArmFailpoint("test.point", config).ok());
  const Status fired = GuardedOperation();
  EXPECT_EQ(fired.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(fired.IsRetryable());
}

TEST_F(FailpointTest, DisarmRestoresTheFastPath) {
  ASSERT_TRUE(ArmFailpoint("test.point", FailpointAction::kError).ok());
  EXPECT_TRUE(DisarmFailpoint("test.point"));
  EXPECT_FALSE(test_point.armed());
  EXPECT_TRUE(GuardedOperation().ok());
  EXPECT_EQ(FailpointHitCount("test.point"), 0u);  // Counters reset.
  EXPECT_FALSE(DisarmFailpoint("no.such.failpoint"));
}

TEST_F(FailpointTest, ReArmingResetsTheHitCounter) {
  ASSERT_TRUE(
      ArmFailpoint("test.point", FailpointAction::kError, /*trigger_hit=*/2)
          .ok());
  EXPECT_TRUE(GuardedOperation().ok());  // hit 1
  ASSERT_TRUE(
      ArmFailpoint("test.point", FailpointAction::kError, /*trigger_hit=*/2)
          .ok());
  EXPECT_TRUE(GuardedOperation().ok());  // hit 1 again, not 2
  EXPECT_EQ(GuardedOperation().code(), StatusCode::kIoError);
}

TEST_F(FailpointTest, UnknownNameIsNotFound) {
  const Status armed =
      ArmFailpoint("no.such.failpoint", FailpointAction::kError);
  EXPECT_EQ(armed.code(), StatusCode::kNotFound);
}

TEST_F(FailpointTest, InvalidConfigsAreRejected) {
  FailpointConfig zero_hit;
  zero_hit.trigger_hit = 0;
  EXPECT_EQ(ArmFailpoint("test.point", zero_hit).code(),
            StatusCode::kInvalidArgument);
  FailpointConfig zero_fires;
  zero_fires.fire_count = 0;
  EXPECT_EQ(ArmFailpoint("test.point", zero_fires).code(),
            StatusCode::kInvalidArgument);
  FailpointConfig ok_error;
  ok_error.code = StatusCode::kOk;
  EXPECT_EQ(ArmFailpoint("test.point", ok_error).code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(test_point.armed());
}

TEST_F(FailpointTest, SpecStringArmsMultipleClauses) {
  ASSERT_TRUE(
      ArmFailpointsFromSpec("test.point=unavailable@2;test.other=error")
          .ok());
  EXPECT_TRUE(test_point.armed());
  EXPECT_TRUE(other_point.armed());
  EXPECT_TRUE(GuardedOperation().ok());
  EXPECT_EQ(GuardedOperation().code(), StatusCode::kUnavailable);
}

TEST_F(FailpointTest, BadSpecsAreRejected) {
  EXPECT_EQ(ArmFailpointsFromSpec("test.point").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ArmFailpointsFromSpec("=error").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ArmFailpointsFromSpec("test.point=explode").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ArmFailpointsFromSpec("test.point=error@0").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ArmFailpointsFromSpec("test.point=error@x").code(),
            StatusCode::kInvalidArgument);
  // Spec arming (the test API) rejects unknown names loudly — only the
  // environment path defers them for late-registering TUs.
  EXPECT_EQ(ArmFailpointsFromSpec("no.such.failpoint=error").code(),
            StatusCode::kNotFound);
}

TEST_F(FailpointTest, LenientSpecWarnsOnMalformedClausesAndArmsTheRest) {
  // The RANDRECON_FAILPOINTS environment path: a malformed clause gets
  // an RR_LOG(kWarning) naming the problem and is SKIPPED — the valid
  // clauses around it still arm. Silent ignoring would make a typo'd
  // fault-injection run indistinguishable from a passing one.
  testing::internal::CaptureStderr();
  const size_t skipped = ArmFailpointsFromSpecLenient(
      "test.point=explode;test.other=error;=error");
  const std::string captured = testing::internal::GetCapturedStderr();
  EXPECT_EQ(skipped, 2u);
  EXPECT_FALSE(test_point.armed());  // Bad action: skipped.
  EXPECT_TRUE(other_point.armed());  // Valid neighbor: armed.
  EXPECT_NE(captured.find("RANDRECON_FAILPOINTS"), std::string::npos)
      << captured;
  EXPECT_NE(captured.find("clause skipped"), std::string::npos) << captured;
  EXPECT_NE(captured.find("explode"), std::string::npos) << captured;
}

TEST_F(FailpointTest, LenientSpecWarnsOnUnknownNamesWhenNotPending) {
  testing::internal::CaptureStderr();
  const size_t skipped =
      ArmFailpointsFromSpecLenient("no.such.failpoint=error",
                                   /*allow_pending=*/false);
  const std::string captured = testing::internal::GetCapturedStderr();
  EXPECT_EQ(skipped, 1u);
  EXPECT_NE(captured.find("no.such.failpoint"), std::string::npos) << captured;
}

TEST_F(FailpointTest, UnclaimedPendingFailpointsAreReportedByName) {
  // allow_pending mimics env-at-startup: the unknown name parks as
  // pending (maybe a later-registering TU claims it) with NO immediate
  // warning...
  testing::internal::CaptureStderr();
  EXPECT_EQ(ArmFailpointsFromSpecLenient("zz.never.registered=crash@3",
                                         /*allow_pending=*/true),
            0u);
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
  const std::vector<std::string> unclaimed = UnclaimedPendingFailpoints();
  ASSERT_EQ(unclaimed.size(), 1u);
  EXPECT_EQ(unclaimed[0], "zz.never.registered");
  // ...and the registry's atexit hook surfaces it as a warning so a
  // typo'd RANDRECON_FAILPOINTS never dies silently.
  testing::internal::CaptureStderr();
  EXPECT_EQ(WarnUnclaimedPendingFailpoints(), 1u);
  const std::string captured = testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("zz.never.registered"), std::string::npos)
      << captured;
  EXPECT_NE(captured.find("not registered"), std::string::npos) << captured;
}

TEST_F(FailpointTest, DisarmAllClearsEverything) {
  ASSERT_TRUE(
      ArmFailpointsFromSpec("test.point=error;test.other=error").ok());
  DisarmAllFailpoints();
  EXPECT_FALSE(test_point.armed());
  EXPECT_FALSE(other_point.armed());
  EXPECT_TRUE(GuardedOperation().ok());
}

}  // namespace
}  // namespace randrecon
