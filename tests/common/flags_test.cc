#include "common/flags.h"

#include <gtest/gtest.h>

namespace randrecon {
namespace {

Flags ParseOk(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "binary");
  auto flags = Flags::Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(flags.ok()) << flags.status().ToString();
  return std::move(flags).value();
}

TEST(FlagsTest, EmptyCommandLine) {
  Flags flags = ParseOk({});
  EXPECT_FALSE(flags.Has("anything"));
  EXPECT_TRUE(flags.positional().empty());
}

TEST(FlagsTest, StringFlag) {
  Flags flags = ParseOk({"--name=value"});
  EXPECT_TRUE(flags.Has("name"));
  EXPECT_EQ(flags.GetString("name", "x"), "value");
  EXPECT_EQ(flags.GetString("missing", "fallback"), "fallback");
}

TEST(FlagsTest, IntFlag) {
  Flags flags = ParseOk({"--n=1000"});
  auto n = flags.GetInt("n", 5);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 1000);
  EXPECT_EQ(flags.GetInt("missing", 7).value(), 7);
}

TEST(FlagsTest, IntFlagRejectsNonInteger) {
  Flags flags = ParseOk({"--n=1.5", "--s=abc"});
  EXPECT_FALSE(flags.GetInt("n", 0).ok());
  EXPECT_FALSE(flags.GetInt("s", 0).ok());
}

TEST(FlagsTest, DoubleFlag) {
  Flags flags = ParseOk({"--sigma=2.5"});
  auto sigma = flags.GetDouble("sigma", 1.0);
  ASSERT_TRUE(sigma.ok());
  EXPECT_DOUBLE_EQ(sigma.value(), 2.5);
  EXPECT_FALSE(ParseOk({"--x=oops"}).GetDouble("x", 0.0).ok());
}

TEST(FlagsTest, BoolFlagForms) {
  Flags flags = ParseOk({"--a", "--b=true", "--c=false", "--d=1", "--e=0"});
  EXPECT_TRUE(flags.GetBool("a", false).value());
  EXPECT_TRUE(flags.GetBool("b", false).value());
  EXPECT_FALSE(flags.GetBool("c", true).value());
  EXPECT_TRUE(flags.GetBool("d", false).value());
  EXPECT_FALSE(flags.GetBool("e", true).value());
  EXPECT_TRUE(flags.GetBool("missing", true).value());
  EXPECT_FALSE(ParseOk({"--x=maybe"}).GetBool("x", false).ok());
}

TEST(FlagsTest, PositionalArguments) {
  Flags flags = ParseOk({"input.csv", "--n=3", "output.csv"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.csv");
  EXPECT_EQ(flags.positional()[1], "output.csv");
}

TEST(FlagsTest, RejectsMalformedAndDuplicates) {
  const char* bad1[] = {"bin", "--=x"};
  EXPECT_FALSE(Flags::Parse(2, bad1).ok());
  const char* bad2[] = {"bin", "--a=1", "--a=2"};
  EXPECT_FALSE(Flags::Parse(3, bad2).ok());
}

TEST(FlagsTest, ValueWithEqualsSign) {
  Flags flags = ParseOk({"--expr=a=b"});
  EXPECT_EQ(flags.GetString("expr", ""), "a=b");
}

TEST(FlagsTest, UnusedFlagsTracksReads) {
  Flags flags = ParseOk({"--used=1", "--typo=2"});
  (void)flags.GetInt("used", 0);
  const auto unused = flags.UnusedFlags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

}  // namespace
}  // namespace randrecon
