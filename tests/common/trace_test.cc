#include "common/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/stopwatch.h"

namespace randrecon {
namespace trace {
namespace {

metrics::Histogram span_latency("test.trace.span_latency");

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { metrics::ResetAllMetrics(); }
  void TearDown() override {
    // Never leak an open capture into the next test.
    if (TracingEnabled()) StopTracing();
  }
};

TEST_F(TraceTest, FakeClockDrivesNowNanos) {
  FakeClockGuard clock(100);
  EXPECT_EQ(NowNanos(), 100u);
  clock.Advance(50);
  EXPECT_EQ(NowNanos(), 150u);
  clock.Set(1000);
  EXPECT_EQ(NowNanos(), 1000u);
}

TEST_F(TraceTest, StopwatchReadsTheInjectedClock) {
  FakeClockGuard clock(0);
  Stopwatch stopwatch;
  clock.Advance(2500);
  EXPECT_EQ(stopwatch.ElapsedNanos(), 2500u);
  EXPECT_DOUBLE_EQ(stopwatch.ElapsedSeconds(), 2.5e-6);
  stopwatch.Restart();
  EXPECT_EQ(stopwatch.ElapsedNanos(), 0u);
  clock.Advance(7);
  EXPECT_EQ(stopwatch.ElapsedNanos(), 7u);
}

TEST_F(TraceTest, DisabledTracingRecordsNoSpans) {
  ASSERT_FALSE(TracingEnabled());
  { TraceSpan span("test.trace.unwatched"); }
  StartTracing();
  const std::vector<Span> spans = StopTracing();
  EXPECT_TRUE(spans.empty());
}

TEST_F(TraceTest, NestedSpansFlattenParentsFirst) {
  FakeClockGuard clock(0);
  StartTracing();
  {
    TraceSpan outer("outer");
    clock.Advance(10);
    {
      TraceSpan inner("inner");
      clock.Advance(5);
    }
    clock.Advance(1);
  }
  const std::vector<Span> spans = StopTracing();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[0].start_nanos, 0u);
  EXPECT_EQ(spans[0].duration_nanos, 16u);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[1].start_nanos, 10u);
  EXPECT_EQ(spans[1].duration_nanos, 5u);
  // The flat array is a topologically-ordered tree.
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_LT(spans[i].parent, static_cast<int>(i));
  }
}

TEST_F(TraceTest, SiblingsShareTheParent) {
  FakeClockGuard clock(0);
  StartTracing();
  {
    TraceSpan parent("parent");
    { TraceSpan a("a"); clock.Advance(1); }
    { TraceSpan b("b"); clock.Advance(2); }
  }
  const std::vector<Span> spans = StopTracing();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[1].name, "a");
  EXPECT_EQ(spans[2].name, "b");
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[2].parent, 0);
}

Status FailsEarlyUnderSpan(FakeClockGuard* clock) {
  TraceSpan span("early_return");
  clock->Advance(42);
  return Status::InvalidArgument("synthetic failure");
  // The span closes by scope exit despite the early return.
}

TEST_F(TraceTest, EarlyStatusReturnClosesTheSpan) {
  FakeClockGuard clock(0);
  StartTracing();
  EXPECT_FALSE(FailsEarlyUnderSpan(&clock).ok());
  const std::vector<Span> spans = StopTracing();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "early_return");
  EXPECT_EQ(spans[0].duration_nanos, 42u);
}

TEST_F(TraceTest, SpanFeedsItsHistogramExactly) {
  FakeClockGuard clock(0);
  // Tracing OFF: the histogram still records (latency percentiles do
  // not require a capture).
  {
    TraceSpan span("test.trace.timed", &span_latency);
    clock.Advance(640);
  }
  EXPECT_EQ(span_latency.Count(), 1u);
  EXPECT_EQ(span_latency.Sum(), 640u);
  EXPECT_EQ(span_latency.ValueAtPercentile(50), 640u);
}

TEST_F(TraceTest, FinishClosesEarlyAndIsIdempotent) {
  FakeClockGuard clock(0);
  StartTracing();
  {
    TraceSpan span("finished", &span_latency);
    clock.Advance(30);
    span.Finish();
    clock.Advance(1000);  // After Finish: not part of the span.
    span.Finish();        // No-op.
  }
  const std::vector<Span> spans = StopTracing();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].duration_nanos, 30u);
  EXPECT_EQ(span_latency.Count(), 1u);
  EXPECT_EQ(span_latency.Sum(), 30u);
}

TEST_F(TraceTest, SpanOpenAcrossStopIsDropped) {
  FakeClockGuard clock(0);
  StartTracing();
  {
    TraceSpan open_span("still_open");
    { TraceSpan closed("closed"); clock.Advance(3); }
    const std::vector<Span> spans = StopTracing();
    // The unfinished ancestor is dropped; its child re-parents upward
    // to a root.
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].name, "closed");
    EXPECT_EQ(spans[0].parent, -1);
  }
}

TEST_F(TraceTest, RestartedCaptureDropsOldSpans) {
  FakeClockGuard clock(0);
  StartTracing();
  { TraceSpan stale("stale"); clock.Advance(1); }
  StartTracing();  // New epoch: the stale span is dead.
  { TraceSpan fresh("fresh"); clock.Advance(2); }
  const std::vector<Span> spans = StopTracing();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "fresh");
}

TEST_F(TraceTest, SpanTreeJsonRendersEveryField) {
  std::vector<Span> spans(1);
  spans[0].name = "stage";
  spans[0].start_nanos = 5;
  spans[0].duration_nanos = 9;
  spans[0].parent = -1;
  spans[0].thread = 0;
  EXPECT_EQ(SpanTreeJson(spans),
            "[{\"name\":\"stage\",\"start_ns\":5,\"duration_ns\":9,"
            "\"parent\":-1,\"thread\":0}]");
  EXPECT_EQ(SpanTreeJson({}), "[]");
}

}  // namespace
}  // namespace trace
}  // namespace randrecon
