#include "common/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "data/column_store.h"
#include "pipeline/runner.h"

namespace randrecon {
namespace metrics {
namespace {

// Namespace-scope registration, exactly as production code defines its
// instruments. Names are test-prefixed so they can never collide with a
// real hot-path metric.
Counter test_counter("test.metrics.counter");
Gauge test_gauge("test.metrics.gauge");
Histogram test_histogram("test.metrics.histogram");
Counter hammer_counter("test.metrics.hammer_counter");
Histogram hammer_histogram("test.metrics.hammer_histogram");

class MetricsTest : public ::testing::Test {
 protected:
  // Registry state is process-global; each test starts from zero.
  void SetUp() override { ResetAllMetrics(); }
};

TEST_F(MetricsTest, CounterCountsExactly) {
  EXPECT_EQ(test_counter.Value(), 0u);
  test_counter.Add();
  test_counter.Add(41);
  EXPECT_EQ(test_counter.Value(), 42u);
}

TEST_F(MetricsTest, GaugeSetAndAdd) {
  test_gauge.Set(7);
  EXPECT_EQ(test_gauge.Value(), 7);
  test_gauge.Add(-10);
  EXPECT_EQ(test_gauge.Value(), -3);
}

TEST_F(MetricsTest, RegisteredNamesAreListed) {
  // Registration happens at static-init of the defining TU, so pull the
  // store/runner objects into this binary the way any real tool does —
  // by using them (a static library drops unreferenced objects).
  (void)data::ColumnStoreHash("x", 1);
  (void)pipeline::RunPipelineJobs({}, {});
  const std::vector<std::string> names = ListMetricNames();
  auto listed = [&](const char* name) {
    for (const std::string& entry : names) {
      if (entry == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(listed("test.metrics.counter"));
  EXPECT_TRUE(listed("test.metrics.gauge"));
  EXPECT_TRUE(listed("test.metrics.histogram"));
  // The production instruments linked into this binary register the
  // same way.
  EXPECT_TRUE(listed("store.blocks_written"));
  EXPECT_TRUE(listed("pipeline.jobs_run"));
}

// ---- Bucket geometry: bucket 0 holds 0, bucket i holds [2^(i-1), 2^i).

TEST_F(MetricsTest, BucketIndexBoundaries) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), kHistogramBuckets - 1);
}

TEST_F(MetricsTest, BucketUpperBounds) {
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7u);
  EXPECT_EQ(Histogram::BucketUpperBound(kHistogramBuckets - 1), ~uint64_t{0});
  // Every value lands in the bucket whose bound covers it.
  for (uint64_t value : {0ull, 1ull, 2ull, 5ull, 1000ull, 123456789ull}) {
    const size_t bucket = Histogram::BucketIndex(value);
    EXPECT_LE(value, Histogram::BucketUpperBound(bucket));
    if (bucket > 0) {
      EXPECT_GT(value, Histogram::BucketUpperBound(bucket - 1));
    }
  }
}

// ---- Percentile pinning: the documented edge cases are exact.

TEST_F(MetricsTest, EmptyHistogramReadsZero) {
  EXPECT_EQ(test_histogram.Count(), 0u);
  EXPECT_EQ(test_histogram.Sum(), 0u);
  EXPECT_EQ(test_histogram.Min(), 0u);
  EXPECT_EQ(test_histogram.Max(), 0u);
  EXPECT_EQ(test_histogram.ValueAtPercentile(50), 0u);
  EXPECT_EQ(test_histogram.ValueAtPercentile(99), 0u);
}

TEST_F(MetricsTest, SingleSampleIsExactEverywhere) {
  test_histogram.Record(777);
  EXPECT_EQ(test_histogram.Count(), 1u);
  EXPECT_EQ(test_histogram.Sum(), 777u);
  EXPECT_EQ(test_histogram.Min(), 777u);
  EXPECT_EQ(test_histogram.Max(), 777u);
  EXPECT_EQ(test_histogram.ValueAtPercentile(0), 777u);
  EXPECT_EQ(test_histogram.ValueAtPercentile(50), 777u);
  EXPECT_EQ(test_histogram.ValueAtPercentile(100), 777u);
}

TEST_F(MetricsTest, AllSamplesInOneBucketReadTheMax) {
  // 1000..1023 all land in bucket index 10 ([512, 1024)).
  for (uint64_t v = 1000; v < 1024; ++v) test_histogram.Record(v);
  EXPECT_EQ(test_histogram.BucketCount(10), 24u);
  EXPECT_EQ(test_histogram.ValueAtPercentile(50), 1023u);
  EXPECT_EQ(test_histogram.ValueAtPercentile(99), 1023u);
  EXPECT_EQ(test_histogram.Min(), 1000u);
}

TEST_F(MetricsTest, PercentilesClampToObservedRange) {
  // One tiny and one huge sample: p50's bucket bound (1) clamps to the
  // exact min, p99's unbounded bucket clamps to the exact max.
  test_histogram.Record(1);
  test_histogram.Record(1000);
  EXPECT_EQ(test_histogram.ValueAtPercentile(50), 1u);
  EXPECT_EQ(test_histogram.ValueAtPercentile(99), 1000u);
}

TEST_F(MetricsTest, ZeroesLandInBucketZero) {
  test_histogram.Record(0);
  test_histogram.Record(0);
  EXPECT_EQ(test_histogram.BucketCount(0), 2u);
  EXPECT_EQ(test_histogram.ValueAtPercentile(50), 0u);
  EXPECT_EQ(test_histogram.Max(), 0u);
}

// ---- Concurrency: totals are exact under ParallelForEach hammering.

TEST_F(MetricsTest, ConcurrentCounterTotalsAreExact) {
  constexpr size_t kTasks = 64;
  constexpr uint64_t kAddsPerTask = 10000;
  ParallelOptions options;
  options.min_parallel_items = 2;
  ParallelForEach(
      0, kTasks,
      [&](size_t) {
        for (uint64_t i = 0; i < kAddsPerTask; ++i) hammer_counter.Add(1);
      },
      options);
  EXPECT_EQ(hammer_counter.Value(), kTasks * kAddsPerTask);
}

TEST_F(MetricsTest, ConcurrentHistogramCountAndSumAreExact) {
  constexpr size_t kTasks = 32;
  constexpr uint64_t kSamplesPerTask = 5000;
  ParallelOptions options;
  options.min_parallel_items = 2;
  ParallelForEach(
      0, kTasks,
      [&](size_t task) {
        for (uint64_t i = 0; i < kSamplesPerTask; ++i) {
          hammer_histogram.Record(task * kSamplesPerTask + i);
        }
      },
      options);
  const uint64_t n = kTasks * kSamplesPerTask;
  EXPECT_EQ(hammer_histogram.Count(), n);
  EXPECT_EQ(hammer_histogram.Sum(), n * (n - 1) / 2);  // Sum of 0..n-1.
  EXPECT_EQ(hammer_histogram.Min(), 0u);
  EXPECT_EQ(hammer_histogram.Max(), n - 1);
}

// ---- Snapshots.

TEST_F(MetricsTest, SnapshotIsSortedAndCurrent) {
  test_counter.Add(5);
  test_gauge.Set(-2);
  test_histogram.Record(16);
  const MetricsSnapshot snapshot = Snapshot();
  for (size_t i = 1; i < snapshot.counters.size(); ++i) {
    EXPECT_LT(snapshot.counters[i - 1].name, snapshot.counters[i].name);
  }
  bool found_counter = false, found_gauge = false, found_histogram = false;
  for (const CounterSnapshot& c : snapshot.counters) {
    if (c.name == "test.metrics.counter") {
      found_counter = true;
      EXPECT_EQ(c.value, 5u);
    }
  }
  for (const GaugeSnapshot& g : snapshot.gauges) {
    if (g.name == "test.metrics.gauge") {
      found_gauge = true;
      EXPECT_EQ(g.value, -2);
    }
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    if (h.name == "test.metrics.histogram") {
      found_histogram = true;
      EXPECT_EQ(h.count, 1u);
      EXPECT_EQ(h.p50, 16u);
    }
  }
  EXPECT_TRUE(found_counter);
  EXPECT_TRUE(found_gauge);
  EXPECT_TRUE(found_histogram);
}

TEST_F(MetricsTest, SnapshotJsonHasAllSections) {
  test_counter.Add(3);
  const std::string json = SnapshotJson();
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"test.metrics.counter\":3"), std::string::npos);
}

TEST_F(MetricsTest, ResetZeroesEverything) {
  test_counter.Add(9);
  test_gauge.Set(9);
  test_histogram.Record(9);
  ResetAllMetrics();
  EXPECT_EQ(test_counter.Value(), 0u);
  EXPECT_EQ(test_gauge.Value(), 0);
  EXPECT_EQ(test_histogram.Count(), 0u);
  EXPECT_EQ(test_histogram.ValueAtPercentile(50), 0u);
}

// ---- ConsistentSnapshot.

TEST_F(MetricsTest, ConsistentSnapshotMatchesQuiescedState) {
  test_histogram.Record(1);
  test_histogram.Record(7);
  test_histogram.Record(100);
  const HistogramSnapshot snapshot = test_histogram.ConsistentSnapshot();
  EXPECT_EQ(snapshot.count, 3u);
  EXPECT_EQ(snapshot.sum, 108u);
  EXPECT_EQ(snapshot.min, 1u);
  EXPECT_EQ(snapshot.max, 100u);
  uint64_t bucket_total = 0;
  for (uint64_t b : snapshot.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snapshot.count);
}

// Under a concurrent all-ones hammer, count and sum of every
// ConsistentSnapshot must agree within the bounded retry's residual
// slack (at most one in-flight Record per recording thread), where the
// plain Snapshot could historically tear arbitrarily far apart.
TEST_F(MetricsTest, ConsistentSnapshotBoundsCountSumSkewUnderLoad) {
  constexpr size_t kTasks = 8;
  constexpr uint64_t kSamplesPerTask = 40000;
  ParallelOptions options;
  options.min_parallel_items = 2;
  std::vector<HistogramSnapshot> observed;
  std::atomic<bool> done{false};
  std::thread sampler([&] {
    while (!done.load(std::memory_order_acquire)) {
      observed.push_back(hammer_histogram.ConsistentSnapshot());
    }
  });
  ParallelForEach(
      0, kTasks,
      [&](size_t) {
        for (uint64_t i = 0; i < kSamplesPerTask; ++i) {
          hammer_histogram.Record(1);
        }
      },
      options);
  done.store(true, std::memory_order_release);
  sampler.join();
  ASSERT_FALSE(observed.empty());
  uint64_t previous_count = 0;
  for (const HistogramSnapshot& snapshot : observed) {
    // All-ones stream: a consistent view has sum == count; the bounded
    // retry tolerates at most one torn Record per concurrent recorder.
    const uint64_t skew = snapshot.sum > snapshot.count
                              ? snapshot.sum - snapshot.count
                              : snapshot.count - snapshot.sum;
    EXPECT_LE(skew, kTasks) << "count=" << snapshot.count
                            << " sum=" << snapshot.sum;
    // Monotone across snapshots — the slack never runs backwards.
    EXPECT_GE(snapshot.count, previous_count);
    previous_count = snapshot.count;
  }
  const HistogramSnapshot final_snapshot =
      hammer_histogram.ConsistentSnapshot();
  EXPECT_EQ(final_snapshot.count, kTasks * kSamplesPerTask);
  EXPECT_EQ(final_snapshot.sum, kTasks * kSamplesPerTask);
}

TEST_F(MetricsTest, RegistrySnapshotCarriesBuckets) {
  test_histogram.Record(0);
  test_histogram.Record(5);
  const MetricsSnapshot snapshot = Snapshot();
  for (const HistogramSnapshot& h : snapshot.histograms) {
    if (h.name == "test.metrics.histogram") {
      EXPECT_EQ(h.buckets[0], 1u);  // The zero sample.
      uint64_t total = 0;
      for (uint64_t b : h.buckets) total += b;
      EXPECT_EQ(total, h.count);
      return;
    }
  }
  FAIL() << "test.metrics.histogram not in registry snapshot";
}

}  // namespace
}  // namespace metrics
}  // namespace randrecon
