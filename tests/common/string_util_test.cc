#include "common/string_util.h"

#include <gtest/gtest.h>

namespace randrecon {
namespace {

TEST(SplitStringTest, BasicSplit) {
  EXPECT_EQ(SplitString("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitStringTest, PreservesEmptyFields) {
  EXPECT_EQ(SplitString("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(SplitString(",x,", ','), (std::vector<std::string>{"", "x", ""}));
}

TEST(SplitStringTest, NoDelimiterYieldsSingleField) {
  EXPECT_EQ(SplitString("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(SplitStringTest, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
}

TEST(TrimWhitespaceTest, TrimsBothEnds) {
  EXPECT_EQ(TrimWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(TrimWhitespace("nochange"), "nochange");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace(""), "");
}

TEST(JoinStringsTest, JoinsWithSeparator) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(JoinStrings({"only"}, ","), "only");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(FormatDoubleTest, RespectsPrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
  EXPECT_EQ(FormatDouble(-2.5, 1), "-2.5");
}

TEST(PadTest, PadsAndTruncates) {
  EXPECT_EQ(PadLeft("ab", 5), "   ab");
  EXPECT_EQ(PadRight("ab", 5), "ab   ");
  EXPECT_EQ(PadLeft("abcdef", 3), "abc");
  EXPECT_EQ(PadRight("abcdef", 3), "abc");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("prefix_rest", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(ParseDoubleTest, ParsesValidNumbers) {
  double v = 0.0;
  ASSERT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  ASSERT_TRUE(ParseDouble(" -1e3 ", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  ASSERT_TRUE(ParseDouble("0", &v));
  EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  double v = 0.0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("--2", &v));
}

}  // namespace
}  // namespace randrecon
