#include "common/logging.h"

#include <gtest/gtest.h>

#include <regex>
#include <string>

namespace randrecon {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(previous_); }
  LogLevel previous_;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST_F(LoggingTest, SuppressedMessageDoesNotCrash) {
  SetLogLevel(LogLevel::kError);
  RR_LOG(kDebug) << "this is discarded " << 42;
  RR_LOG(kInfo) << "also discarded";
}

TEST_F(LoggingTest, EmittedMessageDoesNotCrash) {
  SetLogLevel(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  RR_LOG(kWarning) << "visible warning " << 1.5;
  const std::string captured = testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("visible warning 1.5"), std::string::npos);
  EXPECT_NE(captured.find("WARN"), std::string::npos);
}

// Pins the emitted prefix format promised in common/logging.h:
//   [2026-08-07T12:34:56.789Z WARN T0 logging_test.cc:NN]
// Log scrapers parse this; changing it is a breaking change.
TEST_F(LoggingTest, PrefixFormatIsPinned) {
  SetLogLevel(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  RR_LOG(kWarning) << "format probe";
  const std::string captured = testing::internal::GetCapturedStderr();
  const std::regex pinned(
      R"(^\[\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z WARN T\d+ )"
      R"(logging_test\.cc:\d+\] format probe\n$)");
  EXPECT_TRUE(std::regex_match(captured, pinned))
      << "log line does not match the pinned prefix format: " << captured;
}

TEST_F(LoggingTest, ThreadIdIsStablePerThread) {
  const int first = LogThreadId();
  EXPECT_GE(first, 0);
  EXPECT_EQ(LogThreadId(), first);
}

TEST_F(LoggingTest, ParseLogLevelAcceptsEverySpelling) {
  struct Case {
    const char* text;
    LogLevel level;
  };
  for (const Case& c : {Case{"debug", LogLevel::kDebug},
                        Case{"DEBUG", LogLevel::kDebug},
                        Case{"info", LogLevel::kInfo},
                        Case{"warning", LogLevel::kWarning},
                        Case{"warn", LogLevel::kWarning},
                        Case{"Warn", LogLevel::kWarning},
                        Case{"error", LogLevel::kError},
                        Case{"ERROR", LogLevel::kError}}) {
    const Result<LogLevel> parsed = ParseLogLevel(c.text);
    ASSERT_TRUE(parsed.ok()) << c.text;
    EXPECT_EQ(parsed.value(), c.level) << c.text;
  }
}

TEST_F(LoggingTest, ParseLogLevelRejectsJunk) {
  for (const char* text : {"", "verbose", "3", "warning!"}) {
    const Result<LogLevel> parsed = ParseLogLevel(text);
    EXPECT_FALSE(parsed.ok()) << text;
  }
}

/// Lines of `captured` containing `needle`.
size_t CountLines(const std::string& captured, const std::string& needle) {
  size_t count = 0;
  size_t pos = 0;
  while ((pos = captured.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

TEST_F(LoggingTest, LogEveryNEmitsOccurrences1Then5Then9) {
  SetLogLevel(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  for (int i = 0; i < 10; ++i) {
    RR_LOG_EVERY_N(kWarning, 4) << "every-n probe";
  }
  const std::string captured = testing::internal::GetCapturedStderr();
  EXPECT_EQ(CountLines(captured, "every-n probe"), 3u);
  EXPECT_NE(captured.find("[occurrence 1] every-n probe"),
            std::string::npos);
  EXPECT_NE(captured.find("[occurrence 5] every-n probe"),
            std::string::npos);
  EXPECT_NE(captured.find("[occurrence 9] every-n probe"),
            std::string::npos);
  EXPECT_EQ(captured.find("[occurrence 2]"), std::string::npos);
}

TEST_F(LoggingTest, LogFirstNEmitsExactlyTheFirstN) {
  SetLogLevel(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  for (int i = 0; i < 10; ++i) {
    RR_LOG_FIRST_N(kWarning, 2) << "first-n probe";
  }
  const std::string captured = testing::internal::GetCapturedStderr();
  EXPECT_EQ(CountLines(captured, "first-n probe"), 2u);
  EXPECT_NE(captured.find("[occurrence 1] first-n probe"),
            std::string::npos);
  EXPECT_NE(captured.find("[occurrence 2] first-n probe"),
            std::string::npos);
  EXPECT_EQ(captured.find("[occurrence 3]"), std::string::npos);
}

// Each macro expansion gets its OWN counter (keyed by line), so two
// rate-limited sites never steal each other's budget.
TEST_F(LoggingTest, RateLimitCountersArePerSite) {
  SetLogLevel(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  for (int i = 0; i < 3; ++i) {
    RR_LOG_FIRST_N(kWarning, 1) << "site A";
    RR_LOG_FIRST_N(kWarning, 1) << "site B";
  }
  const std::string captured = testing::internal::GetCapturedStderr();
  EXPECT_EQ(CountLines(captured, "site A"), 1u);
  EXPECT_EQ(CountLines(captured, "site B"), 1u);
}

// A suppressed level still counts occurrences: when the level later
// drops, the occurrence numbers stay truthful.
TEST_F(LoggingTest, RateLimitedMacrosRespectLogLevel) {
  SetLogLevel(LogLevel::kError);
  testing::internal::CaptureStderr();
  for (int i = 0; i < 8; ++i) {
    RR_LOG_EVERY_N(kWarning, 2) << "suppressed probe";
  }
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

}  // namespace
}  // namespace randrecon
