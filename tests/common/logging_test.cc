#include "common/logging.h"

#include <gtest/gtest.h>

namespace randrecon {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(previous_); }
  LogLevel previous_;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST_F(LoggingTest, SuppressedMessageDoesNotCrash) {
  SetLogLevel(LogLevel::kError);
  RR_LOG(kDebug) << "this is discarded " << 42;
  RR_LOG(kInfo) << "also discarded";
}

TEST_F(LoggingTest, EmittedMessageDoesNotCrash) {
  SetLogLevel(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  RR_LOG(kWarning) << "visible warning " << 1.5;
  const std::string captured = testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("visible warning 1.5"), std::string::npos);
  EXPECT_NE(captured.find("WARN"), std::string::npos);
}

}  // namespace
}  // namespace randrecon
