// BoundedQueue (src/common/bounded_queue.h): FIFO + capacity bound,
// try/deadline/blocking variants, instruments, and — the part overload
// safety leans on — the shutdown semantics: Close() wakes every blocked
// producer and consumer, accepted items drain after close, and deadline
// expiry races with Close resolve to exactly one outcome per op.
// Deadlines are pinned with a FakeClockGuard: an already-expired
// deadline must fail without waiting, which is the only deadline
// behavior a fake clock can observe deterministically (a future
// deadline under a fake clock waits real time — see the header note).

#include "common/bounded_queue.h"

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/parallel.h"
#include "common/trace.h"

namespace randrecon {
namespace {

TEST(BoundedQueueTest, FifoOrderAndCapacity) {
  BoundedQueue<int> queue(3);
  EXPECT_EQ(queue.capacity(), 3u);
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.TryPush(1), QueueOpResult::kOk);
  EXPECT_EQ(queue.TryPush(2), QueueOpResult::kOk);
  EXPECT_EQ(queue.TryPush(3), QueueOpResult::kOk);
  EXPECT_EQ(queue.size(), 3u);
  int fourth = 4;
  EXPECT_EQ(queue.TryPush(std::move(fourth)), QueueOpResult::kFull);
  int out = 0;
  EXPECT_EQ(queue.TryPop(&out), QueueOpResult::kOk);
  EXPECT_EQ(out, 1);
  EXPECT_EQ(queue.TryPop(&out), QueueOpResult::kOk);
  EXPECT_EQ(out, 2);
  EXPECT_EQ(queue.TryPop(&out), QueueOpResult::kOk);
  EXPECT_EQ(out, 3);
  EXPECT_EQ(queue.TryPop(&out), QueueOpResult::kEmpty);
}

TEST(BoundedQueueTest, ValueOnlyMovedOnSuccess) {
  BoundedQueue<std::string> queue(1);
  std::string value = "payload";
  EXPECT_EQ(queue.TryPush(std::move(value)), QueueOpResult::kOk);
  // Moved out on kOk.
  std::string rejected = "survivor";
  EXPECT_EQ(queue.TryPush(std::move(rejected)), QueueOpResult::kFull);
  // NOT moved on kFull: the caller can retry or shed with the payload
  // intact (the ingest shed path depends on this).
  EXPECT_EQ(rejected, "survivor");
  queue.Close();
  std::string after_close = "survivor2";
  EXPECT_EQ(queue.TryPush(std::move(after_close)), QueueOpResult::kClosed);
  EXPECT_EQ(after_close, "survivor2");
}

TEST(BoundedQueueTest, ExpiredDeadlineFailsWithoutWaiting) {
  trace::FakeClockGuard clock(1000);
  BoundedQueue<int> queue(1);
  ASSERT_EQ(queue.TryPush(7), QueueOpResult::kOk);
  // Queue full, deadline already in the past: kTimedOut, no wait (the
  // fake clock never advances, so any wait would hang forever — this
  // test completing IS the assertion).
  int shed = 8;
  EXPECT_EQ(queue.PushUntil(std::move(shed), 999), QueueOpResult::kTimedOut);
  EXPECT_EQ(shed, 8);
  int out = 0;
  ASSERT_EQ(queue.TryPop(&out), QueueOpResult::kOk);
  // Queue empty, expired deadline: kTimedOut again, symmetric.
  EXPECT_EQ(queue.PopUntil(&out, 999), QueueOpResult::kTimedOut);
}

TEST(BoundedQueueTest, DeadlineOpsSucceedImmediatelyWhenRoomOrData) {
  trace::FakeClockGuard clock(1000);
  BoundedQueue<int> queue(1);
  // Even an expired deadline admits when there is room RIGHT NOW — the
  // deadline bounds waiting, it does not gate ready work.
  EXPECT_EQ(queue.PushUntil(11, 999), QueueOpResult::kOk);
  int out = 0;
  EXPECT_EQ(queue.PopUntil(&out, 999), QueueOpResult::kOk);
  EXPECT_EQ(out, 11);
}

TEST(BoundedQueueTest, CloseWakesBlockedProducers) {
  BoundedQueue<int> queue(1);
  ASSERT_EQ(queue.TryPush(1), QueueOpResult::kOk);
  std::atomic<int> result{-1};
  std::thread producer([&] {
    int blocked_value = 2;
    result.store(static_cast<int>(queue.Push(std::move(blocked_value))));
  });
  // Give the producer time to block on the full queue, then close.
  while (queue.size() == 1 && result.load() == -1) {
    std::this_thread::yield();
    queue.Close();  // Idempotent — hammering it is fine.
  }
  producer.join();
  EXPECT_EQ(static_cast<QueueOpResult>(result.load()), QueueOpResult::kClosed);
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumersAndDrainsAfterClose) {
  BoundedQueue<int> queue(4);
  ASSERT_EQ(queue.TryPush(10), QueueOpResult::kOk);
  ASSERT_EQ(queue.TryPush(20), QueueOpResult::kOk);
  queue.Close();
  EXPECT_TRUE(queue.closed());
  // Drain-after-close: accepted items are never lost.
  int out = 0;
  EXPECT_EQ(queue.Pop(&out), QueueOpResult::kOk);
  EXPECT_EQ(out, 10);
  EXPECT_EQ(queue.TryPop(&out), QueueOpResult::kOk);
  EXPECT_EQ(out, 20);
  // Only a closed AND drained queue reports kClosed to consumers.
  EXPECT_EQ(queue.Pop(&out), QueueOpResult::kClosed);
  EXPECT_EQ(queue.TryPop(&out), QueueOpResult::kClosed);
  EXPECT_EQ(queue.PopUntil(&out, trace::NowNanos() + 1), QueueOpResult::kClosed);
}

TEST(BoundedQueueTest, CloseWakesABlockedConsumerThread) {
  BoundedQueue<int> queue(1);
  std::atomic<int> result{-1};
  std::thread consumer([&] {
    int out = 0;
    result.store(static_cast<int>(queue.Pop(&out)));
  });
  queue.Close();
  consumer.join();
  EXPECT_EQ(static_cast<QueueOpResult>(result.load()), QueueOpResult::kClosed);
}

// Registered-by-construction metrics must outlive the registry's view
// of them, so test instruments live at namespace scope.
metrics::Gauge depth("test.bq.depth");
metrics::Histogram push_block("test.bq.push_block");
metrics::Histogram pop_block("test.bq.pop_block");

TEST(BoundedQueueTest, InstrumentsTrackDepthAndBlocking) {
  BoundedQueueInstruments instruments;
  instruments.depth = &depth;
  instruments.push_block_nanos = &push_block;
  instruments.pop_block_nanos = &pop_block;
  BoundedQueue<int> queue(2, instruments);
  ASSERT_EQ(queue.TryPush(1), QueueOpResult::kOk);
  ASSERT_EQ(queue.TryPush(2), QueueOpResult::kOk);
  EXPECT_EQ(depth.Value(), 2);
  int out = 0;
  ASSERT_EQ(queue.TryPop(&out), QueueOpResult::kOk);
  EXPECT_EQ(depth.Value(), 1);
  // Non-blocking ops never record block time.
  EXPECT_EQ(push_block.Count(), 0u);
  EXPECT_EQ(pop_block.Count(), 0u);
  // A pop that actually waits records its block time.
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    int late = 3;
    ASSERT_EQ(queue.Push(std::move(late)), QueueOpResult::kOk);
  });
  ASSERT_EQ(queue.TryPop(&out), QueueOpResult::kOk);  // Drain to empty.
  ASSERT_EQ(queue.Pop(&out), QueueOpResult::kOk);     // Blocks for ~5ms.
  producer.join();
  EXPECT_EQ(out, 3);
  EXPECT_EQ(pop_block.Count(), 1u);
  EXPECT_GT(pop_block.Sum(), 0u);
}

/// The shutdown-under-load test the ingest core's drain contract rests
/// on: hammer one queue with ParallelForEach producers + consumer
/// threads, close it mid-flight, and check conservation — every pushed
/// item is popped exactly once or its producer saw kClosed/kTimedOut.
void HammerQueue(int num_threads) {
  ParallelOptions parallel;
  parallel.num_threads = num_threads;
  parallel.min_parallel_items = 1;
  constexpr size_t kProducers = 8;
  constexpr size_t kItemsPerProducer = 200;
  BoundedQueue<size_t> queue(5);
  std::atomic<size_t> accepted{0};
  std::atomic<size_t> rejected{0};
  std::atomic<size_t> popped{0};
  std::atomic<uint64_t> pop_sum{0};
  std::atomic<uint64_t> push_sum{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      size_t item = 0;
      while (queue.Pop(&item) == QueueOpResult::kOk) {
        popped.fetch_add(1, std::memory_order_relaxed);
        pop_sum.fetch_add(item, std::memory_order_relaxed);
      }
    });
  }

  ParallelForEach(
      0, kProducers,
      [&](size_t p) {
        for (size_t i = 0; i < kItemsPerProducer; ++i) {
          const size_t item = p * kItemsPerProducer + i;
          // Mix all three push flavors; the bounded ones use a real
          // future deadline (real clock here — no FakeClockGuard).
          QueueOpResult result;
          size_t value = item;
          switch (item % 3) {
            case 0:
              result = queue.Push(std::move(value));
              break;
            case 1:
              result = queue.TryPush(std::move(value));
              break;
            default:
              result = queue.PushUntil(std::move(value),
                                       trace::NowNanos() + 2'000'000);
              break;
          }
          if (result == QueueOpResult::kOk) {
            accepted.fetch_add(1, std::memory_order_relaxed);
            push_sum.fetch_add(item, std::memory_order_relaxed);
          } else {
            rejected.fetch_add(1, std::memory_order_relaxed);
          }
          if (item == kProducers * kItemsPerProducer / 2) {
            queue.Close();  // Mid-flight shutdown, racing everything.
          }
        }
      },
      parallel);

  queue.Close();
  for (std::thread& consumer : consumers) consumer.join();

  // Conservation: every accepted item was popped exactly once (the
  // consumers drained after close), and accepted + rejected covers
  // every attempt.
  EXPECT_EQ(accepted.load() + rejected.load(), kProducers * kItemsPerProducer);
  EXPECT_EQ(popped.load(), accepted.load());
  EXPECT_EQ(pop_sum.load(), push_sum.load());
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueueTest, HammeredUnderParallelForEach) { HammerQueue(0); }

TEST(BoundedQueueTest, HammeredPinnedSingleThreaded) {
  // num_threads = 1 serializes the producers (consumers stay real
  // threads): the shutdown logic must hold without producer-side races.
  HammerQueue(1);
}

}  // namespace
}  // namespace randrecon
