#include "linalg/matrix_util.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/eigen.h"
#include "stats/rng.h"

namespace randrecon {
namespace linalg {
namespace {

TEST(MatrixUtilTest, Trace) {
  Matrix a{{1, 9}, {9, 2}};
  EXPECT_DOUBLE_EQ(Trace(a), 3.0);
}

TEST(MatrixUtilDeathTest, TraceOfNonSquareAborts) {
  Matrix a(2, 3);
  EXPECT_DEATH({ Trace(a); }, "square");
}

TEST(MatrixUtilTest, FrobeniusNorm) {
  Matrix a{{3, 0}, {0, 4}};
  EXPECT_DOUBLE_EQ(FrobeniusNorm(a), 5.0);
  EXPECT_DOUBLE_EQ(FrobeniusNorm(Matrix(3, 3)), 0.0);
}

TEST(MatrixUtilTest, MaxAbsDifference) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{1, 2.5}, {2, 4}};
  EXPECT_DOUBLE_EQ(MaxAbsDifference(a, b), 1.0);
  EXPECT_DOUBLE_EQ(MaxAbsDifference(a, a), 0.0);
}

TEST(MatrixUtilTest, IsSymmetric) {
  EXPECT_TRUE(IsSymmetric(Matrix{{1, 2}, {2, 1}}));
  EXPECT_FALSE(IsSymmetric(Matrix{{1, 2}, {3, 1}}));
  EXPECT_FALSE(IsSymmetric(Matrix(2, 3)));
  // Tolerance is honored.
  EXPECT_TRUE(IsSymmetric(Matrix{{1, 2.0}, {2.0 + 1e-12, 1}}, 1e-9));
}

TEST(MatrixUtilTest, Symmetrize) {
  Matrix a{{1, 4}, {2, 1}};
  Matrix s = Symmetrize(a);
  EXPECT_DOUBLE_EQ(s(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(s(1, 0), 3.0);
  EXPECT_TRUE(IsSymmetric(s, 0.0));
}

TEST(MatrixUtilTest, ClipToPsdFixesNegativeEigenvalue) {
  Matrix a = Matrix::Diagonal({5.0, -2.0});
  Matrix clipped = ClipToPositiveSemiDefinite(a).value();
  auto eig = SymmetricEigen(clipped);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig.value().eigenvalues[0], 5.0, 1e-10);
  EXPECT_NEAR(eig.value().eigenvalues[1], 0.0, 1e-10);
}

TEST(MatrixUtilTest, ClipToPsdLeavesPsdUntouched) {
  Matrix a{{2, 1}, {1, 2}};
  Matrix clipped = ClipToPositiveSemiDefinite(a).value();
  EXPECT_LT(MaxAbsDifference(a, clipped), 1e-12);
}

TEST(MatrixUtilTest, ClipToPsdHonorsFloor) {
  Matrix a = Matrix::Diagonal({5.0, 0.001});
  Matrix clipped = ClipToPositiveSemiDefinite(a, 0.5).value();
  auto eig = SymmetricEigen(clipped);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig.value().eigenvalues[1], 0.5, 1e-10);
}

TEST(MatrixUtilTest, HasOrthonormalColumns) {
  EXPECT_TRUE(HasOrthonormalColumns(Matrix::Identity(4)));
  Matrix scaled = Matrix::Identity(3) * 2.0;
  EXPECT_FALSE(HasOrthonormalColumns(scaled));
}

TEST(MatrixUtilTest, CovarianceToCorrelation) {
  Matrix cov{{4.0, 2.0}, {2.0, 9.0}};
  Matrix corr = CovarianceToCorrelation(cov);
  EXPECT_DOUBLE_EQ(corr(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(corr(1, 1), 1.0);
  EXPECT_NEAR(corr(0, 1), 2.0 / 6.0, 1e-12);
  EXPECT_NEAR(corr(1, 0), 2.0 / 6.0, 1e-12);
}

TEST(MatrixUtilTest, CovarianceToCorrelationZeroVariance) {
  Matrix cov{{0.0, 0.0}, {0.0, 4.0}};
  Matrix corr = CovarianceToCorrelation(cov);
  EXPECT_DOUBLE_EQ(corr(0, 0), 1.0);  // Diagonal pinned to 1 by convention.
  EXPECT_DOUBLE_EQ(corr(0, 1), 0.0);
}

TEST(MatrixUtilTest, CorrelationBoundsOnRandomCovariance) {
  stats::Rng rng(5);
  Matrix g = rng.GaussianMatrix(6, 6);
  Matrix cov = Symmetrize(g * g.Transpose());
  Matrix corr = CovarianceToCorrelation(cov);
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      EXPECT_LE(std::fabs(corr(i, j)), 1.0 + 1e-12);
    }
  }
}

}  // namespace
}  // namespace linalg
}  // namespace randrecon
