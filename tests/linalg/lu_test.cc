#include "linalg/lu.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/matrix_util.h"
#include "stats/rng.h"

namespace randrecon {
namespace linalg {
namespace {

TEST(LuTest, SolvesKnownSystem) {
  // x + y = 3, x - y = 1 -> x = 2, y = 1.
  Matrix a{{1, 1}, {1, -1}};
  auto lu = LuFactorization::Compute(a);
  ASSERT_TRUE(lu.ok());
  Vector x = lu.value().Solve(Vector{3, 1});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(LuTest, SolvesSystemNeedingPivoting) {
  // Leading zero forces a row swap.
  Matrix a{{0, 1}, {1, 0}};
  auto lu = LuFactorization::Compute(a);
  ASSERT_TRUE(lu.ok());
  Vector x = lu.value().Solve(Vector{5, 7});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 5.0, 1e-12);
}

TEST(LuTest, DeterminantKnown) {
  Matrix a{{1, 2}, {3, 4}};
  auto lu = LuFactorization::Compute(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu.value().Determinant(), -2.0, 1e-12);
}

TEST(LuTest, DeterminantTracksPivotSign) {
  // Permutation matrix: determinant -1.
  Matrix a{{0, 1}, {1, 0}};
  auto lu = LuFactorization::Compute(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu.value().Determinant(), -1.0, 1e-12);
}

TEST(LuTest, InverseRoundTrip) {
  stats::Rng rng(3);
  Matrix a = rng.GaussianMatrix(9, 9);
  for (size_t i = 0; i < 9; ++i) a(i, i) += 5.0;  // Well-conditioned.
  auto lu = LuFactorization::Compute(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_LT(MaxAbsDifference(a * lu.value().Inverse(), Matrix::Identity(9)),
            1e-9);
  EXPECT_LT(MaxAbsDifference(lu.value().Inverse() * a, Matrix::Identity(9)),
            1e-9);
}

TEST(LuTest, MatrixSolve) {
  stats::Rng rng(4);
  Matrix a = rng.GaussianMatrix(5, 5);
  for (size_t i = 0; i < 5; ++i) a(i, i) += 4.0;
  Matrix b = rng.GaussianMatrix(5, 2);
  auto lu = LuFactorization::Compute(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_LT(MaxAbsDifference(a * lu.value().Solve(b), b), 1e-9);
}

TEST(LuTest, RejectsNonSquare) {
  auto lu = LuFactorization::Compute(Matrix(3, 2));
  EXPECT_FALSE(lu.ok());
  EXPECT_EQ(lu.status().code(), StatusCode::kInvalidArgument);
}

TEST(LuTest, RejectsSingular) {
  Matrix a{{1, 2}, {2, 4}};  // Rank 1.
  auto lu = LuFactorization::Compute(a);
  EXPECT_FALSE(lu.ok());
  EXPECT_EQ(lu.status().code(), StatusCode::kNumericalError);
}

TEST(LuTest, RejectsZeroMatrix) {
  auto lu = LuFactorization::Compute(Matrix(3, 3));
  EXPECT_FALSE(lu.ok());
}

TEST(LuTest, SolveLinearSystemConvenience) {
  auto x = SolveLinearSystem(Matrix{{2, 0}, {0, 4}}, {2, 8});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 1.0, 1e-12);
  EXPECT_NEAR(x.value()[1], 2.0, 1e-12);
}

TEST(LuTest, InvertMatrixConvenience) {
  auto inv = InvertMatrix(Matrix{{2, 0}, {0, 4}});
  ASSERT_TRUE(inv.ok());
  EXPECT_NEAR(inv.value()(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(inv.value()(1, 1), 0.25, 1e-12);
  EXPECT_FALSE(InvertMatrix(Matrix{{1, 1}, {1, 1}}).ok());
}

class LuSizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(LuSizeSweep, RandomSystemsSolve) {
  const size_t m = GetParam();
  stats::Rng rng(400 + m);
  Matrix a = rng.GaussianMatrix(m, m);
  for (size_t i = 0; i < m; ++i) a(i, i) += 3.0 + static_cast<double>(m) * 0.1;
  Vector b = rng.GaussianVector(m);
  auto lu = LuFactorization::Compute(a);
  ASSERT_TRUE(lu.ok());
  Vector x = lu.value().Solve(b);
  Vector ax = a * x;
  for (size_t i = 0; i < m; ++i) EXPECT_NEAR(ax[i], b[i], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuSizeSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64));

}  // namespace
}  // namespace linalg
}  // namespace randrecon
