#include "linalg/eigen.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/matrix_util.h"
#include "stats/random_orthogonal.h"
#include "stats/rng.h"

namespace randrecon {
namespace linalg {
namespace {

TEST(EigenTest, DiagonalMatrixEigenvaluesSortedDescending) {
  Matrix a = Matrix::Diagonal({3.0, 7.0, 1.0});
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok()) << eig.status().ToString();
  const Vector& ev = eig.value().eigenvalues;
  ASSERT_EQ(ev.size(), 3u);
  EXPECT_NEAR(ev[0], 7.0, 1e-12);
  EXPECT_NEAR(ev[1], 3.0, 1e-12);
  EXPECT_NEAR(ev[2], 1.0, 1e-12);
}

TEST(EigenTest, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix a{{2, 1}, {1, 2}};
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig.value().eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.value().eigenvalues[1], 1.0, 1e-10);
  // Eigenvector for λ=3 is (1,1)/√2 up to sign.
  const Matrix& q = eig.value().eigenvectors;
  EXPECT_NEAR(std::fabs(q(0, 0)), 1.0 / std::sqrt(2.0), 1e-10);
  EXPECT_NEAR(q(0, 0), q(1, 0), 1e-10);
}

TEST(EigenTest, EigenvectorsAreOrthonormal) {
  stats::Rng rng(7);
  Matrix g = rng.GaussianMatrix(12, 12);
  Matrix a = Symmetrize(g * g.Transpose());
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_TRUE(HasOrthonormalColumns(eig.value().eigenvectors, 1e-9));
}

TEST(EigenTest, ReconstructsInput) {
  stats::Rng rng(11);
  Matrix g = rng.GaussianMatrix(10, 10);
  Matrix a = Symmetrize(g + g.Transpose());
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  Matrix rebuilt =
      ComposeFromEigen(eig.value().eigenvalues, eig.value().eigenvectors);
  EXPECT_LT(MaxAbsDifference(a, rebuilt), 1e-9);
}

TEST(EigenTest, EigenEquationHolds) {
  stats::Rng rng(13);
  Matrix g = rng.GaussianMatrix(8, 8);
  Matrix a = Symmetrize(g * g.Transpose());
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  const Matrix& q = eig.value().eigenvectors;
  for (size_t k = 0; k < 8; ++k) {
    const Vector v = q.Col(k);
    const Vector av = a * v;
    for (size_t i = 0; i < 8; ++i) {
      EXPECT_NEAR(av[i], eig.value().eigenvalues[k] * v[i], 1e-8);
    }
  }
}

TEST(EigenTest, TraceEqualsEigenvalueSum) {
  // Eq. 12 of the paper: Σλᵢ = Σaᵢᵢ.
  stats::Rng rng(17);
  Matrix g = rng.GaussianMatrix(9, 9);
  Matrix a = Symmetrize(g * g.Transpose());
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  double sum = 0.0;
  for (double lambda : eig.value().eigenvalues) sum += lambda;
  EXPECT_NEAR(sum, Trace(a), 1e-8);
}

TEST(EigenTest, HandlesNegativeEigenvalues) {
  Matrix a = Matrix::Diagonal({-2.0, 5.0, -1.0});
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig.value().eigenvalues[0], 5.0, 1e-12);
  EXPECT_NEAR(eig.value().eigenvalues[1], -1.0, 1e-12);
  EXPECT_NEAR(eig.value().eigenvalues[2], -2.0, 1e-12);
}

TEST(EigenTest, OneByOne) {
  Matrix a{{4.0}};
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_DOUBLE_EQ(eig.value().eigenvalues[0], 4.0);
  EXPECT_DOUBLE_EQ(eig.value().eigenvectors(0, 0), 1.0);
}

TEST(EigenTest, ZeroMatrix) {
  Matrix a(4, 4);
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  for (double lambda : eig.value().eigenvalues) EXPECT_EQ(lambda, 0.0);
  EXPECT_TRUE(HasOrthonormalColumns(eig.value().eigenvectors));
}

TEST(EigenTest, RejectsNonSquare) {
  Matrix a(2, 3);
  auto eig = SymmetricEigen(a);
  EXPECT_FALSE(eig.ok());
  EXPECT_EQ(eig.status().code(), StatusCode::kInvalidArgument);
}

TEST(EigenTest, RejectsAsymmetric) {
  Matrix a{{1, 2}, {3, 4}};
  auto eig = SymmetricEigen(a);
  EXPECT_FALSE(eig.ok());
  EXPECT_EQ(eig.status().code(), StatusCode::kInvalidArgument);
}

TEST(EigenTest, RecoversPlantedSpectrum) {
  // Build A = QΛQᵀ with a known spectrum and check it is recovered —
  // exactly the §7.1 data-generation path run in reverse.
  stats::Rng rng(23);
  const Vector planted{50.0, 50.0, 10.0, 1.0, 0.5};
  Matrix q = stats::RandomOrthogonalMatrix(5, &rng);
  Matrix a = ComposeFromEigen(planted, q);
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  for (size_t i = 0; i < planted.size(); ++i) {
    EXPECT_NEAR(eig.value().eigenvalues[i], planted[i], 1e-8);
  }
}

TEST(EigenTest, ComposeWithReducedBasis) {
  // ComposeFromEigen with p < m columns builds the rank-p approximation.
  stats::Rng rng(29);
  Matrix q = stats::RandomOrthogonalMatrix(4, &rng);
  const Vector top2{9.0, 4.0};
  Matrix partial = ComposeFromEigen(top2, q.LeftColumns(2));
  EXPECT_EQ(partial.rows(), 4u);
  auto eig = SymmetricEigen(partial);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig.value().eigenvalues[0], 9.0, 1e-8);
  EXPECT_NEAR(eig.value().eigenvalues[1], 4.0, 1e-8);
  EXPECT_NEAR(eig.value().eigenvalues[2], 0.0, 1e-8);
  EXPECT_NEAR(eig.value().eigenvalues[3], 0.0, 1e-8);
}

class EigenSizeSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(EigenSizeSweepTest, RandomSpdRoundTrip) {
  const size_t m = GetParam();
  stats::Rng rng(1000 + m);
  Matrix g = rng.GaussianMatrix(m, m);
  Matrix a = Symmetrize(g * g.Transpose());
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok()) << "m=" << m;
  // Descending order.
  for (size_t i = 0; i + 1 < m; ++i) {
    EXPECT_GE(eig.value().eigenvalues[i], eig.value().eigenvalues[i + 1]);
  }
  // SPD input: all eigenvalues >= 0 (tolerance for rounding).
  EXPECT_GE(eig.value().eigenvalues.back(), -1e-8);
  // Round trip.
  Matrix rebuilt =
      ComposeFromEigen(eig.value().eigenvalues, eig.value().eigenvectors);
  EXPECT_LT(MaxAbsDifference(a, rebuilt), 1e-7 * (1.0 + FrobeniusNorm(a)));
  EXPECT_TRUE(HasOrthonormalColumns(eig.value().eigenvectors, 1e-8));
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenSizeSweepTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 100));

}  // namespace
}  // namespace linalg
}  // namespace randrecon
