#include "linalg/orthogonal.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/matrix_util.h"
#include "linalg/vector_ops.h"
#include "stats/rng.h"

namespace randrecon {
namespace linalg {
namespace {

TEST(GramSchmidtTest, OrthonormalizesRandomSquare) {
  stats::Rng rng(1);
  Matrix g = rng.GaussianMatrix(10, 10);
  auto q = GramSchmidtOrthonormalize(g);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(HasOrthonormalColumns(q.value(), 1e-9));
}

TEST(GramSchmidtTest, PreservesColumnSpan) {
  // The first orthonormal column must be parallel to the first input
  // column.
  Matrix a{{2, 1}, {0, 1}};
  auto q = GramSchmidtOrthonormalize(a);
  ASSERT_TRUE(q.ok());
  EXPECT_NEAR(std::fabs(q.value()(0, 0)), 1.0, 1e-12);
  EXPECT_NEAR(q.value()(1, 0), 0.0, 1e-12);
}

TEST(GramSchmidtTest, TallMatrixOk) {
  stats::Rng rng(2);
  Matrix g = rng.GaussianMatrix(8, 3);
  auto q = GramSchmidtOrthonormalize(g);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().rows(), 8u);
  EXPECT_EQ(q.value().cols(), 3u);
  EXPECT_TRUE(HasOrthonormalColumns(q.value(), 1e-9));
}

TEST(GramSchmidtTest, RejectsWideMatrix) {
  auto q = GramSchmidtOrthonormalize(Matrix(2, 5));
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST(GramSchmidtTest, RejectsRankDeficient) {
  Matrix a{{1, 2}, {1, 2}};  // Columns are parallel.
  auto q = GramSchmidtOrthonormalize(a);
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kNumericalError);
}

TEST(GramSchmidtTest, IdentityIsFixedPoint) {
  auto q = GramSchmidtOrthonormalize(Matrix::Identity(4));
  ASSERT_TRUE(q.ok());
  EXPECT_LT(MaxAbsDifference(q.value(), Matrix::Identity(4)), 1e-12);
}

TEST(ProjectOntoColumnsTest, FullBasisIsIdentity) {
  stats::Rng rng(3);
  Matrix g = rng.GaussianMatrix(6, 6);
  Matrix q = GramSchmidtOrthonormalize(g).value();
  Vector v = rng.GaussianVector(6);
  Vector projected = ProjectOntoColumns(q, 6, v);
  for (size_t i = 0; i < 6; ++i) EXPECT_NEAR(projected[i], v[i], 1e-9);
}

TEST(ProjectOntoColumnsTest, PartialProjectionIsIdempotent) {
  stats::Rng rng(4);
  Matrix g = rng.GaussianMatrix(6, 6);
  Matrix q = GramSchmidtOrthonormalize(g).value();
  Vector v = rng.GaussianVector(6);
  Vector once = ProjectOntoColumns(q, 3, v);
  Vector twice = ProjectOntoColumns(q, 3, once);
  for (size_t i = 0; i < 6; ++i) EXPECT_NEAR(once[i], twice[i], 1e-10);
}

TEST(ProjectOntoColumnsTest, ProjectionShrinksNorm) {
  stats::Rng rng(5);
  Matrix g = rng.GaussianMatrix(8, 8);
  Matrix q = GramSchmidtOrthonormalize(g).value();
  Vector v = rng.GaussianVector(8);
  EXPECT_LE(Norm(ProjectOntoColumns(q, 3, v)), Norm(v) + 1e-12);
}

TEST(ProjectOntoColumnsTest, ResidualOrthogonalToSubspace) {
  stats::Rng rng(6);
  Matrix g = rng.GaussianMatrix(5, 5);
  Matrix q = GramSchmidtOrthonormalize(g).value();
  Vector v = rng.GaussianVector(5);
  Vector projected = ProjectOntoColumns(q, 2, v);
  Vector residual = Subtract(v, projected);
  for (size_t k = 0; k < 2; ++k) {
    EXPECT_NEAR(Dot(residual, q.Col(k)), 0.0, 1e-10);
  }
}

}  // namespace
}  // namespace linalg
}  // namespace randrecon
