// Equivalence tests for the blocked kernel layer: every kernel must agree
// with the plain reference loops it replaced to <= 1e-10 max abs
// difference, across shapes that exercise the blocked path, the small-size
// fallback, and the ragged edge tiles of both.

#include "linalg/kernels.h"

#include <cstdlib>

#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "linalg/matrix_util.h"
#include "stats/rng.h"

namespace randrecon {
namespace linalg {
namespace {

constexpr double kTol = 1e-10;

Matrix ReferenceMatMul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      double sum = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) sum += a(i, k) * b(k, j);
      out(i, j) = sum;
    }
  }
  return out;
}

Matrix ReferenceGram(const Matrix& a, double denom) {
  Matrix out(a.cols(), a.cols());
  for (size_t p = 0; p < a.cols(); ++p) {
    for (size_t q = 0; q < a.cols(); ++q) {
      double sum = 0.0;
      for (size_t i = 0; i < a.rows(); ++i) sum += a(i, p) * a(i, q);
      out(p, q) = sum / denom;
    }
  }
  return out;
}

class KernelsEquivalenceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(KernelsEquivalenceTest, BlockedMatMulMatchesReference) {
  const size_t m = GetParam();
  stats::Rng rng(100 + m);
  const Matrix a = rng.GaussianMatrix(m, m);
  const Matrix b = rng.GaussianMatrix(m, m);
  EXPECT_LE(MaxAbsDifference(kernels::MatMul(a, b), ReferenceMatMul(a, b)),
            kTol);
}

TEST_P(KernelsEquivalenceTest, GramMatchesReference) {
  const size_t m = GetParam();
  stats::Rng rng(200 + m);
  const Matrix data = rng.GaussianMatrix(2 * m + 3, m);
  EXPECT_LE(MaxAbsDifference(kernels::GramMatrix(data, 7.0),
                             ReferenceGram(data, 7.0)),
            kTol);
}

TEST_P(KernelsEquivalenceTest, TransposeRoundTrip) {
  const size_t m = GetParam();
  stats::Rng rng(300 + m);
  const Matrix a = rng.GaussianMatrix(m, m + 5);
  const Matrix t = a.Transpose();
  ASSERT_EQ(t.rows(), a.cols());
  ASSERT_EQ(t.cols(), a.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      ASSERT_EQ(t(j, i), a(i, j));
    }
  }
}

// Sizes straddle the blocked-path cutoff (~110^3 multiply-adds) and hit
// ragged micro-tile edges (non-multiples of the register tile).
INSTANTIATE_TEST_SUITE_P(Sizes, KernelsEquivalenceTest,
                         ::testing::Values(1, 2, 7, 17, 33, 65, 96, 130, 257));

TEST(KernelsTest, RectangularMatMulMatchesReference) {
  stats::Rng rng(42);
  const Matrix a = rng.GaussianMatrix(37, 211);
  const Matrix b = rng.GaussianMatrix(211, 53);
  EXPECT_LE(MaxAbsDifference(kernels::MatMul(a, b), ReferenceMatMul(a, b)),
            kTol);
}

TEST(KernelsTest, LargeMatMulTakesBlockedPath) {
  // 160^3 > the blocked cutoff, so this exercises packing + micro-kernel.
  stats::Rng rng(43);
  const Matrix a = rng.GaussianMatrix(160, 160);
  const Matrix b = rng.GaussianMatrix(160, 160);
  EXPECT_LE(MaxAbsDifference(kernels::MatMul(a, b), ReferenceMatMul(a, b)),
            kTol);
}

TEST(KernelsTest, MatMulTransposedMatchesReference) {
  stats::Rng rng(44);
  const Matrix a = rng.GaussianMatrix(45, 160);
  const Matrix b = rng.GaussianMatrix(31, 160);
  EXPECT_LE(MaxAbsDifference(kernels::MatMulTransposed(a, b),
                             ReferenceMatMul(a, b.Transpose())),
            kTol);
}

TEST(KernelsTest, MatMulTransposedLargeMatchesReference) {
  stats::Rng rng(45);
  const Matrix a = rng.GaussianMatrix(180, 150);
  const Matrix b = rng.GaussianMatrix(170, 150);
  EXPECT_LE(MaxAbsDifference(kernels::MatMulTransposed(a, b),
                             ReferenceMatMul(a, b.Transpose())),
            kTol);
}

TEST(KernelsTest, ProjectOntoBasisMatchesComposition) {
  stats::Rng rng(46);
  const Matrix x = rng.GaussianMatrix(300, 40);
  const Matrix basis = rng.GaussianMatrix(40, 12);
  const Matrix expected =
      ReferenceMatMul(ReferenceMatMul(x, basis), basis.Transpose());
  EXPECT_LE(MaxAbsDifference(kernels::ProjectOntoBasis(x, basis), expected),
            kTol);
}

TEST(KernelsTest, GramIsExactlySymmetric) {
  stats::Rng rng(47);
  const Matrix data = rng.GaussianMatrix(500, 130);  // Blocked path.
  const Matrix gram = kernels::GramMatrix(data, 500.0);
  for (size_t i = 0; i < gram.rows(); ++i) {
    for (size_t j = i + 1; j < gram.cols(); ++j) {
      ASSERT_EQ(gram(i, j), gram(j, i)) << "at (" << i << "," << j << ")";
    }
  }
}

TEST(KernelsTest, TallSkinnyGramChunkedMatchesReference) {
  // n spans several kGramChunkRows record chunks with a ragged tail; m is
  // small enough that the record (k) dimension carries all parallelism.
  stats::Rng rng(49);
  const size_t n = 3 * kernels::kGramChunkRows + 513;
  const Matrix data = rng.GaussianMatrix(n, 24);
  EXPECT_LE(MaxAbsDifference(kernels::GramMatrix(data, 100.0),
                             ReferenceGram(data, 100.0)),
            kTol);
}

TEST(KernelsTest, GramChunkBoundaryExactSizes) {
  // Straddle the single-chunk fast path and the chunked merge.
  stats::Rng rng(50);
  for (size_t n : {kernels::kGramChunkRows, kernels::kGramChunkRows + 1}) {
    const Matrix data = rng.GaussianMatrix(n, 17);
    EXPECT_LE(MaxAbsDifference(kernels::GramMatrix(data, 3.0),
                               ReferenceGram(data, 3.0)),
              kTol)
        << "n=" << n;
  }
}

TEST(KernelsTest, TallSkinnyGramIsBitwiseThreadCountInvariant) {
  stats::Rng rng(51);
  const size_t n = 2 * kernels::kGramChunkRows + 777;
  const size_t m = 24;
  const Matrix data = rng.GaussianMatrix(n, m);
  Matrix serial(m, m);
  Matrix pooled(m, m);
  ParallelOptions one_thread;
  one_thread.num_threads = 1;
  ParallelOptions four_threads;
  four_threads.num_threads = 4;
  kernels::GramAtA(data.data(), n, m, serial.data(), one_thread);
  kernels::GramAtA(data.data(), n, m, pooled.data(), four_threads);
  EXPECT_EQ(MaxAbsDifference(serial, pooled), 0.0);
}

TEST(KernelsTest, TallSkinnyGramIsExactlySymmetric) {
  stats::Rng rng(52);
  const size_t n = kernels::kGramChunkRows + 999;
  const Matrix data = rng.GaussianMatrix(n, 12);
  const Matrix gram = kernels::GramMatrix(data, static_cast<double>(n));
  for (size_t i = 0; i < gram.rows(); ++i) {
    for (size_t j = i + 1; j < gram.cols(); ++j) {
      ASSERT_EQ(gram(i, j), gram(j, i)) << "at (" << i << "," << j << ")";
    }
  }
}

TEST(KernelsTest, OperatorStarRoutesThroughKernels) {
  stats::Rng rng(48);
  const Matrix a = rng.GaussianMatrix(140, 140);
  const Matrix b = rng.GaussianMatrix(140, 140);
  EXPECT_EQ(MaxAbsDifference(a * b, kernels::MatMul(a, b)), 0.0);
}

TEST(KernelsTest, EmptyAndDegenerateShapes) {
  const Matrix empty;
  EXPECT_TRUE(kernels::MatMul(empty, empty).empty());
  const Matrix row = Matrix(1, 4, 2.0);
  const Matrix col = Matrix(4, 1, 3.0);
  const Matrix prod = kernels::MatMul(row, col);
  ASSERT_EQ(prod.rows(), 1u);
  ASSERT_EQ(prod.cols(), 1u);
  EXPECT_DOUBLE_EQ(prod(0, 0), 24.0);
}

}  // namespace
}  // namespace linalg
}  // namespace randrecon
