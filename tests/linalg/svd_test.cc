#include "linalg/svd.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/eigen.h"
#include "linalg/matrix_util.h"
#include "linalg/orthogonal.h"
#include "stats/rng.h"

namespace randrecon {
namespace linalg {
namespace {

TEST(SvdTest, DiagonalMatrix) {
  Matrix a = Matrix::Diagonal({3.0, 7.0, 1.0});
  auto svd = ThinSvd(a);
  ASSERT_TRUE(svd.ok()) << svd.status().ToString();
  EXPECT_NEAR(svd.value().singular_values[0], 7.0, 1e-10);
  EXPECT_NEAR(svd.value().singular_values[1], 3.0, 1e-10);
  EXPECT_NEAR(svd.value().singular_values[2], 1.0, 1e-10);
}

TEST(SvdTest, RoundTripRandomTall) {
  stats::Rng rng(201);
  Matrix a = rng.GaussianMatrix(20, 6);
  auto svd = ThinSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_LT(MaxAbsDifference(ComposeFromSvd(svd.value()), a), 1e-9);
}

TEST(SvdTest, FactorsAreOrthonormal) {
  stats::Rng rng(202);
  Matrix a = rng.GaussianMatrix(15, 5);
  auto svd = ThinSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_TRUE(HasOrthonormalColumns(svd.value().u, 1e-9));
  EXPECT_TRUE(HasOrthonormalColumns(svd.value().v, 1e-9));
}

TEST(SvdTest, SingularValuesDescendingNonNegative) {
  stats::Rng rng(203);
  Matrix a = rng.GaussianMatrix(12, 8);
  auto svd = ThinSvd(a);
  ASSERT_TRUE(svd.ok());
  const Vector& s = svd.value().singular_values;
  for (size_t i = 0; i + 1 < s.size(); ++i) EXPECT_GE(s[i], s[i + 1]);
  EXPECT_GE(s.back(), 0.0);
}

TEST(SvdTest, MatchesEigenOfGramMatrix) {
  // σᵢ² must equal the eigenvalues of AᵀA.
  stats::Rng rng(204);
  Matrix a = rng.GaussianMatrix(30, 6);
  auto svd = ThinSvd(a);
  ASSERT_TRUE(svd.ok());
  auto eig = SymmetricEigen(Symmetrize(a.Transpose() * a));
  ASSERT_TRUE(eig.ok());
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(svd.value().singular_values[i] * svd.value().singular_values[i],
                eig.value().eigenvalues[i], 1e-7);
  }
}

TEST(SvdTest, RankDeficientMatrix) {
  // Two identical columns: one singular value must be ~0 and the
  // round-trip must still hold.
  Matrix a{{1, 1}, {2, 2}, {3, 3}};
  auto svd = ThinSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_NEAR(svd.value().singular_values[1], 0.0, 1e-10);
  EXPECT_LT(MaxAbsDifference(ComposeFromSvd(svd.value()), a), 1e-9);
}

TEST(SvdTest, ZeroMatrix) {
  Matrix a(5, 3);
  auto svd = ThinSvd(a);
  ASSERT_TRUE(svd.ok());
  for (double s : svd.value().singular_values) EXPECT_EQ(s, 0.0);
  EXPECT_LT(MaxAbsDifference(ComposeFromSvd(svd.value()), a), 1e-12);
}

TEST(SvdTest, RejectsWideMatrix) {
  auto svd = ThinSvd(Matrix(2, 5));
  EXPECT_FALSE(svd.ok());
  EXPECT_EQ(svd.status().code(), StatusCode::kInvalidArgument);
}

TEST(SvdTest, SquareOrthogonalInputHasUnitSingularValues) {
  stats::Rng rng(205);
  Matrix g = rng.GaussianMatrix(6, 6);
  Matrix q = GramSchmidtOrthonormalize(g).value();
  auto svd = ThinSvd(q);
  ASSERT_TRUE(svd.ok());
  for (double s : svd.value().singular_values) EXPECT_NEAR(s, 1.0, 1e-9);
}

class SvdShapeSweep : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(SvdShapeSweep, RoundTripAndOrthogonality) {
  const auto [n, m] = GetParam();
  stats::Rng rng(206 + n * 31 + m);
  Matrix a = rng.GaussianMatrix(n, m);
  auto svd = ThinSvd(a);
  ASSERT_TRUE(svd.ok()) << n << "x" << m;
  EXPECT_LT(MaxAbsDifference(ComposeFromSvd(svd.value()), a),
            1e-8 * (1.0 + FrobeniusNorm(a)));
  EXPECT_TRUE(HasOrthonormalColumns(svd.value().v, 1e-8));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdShapeSweep,
    ::testing::Values(std::make_pair<size_t, size_t>(1, 1),
                      std::make_pair<size_t, size_t>(5, 5),
                      std::make_pair<size_t, size_t>(10, 3),
                      std::make_pair<size_t, size_t>(50, 20),
                      std::make_pair<size_t, size_t>(200, 50)));

}  // namespace
}  // namespace linalg
}  // namespace randrecon
