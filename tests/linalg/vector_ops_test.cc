#include "linalg/vector_ops.h"

#include <cmath>

#include <gtest/gtest.h>

namespace randrecon {
namespace linalg {
namespace {

TEST(VectorOpsTest, Dot) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(Dot({}, {}), 0.0);
}

TEST(VectorOpsDeathTest, DotSizeMismatchAborts) {
  EXPECT_DEATH({ Dot({1.0}, {1.0, 2.0}); }, "RR_CHECK");
}

TEST(VectorOpsTest, Norm) {
  EXPECT_DOUBLE_EQ(Norm({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Norm({0, 0, 0}), 0.0);
}

TEST(VectorOpsTest, AddSubtract) {
  EXPECT_EQ(Add({1, 2}, {3, 4}), (Vector{4, 6}));
  EXPECT_EQ(Subtract({3, 4}, {1, 2}), (Vector{2, 2}));
}

TEST(VectorOpsTest, Scale) {
  EXPECT_EQ(Scale({1, -2}, 3.0), (Vector{3, -6}));
}

TEST(VectorOpsTest, AddScaled) {
  Vector a{1, 1};
  AddScaled(&a, 2.0, {3, 4});
  EXPECT_EQ(a, (Vector{7, 9}));
}

TEST(VectorOpsTest, Outer) {
  Matrix o = Outer({1, 2}, {3, 4, 5});
  EXPECT_EQ(o.rows(), 2u);
  EXPECT_EQ(o.cols(), 3u);
  EXPECT_EQ(o(1, 2), 10.0);
  EXPECT_EQ(o(0, 0), 3.0);
}

TEST(VectorOpsTest, MeanVarianceSum) {
  Vector v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_DOUBLE_EQ(Sum(v), 10.0);
  EXPECT_DOUBLE_EQ(Variance(v), 1.25);  // Population convention.
}

TEST(VectorOpsTest, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Sum({}), 0.0);
}

TEST(VectorOpsTest, VarianceOfConstantIsZero) {
  EXPECT_DOUBLE_EQ(Variance({5, 5, 5}), 0.0);
}

TEST(VectorOpsTest, MaxAbs) {
  EXPECT_DOUBLE_EQ(MaxAbs({1, -7, 3}), 7.0);
  EXPECT_DOUBLE_EQ(MaxAbs({}), 0.0);
}

}  // namespace
}  // namespace linalg
}  // namespace randrecon
