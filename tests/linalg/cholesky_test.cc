#include "linalg/cholesky.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/matrix_util.h"
#include "stats/rng.h"

namespace randrecon {
namespace linalg {
namespace {

Matrix RandomSpd(size_t m, uint64_t seed) {
  stats::Rng rng(seed);
  Matrix g = rng.GaussianMatrix(m, m);
  Matrix a = Symmetrize(g * g.Transpose());
  for (size_t i = 0; i < m; ++i) a(i, i) += 0.5;  // Safely positive definite.
  return a;
}

TEST(CholeskyTest, FactorsKnownMatrix) {
  // A = [[4,2],[2,3]]: L = [[2,0],[1,sqrt(2)]].
  Matrix a{{4, 2}, {2, 3}};
  auto chol = CholeskyFactorization::Compute(a);
  ASSERT_TRUE(chol.ok());
  const Matrix& l = chol.value().lower();
  EXPECT_NEAR(l(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(l(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(l(1, 1), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(l(0, 1), 0.0);
}

TEST(CholeskyTest, LowerTimesTransposeRebuildsInput) {
  Matrix a = RandomSpd(10, 3);
  auto chol = CholeskyFactorization::Compute(a);
  ASSERT_TRUE(chol.ok());
  const Matrix& l = chol.value().lower();
  EXPECT_LT(MaxAbsDifference(l * l.Transpose(), a), 1e-9);
}

TEST(CholeskyTest, SolveMatchesDirectCheck) {
  Matrix a = RandomSpd(8, 5);
  stats::Rng rng(6);
  Vector b = rng.GaussianVector(8);
  auto chol = CholeskyFactorization::Compute(a);
  ASSERT_TRUE(chol.ok());
  Vector x = chol.value().Solve(b);
  Vector ax = a * x;
  for (size_t i = 0; i < 8; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
}

TEST(CholeskyTest, MatrixSolve) {
  Matrix a = RandomSpd(6, 7);
  stats::Rng rng(8);
  Matrix b = rng.GaussianMatrix(6, 3);
  auto chol = CholeskyFactorization::Compute(a);
  ASSERT_TRUE(chol.ok());
  Matrix x = chol.value().Solve(b);
  EXPECT_LT(MaxAbsDifference(a * x, b), 1e-8);
}

TEST(CholeskyTest, InverseTimesInputIsIdentity) {
  Matrix a = RandomSpd(7, 9);
  auto chol = CholeskyFactorization::Compute(a);
  ASSERT_TRUE(chol.ok());
  Matrix inv = chol.value().Inverse();
  EXPECT_LT(MaxAbsDifference(a * inv, Matrix::Identity(7)), 1e-8);
}

TEST(CholeskyTest, LogDeterminant) {
  Matrix a = Matrix::Diagonal({2.0, 3.0, 4.0});
  auto chol = CholeskyFactorization::Compute(a);
  ASSERT_TRUE(chol.ok());
  EXPECT_NEAR(chol.value().LogDeterminant(), std::log(24.0), 1e-12);
}

TEST(CholeskyTest, RejectsNonSquare) {
  auto chol = CholeskyFactorization::Compute(Matrix(2, 3));
  EXPECT_FALSE(chol.ok());
  EXPECT_EQ(chol.status().code(), StatusCode::kInvalidArgument);
}

TEST(CholeskyTest, RejectsAsymmetric) {
  auto chol = CholeskyFactorization::Compute(Matrix{{1, 2}, {0, 1}});
  EXPECT_FALSE(chol.ok());
  EXPECT_EQ(chol.status().code(), StatusCode::kInvalidArgument);
}

TEST(CholeskyTest, RejectsIndefinite) {
  auto chol = CholeskyFactorization::Compute(Matrix::Diagonal({1.0, -1.0}));
  EXPECT_FALSE(chol.ok());
  EXPECT_EQ(chol.status().code(), StatusCode::kNumericalError);
}

TEST(CholeskyTest, RejectsSingular) {
  // Rank-1 matrix: [[1,1],[1,1]].
  auto chol = CholeskyFactorization::Compute(Matrix{{1, 1}, {1, 1}});
  EXPECT_FALSE(chol.ok());
}

TEST(CholeskyTest, JitterRecoversSingular) {
  auto chol =
      CholeskyFactorization::ComputeWithJitter(Matrix{{1, 1}, {1, 1}});
  ASSERT_TRUE(chol.ok()) << chol.status().ToString();
  // The jittered factor still approximately reproduces the matrix.
  const Matrix& l = chol.value().lower();
  EXPECT_LT(MaxAbsDifference(l * l.Transpose(), Matrix{{1, 1}, {1, 1}}), 1e-3);
}

TEST(CholeskyTest, JitterGivesUpOnStronglyIndefinite) {
  auto chol = CholeskyFactorization::ComputeWithJitter(
      Matrix::Diagonal({1.0, -100.0}), 1e-10, 3);
  EXPECT_FALSE(chol.ok());
  EXPECT_EQ(chol.status().code(), StatusCode::kNumericalError);
}

class CholeskySizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(CholeskySizeSweep, SolveResidualIsSmall) {
  const size_t m = GetParam();
  Matrix a = RandomSpd(m, 100 + m);
  stats::Rng rng(200 + m);
  Vector b = rng.GaussianVector(m);
  auto chol = CholeskyFactorization::Compute(a);
  ASSERT_TRUE(chol.ok());
  Vector x = chol.value().Solve(b);
  Vector ax = a * x;
  double resid = 0.0;
  for (size_t i = 0; i < m; ++i) resid = std::max(resid, std::fabs(ax[i] - b[i]));
  EXPECT_LT(resid, 1e-7 * (1.0 + FrobeniusNorm(a)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizeSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 100));

}  // namespace
}  // namespace linalg
}  // namespace randrecon
