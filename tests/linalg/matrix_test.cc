#include "linalg/matrix.h"

#include <gtest/gtest.h>

namespace randrecon {
namespace linalg {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 3; ++j) EXPECT_EQ(m(i, j), 0.0);
  }
}

TEST(MatrixTest, FillConstructor) {
  Matrix m(2, 2, 7.5);
  EXPECT_EQ(m(0, 0), 7.5);
  EXPECT_EQ(m(1, 1), 7.5);
}

TEST(MatrixTest, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
}

TEST(MatrixDeathTest, RaggedInitializerListAborts) {
  auto make_ragged = [] { Matrix m{{1.0, 2.0}, {3.0}}; };
  EXPECT_DEATH(make_ragged(), "ragged");
}

TEST(MatrixTest, FromRowMajor) {
  Matrix m = Matrix::FromRowMajor(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m(0, 2), 3.0);
  EXPECT_EQ(m(1, 0), 4.0);
}

TEST(MatrixDeathTest, FromRowMajorSizeMismatchAborts) {
  EXPECT_DEATH({ Matrix::FromRowMajor(2, 2, {1, 2, 3}); }, "RR_CHECK");
}

TEST(MatrixTest, IdentityAndDiagonal) {
  Matrix id = Matrix::Identity(3);
  EXPECT_EQ(id(0, 0), 1.0);
  EXPECT_EQ(id(0, 1), 0.0);
  Matrix d = Matrix::Diagonal({2.0, 5.0});
  EXPECT_EQ(d(0, 0), 2.0);
  EXPECT_EQ(d(1, 1), 5.0);
  EXPECT_EQ(d(1, 0), 0.0);
}

TEST(MatrixDeathTest, OutOfBoundsAccessAborts) {
  Matrix m(2, 2);
  EXPECT_DEATH({ (void)m(2, 0); }, "out of");
  EXPECT_DEATH({ (void)m(0, 2); }, "out of");
}

TEST(MatrixTest, RowAndColExtraction) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.Row(1), (Vector{4, 5, 6}));
  EXPECT_EQ(m.Col(2), (Vector{3, 6}));
}

TEST(MatrixTest, SetRowAndSetCol) {
  Matrix m(2, 2);
  m.SetRow(0, {1, 2});
  m.SetCol(1, {9, 8});
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(0, 1), 9.0);
  EXPECT_EQ(m(1, 1), 8.0);
}

TEST(MatrixTest, Transpose) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(0, 1), 4.0);
  EXPECT_EQ(t(2, 0), 3.0);
}

TEST(MatrixTest, TransposeTwiceIsIdentityOp) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_TRUE(m.Transpose().Transpose() == m);
}

TEST(MatrixTest, LeftColumns) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  Matrix left = m.LeftColumns(2);
  EXPECT_EQ(left.cols(), 2u);
  EXPECT_EQ(left(1, 1), 5.0);
}

TEST(MatrixTest, Block) {
  Matrix m{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  Matrix b = m.Block(1, 3, 0, 2);
  EXPECT_EQ(b.rows(), 2u);
  EXPECT_EQ(b.cols(), 2u);
  EXPECT_EQ(b(0, 0), 4.0);
  EXPECT_EQ(b(1, 1), 8.0);
}

TEST(MatrixTest, AdditionSubtraction) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{10, 20}, {30, 40}};
  Matrix sum = a + b;
  EXPECT_EQ(sum(1, 1), 44.0);
  Matrix diff = b - a;
  EXPECT_EQ(diff(0, 0), 9.0);
}

TEST(MatrixDeathTest, ShapeMismatchAdditionAborts) {
  Matrix a(2, 2);
  Matrix b(2, 3);
  EXPECT_DEATH({ a += b; }, "shape mismatch");
}

TEST(MatrixTest, ScalarMultiplication) {
  Matrix a{{1, 2}, {3, 4}};
  EXPECT_EQ((a * 2.0)(1, 0), 6.0);
  EXPECT_EQ((0.5 * a)(0, 1), 1.0);
}

TEST(MatrixTest, MatrixProduct) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c = a * b;
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, NonSquareProductShapes) {
  Matrix a(2, 3, 1.0);
  Matrix b(3, 4, 1.0);
  Matrix c = a * b;
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 4u);
  EXPECT_EQ(c(0, 0), 3.0);
}

TEST(MatrixTest, IdentityIsMultiplicativeNeutral) {
  Matrix a{{1, 2}, {3, 4}};
  EXPECT_TRUE(a * Matrix::Identity(2) == a);
  EXPECT_TRUE(Matrix::Identity(2) * a == a);
}

TEST(MatrixTest, MatrixVectorProduct) {
  Matrix a{{1, 2}, {3, 4}};
  Vector x{1, 1};
  Vector y = a * x;
  EXPECT_EQ(y, (Vector{3, 7}));
}

TEST(MatrixTest, VectorMatrixProduct) {
  Matrix a{{1, 2}, {3, 4}};
  Vector x{1, 1};
  EXPECT_EQ(MultiplyVectorMatrix(x, a), (Vector{4, 6}));
}

TEST(MatrixTest, ToStringRendersRows) {
  Matrix m{{1.5, 2.0}};
  const std::string s = m.ToString(1);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("2.0"), std::string::npos);
}

}  // namespace
}  // namespace linalg
}  // namespace randrecon
