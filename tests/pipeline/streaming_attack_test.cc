// End-to-end fidelity of the out-of-core pipeline: streaming SF and
// PCA-DR must reproduce the in-memory reconstructors to <= 1e-10 per
// entry (the covariance underneath is bitwise identical; only the
// chunked projection may differ in the last bits).

#include "pipeline/streaming_attack.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/trace.h"
#include "core/pca_dr.h"
#include "core/spectral_filtering.h"
#include "data/csv.h"
#include "data/synthetic.h"
#include "linalg/matrix_util.h"
#include "perturb/schemes.h"
#include "stats/moments.h"
#include "stats/rng.h"

namespace randrecon {
namespace pipeline {
namespace {

constexpr double kTol = 1e-10;

using linalg::Matrix;

/// A correlated dataset + its disguised version, shared by the tests.
struct Fixture {
  Matrix original;
  Matrix disguised;
  perturb::NoiseModel noise = perturb::NoiseModel::IndependentGaussian(1, 1.0);
};

Fixture MakeFixture(size_t n = 600, size_t m = 12, double sigma = 0.4) {
  stats::Rng rng(29);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = data::TwoLevelSpectrum(m, 3, 8.0, 0.1);
  auto generated = data::GenerateSpectrumDataset(spec, n, &rng);
  Fixture fixture;
  fixture.original = generated.value().dataset.records();
  const auto scheme =
      perturb::IndependentNoiseScheme::Gaussian(m, sigma);
  fixture.disguised =
      fixture.original + scheme.GenerateNoise(n, &rng);
  fixture.noise = scheme.noise_model();
  return fixture;
}

Matrix RunStreaming(const Fixture& fixture, StreamingAttack attack,
                    size_t chunk_rows, StreamingAttackReport* report_out,
                    RecordSource* reference = nullptr) {
  StreamingAttackOptions options;
  options.attack = attack;
  options.chunk_rows = chunk_rows;
  MatrixRecordSource source(&fixture.disguised);
  CollectChunkSink sink(fixture.disguised.cols());
  auto report = StreamingAttackPipeline(options).Run(&source, fixture.noise,
                                                     &sink, reference);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (report_out != nullptr && report.ok()) {
    *report_out = report.value();
  }
  return sink.ToMatrix();
}

TEST(StreamingAttackTest, PcaDrMatchesInMemoryReconstructor) {
  const Fixture fixture = MakeFixture();
  StreamingAttackReport report;
  const Matrix streamed =
      RunStreaming(fixture, StreamingAttack::kPcaDr, 37, &report);

  core::PcaDiagnostics diagnostics;
  const auto in_memory = core::PcaReconstructor().ReconstructWithDiagnostics(
      fixture.disguised, fixture.noise, &diagnostics);
  ASSERT_TRUE(in_memory.ok()) << in_memory.status().ToString();

  ASSERT_EQ(streamed.rows(), fixture.disguised.rows());
  EXPECT_LE(linalg::MaxAbsDifference(streamed, in_memory.value()), kTol);
  // Identical covariance bits => identical component selection.
  EXPECT_EQ(report.num_components, diagnostics.num_components);
  EXPECT_EQ(report.num_records, fixture.disguised.rows());
}

TEST(StreamingAttackTest, SpectralFilteringMatchesInMemoryReconstructor) {
  const Fixture fixture = MakeFixture();
  StreamingAttackReport report;
  const Matrix streamed =
      RunStreaming(fixture, StreamingAttack::kSpectralFiltering, 64, &report);

  const auto in_memory = core::SpectralFilteringReconstructor().Reconstruct(
      fixture.disguised, fixture.noise);
  ASSERT_TRUE(in_memory.ok()) << in_memory.status().ToString();
  EXPECT_LE(linalg::MaxAbsDifference(streamed, in_memory.value()), kTol);
}

TEST(StreamingAttackTest, ReconstructionIsChunkSizeInsensitive) {
  const Fixture fixture = MakeFixture(500, 8);
  const Matrix tiny_chunks =
      RunStreaming(fixture, StreamingAttack::kPcaDr, 7, nullptr);
  const Matrix one_chunk =
      RunStreaming(fixture, StreamingAttack::kPcaDr, 500, nullptr);
  EXPECT_LE(linalg::MaxAbsDifference(tiny_chunks, one_chunk), kTol);
}

TEST(StreamingAttackTest, EstimatedMeanIsBitwiseInMemoryMean) {
  const Fixture fixture = MakeFixture(300, 6);
  StreamingAttackReport report;
  RunStreaming(fixture, StreamingAttack::kPcaDr, 41, &report);
  const linalg::Vector means = stats::ColumnMeans(fixture.disguised);
  ASSERT_EQ(report.mean.size(), means.size());
  for (size_t j = 0; j < means.size(); ++j) {
    EXPECT_EQ(report.mean[j], means[j]) << "mean " << j;
  }
}

TEST(StreamingAttackTest, ReferenceStreamFeedsPrivacyRmse) {
  const Fixture fixture = MakeFixture();
  MatrixRecordSource reference(&fixture.original);
  StreamingAttackReport report;
  const Matrix streamed =
      RunStreaming(fixture, StreamingAttack::kPcaDr, 50, &report, &reference);
  ASSERT_TRUE(report.has_reference);
  const double expected =
      stats::RootMeanSquareError(streamed, fixture.original);
  EXPECT_NEAR(report.rmse_vs_reference, expected, 1e-12);
  // The attack removed noise: closer to the truth than the disguised data.
  EXPECT_LT(report.rmse_vs_reference,
            stats::RootMeanSquareError(fixture.disguised, fixture.original));
  EXPECT_GT(report.rmse_vs_disguised, 0.0);
}

TEST(StreamingAttackTest, CsvStreamEndToEnd) {
  const Fixture fixture = MakeFixture(200, 5);
  const std::string csv = data::ToCsvString(
      data::Dataset(fixture.disguised), /*precision=*/12);
  auto source = CsvRecordSource::FromString(csv);
  ASSERT_TRUE(source.ok());
  CsvRecordSource csv_source = std::move(source).value();

  StreamingAttackOptions options;
  options.chunk_rows = 33;
  CollectChunkSink sink(5);
  const auto report =
      StreamingAttackPipeline(options).Run(&csv_source, fixture.noise, &sink);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Compare against the in-memory attack on the SAME parsed records (CSV
  // round-trip quantizes, so attack the quantized table on both sides).
  const Matrix parsed = data::FromCsvString(csv).value().records();
  const auto in_memory =
      core::PcaReconstructor().Reconstruct(parsed, fixture.noise);
  ASSERT_TRUE(in_memory.ok());
  EXPECT_LE(linalg::MaxAbsDifference(sink.ToMatrix(), in_memory.value()),
            kTol);
}

/// A conforming-but-stingy source: never serves more than `trickle`
/// records per call, regardless of the buffer size offered.
class TrickleSource final : public RecordSource {
 public:
  TrickleSource(const Matrix* records, size_t trickle)
      : records_(records), trickle_(trickle) {}
  size_t num_attributes() const override { return records_->cols(); }
  Status Reset() override {
    next_row_ = 0;
    return Status::OK();
  }
  Result<size_t> NextChunk(Matrix* buffer) override {
    const size_t rows = std::min(
        {buffer->rows(), trickle_, records_->rows() - next_row_});
    for (size_t i = 0; i < rows; ++i) {
      buffer->SetRow(i, records_->Row(next_row_ + i));
    }
    next_row_ += rows;
    return rows;
  }

 private:
  const Matrix* records_;
  size_t trickle_;
  size_t next_row_ = 0;
};

TEST(StreamingAttackTest, PartialChunkReferenceSourceIsDrained) {
  // A reference source that under-fills its buffer is still aligned —
  // the pipeline must gather records, not compare per-call chunk sizes.
  const Fixture fixture = MakeFixture(300, 6);
  TrickleSource trickle_reference(&fixture.original, 13);
  StreamingAttackReport trickle_report;
  RunStreaming(fixture, StreamingAttack::kPcaDr, 50, &trickle_report,
               &trickle_reference);
  MatrixRecordSource full_reference(&fixture.original);
  StreamingAttackReport full_report;
  RunStreaming(fixture, StreamingAttack::kPcaDr, 50, &full_report,
               &full_reference);
  ASSERT_TRUE(trickle_report.has_reference);
  EXPECT_EQ(trickle_report.rmse_vs_reference, full_report.rmse_vs_reference);
}

TEST(StreamingAttackTest, MisalignedReferenceIsAnError) {
  const Fixture fixture = MakeFixture(100, 4);
  const Matrix short_reference =
      fixture.original.Block(0, 50, 0, fixture.original.cols());
  MatrixRecordSource source(&fixture.disguised);
  MatrixRecordSource reference(&short_reference);
  NullChunkSink sink;
  const auto report = StreamingAttackPipeline().Run(&source, fixture.noise,
                                                    &sink, &reference);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(StreamingAttackTest, NoiseWidthMismatchIsAnError) {
  const Fixture fixture = MakeFixture(50, 4);
  MatrixRecordSource source(&fixture.disguised);
  NullChunkSink sink;
  const auto report = StreamingAttackPipeline().Run(
      &source, perturb::NoiseModel::IndependentGaussian(3, 1.0), &sink);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

/// A source whose record count shrinks after the first pass — a live log
/// being truncated between sweeps.
class ShrinkingSource final : public RecordSource {
 public:
  explicit ShrinkingSource(const Matrix* records) : records_(records) {}
  size_t num_attributes() const override { return records_->cols(); }
  Status Reset() override {
    ++passes_;
    next_row_ = 0;
    return Status::OK();
  }
  Result<size_t> NextChunk(Matrix* buffer) override {
    const size_t limit = passes_ <= 1 ? records_->rows()
                                      : records_->rows() - 10;
    const size_t rows = std::min(buffer->rows(), limit - next_row_);
    for (size_t i = 0; i < rows; ++i) {
      buffer->SetRow(i, records_->Row(next_row_ + i));
    }
    next_row_ += rows;
    return rows;
  }

 private:
  const Matrix* records_;
  size_t passes_ = 0;
  size_t next_row_ = 0;
};

TEST(StreamingAttackTest, DriftingSourceFailsTheJobNotTheProcess) {
  const Fixture fixture = MakeFixture(100, 4);
  ShrinkingSource source(&fixture.disguised);
  NullChunkSink sink;
  const auto report =
      StreamingAttackPipeline().Run(&source, fixture.noise, &sink);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(report.status().message().find("sweep"), std::string::npos);
}

TEST(StreamingAttackTest, TooFewRecordsIsAnError) {
  const Matrix one_record(1, 3, 1.0);
  MatrixRecordSource source(&one_record);
  NullChunkSink sink;
  const auto report = StreamingAttackPipeline().Run(
      &source, perturb::NoiseModel::IndependentGaussian(3, 1.0), &sink);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Telemetry: chunk/record counters are exact, and instrumentation never
// perturbs the numbers (common/metrics.h determinism contract).
// ---------------------------------------------------------------------------

uint64_t AttackCounter(const char* name) {
  for (const metrics::CounterSnapshot& c : metrics::Snapshot().counters) {
    if (c.name == name) return c.value;
  }
  ADD_FAILURE() << "no counter named " << name;
  return 0;
}

uint64_t AttackHistogramCount(const char* name) {
  for (const metrics::HistogramSnapshot& h : metrics::Snapshot().histograms) {
    if (h.name == name) return h.count;
  }
  ADD_FAILURE() << "no histogram named " << name;
  return 0;
}

TEST(StreamingAttackTest, TelemetryCountersArePinned) {
  metrics::ResetAllMetrics();
  const Fixture fixture = MakeFixture(100, 4);
  StreamingAttackReport report;
  RunStreaming(fixture, StreamingAttack::kPcaDr, 30, &report);
  ASSERT_EQ(report.num_records, 100u);

  // 100 rows in 30-row chunks is 4 chunks per sweep; pass 1 sweeps the
  // source twice (means, then scatter), pass 2 once. Records are counted
  // on the means sweep and on pass 2 — exactly n each.
  EXPECT_EQ(AttackCounter("attack.runs"), 1u);
  EXPECT_EQ(AttackCounter("attack.records_pass1"), 100u);
  EXPECT_EQ(AttackCounter("attack.records_pass2"), 100u);
  EXPECT_EQ(AttackCounter("attack.chunks_pass1"), 8u);
  EXPECT_EQ(AttackCounter("attack.chunks_pass2"), 4u);
  EXPECT_EQ(AttackHistogramCount("attack.pass1_chunk_nanos"), 8u);
  EXPECT_EQ(AttackHistogramCount("attack.pass2_chunk_nanos"), 4u);
}

TEST(StreamingAttackTest, TracingDoesNotPerturbTheNumbers) {
  const Fixture fixture = MakeFixture(300, 6);

  StreamingAttackReport plain_report;
  const Matrix plain = RunStreaming(fixture, StreamingAttack::kSpectralFiltering,
                                    44, &plain_report);

  trace::StartTracing();
  StreamingAttackReport traced_report;
  const Matrix traced = RunStreaming(
      fixture, StreamingAttack::kSpectralFiltering, 44, &traced_report);
  const std::vector<trace::Span> spans = trace::StopTracing();

  // The capture saw the pipeline's stage spans...
  auto has_span = [&](const char* name) {
    for (const trace::Span& span : spans) {
      if (span.name == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_span("attack.pass1_means"));
  EXPECT_TRUE(has_span("attack.pass1_scatter"));
  EXPECT_TRUE(has_span("attack.eigen"));
  EXPECT_TRUE(has_span("attack.pass2"));

  // ...and every number is bitwise identical to the uninstrumented run.
  EXPECT_EQ(linalg::MaxAbsDifference(plain, traced), 0.0);
  EXPECT_EQ(plain_report.num_records, traced_report.num_records);
  EXPECT_EQ(plain_report.num_components, traced_report.num_components);
  EXPECT_EQ(plain_report.rmse_vs_disguised, traced_report.rmse_vs_disguised);
  ASSERT_EQ(plain_report.mean.size(), traced_report.mean.size());
  for (size_t j = 0; j < plain_report.mean.size(); ++j) {
    EXPECT_EQ(plain_report.mean[j], traced_report.mean[j]) << "mean " << j;
  }
  ASSERT_EQ(plain_report.eigenvalues.size(), traced_report.eigenvalues.size());
  for (size_t j = 0; j < plain_report.eigenvalues.size(); ++j) {
    EXPECT_EQ(plain_report.eigenvalues[j], traced_report.eigenvalues[j])
        << "eigenvalue " << j;
  }
}

TEST(StreamingAttackTest, ZeroChunkRowsFailsTheJobNotTheProcess) {
  const Fixture fixture = MakeFixture(50, 4);
  MatrixRecordSource source(&fixture.disguised);
  NullChunkSink sink;
  StreamingAttackOptions options;
  options.chunk_rows = 0;
  const auto report =
      StreamingAttackPipeline(options).Run(&source, fixture.noise, &sink);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace pipeline
}  // namespace randrecon
