// RetryPolicy backoff schedule (src/pipeline/retry.h): capped
// exponential growth, jitter bounds, and the jitter being a pure
// function of (seed, job, attempt) pinned against the Philox substream
// it is specified to come from.

#include "pipeline/retry.h"

#include <gtest/gtest.h>

#include "common/status.h"
#include "data/column_store.h"
#include "stats/philox.h"

namespace randrecon {
namespace pipeline {
namespace {

RetryPolicy NoJitterPolicy() {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 0.01;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 0.05;
  policy.jitter_fraction = 0.0;
  return policy;
}

TEST(RetryPolicyTest, FirstAttemptHasNoBackoff) {
  EXPECT_EQ(RetryBackoffSeconds(NoJitterPolicy(), 7, 1), 0.0);
  EXPECT_EQ(RetryBackoffSeconds(NoJitterPolicy(), 7, 0), 0.0);
}

TEST(RetryPolicyTest, ExponentialGrowthWithCap) {
  const RetryPolicy policy = NoJitterPolicy();
  EXPECT_DOUBLE_EQ(RetryBackoffSeconds(policy, 7, 2), 0.01);
  EXPECT_DOUBLE_EQ(RetryBackoffSeconds(policy, 7, 3), 0.02);
  EXPECT_DOUBLE_EQ(RetryBackoffSeconds(policy, 7, 4), 0.04);
  // 0.08 and everything after clamps to the cap.
  EXPECT_DOUBLE_EQ(RetryBackoffSeconds(policy, 7, 5), 0.05);
  EXPECT_DOUBLE_EQ(RetryBackoffSeconds(policy, 7, 60), 0.05);
}

TEST(RetryPolicyTest, JitterStaysInsideItsBand) {
  RetryPolicy policy = NoJitterPolicy();
  policy.jitter_fraction = 0.25;
  for (int attempt = 2; attempt <= 10; ++attempt) {
    const double base = RetryBackoffSeconds(NoJitterPolicy(), 7, attempt);
    const double jittered = RetryBackoffSeconds(policy, 7, attempt);
    EXPECT_GE(jittered, base * 0.75) << "attempt " << attempt;
    EXPECT_LT(jittered, base * 1.25) << "attempt " << attempt;
  }
}

TEST(RetryPolicyTest, JitterIsDeterministicPerSeedJobAndAttempt) {
  RetryPolicy policy = NoJitterPolicy();
  policy.jitter_fraction = 0.25;
  const double first = RetryBackoffSeconds(policy, 7, 3);
  EXPECT_EQ(RetryBackoffSeconds(policy, 7, 3), first);  // Replays exactly.
  // A different job key, attempt, or seed moves the draw.
  EXPECT_NE(RetryBackoffSeconds(policy, 8, 3), first);
  RetryPolicy reseeded = policy;
  reseeded.jitter_seed = 1;
  EXPECT_NE(RetryBackoffSeconds(reseeded, 7, 3), first);
}

TEST(RetryPolicyTest, JitterIsPinnedToThePhiloxSubstream) {
  // The contract in retry.cc: the jitter factor for (seed, job, attempt)
  // is element `attempt` of Philox(seed, "RETRY").Substream(job)'s
  // canonical uniform sequence, mapped to [1-j, 1+j]. Re-derive it here
  // so the derivation can never drift silently.
  constexpr uint64_t kRetryJitterStreamTag = 0x5245545259;  // "RETRY"
  RetryPolicy policy = NoJitterPolicy();
  policy.jitter_fraction = 0.25;
  policy.jitter_seed = 42;
  const uint64_t job_key = RetryJobKey("jobs/shard-3");
  for (int attempt = 2; attempt <= 5; ++attempt) {
    double u = 0.0;
    stats::UniformSliceAt(
        stats::Philox(policy.jitter_seed, kRetryJitterStreamTag)
            .Substream(job_key),
        static_cast<uint64_t>(attempt), &u, 1);
    const double base = RetryBackoffSeconds(NoJitterPolicy(), job_key,
                                            attempt);
    EXPECT_DOUBLE_EQ(RetryBackoffSeconds(policy, job_key, attempt),
                     base * (0.75 + 0.5 * u))
        << "attempt " << attempt;
  }
}

TEST(RetryPolicyTest, JobKeyIsTheCanonicalHash) {
  const std::string name = "sweep/shard-5";
  EXPECT_EQ(RetryJobKey(name),
            data::ColumnStoreHash(name.data(), name.size()));
  EXPECT_NE(RetryJobKey("a"), RetryJobKey("b"));
}

TEST(RetryPolicyTest, DegenerateMultiplierIsClampedToFlat) {
  RetryPolicy policy = NoJitterPolicy();
  policy.backoff_multiplier = 0.0;  // Nonsense; treated as 1.0.
  EXPECT_DOUBLE_EQ(RetryBackoffSeconds(policy, 7, 2), 0.01);
  EXPECT_DOUBLE_EQ(RetryBackoffSeconds(policy, 7, 9), 0.01);
}

TEST(StatusRetryabilityTest, TaxonomyIsExact) {
  // Retryable: declared-transient unavailability, and I/O errors (at
  // raise time a flaky read is indistinguishable from permanent
  // damage — the retry either clears it or re-raises it).
  EXPECT_TRUE(IsRetryableStatusCode(StatusCode::kUnavailable));
  EXPECT_TRUE(IsRetryableStatusCode(StatusCode::kIoError));
  // Deterministic: retrying reproduces the failure bit for bit.
  EXPECT_FALSE(IsRetryableStatusCode(StatusCode::kOk));
  EXPECT_FALSE(IsRetryableStatusCode(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsRetryableStatusCode(StatusCode::kNotFound));
  EXPECT_FALSE(IsRetryableStatusCode(StatusCode::kNumericalError));
  EXPECT_FALSE(IsRetryableStatusCode(StatusCode::kFailedPrecondition));
  EXPECT_FALSE(IsRetryableStatusCode(StatusCode::kDeadlineExceeded));

  EXPECT_TRUE(Status::Unavailable("flaky").IsRetryable());
  EXPECT_TRUE(Status::IoError("disk").IsRetryable());
  EXPECT_FALSE(Status::OK().IsRetryable());
  EXPECT_FALSE(Status::DeadlineExceeded("late").IsRetryable());
}

TEST(StatusRetryabilityTest, NewCodesPrintAndConstruct) {
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_EQ(Status::Unavailable("shard busy").ToString(),
            "Unavailable: shard busy");
}

}  // namespace
}  // namespace pipeline
}  // namespace randrecon
