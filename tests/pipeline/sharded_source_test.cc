// ShardedRecordSource / ShardedChunkSink / job-per-shard tests,
// including the ISSUE 5 acceptance sweep: streaming SF and PCA-DR
// attacks over a manifest of N shards must produce BITWISE identical
// covariance, reconstruction and report to the single-file `.rrcs` path,
// for shard row counts {one block, misaligned, n} x threads {1, 4}.
// Also pins the columnar pass-1 fast path (both store-backed sources
// expose zero-copy block columns) against the row-major CSV path.

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "data/column_store.h"
#include "data/csv.h"
#include "data/shard_store.h"
#include "data/synthetic.h"
#include "perturb/schemes.h"
#include "pipeline/chunk_sink.h"
#include "pipeline/record_source.h"
#include "pipeline/runner.h"
#include "pipeline/source_factory.h"
#include "pipeline/streaming_attack.h"
#include "stats/rng.h"
#include "stats/streaming_moments.h"

namespace randrecon {
namespace pipeline {
namespace {

using linalg::Matrix;

class ScratchShardedStore {
 public:
  explicit ScratchShardedStore(const std::string& name)
      : path_("sharded_source_test_" + name) {}
  ~ScratchShardedStore() { data::RemoveShardedStoreFiles(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

class ScratchFile {
 public:
  explicit ScratchFile(const std::string& name)
      : path_("sharded_source_test_" + name) {}
  ~ScratchFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Matrix Drain(RecordSource* source, size_t chunk_rows) {
  const size_t m = source->num_attributes();
  Matrix buffer(chunk_rows, m);
  std::vector<double> values;
  size_t n = 0;
  for (;;) {
    auto rows = source->NextChunk(&buffer);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    if (!rows.ok() || rows.value() == 0) break;
    values.insert(values.end(), buffer.data(),
                  buffer.data() + rows.value() * m);
    n += rows.value();
  }
  return Matrix::FromRowMajor(n, m, std::move(values));
}

/// A disguised dataset round-tripped through CSV once, exported to a
/// single-file store AND to manifests with several shard geometries, so
/// every backend holds identical doubles. kBlockRows = 64 keeps multiple
/// blocks per shard at test sizes.
class ShardedSourceTest : public ::testing::Test {
 protected:
  static constexpr size_t kRecords = 600;
  static constexpr size_t kAttributes = 6;
  static constexpr size_t kBlockRows = 64;
  static constexpr double kSigma = 0.5;

  void SetUp() override {
    stats::Rng rng(99);
    data::SyntheticDatasetSpec spec;
    spec.eigenvalues = data::TwoLevelSpectrum(kAttributes, 2, 6.0, 0.2);
    auto generated = data::GenerateSpectrumDataset(spec, kRecords, &rng);
    ASSERT_TRUE(generated.ok());
    auto scheme =
        perturb::IndependentNoiseScheme::Gaussian(kAttributes, kSigma);
    auto disguised = scheme.Disguise(generated.value().dataset, &rng);
    ASSERT_TRUE(disguised.ok());
    ASSERT_TRUE(data::WriteCsv(disguised.value(), csv_.path()).ok());

    auto parsed = data::ReadCsv(csv_.path());
    ASSERT_TRUE(parsed.ok());
    round_tripped_ = parsed.value().records();

    data::ColumnStoreOptions store_options;
    store_options.block_rows = kBlockRows;
    ASSERT_TRUE(
        data::WriteColumnStore(parsed.value(), store_.path(), store_options)
            .ok());
    // Shard geometries of the acceptance sweep: exactly one block per
    // shard, shard rows misaligned with the block size, and one shard
    // holding everything.
    WriteManifest(parsed.value(), one_block_.path(), kBlockRows);
    WriteManifest(parsed.value(), misaligned_.path(), 97);
    WriteManifest(parsed.value(), single_.path(), kRecords);
  }

  static void WriteManifest(const data::Dataset& dataset,
                            const std::string& path, size_t shard_rows) {
    data::ShardedStoreOptions options;
    options.shard_rows = shard_rows;
    options.block_rows = kBlockRows;
    ASSERT_TRUE(data::WriteShardedStore(dataset, path, options).ok());
  }

  ScratchFile csv_{"disguised.csv"};
  ScratchFile store_{"disguised.rrcs"};
  ScratchShardedStore one_block_{"one_block.rrcm"};
  ScratchShardedStore misaligned_{"misaligned.rrcm"};
  ScratchShardedStore single_{"single.rrcm"};
  Matrix round_tripped_;
};

TEST_F(ShardedSourceTest, StreamsTheLogicalStreamBitwise) {
  for (const std::string* path :
       {&one_block_.path(), &misaligned_.path(), &single_.path()}) {
    auto source = ShardedRecordSource::Open(*path);
    ASSERT_TRUE(source.ok()) << source.status().ToString();
    ShardedRecordSource sharded = std::move(source).value();
    EXPECT_EQ(sharded.num_records(), kRecords);
    for (const size_t chunk : {size_t{1}, size_t{7}, size_t{64}, kRecords}) {
      ASSERT_TRUE(sharded.Reset().ok());
      EXPECT_TRUE(Drain(&sharded, chunk) == round_tripped_)
          << *path << " chunk=" << chunk;
    }
  }
}

TEST_F(ShardedSourceTest, FactorySniffsManifests) {
  auto opened = OpenRecordSource(misaligned_.path());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened.value().format, data::RecordFileFormat::kShardManifest);
  EXPECT_EQ(opened.value().num_records, kRecords);
  EXPECT_EQ(opened.value().attribute_names.size(), kAttributes);
  EXPECT_TRUE(Drain(opened.value().source.get(), 64) == round_tripped_);

  EXPECT_TRUE(
      VerifyStreamsBitwiseEqual(csv_.path(), misaligned_.path()).ok());
  EXPECT_TRUE(
      VerifyStreamsBitwiseEqual(store_.path(), one_block_.path()).ok());
}

// The acceptance sweep: streaming SF and PCA-DR over every manifest
// geometry must match the single-file store path BITWISE — covariance,
// reconstruction stream, and report — for chunk sizes and thread counts.
TEST_F(ShardedSourceTest, AttacksOverManifestsMatchSingleFileBitwise) {
  const perturb::NoiseModel noise =
      perturb::NoiseModel::IndependentGaussian(kAttributes, kSigma);
  const std::vector<const std::string*> manifests = {
      &one_block_.path(), &misaligned_.path(), &single_.path()};

  for (const int threads : {1, 4}) {
    for (const size_t chunk : {size_t{64}, kRecords}) {
      for (const StreamingAttack attack :
           {StreamingAttack::kSpectralFiltering, StreamingAttack::kPcaDr}) {
        StreamingAttackOptions options;
        options.attack = attack;
        options.chunk_rows = chunk;
        options.parallel.num_threads = threads;

        auto run = [&](const std::string& path, Matrix* reconstruction,
                       StreamingAttackReport* report) {
          auto opened = OpenRecordSource(path);
          ASSERT_TRUE(opened.ok()) << opened.status().ToString();
          CollectChunkSink sink(kAttributes);
          auto result = StreamingAttackPipeline(options).Run(
              opened.value().source.get(), noise, &sink);
          ASSERT_TRUE(result.ok()) << result.status().ToString();
          *reconstruction = sink.ToMatrix();
          *report = result.value();
        };

        Matrix base_reconstruction;
        StreamingAttackReport base_report;
        run(store_.path(), &base_reconstruction, &base_report);
        for (const std::string* manifest : manifests) {
          Matrix reconstruction;
          StreamingAttackReport report;
          run(*manifest, &reconstruction, &report);
          EXPECT_TRUE(reconstruction == base_reconstruction)
              << *manifest << " chunk=" << chunk << " threads=" << threads;
          EXPECT_EQ(report.num_components, base_report.num_components);
          EXPECT_EQ(report.eigenvalues, base_report.eigenvalues);
          EXPECT_EQ(report.mean, base_report.mean);
          EXPECT_EQ(report.rmse_vs_disguised, base_report.rmse_vs_disguised);
        }
      }
    }
  }
}

// The columnar pass-1 fast path (used automatically by store-backed
// sources) must be bitwise identical to the row-major path the CSV
// source takes — covariance AND means.
TEST_F(ShardedSourceTest, ColumnarMomentsMatchRowMajorBitwise) {
  stats::StreamingMoments row_major(kAttributes);
  {
    auto opened = OpenRecordSource(csv_.path());
    ASSERT_TRUE(opened.ok());
    Matrix buffer(64, kAttributes);
    for (;;) {
      auto rows = opened.value().source->NextChunk(&buffer);
      ASSERT_TRUE(rows.ok());
      if (rows.value() == 0) break;
      row_major.AccumulateMeans(buffer, rows.value());
    }
    row_major.FinalizeMeans();
    ASSERT_TRUE(opened.value().source->Reset().ok());
    for (;;) {
      auto rows = opened.value().source->NextChunk(&buffer);
      ASSERT_TRUE(rows.ok());
      if (rows.value() == 0) break;
      row_major.AccumulateScatter(buffer, rows.value());
    }
  }
  const Matrix expected_cov = row_major.FinalizeCovariance();

  for (const std::string* path : {&store_.path(), &misaligned_.path()}) {
    auto opened = OpenRecordSource(*path);
    ASSERT_TRUE(opened.ok());
    ColumnarBlockStream* columnar = opened.value().source->columnar_blocks();
    ASSERT_NE(columnar, nullptr) << *path;
    stats::StreamingMoments moments(kAttributes);
    std::vector<const double*> columns;
    ASSERT_TRUE(columnar->ResetBlocks().ok());
    size_t total = 0;
    for (;;) {
      auto rows = columnar->NextBlockColumns(&columns);
      ASSERT_TRUE(rows.ok()) << rows.status().ToString();
      if (rows.value() == 0) break;
      moments.AccumulateMeansColumns(columns.data(), rows.value());
      total += rows.value();
    }
    EXPECT_EQ(total, kRecords);
    moments.FinalizeMeans();
    EXPECT_EQ(moments.means(), row_major.means()) << *path;
    ASSERT_TRUE(columnar->ResetBlocks().ok());
    for (;;) {
      auto rows = columnar->NextBlockColumns(&columns);
      ASSERT_TRUE(rows.ok());
      if (rows.value() == 0) break;
      moments.AccumulateScatterColumns(columns.data(), rows.value());
    }
    EXPECT_TRUE(moments.FinalizeCovariance() == expected_cov) << *path;
  }
}

TEST_F(ShardedSourceTest, ShardedChunkSinkRoundTripsTheAttackOutput) {
  ScratchShardedStore out{"recon.rrcm"};
  const perturb::NoiseModel noise =
      perturb::NoiseModel::IndependentGaussian(kAttributes, kSigma);
  StreamingAttackOptions options;
  options.attack = StreamingAttack::kSpectralFiltering;

  auto collect_opened = OpenRecordSource(store_.path());
  ASSERT_TRUE(collect_opened.ok());
  CollectChunkSink collect(kAttributes);
  ASSERT_TRUE(StreamingAttackPipeline(options)
                  .Run(collect_opened.value().source.get(), noise, &collect)
                  .ok());

  auto sharded_opened = OpenRecordSource(store_.path());
  ASSERT_TRUE(sharded_opened.ok());
  RecordSinkOptions sink_options;
  sink_options.shard_rows = 250;  // 3 shards, the last partial.
  auto sink = CreateRecordSink(out.path(),
                               sharded_opened.value().attribute_names,
                               sink_options);
  ASSERT_TRUE(sink.ok()) << sink.status().ToString();
  ASSERT_TRUE(StreamingAttackPipeline(options)
                  .Run(sharded_opened.value().source.get(), noise,
                       sink.value().get())
                  .ok());
  ASSERT_TRUE(sink.value()->Close().ok());

  auto manifest = data::ReadShardManifest(out.path());
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  EXPECT_EQ(manifest.value().shards.size(), 3u);
  auto read_back = data::ReadShardedStoreDataset(out.path());
  ASSERT_TRUE(read_back.ok()) << read_back.status().ToString();
  EXPECT_TRUE(read_back.value().records() == collect.ToMatrix());
}

TEST_F(ShardedSourceTest, PerShardJobsDecomposeTheManifest) {
  PipelineJob prototype;
  prototype.name = "sweep";
  prototype.noise =
      perturb::NoiseModel::IndependentGaussian(kAttributes, kSigma);
  prototype.attack.attack = StreamingAttack::kSpectralFiltering;

  auto jobs = MakePerShardJobs(misaligned_.path(), prototype);
  ASSERT_TRUE(jobs.ok()) << jobs.status().ToString();
  const size_t expected_shards = (kRecords + 97 - 1) / 97;
  ASSERT_EQ(jobs.value().size(), expected_shards);
  EXPECT_EQ(jobs.value()[0].name, "sweep/shard-0");

  const auto results = RunPipelineJobs(jobs.value());
  ASSERT_EQ(results.size(), expected_shards);
  size_t total_records = 0;
  for (size_t s = 0; s < results.size(); ++s) {
    ASSERT_TRUE(results[s].status.ok())
        << results[s].name << ": " << results[s].status.ToString();
    total_records += results[s].report.num_records;
    EXPECT_EQ(results[s].report.num_attributes, kAttributes);
  }
  EXPECT_EQ(total_records, kRecords);

  // Shard jobs are ordinary single-file attacks: job k's report matches
  // an attack run directly over shard k's file (scheduling never changes
  // numbers).
  auto manifest = data::ReadShardManifest(misaligned_.path());
  ASSERT_TRUE(manifest.ok());
  const std::string shard0 = data::ManifestDirectory(misaligned_.path()) +
                             manifest.value().shards[0].relative_path;
  auto opened = OpenRecordSource(shard0);
  ASSERT_TRUE(opened.ok());
  NullChunkSink null_sink;
  StreamingAttackOptions options;
  options.attack = StreamingAttack::kSpectralFiltering;
  auto direct = StreamingAttackPipeline(options).Run(
      opened.value().source.get(), prototype.noise, &null_sink);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct.value().eigenvalues, results[0].report.eigenvalues);
  EXPECT_EQ(direct.value().rmse_vs_disguised,
            results[0].report.rmse_vs_disguised);
}

TEST_F(ShardedSourceTest, CorruptShardFailsItsJobNotTheBatch) {
  // Delete the middle shard: the whole-manifest job fails with a Status
  // naming the shard, while an independent healthy job in the same batch
  // still succeeds (per-job isolation).
  auto manifest = data::ReadShardManifest(misaligned_.path());
  ASSERT_TRUE(manifest.ok());
  const std::string victim = data::ManifestDirectory(misaligned_.path()) +
                             manifest.value().shards[3].relative_path;
  ASSERT_EQ(std::remove(victim.c_str()), 0);

  auto make_source_factory = [](std::string path) {
    return [path]() -> Result<std::unique_ptr<RecordSource>> {
      RR_ASSIGN_OR_RETURN(OpenedRecordSource opened, OpenRecordSource(path));
      return std::move(opened.source);
    };
  };
  std::vector<PipelineJob> jobs(2);
  jobs[0].name = "broken";
  jobs[0].disguised = make_source_factory(misaligned_.path());
  jobs[0].noise = perturb::NoiseModel::IndependentGaussian(kAttributes, kSigma);
  jobs[1].name = "healthy";
  jobs[1].disguised = make_source_factory(store_.path());
  jobs[1].noise = perturb::NoiseModel::IndependentGaussian(kAttributes, kSigma);

  const auto results = RunPipelineJobs(jobs);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].status.ok());
  EXPECT_NE(results[0].status.message().find("shard 3"), std::string::npos)
      << results[0].status.ToString();
  EXPECT_TRUE(results[1].status.ok()) << results[1].status.ToString();
}

}  // namespace
}  // namespace pipeline
}  // namespace randrecon
