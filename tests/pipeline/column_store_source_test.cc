// ColumnStoreRecordSource / ColumnStoreChunkSink / source-factory tests,
// including the ISSUE 4 acceptance sweep: streaming SF and PCA-DR
// attacks over a memory-mapped column store must produce BITWISE
// identical covariance and reconstruction output to the CsvRecordSource
// path on round-tripped data, for chunk sizes {1, 7, 64, n} x thread
// counts {1, 4}.

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "data/column_store.h"
#include "data/csv.h"
#include "data/synthetic.h"
#include "linalg/matrix_util.h"
#include "perturb/schemes.h"
#include "pipeline/chunk_sink.h"
#include "pipeline/record_source.h"
#include "pipeline/source_factory.h"
#include "pipeline/streaming_attack.h"
#include "stats/rng.h"
#include "stats/streaming_moments.h"

namespace randrecon {
namespace pipeline {
namespace {

using linalg::Matrix;

class ScratchFile {
 public:
  explicit ScratchFile(const std::string& name)
      : path_("column_store_source_test_" + name) {}
  ~ScratchFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Matrix Drain(RecordSource* source, size_t chunk_rows) {
  const size_t m = source->num_attributes();
  Matrix buffer(chunk_rows, m);
  std::vector<double> values;
  size_t n = 0;
  for (;;) {
    auto rows = source->NextChunk(&buffer);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    if (!rows.ok() || rows.value() == 0) break;
    values.insert(values.end(), buffer.data(),
                  buffer.data() + rows.value() * m);
    n += rows.value();
  }
  return Matrix::FromRowMajor(n, m, std::move(values));
}

/// A disguised dataset that has passed through CSV text once, so the CSV
/// file and the store built from it hold identical doubles.
class ColumnStoreSourceTest : public ::testing::Test {
 protected:
  static constexpr size_t kRecords = 600;
  static constexpr size_t kAttributes = 6;
  static constexpr double kSigma = 0.5;

  void SetUp() override {
    stats::Rng rng(99);
    data::SyntheticDatasetSpec spec;
    spec.eigenvalues = data::TwoLevelSpectrum(kAttributes, 2, 6.0, 0.2);
    auto generated = data::GenerateSpectrumDataset(spec, kRecords, &rng);
    ASSERT_TRUE(generated.ok());
    auto scheme =
        perturb::IndependentNoiseScheme::Gaussian(kAttributes, kSigma);
    auto disguised = scheme.Disguise(generated.value().dataset, &rng);
    ASSERT_TRUE(disguised.ok());
    ASSERT_TRUE(data::WriteCsv(disguised.value(), csv_.path()).ok());

    // Round-trip: the store is built from the CSV's parsed values.
    auto parsed = data::ReadCsv(csv_.path());
    ASSERT_TRUE(parsed.ok());
    round_tripped_ = parsed.value().records();
    ASSERT_TRUE(
        data::WriteColumnStore(parsed.value(), store_.path()).ok());
  }

  ScratchFile csv_{"disguised.csv"};
  ScratchFile store_{"disguised.rrcs"};
  Matrix round_tripped_;
};

TEST_F(ColumnStoreSourceTest, StreamsTheRoundTrippedRecordsBitwise) {
  auto source = ColumnStoreRecordSource::Open(store_.path());
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  ColumnStoreRecordSource store_source = std::move(source).value();
  EXPECT_EQ(store_source.num_records(), kRecords);
  EXPECT_TRUE(Drain(&store_source, 64) == round_tripped_);
  ASSERT_TRUE(store_source.Reset().ok());
  EXPECT_TRUE(Drain(&store_source, 10) == round_tripped_);
}

TEST_F(ColumnStoreSourceTest, ChunkSizeDoesNotChangeTheStream) {
  for (const size_t chunk : {size_t{1}, size_t{7}, size_t{64}, kRecords}) {
    auto source = ColumnStoreRecordSource::Open(store_.path());
    ASSERT_TRUE(source.ok());
    ColumnStoreRecordSource store_source = std::move(source).value();
    EXPECT_TRUE(Drain(&store_source, chunk) == round_tripped_)
        << "chunk=" << chunk;
  }
}

// The acceptance sweep: covariance and reconstruction from the mmap'd
// store must match the CSV path BITWISE for every chunk size and thread
// count (and therefore match each other across the whole sweep, since
// the CSV path is already chunk/thread invariant).
TEST_F(ColumnStoreSourceTest, AttacksOverStoreMatchCsvBitwise) {
  const perturb::NoiseModel noise =
      perturb::NoiseModel::IndependentGaussian(kAttributes, kSigma);

  for (const size_t chunk : {size_t{1}, size_t{7}, size_t{64}, kRecords}) {
    for (const int threads : {1, 4}) {
      // Covariance: streamed moments over both sources, bitwise equal.
      Matrix covariance[2];
      for (int which = 0; which < 2; ++which) {
        auto opened = OpenRecordSource(which == 0 ? csv_.path()
                                                  : store_.path());
        ASSERT_TRUE(opened.ok()) << opened.status().ToString();
        stats::StreamingMoments moments(kAttributes);
        Matrix buffer(chunk, kAttributes);
        for (;;) {
          auto rows = opened.value().source->NextChunk(&buffer);
          ASSERT_TRUE(rows.ok());
          if (rows.value() == 0) break;
          moments.AccumulateMeans(buffer, rows.value());
        }
        moments.FinalizeMeans();
        ASSERT_TRUE(opened.value().source->Reset().ok());
        for (;;) {
          auto rows = opened.value().source->NextChunk(&buffer);
          ASSERT_TRUE(rows.ok());
          if (rows.value() == 0) break;
          moments.AccumulateScatter(buffer, rows.value());
        }
        covariance[which] = moments.FinalizeCovariance();
      }
      EXPECT_TRUE(covariance[0] == covariance[1])
          << "covariance diverged at chunk=" << chunk
          << " threads=" << threads;

      // Full attacks: reconstruction streams, bitwise equal.
      for (const StreamingAttack attack :
           {StreamingAttack::kSpectralFiltering, StreamingAttack::kPcaDr}) {
        StreamingAttackOptions options;
        options.attack = attack;
        options.chunk_rows = chunk;
        options.parallel.num_threads = threads;

        Matrix reconstruction[2];
        StreamingAttackReport reports[2];
        for (int which = 0; which < 2; ++which) {
          auto opened = OpenRecordSource(which == 0 ? csv_.path()
                                                    : store_.path());
          ASSERT_TRUE(opened.ok());
          CollectChunkSink sink(kAttributes);
          auto report = StreamingAttackPipeline(options).Run(
              opened.value().source.get(), noise, &sink);
          ASSERT_TRUE(report.ok()) << report.status().ToString();
          reconstruction[which] = sink.ToMatrix();
          reports[which] = report.value();
        }
        EXPECT_TRUE(reconstruction[0] == reconstruction[1])
            << "reconstruction diverged: attack="
            << (attack == StreamingAttack::kPcaDr ? "pca" : "sf")
            << " chunk=" << chunk << " threads=" << threads << " max diff "
            << linalg::MaxAbsDifference(reconstruction[0], reconstruction[1]);
        EXPECT_EQ(reports[0].num_components, reports[1].num_components);
        EXPECT_EQ(reports[0].eigenvalues, reports[1].eigenvalues);
        EXPECT_EQ(reports[0].mean, reports[1].mean);
        EXPECT_EQ(reports[0].rmse_vs_disguised, reports[1].rmse_vs_disguised);
      }
    }
  }
}

TEST_F(ColumnStoreSourceTest, ColumnStoreChunkSinkRoundTripsTheAttackOutput) {
  ScratchFile out{"recon.rrcs"};
  const perturb::NoiseModel noise =
      perturb::NoiseModel::IndependentGaussian(kAttributes, kSigma);
  StreamingAttackOptions options;
  options.attack = StreamingAttack::kSpectralFiltering;

  auto collect_opened = OpenRecordSource(store_.path());
  ASSERT_TRUE(collect_opened.ok());
  CollectChunkSink collect(kAttributes);
  ASSERT_TRUE(StreamingAttackPipeline(options)
                  .Run(collect_opened.value().source.get(), noise, &collect)
                  .ok());

  auto store_opened = OpenRecordSource(store_.path());
  ASSERT_TRUE(store_opened.ok());
  auto sink = ColumnStoreChunkSink::Create(
      out.path(), store_opened.value().attribute_names);
  ASSERT_TRUE(sink.ok());
  ColumnStoreChunkSink store_sink = std::move(sink).value();
  ASSERT_TRUE(StreamingAttackPipeline(options)
                  .Run(store_opened.value().source.get(), noise, &store_sink)
                  .ok());
  ASSERT_TRUE(store_sink.Close().ok());

  // The persisted reconstruction equals the collected one bitwise.
  auto read_back = data::ReadColumnStoreDataset(out.path());
  ASSERT_TRUE(read_back.ok()) << read_back.status().ToString();
  EXPECT_TRUE(read_back.value().records() == collect.ToMatrix());
}

TEST_F(ColumnStoreSourceTest, FactorySniffsContentAndPicksSinkByExtension) {
  auto csv_opened = OpenRecordSource(csv_.path());
  auto store_opened = OpenRecordSource(store_.path());
  ASSERT_TRUE(csv_opened.ok());
  ASSERT_TRUE(store_opened.ok());
  EXPECT_EQ(csv_opened.value().format, data::RecordFileFormat::kCsv);
  EXPECT_EQ(store_opened.value().format,
            data::RecordFileFormat::kColumnStore);
  EXPECT_EQ(csv_opened.value().attribute_names,
            store_opened.value().attribute_names);
  EXPECT_EQ(store_opened.value().num_records, kRecords);
  EXPECT_TRUE(Drain(csv_opened.value().source.get(), 64) ==
              Drain(store_opened.value().source.get(), 64));

  ScratchFile csv_out{"sink.csv"};
  ScratchFile store_out{"sink.rrcs"};
  const std::vector<std::string> names = csv_opened.value().attribute_names;
  auto csv_sink = CreateRecordSink(csv_out.path(), names);
  auto store_sink = CreateRecordSink(store_out.path(), names);
  ASSERT_TRUE(csv_sink.ok());
  ASSERT_TRUE(store_sink.ok());
  Matrix chunk(4, kAttributes);
  ASSERT_TRUE(csv_sink.value()->Consume(0, chunk, 4).ok());
  ASSERT_TRUE(store_sink.value()->Consume(0, chunk, 4).ok());
  ASSERT_TRUE(csv_sink.value()->Close().ok());
  ASSERT_TRUE(store_sink.value()->Close().ok());
  auto csv_format = data::DetectRecordFileFormat(csv_out.path());
  auto store_format = data::DetectRecordFileFormat(store_out.path());
  ASSERT_TRUE(csv_format.ok());
  ASSERT_TRUE(store_format.ok());
  EXPECT_EQ(csv_format.value(), data::RecordFileFormat::kCsv);
  EXPECT_EQ(store_format.value(), data::RecordFileFormat::kColumnStore);
}

TEST_F(ColumnStoreSourceTest, VerifyStreamsComparesRecordsNotVacuously) {
  // The CSV and the store hold the same round-tripped doubles.
  EXPECT_TRUE(VerifyStreamsBitwiseEqual(csv_.path(), store_.path()).ok());
  // chunk_rows == 0 must be an error, not a 0-record "equal" verdict.
  const Status status =
      VerifyStreamsBitwiseEqual(csv_.path(), store_.path(), /*chunk_rows=*/0);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << status.ToString();
}

TEST(ColumnStoreRecordSourceTest, OpenFailsCleanlyOnCsvInput) {
  ScratchFile csv{"not_a_store.csv"};
  std::ofstream file(csv.path());
  file << "a,b\n1,2\n";
  file.close();
  auto source = ColumnStoreRecordSource::Open(csv.path());
  EXPECT_FALSE(source.ok());
  EXPECT_EQ(source.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace pipeline
}  // namespace randrecon
