// Contract tests for the RecordSource adapters: chunking, rewind
// reproducibility, and chunk-size invariance of every stream.

#include "pipeline/record_source.h"

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "linalg/matrix_util.h"
#include "stats/rng.h"

namespace randrecon {
namespace pipeline {
namespace {

using linalg::Matrix;

/// Drains `source` with `chunk_rows`-record reads into one matrix.
Matrix Drain(RecordSource* source, size_t chunk_rows) {
  const size_t m = source->num_attributes();
  Matrix buffer(chunk_rows, m);
  std::vector<double> values;
  size_t n = 0;
  for (;;) {
    auto rows = source->NextChunk(&buffer);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    if (!rows.ok() || rows.value() == 0) break;
    values.insert(values.end(), buffer.data(),
                  buffer.data() + rows.value() * m);
    n += rows.value();
  }
  return Matrix::FromRowMajor(n, m, std::move(values));
}

TEST(MatrixRecordSourceTest, ChunksAndRewinds) {
  stats::Rng rng(1);
  const Matrix data = rng.GaussianMatrix(103, 5);
  MatrixRecordSource source(data);
  EXPECT_EQ(source.num_attributes(), 5u);
  const Matrix first_pass = Drain(&source, 10);
  EXPECT_EQ(linalg::MaxAbsDifference(first_pass, data), 0.0);
  ASSERT_TRUE(source.Reset().ok());
  const Matrix second_pass = Drain(&source, 64);
  EXPECT_EQ(linalg::MaxAbsDifference(second_pass, data), 0.0);
}

TEST(MatrixRecordSourceTest, BorrowedMatrixIsNotCopied) {
  const Matrix data = Matrix{{1.0, 2.0}, {3.0, 4.0}};
  MatrixRecordSource source(&data);
  EXPECT_EQ(linalg::MaxAbsDifference(Drain(&source, 1), data), 0.0);
}

TEST(CsvRecordSourceTest, StreamsWhatFromCsvStringParses) {
  const std::string csv = "a,b\n1.5,2\n3,4\n5,6\n";
  auto source = CsvRecordSource::FromString(csv);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  CsvRecordSource s = std::move(source).value();
  const Matrix streamed = Drain(&s, 2);
  const Matrix parsed = data::FromCsvString(csv).value().records();
  EXPECT_EQ(linalg::MaxAbsDifference(streamed, parsed), 0.0);
  ASSERT_TRUE(s.Reset().ok());
  EXPECT_EQ(linalg::MaxAbsDifference(Drain(&s, 64), parsed), 0.0);
}

TEST(MvnRecordSourceTest, ResetReplaysIdenticalRecords) {
  const Matrix covariance = Matrix{{2.0, 0.5}, {0.5, 1.0}};
  auto source =
      MvnRecordSource::Create({1.0, -1.0}, covariance, 257, /*seed=*/42);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  MvnRecordSource s = std::move(source).value();
  const Matrix first_pass = Drain(&s, 64);
  ASSERT_EQ(first_pass.rows(), 257u);
  ASSERT_TRUE(s.Reset().ok());
  const Matrix second_pass = Drain(&s, 64);
  EXPECT_EQ(linalg::MaxAbsDifference(first_pass, second_pass), 0.0);
}

TEST(MvnRecordSourceTest, StreamIsChunkSizeInvariant) {
  const Matrix covariance = Matrix::Identity(3);
  auto source =
      MvnRecordSource::Create({0.0, 0.0, 0.0}, covariance, 100, /*seed=*/7);
  ASSERT_TRUE(source.ok());
  MvnRecordSource s = std::move(source).value();
  const Matrix by_fives = Drain(&s, 5);
  ASSERT_TRUE(s.Reset().ok());
  const Matrix by_sixty_four = Drain(&s, 64);
  EXPECT_EQ(linalg::MaxAbsDifference(by_fives, by_sixty_four), 0.0);
}

TEST(PerturbingRecordSourceTest, AddsRewindableNoise) {
  stats::Rng rng(3);
  const Matrix data = rng.GaussianMatrix(80, 4);
  const auto scheme = perturb::IndependentNoiseScheme::Gaussian(4, 0.5);
  PerturbingRecordSource source(std::make_unique<MatrixRecordSource>(&data),
                                &scheme, /*seed=*/11);
  const Matrix first_pass = Drain(&source, 17);
  ASSERT_EQ(first_pass.rows(), 80u);
  // Noise actually moved the records...
  EXPECT_GT(linalg::MaxAbsDifference(first_pass, data), 0.0);
  // ...and the disguised stream replays identically after a rewind.
  ASSERT_TRUE(source.Reset().ok());
  const Matrix second_pass = Drain(&source, 33);
  EXPECT_EQ(linalg::MaxAbsDifference(first_pass, second_pass), 0.0);
}

TEST(PerturbingRecordSourceTest, DisguisedStreamIsChunkSizeInvariant) {
  stats::Rng rng(5);
  const Matrix data = rng.GaussianMatrix(60, 3);
  const auto scheme = perturb::IndependentNoiseScheme::Gaussian(3, 1.0);
  PerturbingRecordSource source(std::make_unique<MatrixRecordSource>(&data),
                                &scheme, /*seed=*/13);
  const Matrix one_by_one = Drain(&source, 1);
  ASSERT_TRUE(source.Reset().ok());
  const Matrix all_at_once = Drain(&source, 60);
  EXPECT_EQ(linalg::MaxAbsDifference(one_by_one, all_at_once), 0.0);
}

/// Drains with an explicit worker budget on the batch sources.
template <typename Source>
Matrix DrainWithThreads(Source* source, size_t chunk_rows, int threads) {
  ParallelOptions options;
  options.num_threads = threads;
  source->set_parallel_options(options);
  return Drain(source, chunk_rows);
}

TEST(MvnRecordSourceTest, BatchModeIsChunkAndThreadInvariant) {
  const Matrix covariance = Matrix{{2.0, 0.5, 0.1},
                                   {0.5, 1.0, 0.0},
                                   {0.1, 0.0, 3.0}};
  const size_t n = 1000;  // straddles several generation blocks
  auto make = [&] {
    auto source = MvnRecordSource::Create({0.5, 0.0, -1.0}, covariance, n,
                                          /*seed=*/42,
                                          GeneratorMode::kCounterBatch);
    EXPECT_TRUE(source.ok()) << source.status().ToString();
    return std::move(source).value();
  };
  MvnRecordSource reference_source = make();
  const Matrix reference = DrainWithThreads(&reference_source, 64, 1);
  ASSERT_EQ(reference.rows(), n);
  for (size_t chunk : {size_t{1}, size_t{7}, size_t{64}, n}) {
    for (int threads : {1, 4}) {
      MvnRecordSource source = make();
      const Matrix streamed = DrainWithThreads(&source, chunk, threads);
      EXPECT_EQ(linalg::MaxAbsDifference(streamed, reference), 0.0)
          << "chunk " << chunk << " threads " << threads;
    }
  }
}

TEST(MvnRecordSourceTest, BatchModeResetReplaysIdentically) {
  auto source = MvnRecordSource::Create({0.0, 0.0}, Matrix::Identity(2), 517,
                                        /*seed=*/9,
                                        GeneratorMode::kCounterBatch);
  ASSERT_TRUE(source.ok());
  MvnRecordSource s = std::move(source).value();
  const Matrix first = Drain(&s, 33);
  ASSERT_TRUE(s.Reset().ok());
  const Matrix second = Drain(&s, 129);
  EXPECT_EQ(linalg::MaxAbsDifference(first, second), 0.0);
}

TEST(MvnRecordSourceTest, SequentialModeStillStreamsRngDraws) {
  // The legacy mt19937 path stays available (and distinct) for tests
  // and small runs.
  auto make = [](GeneratorMode mode) {
    auto source = MvnRecordSource::Create({0.0, 0.0}, Matrix::Identity(2),
                                          200, /*seed=*/4, mode);
    EXPECT_TRUE(source.ok());
    return std::move(source).value();
  };
  MvnRecordSource sequential = make(GeneratorMode::kSequentialRng);
  const Matrix seq_a = Drain(&sequential, 13);
  ASSERT_TRUE(sequential.Reset().ok());
  const Matrix seq_b = Drain(&sequential, 200);
  EXPECT_EQ(linalg::MaxAbsDifference(seq_a, seq_b), 0.0);
  MvnRecordSource batch = make(GeneratorMode::kCounterBatch);
  const Matrix batch_records = Drain(&batch, 200);
  EXPECT_GT(linalg::MaxAbsDifference(seq_a, batch_records), 0.0);
}

TEST(PerturbingRecordSourceTest, BatchNoiseIsChunkAndThreadInvariant) {
  stats::Rng rng(5);
  const Matrix data = rng.GaussianMatrix(700, 3);
  const auto scheme = perturb::IndependentNoiseScheme::Gaussian(3, 1.0);
  auto make = [&] {
    return PerturbingRecordSource(std::make_unique<MatrixRecordSource>(&data),
                                  &scheme, /*seed=*/13,
                                  GeneratorMode::kCounterBatch);
  };
  PerturbingRecordSource reference_source = make();
  EXPECT_EQ(reference_source.mode(), GeneratorMode::kCounterBatch);
  const Matrix reference = DrainWithThreads(&reference_source, 64, 1);
  for (size_t chunk : {size_t{1}, size_t{7}, size_t{64}, size_t{700}}) {
    for (int threads : {1, 4}) {
      PerturbingRecordSource source = make();
      const Matrix streamed = DrainWithThreads(&source, chunk, threads);
      EXPECT_EQ(linalg::MaxAbsDifference(streamed, reference), 0.0)
          << "chunk " << chunk << " threads " << threads;
    }
  }
  // And the noise actually perturbed the records.
  EXPECT_GT(linalg::MaxAbsDifference(reference, data), 0.0);
}

TEST(PerturbingRecordSourceTest, BatchUniformNoiseInvariance) {
  stats::Rng rng(6);
  const Matrix data = rng.GaussianMatrix(300, 2);
  const auto scheme = perturb::IndependentNoiseScheme::Uniform(2, 2.0);
  PerturbingRecordSource a(std::make_unique<MatrixRecordSource>(&data),
                           &scheme, /*seed=*/3,
                           GeneratorMode::kCounterBatch);
  EXPECT_EQ(a.mode(), GeneratorMode::kCounterBatch);
  const Matrix one_by_one = Drain(&a, 1);
  PerturbingRecordSource b(std::make_unique<MatrixRecordSource>(&data),
                           &scheme, /*seed=*/3,
                           GeneratorMode::kCounterBatch);
  const Matrix all_at_once = Drain(&b, 300);
  EXPECT_EQ(linalg::MaxAbsDifference(one_by_one, all_at_once), 0.0);
}

TEST(PerturbingRecordSourceTest, BatchCorrelatedNoiseInvariance) {
  stats::Rng rng(8);
  const Matrix data = rng.GaussianMatrix(600, 2);
  const Matrix noise_cov = Matrix{{1.0, 0.6}, {0.6, 1.0}};
  auto scheme = perturb::CorrelatedGaussianScheme::Create(noise_cov);
  ASSERT_TRUE(scheme.ok());
  auto make = [&] {
    return PerturbingRecordSource(std::make_unique<MatrixRecordSource>(&data),
                                  &scheme.value(), /*seed=*/21,
                                  GeneratorMode::kCounterBatch);
  };
  PerturbingRecordSource a = make();
  EXPECT_EQ(a.mode(), GeneratorMode::kCounterBatch);
  const Matrix by_17 = Drain(&a, 17);
  PerturbingRecordSource b = make();
  const Matrix by_256 = Drain(&b, 256);
  EXPECT_EQ(linalg::MaxAbsDifference(by_17, by_256), 0.0);
}

TEST(PerturbingRecordSourceTest, SequentialCorrelatedNoiseCrossesGemmCutoff) {
  // Regression: GenerateNoise must stay record-by-record in sequential
  // mode. Routing it through the batched SampleMatrix would flip the
  // blocked-vs-naive GEMM path with the chunk size (cutoff at
  // rows*m*m ~ 2^20) and silently break bitwise chunk invariance —
  // n=2048 x m=32 puts the one-big-chunk drain past that cutoff.
  const size_t m = 32, n = 2048;
  stats::Rng cov_rng(99);
  const Matrix g = cov_rng.GaussianMatrix(m, m);
  Matrix cov(m, m);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < m; ++j) {
      double dot = 0.0;
      for (size_t k = 0; k < m; ++k) dot += g(i, k) * g(j, k);
      cov(i, j) = dot / m + (i == j ? 1.0 : 0.0);
    }
  }
  auto scheme = perturb::CorrelatedGaussianScheme::Create(cov);
  ASSERT_TRUE(scheme.ok());
  stats::Rng data_rng(1);
  const Matrix data = data_rng.GaussianMatrix(n, m);
  auto make = [&] {
    return PerturbingRecordSource(std::make_unique<MatrixRecordSource>(&data),
                                  &scheme.value(), /*seed=*/5,
                                  GeneratorMode::kSequentialRng);
  };
  PerturbingRecordSource small_chunks = make();
  const Matrix by_64 = Drain(&small_chunks, 64);
  PerturbingRecordSource one_chunk = make();
  const Matrix at_once = Drain(&one_chunk, n);
  EXPECT_EQ(linalg::MaxAbsDifference(by_64, at_once), 0.0);
}

TEST(PerturbingRecordSourceTest, FallsBackWhenSchemeLacksBatchNoise) {
  // A scheme whose marginals cannot batch-sample silently downgrades to
  // the sequential Rng mode and keeps all stream contracts.
  class NoBatchScheme final : public perturb::RandomizationScheme {
   public:
    explicit NoBatchScheme(perturb::IndependentNoiseScheme inner)
        : inner_(std::move(inner)) {}
    size_t num_attributes() const override {
      return inner_.num_attributes();
    }
    linalg::Matrix GenerateNoise(size_t num_records,
                                 stats::Rng* rng) const override {
      return inner_.GenerateNoise(num_records, rng);
    }
    bool SupportsBatchNoise() const override { return false; }
    const perturb::NoiseModel& noise_model() const override {
      return inner_.noise_model();
    }

   private:
    perturb::IndependentNoiseScheme inner_;
  };
  stats::Rng rng(7);
  const Matrix data = rng.GaussianMatrix(120, 2);
  const NoBatchScheme scheme(perturb::IndependentNoiseScheme::Gaussian(2, 0.5));
  PerturbingRecordSource source(std::make_unique<MatrixRecordSource>(&data),
                                &scheme, /*seed=*/2,
                                GeneratorMode::kCounterBatch);
  EXPECT_EQ(source.mode(), GeneratorMode::kSequentialRng);
  const Matrix first = Drain(&source, 11);
  ASSERT_TRUE(source.Reset().ok());
  const Matrix second = Drain(&source, 120);
  EXPECT_EQ(linalg::MaxAbsDifference(first, second), 0.0);
}

TEST(PerturbingRecordSourceTest, MvnPlusNoiseEndToEndInvariance) {
  // The full synthetic attack input — MVN population + independent noise,
  // both on the counter substrate — re-chunks bitwise identically.
  const Matrix covariance = Matrix{{2.0, 0.4}, {0.4, 1.0}};
  const auto scheme = perturb::IndependentNoiseScheme::Gaussian(2, 0.5);
  auto make = [&] {
    auto inner = MvnRecordSource::Create({0.0, 0.0}, covariance, 555,
                                         /*seed=*/31,
                                         GeneratorMode::kCounterBatch);
    EXPECT_TRUE(inner.ok());
    return PerturbingRecordSource(
        std::make_unique<MvnRecordSource>(std::move(inner).value()), &scheme,
        /*seed=*/32, GeneratorMode::kCounterBatch);
  };
  PerturbingRecordSource a = make();
  const Matrix ref = Drain(&a, 64);
  for (size_t chunk : {size_t{1}, size_t{7}, size_t{555}}) {
    PerturbingRecordSource s = make();
    EXPECT_EQ(linalg::MaxAbsDifference(Drain(&s, chunk), ref), 0.0)
        << "chunk " << chunk;
  }
}

}  // namespace
}  // namespace pipeline
}  // namespace randrecon
