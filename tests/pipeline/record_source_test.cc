// Contract tests for the RecordSource adapters: chunking, rewind
// reproducibility, and chunk-size invariance of every stream.

#include "pipeline/record_source.h"

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "linalg/matrix_util.h"
#include "stats/rng.h"

namespace randrecon {
namespace pipeline {
namespace {

using linalg::Matrix;

/// Drains `source` with `chunk_rows`-record reads into one matrix.
Matrix Drain(RecordSource* source, size_t chunk_rows) {
  const size_t m = source->num_attributes();
  Matrix buffer(chunk_rows, m);
  std::vector<double> values;
  size_t n = 0;
  for (;;) {
    auto rows = source->NextChunk(&buffer);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    if (!rows.ok() || rows.value() == 0) break;
    values.insert(values.end(), buffer.data(),
                  buffer.data() + rows.value() * m);
    n += rows.value();
  }
  return Matrix::FromRowMajor(n, m, std::move(values));
}

TEST(MatrixRecordSourceTest, ChunksAndRewinds) {
  stats::Rng rng(1);
  const Matrix data = rng.GaussianMatrix(103, 5);
  MatrixRecordSource source(data);
  EXPECT_EQ(source.num_attributes(), 5u);
  const Matrix first_pass = Drain(&source, 10);
  EXPECT_EQ(linalg::MaxAbsDifference(first_pass, data), 0.0);
  ASSERT_TRUE(source.Reset().ok());
  const Matrix second_pass = Drain(&source, 64);
  EXPECT_EQ(linalg::MaxAbsDifference(second_pass, data), 0.0);
}

TEST(MatrixRecordSourceTest, BorrowedMatrixIsNotCopied) {
  const Matrix data = Matrix{{1.0, 2.0}, {3.0, 4.0}};
  MatrixRecordSource source(&data);
  EXPECT_EQ(linalg::MaxAbsDifference(Drain(&source, 1), data), 0.0);
}

TEST(CsvRecordSourceTest, StreamsWhatFromCsvStringParses) {
  const std::string csv = "a,b\n1.5,2\n3,4\n5,6\n";
  auto source = CsvRecordSource::FromString(csv);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  CsvRecordSource s = std::move(source).value();
  const Matrix streamed = Drain(&s, 2);
  const Matrix parsed = data::FromCsvString(csv).value().records();
  EXPECT_EQ(linalg::MaxAbsDifference(streamed, parsed), 0.0);
  ASSERT_TRUE(s.Reset().ok());
  EXPECT_EQ(linalg::MaxAbsDifference(Drain(&s, 64), parsed), 0.0);
}

TEST(MvnRecordSourceTest, ResetReplaysIdenticalRecords) {
  const Matrix covariance = Matrix{{2.0, 0.5}, {0.5, 1.0}};
  auto source =
      MvnRecordSource::Create({1.0, -1.0}, covariance, 257, /*seed=*/42);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  MvnRecordSource s = std::move(source).value();
  const Matrix first_pass = Drain(&s, 64);
  ASSERT_EQ(first_pass.rows(), 257u);
  ASSERT_TRUE(s.Reset().ok());
  const Matrix second_pass = Drain(&s, 64);
  EXPECT_EQ(linalg::MaxAbsDifference(first_pass, second_pass), 0.0);
}

TEST(MvnRecordSourceTest, StreamIsChunkSizeInvariant) {
  const Matrix covariance = Matrix::Identity(3);
  auto source =
      MvnRecordSource::Create({0.0, 0.0, 0.0}, covariance, 100, /*seed=*/7);
  ASSERT_TRUE(source.ok());
  MvnRecordSource s = std::move(source).value();
  const Matrix by_fives = Drain(&s, 5);
  ASSERT_TRUE(s.Reset().ok());
  const Matrix by_sixty_four = Drain(&s, 64);
  EXPECT_EQ(linalg::MaxAbsDifference(by_fives, by_sixty_four), 0.0);
}

TEST(PerturbingRecordSourceTest, AddsRewindableNoise) {
  stats::Rng rng(3);
  const Matrix data = rng.GaussianMatrix(80, 4);
  const auto scheme = perturb::IndependentNoiseScheme::Gaussian(4, 0.5);
  PerturbingRecordSource source(std::make_unique<MatrixRecordSource>(&data),
                                &scheme, /*seed=*/11);
  const Matrix first_pass = Drain(&source, 17);
  ASSERT_EQ(first_pass.rows(), 80u);
  // Noise actually moved the records...
  EXPECT_GT(linalg::MaxAbsDifference(first_pass, data), 0.0);
  // ...and the disguised stream replays identically after a rewind.
  ASSERT_TRUE(source.Reset().ok());
  const Matrix second_pass = Drain(&source, 33);
  EXPECT_EQ(linalg::MaxAbsDifference(first_pass, second_pass), 0.0);
}

TEST(PerturbingRecordSourceTest, DisguisedStreamIsChunkSizeInvariant) {
  stats::Rng rng(5);
  const Matrix data = rng.GaussianMatrix(60, 3);
  const auto scheme = perturb::IndependentNoiseScheme::Gaussian(3, 1.0);
  PerturbingRecordSource source(std::make_unique<MatrixRecordSource>(&data),
                                &scheme, /*seed=*/13);
  const Matrix one_by_one = Drain(&source, 1);
  ASSERT_TRUE(source.Reset().ok());
  const Matrix all_at_once = Drain(&source, 60);
  EXPECT_EQ(linalg::MaxAbsDifference(one_by_one, all_at_once), 0.0);
}

}  // namespace
}  // namespace pipeline
}  // namespace randrecon
