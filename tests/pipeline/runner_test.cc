// The batch scheduler: submission-order results, per-job failure
// isolation, and agreement with individually-run pipelines.

#include "pipeline/runner.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "data/file_io.h"
#include "data/synthetic.h"
#include "linalg/matrix_util.h"
#include "perturb/schemes.h"
#include "stats/rng.h"

namespace randrecon {
namespace pipeline {
namespace {

using linalg::Matrix;

struct BatchFixture {
  Matrix disguised;
  perturb::NoiseModel noise = perturb::NoiseModel::IndependentGaussian(1, 1.0);
};

BatchFixture MakeBatchFixture() {
  stats::Rng rng(31);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = data::TwoLevelSpectrum(10, 2, 6.0, 0.2);
  auto generated = data::GenerateSpectrumDataset(spec, 400, &rng);
  const auto scheme = perturb::IndependentNoiseScheme::Gaussian(10, 0.5);
  BatchFixture fixture;
  fixture.disguised = generated.value().dataset.records() +
                      scheme.GenerateNoise(400, &rng);
  fixture.noise = scheme.noise_model();
  return fixture;
}

SourceFactory MatrixFactory(const Matrix* records) {
  return [records]() -> Result<std::unique_ptr<RecordSource>> {
    return std::unique_ptr<RecordSource>(
        std::make_unique<MatrixRecordSource>(records));
  };
}

TEST(PipelineRunnerTest, BatchMatchesIndividualRuns) {
  const BatchFixture fixture = MakeBatchFixture();

  std::vector<PipelineJob> jobs(2);
  jobs[0].name = "pca";
  jobs[0].disguised = MatrixFactory(&fixture.disguised);
  jobs[0].noise = fixture.noise;
  jobs[0].attack.attack = StreamingAttack::kPcaDr;
  jobs[0].attack.chunk_rows = 53;
  jobs[0].sink = std::make_shared<CollectChunkSink>(10);
  jobs[1].name = "sf";
  jobs[1].disguised = MatrixFactory(&fixture.disguised);
  jobs[1].noise = fixture.noise;
  jobs[1].attack.attack = StreamingAttack::kSpectralFiltering;
  jobs[1].attack.chunk_rows = 53;
  jobs[1].sink = std::make_shared<CollectChunkSink>(10);

  const auto results = RunPipelineJobs(jobs);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].name, "pca");
  EXPECT_EQ(results[1].name, "sf");
  for (const auto& result : results) {
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_EQ(result.report.num_records, 400u);
    EXPECT_GE(result.elapsed_seconds, 0.0);
  }

  // Each sharded job's output equals a lone pipeline run of the same job.
  for (size_t i = 0; i < jobs.size(); ++i) {
    MatrixRecordSource source(&fixture.disguised);
    CollectChunkSink lone_sink(10);
    const auto lone = StreamingAttackPipeline(jobs[i].attack)
                          .Run(&source, fixture.noise, &lone_sink);
    ASSERT_TRUE(lone.ok());
    const auto* batch_sink =
        static_cast<const CollectChunkSink*>(jobs[i].sink.get());
    EXPECT_EQ(linalg::MaxAbsDifference(batch_sink->ToMatrix(),
                                       lone_sink.ToMatrix()),
              0.0)
        << jobs[i].name;
    EXPECT_EQ(results[i].report.num_components, lone.value().num_components);
  }
}

TEST(PipelineRunnerTest, FailedJobIsIsolated) {
  const BatchFixture fixture = MakeBatchFixture();

  std::vector<PipelineJob> jobs(3);
  jobs[0].name = "ok-before";
  jobs[0].disguised = MatrixFactory(&fixture.disguised);
  jobs[0].noise = fixture.noise;
  jobs[1].name = "broken-source";
  jobs[1].disguised = []() -> Result<std::unique_ptr<RecordSource>> {
    RR_ASSIGN_OR_RETURN(CsvRecordSource source,
                        CsvRecordSource::Open("/nonexistent/reports.csv"));
    return std::unique_ptr<RecordSource>(
        std::make_unique<CsvRecordSource>(std::move(source)));
  };
  jobs[1].noise = fixture.noise;
  jobs[2].name = "ok-after";
  jobs[2].disguised = MatrixFactory(&fixture.disguised);
  jobs[2].noise = fixture.noise;

  const auto results = RunPipelineJobs(jobs);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].status.ok()) << results[0].status.ToString();
  EXPECT_FALSE(results[1].status.ok());
  EXPECT_EQ(results[1].status.code(), StatusCode::kIoError);
  EXPECT_TRUE(results[2].status.ok()) << results[2].status.ToString();
}

TEST(PipelineRunnerTest, ThrowingFactoryIsIsolatedToo) {
  const BatchFixture fixture = MakeBatchFixture();
  std::vector<PipelineJob> jobs(2);
  jobs[0].name = "throws";
  jobs[0].disguised = []() -> Result<std::unique_ptr<RecordSource>> {
    throw std::runtime_error("factory blew up");
  };
  jobs[0].noise = fixture.noise;
  jobs[1].name = "survives";
  jobs[1].disguised = MatrixFactory(&fixture.disguised);
  jobs[1].noise = fixture.noise;

  const auto results = RunPipelineJobs(jobs);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(results[0].status.message().find("factory blew up"),
            std::string::npos);
  EXPECT_TRUE(results[1].status.ok()) << results[1].status.ToString();
}

TEST(PipelineRunnerTest, MissingFactoryFailsCleanly) {
  std::vector<PipelineJob> jobs(1);
  jobs[0].name = "empty";
  const auto results = RunPipelineJobs(jobs);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status.code(), StatusCode::kInvalidArgument);
}

TEST(PipelineRunnerTest, EmptyBatchIsNoOp) {
  EXPECT_TRUE(RunPipelineJobs({}).empty());
}

TEST(PipelineRunnerTest, WorkerCountDoesNotChangeResults) {
  const BatchFixture fixture = MakeBatchFixture();
  auto make_jobs = [&] {
    std::vector<PipelineJob> jobs(4);
    for (size_t i = 0; i < jobs.size(); ++i) {
      jobs[i].name = "job" + std::to_string(i);
      jobs[i].disguised = MatrixFactory(&fixture.disguised);
      jobs[i].noise = fixture.noise;
      jobs[i].attack.attack = i % 2 == 0 ? StreamingAttack::kPcaDr
                                         : StreamingAttack::kSpectralFiltering;
      jobs[i].attack.chunk_rows = 31 + i;
      jobs[i].sink = std::make_shared<CollectChunkSink>(10);
    }
    return jobs;
  };
  auto serial_jobs = make_jobs();
  auto pooled_jobs = make_jobs();
  PipelineRunnerOptions serial;
  serial.num_workers = 1;
  PipelineRunnerOptions pooled;
  pooled.num_workers = 4;
  RunPipelineJobs(serial_jobs, serial);
  RunPipelineJobs(pooled_jobs, pooled);
  for (size_t i = 0; i < serial_jobs.size(); ++i) {
    const auto* a = static_cast<const CollectChunkSink*>(serial_jobs[i].sink.get());
    const auto* b = static_cast<const CollectChunkSink*>(pooled_jobs[i].sink.get());
    EXPECT_EQ(linalg::MaxAbsDifference(a->ToMatrix(), b->ToMatrix()), 0.0)
        << "job " << i;
  }
}

// ---------------------------------------------------------------------------
// Retry policy integration: transient failures retry, deterministic ones
// do not, deadlines cut the schedule short.
// ---------------------------------------------------------------------------

/// A factory that fails with `failure` for the first `failures` calls,
/// then serves `records`. The call counter outlives the lambda so the
/// test can assert how many attempts actually ran.
SourceFactory FlakyFactory(const Matrix* records, int failures,
                           Status failure,
                           std::shared_ptr<std::atomic<int>> calls) {
  return [records, failures, failure,
          calls]() -> Result<std::unique_ptr<RecordSource>> {
    if (calls->fetch_add(1) < failures) return failure;
    return std::unique_ptr<RecordSource>(
        std::make_unique<MatrixRecordSource>(records));
  };
}

RetryPolicy FastRetries(int max_attempts) {
  RetryPolicy retry;
  retry.max_attempts = max_attempts;
  retry.initial_backoff_seconds = 0.0;  // Tests should not sleep.
  retry.jitter_fraction = 0.0;
  return retry;
}

TEST(PipelineRunnerRetryTest, TransientFailureRetriesToSuccess) {
  const BatchFixture fixture = MakeBatchFixture();
  auto calls = std::make_shared<std::atomic<int>>(0);
  std::vector<PipelineJob> jobs(1);
  jobs[0].name = "flaky";
  jobs[0].noise = fixture.noise;
  jobs[0].disguised = FlakyFactory(&fixture.disguised, 2,
                                   Status::Unavailable("shard busy"), calls);
  jobs[0].retry = FastRetries(5);

  const auto results = RunPipelineJobs(jobs);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].status.ok()) << results[0].status.ToString();
  EXPECT_EQ(results[0].attempts, 3);
  EXPECT_EQ(calls->load(), 3);
  EXPECT_EQ(results[0].report.num_records, 400u);
}

TEST(PipelineRunnerRetryTest, DeterministicFailureIsNotRetried) {
  const BatchFixture fixture = MakeBatchFixture();
  auto calls = std::make_shared<std::atomic<int>>(0);
  std::vector<PipelineJob> jobs(1);
  jobs[0].name = "malformed";
  jobs[0].noise = fixture.noise;
  jobs[0].disguised = FlakyFactory(
      &fixture.disguised, 100, Status::InvalidArgument("bad schema"), calls);
  jobs[0].retry = FastRetries(5);

  const auto results = RunPipelineJobs(jobs);
  EXPECT_EQ(results[0].status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(results[0].attempts, 1);
  EXPECT_EQ(calls->load(), 1);
}

TEST(PipelineRunnerRetryTest, AttemptExhaustionReportsTheLastError) {
  const BatchFixture fixture = MakeBatchFixture();
  auto calls = std::make_shared<std::atomic<int>>(0);
  std::vector<PipelineJob> jobs(1);
  jobs[0].name = "always-down";
  jobs[0].noise = fixture.noise;
  jobs[0].disguised = FlakyFactory(&fixture.disguised, 100,
                                   Status::Unavailable("still down"), calls);
  jobs[0].retry = FastRetries(3);

  const auto results = RunPipelineJobs(jobs);
  EXPECT_EQ(results[0].status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(results[0].attempts, 3);
  EXPECT_EQ(calls->load(), 3);
}

TEST(PipelineRunnerRetryTest, DeadlineCutsTheScheduleShort) {
  const BatchFixture fixture = MakeBatchFixture();
  auto calls = std::make_shared<std::atomic<int>>(0);
  std::vector<PipelineJob> jobs(1);
  jobs[0].name = "deadline";
  jobs[0].noise = fixture.noise;
  jobs[0].disguised = FlakyFactory(&fixture.disguised, 1000,
                                   Status::Unavailable("still down"), calls);
  jobs[0].retry.max_attempts = 1000;
  jobs[0].retry.initial_backoff_seconds = 0.02;
  jobs[0].retry.backoff_multiplier = 1.0;
  jobs[0].retry.jitter_fraction = 0.0;
  jobs[0].retry.deadline_seconds = 0.05;

  const auto results = RunPipelineJobs(jobs);
  EXPECT_EQ(results[0].status.code(), StatusCode::kDeadlineExceeded);
  // The wrapped message keeps the underlying failure visible.
  EXPECT_NE(results[0].status.message().find("still down"), std::string::npos)
      << results[0].status.ToString();
  EXPECT_GE(results[0].attempts, 1);
  EXPECT_LT(results[0].attempts, 1000);
}

TEST(PipelineRunnerRetryTest, DefaultPolicyPreservesSingleAttemptSemantics) {
  const BatchFixture fixture = MakeBatchFixture();
  std::vector<PipelineJob> jobs(1);
  jobs[0].name = "default";
  jobs[0].noise = fixture.noise;
  jobs[0].disguised = MatrixFactory(&fixture.disguised);
  const auto results = RunPipelineJobs(jobs);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_EQ(results[0].attempts, 1);
}

// ---------------------------------------------------------------------------
// Telemetry: the runner's counters are exact for single-threaded batches
// (common/metrics.h determinism contract). The instruments live in the
// runner's anonymous namespace, so the tests read them back by name.
// ---------------------------------------------------------------------------

uint64_t CounterByName(const char* name) {
  for (const metrics::CounterSnapshot& c : metrics::Snapshot().counters) {
    if (c.name == name) return c.value;
  }
  ADD_FAILURE() << "no counter named " << name;
  return 0;
}

uint64_t HistogramCountByName(const char* name) {
  for (const metrics::HistogramSnapshot& h : metrics::Snapshot().histograms) {
    if (h.name == name) return h.count;
  }
  ADD_FAILURE() << "no histogram named " << name;
  return 0;
}

TEST(PipelineRunnerMetricsTest, SingleWorkerBatchPinsTheCounters) {
  metrics::ResetAllMetrics();
  const BatchFixture fixture = MakeBatchFixture();
  auto flaky_calls = std::make_shared<std::atomic<int>>(0);
  auto broken_calls = std::make_shared<std::atomic<int>>(0);

  std::vector<PipelineJob> jobs(3);
  jobs[0].name = "clean";
  jobs[0].noise = fixture.noise;
  jobs[0].disguised = MatrixFactory(&fixture.disguised);
  jobs[1].name = "flaky-once";
  jobs[1].noise = fixture.noise;
  jobs[1].disguised = FlakyFactory(&fixture.disguised, 1,
                                   Status::Unavailable("blip"), flaky_calls);
  jobs[1].retry = FastRetries(5);
  jobs[2].name = "broken";
  jobs[2].noise = fixture.noise;
  jobs[2].disguised = FlakyFactory(
      &fixture.disguised, 100, Status::InvalidArgument("bad"), broken_calls);
  jobs[2].retry = FastRetries(5);

  PipelineRunnerOptions serial;
  serial.num_workers = 1;
  const auto results = RunPipelineJobs(jobs, serial);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_TRUE(results[1].status.ok());
  EXPECT_FALSE(results[2].status.ok());

  // Every job counted once; the flaky job's single retry is the only one.
  EXPECT_EQ(CounterByName("pipeline.jobs_run"), 3u);
  EXPECT_EQ(CounterByName("pipeline.jobs_ok"), 2u);
  EXPECT_EQ(CounterByName("pipeline.jobs_failed"), 1u);
  EXPECT_EQ(CounterByName("pipeline.job_retries"), 1u);
  EXPECT_EQ(CounterByName("pipeline.deadline_exceeded"), 0u);
  EXPECT_EQ(HistogramCountByName("pipeline.job_wall_nanos"), 3u);
}

TEST(PipelineRunnerMetricsTest, ThrowingJobStillCountsAsFailed) {
  metrics::ResetAllMetrics();
  std::vector<PipelineJob> jobs(1);
  jobs[0].name = "throws";
  jobs[0].disguised = []() -> Result<std::unique_ptr<RecordSource>> {
    throw std::runtime_error("boom");
  };
  const auto results = RunPipelineJobs(jobs);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].status.ok());
  EXPECT_EQ(CounterByName("pipeline.jobs_run"), 1u);
  EXPECT_EQ(CounterByName("pipeline.jobs_ok"), 0u);
  EXPECT_EQ(CounterByName("pipeline.jobs_failed"), 1u);
  // The wall-clock span closes during unwinding, so the histogram still
  // holds one sample for the aborted job.
  EXPECT_EQ(HistogramCountByName("pipeline.job_wall_nanos"), 1u);
}

// ---------------------------------------------------------------------------
// Degraded per-shard decomposition: a partially-usable store sweeps its
// healthy shards and names exactly what it skipped.
// ---------------------------------------------------------------------------

class DegradedSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fixture_ = MakeBatchFixture();
    data::ShardedStoreOptions options;
    options.shard_rows = 100;  // 400 records -> 4 shards.
    auto created = data::ShardedStoreWriter::Create(
        kManifestPath, Names(fixture_.disguised.cols()), options);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    data::ShardedStoreWriter writer = std::move(created).value();
    ASSERT_TRUE(writer.Append(fixture_.disguised, 400).ok());
    ASSERT_TRUE(writer.Close().ok());
  }

  void TearDown() override { data::RemoveShardedStoreFiles(kManifestPath); }

  static std::vector<std::string> Names(size_t m) {
    std::vector<std::string> names;
    for (size_t j = 0; j < m; ++j) names.push_back("a" + std::to_string(j));
    return names;
  }

  PipelineJob Prototype() const {
    PipelineJob prototype;
    prototype.name = "sweep";
    prototype.noise = fixture_.noise;
    return prototype;
  }

  static constexpr const char* kManifestPath = "runner_test_degraded.rrcm";
  BatchFixture fixture_;
};

TEST_F(DegradedSweepTest, HealthyStoreYieldsTheFullJobSet) {
  auto job_set = MakePerShardJobsDegraded(kManifestPath, Prototype());
  ASSERT_TRUE(job_set.ok()) << job_set.status().ToString();
  EXPECT_EQ(job_set.value().jobs.size(), 4u);
  EXPECT_FALSE(job_set.value().degraded());
  EXPECT_EQ(job_set.value().DegradedSummary(), "");
  EXPECT_EQ(job_set.value().total_shards, 4u);
  EXPECT_EQ(job_set.value().total_rows, 400u);
}

TEST_F(DegradedSweepTest, QuarantinedShardIsSkippedAndNamed) {
  // Quarantine shard 1 the way store recovery does: rename it aside.
  const std::string shard1 =
      data::ShardFileName(data::ShardStemForManifest(kManifestPath), 1);
  ASSERT_EQ(std::rename(
                shard1.c_str(),
                (shard1 + data::kQuarantineFileSuffix).c_str()),
            0);

  auto job_set = MakePerShardJobsDegraded(kManifestPath, Prototype());
  ASSERT_TRUE(job_set.ok()) << job_set.status().ToString();
  const PerShardJobSet& set = job_set.value();
  ASSERT_EQ(set.jobs.size(), 3u);
  ASSERT_EQ(set.shard_of_job.size(), 3u);
  EXPECT_EQ(set.shard_of_job[0], 0u);
  EXPECT_EQ(set.shard_of_job[1], 2u);
  EXPECT_EQ(set.shard_of_job[2], 3u);
  EXPECT_TRUE(set.degraded());
  ASSERT_EQ(set.excluded.size(), 1u);
  EXPECT_EQ(set.excluded[0].shard_index, 1u);
  EXPECT_EQ(set.excluded[0].shard_path, shard1);
  EXPECT_EQ(set.excluded[0].row_begin, 100u);
  EXPECT_EQ(set.excluded[0].row_count, 100u);
  EXPECT_NE(set.excluded[0].reason.find("quarantined"), std::string::npos)
      << set.excluded[0].reason;
  EXPECT_EQ(set.excluded_rows, 100u);

  // The summary names the shard, its span and the coverage shortfall.
  const std::string summary = set.DegradedSummary();
  EXPECT_NE(summary.find("1 of 4 shards"), std::string::npos) << summary;
  EXPECT_NE(summary.find("100 of 400 rows"), std::string::npos) << summary;
  EXPECT_NE(summary.find(shard1), std::string::npos) << summary;
  EXPECT_NE(summary.find("rows [100, 200)"), std::string::npos) << summary;

  // The surviving jobs run to completion — the batch is degraded, not
  // broken.
  const auto results = RunPipelineJobs(set.jobs);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& result : results) {
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_EQ(result.report.num_records, 100u);
  }
}

TEST_F(DegradedSweepTest, CorruptShardIsExcludedByItsProbe) {
  // Flip a bit of shard 2's final stored block hash: the seal digest
  // (which hashes the stored block hashes) no longer matches the
  // manifest, so the probe excludes the shard up front.
  const std::string shard2 =
      data::ShardFileName(data::ShardStemForManifest(kManifestPath), 2);
  {
    std::fstream file(shard2,
                      std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.is_open());
    file.seekg(-4, std::ios::end);  // Inside the final block's checksum.
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(-4, std::ios::end);
    byte = static_cast<char>(byte ^ 0x1);
    file.write(&byte, 1);
  }
  auto job_set = MakePerShardJobsDegraded(kManifestPath, Prototype());
  ASSERT_TRUE(job_set.ok()) << job_set.status().ToString();
  EXPECT_EQ(job_set.value().jobs.size(), 3u);
  ASSERT_EQ(job_set.value().excluded.size(), 1u);
  EXPECT_EQ(job_set.value().excluded[0].shard_index, 2u);
}

TEST_F(DegradedSweepTest, ProbeTelemetryCountsEveryShardOnce) {
  metrics::ResetAllMetrics();
  const std::string shard1 =
      data::ShardFileName(data::ShardStemForManifest(kManifestPath), 1);
  ASSERT_EQ(std::rename(
                shard1.c_str(),
                (shard1 + data::kQuarantineFileSuffix).c_str()),
            0);
  auto job_set = MakePerShardJobsDegraded(kManifestPath, Prototype());
  ASSERT_TRUE(job_set.ok()) << job_set.status().ToString();
  EXPECT_EQ(CounterByName("pipeline.shard_probes"), 4u);
  EXPECT_EQ(CounterByName("pipeline.shards_excluded"), 1u);
}

TEST_F(DegradedSweepTest, UnreadableManifestFailsTheDecomposition) {
  EXPECT_FALSE(
      MakePerShardJobsDegraded("/nonexistent/x.rrcm", Prototype()).ok());
}

}  // namespace
}  // namespace pipeline
}  // namespace randrecon
