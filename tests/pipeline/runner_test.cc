// The batch scheduler: submission-order results, per-job failure
// isolation, and agreement with individually-run pipelines.

#include "pipeline/runner.h"

#include <memory>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "linalg/matrix_util.h"
#include "perturb/schemes.h"
#include "stats/rng.h"

namespace randrecon {
namespace pipeline {
namespace {

using linalg::Matrix;

struct BatchFixture {
  Matrix disguised;
  perturb::NoiseModel noise = perturb::NoiseModel::IndependentGaussian(1, 1.0);
};

BatchFixture MakeBatchFixture() {
  stats::Rng rng(31);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = data::TwoLevelSpectrum(10, 2, 6.0, 0.2);
  auto generated = data::GenerateSpectrumDataset(spec, 400, &rng);
  const auto scheme = perturb::IndependentNoiseScheme::Gaussian(10, 0.5);
  BatchFixture fixture;
  fixture.disguised = generated.value().dataset.records() +
                      scheme.GenerateNoise(400, &rng);
  fixture.noise = scheme.noise_model();
  return fixture;
}

SourceFactory MatrixFactory(const Matrix* records) {
  return [records]() -> Result<std::unique_ptr<RecordSource>> {
    return std::unique_ptr<RecordSource>(
        std::make_unique<MatrixRecordSource>(records));
  };
}

TEST(PipelineRunnerTest, BatchMatchesIndividualRuns) {
  const BatchFixture fixture = MakeBatchFixture();

  std::vector<PipelineJob> jobs(2);
  jobs[0].name = "pca";
  jobs[0].disguised = MatrixFactory(&fixture.disguised);
  jobs[0].noise = fixture.noise;
  jobs[0].attack.attack = StreamingAttack::kPcaDr;
  jobs[0].attack.chunk_rows = 53;
  jobs[0].sink = std::make_shared<CollectChunkSink>(10);
  jobs[1].name = "sf";
  jobs[1].disguised = MatrixFactory(&fixture.disguised);
  jobs[1].noise = fixture.noise;
  jobs[1].attack.attack = StreamingAttack::kSpectralFiltering;
  jobs[1].attack.chunk_rows = 53;
  jobs[1].sink = std::make_shared<CollectChunkSink>(10);

  const auto results = RunPipelineJobs(jobs);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].name, "pca");
  EXPECT_EQ(results[1].name, "sf");
  for (const auto& result : results) {
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_EQ(result.report.num_records, 400u);
    EXPECT_GE(result.elapsed_seconds, 0.0);
  }

  // Each sharded job's output equals a lone pipeline run of the same job.
  for (size_t i = 0; i < jobs.size(); ++i) {
    MatrixRecordSource source(&fixture.disguised);
    CollectChunkSink lone_sink(10);
    const auto lone = StreamingAttackPipeline(jobs[i].attack)
                          .Run(&source, fixture.noise, &lone_sink);
    ASSERT_TRUE(lone.ok());
    const auto* batch_sink =
        static_cast<const CollectChunkSink*>(jobs[i].sink.get());
    EXPECT_EQ(linalg::MaxAbsDifference(batch_sink->ToMatrix(),
                                       lone_sink.ToMatrix()),
              0.0)
        << jobs[i].name;
    EXPECT_EQ(results[i].report.num_components, lone.value().num_components);
  }
}

TEST(PipelineRunnerTest, FailedJobIsIsolated) {
  const BatchFixture fixture = MakeBatchFixture();

  std::vector<PipelineJob> jobs(3);
  jobs[0].name = "ok-before";
  jobs[0].disguised = MatrixFactory(&fixture.disguised);
  jobs[0].noise = fixture.noise;
  jobs[1].name = "broken-source";
  jobs[1].disguised = []() -> Result<std::unique_ptr<RecordSource>> {
    RR_ASSIGN_OR_RETURN(CsvRecordSource source,
                        CsvRecordSource::Open("/nonexistent/reports.csv"));
    return std::unique_ptr<RecordSource>(
        std::make_unique<CsvRecordSource>(std::move(source)));
  };
  jobs[1].noise = fixture.noise;
  jobs[2].name = "ok-after";
  jobs[2].disguised = MatrixFactory(&fixture.disguised);
  jobs[2].noise = fixture.noise;

  const auto results = RunPipelineJobs(jobs);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].status.ok()) << results[0].status.ToString();
  EXPECT_FALSE(results[1].status.ok());
  EXPECT_EQ(results[1].status.code(), StatusCode::kIoError);
  EXPECT_TRUE(results[2].status.ok()) << results[2].status.ToString();
}

TEST(PipelineRunnerTest, ThrowingFactoryIsIsolatedToo) {
  const BatchFixture fixture = MakeBatchFixture();
  std::vector<PipelineJob> jobs(2);
  jobs[0].name = "throws";
  jobs[0].disguised = []() -> Result<std::unique_ptr<RecordSource>> {
    throw std::runtime_error("factory blew up");
  };
  jobs[0].noise = fixture.noise;
  jobs[1].name = "survives";
  jobs[1].disguised = MatrixFactory(&fixture.disguised);
  jobs[1].noise = fixture.noise;

  const auto results = RunPipelineJobs(jobs);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(results[0].status.message().find("factory blew up"),
            std::string::npos);
  EXPECT_TRUE(results[1].status.ok()) << results[1].status.ToString();
}

TEST(PipelineRunnerTest, MissingFactoryFailsCleanly) {
  std::vector<PipelineJob> jobs(1);
  jobs[0].name = "empty";
  const auto results = RunPipelineJobs(jobs);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status.code(), StatusCode::kInvalidArgument);
}

TEST(PipelineRunnerTest, EmptyBatchIsNoOp) {
  EXPECT_TRUE(RunPipelineJobs({}).empty());
}

TEST(PipelineRunnerTest, WorkerCountDoesNotChangeResults) {
  const BatchFixture fixture = MakeBatchFixture();
  auto make_jobs = [&] {
    std::vector<PipelineJob> jobs(4);
    for (size_t i = 0; i < jobs.size(); ++i) {
      jobs[i].name = "job" + std::to_string(i);
      jobs[i].disguised = MatrixFactory(&fixture.disguised);
      jobs[i].noise = fixture.noise;
      jobs[i].attack.attack = i % 2 == 0 ? StreamingAttack::kPcaDr
                                         : StreamingAttack::kSpectralFiltering;
      jobs[i].attack.chunk_rows = 31 + i;
      jobs[i].sink = std::make_shared<CollectChunkSink>(10);
    }
    return jobs;
  };
  auto serial_jobs = make_jobs();
  auto pooled_jobs = make_jobs();
  PipelineRunnerOptions serial;
  serial.num_workers = 1;
  PipelineRunnerOptions pooled;
  pooled.num_workers = 4;
  RunPipelineJobs(serial_jobs, serial);
  RunPipelineJobs(pooled_jobs, pooled);
  for (size_t i = 0; i < serial_jobs.size(); ++i) {
    const auto* a = static_cast<const CollectChunkSink*>(serial_jobs[i].sink.get());
    const auto* b = static_cast<const CollectChunkSink*>(pooled_jobs[i].sink.get());
    EXPECT_EQ(linalg::MaxAbsDifference(a->ToMatrix(), b->ToMatrix()), 0.0)
        << "job " << i;
  }
}

}  // namespace
}  // namespace pipeline
}  // namespace randrecon
