// AttackScheduler (src/pipeline/attack_scheduler.h): trigger evaluation
// on the injected clock (zero sleeps — every fake-clock test drives
// Tick() directly), the bitwise contract against a direct pipeline run,
// crash-safe report-series versioning at the publish seam, retention,
// restart recovery, and a live concurrent ingest + scheduler run (built
// with the rest of pipeline_ under the thread-sanitize CI job).

#include "pipeline/attack_scheduler.h"

#include <dirent.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/trace.h"
#include "data/rolling_store.h"
#include "data/shard_store.h"
#include "pipeline/chunk_sink.h"
#include "pipeline/record_source.h"
#include "stats/rng.h"

namespace randrecon {
namespace pipeline {
namespace {

using linalg::Matrix;

constexpr size_t kCols = 4;
constexpr size_t kShardRows = 40;
constexpr double kSigma = 0.5;

std::vector<std::string> Names() { return {"a", "b", "c", "d"}; }

data::ColumnStoreReadOptions SerialReadOptions() {
  data::ColumnStoreReadOptions options;
  options.parallel.num_threads = 1;
  return options;
}

/// Deterministic disguised records — shard `index` of every test store.
Matrix ShardRecords(size_t index) {
  stats::Rng rng(777 + index);
  return rng.GaussianMatrix(kShardRows, kCols);
}

/// Publishes `shards` full shards at `manifest_path`.
void PublishShards(const std::string& manifest_path, size_t shards,
                   size_t retain_shards = 0) {
  data::RollingStoreOptions options;
  options.shard_rows = kShardRows;
  options.block_rows = 16;
  options.retain_shards = retain_shards;
  auto created = data::RollingShardedStoreWriter::Create(manifest_path,
                                                         Names(), options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  data::RollingShardedStoreWriter writer = std::move(created).value();
  for (size_t s = 0; s < shards; ++s) {
    const Matrix records = ShardRecords(s);
    ASSERT_TRUE(writer.Append(records, kShardRows).ok());
  }
  ASSERT_TRUE(writer.Close().ok());
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

std::string SlurpFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  std::stringstream content;
  content << file.rdbuf();
  return content.str();
}

void RemoveReportDir(const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return;
  while (struct dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    std::remove((dir + "/" + name).c_str());
  }
  ::closedir(handle);
  ::rmdir(dir.c_str());
}

AttackSchedulerOptions BaseOptions(const std::string& report_dir) {
  AttackSchedulerOptions options;
  options.sigma = kSigma;
  options.attack.chunk_rows = 64;  // Chunking never changes numbers.
  options.attack.parallel.num_threads = 1;
  options.report_dir = report_dir;
  options.num_workers = 1;
  options.store_options = SerialReadOptions();
  return options;
}

class AttackSchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DisarmAllFailpoints();
    data::RemoveShardedStoreFiles(kManifest);
    RemoveReportDir(kReports);
  }
  void TearDown() override {
    DisarmAllFailpoints();
    data::RemoveShardedStoreFiles(kManifest);
    RemoveReportDir(kReports);
  }
  static constexpr const char* kManifest = "attack_scheduler_test.rrcm";
  static constexpr const char* kReports = "attack_scheduler_test_reports";
};

TEST_F(AttackSchedulerTest, CreateValidatesOptions) {
  AttackSchedulerOptions no_dir = BaseOptions("");
  EXPECT_EQ(AttackScheduler::Create(kManifest, no_dir).status().code(),
            StatusCode::kInvalidArgument);
  AttackSchedulerOptions bad_sigma = BaseOptions(kReports);
  bad_sigma.sigma = 0.0;
  EXPECT_EQ(AttackScheduler::Create(kManifest, bad_sigma).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(AttackSchedulerTest, CadenceTriggerAndWarmupSkipsOnTheFakeClock) {
  trace::FakeClockGuard clock(0);
  AttackSchedulerOptions options = BaseOptions(kReports);
  options.cadence_nanos = 100;
  auto created = AttackScheduler::Create(kManifest, options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  AttackScheduler& scheduler = *created.value();
  // The first Tick is immediately due; no manifest is published yet, so
  // the cycle is skipped WITH a cause (normal warm-up).
  SchedulerCycleResult result = scheduler.Tick();
  EXPECT_EQ(result.outcome, CycleOutcome::kSkippedNoManifest);
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(scheduler.skipped_no_manifest(), 1u);
  // Not due again until the cadence elapses.
  EXPECT_EQ(scheduler.Tick().outcome, CycleOutcome::kNotDue);
  clock.Advance(99);
  EXPECT_EQ(scheduler.Tick().outcome, CycleOutcome::kNotDue);
  clock.Advance(1);
  EXPECT_EQ(scheduler.Tick().outcome, CycleOutcome::kSkippedNoManifest);
  EXPECT_EQ(scheduler.overruns(), 0u);
  // Skipped cycles consume no version and publish nothing.
  EXPECT_EQ(scheduler.reports_published(), 0u);
  EXPECT_EQ(scheduler.next_version(), 1u);
  EXPECT_EQ(scheduler.cycles(), 0u);  // Attacked cycles only.
}

TEST_F(AttackSchedulerTest, OverrunsCountMissedCadenceSlots) {
  trace::FakeClockGuard clock(0);
  PublishShards(kManifest, 2);
  AttackSchedulerOptions options = BaseOptions(kReports);
  options.cadence_nanos = 100;
  auto created = AttackScheduler::Create(kManifest, options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  AttackScheduler& scheduler = *created.value();
  SchedulerCycleResult first = scheduler.Tick();
  ASSERT_EQ(first.outcome, CycleOutcome::kOk) << first.status.ToString();
  EXPECT_EQ(first.version, 1u);
  // Sleep through slots at 100, 200, 300; wake inside the 400 slot:
  // the slot being served is not an overrun, the three missed are.
  clock.Advance(450);
  SchedulerCycleResult late = scheduler.Tick();
  EXPECT_EQ(late.outcome, CycleOutcome::kSkippedUnchanged);
  EXPECT_EQ(scheduler.overruns(), 3u);
  // The anchor advanced to 500 — no catch-up burst.
  EXPECT_EQ(scheduler.Tick().outcome, CycleOutcome::kNotDue);
  clock.Advance(50);
  EXPECT_EQ(scheduler.Tick().outcome, CycleOutcome::kSkippedUnchanged);
  EXPECT_EQ(scheduler.overruns(), 3u);
}

TEST_F(AttackSchedulerTest, RowsTriggerFiresOnPublishedGrowth) {
  trace::FakeClockGuard clock(0);
  data::RollingStoreOptions store_options;
  store_options.shard_rows = kShardRows;
  store_options.block_rows = 16;
  auto writer_created = data::RollingShardedStoreWriter::Create(
      kManifest, Names(), store_options);
  ASSERT_TRUE(writer_created.ok());
  data::RollingShardedStoreWriter writer = std::move(writer_created).value();
  ASSERT_TRUE(writer.Append(ShardRecords(0), kShardRows).ok());

  AttackSchedulerOptions options = BaseOptions(kReports);
  options.min_new_rows = kShardRows;  // No cadence: growth-only trigger.
  auto created = AttackScheduler::Create(kManifest, options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  AttackScheduler& scheduler = *created.value();
  // With no previous report, any published manifest is new rows.
  SchedulerCycleResult first = scheduler.Tick();
  ASSERT_EQ(first.outcome, CycleOutcome::kOk) << first.status.ToString();
  EXPECT_EQ(first.snapshot_rows, kShardRows);
  EXPECT_EQ(first.rows_since_last_report,
            static_cast<int64_t>(kShardRows));
  // No growth, no trigger — the unchanged-snapshot skip is never even
  // reached.
  EXPECT_EQ(scheduler.Tick().outcome, CycleOutcome::kNotDue);
  EXPECT_EQ(scheduler.skipped_unchanged(), 0u);
  // One more published shard fires it.
  ASSERT_TRUE(writer.Append(ShardRecords(1), kShardRows).ok());
  SchedulerCycleResult second = scheduler.Tick();
  ASSERT_EQ(second.outcome, CycleOutcome::kOk) << second.status.ToString();
  EXPECT_EQ(second.version, 2u);
  EXPECT_EQ(second.snapshot_rows, 2 * kShardRows);
  EXPECT_EQ(second.rows_since_last_report,
            static_cast<int64_t>(kShardRows));
  ASSERT_TRUE(writer.Close().ok());
}

TEST_F(AttackSchedulerTest, CycleOutputIsBitwiseEqualToADirectPipelineRun) {
  PublishShards(kManifest, 3);
  AttackSchedulerOptions options = BaseOptions(kReports);
  auto created = AttackScheduler::Create(kManifest, options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  SchedulerCycleResult result = created.value()->RunCycleNow();
  ASSERT_EQ(result.outcome, CycleOutcome::kOk) << result.status.ToString();

  // The same attack, run directly over the same manifest with the same
  // noise model — the scheduler's scheduling must be invisible in the
  // numbers.
  auto opened = ShardedRecordSource::Open(kManifest, SerialReadOptions());
  ASSERT_TRUE(opened.ok());
  ShardedRecordSource source = std::move(opened).value();
  const perturb::NoiseModel noise =
      perturb::NoiseModel::IndependentGaussian(kCols, kSigma);
  NullChunkSink sink;
  StreamingAttackPipeline pipeline(options.attack);
  auto direct = pipeline.Run(&source, noise, &sink);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  EXPECT_EQ(result.report.num_records, direct.value().num_records);
  EXPECT_EQ(result.report.num_components, direct.value().num_components);
  ASSERT_EQ(result.report.eigenvalues.size(),
            direct.value().eigenvalues.size());
  EXPECT_EQ(std::memcmp(result.report.eigenvalues.data(),
                        direct.value().eigenvalues.data(),
                        direct.value().eigenvalues.size() * sizeof(double)),
            0)
      << "scheduled eigenvalues are not bitwise equal to the direct run";
  ASSERT_EQ(result.report.mean.size(), direct.value().mean.size());
  EXPECT_EQ(std::memcmp(result.report.mean.data(),
                        direct.value().mean.data(),
                        direct.value().mean.size() * sizeof(double)),
            0);
  const double scheduled_rmse = result.report.rmse_vs_disguised;
  const double direct_rmse = direct.value().rmse_vs_disguised;
  EXPECT_EQ(std::memcmp(&scheduled_rmse, &direct_rmse, sizeof(double)), 0);

  // And the published report names the snapshot it attacked: the
  // manifest's own trailing hash.
  auto manifest = data::ReadShardManifest(kManifest);
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(result.manifest_hash, manifest.value().manifest_hash);
  const std::string report = SlurpFile(result.report_path);
  EXPECT_NE(report.find("\"manifest_hash\":\"" +
                        data::ManifestHashHex(result.manifest_hash) + "\""),
            std::string::npos);
}

TEST_F(AttackSchedulerTest, SeriesStateSurvivesARestart) {
  trace::FakeClockGuard clock(0);
  PublishShards(kManifest, 2);
  AttackSchedulerOptions options = BaseOptions(kReports);
  {
    auto created = AttackScheduler::Create(kManifest, options);
    ASSERT_TRUE(created.ok());
    SchedulerCycleResult first = created.value()->RunCycleNow();
    ASSERT_EQ(first.outcome, CycleOutcome::kOk) << first.status.ToString();
    EXPECT_EQ(first.version, 1u);
  }
  // A new instance (fresh process, same directory) resumes the series:
  // version counter, unchanged-skip hash and row-delta chain all
  // recover from the published files.
  auto recreated = AttackScheduler::Create(kManifest, options);
  ASSERT_TRUE(recreated.ok()) << recreated.status().ToString();
  AttackScheduler& scheduler = *recreated.value();
  EXPECT_EQ(scheduler.next_version(), 2u);
  EXPECT_EQ(scheduler.last_published_version(), 1u);
  EXPECT_EQ(scheduler.RunCycleNow().outcome, CycleOutcome::kSkippedUnchanged);
  // Rebuild the store with one more shard (fresh writer, same path).
  data::RemoveShardedStoreFiles(kManifest);
  PublishShards(kManifest, 3);
  SchedulerCycleResult second = scheduler.RunCycleNow();
  ASSERT_EQ(second.outcome, CycleOutcome::kOk) << second.status.ToString();
  EXPECT_EQ(second.version, 2u);
  EXPECT_EQ(second.rows_since_last_report, static_cast<int64_t>(kShardRows));
  // The published chain agrees.
  const std::string report = SlurpFile(second.report_path);
  EXPECT_NE(report.find("\"prev_version\":1"), std::string::npos);
  EXPECT_NE(report.find("\"prev_rows\":" + std::to_string(2 * kShardRows)),
            std::string::npos);
}

TEST_F(AttackSchedulerTest, PublishFailureConsumesNoVersion) {
  PublishShards(kManifest, 2);
  AttackSchedulerOptions options = BaseOptions(kReports);
  options.attack_unchanged = true;  // Re-attack the same snapshot.
  auto created = AttackScheduler::Create(kManifest, options);
  ASSERT_TRUE(created.ok());
  AttackScheduler& scheduler = *created.value();
  ASSERT_TRUE(ArmFailpoint("sched.publish", FailpointAction::kError).ok());
  SchedulerCycleResult failed = scheduler.RunCycleNow();
  DisarmAllFailpoints();
  EXPECT_EQ(failed.outcome, CycleOutcome::kFailed);
  EXPECT_FALSE(failed.status.ok());
  EXPECT_EQ(failed.version, 0u);
  EXPECT_EQ(scheduler.reports_published(), 0u);
  EXPECT_EQ(scheduler.cycles_failed(), 1u);
  EXPECT_EQ(scheduler.next_version(), 1u);
  EXPECT_FALSE(FileExists(std::string(kReports) + "/" +
                          AttackScheduler::ReportFileName(1)));
  // The version the failed cycle did NOT consume is the next publish.
  SchedulerCycleResult ok = scheduler.RunCycleNow();
  ASSERT_EQ(ok.outcome, CycleOutcome::kOk) << ok.status.ToString();
  EXPECT_EQ(ok.version, 1u);
  EXPECT_EQ(scheduler.cycles(), 2u);
  EXPECT_EQ(scheduler.cycles_ok(), 1u);
}

TEST_F(AttackSchedulerTest, LatestPointerFailureIsNonFatalAndRepaired) {
  PublishShards(kManifest, 2);
  AttackSchedulerOptions options = BaseOptions(kReports);
  auto created = AttackScheduler::Create(kManifest, options);
  ASSERT_TRUE(created.ok());
  std::unique_ptr<AttackScheduler> scheduler = std::move(created).value();
  ASSERT_TRUE(ArmFailpoint("sched.latest", FailpointAction::kError).ok());
  SchedulerCycleResult result = scheduler->RunCycleNow();
  DisarmAllFailpoints();
  // The report published — a stale derived pointer never fails a cycle.
  ASSERT_EQ(result.outcome, CycleOutcome::kOk) << result.status.ToString();
  const std::string latest = std::string(kReports) + "/latest.json";
  EXPECT_FALSE(FileExists(latest));
  // Create on the same directory repairs the pointer.
  scheduler.reset();
  auto recreated = AttackScheduler::Create(kManifest, options);
  ASSERT_TRUE(recreated.ok());
  ASSERT_TRUE(FileExists(latest));
  EXPECT_NE(SlurpFile(latest).find("\"version\":1"), std::string::npos);
}

TEST_F(AttackSchedulerTest, RetentionKeepsTheNewestReports) {
  PublishShards(kManifest, 2);
  AttackSchedulerOptions options = BaseOptions(kReports);
  options.attack_unchanged = true;
  options.retain_reports = 2;
  auto created = AttackScheduler::Create(kManifest, options);
  ASSERT_TRUE(created.ok());
  AttackScheduler& scheduler = *created.value();
  for (uint64_t version = 1; version <= 3; ++version) {
    SchedulerCycleResult result = scheduler.RunCycleNow();
    ASSERT_EQ(result.outcome, CycleOutcome::kOk) << result.status.ToString();
    ASSERT_EQ(result.version, version);
  }
  const std::string dir(kReports);
  EXPECT_FALSE(FileExists(dir + "/" + AttackScheduler::ReportFileName(1)));
  EXPECT_TRUE(FileExists(dir + "/" + AttackScheduler::ReportFileName(2)));
  EXPECT_TRUE(FileExists(dir + "/" + AttackScheduler::ReportFileName(3)));
  // Retirement never rewinds the counter: the next publish is 4, even
  // though only two files remain.
  EXPECT_EQ(scheduler.next_version(), 4u);
}

TEST_F(AttackSchedulerTest, DegradedFallbackCoversHealthyShards) {
  PublishShards(kManifest, 3);
  AttackSchedulerOptions options = BaseOptions(kReports);
  auto created = AttackScheduler::Create(kManifest, options);
  ASSERT_TRUE(created.ok());
  // The whole-stream job's first chunk read fails once (fire_count 1);
  // the per-shard fallback then covers every shard cleanly.
  ASSERT_TRUE(ArmFailpoint("source.next_chunk", FailpointAction::kError).ok());
  SchedulerCycleResult result = created.value()->RunCycleNow();
  DisarmAllFailpoints();
  ASSERT_EQ(result.outcome, CycleOutcome::kDegraded)
      << result.status.ToString();
  EXPECT_FALSE(result.status.ok());  // Keeps the whole-stream failure.
  EXPECT_EQ(result.version, 1u);
  ASSERT_EQ(result.jobs.size(), 4u);  // Whole stream + 3 shard jobs.
  EXPECT_FALSE(result.jobs[0].status.ok());
  for (size_t i = 1; i < result.jobs.size(); ++i) {
    EXPECT_TRUE(result.jobs[i].status.ok())
        << result.jobs[i].status.ToString();
  }
  EXPECT_TRUE(result.excluded.empty());
  const std::string report = SlurpFile(result.report_path);
  EXPECT_NE(report.find("\"degraded\":true"), std::string::npos);
  EXPECT_NE(report.find("\"outcome\":\"degraded\""), std::string::npos);
}

TEST_F(AttackSchedulerTest, StartStopLifecycle) {
  PublishShards(kManifest, 2);
  AttackSchedulerOptions options = BaseOptions(kReports);
  options.cadence_nanos = 1;  // Always due on the real clock.
  options.poll_nanos = 1000 * 1000;
  auto created = AttackScheduler::Create(kManifest, options);
  ASSERT_TRUE(created.ok());
  AttackScheduler& scheduler = *created.value();
  ASSERT_TRUE(scheduler.Start().ok());
  EXPECT_EQ(scheduler.Start().code(), StatusCode::kFailedPrecondition);
  // The daemon's first due Tick attacks and publishes version 1.
  while (scheduler.reports_published() == 0) std::this_thread::yield();
  scheduler.Stop();
  scheduler.Stop();  // Idempotent.
  EXPECT_GE(scheduler.cycles(), 1u);
  // Restartable after a stop.
  ASSERT_TRUE(scheduler.Start().ok());
  scheduler.Stop();
}

// ---------------------------------------------------------------------------
// Crash at the publish seam: the series resumes with no gap and no
// duplicate version.
// ---------------------------------------------------------------------------

TEST_F(AttackSchedulerTest, CrashAtPublishLeavesNoGapAndNoDuplicate) {
  PublishShards(kManifest, 2);
  AttackSchedulerOptions options = BaseOptions(kReports);
  options.attack_unchanged = true;
  const pid_t child = ::fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) {
    DisarmAllFailpoints();
    auto created = AttackScheduler::Create(kManifest, options);
    if (!created.ok()) ::_exit(43);
    // Publish report 1 cleanly, then die INSIDE the publish of report 2
    // — after the decision to publish, before any file lands.
    if (created.value()->RunCycleNow().outcome != CycleOutcome::kOk) {
      ::_exit(44);
    }
    if (!ArmFailpoint("sched.publish", FailpointAction::kCrash, 1).ok()) {
      ::_exit(45);
    }
    (void)created.value()->RunCycleNow();
    ::_exit(46);  // Unreachable: the failpoint must have crashed us.
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status)) << "child died abnormally";
  ASSERT_EQ(WEXITSTATUS(status), kFailpointCrashExitCode);

  // Restart on the same directory: version 2 was never consumed, so the
  // recovered scheduler hands it out — no gap, no duplicate.
  auto recreated = AttackScheduler::Create(kManifest, options);
  ASSERT_TRUE(recreated.ok()) << recreated.status().ToString();
  AttackScheduler& scheduler = *recreated.value();
  EXPECT_EQ(scheduler.last_published_version(), 1u);
  EXPECT_EQ(scheduler.next_version(), 2u);
  SchedulerCycleResult resumed = scheduler.RunCycleNow();
  ASSERT_EQ(resumed.outcome, CycleOutcome::kOk) << resumed.status.ToString();
  EXPECT_EQ(resumed.version, 2u);
  const std::string dir(kReports);
  EXPECT_TRUE(FileExists(dir + "/" + AttackScheduler::ReportFileName(1)));
  EXPECT_TRUE(FileExists(dir + "/" + AttackScheduler::ReportFileName(2)));
  EXPECT_FALSE(FileExists(dir + "/" + AttackScheduler::ReportFileName(3)));
  EXPECT_NE(SlurpFile(dir + "/latest.json").find("\"version\":2"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Live run: a rolling writer republishing while the scheduler attacks
// (TSan-clean by construction — the filesystem is the only shared
// state between the writer and the scheduler's snapshot opens).
// ---------------------------------------------------------------------------

TEST_F(AttackSchedulerTest, ConcurrentIngestAndSchedulerStayConsistent) {
  constexpr size_t kLiveShards = 12;
  AttackSchedulerOptions options = BaseOptions(kReports);
  options.cadence_nanos = 1;        // Every daemon poll attacks.
  options.poll_nanos = 200 * 1000;  // 0.2 ms — many cycles per run.
  options.retry.max_attempts = 3;   // Snapshot-vs-republish races retry.
  auto created = AttackScheduler::Create(kManifest, options);
  ASSERT_TRUE(created.ok());
  AttackScheduler& scheduler = *created.value();
  ASSERT_TRUE(scheduler.Start().ok());

  data::RollingStoreOptions store_options;
  store_options.shard_rows = kShardRows;
  store_options.block_rows = 16;
  auto writer_created = data::RollingShardedStoreWriter::Create(
      kManifest, Names(), store_options);
  ASSERT_TRUE(writer_created.ok());
  data::RollingShardedStoreWriter writer = std::move(writer_created).value();
  for (size_t s = 0; s < kLiveShards; ++s) {
    const Matrix records = ShardRecords(s);
    // Uneven appends straddle rotation boundaries.
    ASSERT_TRUE(writer.Append(records, kShardRows / 2).ok());
    Matrix rest(kShardRows - kShardRows / 2, kCols);
    std::memcpy(rest.data(), records.row_data(kShardRows / 2),
                rest.rows() * kCols * sizeof(double));
    ASSERT_TRUE(writer.Append(rest, rest.rows()).ok());
  }
  ASSERT_TRUE(writer.Close().ok());
  scheduler.Stop();
  // One forced final cycle so the sealed store is always covered.
  SchedulerCycleResult final_cycle = scheduler.RunCycleNow();
  ASSERT_TRUE(final_cycle.outcome == CycleOutcome::kOk ||
              final_cycle.outcome == CycleOutcome::kSkippedUnchanged)
      << final_cycle.status.ToString();

  // The attribution identity is exact whatever interleaving happened.
  EXPECT_EQ(scheduler.cycles(), scheduler.cycles_ok() +
                                    scheduler.cycles_degraded() +
                                    scheduler.cycles_failed());
  EXPECT_EQ(scheduler.reports_published(),
            scheduler.cycles_ok() + scheduler.cycles_degraded());
  EXPECT_GE(scheduler.reports_published(), 1u);
  EXPECT_EQ(scheduler.cycles_failed(), 0u);
  // Every published report attacked a consistent sealed prefix: its row
  // count is a whole number of shards.
  for (uint64_t version = 1; version <= scheduler.last_published_version();
       ++version) {
    const std::string path = std::string(kReports) + "/" +
                             AttackScheduler::ReportFileName(version);
    ASSERT_TRUE(FileExists(path)) << "gap in the series at " << version;
    const std::string report = SlurpFile(path);
    const size_t at = report.find("\"snapshot_rows\":");
    ASSERT_NE(at, std::string::npos);
    const uint64_t rows = std::strtoull(
        report.c_str() + at + std::strlen("\"snapshot_rows\":"), nullptr, 10);
    EXPECT_EQ(rows % kShardRows, 0u)
        << "report " << version << " saw a torn (unsealed) snapshot of "
        << rows << " rows";
    EXPECT_LE(rows, kLiveShards * kShardRows);
    EXPECT_NE(report.find("\"version\":" + std::to_string(version)),
              std::string::npos);
  }
  // The final report covers the whole sealed store.
  const std::string last =
      SlurpFile(std::string(kReports) + "/" +
                AttackScheduler::ReportFileName(
                    scheduler.last_published_version()));
  EXPECT_NE(last.find("\"snapshot_rows\":" +
                      std::to_string(kLiveShards * kShardRows)),
            std::string::npos);
}

}  // namespace
}  // namespace pipeline
}  // namespace randrecon
