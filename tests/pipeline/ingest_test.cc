// The admission-controlled ingest core (src/pipeline/ingest.h): the
// accounting identity offered == appended + shed, deadline propagation
// through the queue, sticky store errors, shutdown drain, and overload
// behavior under a saturating producer. Deterministic sheds are driven
// by the injected clock (an expired per-batch deadline) and by
// failpoints (a store that refuses every block write); the saturation
// test asserts only scheduling-independent invariants.

#include "pipeline/ingest.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/trace.h"
#include "data/shard_store.h"
#include "stats/rng.h"

namespace randrecon {
namespace pipeline {
namespace {

using linalg::Matrix;

constexpr size_t kCols = 3;
constexpr size_t kBatchRows = 10;

std::vector<std::string> Names() { return {"x", "y", "z"}; }

/// Deterministic batch `index`: seeded per batch, so a readback can
/// verify bitwise which batches landed and in what order.
Matrix BatchMatrix(size_t index) {
  stats::Rng rng(1000 + static_cast<uint64_t>(index));
  return rng.GaussianMatrix(kBatchRows, kCols);
}

IngestOptions SmallStoreOptions() {
  IngestOptions options;
  options.store.shard_rows = 25;  // Rotates mid-stream.
  options.store.block_rows = 8;
  return options;
}

void ExpectIdentity(const IngestStats& stats) {
  EXPECT_EQ(stats.batches_offered, stats.batches_appended + stats.batches_shed);
  EXPECT_EQ(stats.rows_offered, stats.rows_appended + stats.rows_shed);
}

class IngestServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DisarmAllFailpoints();
    data::RemoveShardedStoreFiles(kPath);
  }
  void TearDown() override {
    DisarmAllFailpoints();
    data::RemoveShardedStoreFiles(kPath);
  }
  static constexpr const char* kPath = "ingest_test.rrcm";
};

TEST_F(IngestServiceTest, StartValidatesOptions) {
  IngestOptions bad = SmallStoreOptions();
  bad.queue_batches = 0;
  EXPECT_EQ(IngestService::Start(kPath, Names(), bad).status().code(),
            StatusCode::kInvalidArgument);
  IngestOptions bad_store = SmallStoreOptions();
  bad_store.store.shard_rows = 0;
  EXPECT_EQ(IngestService::Start(kPath, Names(), bad_store).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(IngestServiceTest, EveryAcceptedBatchLandsAndTheStoreValidates) {
  auto started = IngestService::Start(kPath, Names(), SmallStoreOptions());
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  std::unique_ptr<IngestService> service = std::move(started).value();
  constexpr size_t kBatches = 40;
  for (size_t b = 0; b < kBatches; ++b) {
    // The default admission timeout is generous and the writer drains,
    // so none of these may shed.
    ASSERT_TRUE(service->Offer(BatchMatrix(b), kBatchRows).ok());
  }
  ASSERT_TRUE(service->Close().ok());
  const IngestStats stats = service->stats();
  ExpectIdentity(stats);
  EXPECT_EQ(stats.batches_offered, kBatches);
  EXPECT_EQ(stats.batches_appended, kBatches);
  EXPECT_EQ(stats.batches_shed, 0u);
  EXPECT_EQ(stats.rows_appended, kBatches * kBatchRows);
  EXPECT_EQ(service->published_rows(), kBatches * kBatchRows);
  // The published snapshot holds exactly the offered rows, in offer
  // order (one producer → FIFO).
  auto snapshot =
      data::RollingStoreSnapshotReader::Open(service->manifest_path());
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  ASSERT_EQ(snapshot.value().num_records(), kBatches * kBatchRows);
  Matrix all(kBatches * kBatchRows, kCols);
  {
    data::RollingStoreSnapshotReader reader = std::move(snapshot).value();
    ASSERT_TRUE(reader.ReadRows(0, kBatches * kBatchRows, &all).ok());
  }
  for (size_t b = 0; b < kBatches; ++b) {
    const Matrix expected = BatchMatrix(b);
    ASSERT_EQ(std::memcmp(all.row_data(b * kBatchRows), expected.data(),
                          kBatchRows * kCols * sizeof(double)),
              0)
        << "batch " << b << " is not bitwise-intact in the store";
  }
}

TEST_F(IngestServiceTest, ExpiredDeadlinesShedAtDequeueNeverWriteLate) {
  trace::FakeClockGuard clock(1'000'000);
  auto started = IngestService::Start(kPath, Names(), SmallStoreOptions());
  ASSERT_TRUE(started.ok());
  std::unique_ptr<IngestService> service = std::move(started).value();
  // A deadline equal to "now" admits (there is queue room RIGHT NOW)
  // but is already expired when the writer dequeues it — under the
  // fake clock, every such batch must shed, deterministically.
  constexpr size_t kBatches = 5;
  for (size_t b = 0; b < kBatches; ++b) {
    ASSERT_TRUE(
        service->Offer(BatchMatrix(b), kBatchRows, /*deadline_nanos=*/1'000'000)
            .ok());
  }
  // A batch with a live (far-future) deadline still lands.
  ASSERT_TRUE(
      service->Offer(BatchMatrix(99), kBatchRows, /*deadline_nanos=*/1'000'000'000)
          .ok());
  ASSERT_TRUE(service->Close().ok());
  const IngestStats stats = service->stats();
  ExpectIdentity(stats);
  EXPECT_EQ(stats.batches_offered, kBatches + 1);
  EXPECT_EQ(stats.batches_shed, kBatches);
  EXPECT_EQ(stats.batches_appended, 1u);
  EXPECT_EQ(service->published_rows(), kBatchRows);
}

TEST_F(IngestServiceTest, StoreErrorsStickShedTheRestAndSurfaceAtClose) {
  // Every block write fails: the first dequeued batch kills the store,
  // later batches shed (counted), new Offers fail fast with the sticky
  // error, and Close reports it.
  FailpointConfig config;
  config.action = FailpointAction::kError;
  config.code = StatusCode::kIoError;
  config.fire_count = kFailpointFireForever;
  ASSERT_TRUE(ArmFailpoint("store.block_write", config).ok());
  auto started = IngestService::Start(kPath, Names(), SmallStoreOptions());
  ASSERT_TRUE(started.ok());
  std::unique_ptr<IngestService> service = std::move(started).value();
  size_t accepted = 0;
  Status sticky = Status::OK();
  for (size_t b = 0; b < 50; ++b) {
    const Status offered = service->Offer(BatchMatrix(b), kBatchRows);
    if (offered.ok()) {
      ++accepted;
    } else {
      sticky = offered;  // The writer's error propagated to producers.
    }
  }
  const Status closed = service->Close();
  EXPECT_EQ(closed.code(), StatusCode::kIoError);
  if (!sticky.ok()) EXPECT_EQ(sticky.code(), StatusCode::kIoError);
  const IngestStats stats = service->stats();
  ExpectIdentity(stats);
  EXPECT_EQ(stats.batches_offered, accepted);
  EXPECT_EQ(stats.batches_appended, 0u);
  EXPECT_EQ(stats.batches_shed, accepted);
}

TEST_F(IngestServiceTest, OfferAfterCloseFailsUncounted) {
  auto started = IngestService::Start(kPath, Names(), SmallStoreOptions());
  ASSERT_TRUE(started.ok());
  std::unique_ptr<IngestService> service = std::move(started).value();
  ASSERT_TRUE(service->Offer(BatchMatrix(0), kBatchRows).ok());
  ASSERT_TRUE(service->Close().ok());
  EXPECT_EQ(service->Offer(BatchMatrix(1), kBatchRows).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(service->Close().ok());  // Idempotent.
  const IngestStats stats = service->stats();
  EXPECT_EQ(stats.batches_offered, 1u);  // The rejected batch never counted.
  ExpectIdentity(stats);
}

TEST_F(IngestServiceTest, ColumnMismatchIsRejectedUncounted) {
  auto started = IngestService::Start(kPath, Names(), SmallStoreOptions());
  ASSERT_TRUE(started.ok());
  std::unique_ptr<IngestService> service = std::move(started).value();
  Matrix wrong(kBatchRows, kCols + 1);
  EXPECT_EQ(service->Offer(wrong, kBatchRows).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(service->Close().ok());
  EXPECT_EQ(service->stats().batches_offered, 0u);
}

TEST_F(IngestServiceTest, SaturationNeverBlocksPastTheDeadlineNorDropsSilently) {
  // A saturating producer against a tiny queue with near-zero admission
  // budget: which batches shed depends on scheduling, but EVERY outcome
  // is accounted and every rejection is the retryable kind.
  IngestOptions options = SmallStoreOptions();
  options.queue_batches = 1;
  options.admission_timeout_nanos = 1;  // Essentially try-only.
  auto started = IngestService::Start(kPath, Names(), options);
  ASSERT_TRUE(started.ok());
  std::unique_ptr<IngestService> service = std::move(started).value();
  constexpr size_t kBatches = 200;
  size_t ok_count = 0;
  for (size_t b = 0; b < kBatches; ++b) {
    const Status offered = service->Offer(BatchMatrix(b), kBatchRows);
    if (offered.ok()) {
      ++ok_count;
    } else {
      ASSERT_EQ(offered.code(), StatusCode::kUnavailable) << b;
      ASSERT_TRUE(offered.IsRetryable()) << b;
    }
  }
  ASSERT_TRUE(service->Close().ok());
  const IngestStats stats = service->stats();
  ExpectIdentity(stats);
  EXPECT_EQ(stats.batches_offered, kBatches);
  EXPECT_EQ(stats.batches_appended, ok_count);
  EXPECT_EQ(stats.rows_appended, service->published_rows());
  // The store holds exactly the accepted batches, still bitwise-valid.
  auto snapshot =
      data::RollingStoreSnapshotReader::Open(service->manifest_path());
  if (ok_count > 0) {
    ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
    EXPECT_EQ(snapshot.value().num_records(), ok_count * kBatchRows);
  }
}

}  // namespace
}  // namespace pipeline
}  // namespace randrecon
