#include "data/csv.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace randrecon {
namespace data {
namespace {

using linalg::Matrix;

Dataset MakeSample() {
  Matrix m{{1.5, -2.0}, {3.25, 4.0}};
  return Dataset::Create(m, {"alpha", "beta"}).value();
}

TEST(CsvTest, ToStringHasHeaderAndRows) {
  const std::string csv = ToCsvString(MakeSample(), 2);
  EXPECT_NE(csv.find("alpha,beta"), std::string::npos);
  EXPECT_NE(csv.find("1.50,-2.00"), std::string::npos);
  EXPECT_NE(csv.find("3.25,4.00"), std::string::npos);
}

TEST(CsvTest, StringRoundTrip) {
  const Dataset original = MakeSample();
  auto parsed = FromCsvString(ToCsvString(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().attribute_names(), original.attribute_names());
  EXPECT_EQ(parsed.value().num_records(), 2u);
  EXPECT_DOUBLE_EQ(parsed.value().records()(1, 0), 3.25);
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/csv_roundtrip.csv";
  const Dataset original = MakeSample();
  ASSERT_TRUE(WriteCsv(original, path).ok());
  auto loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_records(), original.num_records());
  EXPECT_DOUBLE_EQ(loaded.value().records()(0, 1), -2.0);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileIsIoError) {
  auto loaded = ReadCsv("/nonexistent/dir/file.csv");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(CsvTest, WriteToUnwritablePathIsIoError) {
  EXPECT_EQ(WriteCsv(MakeSample(), "/nonexistent/dir/file.csv").code(),
            StatusCode::kIoError);
}

TEST(CsvTest, ParseRejectsEmptyInput) {
  EXPECT_FALSE(FromCsvString("").ok());
}

TEST(CsvTest, ParseHeaderOnlyGivesZeroRecords) {
  auto parsed = FromCsvString("a,b\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().num_records(), 0u);
  EXPECT_EQ(parsed.value().num_attributes(), 2u);
}

TEST(CsvTest, ParseRejectsRaggedRow) {
  auto parsed = FromCsvString("a,b\n1,2\n3\n");
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 3"), std::string::npos);
}

TEST(CsvTest, ParseRejectsNonNumericField) {
  auto parsed = FromCsvString("a,b\n1,hello\n");
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("hello"), std::string::npos);
}

TEST(CsvTest, ParseSkipsBlankLines) {
  auto parsed = FromCsvString("a\n1\n\n2\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().num_records(), 2u);
}

TEST(CsvTest, ParseTrimsHeaderWhitespace) {
  auto parsed = FromCsvString(" a , b \n1,2\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().attribute_names(),
            (std::vector<std::string>{"a", "b"}));
}

TEST(CsvTest, ParseAcceptsCrlfLineEndings) {
  auto parsed = FromCsvString("a,b\r\n1,2\r\n3,4\r\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().attribute_names(),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(parsed.value().num_records(), 2u);
  EXPECT_DOUBLE_EQ(parsed.value().records()(1, 1), 4.0);
}

TEST(CsvTest, ParseAcceptsMissingTrailingNewline) {
  auto parsed = FromCsvString("a,b\n1,2\n3,4");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().num_records(), 2u);
  EXPECT_DOUBLE_EQ(parsed.value().records()(1, 0), 3.0);
}

TEST(CsvTest, ParseAcceptsHeaderOnlyWithoutNewline) {
  auto parsed = FromCsvString("a,b");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().num_records(), 0u);
  EXPECT_EQ(parsed.value().num_attributes(), 2u);
}

TEST(CsvTest, RaggedRowErrorNamesLineAfterCrlfAndBlanks) {
  auto parsed = FromCsvString("a,b\r\n1,2\r\n\r\n3\r\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 4"), std::string::npos)
      << parsed.status().ToString();
}

TEST(CsvChunkReaderTest, ServesRowBlocksAndSignalsEnd) {
  auto reader = CsvChunkReader::FromString("x,y\n1,2\n3,4\n5,6\n7,8\n9,10\n");
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  CsvChunkReader r = std::move(reader).value();
  EXPECT_EQ(r.num_attributes(), 2u);
  Matrix buffer(2, 2);
  auto rows = r.ReadChunk(&buffer);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value(), 2u);
  EXPECT_DOUBLE_EQ(buffer(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(buffer(1, 1), 4.0);
  rows = r.ReadChunk(&buffer);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value(), 2u);
  rows = r.ReadChunk(&buffer);  // Partial final chunk.
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value(), 1u);
  EXPECT_DOUBLE_EQ(buffer(0, 1), 10.0);
  rows = r.ReadChunk(&buffer);  // Exhausted.
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value(), 0u);
}

TEST(CsvChunkReaderTest, ResetReplaysTheSameRecords) {
  auto reader = CsvChunkReader::FromString("x\n1\n2\n3\n");
  ASSERT_TRUE(reader.ok());
  CsvChunkReader r = std::move(reader).value();
  Matrix buffer(8, 1);
  ASSERT_EQ(r.ReadChunk(&buffer).value(), 3u);
  ASSERT_TRUE(r.Reset().ok());
  auto rows = r.ReadChunk(&buffer);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value(), 3u);
  EXPECT_DOUBLE_EQ(buffer(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(buffer(2, 0), 3.0);
}

TEST(CsvChunkReaderTest, FileReaderStreamsAndResets) {
  const std::string path = ::testing::TempDir() + "/csv_chunked.csv";
  Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  ASSERT_TRUE(WriteCsv(Dataset::Create(m, {"u", "v"}).value(), path).ok());
  auto reader = CsvChunkReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  CsvChunkReader r = std::move(reader).value();
  Matrix buffer(2, 2);
  ASSERT_EQ(r.ReadChunk(&buffer).value(), 2u);
  ASSERT_EQ(r.ReadChunk(&buffer).value(), 1u);
  ASSERT_TRUE(r.Reset().ok());
  ASSERT_EQ(r.ReadChunk(&buffer).value(), 2u);
  EXPECT_DOUBLE_EQ(buffer(0, 0), 1.0);
  std::remove(path.c_str());
}

TEST(CsvChunkReaderTest, OpenMissingFileIsIoError) {
  auto reader = CsvChunkReader::Open("/nonexistent/dir/file.csv");
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kIoError);
}

TEST(CsvChunkReaderTest, NonNumericErrorNamesLine) {
  auto reader = CsvChunkReader::FromString("x\n1\nbad\n");
  ASSERT_TRUE(reader.ok());
  CsvChunkReader r = std::move(reader).value();
  Matrix buffer(8, 1);
  auto rows = r.ReadChunk(&buffer);
  ASSERT_FALSE(rows.ok());
  EXPECT_NE(rows.status().message().find("'bad'"), std::string::npos);
  EXPECT_NE(rows.status().message().find("line 3"), std::string::npos);
}

TEST(CsvTest, HighPrecisionSurvivesRoundTrip) {
  Matrix m{{1.0 / 3.0}};
  Dataset d = Dataset::Create(m, {"x"}).value();
  auto parsed = FromCsvString(ToCsvString(d, 12));
  ASSERT_TRUE(parsed.ok());
  EXPECT_NEAR(parsed.value().records()(0, 0), 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace data
}  // namespace randrecon
