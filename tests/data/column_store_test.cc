// Tests for the binary column store (src/data/column_store.h).
//
// The on-disk layout under test is specified byte-by-byte in
// docs/FORMAT.md; the corruption tests below patch files at the offsets
// that document defines (magic at 0, version at 8, num_records at 16,
// names at 40, per-block trailing checksums) and expect a Status naming
// the offending field, block, or byte offset — never a crash.

#include "data/column_store.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "linalg/matrix_util.h"
#include "stats/rng.h"

namespace randrecon {
namespace data {
namespace {

using linalg::Matrix;

/// Unique-per-test scratch path, removed on destruction.
class ScratchFile {
 public:
  explicit ScratchFile(const std::string& name)
      : path_("column_store_test_" + name) {}
  ~ScratchFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string ReadFileBytes(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.is_open()) << path;
  std::string bytes((std::istreambuf_iterator<char>(file)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(file.is_open()) << path;
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Offset of the trailing header checksum = end of the names section
/// (docs/FORMAT.md §2): fixed fields are 40 bytes, then u32 length +
/// bytes per name.
size_t HeaderHashOffset(const std::vector<std::string>& names) {
  size_t offset = 40;
  for (const std::string& name : names) offset += 4 + name.size();
  return offset;
}

/// Re-seals the header after a test patches a header field, exactly as
/// the writer does (hash over every byte before the checksum field).
void ResealHeader(std::string* bytes, const std::vector<std::string>& names) {
  const size_t hash_offset = HeaderHashOffset(names);
  const uint64_t hash = ColumnStoreHash(bytes->data(), hash_offset);
  std::memcpy(&(*bytes)[hash_offset], &hash, sizeof(hash));
}

std::vector<std::string> Names(size_t m) {
  std::vector<std::string> names;
  for (size_t j = 0; j < m; ++j) names.push_back("a" + std::to_string(j));
  return names;
}

/// Writes `records` through the streaming writer in uneven chunk sizes,
/// exercising block-boundary straddles.
void WriteStore(const std::string& path, const Matrix& records,
                size_t block_rows) {
  ColumnStoreOptions options;
  options.block_rows = block_rows;
  auto writer = ColumnStoreWriter::Create(path, Names(records.cols()), options);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ColumnStoreWriter store_writer = std::move(writer).value();
  size_t row = 0;
  size_t chunk_rows = 1;
  while (row < records.rows()) {
    const size_t take = std::min(chunk_rows, records.rows() - row);
    Matrix chunk = records.Block(row, row + take, 0, records.cols());
    ASSERT_TRUE(store_writer.Append(chunk, take).ok());
    row += take;
    chunk_rows = chunk_rows * 2 + 1;  // 1, 3, 7, ... uneven on purpose.
  }
  EXPECT_EQ(store_writer.rows_written(), records.rows());
  ASSERT_TRUE(store_writer.Close().ok());
}

Matrix ReadAll(const std::string& path) {
  auto reader = ColumnStoreReader::Open(path);
  EXPECT_TRUE(reader.ok()) << reader.status().ToString();
  ColumnStoreReader store_reader = std::move(reader).value();
  Matrix records(store_reader.num_records(), store_reader.num_attributes());
  EXPECT_TRUE(
      store_reader.ReadRows(0, store_reader.num_records(), &records).ok());
  return records;
}

TEST(ColumnStoreTest, WriteReadRoundTripIsBitwise) {
  ScratchFile file("roundtrip.rrcs");
  stats::Rng rng(11);
  const Matrix records = rng.GaussianMatrix(1000, 5);
  WriteStore(file.path(), records, /*block_rows=*/64);

  auto reader = ColumnStoreReader::Open(file.path());
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  ColumnStoreReader store = std::move(reader).value();
  EXPECT_EQ(store.num_records(), 1000u);
  EXPECT_EQ(store.num_attributes(), 5u);
  EXPECT_EQ(store.block_rows(), 64u);
  EXPECT_EQ(store.num_blocks(), 16u);  // ceil(1000 / 64)
  EXPECT_EQ(store.attribute_names(), Names(5));
  EXPECT_EQ(store.rows_in_block(15), 1000u - 15u * 64u);

  EXPECT_TRUE(ReadAll(file.path()) == records);  // operator== is bitwise.
}

TEST(ColumnStoreTest, ExactBlockMultipleAndSingleRowBlocks) {
  stats::Rng rng(12);
  for (const size_t block_rows : {size_t{1}, size_t{64}}) {
    ScratchFile file("blocks_" + std::to_string(block_rows) + ".rrcs");
    const Matrix records = rng.GaussianMatrix(128, 3);
    WriteStore(file.path(), records, block_rows);
    EXPECT_TRUE(ReadAll(file.path()) == records);
  }
}

TEST(ColumnStoreTest, EmptyStoreRoundTrips) {
  ScratchFile file("empty.rrcs");
  auto writer = ColumnStoreWriter::Create(file.path(), Names(4));
  ASSERT_TRUE(writer.ok());
  ColumnStoreWriter store_writer = std::move(writer).value();
  ASSERT_TRUE(store_writer.Close().ok());

  auto reader = ColumnStoreReader::Open(file.path());
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader.value().num_records(), 0u);
  EXPECT_EQ(reader.value().num_blocks(), 0u);
}

TEST(ColumnStoreTest, ReadRowsServesRandomSlices) {
  ScratchFile file("slices.rrcs");
  stats::Rng rng(13);
  const Matrix records = rng.GaussianMatrix(300, 4);
  WriteStore(file.path(), records, /*block_rows=*/32);
  auto reader = ColumnStoreReader::Open(file.path());
  ASSERT_TRUE(reader.ok());
  ColumnStoreReader store = std::move(reader).value();

  // A slice straddling three blocks, starting mid-block.
  Matrix slice(70, 4);
  ASSERT_TRUE(store.ReadRows(45, 70, &slice).ok());
  EXPECT_TRUE(slice == records.Block(45, 115, 0, 4));

  // Reading past the end is a clean error naming the range.
  const Status overrun = store.ReadRows(290, 20, &slice);
  EXPECT_FALSE(overrun.ok());
  EXPECT_NE(overrun.message().find("[290, 310)"), std::string::npos)
      << overrun.ToString();
}

TEST(ColumnStoreTest, BlockColumnIsTheMappedColumn) {
  ScratchFile file("column.rrcs");
  stats::Rng rng(14);
  const Matrix records = rng.GaussianMatrix(100, 3);
  WriteStore(file.path(), records, /*block_rows=*/40);
  auto reader = ColumnStoreReader::Open(file.path());
  ASSERT_TRUE(reader.ok());
  ColumnStoreReader store = std::move(reader).value();

  auto column = store.BlockColumn(/*block=*/1, /*column=*/2);
  ASSERT_TRUE(column.ok()) << column.status().ToString();
  for (size_t r = 0; r < store.rows_in_block(1); ++r) {
    EXPECT_EQ(column.value()[r], records(40 + r, 2));
  }
}

TEST(ColumnStoreTest, DatasetHelpersRoundTrip) {
  ScratchFile file("dataset.rrcs");
  stats::Rng rng(15);
  auto dataset = Dataset::Create(rng.GaussianMatrix(77, 3),
                                 {"age", "income", "score"});
  ASSERT_TRUE(dataset.ok());
  ASSERT_TRUE(WriteColumnStore(dataset.value(), file.path()).ok());
  auto read_back = ReadColumnStoreDataset(file.path());
  ASSERT_TRUE(read_back.ok()) << read_back.status().ToString();
  EXPECT_TRUE(read_back.value().records() == dataset.value().records());
  EXPECT_EQ(read_back.value().attribute_names(),
            dataset.value().attribute_names());
}

TEST(ColumnStoreTest, DetectsFormatBySniffingNotExtension) {
  ScratchFile store_file("detect.not_an_extension");
  ScratchFile csv_file("detect.csv");
  stats::Rng rng(16);
  const Dataset dataset{Dataset(rng.GaussianMatrix(10, 2))};
  ASSERT_TRUE(WriteColumnStore(dataset, store_file.path()).ok());
  ASSERT_TRUE(WriteCsv(dataset, csv_file.path()).ok());

  auto store_format = DetectRecordFileFormat(store_file.path());
  auto csv_format = DetectRecordFileFormat(csv_file.path());
  ASSERT_TRUE(store_format.ok());
  ASSERT_TRUE(csv_format.ok());
  EXPECT_EQ(store_format.value(), RecordFileFormat::kColumnStore);
  EXPECT_EQ(csv_format.value(), RecordFileFormat::kCsv);

  // ReadRecords loads either transparently; the store copy is bitwise,
  // the CSV copy went through precision-10 text.
  auto from_store = ReadRecords(store_file.path());
  ASSERT_TRUE(from_store.ok());
  EXPECT_TRUE(from_store.value().records() == dataset.records());
  EXPECT_TRUE(ReadRecords(csv_file.path()).ok());
}

// CSV -> store -> CSV property test (ISSUE 4): once values have passed
// through CSV text one time, the store must carry them bitwise — both
// back into memory and through a second, lossless CSV hop.
TEST(ColumnStoreTest, CsvStoreCsvRoundTripIsBitwise) {
  ScratchFile store_file("csv_roundtrip.rrcs");
  stats::Rng rng(17);
  Matrix raw = rng.GaussianMatrix(200, 4);
  // Salt in awkward values: exact zeros, huge/tiny magnitudes, negatives.
  raw(0, 0) = 0.0;
  raw(1, 1) = 1e300;
  raw(2, 2) = -4.9406564584124654e-324;  // Smallest denormal.
  raw(3, 3) = -1234567.89012345678;

  // Hop 1: through CSV text at default precision (lossy vs `raw`).
  const std::string csv_text = ToCsvString(Dataset(raw));
  auto parsed = FromCsvString(csv_text);
  ASSERT_TRUE(parsed.ok());

  // Hop 2: the parsed values through the store — must be bitwise.
  ASSERT_TRUE(WriteColumnStore(parsed.value(), store_file.path()).ok());
  auto from_store = ReadColumnStoreDataset(store_file.path());
  ASSERT_TRUE(from_store.ok());
  EXPECT_TRUE(from_store.value().records() == parsed.value().records());

  // Hop 3: store -> CSV at precision 17 -> parse; still bitwise.
  auto reparsed =
      FromCsvString(ToCsvString(from_store.value(), /*precision=*/17));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(reparsed.value().records() == parsed.value().records());
}

// ---------------------------------------------------------------------------
// Corruption paths: every failure is a Status naming the damage.
// ---------------------------------------------------------------------------

/// One sealed store for the corruption tests: 130 records of 3 columns
/// in 64-row blocks -> 3 blocks, last one partial.
class ColumnStoreCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    stats::Rng rng(18);
    records_ = rng.GaussianMatrix(130, 3);
    WriteStore(file_.path(), records_, /*block_rows=*/64);
    bytes_ = ReadFileBytes(file_.path());
    ASSERT_GE(bytes_.size(), 64u);
  }

  Status OpenWith(const std::string& bytes) {
    WriteFileBytes(file_.path(), bytes);
    return ColumnStoreReader::Open(file_.path()).status();
  }

  ScratchFile file_{"corrupt.rrcs"};
  Matrix records_;
  std::string bytes_;
};

TEST_F(ColumnStoreCorruptionTest, BadMagicIsNamed) {
  std::string bytes = bytes_;
  bytes[0] = 'X';
  const Status status = OpenWith(bytes);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("magic"), std::string::npos)
      << status.ToString();
}

TEST_F(ColumnStoreCorruptionTest, CsvFileIsRejectedAsNotAStore) {
  const Status status = OpenWith("a,b\n1,2\n3,4\n" + std::string(64, ' '));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("magic"), std::string::npos);
}

TEST_F(ColumnStoreCorruptionTest, UnsupportedVersionIsNamed) {
  std::string bytes = bytes_;
  bytes[8] = 7;  // docs/FORMAT.md §2: u32 version at offset 8.
  const Status status = OpenWith(bytes);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("version 7"), std::string::npos)
      << status.ToString();
}

TEST_F(ColumnStoreCorruptionTest, TruncatedFileReportsByteCounts) {
  const Status status = OpenWith(bytes_.substr(0, bytes_.size() - 10));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("truncated"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find(std::to_string(bytes_.size())),
            std::string::npos)
      << "expected size missing: " << status.ToString();
}

TEST_F(ColumnStoreCorruptionTest, TinyFileIsRejected) {
  const Status status = OpenWith("RRCOLSTR");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("smaller than the minimum"),
            std::string::npos)
      << status.ToString();
}

TEST_F(ColumnStoreCorruptionTest, HeaderChecksumMismatchIsNamed) {
  std::string bytes = bytes_;
  // Flip a bit inside the first column name's BYTES (offset 44: names
  // start at 40 with a u32 length first) — the structure still parses,
  // so only the header checksum can object.
  bytes[44] ^= 0x20;
  const Status status = OpenWith(bytes);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("header checksum mismatch"),
            std::string::npos)
      << status.ToString();
}

TEST_F(ColumnStoreCorruptionTest, RowCountDisagreementIsDetected) {
  std::string bytes = bytes_;
  // Patch num_records (offset 16) from 130 to 30 (1 block instead of 3)
  // and re-seal the header so ONLY the size cross-check can object.
  const uint64_t lying_count = 30;
  std::memcpy(&bytes[16], &lying_count, sizeof(lying_count));
  ResealHeader(&bytes, Names(3));
  const Status status = OpenWith(bytes);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("record-count disagreement"),
            std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("30 records"), std::string::npos)
      << status.ToString();
}

TEST_F(ColumnStoreCorruptionTest, RecordCountNearUint64MaxIsRejected) {
  // The ceil-div wrap attack: with the naive (n + block_rows - 1) /
  // block_rows, num_records = 2^64-1 wraps num_blocks to 0, so a
  // header-only file resealed with the public hash passes the
  // expected-size cross-check and ReadRows runs past the mapping. Both
  // the fixture's 3-block file and a header-only file must be rejected.
  const uint64_t hostile_count = UINT64_MAX;
  std::string bytes = bytes_;
  std::memcpy(&bytes[16], &hostile_count, sizeof(hostile_count));
  ResealHeader(&bytes, Names(3));
  Status status = OpenWith(bytes);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << status.ToString();

  // Header-only variant: exactly the file the wrap would wave through.
  std::string header_only = bytes_;
  const size_t block_stride = 3 * 64 * 8 + 8;
  header_only.resize(header_only.size() - 3 * block_stride);
  std::memcpy(&header_only[16], &hostile_count, sizeof(hostile_count));
  ResealHeader(&header_only, Names(3));
  status = OpenWith(header_only);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << status.ToString();
}

TEST_F(ColumnStoreCorruptionTest, AbsurdColumnCountIsRejectedNotAllocated) {
  std::string bytes = bytes_;
  // A hostile num_attributes (offset 24) must fail as a Status before
  // any allocation sized by it — not throw bad_alloc from reserve().
  const uint64_t absurd = uint64_t{1} << 60;
  std::memcpy(&bytes[24], &absurd, sizeof(absurd));
  const Status status = OpenWith(bytes);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("could possibly name"), std::string::npos)
      << status.ToString();
}

TEST_F(ColumnStoreCorruptionTest, BlockChecksumMismatchNamesBlockAndOffset) {
  std::string bytes = bytes_;
  // Damage one payload byte in block 1. Header: 40 fixed + 3*(4+2) names
  // + 8 checksum = 66, padded to 128; block stride = 3*64*8 + 8 = 1544.
  const size_t block_stride = 3 * 64 * 8 + 8;
  const size_t header_bytes = bytes.size() - 3 * block_stride;
  const size_t block1_offset = header_bytes + block_stride;
  bytes[block1_offset + 5] ^= 0xFF;
  WriteFileBytes(file_.path(), bytes);

  auto reader = ColumnStoreReader::Open(file_.path());
  ASSERT_TRUE(reader.ok()) << "damage is inside a block, Open must succeed: "
                           << reader.status().ToString();
  ColumnStoreReader store = std::move(reader).value();

  // Block 0 is intact and must still serve.
  Matrix buffer(64, 3);
  EXPECT_TRUE(store.ReadRows(0, 64, &buffer).ok());

  // Touching block 1 surfaces the mismatch, naming block and offset.
  const Status status = store.ReadRows(64, 64, &buffer);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("block 1 checksum mismatch"),
            std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find(std::to_string(block1_offset)),
            std::string::npos)
      << status.ToString();
}

TEST_F(ColumnStoreCorruptionTest, EagerVerifyFailsAtOpenNamingTheBlock) {
  std::string bytes = bytes_;
  const size_t block_stride = 3 * 64 * 8 + 8;
  const size_t header_bytes = bytes.size() - 3 * block_stride;
  bytes[header_bytes + 2 * block_stride + 9] ^= 0xFF;  // Damage block 2.
  WriteFileBytes(file_.path(), bytes);

  // Lazy open still succeeds (the damage sits in an untouched block)...
  ASSERT_TRUE(ColumnStoreReader::Open(file_.path()).ok());

  // ...but the archival eager mode proves the whole file at Open and
  // fails there, naming the block — at any thread count.
  for (const int threads : {1, 4}) {
    ColumnStoreReadOptions options;
    options.eager_verify = true;
    options.parallel.num_threads = threads;
    const Status status =
        ColumnStoreReader::Open(file_.path(), options).status();
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("block 2 checksum mismatch"),
              std::string::npos)
        << status.ToString();
  }
}

TEST(ColumnStoreTest, ParallelReadRowsMatchesSerialBitwise) {
  // A multi-block ReadRows verifies and gathers block-parallel; the
  // filled buffer must be bitwise identical for every thread count, for
  // aligned and misaligned ranges.
  ScratchFile file("parallel_read.rrcs");
  stats::Rng rng(19);
  const Matrix records = rng.GaussianMatrix(1000, 4);
  WriteStore(file.path(), records, /*block_rows=*/64);

  for (const int threads : {1, 2, 8}) {
    ColumnStoreReadOptions options;
    options.parallel.num_threads = threads;
    auto reader = ColumnStoreReader::Open(file.path(), options);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    ColumnStoreReader store = std::move(reader).value();
    for (const auto range : {std::pair<size_t, size_t>{0, 1000},
                             {3, 997},     // misaligned on both ends
                             {64, 128},    // exactly one block
                             {100, 101}}) {
      const size_t rows = range.second - range.first;
      Matrix buffer(rows, 4);
      ASSERT_TRUE(store.ReadRows(range.first, rows, &buffer).ok());
      EXPECT_TRUE(buffer == records.Block(range.first, range.second, 0, 4))
          << "threads=" << threads << " range [" << range.first << ", "
          << range.second << ")";
    }
  }
}

TEST(ColumnStoreWriterTest, RejectsBadConfigurations) {
  ScratchFile file("bad_config.rrcs");
  EXPECT_EQ(ColumnStoreWriter::Create(file.path(), {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      ColumnStoreWriter::Create(file.path(), {"a", "a"}).status().code(),
      StatusCode::kInvalidArgument);
  ColumnStoreOptions zero_block;
  zero_block.block_rows = 0;
  EXPECT_EQ(ColumnStoreWriter::Create(file.path(), {"a"}, zero_block)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ColumnStoreWriterTest, RejectsWidthMismatchAndAppendAfterClose) {
  ScratchFile file("bad_append.rrcs");
  auto writer = ColumnStoreWriter::Create(file.path(), Names(3));
  ASSERT_TRUE(writer.ok());
  ColumnStoreWriter store_writer = std::move(writer).value();
  Matrix wrong_width(4, 2);
  EXPECT_EQ(store_writer.Append(wrong_width, 4).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(store_writer.Close().ok());
  Matrix chunk(4, 3);
  EXPECT_EQ(store_writer.Append(chunk, 4).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ColumnStoreWriterTest, UnsealedStoreIsRejectedByReaders) {
  // A writer that crashes before Close() leaves the header with the
  // bitwise-NOT of the real hash (docs/FORMAT.md §2.2) — only Close()
  // seals it. Reconstruct that on-disk state from a sealed empty store
  // and confirm readers refuse to treat it as a valid (empty) store.
  ScratchFile file("unsealed.rrcs");
  auto writer = ColumnStoreWriter::Create(file.path(), Names(2));
  ASSERT_TRUE(writer.ok());
  ColumnStoreWriter store_writer = std::move(writer).value();
  ASSERT_TRUE(store_writer.Close().ok());

  std::string bytes = ReadFileBytes(file.path());
  const size_t hash_offset = HeaderHashOffset(Names(2));
  uint64_t sealed_hash;
  std::memcpy(&sealed_hash, &bytes[hash_offset], sizeof(sealed_hash));
  const uint64_t unsealed_hash = ~sealed_hash;
  std::memcpy(&bytes[hash_offset], &unsealed_hash, sizeof(unsealed_hash));
  WriteFileBytes(file.path(), bytes);

  const Status status = ColumnStoreReader::Open(file.path()).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("header checksum mismatch"),
            std::string::npos)
      << status.ToString();
}

TEST(ColumnStoreWriterTest, MoveAssignmentSealsTheAbandonedStore) {
  // Assigning onto an active writer must Close() the store it was
  // building (as the destructor would), not drop the half-written file
  // unsealed; the adopted writer keeps serving its own store.
  ScratchFile first("move_assign_a.rrcs");
  ScratchFile second("move_assign_b.rrcs");
  stats::Rng rng(20);
  const Matrix chunk = rng.GaussianMatrix(3, 2);

  auto a = ColumnStoreWriter::Create(first.path(), Names(2));
  ASSERT_TRUE(a.ok());
  ColumnStoreWriter writer = std::move(a).value();
  ASSERT_TRUE(writer.Append(chunk, 3).ok());

  auto b = ColumnStoreWriter::Create(second.path(), Names(2));
  ASSERT_TRUE(b.ok());
  writer = std::move(b).value();

  auto first_back = ReadColumnStoreDataset(first.path());
  ASSERT_TRUE(first_back.ok()) << first_back.status().ToString();
  EXPECT_TRUE(first_back.value().records() == chunk);

  ASSERT_TRUE(writer.Append(chunk, 3).ok());
  ASSERT_TRUE(writer.Close().ok());
  auto second_back = ReadColumnStoreDataset(second.path());
  ASSERT_TRUE(second_back.ok()) << second_back.status().ToString();
  EXPECT_TRUE(second_back.value().records() == chunk);
}

TEST(ColumnStoreReaderTest, MoveAssignmentReleasesTheOldMapping) {
  ScratchFile first_file("move_a.rrcs");
  ScratchFile second_file("move_b.rrcs");
  stats::Rng rng(19);
  const Matrix first = rng.GaussianMatrix(50, 2);
  const Matrix second = rng.GaussianMatrix(60, 2);
  WriteStore(first_file.path(), first, /*block_rows=*/16);
  WriteStore(second_file.path(), second, /*block_rows=*/16);

  auto opened = ColumnStoreReader::Open(first_file.path());
  ASSERT_TRUE(opened.ok());
  ColumnStoreReader reader = std::move(opened).value();
  Matrix buffer(50, 2);
  ASSERT_TRUE(reader.ReadRows(0, 50, &buffer).ok());

  // Re-point the same reader at the second store (the sharded-scan
  // pattern); the first mapping must be released, not leaked or doubly
  // freed, and reads must serve the new file.
  auto reopened = ColumnStoreReader::Open(second_file.path());
  ASSERT_TRUE(reopened.ok());
  reader = std::move(reopened).value();
  EXPECT_EQ(reader.num_records(), 60u);
  Matrix second_buffer(60, 2);
  ASSERT_TRUE(reader.ReadRows(0, 60, &second_buffer).ok());
  EXPECT_TRUE(second_buffer == second);
}

TEST(ColumnStoreHashTest, MatchesPinnedVectors) {
  // Golden values pin the RRH64 definition of docs/FORMAT.md §4: any
  // change to the hash is a format break and must bump the version.
  EXPECT_EQ(ColumnStoreHash("", 0), 0x627d7c31b2dc9d71ull);
  const char msg[] = "randrecon column store";
  EXPECT_EQ(ColumnStoreHash(msg, sizeof(msg) - 1), 0xe163d36f8793360bull);
  const uint64_t word = 0x0123456789abcdefull;
  EXPECT_EQ(ColumnStoreHash(&word, sizeof(word)), 0x279fd5b6003dec95ull);
}

}  // namespace
}  // namespace data
}  // namespace randrecon
