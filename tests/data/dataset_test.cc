#include "data/dataset.h"

#include <gtest/gtest.h>

namespace randrecon {
namespace data {
namespace {

using linalg::Matrix;
using linalg::Vector;

TEST(DatasetTest, DefaultIsEmpty) {
  Dataset d;
  EXPECT_EQ(d.num_records(), 0u);
  EXPECT_EQ(d.num_attributes(), 0u);
}

TEST(DatasetTest, AutoNamesColumns) {
  Dataset d(Matrix(3, 2));
  EXPECT_EQ(d.num_records(), 3u);
  EXPECT_EQ(d.num_attributes(), 2u);
  EXPECT_EQ(d.attribute_names(), (std::vector<std::string>{"a0", "a1"}));
}

TEST(DatasetTest, CreateWithNames) {
  auto d = Dataset::Create(Matrix(2, 2), {"age", "income"});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().attribute_names()[1], "income");
}

TEST(DatasetTest, CreateRejectsNameCountMismatch) {
  auto d = Dataset::Create(Matrix(2, 3), {"a", "b"});
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetTest, CreateRejectsDuplicateNames) {
  auto d = Dataset::Create(Matrix(2, 2), {"x", "x"});
  EXPECT_FALSE(d.ok());
  EXPECT_NE(d.status().message().find("duplicate"), std::string::npos);
}

TEST(DatasetTest, AttributeIndexLookup) {
  auto d = Dataset::Create(Matrix(1, 3), {"a", "b", "c"});
  ASSERT_TRUE(d.ok());
  auto idx = d.value().AttributeIndex("b");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx.value(), 1u);
  EXPECT_FALSE(d.value().AttributeIndex("zzz").ok());
  EXPECT_EQ(d.value().AttributeIndex("zzz").status().code(),
            StatusCode::kNotFound);
}

TEST(DatasetTest, RecordAndAttributeAccess) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  Dataset d(m);
  EXPECT_EQ(d.Record(1), (Vector{3, 4}));
  EXPECT_EQ(d.Attribute(1), (Vector{2, 4, 6}));
}

TEST(DatasetTest, MutableRecordsWritesThrough) {
  Dataset d(Matrix(2, 2));
  d.mutable_records()(0, 0) = 42.0;
  EXPECT_DOUBLE_EQ(d.records()(0, 0), 42.0);
}

}  // namespace
}  // namespace data
}  // namespace randrecon
