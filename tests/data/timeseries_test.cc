#include "data/timeseries.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/vector_ops.h"

namespace randrecon {
namespace data {
namespace {

using linalg::Matrix;
using linalg::Vector;

TEST(Ar1SpecTest, StationaryVariance) {
  Ar1Spec spec;
  spec.coefficient = 0.8;
  spec.innovation_stddev = 3.0;
  EXPECT_NEAR(Ar1StationaryVariance(spec), 9.0 / 0.36, 1e-12);
}

TEST(Ar1SpecTest, AutocovarianceDecaysGeometrically) {
  Ar1Spec spec;
  spec.coefficient = 0.5;
  spec.innovation_stddev = 1.0;
  const double var = Ar1StationaryVariance(spec);
  EXPECT_DOUBLE_EQ(Ar1Autocovariance(spec, 0), var);
  EXPECT_DOUBLE_EQ(Ar1Autocovariance(spec, 1), 0.5 * var);
  EXPECT_DOUBLE_EQ(Ar1Autocovariance(spec, 3), 0.125 * var);
}

TEST(GenerateAr1Test, ValidationErrors) {
  stats::Rng rng(211);
  Ar1Spec bad;
  bad.coefficient = 1.0;
  EXPECT_FALSE(GenerateAr1Series(bad, 10, &rng).ok());
  bad.coefficient = 0.5;
  bad.innovation_stddev = 0.0;
  EXPECT_FALSE(GenerateAr1Series(bad, 10, &rng).ok());
  bad.innovation_stddev = 1.0;
  EXPECT_FALSE(GenerateAr1Series(bad, 0, &rng).ok());
}

TEST(GenerateAr1Test, SampleMomentsMatchTheory) {
  stats::Rng rng(212);
  Ar1Spec spec;
  spec.coefficient = 0.9;
  spec.innovation_stddev = 2.0;
  spec.mean = 10.0;
  auto series = GenerateAr1Series(spec, 200000, &rng);
  ASSERT_TRUE(series.ok());
  EXPECT_NEAR(linalg::Mean(series.value()), 10.0, 0.3);
  EXPECT_NEAR(linalg::Variance(series.value()), Ar1StationaryVariance(spec),
              0.08 * Ar1StationaryVariance(spec));
}

TEST(GenerateAr1Test, EmpiricalLag1Autocorrelation) {
  stats::Rng rng(213);
  Ar1Spec spec;
  spec.coefficient = 0.7;
  spec.innovation_stddev = 1.0;
  auto series = GenerateAr1Series(spec, 100000, &rng);
  ASSERT_TRUE(series.ok());
  const Vector& x = series.value();
  const double mean = linalg::Mean(x);
  double num = 0.0, denom = 0.0;
  for (size_t t = 0; t + 1 < x.size(); ++t) {
    num += (x[t] - mean) * (x[t + 1] - mean);
    denom += (x[t] - mean) * (x[t] - mean);
  }
  EXPECT_NEAR(num / denom, 0.7, 0.02);
}

TEST(GenerateAr1Test, ZeroCoefficientIsWhiteNoise) {
  stats::Rng rng(214);
  Ar1Spec spec;
  spec.coefficient = 0.0;
  spec.innovation_stddev = 1.0;
  auto series = GenerateAr1Series(spec, 50000, &rng);
  ASSERT_TRUE(series.ok());
  const Vector& x = series.value();
  const double mean = linalg::Mean(x);
  double num = 0.0, denom = 0.0;
  for (size_t t = 0; t + 1 < x.size(); ++t) {
    num += (x[t] - mean) * (x[t + 1] - mean);
    denom += (x[t] - mean) * (x[t] - mean);
  }
  EXPECT_NEAR(num / denom, 0.0, 0.02);
}

TEST(EmbedSeriesTest, WindowsAreSlices) {
  const Vector series{1, 2, 3, 4, 5};
  Matrix windows = EmbedSeries(series, 3);
  EXPECT_EQ(windows.rows(), 3u);
  EXPECT_EQ(windows.cols(), 3u);
  EXPECT_EQ(windows.Row(0), (Vector{1, 2, 3}));
  EXPECT_EQ(windows.Row(2), (Vector{3, 4, 5}));
}

TEST(EmbedSeriesTest, WindowOneIsColumnVector) {
  const Vector series{7, 8};
  Matrix windows = EmbedSeries(series, 1);
  EXPECT_EQ(windows.rows(), 2u);
  EXPECT_EQ(windows.cols(), 1u);
}

TEST(EmbedSeriesDeathTest, WindowLargerThanSeriesAborts) {
  EXPECT_DEATH({ EmbedSeries(Vector{1, 2}, 3); }, "window");
}

TEST(UnembedTest, RoundTripsExactEmbedding) {
  const Vector series{1, 4, 9, 16, 25, 36};
  for (size_t window : {1u, 2u, 4u, 6u}) {
    Matrix windows = EmbedSeries(series, window);
    const Vector back = UnembedSeriesAverage(windows, series.size());
    for (size_t t = 0; t < series.size(); ++t) {
      EXPECT_NEAR(back[t], series[t], 1e-12) << "window=" << window;
    }
  }
}

TEST(UnembedTest, AveragesDisagreeingWindows) {
  // Two windows covering t = 1 with different values: 10 and 20 -> 15.
  Matrix windows{{0, 10}, {20, 0}};
  const Vector back = UnembedSeriesAverage(windows, 3);
  EXPECT_DOUBLE_EQ(back[0], 0.0);
  EXPECT_DOUBLE_EQ(back[1], 15.0);
  EXPECT_DOUBLE_EQ(back[2], 0.0);
}

}  // namespace
}  // namespace data
}  // namespace randrecon
