#include "data/synthetic.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/eigen.h"
#include "linalg/matrix_util.h"
#include "stats/moments.h"

namespace randrecon {
namespace data {
namespace {

using linalg::Matrix;
using linalg::Vector;

TEST(TwoLevelSpectrumTest, Shape) {
  const Vector s = TwoLevelSpectrum(5, 2, 100.0, 1.0);
  EXPECT_EQ(s, (Vector{100, 100, 1, 1, 1}));
}

TEST(TwoLevelSpectrumTest, AllPrincipal) {
  const Vector s = TwoLevelSpectrum(3, 3, 7.0, 1.0);
  EXPECT_EQ(s, (Vector{7, 7, 7}));
}

TEST(TwoLevelSpectrumWithTraceTest, TraceIsPinned) {
  // Eq. 12: Σλ must equal m · per-attribute variance.
  for (size_t m : {5u, 20u, 100u}) {
    const Vector s = TwoLevelSpectrumWithTrace(m, 5, 1.0, 100.0);
    EXPECT_NEAR(SpectrumTrace(s), static_cast<double>(m) * 100.0, 1e-9)
        << "m=" << m;
  }
}

TEST(TwoLevelSpectrumWithTraceTest, ResidualsStayFixed) {
  const Vector s = TwoLevelSpectrumWithTrace(10, 2, 1.5, 50.0);
  for (size_t i = 2; i < 10; ++i) EXPECT_DOUBLE_EQ(s[i], 1.5);
  EXPECT_DOUBLE_EQ(s[0], s[1]);
  EXPECT_GT(s[0], 1.5);
}

TEST(TwoLevelSpectrumWithTraceDeathTest, ImpossibleTraceAborts) {
  // Residual 100 with average variance 1: principal would be < residual.
  EXPECT_DEATH({ TwoLevelSpectrumWithTrace(10, 2, 100.0, 1.0); },
               "trace too small");
}

TEST(GenerateSpectrumDatasetTest, ShapesAndGroundTruth) {
  stats::Rng rng(61);
  SyntheticDatasetSpec spec;
  spec.eigenvalues = {50.0, 10.0, 1.0};
  auto result = GenerateSpectrumDataset(spec, 100, &rng);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const SyntheticDataset& s = result.value();
  EXPECT_EQ(s.dataset.num_records(), 100u);
  EXPECT_EQ(s.dataset.num_attributes(), 3u);
  EXPECT_EQ(s.covariance.rows(), 3u);
  EXPECT_EQ(s.eigenvalues, spec.eigenvalues);
  EXPECT_TRUE(linalg::HasOrthonormalColumns(s.eigenvectors, 1e-9));
}

TEST(GenerateSpectrumDatasetTest, CovarianceMatchesSpectrum) {
  stats::Rng rng(62);
  SyntheticDatasetSpec spec;
  spec.eigenvalues = {9.0, 4.0, 1.0, 0.25};
  auto result = GenerateSpectrumDataset(spec, 10, &rng);
  ASSERT_TRUE(result.ok());
  auto eig = linalg::SymmetricEigen(result.value().covariance);
  ASSERT_TRUE(eig.ok());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(eig.value().eigenvalues[i], spec.eigenvalues[i], 1e-9);
  }
}

TEST(GenerateSpectrumDatasetTest, SampleCovarianceApproachesTruth) {
  stats::Rng rng(63);
  SyntheticDatasetSpec spec;
  spec.eigenvalues = {20.0, 5.0, 1.0};
  auto result = GenerateSpectrumDataset(spec, 40000, &rng);
  ASSERT_TRUE(result.ok());
  const Matrix sample_cov =
      stats::SampleCovariance(result.value().dataset.records());
  EXPECT_LT(linalg::MaxAbsDifference(sample_cov, result.value().covariance),
            0.05 * linalg::FrobeniusNorm(result.value().covariance));
}

TEST(GenerateSpectrumDatasetTest, MeanIsRespected) {
  stats::Rng rng(64);
  SyntheticDatasetSpec spec;
  spec.eigenvalues = {1.0, 1.0};
  spec.mean = {10.0, -5.0};
  auto result = GenerateSpectrumDataset(spec, 20000, &rng);
  ASSERT_TRUE(result.ok());
  const Vector means = stats::ColumnMeans(result.value().dataset.records());
  EXPECT_NEAR(means[0], 10.0, 0.05);
  EXPECT_NEAR(means[1], -5.0, 0.05);
}

TEST(GenerateSpectrumDatasetTest, TraceEqualsSummedAttributeVariances) {
  // Eq. 12 again, now on the generated covariance matrix.
  stats::Rng rng(65);
  SyntheticDatasetSpec spec;
  spec.eigenvalues = TwoLevelSpectrum(8, 3, 40.0, 2.0);
  auto result = GenerateSpectrumDataset(spec, 10, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(linalg::Trace(result.value().covariance),
              SpectrumTrace(spec.eigenvalues), 1e-9);
}

TEST(GenerateSpectrumDatasetTest, RejectsEmptySpectrum) {
  stats::Rng rng(66);
  EXPECT_FALSE(GenerateSpectrumDataset({}, 10, &rng).ok());
}

TEST(GenerateSpectrumDatasetTest, RejectsNegativeEigenvalue) {
  stats::Rng rng(67);
  SyntheticDatasetSpec spec;
  spec.eigenvalues = {1.0, -0.5};
  EXPECT_FALSE(GenerateSpectrumDataset(spec, 10, &rng).ok());
}

TEST(GenerateSpectrumDatasetTest, RejectsMeanLengthMismatch) {
  stats::Rng rng(68);
  SyntheticDatasetSpec spec;
  spec.eigenvalues = {1.0, 1.0};
  spec.mean = {0.0};
  EXPECT_FALSE(GenerateSpectrumDataset(spec, 10, &rng).ok());
}

TEST(GaussianMixtureDatasetTest, ShapesAndLabels) {
  stats::Rng rng(69);
  Matrix means{{-10.0, -10.0}, {10.0, 10.0}};
  auto mixture =
      GenerateGaussianMixtureDataset(means, {4.0, 1.0}, 500, &rng);
  ASSERT_TRUE(mixture.ok()) << mixture.status().ToString();
  EXPECT_EQ(mixture.value().dataset.num_records(), 500u);
  EXPECT_EQ(mixture.value().dataset.num_attributes(), 2u);
  EXPECT_EQ(mixture.value().labels.size(), 500u);
  // Both clusters should be populated.
  size_t cluster_one = 0;
  for (size_t label : mixture.value().labels) cluster_one += label;
  EXPECT_GT(cluster_one, 100u);
  EXPECT_LT(cluster_one, 400u);
}

TEST(GaussianMixtureDatasetTest, RecordsCenterOnTheirClusterMean) {
  stats::Rng rng(70);
  Matrix means{{-20.0, 0.0}, {20.0, 0.0}};
  auto mixture =
      GenerateGaussianMixtureDataset(means, {1.0, 1.0}, 3000, &rng);
  ASSERT_TRUE(mixture.ok());
  double sum0 = 0.0;
  size_t count0 = 0;
  for (size_t i = 0; i < 3000; ++i) {
    if (mixture.value().labels[i] == 0) {
      sum0 += mixture.value().dataset.records()(i, 0);
      ++count0;
    }
  }
  EXPECT_NEAR(sum0 / static_cast<double>(count0), -20.0, 0.3);
}

TEST(GaussianMixtureDatasetTest, Validation) {
  stats::Rng rng(71);
  EXPECT_FALSE(
      GenerateGaussianMixtureDataset(Matrix(), {1.0}, 10, &rng).ok());
  EXPECT_FALSE(GenerateGaussianMixtureDataset(Matrix(2, 3), {1.0, 2.0}, 10,
                                              &rng)
                   .ok());
}

TEST(GenerateSpectrumDatasetTest, DeterministicForFixedSeed) {
  SyntheticDatasetSpec spec;
  spec.eigenvalues = {5.0, 2.0};
  stats::Rng rng1(99), rng2(99);
  auto a = GenerateSpectrumDataset(spec, 20, &rng1);
  auto b = GenerateSpectrumDataset(spec, 20, &rng2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a.value().dataset.records() == b.value().dataset.records());
}

}  // namespace
}  // namespace data
}  // namespace randrecon
