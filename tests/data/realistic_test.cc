#include "data/realistic.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/matrix_util.h"
#include "stats/moments.h"

namespace randrecon {
namespace data {
namespace {

using linalg::Matrix;

TEST(LatentFactorTest, GeneratesRequestedShape) {
  stats::Rng rng(71);
  auto table = GenerateLatentFactorTable(MedicalRecordsSpec(), 500, &rng);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table.value().num_records(), 500u);
  EXPECT_EQ(table.value().num_attributes(), 8u);
  EXPECT_EQ(table.value().attribute_names()[0], "age");
}

TEST(LatentFactorTest, MeansMatchSpec) {
  stats::Rng rng(72);
  const LatentFactorSpec spec = MedicalRecordsSpec();
  auto table = GenerateLatentFactorTable(spec, 40000, &rng);
  ASSERT_TRUE(table.ok());
  const linalg::Vector means =
      stats::ColumnMeans(table.value().records());
  for (size_t j = 0; j < spec.mean.size(); ++j) {
    const double scale = std::max(1.0, std::fabs(spec.mean[j]));
    EXPECT_NEAR(means[j] / scale, spec.mean[j] / scale, 0.05) << "attr " << j;
  }
}

TEST(LatentFactorTest, SampleCovarianceMatchesImpliedCovariance) {
  stats::Rng rng(73);
  const LatentFactorSpec spec = HouseholdFinanceSpec();
  auto table = GenerateLatentFactorTable(spec, 60000, &rng);
  ASSERT_TRUE(table.ok());
  const Matrix implied = LatentFactorCovariance(spec);
  const Matrix sample = stats::SampleCovariance(table.value().records());
  EXPECT_LT(linalg::MaxAbsDifference(sample, implied),
            0.05 * linalg::FrobeniusNorm(implied));
}

TEST(LatentFactorTest, AttributesAreStronglyCorrelated) {
  // The whole point of these tables: shared factors induce the strong
  // correlations PCA-DR/BE-DR exploit.
  stats::Rng rng(74);
  auto table = GenerateLatentFactorTable(MedicalRecordsSpec(), 5000, &rng);
  ASSERT_TRUE(table.ok());
  const Matrix corr = stats::SampleCorrelation(table.value().records());
  // Systolic and diastolic blood pressure share the cardio factor.
  double max_offdiag = 0.0;
  for (size_t i = 0; i < corr.rows(); ++i) {
    for (size_t j = i + 1; j < corr.cols(); ++j) {
      max_offdiag = std::max(max_offdiag, std::fabs(corr(i, j)));
    }
  }
  EXPECT_GT(max_offdiag, 0.7);
}

TEST(LatentFactorTest, ImpliedCovarianceIsSymmetricPsd) {
  const Matrix cov = LatentFactorCovariance(MedicalRecordsSpec());
  EXPECT_TRUE(linalg::IsSymmetric(cov, 1e-9));
  // Diagonal entries are variances.
  for (size_t i = 0; i < cov.rows(); ++i) EXPECT_GT(cov(i, i), 0.0);
}

TEST(LatentFactorTest, RejectsInconsistentSpec) {
  stats::Rng rng(75);
  LatentFactorSpec spec = MedicalRecordsSpec();
  spec.mean.pop_back();
  EXPECT_FALSE(GenerateLatentFactorTable(spec, 10, &rng).ok());
}

TEST(LatentFactorTest, RejectsNegativeIdiosyncraticStddev) {
  stats::Rng rng(76);
  LatentFactorSpec spec = HouseholdFinanceSpec();
  spec.idiosyncratic_stddev[0] = -1.0;
  EXPECT_FALSE(GenerateLatentFactorTable(spec, 10, &rng).ok());
}

TEST(LatentFactorTest, RejectsEmptyLoadings) {
  stats::Rng rng(77);
  LatentFactorSpec spec;
  EXPECT_FALSE(GenerateLatentFactorTable(spec, 10, &rng).ok());
}

TEST(LatentFactorTest, BothBuiltInSpecsAreConsistent) {
  stats::Rng rng(78);
  EXPECT_TRUE(GenerateLatentFactorTable(MedicalRecordsSpec(), 5, &rng).ok());
  EXPECT_TRUE(GenerateLatentFactorTable(HouseholdFinanceSpec(), 5, &rng).ok());
}

}  // namespace
}  // namespace data
}  // namespace randrecon
