// Tests for the sharded multi-file column store (src/data/shard_store.h).
//
// The manifest layout under test is specified byte-by-byte in
// docs/FORMAT.md §7; the corruption tests below patch manifests and
// shard files at the offsets that document defines and expect a Status
// NAMING THE OFFENDING SHARD — never a crash and never a silently wrong
// stream. The injected failures cover the ISSUE 5 checklist: truncated
// shard, deleted shard, swapped shards, and a stale manifest after a
// shard was resealed.

#include "data/shard_store.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/file_io.h"
#include "stats/rng.h"

namespace randrecon {
namespace data {
namespace {

using linalg::Matrix;

/// Scratch manifest path whose manifest + conventionally-named shards
/// are removed on destruction.
class ScratchShardedStore {
 public:
  explicit ScratchShardedStore(const std::string& name)
      : path_("shard_store_test_" + name) {}
  ~ScratchShardedStore() { RemoveShardedStoreFiles(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string ReadFileBytes(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.is_open()) << path;
  std::string bytes((std::istreambuf_iterator<char>(file)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(file.is_open()) << path;
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Recomputes the trailing manifest hash after a test patches a field
/// (docs/FORMAT.md §7.3: RRH64 over everything before the last 8 bytes).
void ResealManifest(std::string* bytes) {
  ASSERT_GE(bytes->size(), 8u);
  const uint64_t hash =
      ColumnStoreHash(bytes->data(), bytes->size() - sizeof(uint64_t));
  std::memcpy(&(*bytes)[bytes->size() - sizeof(uint64_t)], &hash,
              sizeof(hash));
}

std::vector<std::string> Names(size_t m) {
  std::vector<std::string> names;
  for (size_t j = 0; j < m; ++j) names.push_back("a" + std::to_string(j));
  return names;
}

/// Streams `records` into a sharded store in uneven chunks (exercising
/// shard- and block-boundary straddles).
void WriteSharded(const std::string& manifest_path, const Matrix& records,
                  ShardedStoreOptions options) {
  auto created = ShardedStoreWriter::Create(manifest_path,
                                            Names(records.cols()), options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ShardedStoreWriter writer = std::move(created).value();
  size_t row = 0;
  size_t chunk_rows = 1;
  while (row < records.rows()) {
    const size_t take = std::min(chunk_rows, records.rows() - row);
    Matrix chunk = records.Block(row, row + take, 0, records.cols());
    ASSERT_TRUE(writer.Append(chunk, take).ok());
    row += take;
    chunk_rows = chunk_rows * 2 + 1;  // 1, 3, 7, ... uneven on purpose.
  }
  EXPECT_EQ(writer.rows_written(), records.rows());
  ASSERT_TRUE(writer.Close().ok());
}

Matrix ReadAllSharded(const std::string& manifest_path) {
  auto reader = ShardedStoreReader::Open(manifest_path);
  EXPECT_TRUE(reader.ok()) << reader.status().ToString();
  ShardedStoreReader sharded = std::move(reader).value();
  Matrix records(sharded.num_records(), sharded.num_attributes());
  EXPECT_TRUE(sharded.ReadRows(0, sharded.num_records(), &records).ok());
  return records;
}

ShardedStoreOptions SmallShards(size_t shard_rows, size_t block_rows = 64) {
  ShardedStoreOptions options;
  options.shard_rows = shard_rows;
  options.block_rows = block_rows;
  return options;
}

TEST(ShardManifestTest, WriteReadRoundTrip) {
  ScratchShardedStore store("manifest_roundtrip.rrcm");
  ShardManifest manifest;
  manifest.num_records = 250;
  manifest.column_names = {"age", "income", "zip"};
  manifest.shards = {
      {"a.rrcs", 0, 100, 0x1111111111111111ull},
      {"sub/b.rrcs", 100, 150, 0x2222222222222222ull},
  };
  ASSERT_TRUE(WriteShardManifest(manifest, store.path()).ok());

  auto read = ReadShardManifest(store.path());
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().version, kShardManifestVersion);
  EXPECT_EQ(read.value().num_records, 250u);
  EXPECT_EQ(read.value().column_names, manifest.column_names);
  ASSERT_EQ(read.value().shards.size(), 2u);
  EXPECT_EQ(read.value().shards[1].relative_path, "sub/b.rrcs");
  EXPECT_EQ(read.value().shards[1].row_begin, 100u);
  EXPECT_EQ(read.value().shards[1].row_count, 150u);
  EXPECT_EQ(read.value().shards[1].seal_digest, 0x2222222222222222ull);
}

TEST(ShardManifestTest, WriterRejectsBadSpansAndUnsafePaths) {
  ScratchShardedStore store("manifest_bad.rrcm");
  ShardManifest manifest;
  manifest.num_records = 10;
  manifest.column_names = {"a"};

  manifest.shards = {{"x.rrcs", 0, 4, 0}, {"y.rrcs", 5, 5, 0}};  // gap at 4.
  Status status = WriteShardManifest(manifest, store.path());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("shard 1"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("gap"), std::string::npos);

  manifest.shards = {{"x.rrcs", 0, 6, 0}, {"y.rrcs", 4, 6, 0}};  // overlap.
  status = WriteShardManifest(manifest, store.path());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("overlap"), std::string::npos);

  manifest.shards = {{"../escape.rrcs", 0, 10, 0}};
  status = WriteShardManifest(manifest, store.path());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("relative"), std::string::npos);

  manifest.shards = {{"/abs.rrcs", 0, 10, 0}};
  EXPECT_EQ(WriteShardManifest(manifest, store.path()).code(),
            StatusCode::kInvalidArgument);

  // Two entries aliasing one file would silently duplicate records.
  manifest.shards = {{"x.rrcs", 0, 5, 0}, {"x.rrcs", 5, 5, 0}};
  status = WriteShardManifest(manifest, store.path());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("duplicate shard path"), std::string::npos)
      << status.ToString();
}

TEST(ShardedStoreTest, RollsShardsAndStreamsBitwise) {
  ScratchShardedStore store("roundtrip.rrcm");
  stats::Rng rng(21);
  const Matrix records = rng.GaussianMatrix(1000, 5);
  WriteSharded(store.path(), records, SmallShards(/*shard_rows=*/300));

  auto opened = ShardedStoreReader::Open(store.path());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ShardedStoreReader reader = std::move(opened).value();
  EXPECT_EQ(reader.num_records(), 1000u);
  EXPECT_EQ(reader.num_attributes(), 5u);
  EXPECT_EQ(reader.num_shards(), 4u);  // 300 + 300 + 300 + 100.
  EXPECT_EQ(reader.manifest().shards[3].row_begin, 900u);
  EXPECT_EQ(reader.manifest().shards[3].row_count, 100u);
  EXPECT_EQ(reader.attribute_names(), Names(5));

  EXPECT_TRUE(ReadAllSharded(store.path()) == records);  // bitwise ==.

  // Cross-shard and mid-shard ranges agree with the source matrix.
  for (const auto range : {std::pair<size_t, size_t>{0, 1000},
                           {299, 302},   // straddles shards 0|1
                           {250, 910},   // spans four shards
                           {950, 1000},  // inside the final partial shard
                           {300, 600}}) {
    const size_t rows = range.second - range.first;
    Matrix buffer(rows, 5);
    ASSERT_TRUE(reader.ReadRows(range.first, rows, &buffer).ok());
    EXPECT_TRUE(buffer == records.Block(range.first, range.second, 0, 5))
        << "range [" << range.first << ", " << range.second << ")";
  }

  // Out-of-range reads fail as a Status, not a crash.
  Matrix buffer(2, 5);
  EXPECT_EQ(reader.ReadRows(999, 2, &buffer).code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardedStoreTest, ExactMultipleLeavesNoEmptyTrailingShard) {
  ScratchShardedStore store("exact.rrcm");
  stats::Rng rng(22);
  const Matrix records = rng.GaussianMatrix(600, 3);
  WriteSharded(store.path(), records, SmallShards(/*shard_rows=*/300));
  auto reader = ShardedStoreReader::Open(store.path());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value().num_shards(), 2u);
  EXPECT_TRUE(ReadAllSharded(store.path()) == records);
}

TEST(ShardedStoreTest, EmptyStoreRoundTrips) {
  ScratchShardedStore store("empty.rrcm");
  auto created = ShardedStoreWriter::Create(store.path(), Names(4),
                                            SmallShards(/*shard_rows=*/100));
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ShardedStoreWriter writer = std::move(created).value();
  ASSERT_TRUE(writer.Close().ok());

  auto reader = ShardedStoreReader::Open(store.path());
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader.value().num_records(), 0u);
  EXPECT_EQ(reader.value().num_shards(), 1u);
  auto dataset = ReadShardedStoreDataset(store.path());
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset.value().num_records(), 0u);
}

TEST(ShardedStoreTest, ParallelSealProducesIdenticalManifestAndData) {
  // Many small shards sealed in small parallel batches must yield a
  // manifest bitwise identical to a serial writer's (per-shard digests
  // are pure functions; parallel sealing is scheduling only).
  stats::Rng rng(23);
  const Matrix records = rng.GaussianMatrix(730, 4);

  ScratchShardedStore serial("seal_serial.rrcm");
  ShardedStoreOptions serial_options = SmallShards(/*shard_rows=*/50);
  serial_options.seal_batch_shards = 1;
  serial_options.parallel.num_threads = 1;
  WriteSharded(serial.path(), records, serial_options);

  ScratchShardedStore parallel("seal_parallel.rrcm");
  ShardedStoreOptions parallel_options = SmallShards(/*shard_rows=*/50);
  parallel_options.seal_batch_shards = 4;
  parallel_options.parallel.num_threads = 4;
  WriteSharded(parallel.path(), records, parallel_options);

  EXPECT_TRUE(ReadAllSharded(serial.path()) == records);
  EXPECT_TRUE(ReadAllSharded(parallel.path()) == records);
  // The manifests differ only in the stem embedded in shard paths, so
  // compare the parsed geometry + digests.
  auto a = ReadShardManifest(serial.path());
  auto b = ReadShardManifest(parallel.path());
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a.value().shards.size(), b.value().shards.size());
  EXPECT_EQ(a.value().shards.size(), 15u);  // ceil(730 / 50)
  for (size_t s = 0; s < a.value().shards.size(); ++s) {
    EXPECT_EQ(a.value().shards[s].row_begin, b.value().shards[s].row_begin);
    EXPECT_EQ(a.value().shards[s].row_count, b.value().shards[s].row_count);
    EXPECT_EQ(a.value().shards[s].seal_digest, b.value().shards[s].seal_digest)
        << "shard " << s;
  }
}

// ---------------------------------------------------------------------------
// Failure injection: every corruption names the offending shard.
// ---------------------------------------------------------------------------

class ShardFailureTest : public ::testing::Test {
 protected:
  static constexpr size_t kRecords = 900;
  static constexpr size_t kAttributes = 4;
  static constexpr size_t kShardRows = 300;

  void SetUp() override {
    stats::Rng rng(31);
    records_ = rng.GaussianMatrix(kRecords, kAttributes);
    WriteSharded(store_.path(), records_, SmallShards(kShardRows));
    directory_ = ManifestDirectory(store_.path());
    stem_ = ShardStemForManifest(store_.path());
  }

  std::string ShardPath(size_t index) const {
    return directory_ + ShardFileName(stem_, index);
  }

  /// Opens the manifest and reads the full stream; returns the status.
  Status ReadAllStatus() {
    auto reader = ShardedStoreReader::Open(store_.path());
    if (!reader.ok()) return reader.status();
    ShardedStoreReader sharded = std::move(reader).value();
    Matrix buffer(sharded.num_records(), sharded.num_attributes());
    return sharded.ReadRows(0, sharded.num_records(), &buffer);
  }

  /// The status must name shard `index` by number and by file name.
  void ExpectNamesShard(const Status& status, size_t index) {
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("shard " + std::to_string(index)),
              std::string::npos)
        << status.ToString();
    EXPECT_NE(status.message().find(ShardFileName(stem_, index)),
              std::string::npos)
        << status.ToString();
  }

  ScratchShardedStore store_{"failures.rrcm"};
  std::string directory_;
  std::string stem_;
  Matrix records_;
};

TEST_F(ShardFailureTest, DeletedShardIsNamed) {
  ASSERT_EQ(std::remove(ShardPath(2).c_str()), 0);
  const Status status = ReadAllStatus();
  EXPECT_EQ(status.code(), StatusCode::kIoError) << status.ToString();
  ExpectNamesShard(status, 2);
}

TEST_F(ShardFailureTest, TruncatedShardIsNamed) {
  std::string bytes = ReadFileBytes(ShardPath(1));
  bytes.resize(bytes.size() - 8);
  WriteFileBytes(ShardPath(1), bytes);
  const Status status = ReadAllStatus();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << status.ToString();
  ExpectNamesShard(status, 1);
  EXPECT_NE(status.message().find("truncated"), std::string::npos)
      << status.ToString();
}

TEST_F(ShardFailureTest, SwappedShardsAreNamed) {
  // Shards 0 and 1 have identical schema, geometry and row counts — only
  // the seal digest (which binds block content) can tell them apart.
  const std::string bytes0 = ReadFileBytes(ShardPath(0));
  const std::string bytes1 = ReadFileBytes(ShardPath(1));
  WriteFileBytes(ShardPath(0), bytes1);
  WriteFileBytes(ShardPath(1), bytes0);
  const Status status = ReadAllStatus();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << status.ToString();
  ExpectNamesShard(status, 0);
  EXPECT_NE(status.message().find("seal digest"), std::string::npos)
      << status.ToString();
}

TEST_F(ShardFailureTest, StaleManifestAfterResealIsNamed) {
  // Rewrite shard 2 with different records (same schema, same row count)
  // and seal it properly — only the manifest's digest is now stale.
  stats::Rng rng(77);
  const Matrix replacement = rng.GaussianMatrix(kShardRows, kAttributes);
  ColumnStoreOptions options;
  options.block_rows = 64;
  auto writer =
      ColumnStoreWriter::Create(ShardPath(2), Names(kAttributes), options);
  ASSERT_TRUE(writer.ok());
  ColumnStoreWriter shard_writer = std::move(writer).value();
  ASSERT_TRUE(shard_writer.Append(replacement, kShardRows).ok());
  ASSERT_TRUE(shard_writer.Close().ok());

  const Status status = ReadAllStatus();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << status.ToString();
  ExpectNamesShard(status, 2);
  EXPECT_NE(status.message().find("resealed"), std::string::npos)
      << status.ToString();
}

TEST_F(ShardFailureTest, SchemaMismatchIsNamed) {
  // Replace shard 1 with a store of the same shape but different column
  // names: the manifest/header schema cross-check must fire.
  stats::Rng rng(78);
  const Matrix replacement = rng.GaussianMatrix(kShardRows, kAttributes);
  ColumnStoreOptions options;
  options.block_rows = 64;
  std::vector<std::string> other_names = {"w", "x", "y", "z"};
  auto writer = ColumnStoreWriter::Create(ShardPath(1), other_names, options);
  ASSERT_TRUE(writer.ok());
  ColumnStoreWriter shard_writer = std::move(writer).value();
  ASSERT_TRUE(shard_writer.Append(replacement, kShardRows).ok());
  ASSERT_TRUE(shard_writer.Close().ok());

  const Status status = ReadAllStatus();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << status.ToString();
  ExpectNamesShard(status, 1);
  EXPECT_NE(status.message().find("schema"), std::string::npos)
      << status.ToString();
}

TEST_F(ShardFailureTest, RowCountMismatchIsNamed) {
  stats::Rng rng(79);
  const Matrix replacement = rng.GaussianMatrix(kShardRows / 2, kAttributes);
  ColumnStoreOptions options;
  options.block_rows = 64;
  auto writer =
      ColumnStoreWriter::Create(ShardPath(0), Names(kAttributes), options);
  ASSERT_TRUE(writer.ok());
  ColumnStoreWriter shard_writer = std::move(writer).value();
  ASSERT_TRUE(shard_writer.Append(replacement, kShardRows / 2).ok());
  ASSERT_TRUE(shard_writer.Close().ok());

  const Status status = ReadAllStatus();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << status.ToString();
  ExpectNamesShard(status, 0);
  EXPECT_NE(status.message().find("manifest assigns"), std::string::npos)
      << status.ToString();
}

TEST_F(ShardFailureTest, LazyOpenTouchesOnlySpannedShards) {
  // Corrupting shard 2 must not affect reads confined to shards 0-1.
  ASSERT_EQ(std::remove(ShardPath(2).c_str()), 0);
  auto reader = ShardedStoreReader::Open(store_.path());
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  ShardedStoreReader sharded = std::move(reader).value();
  Matrix buffer(2 * kShardRows, kAttributes);
  EXPECT_TRUE(sharded.ReadRows(0, 2 * kShardRows, &buffer).ok());
  EXPECT_TRUE(buffer == records_.Block(0, 2 * kShardRows, 0, kAttributes));
  Matrix tail(1, kAttributes);
  const Status status = sharded.ReadRows(kRecords - 1, 1, &tail);
  ExpectNamesShard(status, 2);
}

TEST_F(ShardFailureTest, ManifestChecksumMismatchIsReported) {
  std::string bytes = ReadFileBytes(store_.path());
  bytes[20] ^= 0x01;  // Flip a num_records bit without resealing.
  WriteFileBytes(store_.path(), bytes);
  const Status status = ReadAllStatus();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("checksum mismatch"), std::string::npos)
      << status.ToString();
}

TEST_F(ShardFailureTest, ManifestSpanOverlapIsNamedAfterReseal) {
  std::string bytes = ReadFileBytes(store_.path());
  // Patch shard 1's row_begin (the u64 right after its path bytes) from
  // 300 to 200 and reseal: parse must reject the overlap, naming shard 1.
  const std::string path1 = ShardFileName(stem_, 1);
  const size_t path_pos = bytes.find(path1);
  ASSERT_NE(path_pos, std::string::npos);
  const size_t row_begin_offset = path_pos + path1.size();
  const uint64_t bad_begin = 200;
  std::memcpy(&bytes[row_begin_offset], &bad_begin, sizeof(bad_begin));
  ResealManifest(&bytes);
  WriteFileBytes(store_.path(), bytes);

  const Status status = ReadAllStatus();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  ExpectNamesShard(status, 1);
  EXPECT_NE(status.message().find("overlap"), std::string::npos)
      << status.ToString();
}

TEST_F(ShardFailureTest, HostileShardPathIsRejected) {
  std::string bytes = ReadFileBytes(store_.path());
  // Rewrite shard 0's path to climb out of the directory (same length,
  // so every later offset is untouched), then reseal.
  const std::string path0 = ShardFileName(stem_, 0);
  const size_t path_pos = bytes.find(path0);
  ASSERT_NE(path_pos, std::string::npos);
  bytes[path_pos] = '.';
  bytes[path_pos + 1] = '.';
  bytes[path_pos + 2] = '/';
  ResealManifest(&bytes);
  WriteFileBytes(store_.path(), bytes);

  const Status status = ReadAllStatus();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("relative"), std::string::npos)
      << status.ToString();
}

TEST_F(ShardFailureTest, HostileRecordCountFailsBeforeAllocating) {
  // A resealed manifest claiming ~10^12 records must fail as a Status
  // (the shard's real header refutes the count) BEFORE anything sizes
  // an n x m buffer from it — not crash on bad_alloc/OOM.
  std::string bytes = ReadFileBytes(store_.path());
  const uint64_t huge = 1ull << 40;
  std::memcpy(&bytes[16], &huge, sizeof(huge));  // num_records.
  const std::string path0 = ShardFileName(stem_, 0);
  const size_t path_pos = bytes.find(path0);
  ASSERT_NE(path_pos, std::string::npos);
  // Shard 0 row_count (row_begin + 8); spans must still tile [0, huge):
  // give shard 0 everything and shards 1-2 the old tail so only shard
  // 0's span changes.
  const uint64_t huge_count = huge - 2 * kShardRows;
  std::memcpy(&bytes[path_pos + path0.size() + 8], &huge_count,
              sizeof(huge_count));
  const std::string path1 = ShardFileName(stem_, 1);
  const size_t path1_pos = bytes.find(path1);
  ASSERT_NE(path1_pos, std::string::npos);
  uint64_t begin1 = huge_count;
  std::memcpy(&bytes[path1_pos + path1.size()], &begin1, sizeof(begin1));
  const std::string path2 = ShardFileName(stem_, 2);
  const size_t path2_pos = bytes.find(path2);
  ASSERT_NE(path2_pos, std::string::npos);
  uint64_t begin2 = huge_count + kShardRows;
  std::memcpy(&bytes[path2_pos + path2.size()], &begin2, sizeof(begin2));
  ResealManifest(&bytes);
  WriteFileBytes(store_.path(), bytes);

  auto dataset = ReadShardedStoreDataset(store_.path());
  ASSERT_FALSE(dataset.ok());
  EXPECT_EQ(dataset.status().code(), StatusCode::kInvalidArgument);
  ExpectNamesShard(dataset.status(), 0);
  EXPECT_NE(dataset.status().message().find("manifest assigns"),
            std::string::npos)
      << dataset.status().ToString();
}

TEST_F(ShardFailureTest, DuplicateShardPathIsRejectedOnRead) {
  std::string bytes = ReadFileBytes(store_.path());
  // Alias shard 1's path onto shard 0's (same length, so later offsets
  // are untouched), keep the spans contiguous, reseal: the parse must
  // reject the duplicate rather than serve shard 0's records twice.
  const std::string path0 = ShardFileName(stem_, 0);
  const std::string path1 = ShardFileName(stem_, 1);
  ASSERT_EQ(path0.size(), path1.size());
  const size_t path1_pos = bytes.find(path1);
  ASSERT_NE(path1_pos, std::string::npos);
  bytes.replace(path1_pos, path1.size(), path0);
  ResealManifest(&bytes);
  WriteFileBytes(store_.path(), bytes);

  const Status status = ReadAllStatus();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // The message names entry 1 with the (aliased) path it carries.
  EXPECT_NE(status.message().find("shard 1 ('" + path0 + "')"),
            std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("duplicate shard path"), std::string::npos)
      << status.ToString();
}

TEST(ShardedStoreTest, SealFailureIsStickyAndSuppressesTheManifest) {
  // Delete a rolled-but-unsealed shard out from under the writer: the
  // seal batch fails (the digest re-open finds no file), Close() must
  // report it, NOT write a manifest, and keep failing on retry — a
  // failed write never leaves a file claiming the store is complete.
  const std::string manifest_path = "shard_store_test_sealfail.rrcm";
  ShardedStoreOptions options = SmallShards(/*shard_rows=*/50);
  options.seal_batch_shards = 100;  // No mid-stream seals.
  auto created =
      ShardedStoreWriter::Create(manifest_path, Names(3), options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  {
    ShardedStoreWriter writer = std::move(created).value();
    stats::Rng rng(45);
    const Matrix records = rng.GaussianMatrix(100, 3);
    ASSERT_TRUE(writer.Append(records, 100).ok());
    // The unsealed shard streams into its temp file (the final path does
    // not exist until the seal's rename) — delete the temp.
    ASSERT_EQ(std::remove(
                  TempPathFor(
                      ShardFileName(ShardStemForManifest(manifest_path), 0))
                      .c_str()),
              0);
    const Status closed = writer.Close();
    EXPECT_FALSE(closed.ok());
    EXPECT_NE(closed.message().find("shard 0"), std::string::npos)
        << closed.ToString();
    EXPECT_EQ(writer.Close(), closed);  // Sticky on retry.
    // Appending into the poisoned writer keeps failing too.
    EXPECT_FALSE(writer.Append(records, 1).ok());
  }  // The destructor's best-effort Close must not resurrect a manifest.
  std::ifstream manifest(manifest_path, std::ios::binary);
  EXPECT_FALSE(manifest.is_open())
      << "a failed seal left a manifest claiming the store is complete";
  RemoveShardedStoreFiles(manifest_path);
}

TEST_F(ShardFailureTest, TrailingGarbageIsRejected) {
  std::string bytes = ReadFileBytes(store_.path());
  bytes.push_back('\0');
  WriteFileBytes(store_.path(), bytes);
  const Status status = ReadAllStatus();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(ShardFailureTest, UnsupportedVersionIsNamed) {
  std::string bytes = ReadFileBytes(store_.path());
  const uint32_t version = 99;
  std::memcpy(&bytes[8], &version, sizeof(version));
  ResealManifest(&bytes);
  WriteFileBytes(store_.path(), bytes);
  const Status status = ReadAllStatus();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("version 99"), std::string::npos)
      << status.ToString();
}

// ---------------------------------------------------------------------------
// Format detection, Dataset round trips, cleanup.
// ---------------------------------------------------------------------------

TEST(ShardedStoreTest, DetectedAndReadByTheAutoLoaders) {
  ScratchShardedStore store("autodetect.rrcm");
  stats::Rng rng(41);
  const Matrix records = rng.GaussianMatrix(120, 3);
  auto dataset = Dataset::Create(records, Names(3));
  ASSERT_TRUE(dataset.ok());
  ASSERT_TRUE(
      WriteShardedStore(dataset.value(), store.path(), SmallShards(50)).ok());

  auto format = DetectRecordFileFormat(store.path());
  ASSERT_TRUE(format.ok());
  EXPECT_EQ(format.value(), RecordFileFormat::kShardManifest);

  auto loaded = ReadRecords(store.path());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded.value().records() == records);
  EXPECT_EQ(loaded.value().attribute_names(), Names(3));
}

TEST(ShardedStoreTest, SealDigestIsAPureFunctionOfShardContent) {
  ScratchShardedStore store("digest.rrcm");
  stats::Rng rng(42);
  const Matrix records = rng.GaussianMatrix(200, 3);
  WriteSharded(store.path(), records, SmallShards(/*shard_rows=*/100));
  auto manifest = ReadShardManifest(store.path());
  ASSERT_TRUE(manifest.ok());
  for (size_t s = 0; s < 2; ++s) {
    auto shard = ColumnStoreReader::Open(
        ManifestDirectory(store.path()) +
        manifest.value().shards[s].relative_path);
    ASSERT_TRUE(shard.ok());
    EXPECT_EQ(ComputeShardSealDigest(shard.value()),
              manifest.value().shards[s].seal_digest)
        << "shard " << s;
  }
  // Different content => different digest.
  EXPECT_NE(manifest.value().shards[0].seal_digest,
            manifest.value().shards[1].seal_digest);
}

TEST(ShardedStoreTest, RewritingWithFewerShardsRemovesStaleOnes) {
  ScratchShardedStore store("reshard.rrcm");
  stats::Rng rng(44);
  const Matrix records = rng.GaussianMatrix(400, 3);
  WriteSharded(store.path(), records, SmallShards(/*shard_rows=*/100));  // 4.
  WriteSharded(store.path(), records, SmallShards(/*shard_rows=*/200));  // 2.

  const std::string stem = ShardStemForManifest(store.path());
  std::ifstream stale(ShardFileName(stem, 2), std::ios::binary);
  EXPECT_FALSE(stale.is_open())
      << "a stale shard from the 4-shard layout survived the 2-shard rewrite";
  auto manifest = ReadShardManifest(store.path());
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest.value().shards.size(), 2u);
  EXPECT_TRUE(ReadAllSharded(store.path()) == records);
}

TEST(ShardedStoreTest, RemoveShardedStoreFilesCleansEverything) {
  const std::string path = "shard_store_test_cleanup.rrcm";
  stats::Rng rng(43);
  const Matrix records = rng.GaussianMatrix(100, 2);
  WriteSharded(path, records, SmallShards(/*shard_rows=*/40));
  RemoveShardedStoreFiles(path);
  std::ifstream manifest(path);
  EXPECT_FALSE(manifest.is_open());
  std::ifstream shard(ShardFileName(ShardStemForManifest(path), 0));
  EXPECT_FALSE(shard.is_open());
}

TEST(ShardedStoreTest, WriterValidatesOptionsAndNames) {
  ShardedStoreOptions zero_rows;
  zero_rows.shard_rows = 0;
  EXPECT_EQ(ShardedStoreWriter::Create("shard_store_test_opt.rrcm", Names(2),
                                       zero_rows)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  ShardedStoreOptions ok_options;
  EXPECT_FALSE(
      ShardedStoreWriter::Create("shard_store_test_opt.rrcm", {}, ok_options)
          .ok());
  EXPECT_FALSE(ShardedStoreWriter::Create("shard_store_test_opt.rrcm",
                                          {"a", "a"}, ok_options)
                   .ok());
  RemoveShardedStoreFiles("shard_store_test_opt.rrcm");
}

}  // namespace
}  // namespace data
}  // namespace randrecon
