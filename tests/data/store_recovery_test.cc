// Crash-safe store recovery (src/data/store_recovery.h).
//
// The heart of this file is the crash-torture matrix: for EVERY
// registered write-path failpoint, a child process writes a sharded
// store and is crashed (::_exit, no flushes — a kill -9 mid-write) at
// the 1st, 2nd, ... Nth hit of that failpoint, and the parent asserts
// that RecoverShardedStore turns the wreckage into either a provably
// empty store or a fully-readable store whose records are a bitwise-
// exact prefix of the uncrashed run. Everything runs on serial
// ParallelOptions so the forked children never interact with a thread
// pool.

#include "data/store_recovery.h"

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "data/file_io.h"
#include "data/shard_store.h"
#include "stats/rng.h"

namespace randrecon {
namespace data {
namespace {

using linalg::Matrix;

constexpr size_t kRows = 630;      // 7 shards: 6 full + 1 partial.
constexpr size_t kCols = 5;
constexpr size_t kShardRows = 100;

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

/// The deterministic records every test writes — the ground truth the
/// recovered prefix is compared against, bit for bit.
const Matrix& ReferenceRecords() {
  static const Matrix* records = [] {
    stats::Rng rng(20050609);
    return new Matrix(rng.GaussianMatrix(kRows, kCols));
  }();
  return *records;
}

ShardedStoreOptions SerialWriteOptions() {
  ShardedStoreOptions options;
  options.shard_rows = kShardRows;
  options.block_rows = 32;
  options.seal_batch_shards = 2;
  options.parallel.num_threads = 1;  // Inline — fork-safe.
  return options;
}

ColumnStoreReadOptions SerialReadOptions() {
  ColumnStoreReadOptions options;
  options.parallel.num_threads = 1;
  return options;
}

StoreRecoveryOptions SerialRecoveryOptions() {
  StoreRecoveryOptions options;
  options.store_options = SerialReadOptions();
  return options;
}

/// Streams the reference records into `manifest_path` in uneven chunks
/// (straddling shard and block boundaries).
Status WriteStoreOnce(const std::string& manifest_path) {
  const Matrix& records = ReferenceRecords();
  auto created = ShardedStoreWriter::Create(
      manifest_path,
      {"alpha", "beta", "gamma", "delta", "epsilon"},
      SerialWriteOptions());
  RR_RETURN_NOT_OK(created.status());
  ShardedStoreWriter writer = std::move(created).value();
  const size_t chunk = 37;
  Matrix buffer(chunk, kCols);
  for (size_t begin = 0; begin < kRows; begin += chunk) {
    const size_t rows = std::min(chunk, kRows - begin);
    std::memcpy(buffer.data(), records.row_data(begin),
                rows * kCols * sizeof(double));
    RR_RETURN_NOT_OK(writer.Append(buffer, rows));
  }
  return writer.Close();
}

/// Reads every record of the (recovered) store and asserts it is the
/// bitwise-exact leading prefix of the reference records.
void ExpectBitwisePrefix(const std::string& manifest_path,
                         uint64_t expected_records) {
  auto opened = ShardedStoreReader::Open(manifest_path, SerialReadOptions());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ShardedStoreReader reader = std::move(opened).value();
  ASSERT_EQ(reader.num_records(), expected_records);
  if (expected_records == 0) return;
  Matrix buffer(static_cast<size_t>(expected_records), kCols);
  ASSERT_TRUE(
      reader.ReadRows(0, static_cast<size_t>(expected_records), &buffer)
          .ok());
  EXPECT_EQ(std::memcmp(buffer.data(), ReferenceRecords().data(),
                        static_cast<size_t>(expected_records) * kCols *
                            sizeof(double)),
            0)
      << "recovered records are not a bitwise prefix of the uncrashed run";
}

/// No orphan temp may survive recovery, for the manifest or any shard
/// index in a generous range.
void ExpectNoTempsLeft(const std::string& manifest_path) {
  EXPECT_FALSE(FileExists(TempPathFor(manifest_path)));
  const std::string stem = ShardStemForManifest(manifest_path);
  const std::string directory = ManifestDirectory(manifest_path);
  for (size_t index = 0; index < 10; ++index) {
    const std::string temp =
        TempPathFor(directory + ShardFileName(stem, index));
    EXPECT_FALSE(FileExists(temp)) << temp;
  }
}

class StoreRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override { RemoveShardedStoreFiles(kPath); }
  void TearDown() override { RemoveShardedStoreFiles(kPath); }
  static constexpr const char* kPath = "store_recovery_test.rrcm";
};

TEST_F(StoreRecoveryTest, IntactStoreIsANoOp) {
  ASSERT_TRUE(WriteStoreOnce(kPath).ok());
  auto recovered = RecoverShardedStore(kPath, SerialRecoveryOptions());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const StoreRecoveryReport& report = recovered.value();
  EXPECT_EQ(report.recovered_shards, 7u);
  EXPECT_EQ(report.recovered_records, kRows);
  EXPECT_FALSE(report.manifest_rebuilt);
  EXPECT_FALSE(report.store_empty);
  EXPECT_TRUE(report.removed_files.empty());
  EXPECT_TRUE(report.quarantined_files.empty());
  ExpectBitwisePrefix(kPath, kRows);
}

TEST_F(StoreRecoveryTest, MissingManifestIsRebuiltOverTheShards) {
  ASSERT_TRUE(WriteStoreOnce(kPath).ok());
  ASSERT_EQ(std::remove(kPath), 0);
  auto recovered = RecoverShardedStore(kPath, SerialRecoveryOptions());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered.value().manifest_rebuilt);
  EXPECT_EQ(recovered.value().recovered_records, kRows);
  ExpectBitwisePrefix(kPath, kRows);
}

TEST_F(StoreRecoveryTest, OrphanTempsAreSweptWithoutTouchingTheStore) {
  ASSERT_TRUE(WriteStoreOnce(kPath).ok());
  // A crashed later writer's leavings: a manifest temp and a temp for a
  // shard index past the store.
  const std::string stray_shard_temp = TempPathFor(
      ShardFileName(ShardStemForManifest(kPath), 7));
  std::ofstream(TempPathFor(kPath)) << "half a manifest";
  std::ofstream(stray_shard_temp) << "half a shard";
  auto recovered = RecoverShardedStore(kPath, SerialRecoveryOptions());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().removed_files.size(), 2u);
  EXPECT_FALSE(recovered.value().manifest_rebuilt);
  EXPECT_EQ(recovered.value().recovered_records, kRows);
  ExpectNoTempsLeft(kPath);
  ExpectBitwisePrefix(kPath, kRows);
}

TEST_F(StoreRecoveryTest, CorruptShardIsQuarantinedAndThePrefixKept) {
  ASSERT_TRUE(WriteStoreOnce(kPath).ok());
  // Truncate shard 5: shards 0-4 remain the maximal valid prefix, and
  // sealed shard 6 beyond the hole must be quarantined too (it cannot
  // be proven to belong to the recovered stream).
  const std::string stem = ShardStemForManifest(kPath);
  const std::string shard5 = ShardFileName(stem, 5);
  ASSERT_EQ(::truncate(shard5.c_str(), 128), 0);
  auto recovered = RecoverShardedStore(kPath, SerialRecoveryOptions());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const StoreRecoveryReport& report = recovered.value();
  EXPECT_TRUE(report.manifest_rebuilt);
  EXPECT_EQ(report.recovered_shards, 5u);
  EXPECT_EQ(report.recovered_records, 5 * kShardRows);
  ASSERT_EQ(report.quarantined_files.size(), 2u);
  EXPECT_EQ(report.quarantined_files[0], shard5 + kQuarantineFileSuffix);
  EXPECT_EQ(report.quarantined_files[1],
            ShardFileName(stem, 6) + kQuarantineFileSuffix);
  EXPECT_TRUE(FileExists(shard5 + kQuarantineFileSuffix));
  EXPECT_FALSE(FileExists(shard5));
  ExpectBitwisePrefix(kPath, 5 * kShardRows);

  // Idempotence: a second pass finds a valid store and changes nothing.
  auto again = RecoverShardedStore(kPath, SerialRecoveryOptions());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_FALSE(again.value().manifest_rebuilt);
  EXPECT_EQ(again.value().recovered_records, 5 * kShardRows);
  EXPECT_TRUE(again.value().removed_files.empty());
  EXPECT_TRUE(again.value().quarantined_files.empty());
}

TEST_F(StoreRecoveryTest, NothingSealedMeansProvablyEmpty) {
  // A stale manifest over vanished shards: nothing sealed survives, so
  // recovery must remove the manifest rather than leave a file claiming
  // records that cannot be read.
  ASSERT_TRUE(WriteStoreOnce(kPath).ok());
  const std::string stem = ShardStemForManifest(kPath);
  for (size_t index = 0; index < 7; ++index) {
    ASSERT_EQ(std::remove(ShardFileName(stem, index).c_str()), 0);
  }
  auto recovered = RecoverShardedStore(kPath, SerialRecoveryOptions());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered.value().store_empty);
  EXPECT_EQ(recovered.value().recovered_records, 0u);
  EXPECT_FALSE(FileExists(kPath));

  // Recovering a path that holds nothing at all is also empty + a no-op.
  auto empty = RecoverShardedStore(kPath, SerialRecoveryOptions());
  ASSERT_TRUE(empty.ok()) << empty.status().ToString();
  EXPECT_TRUE(empty.value().store_empty);
  EXPECT_TRUE(empty.value().removed_files.empty());
}

// ---------------------------------------------------------------------------
// The crash-torture matrix.
// ---------------------------------------------------------------------------

/// Every write-path failpoint between the first byte and the manifest
/// rename. Read-path failpoints (store.read_block, source.next_chunk)
/// cannot corrupt a store and are exercised by the retry tests instead.
const char* const kWritePathFailpoints[] = {
    "shard.write",    "shard.seal",     "store.block_write",
    "store.seal",     "store.fsync",    "store.rename",
    "manifest.write", "manifest.fsync", "manifest.rename",
};

TEST_F(StoreRecoveryTest, CrashAtEveryFailpointHitRecoversABitwisePrefix) {
  // Generate the reference before any fork so children inherit it and
  // never allocate it themselves.
  ReferenceRecords();
  for (const char* failpoint : kWritePathFailpoints) {
    int crashes = 0;
    for (uint64_t hit = 1; hit <= 300; ++hit) {
      RemoveShardedStoreFiles(kPath);
      const pid_t child = ::fork();
      ASSERT_GE(child, 0) << "fork failed";
      if (child == 0) {
        // In the child: arm the crash and write. Everything is serial
        // (SerialWriteOptions), so no thread-pool state is inherited
        // torn. _Exit skips destructors and gtest entirely — the only
        // exits are the failpoint's ::_exit(42) or the clean 0/43 here.
        DisarmAllFailpoints();
        if (!ArmFailpoint(failpoint, FailpointAction::kCrash, hit).ok()) {
          ::_exit(44);
        }
        const Status written = WriteStoreOnce(kPath);
        ::_exit(written.ok() ? 0 : 43);
      }
      int status = 0;
      ASSERT_EQ(::waitpid(child, &status, 0), child);
      ASSERT_TRUE(WIFEXITED(status))
          << failpoint << " hit " << hit << ": child died abnormally";
      const int exit_code = WEXITSTATUS(status);
      if (exit_code == 0) break;  // This failpoint's hits are exhausted.
      ASSERT_EQ(exit_code, kFailpointCrashExitCode)
          << failpoint << " hit " << hit
          << ": unexpected child exit (43 = write error, 44 = arm error)";
      ++crashes;

      auto recovered = RecoverShardedStore(kPath, SerialRecoveryOptions());
      ASSERT_TRUE(recovered.ok())
          << failpoint << " hit " << hit << ": "
          << recovered.status().ToString();
      const StoreRecoveryReport& report = recovered.value();
      ExpectNoTempsLeft(kPath);
      if (report.store_empty) {
        EXPECT_FALSE(FileExists(kPath))
            << failpoint << " hit " << hit
            << ": empty recovery left a manifest behind";
      } else {
        ASSERT_LE(report.recovered_records, kRows);
        ExpectBitwisePrefix(kPath, report.recovered_records);
      }
      // Recovery is idempotent: a second pass validates the first.
      auto again = RecoverShardedStore(kPath, SerialRecoveryOptions());
      ASSERT_TRUE(again.ok()) << again.status().ToString();
      EXPECT_EQ(again.value().recovered_records, report.recovered_records)
          << failpoint << " hit " << hit;
      EXPECT_TRUE(again.value().removed_files.empty())
          << failpoint << " hit " << hit;
      EXPECT_TRUE(again.value().quarantined_files.empty())
          << failpoint << " hit " << hit;
    }
    EXPECT_GT(crashes, 0)
        << "failpoint '" << failpoint
        << "' never fired — the torture matrix is not covering it";
  }
}

}  // namespace
}  // namespace data
}  // namespace randrecon
