// Rolling sharded stores (src/data/rolling_store.h): rotation triggers,
// manifest republish, retention, pinned snapshots, and the two proofs
// the reader-while-writer protocol rests on:
//
//   * The crash-torture matrix: a child process runs continuous ingest
//     with rotation + retention and is crashed (::_exit, no flushes) at
//     the 1st, 2nd, ... Nth hit of EVERY rotation-path failpoint. The
//     parent asserts that whatever manifest is on disk after the crash
//     ALREADY opens and reads bitwise-exactly (that is the protocol —
//     no recovery needed to serve readers), and that RecoverShardedStore
//     is a safe, idempotent cleanup on top.
//   * A TSan-clean concurrent run: one writer thread rotating and
//     republishing while reader threads open snapshots through the
//     filesystem only — the test builds with the rest of data_ under
//     the thread-sanitize CI job.

#include "data/rolling_store.h"

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/trace.h"
#include "data/file_io.h"
#include "data/shard_store.h"
#include "data/store_recovery.h"
#include "stats/rng.h"

namespace randrecon {
namespace data {
namespace {

using linalg::Matrix;

constexpr size_t kRows = 370;     // 9 full shards + 1 partial at 40/shard.
constexpr size_t kCols = 4;
constexpr size_t kShardRows = 40;

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

/// Deterministic ground truth; every published snapshot must be a
/// bitwise shard-aligned window of these rows.
const Matrix& ReferenceRecords() {
  static const Matrix* records = [] {
    stats::Rng rng(20050607);
    return new Matrix(rng.GaussianMatrix(kRows, kCols));
  }();
  return *records;
}

std::vector<std::string> Names() { return {"alpha", "beta", "gamma", "delta"}; }

RollingStoreOptions SmallShards() {
  RollingStoreOptions options;
  options.shard_rows = kShardRows;
  options.block_rows = 16;
  return options;
}

ColumnStoreReadOptions SerialReadOptions() {
  ColumnStoreReadOptions options;
  options.parallel.num_threads = 1;
  return options;
}

StoreRecoveryOptions SerialRecoveryOptions() {
  StoreRecoveryOptions options;
  options.store_options = SerialReadOptions();
  return options;
}

/// Appends reference rows [begin, begin + rows) in one chunk.
Status AppendReference(RollingShardedStoreWriter* writer, size_t begin,
                       size_t rows) {
  Matrix chunk(rows, kCols);
  std::memcpy(chunk.data(), ReferenceRecords().row_data(begin),
              rows * kCols * sizeof(double));
  return writer->Append(chunk, rows);
}

/// Reads every record of the snapshot at `manifest_path` and asserts it
/// is bitwise-equal to SOME shard-aligned window of the reference rows
/// (retention slides the window; without retention the window starts at
/// row 0). Returns the window start via `window_begin` when non-null.
void ExpectBitwiseWindow(const std::string& manifest_path,
                         size_t* window_begin = nullptr) {
  auto opened = RollingStoreSnapshotReader::Open(manifest_path,
                                                 SerialReadOptions());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  RollingStoreSnapshotReader snapshot = std::move(opened).value();
  const size_t rows = snapshot.num_records();
  ASSERT_LE(rows, kRows);
  if (rows == 0) return;
  Matrix buffer(rows, kCols);
  ASSERT_TRUE(snapshot.ReadRows(0, rows, &buffer).ok());
  for (size_t begin = 0; begin + rows <= kRows; begin += kShardRows) {
    if (std::memcmp(buffer.data(), ReferenceRecords().row_data(begin),
                    rows * kCols * sizeof(double)) == 0) {
      if (window_begin != nullptr) *window_begin = begin;
      return;
    }
  }
  FAIL() << manifest_path << ": " << rows
         << " snapshot rows match no shard-aligned reference window";
}

class RollingStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DisarmAllFailpoints();
    RemoveShardedStoreFiles(kPath);
  }
  void TearDown() override {
    DisarmAllFailpoints();
    RemoveShardedStoreFiles(kPath);
  }
  static constexpr const char* kPath = "rolling_store_test.rrcm";
};

TEST_F(RollingStoreTest, CreateValidatesOptionsAndTouchesNoFiles) {
  RollingStoreOptions bad = SmallShards();
  bad.shard_rows = 0;
  EXPECT_EQ(RollingShardedStoreWriter::Create(kPath, Names(), bad)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RollingShardedStoreWriter::Create(kPath, {}, SmallShards())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  auto created =
      RollingShardedStoreWriter::Create(kPath, Names(), SmallShards());
  ASSERT_TRUE(created.ok());
  EXPECT_FALSE(FileExists(kPath));
  EXPECT_FALSE(FileExists(ShardFileName(ShardStemForManifest(kPath), 0)));
  // A writer that never saw a row closes without creating any file.
  RollingShardedStoreWriter writer = std::move(created).value();
  EXPECT_TRUE(writer.Close().ok());
  EXPECT_FALSE(FileExists(kPath));
}

TEST_F(RollingStoreTest, RotationPublishesAndSnapshotsReadBitwise) {
  auto created =
      RollingShardedStoreWriter::Create(kPath, Names(), SmallShards());
  ASSERT_TRUE(created.ok());
  RollingShardedStoreWriter writer = std::move(created).value();
  // Nothing is visible until the first rotation...
  ASSERT_TRUE(AppendReference(&writer, 0, kShardRows / 2).ok());
  EXPECT_FALSE(FileExists(kPath));
  EXPECT_EQ(writer.publishes(), 0u);
  // ...and one full shard later a snapshot opens mid-write.
  ASSERT_TRUE(AppendReference(&writer, kShardRows / 2, kShardRows).ok());
  EXPECT_EQ(writer.publishes(), 1u);
  EXPECT_EQ(writer.published_rows(), kShardRows);
  size_t window = 1;
  ExpectBitwiseWindow(kPath, &window);
  EXPECT_EQ(window, 0u);
  // Stream the rest in uneven chunks straddling shard boundaries; Close
  // publishes the final partial shard.
  size_t begin = kShardRows + kShardRows / 2;
  const size_t chunk = 33;
  while (begin < kRows) {
    const size_t rows = std::min(chunk, kRows - begin);
    ASSERT_TRUE(AppendReference(&writer, begin, rows).ok());
    begin += rows;
  }
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_EQ(writer.rows_written(), kRows);
  EXPECT_EQ(writer.published_rows(), kRows);
  EXPECT_EQ(writer.published_shards(), 10u);
  ExpectBitwiseWindow(kPath, &window);
  EXPECT_EQ(window, 0u);
  // And the plain sharded reader opens the same manifest.
  auto plain = ShardedStoreReader::Open(kPath, SerialReadOptions());
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.value().num_records(), kRows);
}

TEST_F(RollingStoreTest, RetentionBoundsTheWindowAndSparesPinnedSnapshots) {
  RollingStoreOptions options = SmallShards();
  options.retain_shards = 3;
  auto created = RollingShardedStoreWriter::Create(kPath, Names(), options);
  ASSERT_TRUE(created.ok());
  RollingShardedStoreWriter writer = std::move(created).value();
  // Publish the first two shards, then pin a snapshot over them.
  ASSERT_TRUE(AppendReference(&writer, 0, 2 * kShardRows).ok());
  auto pinned_open =
      RollingStoreSnapshotReader::Open(kPath, SerialReadOptions());
  ASSERT_TRUE(pinned_open.ok()) << pinned_open.status().ToString();
  RollingStoreSnapshotReader pinned = std::move(pinned_open).value();
  ASSERT_EQ(pinned.num_records(), 2 * kShardRows);
  // Write everything else: retention retires shards 0..6 and unlinks
  // their files out from under the pinned snapshot.
  ASSERT_TRUE(AppendReference(&writer, 2 * kShardRows, kRows - 2 * kShardRows)
                  .ok());
  ASSERT_TRUE(writer.Close().ok());
  const std::string stem = ShardStemForManifest(kPath);
  EXPECT_FALSE(FileExists(ShardFileName(stem, 0)));
  EXPECT_FALSE(FileExists(ShardFileName(stem, 6)));
  EXPECT_TRUE(FileExists(ShardFileName(stem, 9)));
  // The latest snapshot is the retained window: shards 7, 8 and the
  // partial 9, renumbered from 0.
  EXPECT_EQ(writer.published_shards(), 3u);
  EXPECT_EQ(writer.published_rows(), kRows - 7 * kShardRows);
  EXPECT_EQ(writer.rows_written(), kRows);  // Monotonic, not a window.
  size_t window = 0;
  ExpectBitwiseWindow(kPath, &window);
  EXPECT_EQ(window, 7 * kShardRows);
  // The pinned snapshot still reads ITS rows bitwise — the unlinked
  // shard files live on in its mmaps.
  Matrix buffer(2 * kShardRows, kCols);
  ASSERT_TRUE(pinned.ReadRows(0, 2 * kShardRows, &buffer).ok());
  EXPECT_EQ(std::memcmp(buffer.data(), ReferenceRecords().data(),
                        2 * kShardRows * kCols * sizeof(double)),
            0)
      << "retention disturbed a pinned snapshot";
}

TEST_F(RollingStoreTest, AgeTriggerRotatesOnTheInjectedClock) {
  trace::FakeClockGuard clock(1'000'000);
  RollingStoreOptions options = SmallShards();
  options.shard_age_nanos = 500;
  auto created = RollingShardedStoreWriter::Create(kPath, Names(), options);
  ASSERT_TRUE(created.ok());
  RollingShardedStoreWriter writer = std::move(created).value();
  ASSERT_TRUE(AppendReference(&writer, 0, 5).ok());
  ASSERT_TRUE(writer.MaybeRotate().ok());
  EXPECT_EQ(writer.publishes(), 0u);  // Too young.
  clock.Advance(499);
  ASSERT_TRUE(writer.MaybeRotate().ok());
  EXPECT_EQ(writer.publishes(), 0u);  // One nano short.
  clock.Advance(1);
  ASSERT_TRUE(writer.MaybeRotate().ok());
  EXPECT_EQ(writer.publishes(), 1u);
  EXPECT_EQ(writer.published_rows(), 5u);
  // An idle (empty) shard never age-rotates into a 0-row file.
  clock.Advance(10'000);
  ASSERT_TRUE(writer.MaybeRotate().ok());
  EXPECT_EQ(writer.publishes(), 1u);
  ASSERT_TRUE(writer.Close().ok());
}

TEST_F(RollingStoreTest, PublishFailureIsRetriedNotSticky) {
  auto created =
      RollingShardedStoreWriter::Create(kPath, Names(), SmallShards());
  ASSERT_TRUE(created.ok());
  RollingShardedStoreWriter writer = std::move(created).value();
  ASSERT_TRUE(ArmFailpoint("roll.publish", FailpointAction::kError).ok());
  // The rotation seals the shard but the publish fails retryably; the
  // manifest never appears.
  const Status rotated = AppendReference(&writer, 0, kShardRows);
  EXPECT_EQ(rotated.code(), StatusCode::kIoError);
  EXPECT_TRUE(rotated.IsRetryable());
  EXPECT_FALSE(FileExists(kPath));
  EXPECT_EQ(writer.publishes(), 0u);
  // The writer is NOT dead: the next append + rotation republishes the
  // sealed shard along with the new one.
  DisarmAllFailpoints();
  ASSERT_TRUE(AppendReference(&writer, kShardRows, kShardRows).ok());
  EXPECT_EQ(writer.publishes(), 1u);
  EXPECT_EQ(writer.published_rows(), 2 * kShardRows);
  EXPECT_EQ(writer.published_shards(), 2u);
  ASSERT_TRUE(writer.Close().ok());
  size_t window = 1;
  ExpectBitwiseWindow(kPath, &window);
  EXPECT_EQ(window, 0u);
}

// ---------------------------------------------------------------------------
// The rotation crash-torture matrix.
// ---------------------------------------------------------------------------

/// Every failpoint between an ingested row and the republished
/// manifest: the rolling layer's own seams plus the column-store and
/// manifest seams that fire underneath them. (shard.write/shard.seal
/// belong to ShardedStoreWriter and never fire here.)
const char* const kRotationFailpoints[] = {
    "roll.seal",      "roll.publish",   "roll.retire",
    "store.block_write", "store.seal",  "store.fsync",
    "store.rename",   "manifest.write", "manifest.fsync",
    "manifest.rename",
};

/// The child's whole life: continuous ingest with rotation + retention
/// until the armed failpoint crashes it (or the stream ends).
Status IngestUntilCrash(const std::string& manifest_path) {
  RollingStoreOptions options;
  options.shard_rows = kShardRows;
  options.block_rows = 16;
  options.retain_shards = 4;  // Exercises retire + renumbering.
  auto created =
      RollingShardedStoreWriter::Create(manifest_path, Names(), options);
  RR_RETURN_NOT_OK(created.status());
  RollingShardedStoreWriter writer = std::move(created).value();
  const size_t chunk = 29;  // Uneven: straddles shard boundaries.
  for (size_t begin = 0; begin < kRows; begin += chunk) {
    RR_RETURN_NOT_OK(
        AppendReference(&writer, begin, std::min(chunk, kRows - begin)));
  }
  return writer.Close();
}

TEST_F(RollingStoreTest, CrashAtEveryRotationFailpointLeavesAReadableStore) {
  ReferenceRecords();  // Materialize before any fork.
  for (const char* failpoint : kRotationFailpoints) {
    int crashes = 0;
    for (uint64_t hit = 1; hit <= 300; ++hit) {
      RemoveShardedStoreFiles(kPath);
      const pid_t child = ::fork();
      ASSERT_GE(child, 0) << "fork failed";
      if (child == 0) {
        DisarmAllFailpoints();
        if (!ArmFailpoint(failpoint, FailpointAction::kCrash, hit).ok()) {
          ::_exit(44);
        }
        ::_exit(IngestUntilCrash(kPath).ok() ? 0 : 43);
      }
      int status = 0;
      ASSERT_EQ(::waitpid(child, &status, 0), child);
      ASSERT_TRUE(WIFEXITED(status))
          << failpoint << " hit " << hit << ": child died abnormally";
      const int exit_code = WEXITSTATUS(status);
      if (exit_code == 0) break;  // This failpoint's hits are exhausted.
      ASSERT_EQ(exit_code, kFailpointCrashExitCode)
          << failpoint << " hit " << hit
          << ": unexpected child exit (43 = write error, 44 = arm error)";
      ++crashes;

      // THE protocol assertion: whatever manifest the crash left behind
      // already opens and reads bitwise — a concurrent reader at the
      // instant of the crash needed no recovery pass.
      uint64_t published_before_recovery = 0;
      if (FileExists(kPath)) {
        size_t window = 0;
        ExpectBitwiseWindow(kPath, &window);
        auto published = ReadShardManifest(kPath);
        ASSERT_TRUE(published.ok()) << failpoint << " hit " << hit;
        published_before_recovery = published.value().num_records;
      }

      // Recovery on top is safe, preserves the published manifest, and
      // is idempotent.
      auto recovered = RecoverShardedStore(kPath, SerialRecoveryOptions());
      ASSERT_TRUE(recovered.ok())
          << failpoint << " hit " << hit << ": "
          << recovered.status().ToString();
      const StoreRecoveryReport& report = recovered.value();
      EXPECT_FALSE(FileExists(TempPathFor(kPath)));
      if (report.store_empty) {
        EXPECT_EQ(published_before_recovery, 0u)
            << failpoint << " hit " << hit
            << ": recovery emptied a store with a published manifest";
        EXPECT_FALSE(FileExists(kPath));
      } else {
        EXPECT_GE(report.recovered_records, published_before_recovery)
            << failpoint << " hit " << hit
            << ": recovery lost published rows";
        ExpectBitwiseWindow(kPath);
      }
      auto again = RecoverShardedStore(kPath, SerialRecoveryOptions());
      ASSERT_TRUE(again.ok()) << again.status().ToString();
      EXPECT_EQ(again.value().recovered_records, report.recovered_records)
          << failpoint << " hit " << hit;
    }
    EXPECT_GT(crashes, 0)
        << "failpoint '" << failpoint
        << "' never fired — the torture matrix is not covering it";
  }
}

TEST_F(RollingStoreTest, SnapshotPinnedBeforeACrashStillReadsAfterIt) {
  // The cross-process spelling of the pinned-snapshot guarantee: the
  // parent opens a snapshot while the child writer is alive, the child
  // crashes mid-republish, and the parent's snapshot still reads its
  // rows bitwise.
  ReferenceRecords();
  int to_parent[2];
  int to_child[2];
  ASSERT_EQ(::pipe(to_parent), 0);
  ASSERT_EQ(::pipe(to_child), 0);
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ::close(to_parent[0]);
    ::close(to_child[1]);
    DisarmAllFailpoints();
    auto created =
        RollingShardedStoreWriter::Create(kPath, Names(), SmallShards());
    if (!created.ok()) ::_exit(43);
    RollingShardedStoreWriter writer = std::move(created).value();
    // Publish shard 0, hand the parent the baton, wait for its pin.
    if (!AppendReference(&writer, 0, kShardRows).ok()) ::_exit(43);
    char byte = 'p';
    if (::write(to_parent[1], &byte, 1) != 1) ::_exit(45);
    if (::read(to_child[0], &byte, 1) != 1) ::_exit(45);
    // Crash inside the NEXT manifest republish.
    if (!ArmFailpoint("roll.publish", FailpointAction::kCrash, 1).ok()) {
      ::_exit(44);
    }
    (void)AppendReference(&writer, kShardRows, kShardRows);
    ::_exit(46);  // Unreachable: the failpoint must have crashed us.
  }
  ::close(to_parent[1]);
  ::close(to_child[0]);
  char byte = 0;
  ASSERT_EQ(::read(to_parent[0], &byte, 1), 1);
  auto pinned_open =
      RollingStoreSnapshotReader::Open(kPath, SerialReadOptions());
  ASSERT_TRUE(pinned_open.ok()) << pinned_open.status().ToString();
  RollingStoreSnapshotReader pinned = std::move(pinned_open).value();
  ASSERT_EQ(pinned.num_records(), kShardRows);
  ASSERT_EQ(::write(to_child[1], &byte, 1), 1);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), kFailpointCrashExitCode);
  ::close(to_parent[0]);
  ::close(to_child[1]);
  // The crash changed nothing the pinned snapshot can see.
  Matrix buffer(kShardRows, kCols);
  ASSERT_TRUE(pinned.ReadRows(0, kShardRows, &buffer).ok());
  EXPECT_EQ(std::memcmp(buffer.data(), ReferenceRecords().data(),
                        kShardRows * kCols * sizeof(double)),
            0)
      << "a crash mid-republish disturbed a previously pinned snapshot";
}

// ---------------------------------------------------------------------------
// The parse→pin race (regression): Open parses the manifest, then pins
// shards. A writer that republishes + retires between the two halves
// must surface as retryable Unavailable, not as damage.
// ---------------------------------------------------------------------------

TEST_F(RollingStoreTest, SnapshotPinRacingARepublishIsRetryableUnavailable) {
  RollingStoreOptions options = SmallShards();
  options.retain_shards = 1;
  auto created = RollingShardedStoreWriter::Create(kPath, Names(), options);
  ASSERT_TRUE(created.ok());
  RollingShardedStoreWriter writer = std::move(created).value();
  ASSERT_TRUE(AppendReference(&writer, 0, kShardRows).ok());
  // Parse the manifest naming shard 0, pin nothing yet (shard opens are
  // lazy) — the exposed half of the Open seam.
  auto parsed = ShardedStoreReader::Open(kPath, SerialReadOptions());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // The writer republishes: shard 1 lands, retention retires shard 0
  // and unlinks its file out from under the parsed-but-unpinned reader.
  ASSERT_TRUE(AppendReference(&writer, kShardRows, kShardRows).ok());
  ASSERT_FALSE(FileExists(ShardFileName(ShardStemForManifest(kPath), 0)));
  auto pinned = RollingStoreSnapshotReader::Pin(std::move(parsed).value(),
                                                kPath);
  ASSERT_FALSE(pinned.ok());
  EXPECT_EQ(pinned.status().code(), StatusCode::kUnavailable)
      << pinned.status().ToString();
  EXPECT_TRUE(pinned.status().IsRetryable());
  EXPECT_NE(pinned.status().message().find("raced a manifest republish"),
            std::string::npos)
      << pinned.status().ToString();
  EXPECT_NE(pinned.status().message().find("shard 0"), std::string::npos)
      << "the error must name the retired shard: "
      << pinned.status().ToString();
  // Retrying the open simply observes the newer snapshot.
  auto fresh = RollingStoreSnapshotReader::Open(kPath, SerialReadOptions());
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ(fresh.value().num_records(), kShardRows);
  ASSERT_TRUE(writer.Close().ok());
}

TEST_F(RollingStoreTest, UnchangedManifestDamagePropagatesVerbatim) {
  auto created =
      RollingShardedStoreWriter::Create(kPath, Names(), SmallShards());
  ASSERT_TRUE(created.ok());
  RollingShardedStoreWriter writer = std::move(created).value();
  ASSERT_TRUE(AppendReference(&writer, 0, 2 * kShardRows).ok());
  ASSERT_TRUE(writer.Close().ok());
  auto parsed = ShardedStoreReader::Open(kPath, SerialReadOptions());
  ASSERT_TRUE(parsed.ok());
  // Real damage: the manifest still names shard 0, and no republish
  // explains the missing file — the original error must propagate, NOT
  // be laundered into a retryable race.
  ASSERT_EQ(std::remove(
                ShardFileName(ShardStemForManifest(kPath), 0).c_str()),
            0);
  auto pinned = RollingStoreSnapshotReader::Pin(std::move(parsed).value(),
                                                kPath);
  ASSERT_FALSE(pinned.ok());
  EXPECT_NE(pinned.status().code(), StatusCode::kUnavailable)
      << pinned.status().ToString();
  EXPECT_EQ(pinned.status().message().find("raced a manifest republish"),
            std::string::npos)
      << pinned.status().ToString();
}

// ---------------------------------------------------------------------------
// Concurrent writer + snapshot readers (TSan-clean by construction: the
// filesystem is the only shared state).
// ---------------------------------------------------------------------------

TEST_F(RollingStoreTest, ConcurrentSnapshotReadersSeeOnlySealedPrefixes) {
  constexpr int kReaders = 3;
  std::atomic<bool> done{false};
  std::atomic<int> good_snapshots{0};
  std::vector<std::thread> readers;
  auto check_one_snapshot = [&]() {
    auto opened = RollingStoreSnapshotReader::Open(kPath, SerialReadOptions());
    if (!opened.ok()) return;  // Not published yet.
    RollingStoreSnapshotReader snapshot = std::move(opened).value();
    const size_t rows = snapshot.num_records();
    ASSERT_GT(rows, 0u);
    ASSERT_LE(rows, kRows);
    ASSERT_TRUE(rows % kShardRows == 0 || rows == kRows)
        << "snapshot exposes a torn (unsealed) shard";
    Matrix buffer(rows, kCols);
    ASSERT_TRUE(snapshot.ReadRows(0, rows, &buffer).ok());
    // No retention here, so every snapshot is the leading prefix.
    ASSERT_EQ(std::memcmp(buffer.data(), ReferenceRecords().data(),
                          rows * kCols * sizeof(double)),
              0)
        << "a concurrent snapshot is not a bitwise prefix";
    good_snapshots.fetch_add(1, std::memory_order_relaxed);
  };
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) check_one_snapshot();
      // One guaranteed post-close snapshot, so every reader observes the
      // final store even if the writer outran its polling.
      check_one_snapshot();
    });
  }
  auto created =
      RollingShardedStoreWriter::Create(kPath, Names(), SmallShards());
  ASSERT_TRUE(created.ok());
  RollingShardedStoreWriter writer = std::move(created).value();
  const size_t chunk = 23;
  for (size_t begin = 0; begin < kRows; begin += chunk) {
    ASSERT_TRUE(
        AppendReference(&writer, begin, std::min(chunk, kRows - begin)).ok());
  }
  ASSERT_TRUE(writer.Close().ok());
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  // Every reader's guaranteed final open saw the published store.
  EXPECT_GE(good_snapshots.load(), kReaders);
  ExpectBitwiseWindow(kPath);
}

}  // namespace
}  // namespace data
}  // namespace randrecon
