#include "stats/mvn.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "linalg/eigen.h"
#include "linalg/matrix_util.h"
#include "stats/moments.h"
#include "stats/random_orthogonal.h"

namespace randrecon {
namespace stats {
namespace {

using linalg::Matrix;
using linalg::Vector;

TEST(MvnTest, SampleShape) {
  auto sampler = MultivariateNormalSampler::CreateZeroMean(Matrix::Identity(3));
  ASSERT_TRUE(sampler.ok());
  Rng rng(1);
  Matrix sample = sampler.value().SampleMatrix(50, &rng);
  EXPECT_EQ(sample.rows(), 50u);
  EXPECT_EQ(sample.cols(), 3u);
}

TEST(MvnTest, MeanIsRespected) {
  Vector mean{5.0, -3.0};
  auto sampler = MultivariateNormalSampler::Create(mean, Matrix::Identity(2));
  ASSERT_TRUE(sampler.ok());
  Rng rng(2);
  Matrix sample = sampler.value().SampleMatrix(20000, &rng);
  const Vector sample_mean = ColumnMeans(sample);
  EXPECT_NEAR(sample_mean[0], 5.0, 0.05);
  EXPECT_NEAR(sample_mean[1], -3.0, 0.05);
}

TEST(MvnTest, CovarianceIsReproduced) {
  Matrix cov{{4.0, 1.5}, {1.5, 2.0}};
  auto sampler = MultivariateNormalSampler::CreateZeroMean(cov);
  ASSERT_TRUE(sampler.ok());
  Rng rng(3);
  Matrix sample = sampler.value().SampleMatrix(50000, &rng);
  Matrix sample_cov = SampleCovariance(sample);
  EXPECT_LT(linalg::MaxAbsDifference(sample_cov, cov), 0.1);
}

TEST(MvnTest, SingularCovarianceSamplesOnSubspace) {
  // Rank-1 covariance: all samples proportional to (1, 1).
  Matrix cov{{1.0, 1.0}, {1.0, 1.0}};
  auto sampler = MultivariateNormalSampler::CreateZeroMean(cov);
  ASSERT_TRUE(sampler.ok()) << sampler.status().ToString();
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const Vector x = sampler.value().SampleRecord(&rng);
    EXPECT_NEAR(x[0], x[1], 1e-9);
  }
}

TEST(MvnTest, ZeroCovarianceGivesConstantSamples) {
  auto sampler =
      MultivariateNormalSampler::Create({2.0, 3.0}, Matrix(2, 2));
  ASSERT_TRUE(sampler.ok());
  Rng rng(5);
  const Vector x = sampler.value().SampleRecord(&rng);
  EXPECT_DOUBLE_EQ(x[0], 2.0);
  EXPECT_DOUBLE_EQ(x[1], 3.0);
}

TEST(MvnTest, SpikedSpectrumCovarianceReproduced) {
  // The §7.1 shape: a few large eigenvalues, many tiny ones.
  Rng rng(6);
  const Vector spectrum{100.0, 100.0, 1.0, 1.0, 1.0, 1.0};
  Matrix q = RandomOrthogonalMatrix(6, &rng);
  Matrix cov = linalg::ComposeFromEigen(spectrum, q);
  auto sampler = MultivariateNormalSampler::CreateZeroMean(cov);
  ASSERT_TRUE(sampler.ok());
  Matrix sample = sampler.value().SampleMatrix(40000, &rng);
  Matrix sample_cov = SampleCovariance(sample);
  EXPECT_LT(linalg::MaxAbsDifference(sample_cov, cov),
            0.05 * linalg::FrobeniusNorm(cov));
}

TEST(MvnTest, RejectsNonSquareCovariance) {
  auto sampler = MultivariateNormalSampler::CreateZeroMean(Matrix(2, 3));
  EXPECT_FALSE(sampler.ok());
  EXPECT_EQ(sampler.status().code(), StatusCode::kInvalidArgument);
}

TEST(MvnTest, RejectsMeanLengthMismatch) {
  auto sampler =
      MultivariateNormalSampler::Create({1.0}, Matrix::Identity(2));
  EXPECT_FALSE(sampler.ok());
  EXPECT_EQ(sampler.status().code(), StatusCode::kInvalidArgument);
}

TEST(MvnTest, RejectsAsymmetricCovariance) {
  auto sampler =
      MultivariateNormalSampler::CreateZeroMean(Matrix{{1, 0.5}, {0, 1}});
  EXPECT_FALSE(sampler.ok());
}

TEST(MvnTest, RejectsIndefiniteCovariance) {
  auto sampler = MultivariateNormalSampler::CreateZeroMean(
      Matrix::Diagonal({1.0, -0.5}));
  EXPECT_FALSE(sampler.ok());
  EXPECT_EQ(sampler.status().code(), StatusCode::kNumericalError);
}

TEST(MvnTest, DeterministicGivenSeed) {
  Matrix cov{{2.0, 0.3}, {0.3, 1.0}};
  auto sampler = MultivariateNormalSampler::CreateZeroMean(cov);
  ASSERT_TRUE(sampler.ok());
  Rng rng1(77), rng2(77);
  Matrix a = sampler.value().SampleMatrix(10, &rng1);
  Matrix b = sampler.value().SampleMatrix(10, &rng2);
  EXPECT_TRUE(a == b);
}

TEST(MvnTest, BatchSampleMatrixReproducesMoments) {
  Matrix cov{{4.0, 1.5}, {1.5, 2.0}};
  Vector mean{1.0, -2.0};
  auto sampler = MultivariateNormalSampler::Create(mean, cov);
  ASSERT_TRUE(sampler.ok());
  Philox gen(42, 0);
  Matrix sample = sampler.value().SampleMatrix(60000, &gen);
  const Vector sample_mean = ColumnMeans(sample);
  EXPECT_NEAR(sample_mean[0], 1.0, 0.05);
  EXPECT_NEAR(sample_mean[1], -2.0, 0.05);
  const Matrix sample_cov = SampleCovariance(sample);
  EXPECT_NEAR(sample_cov(0, 0), 4.0, 0.15);
  EXPECT_NEAR(sample_cov(0, 1), 1.5, 0.1);
  EXPECT_NEAR(sample_cov(1, 1), 2.0, 0.1);
}

TEST(MvnTest, SampleRecordsAtIsPartitionInvariant) {
  // Any split of [0, n) into SampleRecordsAt calls — and any thread
  // count — must assemble the byte-identical record block.
  Matrix cov{{2.0, 0.5, 0.0}, {0.5, 1.0, 0.25}, {0.0, 0.25, 3.0}};
  auto sampler = MultivariateNormalSampler::CreateZeroMean(cov);
  ASSERT_TRUE(sampler.ok());
  const Philox base(7, 1);
  const size_t n = 700;  // spans several kBatchBlockRows blocks
  Matrix whole(n, 3);
  sampler.value().SampleRecordsAt(base, 0, n, &whole);
  for (size_t chunk : {size_t{1}, size_t{7}, size_t{64}, size_t{256},
                       size_t{700}}) {
    Matrix assembled(n, 3);
    for (size_t begin = 0; begin < n; begin += chunk) {
      const size_t rows = std::min(chunk, n - begin);
      sampler.value().SampleRecordsAt(base, begin, rows, &assembled, begin);
    }
    EXPECT_EQ(linalg::MaxAbsDifference(whole, assembled), 0.0)
        << "chunk " << chunk;
  }
  for (int threads : {1, 2, 4}) {
    ParallelOptions options;
    options.num_threads = threads;
    Matrix assembled(n, 3);
    sampler.value().SampleRecordsAt(base, 0, n, &assembled, 0, options);
    EXPECT_EQ(linalg::MaxAbsDifference(whole, assembled), 0.0)
        << "threads " << threads;
  }
}

TEST(MvnTest, SampleRecordsAtOffsetWindowsMatch) {
  auto sampler = MultivariateNormalSampler::CreateZeroMean(Matrix::Identity(2));
  ASSERT_TRUE(sampler.ok());
  const Philox base(3, 9);
  Matrix whole(600, 2);
  sampler.value().SampleRecordsAt(base, 0, 600, &whole);
  Matrix window(100, 2);
  sampler.value().SampleRecordsAt(base, 250, 100, &window);
  for (size_t i = 0; i < 100; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      ASSERT_EQ(window(i, j), whole(250 + i, j)) << i << "," << j;
    }
  }
}

TEST(MvnTest, BatchStreamsWithDifferentSeedsDiffer) {
  auto sampler = MultivariateNormalSampler::CreateZeroMean(Matrix::Identity(2));
  ASSERT_TRUE(sampler.ok());
  Matrix a(10, 2), b(10, 2);
  sampler.value().SampleRecordsAt(Philox(1, 0), 0, 10, &a);
  sampler.value().SampleRecordsAt(Philox(2, 0), 0, 10, &b);
  EXPECT_GT(linalg::MaxAbsDifference(a, b), 0.0);
}

}  // namespace
}  // namespace stats
}  // namespace randrecon
