#include "stats/mvn.h"

#include <gtest/gtest.h>

#include "linalg/eigen.h"
#include "linalg/matrix_util.h"
#include "stats/moments.h"
#include "stats/random_orthogonal.h"

namespace randrecon {
namespace stats {
namespace {

using linalg::Matrix;
using linalg::Vector;

TEST(MvnTest, SampleShape) {
  auto sampler = MultivariateNormalSampler::CreateZeroMean(Matrix::Identity(3));
  ASSERT_TRUE(sampler.ok());
  Rng rng(1);
  Matrix sample = sampler.value().SampleMatrix(50, &rng);
  EXPECT_EQ(sample.rows(), 50u);
  EXPECT_EQ(sample.cols(), 3u);
}

TEST(MvnTest, MeanIsRespected) {
  Vector mean{5.0, -3.0};
  auto sampler = MultivariateNormalSampler::Create(mean, Matrix::Identity(2));
  ASSERT_TRUE(sampler.ok());
  Rng rng(2);
  Matrix sample = sampler.value().SampleMatrix(20000, &rng);
  const Vector sample_mean = ColumnMeans(sample);
  EXPECT_NEAR(sample_mean[0], 5.0, 0.05);
  EXPECT_NEAR(sample_mean[1], -3.0, 0.05);
}

TEST(MvnTest, CovarianceIsReproduced) {
  Matrix cov{{4.0, 1.5}, {1.5, 2.0}};
  auto sampler = MultivariateNormalSampler::CreateZeroMean(cov);
  ASSERT_TRUE(sampler.ok());
  Rng rng(3);
  Matrix sample = sampler.value().SampleMatrix(50000, &rng);
  Matrix sample_cov = SampleCovariance(sample);
  EXPECT_LT(linalg::MaxAbsDifference(sample_cov, cov), 0.1);
}

TEST(MvnTest, SingularCovarianceSamplesOnSubspace) {
  // Rank-1 covariance: all samples proportional to (1, 1).
  Matrix cov{{1.0, 1.0}, {1.0, 1.0}};
  auto sampler = MultivariateNormalSampler::CreateZeroMean(cov);
  ASSERT_TRUE(sampler.ok()) << sampler.status().ToString();
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const Vector x = sampler.value().SampleRecord(&rng);
    EXPECT_NEAR(x[0], x[1], 1e-9);
  }
}

TEST(MvnTest, ZeroCovarianceGivesConstantSamples) {
  auto sampler =
      MultivariateNormalSampler::Create({2.0, 3.0}, Matrix(2, 2));
  ASSERT_TRUE(sampler.ok());
  Rng rng(5);
  const Vector x = sampler.value().SampleRecord(&rng);
  EXPECT_DOUBLE_EQ(x[0], 2.0);
  EXPECT_DOUBLE_EQ(x[1], 3.0);
}

TEST(MvnTest, SpikedSpectrumCovarianceReproduced) {
  // The §7.1 shape: a few large eigenvalues, many tiny ones.
  Rng rng(6);
  const Vector spectrum{100.0, 100.0, 1.0, 1.0, 1.0, 1.0};
  Matrix q = RandomOrthogonalMatrix(6, &rng);
  Matrix cov = linalg::ComposeFromEigen(spectrum, q);
  auto sampler = MultivariateNormalSampler::CreateZeroMean(cov);
  ASSERT_TRUE(sampler.ok());
  Matrix sample = sampler.value().SampleMatrix(40000, &rng);
  Matrix sample_cov = SampleCovariance(sample);
  EXPECT_LT(linalg::MaxAbsDifference(sample_cov, cov),
            0.05 * linalg::FrobeniusNorm(cov));
}

TEST(MvnTest, RejectsNonSquareCovariance) {
  auto sampler = MultivariateNormalSampler::CreateZeroMean(Matrix(2, 3));
  EXPECT_FALSE(sampler.ok());
  EXPECT_EQ(sampler.status().code(), StatusCode::kInvalidArgument);
}

TEST(MvnTest, RejectsMeanLengthMismatch) {
  auto sampler =
      MultivariateNormalSampler::Create({1.0}, Matrix::Identity(2));
  EXPECT_FALSE(sampler.ok());
  EXPECT_EQ(sampler.status().code(), StatusCode::kInvalidArgument);
}

TEST(MvnTest, RejectsAsymmetricCovariance) {
  auto sampler =
      MultivariateNormalSampler::CreateZeroMean(Matrix{{1, 0.5}, {0, 1}});
  EXPECT_FALSE(sampler.ok());
}

TEST(MvnTest, RejectsIndefiniteCovariance) {
  auto sampler = MultivariateNormalSampler::CreateZeroMean(
      Matrix::Diagonal({1.0, -0.5}));
  EXPECT_FALSE(sampler.ok());
  EXPECT_EQ(sampler.status().code(), StatusCode::kNumericalError);
}

TEST(MvnTest, DeterministicGivenSeed) {
  Matrix cov{{2.0, 0.3}, {0.3, 1.0}};
  auto sampler = MultivariateNormalSampler::CreateZeroMean(cov);
  ASSERT_TRUE(sampler.ok());
  Rng rng1(77), rng2(77);
  Matrix a = sampler.value().SampleMatrix(10, &rng1);
  Matrix b = sampler.value().SampleMatrix(10, &rng2);
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace stats
}  // namespace randrecon
