// Contract tests for the counter-based random substrate: Philox4x32-10
// known-answer vectors, O(1) seek, substream derivation, bitwise
// SIMD/scalar equality of the batch kernels on every tail length, and
// statistical sanity (moments, tails) of the batch distributions.

#include "stats/philox.h"

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

namespace randrecon {
namespace stats {
namespace {

namespace pi = philox_internal;

// ---------------------------------------------------------------------------
// Known-answer vectors. "zeros"/"ones"/"pi" are the canonical Random123
// philox4x32-10 kat_vectors test cases expressed through this class's
// (block, stream, seed) counter layout; the seed-42 vectors pin the
// repo's own layout (counter = block/stream words, key = seed words) so
// any accidental re-arrangement fails loudly.
// ---------------------------------------------------------------------------

TEST(PhiloxTest, KnownAnswerVectors) {
  uint32_t w[4];
  pi::ReferenceBlock(0, 0, 0, w);
  EXPECT_EQ(w[0], 0x6627e8d5u);
  EXPECT_EQ(w[1], 0xe169c58du);
  EXPECT_EQ(w[2], 0xbc57ac4cu);
  EXPECT_EQ(w[3], 0x9b00dbd8u);

  pi::ReferenceBlock(~uint64_t{0}, ~uint64_t{0}, ~uint64_t{0}, w);
  EXPECT_EQ(w[0], 0x408f276du);
  EXPECT_EQ(w[1], 0x41c83b0eu);
  EXPECT_EQ(w[2], 0xa20bc7c6u);
  EXPECT_EQ(w[3], 0x6d5451fdu);

  // Counter = first 128 bits of pi, key = next 64 (Random123 "pi" case).
  pi::ReferenceBlock(0x85a308d3243f6a88ull, 0x0370734413198a2eull,
                     0x299f31d0a4093822ull, w);
  EXPECT_EQ(w[0], 0xd16cfe09u);
  EXPECT_EQ(w[1], 0x94fdccebu);
  EXPECT_EQ(w[2], 0x5001e420u);
  EXPECT_EQ(w[3], 0x24126ea1u);

  pi::ReferenceBlock(0, 0, 42, w);
  EXPECT_EQ(w[0], 0x9ceaf053u);
  EXPECT_EQ(w[1], 0x77f5493bu);
  EXPECT_EQ(w[2], 0x12bf50adu);
  EXPECT_EQ(w[3], 0x5742b3d7u);

  pi::ReferenceBlock(1, 0, 42, w);
  EXPECT_EQ(w[0], 0xfcdb2127u);
  EXPECT_EQ(w[1], 0x53ba6cfdu);
  EXPECT_EQ(w[2], 0x838f5a6eu);
  EXPECT_EQ(w[3], 0x744e06fbu);

  pi::ReferenceBlock(uint64_t{1} << 32, 0, 42, w);  // block counter carry
  EXPECT_EQ(w[0], 0x42e0b8b3u);
  EXPECT_EQ(w[1], 0x7dbf5de8u);
  EXPECT_EQ(w[2], 0x2fe739d4u);
  EXPECT_EQ(w[3], 0x6aaf03ebu);

  pi::ReferenceBlock(0, 7, 42, w);  // distinct stream word
  EXPECT_EQ(w[0], 0x67ee6f2cu);
  EXPECT_EQ(w[1], 0xe55410ccu);
  EXPECT_EQ(w[2], 0x6c7eca35u);
  EXPECT_EQ(w[3], 0x557398d3u);
}

TEST(PhiloxTest, WordStreamFollowsLaneMajorGroupLayout) {
  // Word w of a stream = output word (w%64)/16 of block 16*(w/64) + w%16.
  Philox gen(42, 7);
  for (uint64_t w = 0; w < 200; ++w) {
    uint32_t block[4];
    const uint64_t group = w / Philox::kWordsPerGroup;
    const size_t slot = (w % Philox::kWordsPerGroup) / Philox::kBlocksPerGroup;
    const size_t lane = (w % Philox::kWordsPerGroup) % Philox::kBlocksPerGroup;
    pi::ReferenceBlock(group * Philox::kBlocksPerGroup + lane, 7, 42, block);
    EXPECT_EQ(gen.Next32(), block[slot]) << "word " << w;
  }
}

TEST(PhiloxTest, SeekIsExactRandomAccess) {
  Philox streamed(9, 1);
  std::vector<uint32_t> words(500);
  for (auto& v : words) v = streamed.Next32();
  for (uint64_t target : {0ull, 1ull, 17ull, 63ull, 64ull, 65ull, 130ull,
                          499ull}) {
    Philox seeker(9, 1);
    seeker.Seek(target);
    EXPECT_EQ(seeker.position(), target);
    EXPECT_EQ(seeker.Next32(), words[target]) << "seek " << target;
  }
}

TEST(PhiloxTest, SameSeedSameStreamIdentical) {
  Philox a(1234, 9), b(1234, 9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next32(), b.Next32());
}

TEST(PhiloxTest, SeedsAndStreamsDecorrelate) {
  Philox a(1, 0), b(2, 0), c(1, 1);
  int diff_seed = 0, diff_stream = 0;
  for (int i = 0; i < 16; ++i) {
    const uint32_t va = a.Next32();
    diff_seed += va != b.Next32();
    diff_stream += va != c.Next32();
  }
  EXPECT_GT(diff_seed, 12);
  EXPECT_GT(diff_stream, 12);
}

TEST(PhiloxTest, SubstreamsAreDeterministicAndDistinct) {
  const Philox base(77, 3);
  Philox s0 = base.Substream(0);
  Philox s0b = base.Substream(0);
  Philox s1 = base.Substream(1);
  EXPECT_EQ(s0.stream(), s0b.stream());
  EXPECT_EQ(s0.seed(), base.seed());
  EXPECT_NE(s0.stream(), s1.stream());
  EXPECT_NE(s0.stream(), base.stream());
  // Nested derivation keeps producing fresh streams.
  Philox s00 = base.Substream(0).Substream(0);
  EXPECT_NE(s00.stream(), s0.stream());
  int diff = 0;
  for (int i = 0; i < 16; ++i) diff += s0.Next32() != s1.Next32();
  EXPECT_GT(diff, 12);
}

TEST(PhiloxTest, Next64AndUniformMatchWordStream) {
  Philox words(5, 6);
  uint32_t lo = words.Next32();
  uint32_t hi = words.Next32();
  Philox gen(5, 6);
  EXPECT_EQ(gen.Next64(), (uint64_t{hi} << 32) | lo);
  const uint64_t v = (uint64_t{hi} << 32) | lo;
  Philox gen2(5, 6);
  EXPECT_DOUBLE_EQ(gen2.NextUniform(),
                   static_cast<double>(v >> 11) * 0x1.0p-53);
}

// ---------------------------------------------------------------------------
// SIMD vs scalar bitwise equality.
// ---------------------------------------------------------------------------

TEST(PhiloxTest, RawEnginesBitwiseEqualOnAllOffsetsAndLengths) {
  uint32_t scalar[300], dispatched[300];
  for (uint64_t begin : {0ull, 1ull, 15ull, 16ull, 63ull, 64ull, 65ull,
                         127ull, 1000000007ull}) {
    for (size_t n = 0; n <= 130; ++n) {
      pi::FillRawScalar(42, 7, begin, scalar, n);
      pi::FillRawDispatched(42, 7, begin, dispatched, n);
      ASSERT_EQ(std::memcmp(scalar, dispatched, n * sizeof(uint32_t)), 0)
          << "engine " << pi::ActiveEngine() << " begin " << begin << " n "
          << n;
    }
  }
}

TEST(PhiloxTest, BoxMullerBitwiseEqualOnAllTailLengths) {
  constexpr size_t kMaxPairs = 70;  // covers every SIMD-width remainder
  uint32_t words[2 * kMaxPairs];
  pi::FillRawScalar(11, 2, 0, words, 2 * kMaxPairs);
  double scalar[2 * kMaxPairs], dispatched[2 * kMaxPairs];
  for (size_t pairs = 0; pairs <= kMaxPairs; ++pairs) {
    pi::BoxMullerScalar(words, scalar, pairs);
    pi::BoxMullerDispatched(words, dispatched, pairs);
    ASSERT_EQ(std::memcmp(scalar, dispatched, 2 * pairs * sizeof(double)), 0)
        << "engine " << pi::ActiveEngine() << " pairs " << pairs;
  }
}

TEST(PhiloxTest, GaussianSliceCoversEveryTailAlignment) {
  // Slices must be exact windows of the canonical element sequence for
  // any (offset, length) — including odd offsets that split a pair.
  const Philox base(3, 14);
  double full[257];
  GaussianSliceAt(base, 0, full, 257);
  double out[257];
  for (uint64_t begin = 0; begin < 9; ++begin) {
    for (size_t n : {0, 1, 2, 3, 7, 8, 16, 17, 64, 200}) {
      GaussianSliceAt(base, begin, out, n);
      ASSERT_EQ(std::memcmp(out, full + begin, n * sizeof(double)), 0)
          << "begin " << begin << " n " << n;
    }
  }
}

TEST(PhiloxTest, FillsMatchSlicesFromFreshGenerator) {
  const Philox base(21, 4);
  double a[100], b[100];
  Philox gen = base;
  gen.FillGaussian(a, 75);
  GaussianSliceAt(base, 0, b, 75);
  EXPECT_EQ(std::memcmp(a, b, 75 * sizeof(double)), 0);

  gen = base;
  gen.FillUniform(a, 60);
  UniformSliceAt(base, 0, b, 60);
  EXPECT_EQ(std::memcmp(a, b, 60 * sizeof(double)), 0);

  uint8_t ba[80], bb[80];
  gen = base;
  gen.FillBernoulli(0.25, ba, 80);
  BernoulliSliceAt(base, 0.25, 0, bb, 80);
  EXPECT_EQ(std::memcmp(ba, bb, 80), 0);
}

TEST(PhiloxTest, FillsAdvanceTheCursorConsistently) {
  // Two gaussian fills back to back == one big fill (even lengths).
  Philox split(8, 8), whole(8, 8);
  double a[96], b[96];
  split.FillGaussian(a, 40);
  split.FillGaussian(a + 40, 56);
  whole.FillGaussian(b, 96);
  EXPECT_EQ(std::memcmp(a, b, sizeof(a)), 0);
  EXPECT_EQ(split.position(), whole.position());
}

// ---------------------------------------------------------------------------
// Statistical sanity.
// ---------------------------------------------------------------------------

TEST(PhiloxTest, BatchGaussianMomentsAndTails) {
  constexpr size_t kN = 400000;
  std::vector<double> z(kN);
  Philox gen(123, 5);
  gen.FillGaussian(z.data(), kN);
  double sum = 0.0;
  for (double v : z) sum += v;
  const double mean = sum / kN;
  double m2 = 0.0, m3 = 0.0, m4 = 0.0;
  size_t tail3 = 0;
  for (double v : z) {
    const double d = v - mean;
    m2 += d * d;
    m3 += d * d * d;
    m4 += d * d * d * d;
    if (std::fabs(v) > 3.0) ++tail3;
  }
  m2 /= kN;
  m3 /= kN;
  m4 /= kN;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(m2, 1.0, 0.01);
  EXPECT_NEAR(m3 / std::pow(m2, 1.5), 0.0, 0.03);        // skewness
  EXPECT_NEAR(m4 / (m2 * m2), 3.0, 0.08);                // kurtosis
  EXPECT_NEAR(static_cast<double>(tail3) / kN, 0.0027, 0.0008);
  for (double v : z) {
    ASSERT_TRUE(std::isfinite(v));
    ASSERT_LT(std::fabs(v), 7.0);  // radius uniform is (0,1] at 2^-32
  }
}

TEST(PhiloxTest, BatchGaussianAffineTransform) {
  constexpr size_t kN = 100000;
  std::vector<double> z(kN);
  Philox gen(9, 0);
  gen.FillGaussian(5.0, 2.0, z.data(), kN);
  double sum = 0.0, sq = 0.0;
  for (double v : z) {
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kN;
  EXPECT_NEAR(mean, 5.0, 0.03);
  EXPECT_NEAR(sq / kN - mean * mean, 4.0, 0.1);
}

TEST(PhiloxTest, BatchUniformMomentsAndRange) {
  constexpr size_t kN = 200000;
  std::vector<double> u(kN);
  Philox gen(55, 1);
  gen.FillUniform(-2.0, 6.0, u.data(), kN);
  double sum = 0.0, sq = 0.0;
  for (double v : u) {
    ASSERT_GE(v, -2.0);
    ASSERT_LT(v, 6.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kN;
  EXPECT_NEAR(mean, 2.0, 0.02);
  EXPECT_NEAR(sq / kN - mean * mean, 64.0 / 12.0, 0.06);
}

TEST(PhiloxTest, BatchBernoulliProportion) {
  constexpr size_t kN = 200000;
  std::vector<uint8_t> bits(kN);
  Philox gen(31, 2);
  gen.FillBernoulli(0.3, bits.data(), kN);
  size_t ones = 0;
  for (uint8_t b : bits) {
    ASSERT_LE(b, 1);
    ones += b;
  }
  EXPECT_NEAR(static_cast<double>(ones) / kN, 0.3, 0.005);
}

TEST(PhiloxTest, Log01MatchesLibm) {
  for (double x : {1.0, 0.999999, 0.75, 0.5, 0.25, 1e-3, 1e-9, 0x1.0p-32,
                   0x1.0p-53}) {
    EXPECT_NEAR(Log01(x), std::log(x), 1e-9 * (1.0 + std::fabs(std::log(x))))
        << "x = " << x;
  }
}

TEST(PhiloxTest, BoxMullerMatchesLibmTransform) {
  // The polynomial kernels should agree with a libm Box–Muller to ~1e-10.
  constexpr size_t kPairs = 512;
  uint32_t words[2 * kPairs];
  pi::FillRawScalar(17, 0, 0, words, 2 * kPairs);
  double z[2 * kPairs];
  pi::BoxMullerDispatched(words, z, kPairs);
  for (size_t p = 0; p < kPairs; ++p) {
    const double u1 = (static_cast<double>(words[2 * p]) + 1.0) * 0x1.0p-32;
    const uint32_t w1 = words[2 * p + 1];
    const double theta =
        (static_cast<double>(w1 >> 30) +
         static_cast<double>(w1 & 0x3FFFFFFFu) * 0x1.0p-30 - 0.5) *
        (M_PI / 2.0);
    const double r = std::sqrt(-2.0 * std::log(u1));
    ASSERT_NEAR(z[2 * p], r * std::cos(theta), 1e-10);
    ASSERT_NEAR(z[2 * p + 1], r * std::sin(theta), 1e-10);
  }
}

}  // namespace
}  // namespace stats
}  // namespace randrecon
