#include "stats/rng.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/vector_ops.h"

namespace randrecon {
namespace stats {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Gaussian(), b.Gaussian());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool any_different = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Gaussian() != b.Gaussian()) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(7);
  linalg::Vector sample = rng.GaussianVector(100000);
  EXPECT_NEAR(linalg::Mean(sample), 0.0, 0.02);
  EXPECT_NEAR(linalg::Variance(sample), 1.0, 0.03);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(8);
  linalg::Vector sample = rng.GaussianVector(100000, 3.0, 2.0);
  EXPECT_NEAR(linalg::Mean(sample), 3.0, 0.05);
  EXPECT_NEAR(std::sqrt(linalg::Variance(sample)), 2.0, 0.05);
}

TEST(RngTest, UniformInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-2.0, 5.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(10);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMatrixShapeAndVariance) {
  Rng rng(11);
  linalg::Matrix m = rng.GaussianMatrix(200, 50);
  EXPECT_EQ(m.rows(), 200u);
  EXPECT_EQ(m.cols(), 50u);
  double sum = 0.0, sumsq = 0.0;
  for (size_t i = 0; i < m.size(); ++i) {
    sum += m.data()[i];
    sumsq += m.data()[i] * m.data()[i];
  }
  const double n = static_cast<double>(m.size());
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

// Golden sequences captured from the pre-refactor implementation (one
// std::*_distribution constructed per call). The hoisted-member versions
// must reproduce them exactly — the distributions are invoked with
// per-call params, which libstdc++ evaluates identically — so any future
// change that silently shifts the stream fails here.
TEST(RngTest, UniformSequenceIsPinned) {
  const double expected[] = {
      0.63200178678470786,   3.0597911939485858,   6.8828510817776891,
      4.8632211292230378,    -0.57592446939916764, -0.54859935700065554,
      7.0095977758651458,    0.40445403192185836,
  };
  Rng rng(123);
  for (double value : expected) {
    EXPECT_DOUBLE_EQ(rng.Uniform(-2.5, 7.5), value);
  }
}

TEST(RngTest, UniformIntSequenceIsPinned) {
  const int64_t expected[] = {818, 483, 263, 582, 44, 554, 636, 975};
  Rng rng(123);
  for (int i = 0; i < 8; ++i) {
    rng.Uniform(-2.5, 7.5);  // burn the same engine draws as the capture
  }
  for (int64_t value : expected) {
    EXPECT_EQ(rng.UniformInt(-10, 1000), value);
  }
}

TEST(RngTest, InterleavedDrawSequenceIsPinned) {
  // Gaussian/uniform/int draws interleave through one engine; pinned so
  // the member distributions provably share state the same way.
  Rng rng(77);
  EXPECT_DOUBLE_EQ(rng.Gaussian(), -0.038488214895025831);
  EXPECT_DOUBLE_EQ(rng.Uniform(0.0, 1.0), 0.19394006643474851);
  EXPECT_EQ(rng.UniformInt(0, 99), 99);
  EXPECT_DOUBLE_EQ(rng.Gaussian(2.0, 3.0), -2.7885196466109816);
  EXPECT_EQ(rng.NextSeed(), 10989009113194292687ull);
}

TEST(RngTest, NextSeedProducesIndependentStreams) {
  Rng parent(12);
  Rng child1(parent.NextSeed());
  Rng child2(parent.NextSeed());
  // The streams should not be identical.
  bool any_different = false;
  for (int i = 0; i < 10; ++i) {
    if (child1.Gaussian() != child2.Gaussian()) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

}  // namespace
}  // namespace stats
}  // namespace randrecon
