#include "stats/rng.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/vector_ops.h"

namespace randrecon {
namespace stats {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Gaussian(), b.Gaussian());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool any_different = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Gaussian() != b.Gaussian()) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(7);
  linalg::Vector sample = rng.GaussianVector(100000);
  EXPECT_NEAR(linalg::Mean(sample), 0.0, 0.02);
  EXPECT_NEAR(linalg::Variance(sample), 1.0, 0.03);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(8);
  linalg::Vector sample = rng.GaussianVector(100000, 3.0, 2.0);
  EXPECT_NEAR(linalg::Mean(sample), 3.0, 0.05);
  EXPECT_NEAR(std::sqrt(linalg::Variance(sample)), 2.0, 0.05);
}

TEST(RngTest, UniformInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-2.0, 5.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(10);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMatrixShapeAndVariance) {
  Rng rng(11);
  linalg::Matrix m = rng.GaussianMatrix(200, 50);
  EXPECT_EQ(m.rows(), 200u);
  EXPECT_EQ(m.cols(), 50u);
  double sum = 0.0, sumsq = 0.0;
  for (size_t i = 0; i < m.size(); ++i) {
    sum += m.data()[i];
    sumsq += m.data()[i] * m.data()[i];
  }
  const double n = static_cast<double>(m.size());
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(RngTest, NextSeedProducesIndependentStreams) {
  Rng parent(12);
  Rng child1(parent.NextSeed());
  Rng child2(parent.NextSeed());
  // The streams should not be identical.
  bool any_different = false;
  for (int i = 0; i < 10; ++i) {
    if (child1.Gaussian() != child2.Gaussian()) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

}  // namespace
}  // namespace stats
}  // namespace randrecon
