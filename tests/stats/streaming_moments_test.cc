// The determinism contract of the streaming accumulator: for ANY chunk
// size and ANY thread count, the streamed means/covariance are BITWISE
// identical to the in-memory stats::ColumnMeans / stats::SampleCovariance
// over the same records (exact 0.0 difference, not a tolerance).

#include "stats/streaming_moments.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "linalg/matrix_util.h"
#include "stats/moments.h"
#include "stats/rng.h"

namespace randrecon {
namespace stats {
namespace {

using linalg::Matrix;

/// Streams `data` into a StreamingMoments in chunks of `chunk_rows` and
/// returns the finalized covariance.
Matrix StreamCovariance(const Matrix& data, size_t chunk_rows, int num_threads,
                        int ddof = 0, linalg::Vector* means_out = nullptr) {
  ParallelOptions options;
  options.num_threads = num_threads;
  StreamingMoments moments(data.cols(), options);
  for (size_t row = 0; row < data.rows(); row += chunk_rows) {
    const size_t rows = std::min(chunk_rows, data.rows() - row);
    moments.AccumulateMeans(data.row_data(row), rows);
  }
  moments.FinalizeMeans();
  for (size_t row = 0; row < data.rows(); row += chunk_rows) {
    const size_t rows = std::min(chunk_rows, data.rows() - row);
    moments.AccumulateScatter(data.row_data(row), rows);
  }
  if (means_out != nullptr) *means_out = moments.means();
  return moments.FinalizeCovariance(ddof);
}

class StreamingMomentsChunkTest
    : public ::testing::TestWithParam<std::tuple<size_t, int>> {};

TEST_P(StreamingMomentsChunkTest, BitwiseEqualsSampleCovariance) {
  const size_t chunk_rows = std::get<0>(GetParam());
  const int num_threads = std::get<1>(GetParam());
  stats::Rng rng(7);
  // Large non-zero means make any raw-moment shortcut (Σxxᵀ/n − µµᵀ)
  // detectable; n straddles one kGramChunkRows staging-block boundary.
  Matrix data = rng.GaussianMatrix(linalg::kernels::kGramChunkRows + 321, 9);
  for (size_t i = 0; i < data.rows(); ++i) {
    for (size_t j = 0; j < data.cols(); ++j) {
      data(i, j) += 100.0 * static_cast<double>(j + 1);
    }
  }

  linalg::Vector streamed_means;
  const Matrix streamed =
      StreamCovariance(data, chunk_rows == 0 ? data.rows() : chunk_rows,
                       num_threads, /*ddof=*/0, &streamed_means);
  const Matrix in_memory = SampleCovariance(data);
  const linalg::Vector in_memory_means = ColumnMeans(data);

  ASSERT_EQ(streamed_means.size(), in_memory_means.size());
  for (size_t j = 0; j < in_memory_means.size(); ++j) {
    EXPECT_EQ(streamed_means[j], in_memory_means[j]) << "mean " << j;
  }
  EXPECT_EQ(linalg::MaxAbsDifference(streamed, in_memory), 0.0);
}

// Chunk size 0 is the sentinel for "whole dataset in one chunk".
INSTANTIATE_TEST_SUITE_P(
    ChunkSizesAndThreads, StreamingMomentsChunkTest,
    ::testing::Combine(::testing::Values<size_t>(1, 7, 64, 0),
                       ::testing::Values(1, 4)));

TEST(StreamingMomentsTest, UnevenChunkSequenceStillBitwise) {
  stats::Rng rng(11);
  const Matrix data = rng.GaussianMatrix(1000, 6);
  StreamingMoments moments(6);
  // Deliberately irregular chunking, including empty chunks.
  const std::vector<size_t> spans = {1, 0, 499, 3, 497};
  size_t row = 0;
  for (size_t span : spans) {
    moments.AccumulateMeans(data.row_data(row), span);
    row += span;
  }
  ASSERT_EQ(row, data.rows());
  moments.FinalizeMeans();
  row = 0;
  for (size_t span : spans) {
    moments.AccumulateScatter(data.row_data(row), span);
    row += span;
  }
  EXPECT_EQ(linalg::MaxAbsDifference(moments.FinalizeCovariance(),
                                     SampleCovariance(data)),
            0.0);
}

TEST(StreamingMomentsTest, DdofOneMatchesUnbiasedEstimator) {
  stats::Rng rng(13);
  const Matrix data = rng.GaussianMatrix(257, 5);
  EXPECT_EQ(linalg::MaxAbsDifference(StreamCovariance(data, 32, 1, /*ddof=*/1),
                                     SampleCovariance(data, /*ddof=*/1)),
            0.0);
}

TEST(StreamingMomentsTest, MultiBlockStreamMatchesInMemory) {
  // Several staging-block flushes plus a ragged tail.
  stats::Rng rng(17);
  const Matrix data =
      rng.GaussianMatrix(2 * linalg::kernels::kGramChunkRows + 123, 4);
  EXPECT_EQ(linalg::MaxAbsDifference(StreamCovariance(data, 777, 4),
                                     SampleCovariance(data)),
            0.0);
}

TEST(StreamingMomentsTest, ColumnarFormIsBitwiseTheRowMajorForm) {
  // The columnar entry points (fed by mmap'd BlockColumn slices in
  // production) must produce bitwise-identical means and covariance to
  // the row-major ones — including when the two forms are interleaved
  // mid-stream and when spans straddle the staging block.
  stats::Rng rng(35);
  const size_t n = 3 * linalg::kernels::kGramChunkRows / 2 + 37;
  const size_t m = 5;
  const Matrix data = rng.GaussianMatrix(n, m);

  const Matrix expected = [&] {
    StreamingMoments moments(m);
    moments.AccumulateMeans(data, n);
    moments.FinalizeMeans();
    moments.AccumulateScatter(data, n);
    return moments.FinalizeCovariance();
  }();

  // Columnar spans of uneven sizes over a transposed copy of the data.
  Matrix transposed(m, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) transposed.row_data(j)[i] = data(i, j);
  }
  auto columns_at = [&](size_t row) {
    std::vector<const double*> columns(m);
    for (size_t j = 0; j < m; ++j) columns[j] = transposed.row_data(j) + row;
    return columns;
  };

  StreamingMoments columnar(m);
  size_t row = 0;
  size_t span = 1;
  while (row < n) {
    const size_t take = std::min(span, n - row);
    if (span % 3 == 0) {  // Interleave the row-major form mid-stream.
      columnar.AccumulateMeans(data.row_data(row), take);
    } else {
      columnar.AccumulateMeansColumns(columns_at(row).data(), take);
    }
    row += take;
    span = span * 2 + 1;
  }
  columnar.FinalizeMeans();
  row = 0;
  span = 1;
  while (row < n) {
    const size_t take = std::min(span, n - row);
    if (span % 3 == 0) {
      columnar.AccumulateScatter(data.row_data(row), take);
    } else {
      columnar.AccumulateScatterColumns(columns_at(row).data(), take);
    }
    row += take;
    span = span * 2 + 1;
  }
  EXPECT_TRUE(columnar.FinalizeCovariance() == expected);
}

TEST(StreamingMomentsTest, CountsRecords) {
  stats::Rng rng(19);
  const Matrix data = rng.GaussianMatrix(42, 3);
  StreamingMoments moments(3);
  moments.AccumulateMeans(data, 42);
  EXPECT_EQ(moments.num_records(), 42u);
  EXPECT_EQ(moments.num_attributes(), 3u);
}

}  // namespace
}  // namespace stats
}  // namespace randrecon
