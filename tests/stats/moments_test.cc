#include "stats/moments.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/matrix_util.h"
#include "stats/rng.h"

namespace randrecon {
namespace stats {
namespace {

using linalg::Matrix;
using linalg::Vector;

TEST(MomentsTest, ColumnMeans) {
  Matrix data{{1, 10}, {3, 20}};
  EXPECT_EQ(ColumnMeans(data), (Vector{2, 15}));
}

TEST(MomentsTest, ColumnMeansEmpty) {
  Matrix data(0, 3);
  EXPECT_EQ(ColumnMeans(data), (Vector{0, 0, 0}));
}

TEST(MomentsTest, ColumnVariances) {
  Matrix data{{1, 0}, {3, 0}};
  const Vector vars = ColumnVariances(data);
  EXPECT_DOUBLE_EQ(vars[0], 1.0);  // Population convention.
  EXPECT_DOUBLE_EQ(vars[1], 0.0);
}

TEST(MomentsTest, CenterColumnsSubtractsMeans) {
  Matrix data{{1, 10}, {3, 20}};
  Vector means;
  Matrix centered = CenterColumns(data, &means);
  EXPECT_EQ(means, (Vector{2, 15}));
  EXPECT_EQ(ColumnMeans(centered), (Vector{0, 0}));
  EXPECT_DOUBLE_EQ(centered(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(centered(1, 1), 5.0);
}

TEST(MomentsTest, SampleCovarianceKnown) {
  // Two perfectly correlated columns.
  Matrix data{{1, 2}, {2, 4}, {3, 6}};
  Matrix cov = SampleCovariance(data);
  EXPECT_NEAR(cov(0, 0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cov(1, 1), 8.0 / 3.0, 1e-12);
  EXPECT_NEAR(cov(0, 1), 4.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cov(0, 1), cov(1, 0));
}

TEST(MomentsTest, SampleCovarianceDdof1) {
  Matrix data{{1, 2}, {2, 4}, {3, 6}};
  Matrix cov = SampleCovariance(data, 1);
  EXPECT_NEAR(cov(0, 0), 1.0, 1e-12);  // Unbiased: divide by n-1 = 2.
}

TEST(MomentsTest, SampleCovarianceIsSymmetricPsd) {
  Rng rng(21);
  Matrix data = rng.GaussianMatrix(300, 8);
  Matrix cov = SampleCovariance(data);
  EXPECT_TRUE(linalg::IsSymmetric(cov, 1e-12));
  // PSD: all quadratic forms non-negative (spot-check random directions).
  for (int trial = 0; trial < 20; ++trial) {
    Vector v = rng.GaussianVector(8);
    const Vector cv = cov * v;
    double quad = 0.0;
    for (size_t i = 0; i < 8; ++i) quad += v[i] * cv[i];
    EXPECT_GE(quad, -1e-10);
  }
}

TEST(MomentsTest, SampleCorrelationOfPerfectlyCorrelatedColumns) {
  Matrix data{{1, 2}, {2, 4}, {3, 6}};
  Matrix corr = SampleCorrelation(data);
  EXPECT_NEAR(corr(0, 1), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(corr(0, 0), 1.0);
}

TEST(MomentsTest, SampleCorrelationOfAntiCorrelatedColumns) {
  Matrix data{{1, -1}, {2, -2}, {3, -3}};
  Matrix corr = SampleCorrelation(data);
  EXPECT_NEAR(corr(0, 1), -1.0, 1e-12);
}

TEST(MomentsTest, IndependentColumnsNearZeroCorrelation) {
  Rng rng(22);
  Matrix data = rng.GaussianMatrix(20000, 2);
  Matrix corr = SampleCorrelation(data);
  EXPECT_NEAR(corr(0, 1), 0.0, 0.03);
}

TEST(MomentsTest, RmseAndMse) {
  Matrix a{{0, 0}, {0, 0}};
  Matrix b{{3, 4}, {0, 0}};
  EXPECT_DOUBLE_EQ(MeanSquareError(a, b), 25.0 / 4.0);
  EXPECT_DOUBLE_EQ(RootMeanSquareError(a, b), 2.5);
  EXPECT_DOUBLE_EQ(RootMeanSquareError(a, a), 0.0);
}

TEST(MomentsTest, PerAttributeRmse) {
  Matrix a{{0, 0}, {0, 0}};
  Matrix b{{3, 0}, {3, 4}};
  const Vector rmse = PerAttributeRmse(a, b);
  EXPECT_DOUBLE_EQ(rmse[0], 3.0);
  EXPECT_DOUBLE_EQ(rmse[1], std::sqrt(8.0));
}

TEST(MomentsDeathTest, RmseShapeMismatchAborts) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_DEATH({ RootMeanSquareError(a, b); }, "shape");
}

TEST(MomentsTest, CovarianceApproachesTruthWithLargeN) {
  // Columns: x, x + e with known covariance [[1,1],[1,1.25]].
  Rng rng(23);
  const size_t n = 50000;
  Matrix data(n, 2);
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.Gaussian();
    data(i, 0) = x;
    data(i, 1) = x + rng.Gaussian(0.0, 0.5);
  }
  Matrix cov = SampleCovariance(data);
  EXPECT_NEAR(cov(0, 0), 1.0, 0.03);
  EXPECT_NEAR(cov(0, 1), 1.0, 0.03);
  EXPECT_NEAR(cov(1, 1), 1.25, 0.04);
}

}  // namespace
}  // namespace stats
}  // namespace randrecon
