#include "stats/distribution.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/vector_ops.h"

namespace randrecon {
namespace stats {
namespace {

TEST(StandardNormalTest, PdfPeakAndSymmetry) {
  EXPECT_NEAR(StandardNormalPdf(0.0), 0.3989422804, 1e-9);
  EXPECT_DOUBLE_EQ(StandardNormalPdf(1.5), StandardNormalPdf(-1.5));
}

TEST(StandardNormalTest, CdfKnownValues) {
  EXPECT_NEAR(StandardNormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(StandardNormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(StandardNormalCdf(-1.96), 0.025, 1e-3);
}

TEST(NormalDistributionTest, Moments) {
  NormalDistribution d(2.0, 3.0);
  EXPECT_DOUBLE_EQ(d.Mean(), 2.0);
  EXPECT_DOUBLE_EQ(d.Variance(), 9.0);
  EXPECT_DOUBLE_EQ(d.stddev(), 3.0);
}

TEST(NormalDistributionTest, PdfIntegratesToOne) {
  NormalDistribution d(1.0, 2.0);
  // Trapezoid over ±8σ.
  double integral = 0.0;
  const double step = 0.01;
  for (double x = 1.0 - 16.0; x < 1.0 + 16.0; x += step) {
    integral += d.Pdf(x) * step;
  }
  EXPECT_NEAR(integral, 1.0, 1e-6);
}

TEST(NormalDistributionTest, CdfMatchesPdfIntegral) {
  NormalDistribution d(0.0, 1.5);
  double integral = 0.0;
  const int num_steps = 12750;  // Exactly covers [-12, 0.75].
  const double step = (0.75 - (-12.0)) / num_steps;
  // Midpoint rule keeps the discretization error well under tolerance.
  for (int k = 0; k < num_steps; ++k) {
    integral += d.Pdf(-12.0 + (k + 0.5) * step) * step;
  }
  EXPECT_NEAR(integral, d.Cdf(0.75), 1e-4);
}

TEST(NormalDistributionTest, SampleMoments) {
  NormalDistribution d(-1.0, 0.5);
  Rng rng(13);
  linalg::Vector sample(50000);
  for (double& v : sample) v = d.Sample(&rng);
  EXPECT_NEAR(linalg::Mean(sample), -1.0, 0.02);
  EXPECT_NEAR(linalg::Variance(sample), 0.25, 0.01);
}

TEST(NormalDistributionTest, CloneIsIndependentCopy) {
  NormalDistribution d(4.0, 2.0);
  auto clone = d.Clone();
  EXPECT_DOUBLE_EQ(clone->Mean(), 4.0);
  EXPECT_DOUBLE_EQ(clone->Variance(), 4.0);
  EXPECT_DOUBLE_EQ(clone->Pdf(4.0), d.Pdf(4.0));
}

TEST(NormalDistributionTest, ToStringMentionsParameters) {
  NormalDistribution d(0.0, 5.0);
  EXPECT_NE(d.ToString().find("Normal"), std::string::npos);
  EXPECT_NE(d.ToString().find("25"), std::string::npos);  // Variance.
}

TEST(NormalDistributionDeathTest, RejectsNonPositiveStddev) {
  EXPECT_DEATH({ NormalDistribution d(0.0, 0.0); }, "positive stddev");
}

TEST(UniformDistributionTest, Moments) {
  UniformDistribution d(-3.0, 3.0);
  EXPECT_DOUBLE_EQ(d.Mean(), 0.0);
  EXPECT_NEAR(d.Variance(), 3.0, 1e-12);  // (b-a)²/12 = 36/12.
}

TEST(UniformDistributionTest, PdfConstantInsideZeroOutside) {
  UniformDistribution d(0.0, 4.0);
  EXPECT_DOUBLE_EQ(d.Pdf(2.0), 0.25);
  EXPECT_DOUBLE_EQ(d.Pdf(-0.1), 0.0);
  EXPECT_DOUBLE_EQ(d.Pdf(4.1), 0.0);
}

TEST(UniformDistributionTest, CdfPiecewise) {
  UniformDistribution d(0.0, 4.0);
  EXPECT_DOUBLE_EQ(d.Cdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(d.Cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(d.Cdf(5.0), 1.0);
}

TEST(UniformDistributionTest, SamplesStayInRange) {
  UniformDistribution d(-1.0, 1.0);
  Rng rng(14);
  for (int i = 0; i < 1000; ++i) {
    const double v = d.Sample(&rng);
    EXPECT_GE(v, -1.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(UniformDistributionDeathTest, RejectsEmptyInterval) {
  EXPECT_DEATH({ UniformDistribution d(1.0, 1.0); }, "lo < hi");
}

TEST(LaplaceDistributionTest, Moments) {
  LaplaceDistribution d(1.0, 2.0);
  EXPECT_DOUBLE_EQ(d.Mean(), 1.0);
  EXPECT_DOUBLE_EQ(d.Variance(), 8.0);  // 2b².
}

TEST(LaplaceDistributionTest, PdfPeakAndSymmetry) {
  LaplaceDistribution d(0.0, 1.0);
  EXPECT_DOUBLE_EQ(d.Pdf(0.0), 0.5);
  EXPECT_DOUBLE_EQ(d.Pdf(2.0), d.Pdf(-2.0));
  EXPECT_NEAR(d.Pdf(1.0), 0.5 * std::exp(-1.0), 1e-12);
}

TEST(LaplaceDistributionTest, CdfKnownValues) {
  LaplaceDistribution d(0.0, 1.0);
  EXPECT_DOUBLE_EQ(d.Cdf(0.0), 0.5);
  EXPECT_NEAR(d.Cdf(1.0), 1.0 - 0.5 * std::exp(-1.0), 1e-12);
  EXPECT_NEAR(d.Cdf(-1.0), 0.5 * std::exp(-1.0), 1e-12);
}

TEST(LaplaceDistributionTest, SampleMoments) {
  LaplaceDistribution d(3.0, 1.5);
  Rng rng(15);
  linalg::Vector sample(80000);
  for (double& v : sample) v = d.Sample(&rng);
  EXPECT_NEAR(linalg::Mean(sample), 3.0, 0.05);
  EXPECT_NEAR(linalg::Variance(sample), 4.5, 0.15);
}

TEST(LaplaceDistributionTest, HeavierTailsThanNormalOfSameVariance) {
  LaplaceDistribution laplace(0.0, 1.0);            // Variance 2.
  NormalDistribution normal(0.0, std::sqrt(2.0));   // Variance 2.
  EXPECT_GT(laplace.Pdf(5.0), normal.Pdf(5.0));
}

TEST(LaplaceDistributionDeathTest, RejectsNonPositiveScale) {
  EXPECT_DEATH({ LaplaceDistribution d(0.0, 0.0); }, "positive scale");
}

std::unique_ptr<ScalarDistribution> MakeBimodal() {
  std::vector<std::unique_ptr<ScalarDistribution>> parts;
  parts.push_back(std::make_unique<NormalDistribution>(-3.0, 1.0));
  parts.push_back(std::make_unique<NormalDistribution>(3.0, 1.0));
  auto mix = MixtureDistribution::Create(std::move(parts), {1.0, 1.0});
  EXPECT_TRUE(mix.ok());
  return std::move(mix).value().Clone();
}

TEST(MixtureDistributionTest, WeightsAreNormalized) {
  std::vector<std::unique_ptr<ScalarDistribution>> parts;
  parts.push_back(std::make_unique<NormalDistribution>(0.0, 1.0));
  parts.push_back(std::make_unique<NormalDistribution>(10.0, 1.0));
  auto mix = MixtureDistribution::Create(std::move(parts), {3.0, 1.0});
  ASSERT_TRUE(mix.ok());
  EXPECT_NEAR(mix.value().Mean(), 2.5, 1e-12);  // 0.75·0 + 0.25·10.
}

TEST(MixtureDistributionTest, MomentsOfSymmetricBimodal) {
  auto mix = MakeBimodal();
  EXPECT_NEAR(mix->Mean(), 0.0, 1e-12);
  // Law of total variance: 1 + 9 = 10.
  EXPECT_NEAR(mix->Variance(), 10.0, 1e-12);
}

TEST(MixtureDistributionTest, PdfIsWeightedSum) {
  auto mix = MakeBimodal();
  NormalDistribution left(-3.0, 1.0), right(3.0, 1.0);
  for (double x : {-3.0, 0.0, 3.0}) {
    EXPECT_NEAR(mix->Pdf(x), 0.5 * left.Pdf(x) + 0.5 * right.Pdf(x), 1e-12);
  }
}

TEST(MixtureDistributionTest, CdfEndpoints) {
  auto mix = MakeBimodal();
  EXPECT_NEAR(mix->Cdf(-50.0), 0.0, 1e-9);
  EXPECT_NEAR(mix->Cdf(50.0), 1.0, 1e-9);
  EXPECT_NEAR(mix->Cdf(0.0), 0.5, 1e-9);
}

TEST(MixtureDistributionTest, SampleMomentsMatch) {
  auto mix = MakeBimodal();
  Rng rng(16);
  linalg::Vector sample(60000);
  for (double& v : sample) v = mix->Sample(&rng);
  EXPECT_NEAR(linalg::Mean(sample), 0.0, 0.05);
  EXPECT_NEAR(linalg::Variance(sample), 10.0, 0.2);
}

TEST(MixtureDistributionTest, CreateValidation) {
  EXPECT_FALSE(MixtureDistribution::Create({}, {}).ok());
  std::vector<std::unique_ptr<ScalarDistribution>> one;
  one.push_back(std::make_unique<NormalDistribution>(0.0, 1.0));
  EXPECT_FALSE(MixtureDistribution::Create(std::move(one), {1.0, 2.0}).ok());
  std::vector<std::unique_ptr<ScalarDistribution>> bad_weight;
  bad_weight.push_back(std::make_unique<NormalDistribution>(0.0, 1.0));
  EXPECT_FALSE(MixtureDistribution::Create(std::move(bad_weight), {0.0}).ok());
  std::vector<std::unique_ptr<ScalarDistribution>> has_null;
  has_null.push_back(nullptr);
  EXPECT_FALSE(MixtureDistribution::Create(std::move(has_null), {1.0}).ok());
}

TEST(MixtureDistributionTest, CloneIsDeep) {
  auto mix = MakeBimodal();
  auto clone = mix->Clone();
  EXPECT_DOUBLE_EQ(clone->Pdf(1.2345), mix->Pdf(1.2345));
  EXPECT_NE(clone->ToString().find("Mixture"), std::string::npos);
}

TEST(DistributionBatchTest, SlicesMatchDistributionMoments) {
  const size_t n = 120000;
  std::vector<double> draws(n);

  NormalDistribution normal(1.0, 2.0);
  ASSERT_TRUE(normal.SupportsBatchSampling());
  normal.SampleSliceAt(Philox(2, 0), 0, draws.data(), n);
  double sum = 0.0, sq = 0.0;
  for (double v : draws) { sum += v; sq += v * v; }
  EXPECT_NEAR(sum / n, 1.0, 0.03);
  EXPECT_NEAR(sq / n - (sum / n) * (sum / n), 4.0, 0.1);

  UniformDistribution uniform(-3.0, 1.0);
  ASSERT_TRUE(uniform.SupportsBatchSampling());
  uniform.SampleSliceAt(Philox(3, 0), 0, draws.data(), n);
  sum = sq = 0.0;
  for (double v : draws) {
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 1.0);
    sum += v; sq += v * v;
  }
  EXPECT_NEAR(sum / n, -1.0, 0.03);
  EXPECT_NEAR(sq / n - (sum / n) * (sum / n), 16.0 / 12.0, 0.05);

  LaplaceDistribution laplace(0.5, 1.5);
  ASSERT_TRUE(laplace.SupportsBatchSampling());
  laplace.SampleSliceAt(Philox(4, 0), 0, draws.data(), n);
  sum = sq = 0.0;
  for (double v : draws) { sum += v; sq += v * v; }
  EXPECT_NEAR(sum / n, 0.5, 0.03);
  EXPECT_NEAR(sq / n - (sum / n) * (sum / n), 2.0 * 1.5 * 1.5, 0.15);
}

TEST(DistributionBatchTest, SlicesAreElementIndexed) {
  // Slice [k, k+len) must be the window of slice [0, n) — the property
  // the independent-noise batch path relies on for straddled blocks.
  LaplaceDistribution laplace(0.0, 1.0);
  std::vector<double> whole(500), window(100);
  const Philox stream(9, 7);
  laplace.SampleSliceAt(stream, 0, whole.data(), whole.size());
  laplace.SampleSliceAt(stream, 123, window.data(), window.size());
  for (size_t i = 0; i < window.size(); ++i) {
    ASSERT_EQ(window[i], whole[123 + i]) << i;
  }
}

}  // namespace
}  // namespace stats
}  // namespace randrecon
