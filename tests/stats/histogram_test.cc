#include "stats/histogram.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/distribution.h"
#include "stats/rng.h"

namespace randrecon {
namespace stats {
namespace {

TEST(HistogramTest, CreateValidation) {
  EXPECT_TRUE(Histogram::Create(0.0, 1.0, 10).ok());
  EXPECT_FALSE(Histogram::Create(0.0, 1.0, 0).ok());
  EXPECT_FALSE(Histogram::Create(1.0, 1.0, 10).ok());
  EXPECT_FALSE(Histogram::Create(2.0, 1.0, 10).ok());
}

TEST(HistogramTest, CountsLandInCorrectBins) {
  auto h = Histogram::Create(0.0, 10.0, 10);
  ASSERT_TRUE(h.ok());
  Histogram hist = h.value();
  hist.Add(0.5);
  hist.Add(9.5);
  hist.Add(5.0);
  EXPECT_EQ(hist.Count(0), 1u);
  EXPECT_EQ(hist.Count(9), 1u);
  EXPECT_EQ(hist.Count(5), 1u);
  EXPECT_EQ(hist.total_count(), 3u);
}

TEST(HistogramTest, OutOfRangeClampsToEdgeBins) {
  auto h = Histogram::Create(0.0, 10.0, 10);
  ASSERT_TRUE(h.ok());
  Histogram hist = h.value();
  hist.Add(-5.0);
  hist.Add(50.0);
  EXPECT_EQ(hist.Count(0), 1u);
  EXPECT_EQ(hist.Count(9), 1u);
  EXPECT_EQ(hist.total_count(), 2u);
}

TEST(HistogramTest, BinCenters) {
  auto h = Histogram::Create(0.0, 10.0, 10);
  ASSERT_TRUE(h.ok());
  EXPECT_DOUBLE_EQ(h.value().BinCenter(0), 0.5);
  EXPECT_DOUBLE_EQ(h.value().BinCenter(9), 9.5);
}

TEST(HistogramTest, DensityIntegratesToOne) {
  auto h = Histogram::Create(-3.0, 3.0, 30);
  ASSERT_TRUE(h.ok());
  Histogram hist = h.value();
  Rng rng(41);
  hist.AddAll(rng.GaussianVector(5000));
  double mass = 0.0;
  for (size_t k = 0; k < hist.num_bins(); ++k) {
    mass += hist.Density(k) * hist.bin_width();
  }
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

TEST(HistogramTest, FromSamplesCoversRange) {
  linalg::Vector samples{1.0, 2.0, 3.0, 10.0};
  auto h = Histogram::FromSamples(samples, 5);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h.value().total_count(), 4u);
  EXPECT_LE(h.value().lo(), 1.0);
  EXPECT_GE(h.value().hi(), 10.0);
}

TEST(HistogramTest, FromConstantSamples) {
  auto h = Histogram::FromSamples({4.0, 4.0, 4.0}, 3);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h.value().total_count(), 3u);
}

TEST(HistogramTest, FromEmptySamplesFails) {
  EXPECT_FALSE(Histogram::FromSamples({}, 3).ok());
}

TEST(HistogramTest, L1DistanceIdenticalIsZero) {
  Rng rng(42);
  auto h1 = Histogram::Create(-3.0, 3.0, 20);
  ASSERT_TRUE(h1.ok());
  Histogram a = h1.value();
  a.AddAll(rng.GaussianVector(1000));
  auto d = Histogram::L1Distance(a, a);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d.value(), 0.0);
}

TEST(HistogramTest, L1DistanceRejectsDifferentBinning) {
  Histogram a = Histogram::Create(0.0, 1.0, 10).value();
  Histogram b = Histogram::Create(0.0, 2.0, 10).value();
  EXPECT_FALSE(Histogram::L1Distance(a, b).ok());
}

TEST(HistogramTest, GaussianSampleMatchesGaussianDensity) {
  Rng rng(43);
  auto h = Histogram::Create(-4.0, 4.0, 40);
  ASSERT_TRUE(h.ok());
  Histogram hist = h.value();
  hist.AddAll(rng.GaussianVector(200000));
  NormalDistribution normal(0.0, 1.0);
  for (size_t k = 5; k < 35; ++k) {  // Skip tail bins (few samples).
    EXPECT_NEAR(hist.Density(k), normal.Pdf(hist.BinCenter(k)), 0.02);
  }
}

TEST(KdeTest, SilvermanBandwidthPositive) {
  Rng rng(44);
  EXPECT_GT(SilvermanBandwidth(rng.GaussianVector(100)), 0.0);
  EXPECT_GT(SilvermanBandwidth({1.0, 1.0, 1.0}), 0.0);  // Zero-variance guard.
}

TEST(KdeTest, KdeApproximatesNormalPdf) {
  Rng rng(45);
  linalg::Vector samples = rng.GaussianVector(20000);
  NormalDistribution normal(0.0, 1.0);
  for (double x : {-1.0, 0.0, 1.0}) {
    EXPECT_NEAR(GaussianKde(samples, x), normal.Pdf(x), 0.03);
  }
}

TEST(KdeTest, ExplicitBandwidthIsUsed) {
  linalg::Vector samples{0.0};
  // With bandwidth 1 the KDE at 0 equals the standard normal peak.
  EXPECT_NEAR(GaussianKde(samples, 0.0, 1.0), 0.3989, 1e-3);
  // A wider bandwidth flattens it.
  EXPECT_LT(GaussianKde(samples, 0.0, 4.0), 0.2);
}

}  // namespace
}  // namespace stats
}  // namespace randrecon
