#include "stats/dissimilarity.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/matrix_util.h"
#include "stats/moments.h"
#include "stats/rng.h"

namespace randrecon {
namespace stats {
namespace {

using linalg::Matrix;

TEST(DissimilarityTest, IdenticalMatricesGiveZero) {
  Matrix corr{{1.0, 0.5}, {0.5, 1.0}};
  auto d = CorrelationDissimilarity(corr, corr);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d.value(), 0.0);
}

TEST(DissimilarityTest, KnownTwoByTwo) {
  Matrix a{{1.0, 0.8}, {0.8, 1.0}};
  Matrix b{{1.0, 0.2}, {0.2, 1.0}};
  // Off-diagonal squared sum = 2 · 0.6² = 0.72; RMS = sqrt(0.72 / 2) = 0.6.
  auto d = CorrelationDissimilarity(a, b);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d.value(), 0.6, 1e-12);
}

TEST(DissimilarityTest, LiteralFormScalesBySqrtCount) {
  Matrix a{{1.0, 0.8}, {0.8, 1.0}};
  Matrix b{{1.0, 0.2}, {0.2, 1.0}};
  auto rms = CorrelationDissimilarity(a, b);
  auto lit = CorrelationDissimilarityLiteral(a, b);
  ASSERT_TRUE(rms.ok());
  ASSERT_TRUE(lit.ok());
  // Literal = RMS / sqrt(m² − m).
  EXPECT_NEAR(lit.value(), rms.value() / std::sqrt(2.0), 1e-12);
}

TEST(DissimilarityTest, DiagonalDifferencesAreIgnored) {
  Matrix a{{1.0, 0.3}, {0.3, 1.0}};
  Matrix b{{99.0, 0.3}, {0.3, -5.0}};  // Crazy diagonal, same off-diagonal.
  auto d = CorrelationDissimilarity(a, b);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d.value(), 0.0);
}

TEST(DissimilarityTest, SymmetricInArguments) {
  Matrix a{{1.0, 0.7, 0.1}, {0.7, 1.0, 0.2}, {0.1, 0.2, 1.0}};
  Matrix b = Matrix::Identity(3);
  auto d1 = CorrelationDissimilarity(a, b);
  auto d2 = CorrelationDissimilarity(b, a);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  EXPECT_DOUBLE_EQ(d1.value(), d2.value());
}

TEST(DissimilarityTest, RejectsMismatchedSizes) {
  EXPECT_FALSE(
      CorrelationDissimilarity(Matrix::Identity(2), Matrix::Identity(3)).ok());
}

TEST(DissimilarityTest, RejectsNonSquare) {
  EXPECT_FALSE(
      CorrelationDissimilarity(Matrix(2, 3), Matrix(2, 3)).ok());
}

TEST(DissimilarityTest, RejectsOneByOne) {
  EXPECT_FALSE(
      CorrelationDissimilarity(Matrix::Identity(1), Matrix::Identity(1)).ok());
}

TEST(DissimilarityTest, FromDataMatchesFromCorrelations) {
  Rng rng(51);
  Matrix x = rng.GaussianMatrix(500, 4);
  Matrix r = rng.GaussianMatrix(500, 4);
  auto from_data = CorrelationDissimilarityFromData(x, r);
  auto from_corr =
      CorrelationDissimilarity(SampleCorrelation(x), SampleCorrelation(r));
  ASSERT_TRUE(from_data.ok());
  ASSERT_TRUE(from_corr.ok());
  EXPECT_DOUBLE_EQ(from_data.value(), from_corr.value());
}

TEST(DissimilarityTest, IndependentNoiseDistance) {
  Matrix corr{{1.0, 0.6}, {0.6, 1.0}};
  auto d = DissimilarityToIndependentNoise(corr);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d.value(), 0.6, 1e-12);  // vs identity: RMS of {0.6, 0.6}.
}

TEST(DissimilarityTest, BoundedByTwo) {
  // Correlations are in [-1, 1], so entries differ by at most 2.
  Matrix a{{1.0, 1.0}, {1.0, 1.0}};
  Matrix b{{1.0, -1.0}, {-1.0, 1.0}};
  auto d = CorrelationDissimilarity(a, b);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d.value(), 2.0, 1e-12);
}

TEST(DissimilarityTest, MimickedNoiseIsLessDissimilarThanIndependent) {
  // The §8 defense argument in metric form: noise with the data's own
  // correlation structure has dissimilarity 0, independent noise > 0.
  Rng rng(52);
  Matrix x(800, 3);
  for (size_t i = 0; i < 800; ++i) {
    const double f = rng.Gaussian();
    x(i, 0) = f + rng.Gaussian(0.0, 0.3);
    x(i, 1) = f + rng.Gaussian(0.0, 0.3);
    x(i, 2) = -f + rng.Gaussian(0.0, 0.3);
  }
  const Matrix corr_x = SampleCorrelation(x);
  auto mimic = CorrelationDissimilarity(corr_x, corr_x);
  auto indep = DissimilarityToIndependentNoise(corr_x);
  ASSERT_TRUE(mimic.ok());
  ASSERT_TRUE(indep.ok());
  EXPECT_DOUBLE_EQ(mimic.value(), 0.0);
  EXPECT_GT(indep.value(), 0.5);
}

}  // namespace
}  // namespace stats
}  // namespace randrecon
