#include "stats/density_reconstruction.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/distribution.h"
#include "stats/rng.h"

namespace randrecon {
namespace stats {
namespace {

/// Disguises n samples of `original` with noise from `noise` and runs the
/// AS2000 reconstruction.
GridDensity ReconstructFor(const ScalarDistribution& original,
                           const ScalarDistribution& noise, size_t n,
                           uint64_t seed,
                           DensityReconstructionOptions options = {}) {
  Rng rng(seed);
  linalg::Vector disguised(n);
  for (double& y : disguised) {
    y = original.Sample(&rng) + noise.Sample(&rng);
  }
  auto result = ReconstructDensity(disguised, noise, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.value();
}

TEST(GridDensityTest, ValueAtInterpolatesAndClampsToZero) {
  GridDensity d;
  d.points = {0.0, 1.0, 2.0};
  d.density = {0.0, 1.0, 0.0};
  d.step = 1.0;
  EXPECT_DOUBLE_EQ(d.ValueAt(1.0), 1.0);
  EXPECT_DOUBLE_EQ(d.ValueAt(0.5), 0.5);
  EXPECT_DOUBLE_EQ(d.ValueAt(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(d.ValueAt(3.0), 0.0);
}

TEST(GridDensityTest, MeanAndVarianceOfSymmetricTriangle) {
  GridDensity d;
  const size_t k = 201;
  d.step = 0.02;
  d.points.resize(k);
  d.density.resize(k);
  double mass = 0.0;
  for (size_t i = 0; i < k; ++i) {
    d.points[i] = -2.0 + d.step * static_cast<double>(i);
    d.density[i] = std::max(0.0, 1.0 - std::fabs(d.points[i]));
    mass += d.density[i] * d.step;
  }
  for (double& v : d.density) v /= mass;
  EXPECT_NEAR(d.Mean(), 0.0, 1e-9);
  EXPECT_NEAR(d.Variance(), 1.0 / 6.0, 1e-3);  // Triangular(−1,0,1).
}

TEST(DensityReconstructionTest, RecoversNormalMean) {
  NormalDistribution original(3.0, 2.0);
  NormalDistribution noise(0.0, 1.0);
  GridDensity fx = ReconstructFor(original, noise, 4000, 31);
  EXPECT_NEAR(fx.Mean(), 3.0, 0.15);
}

TEST(DensityReconstructionTest, RecoversNormalVarianceNotNoiseInflated) {
  // The whole point of AS2000: Var(fX) ≈ Var(X), not Var(X) + σ².
  NormalDistribution original(0.0, 2.0);
  NormalDistribution noise(0.0, 2.0);
  GridDensity fx = ReconstructFor(original, noise, 6000, 32);
  EXPECT_NEAR(fx.Variance(), 4.0, 0.8);
  // Compare: the raw disguised variance would be ≈ 8.
  EXPECT_LT(fx.Variance(), 6.0);
}

TEST(DensityReconstructionTest, RecoversBimodalShape) {
  // Mixture of N(-4, 0.8) and N(4, 0.8): the reconstruction must show two
  // modes even though the disguised data smears them.
  Rng rng(33);
  NormalDistribution left(-4.0, 0.8), right(4.0, 0.8);
  NormalDistribution noise(0.0, 1.0);
  linalg::Vector disguised(6000);
  for (double& y : disguised) {
    const ScalarDistribution& component =
        rng.Uniform(0.0, 1.0) < 0.5
            ? static_cast<const ScalarDistribution&>(left)
            : static_cast<const ScalarDistribution&>(right);
    y = component.Sample(&rng) + noise.Sample(&rng);
  }
  auto result = ReconstructDensity(disguised, noise);
  ASSERT_TRUE(result.ok());
  const GridDensity& fx = result.value();
  // Density near the modes dominates density at the center.
  EXPECT_GT(fx.ValueAt(-4.0), 3.0 * fx.ValueAt(0.0));
  EXPECT_GT(fx.ValueAt(4.0), 3.0 * fx.ValueAt(0.0));
}

TEST(DensityReconstructionTest, DensityIntegratesToOne) {
  NormalDistribution original(0.0, 1.0);
  NormalDistribution noise(0.0, 1.0);
  GridDensity fx = ReconstructFor(original, noise, 2000, 34);
  double mass = 0.0;
  for (double v : fx.density) mass += v;
  EXPECT_NEAR(mass * fx.step, 1.0, 1e-6);
}

TEST(DensityReconstructionTest, WorksWithUniformNoise) {
  NormalDistribution original(1.0, 1.5);
  UniformDistribution noise(-2.0, 2.0);
  GridDensity fx = ReconstructFor(original, noise, 4000, 35);
  EXPECT_NEAR(fx.Mean(), 1.0, 0.15);
  EXPECT_NEAR(fx.Variance(), 2.25, 0.8);
}

TEST(DensityReconstructionTest, RejectsEmptySample) {
  NormalDistribution noise(0.0, 1.0);
  auto result = ReconstructDensity({}, noise);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(DensityReconstructionTest, RejectsTinyGrid) {
  NormalDistribution noise(0.0, 1.0);
  DensityReconstructionOptions options;
  options.grid_size = 1;
  auto result = ReconstructDensity({1.0, 2.0}, noise, options);
  EXPECT_FALSE(result.ok());
}

TEST(DensityReconstructionTest, ConstantSampleDoesNotCrash) {
  NormalDistribution noise(0.0, 1.0);
  auto result = ReconstructDensity({2.0, 2.0, 2.0}, noise);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().Mean(), 2.0, 0.5);
}

TEST(DensityReconstructionTest, MoreIterationsRefineEstimate) {
  NormalDistribution original(0.0, 3.0);
  NormalDistribution noise(0.0, 3.0);
  DensityReconstructionOptions one_iter;
  one_iter.max_iterations = 1;
  DensityReconstructionOptions many_iter;
  many_iter.max_iterations = 200;
  GridDensity rough = ReconstructFor(original, noise, 5000, 36, one_iter);
  GridDensity refined = ReconstructFor(original, noise, 5000, 36, many_iter);
  // The refined variance estimate must be strictly closer to Var(X) = 9;
  // a single EM step barely moves off the (noise-inflated) start.
  EXPECT_LT(std::fabs(refined.Variance() - 9.0),
            std::fabs(rough.Variance() - 9.0));
}

}  // namespace
}  // namespace stats
}  // namespace randrecon
