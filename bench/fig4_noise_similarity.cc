// Regenerates Figure 4 (§8.2): RMSE of SF / PCA-DR / Improved-BE-DR
// against the correlation dissimilarity (Definition 8.1) between the
// data and the random noise. Noise shares the data's eigenvectors; its
// eigenvalue profile is interpolated from "similar to the data" to
// "concentrated on the non-principal components" at constant total noise
// power. Expected shape (paper): reconstruction error is highest (privacy
// best) when the noise correlation mimics the data; errors fall as
// dissimilarity grows; SF behaves anomalously right of the
// independent-noise vertical line (its bound assumes i.i.d. noise).

#include "bench/bench_util.h"
#include "common/flags.h"
#include "experiment/figures.h"

int main(int argc, char** argv) {
  randrecon::Stopwatch stopwatch;
  randrecon::experiment::Figure4Config config;
  config.similarity_knobs = {0.0, 0.125, 0.25, 0.375, 0.5,
                             0.625, 0.75, 0.875, 1.0};
  config.common.num_trials = 3;
  if (int rc = randrecon::bench::ApplyCommonFlags(argc, argv, &config.common);
      rc != 0) {
    return rc;
  }
  std::printf(
      "Reproduces: Figure 4 'Experiment 4: Increasing the correlation "
      "dissimilarity of the original data and random noise'\n"
      "Setup: m = %zu, first %zu eigenvalues large, noise shares the data "
      "eigenvectors, total noise power fixed at m*sigma^2 (sigma = %.1f), "
      "n = %zu, %zu trials/point\n\n",
      config.num_attributes, config.num_principal, config.common.noise_stddev,
      config.common.num_records, config.common.num_trials);
  return randrecon::bench::ReportExperiment(
      randrecon::experiment::RunFigure4(config), "fig4_noise_similarity.csv",
      stopwatch, &config.common);
}
