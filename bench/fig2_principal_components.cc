// Regenerates Figure 2 (§7.3): RMSE of UDR / SF / PCA-DR / BE-DR as the
// number of principal components p grows from 2 to 100 at m = 100.
// Expected shape (paper): errors rise with p (correlation weakens); BE-DR
// best; SF/PCA-DR approach the NDR level at p = m while BE-DR converges
// to UDR.

#include "bench/bench_util.h"
#include "common/flags.h"
#include "experiment/figures.h"

int main(int argc, char** argv) {
  randrecon::Stopwatch stopwatch;
  randrecon::experiment::Figure2Config config;
  config.principal_counts = {2,  5,  10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  config.common.num_trials = 3;
  if (int rc = randrecon::bench::ApplyCommonFlags(argc, argv, &config.common);
      rc != 0) {
    return rc;
  }
  std::printf(
      "Reproduces: Figure 2 'Experiment 2: Increase the Number of Principal "
      "Components'\n"
      "Setup: m = %zu fixed, trace-pinned spectrum (Eq. 12), n = %zu, "
      "sigma = %.1f, %zu trials/point\n\n",
      config.num_attributes, config.common.num_records,
      config.common.noise_stddev, config.common.num_trials);
  return randrecon::bench::ReportExperiment(
      randrecon::experiment::RunFigure2(config),
      "fig2_principal_components.csv", stopwatch, &config.common);
}
