// Ablation A1 — principal-component selection strategy.
//
// The paper's §5.2.2 footnote lists three ways to pick p (fixed count,
// variance fraction, largest eigengap) and uses the gap rule in its
// experiments. This bench compares all three on a two-level spectrum
// whose true rank is known (p* = 10 of m = 100), reporting the chosen p
// and the resulting RMSE.

#include <cstdio>
#include <memory>
#include <vector>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/pca_dr.h"
#include "core/privacy_evaluator.h"
#include "data/synthetic.h"
#include "perturb/schemes.h"

using namespace randrecon;  // NOLINT(build/namespaces): bench binary.

namespace {

struct Variant {
  std::string label;
  core::PcaOptions options;
};

}  // namespace

int main() {
  Stopwatch stopwatch;
  const size_t m = 100, true_p = 10, n = 1000;
  const double sigma = 5.0;
  std::printf(
      "Ablation A1: PCA-DR component-selection strategies (true p* = %zu of "
      "m = %zu, n = %zu, sigma = %.1f)\n\n",
      true_p, m, n, sigma);

  stats::Rng rng(20050614);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = data::TwoLevelSpectrumWithTrace(m, true_p, 1.0, 100.0);
  auto synthetic = data::GenerateSpectrumDataset(spec, n, &rng);
  if (!synthetic.ok()) {
    std::fprintf(stderr, "%s\n", synthetic.status().ToString().c_str());
    return 1;
  }
  auto scheme = perturb::IndependentNoiseScheme::Gaussian(m, sigma);
  auto disguised = scheme.Disguise(synthetic.value().dataset, &rng);
  if (!disguised.ok()) {
    std::fprintf(stderr, "%s\n", disguised.status().ToString().c_str());
    return 1;
  }

  std::vector<Variant> variants;
  variants.push_back({"largest-gap (paper)", {}});
  for (size_t fixed : {2u, 5u, 10u, 20u, 50u, 100u}) {
    core::PcaOptions options;
    options.selection = core::PcSelection::kFixedCount;
    options.fixed_count = fixed;
    variants.push_back({"fixed p=" + std::to_string(fixed), options});
  }
  for (double fraction : {0.80, 0.90, 0.95, 0.99}) {
    core::PcaOptions options;
    options.selection = core::PcSelection::kVarianceFraction;
    options.variance_fraction = fraction;
    variants.push_back({"variance>=" + FormatDouble(fraction, 2), options});
  }

  std::printf("%s%s%s%s\n", PadRight("strategy", 22).c_str(),
              PadLeft("chosen p", 10).c_str(), PadLeft("rmse", 10).c_str(),
              PadLeft("kept var", 10).c_str());
  std::printf("%s\n", std::string(52, '-').c_str());
  for (const Variant& variant : variants) {
    core::PcaReconstructor pca(variant.options);
    core::PcaDiagnostics diagnostics;
    auto x_hat = pca.ReconstructWithDiagnostics(
        disguised.value().records(), scheme.noise_model(), &diagnostics);
    if (!x_hat.ok()) {
      std::fprintf(stderr, "%s: %s\n", variant.label.c_str(),
                   x_hat.status().ToString().c_str());
      return 1;
    }
    auto report = core::EvaluateReconstruction(
        variant.label, synthetic.value().dataset.records(), x_hat.value());
    std::printf("%s%s%s%s\n", PadRight(variant.label, 22).c_str(),
                PadLeft(std::to_string(diagnostics.num_components), 10).c_str(),
                PadLeft(FormatDouble(report.value().rmse, 4), 10).c_str(),
                PadLeft(FormatDouble(diagnostics.retained_variance_fraction, 3),
                        10)
                    .c_str());
  }
  std::printf(
      "\nReading: the gap rule should land on p = %zu and match the best "
      "fixed choice; too-small p loses signal, too-large p keeps noise "
      "(Theorem 5.2: noise MSE = sigma^2 p/m).\n",
      true_p);
  std::printf("elapsed: %.2fs\n\n", stopwatch.ElapsedSeconds());
  return 0;
}
