// Extension E1 — Partial Value Disclosure (§3 third bullet, §9 future
// work): "how partial knowledge of a disguised data set can compromise
// privacy."
//
// Sweeps the number of attributes the adversary knows out-of-band (0 to
// m−1) and reports the reconstruction RMSE on the remaining *unknown*
// attributes, for both the honest attacker ("est") and the §5.3 oracle
// mode ("oracle"). Expected shape: monotone decay in the oracle mode;
// the honest attacker tracks it until Σ_KK estimation noise starts to
// bite at large |K|.
//
// Flags: --num_records=N --sigma=S --trials=T --seed=S

#include "bench/bench_util.h"
#include "experiment/extensions.h"

int main(int argc, char** argv) {
  randrecon::Stopwatch stopwatch;
  randrecon::experiment::PartialDisclosureConfig config;
  config.common.num_records = 2000;
  config.common.num_trials = 3;
  if (int rc = randrecon::bench::ApplyCommonFlags(argc, argv, &config.common);
      rc != 0) {
    return rc;
  }
  std::printf(
      "Extension E1: partial value disclosure (m = %zu, p* = %zu, n = %zu, "
      "sigma = %.1f, %zu trials/point)\n"
      "RMSE is measured on the attributes the adversary does NOT know.\n\n",
      config.num_attributes, config.num_principal, config.common.num_records,
      config.common.noise_stddev, config.common.num_trials);
  const int rc = randrecon::bench::ReportExperiment(
      randrecon::experiment::RunPartialDisclosureSweep(config),
      "ext_partial_disclosure.csv", stopwatch, &config.common);
  if (rc == 0) {
    std::printf(
        "Reading: every attribute the adversary learns out-of-band drags "
        "down the privacy of the attributes they did NOT learn — the §3 "
        "'Alice has diabetes' scenario, quantified.\n\n");
  }
  return rc;
}
