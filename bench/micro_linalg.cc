// Micro-benchmark for the blocked/parallel kernel layer (PR 1): times the
// pre-PR naive loops against the kernels they were replaced by — dense
// matmul, sample covariance, symmetric Jacobi eigendecomposition — at
// m in {64, 256, 512}, and writes BENCH_linalg.json so every future PR
// has a perf trajectory to compare against.
//
// The "naive" implementations below are verbatim copies of the seed
// code paths: the i-k-j operator* loop, the column-pair SampleCovariance
// loop over bounds-checked operator(), and the Jacobi sweep with a full
// off-diagonal rescan per sweep. Keep them frozen — they are the
// baseline the acceptance numbers are measured against.
//
// Flags: --smoke=true     small sizes / single rep (CI)
//        --seed=N         RNG seed (default 7)
//        --json=PATH      output path (default BENCH_linalg.json)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "linalg/eigen.h"
#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "linalg/matrix_util.h"
#include "stats/moments.h"
#include "stats/rng.h"

namespace randrecon {
namespace bench {
namespace {

using linalg::Matrix;
using linalg::Vector;

// ---------------------------------------------------------------------------
// Frozen pre-PR baselines.
// ---------------------------------------------------------------------------

Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* a_row = a.row_data(i);
    double* out_row = out.row_data(i);
    for (size_t k = 0; k < a.cols(); ++k) {
      const double a_ik = a_row[k];
      if (a_ik == 0.0) continue;
      const double* b_row = b.row_data(k);
      for (size_t j = 0; j < b.cols(); ++j) {
        out_row[j] += a_ik * b_row[j];
      }
    }
  }
  return out;
}

Matrix NaiveSampleCovariance(const Matrix& data) {
  const size_t n = data.rows();
  const size_t m = data.cols();
  const Matrix centered = stats::CenterColumns(data);
  Matrix cov(m, m);
  const double denom = static_cast<double>(n);
  for (size_t a = 0; a < m; ++a) {
    for (size_t b = a; b < m; ++b) {
      double sum = 0.0;
      for (size_t i = 0; i < n; ++i) {
        sum += centered(i, a) * centered(i, b);
      }
      cov(a, b) = sum / denom;
      cov(b, a) = cov(a, b);
    }
  }
  return cov;
}

double NaiveOffDiagonalSquaredSum(const Matrix& a) {
  double sum = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      if (i != j) sum += a(i, j) * a(i, j);
    }
  }
  return sum;
}

Result<linalg::EigenDecomposition> NaiveSymmetricEigen(const Matrix& input) {
  const linalg::JacobiOptions options;
  const size_t m = input.rows();
  Matrix a = linalg::Symmetrize(input);
  Matrix q = Matrix::Identity(m);
  const double scale = linalg::FrobeniusNorm(a);
  const double threshold = options.tolerance * options.tolerance *
                           (scale > 0.0 ? scale * scale : 1.0);
  bool converged = NaiveOffDiagonalSquaredSum(a) <= threshold;
  for (int sweep = 0; sweep < options.max_sweeps && !converged; ++sweep) {
    for (size_t p = 0; p + 1 < m; ++p) {
      for (size_t r = p + 1; r < m; ++r) {
        const double apr = a(p, r);
        if (std::fabs(apr) < 1e-300) continue;
        const double app = a(p, p);
        const double arr = a(r, r);
        const double theta = (arr - app) / (2.0 * apr);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (size_t k = 0; k < m; ++k) {
          const double akp = a(k, p);
          const double akr = a(k, r);
          a(k, p) = c * akp - s * akr;
          a(k, r) = s * akp + c * akr;
        }
        for (size_t k = 0; k < m; ++k) {
          const double apk = a(p, k);
          const double ark = a(r, k);
          a(p, k) = c * apk - s * ark;
          a(r, k) = s * apk + c * ark;
        }
        for (size_t k = 0; k < m; ++k) {
          const double qkp = q(k, p);
          const double qkr = q(k, r);
          q(k, p) = c * qkp - s * qkr;
          q(k, r) = s * qkp + c * qkr;
        }
      }
    }
    converged = NaiveOffDiagonalSquaredSum(a) <= threshold;
  }
  if (!converged) {
    return Status::NumericalError("naive Jacobi did not converge");
  }
  Vector eigenvalues(m);
  for (size_t i = 0; i < m; ++i) eigenvalues[i] = a(i, i);
  std::sort(eigenvalues.begin(), eigenvalues.end(),
            [](double lhs, double rhs) { return lhs > rhs; });
  return linalg::EigenDecomposition{std::move(eigenvalues), std::move(q)};
}

// ---------------------------------------------------------------------------
// Harness.
// ---------------------------------------------------------------------------

Matrix RandomSpd(size_t m, stats::Rng* rng) {
  const Matrix g = rng->GaussianMatrix(m, m);
  Matrix a = linalg::Symmetrize(g * g.Transpose());
  for (size_t i = 0; i < m; ++i) a(i, i) += 1.0;
  a *= 1.0 / static_cast<double>(m);
  return a;
}

struct Comparison {
  double naive_seconds = 0.0;
  double kernel_seconds = 0.0;
  double speedup = 0.0;
  double max_abs_diff = 0.0;
};

double Median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Times the two implementations back-to-back within each rep and reports
/// median times plus the median of the per-rep speedup ratios. Pairing the
/// ratio within a rep makes it robust against frequency drift and noisy
/// neighbours: both sides of one ratio share the same machine state.
template <typename NaiveFn, typename KernelFn>
Comparison TimePair(int reps, const NaiveFn& naive_fn,
                    const KernelFn& kernel_fn) {
  std::vector<double> naive_samples, kernel_samples, ratios;
  for (int rep = 0; rep < reps; ++rep) {
    // Floor at 1 ns: a coarse clock reading 0 must not produce inf ratios.
    Stopwatch watch;
    naive_fn();
    naive_samples.push_back(std::max(watch.ElapsedSeconds(), 1e-9));
    watch.Restart();
    kernel_fn();
    kernel_samples.push_back(std::max(watch.ElapsedSeconds(), 1e-9));
    ratios.push_back(naive_samples.back() / kernel_samples.back());
  }
  Comparison comparison;
  comparison.naive_seconds = Median(std::move(naive_samples));
  comparison.kernel_seconds = Median(std::move(kernel_samples));
  comparison.speedup = Median(std::move(ratios));
  return comparison;
}

void Record(std::vector<BenchResult>* results, const std::string& op, size_t m,
            double work_records, const Comparison& comparison) {
  BenchResult naive;
  naive.name = op + "/" + std::to_string(m) + "/naive";
  naive.elapsed_seconds = comparison.naive_seconds;
  naive.records_per_second = work_records / comparison.naive_seconds;
  results->push_back(naive);

  BenchResult kernel;
  kernel.name = op + "/" + std::to_string(m) + "/kernel";
  kernel.elapsed_seconds = comparison.kernel_seconds;
  kernel.records_per_second = work_records / comparison.kernel_seconds;
  kernel.metrics.emplace_back("speedup", comparison.speedup);
  kernel.metrics.emplace_back("max_abs_diff", comparison.max_abs_diff);
  results->push_back(kernel);

  std::printf("%-14s m=%4zu  naive %9.4fs  kernel %9.4fs  speedup %6.2fx  "
              "maxdiff %.2e\n",
              op.c_str(), m, comparison.naive_seconds,
              comparison.kernel_seconds, comparison.speedup,
              comparison.max_abs_diff);
}

}  // namespace
}  // namespace bench
}  // namespace randrecon

int main(int argc, char** argv) {
  using namespace randrecon;
  using bench::BenchResult;
  using linalg::Matrix;

  Result<Flags> parsed = Flags::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 2;
  }
  const Flags& flags = parsed.value();
  const auto smoke = flags.GetBool("smoke", false);
  const auto seed = flags.GetInt("seed", 7);
  if (!smoke.ok() || !seed.ok()) {
    std::fprintf(stderr, "bad flag value\n");
    return 2;
  }
  const std::string json_path = flags.GetString("json", "BENCH_linalg.json");

  const std::vector<size_t> sizes =
      smoke.value() ? std::vector<size_t>{64, 128}
                    : std::vector<size_t>{64, 256, 512};
  stats::Rng rng(static_cast<uint64_t>(seed.value()));
  std::vector<BenchResult> results;

  for (size_t m : sizes) {
    const int reps = m <= 64 ? 50 : 9;

    // Dense matmul: C = A * B.
    {
      const Matrix a = rng.GaussianMatrix(m, m);
      const Matrix b = rng.GaussianMatrix(m, m);
      Matrix naive_out, kernel_out;
      bench::Comparison comparison = bench::TimePair(
          reps, [&] { naive_out = bench::NaiveMatMul(a, b); },
          [&] { kernel_out = linalg::kernels::MatMul(a, b); });
      comparison.max_abs_diff = linalg::MaxAbsDifference(naive_out, kernel_out);
      bench::Record(&results, "matmul", m, static_cast<double>(m), comparison);
    }

    // Sample covariance over n = 4m records.
    {
      const size_t n = 4 * m;
      const Matrix data = rng.GaussianMatrix(n, m);
      Matrix naive_cov, kernel_cov;
      bench::Comparison comparison = bench::TimePair(
          reps, [&] { naive_cov = bench::NaiveSampleCovariance(data); },
          [&] { kernel_cov = stats::SampleCovariance(data); });
      comparison.max_abs_diff = linalg::MaxAbsDifference(naive_cov, kernel_cov);
      bench::Record(&results, "covariance", m, static_cast<double>(n),
                    comparison);
    }

    // Symmetric eigendecomposition of a random SPD matrix.
    {
      const Matrix spd = bench::RandomSpd(m, &rng);
      const int eigen_reps = m <= 64 ? 5 : 1;
      Result<linalg::EigenDecomposition> naive_eig =
          Status::NumericalError("not run");
      Result<linalg::EigenDecomposition> kernel_eig =
          Status::NumericalError("not run");
      bench::Comparison comparison = bench::TimePair(
          eigen_reps, [&] { naive_eig = bench::NaiveSymmetricEigen(spd); },
          [&] { kernel_eig = linalg::SymmetricEigen(spd); });
      if (!naive_eig.ok() || !kernel_eig.ok()) {
        std::fprintf(stderr, "eigen failed at m=%zu\n", m);
        return 1;
      }
      double max_eval_diff = 0.0;
      for (size_t i = 0; i < m; ++i) {
        max_eval_diff = std::max(
            max_eval_diff, std::fabs(naive_eig.value().eigenvalues[i] -
                                     kernel_eig.value().eigenvalues[i]));
      }
      comparison.max_abs_diff = max_eval_diff;
      bench::Record(&results, "eigen", m, static_cast<double>(m), comparison);
    }
  }

  const bench::BenchConfig config = {
      {"smoke", smoke.value() ? "true" : "false"},
      {"seed", std::to_string(seed.value())},
      {"covariance_records", "4m"},
      {"threads_env", std::getenv("RANDRECON_THREADS")
                          ? std::getenv("RANDRECON_THREADS")
                          : "auto"},
  };
  const Status json_status =
      bench::WriteBenchJson(json_path, "micro_linalg", config, results);
  if (!json_status.ok()) {
    std::fprintf(stderr, "%s\n", json_status.ToString().c_str());
    return 1;
  }
  std::printf("bench json written to %s\n", json_path.c_str());
  return 0;
}
