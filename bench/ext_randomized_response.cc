// Extension E5 — the categorical randomization branch (§2): Warner's
// randomized response / MASK, and their privacy/utility trade-off.
//
// Sweeps the truth/keep probability θ and reports, at each θ:
//   * the error of the recovered aggregate (item and pair supports) —
//     the *utility* the miner gets;
//   * the adversary's per-record posterior P(true = 1 | reported = 1) —
//     the *privacy* each respondent keeps.
// Reading: exactly like the numeric schemes in the paper, pushing θ
// toward certainty buys utility with privacy and vice versa; θ = 0.5 is
// perfect privacy and zero utility.

#include <cstdio>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "perturb/randomized_response.h"
#include "stats/rng.h"

using namespace randrecon;  // NOLINT(build/namespaces): bench binary.

int main() {
  Stopwatch stopwatch;
  const size_t n = 100000;
  const double true_support_a = 0.4;
  const double conditional_b_given_a = 0.6;  // support_AB = 0.24.
  std::printf(
      "Extension E5: randomized response (Warner / MASK), n = %zu "
      "transactions, support(A) = %.2f, support(AB) = %.2f\n\n",
      n, true_support_a, true_support_a * conditional_b_given_a);
  std::printf("%s%s%s%s\n", PadLeft("theta", 8).c_str(),
              PadLeft("err(A)", 10).c_str(), PadLeft("err(AB)", 10).c_str(),
              PadLeft("posterior", 12).c_str());
  std::printf("%s\n", std::string(40, '-').c_str());

  for (double theta : {0.51, 0.6, 0.7, 0.8, 0.9, 0.99}) {
    stats::Rng rng(61000 + static_cast<uint64_t>(theta * 100));
    linalg::Matrix transactions(n, 2);
    for (size_t i = 0; i < n; ++i) {
      const bool a = rng.Uniform(0.0, 1.0) < true_support_a;
      const bool b = a && rng.Uniform(0.0, 1.0) < conditional_b_given_a;
      transactions(i, 0) = a ? 1.0 : 0.0;
      transactions(i, 1) = b ? 1.0 : 0.0;
    }
    auto mask = perturb::MaskScheme::Create(theta);
    auto warner = perturb::WarnerScheme::Create(theta);
    if (!mask.ok() || !warner.ok()) return 1;
    auto disguised = mask.value().Disguise(transactions, &rng);
    if (!disguised.ok()) return 1;

    auto support_a = mask.value().EstimateItemSupport(disguised.value(), 0);
    auto support_ab =
        mask.value().EstimatePairSupport(disguised.value(), 0, 1);
    if (!support_a.ok() || !support_ab.ok()) return 1;

    std::printf(
        "%s%s%s%s\n", PadLeft(FormatDouble(theta, 2), 8).c_str(),
        PadLeft(FormatDouble(
                    std::fabs(support_a.value() - true_support_a), 4),
                10)
            .c_str(),
        PadLeft(FormatDouble(std::fabs(support_ab.value() -
                                       true_support_a * conditional_b_given_a),
                             4),
                10)
            .c_str(),
        PadLeft(FormatDouble(
                    warner.value().PosteriorGivenReportedOne(true_support_a),
                    4),
                12)
            .c_str());
  }
  std::printf(
      "\nReading: 'posterior' is what a reported 1 reveals about the true "
      "bit (prior %.2f). Near theta = 0.5 records are nearly private and "
      "aggregates noisy; near theta = 1 aggregates are exact and records "
      "fully exposed — the categorical mirror of the paper's "
      "noise-vs-reconstruction trade-off.\n",
      true_support_a);
  std::printf("elapsed: %.2fs\n\n", stopwatch.ElapsedSeconds());
  return 0;
}
