// Micro-benchmark for the out-of-core attack pipeline (PR 2): streaming
// covariance + SF/PCA-DR reconstruction against the in-memory paths they
// replace, at n in {1e5, 1e6} records. Writes BENCH_pipeline.json so the
// perf/fidelity trajectory is checked in.
//
// What the numbers demonstrate:
//   * covariance */stream has max_abs_diff == 0 — the streamed moments
//     are BITWISE the in-memory stats::SampleCovariance;
//   * attack_{pca,sf} */stream has recon_max_abs_diff <= 1e-10 against
//     the in-memory reconstructors (acceptance criterion), measured by a
//     comparing sink that never materializes the streamed reconstruction;
//   * resident_bytes_stream vs resident_bytes_inmem — the pipeline's
//     working set is O(chunk_rows·m + m²) while the in-memory attack
//     holds multiple n x m matrices.
//
// PR 3 adds the generation side: MvnRecordSource + PerturbingRecordSource
// running on the scalar mt19937 Rng vs the Philox counter substrate
// (vectorized fills, fixed-block parallel generation), plus the full
// MVN -> perturb -> streaming-attack run in both modes. The exit gate
// also re-checks the substrate's streaming contract: the batch-mode
// disguised stream must be BITWISE identical across chunk sizes
// {1, 7, 64, n} x thread counts {1, 4}.
//
// Flags: --smoke=true     small sizes / single rep (CI)
//        --seed=N         RNG seed (default 7)
//        --chunk_rows=N   streamed chunk size (default 4096)
//        --json=PATH      output path (default BENCH_pipeline.json)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <memory>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "core/pca_dr.h"
#include "core/spectral_filtering.h"
#include "data/synthetic.h"
#include "linalg/kernels.h"
#include "linalg/matrix_util.h"
#include "perturb/schemes.h"
#include "pipeline/chunk_sink.h"
#include "pipeline/streaming_attack.h"
#include "stats/moments.h"
#include "stats/philox.h"
#include "stats/rng.h"
#include "stats/streaming_moments.h"

namespace randrecon {
namespace bench {
namespace {

using linalg::Matrix;

/// Tracks the max abs difference against a reference reconstruction
/// without storing the streamed chunks — the streaming side's working
/// set stays O(chunk·m) even while being verified.
class ComparingSink final : public pipeline::ChunkSink {
 public:
  explicit ComparingSink(const Matrix* reference) : reference_(reference) {}

  Status Consume(size_t row_offset, const Matrix& chunk,
                 size_t num_rows) override {
    for (size_t i = 0; i < num_rows; ++i) {
      const double* row = chunk.row_data(i);
      const double* reference_row = reference_->row_data(row_offset + i);
      for (size_t j = 0; j < chunk.cols(); ++j) {
        max_abs_diff_ = std::max(max_abs_diff_,
                                 std::fabs(row[j] - reference_row[j]));
      }
    }
    return Status::OK();
  }

  double max_abs_diff() const { return max_abs_diff_; }

 private:
  const Matrix* reference_;
  double max_abs_diff_ = 0.0;
};

double MedianOf(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Times `fn` `reps` times and returns the median (floored at 1 ns).
template <typename Fn>
double TimeMedian(int reps, const Fn& fn) {
  std::vector<double> samples;
  for (int rep = 0; rep < reps; ++rep) {
    Stopwatch watch;
    fn();
    samples.push_back(std::max(watch.ElapsedSeconds(), 1e-9));
  }
  return MedianOf(std::move(samples));
}

void Record(std::vector<BenchResult>* results, const std::string& name,
            double seconds, double records,
            std::vector<std::pair<std::string, double>> metrics = {}) {
  BenchResult result;
  result.name = name;
  result.elapsed_seconds = seconds;
  result.records_per_second = records / seconds;
  result.metrics = std::move(metrics);
  results->push_back(result);
  std::printf("%-26s %10.4fs  %12.0f rec/s", name.c_str(), seconds,
              result.records_per_second);
  for (const auto& metric : result.metrics) {
    std::printf("  %s=%.3g", metric.first.c_str(), metric.second);
  }
  std::printf("\n");
}

/// Builds the MVN -> perturb synthetic disguised stream used by the
/// generation benchmarks (population seed and noise seed derived from
/// the bench seed; both modes produce chunk-invariant streams).
pipeline::PerturbingRecordSource MakeDisguisedSource(
    const linalg::Vector& mean, const Matrix& covariance, size_t n,
    uint64_t seed, const perturb::IndependentNoiseScheme* scheme,
    pipeline::GeneratorMode mode,
    const ParallelOptions& parallel = ParallelOptions{}) {
  auto inner = pipeline::MvnRecordSource::Create(mean, covariance, n, seed,
                                                 mode);
  if (!inner.ok()) {
    std::fprintf(stderr, "%s\n", inner.status().ToString().c_str());
    std::exit(1);
  }
  pipeline::MvnRecordSource mvn = std::move(inner).value();
  mvn.set_parallel_options(parallel);  // inner generation, not just noise
  pipeline::PerturbingRecordSource source(
      std::make_unique<pipeline::MvnRecordSource>(std::move(mvn)), scheme,
      seed + 1, mode);
  source.set_parallel_options(parallel);
  return source;
}

/// Drains a source through `chunk`-row reads; returns records served.
size_t DrainSource(pipeline::RecordSource* source, size_t chunk, size_t m) {
  Matrix buffer(chunk, m);
  size_t total = 0;
  for (;;) {
    auto rows = source->NextChunk(&buffer);
    if (!rows.ok()) {
      std::fprintf(stderr, "%s\n", rows.status().ToString().c_str());
      std::exit(1);
    }
    if (rows.value() == 0) break;
    total += rows.value();
  }
  return total;
}

/// Collects the full stream into one matrix (for the bitwise-invariance
/// sweep, which runs at a reduced n).
Matrix CollectSource(pipeline::RecordSource* source, size_t chunk, size_t m) {
  Matrix buffer(chunk, m);
  std::vector<double> values;
  for (;;) {
    auto rows = source->NextChunk(&buffer);
    if (!rows.ok()) {
      std::fprintf(stderr, "%s\n", rows.status().ToString().c_str());
      std::exit(1);
    }
    if (rows.value() == 0) break;
    values.insert(values.end(), buffer.data(),
                  buffer.data() + rows.value() * m);
  }
  const size_t n = values.size() / m;
  return Matrix::FromRowMajor(n, m, std::move(values));
}

}  // namespace
}  // namespace bench
}  // namespace randrecon

int main(int argc, char** argv) {
  using namespace randrecon;
  using bench::BenchResult;
  using linalg::Matrix;

  Result<Flags> parsed = Flags::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 2;
  }
  const Flags& flags = parsed.value();
  const auto smoke = flags.GetBool("smoke", false);
  const auto seed = flags.GetInt("seed", 7);
  const auto chunk_rows = flags.GetInt("chunk_rows", 4096);
  if (!smoke.ok() || !seed.ok() || !chunk_rows.ok() ||
      chunk_rows.value() < 1) {
    std::fprintf(stderr, "bad flag value\n");
    return 2;
  }
  const std::string json_path = flags.GetString("json", "BENCH_pipeline.json");

  const size_t m = smoke.value() ? 16 : 32;
  const std::vector<size_t> sizes =
      smoke.value() ? std::vector<size_t>{2000, 10000}
                    : std::vector<size_t>{100000, 1000000};
  const size_t chunk = static_cast<size_t>(chunk_rows.value());
  const double sigma = 0.5;

  stats::Rng rng(static_cast<uint64_t>(seed.value()));
  std::vector<BenchResult> results;
  double worst_recon_diff = 0.0;
  bool generation_invariant = true;
  std::printf("substrate engine: %s\n",
              stats::philox_internal::ActiveEngine());

  // -------------------------------------------------------------------
  // Generation: the MVN -> perturb synthetic stream on the scalar Rng vs
  // the counter substrate, and the full streaming attack over each.
  // -------------------------------------------------------------------
  for (size_t n : sizes) {
    const int reps = n <= 100000 ? 3 : 1;
    const size_t m = smoke.value() ? 16 : 32;
    const double records = static_cast<double>(n);
    const linalg::Vector mean(m, 0.0);
    data::SyntheticDatasetSpec spec;
    spec.eigenvalues = data::TwoLevelSpectrum(m, m / 8, 8.0, 0.1);
    auto truth = data::GenerateSpectrumDataset(spec, 0, &rng);
    if (!truth.ok()) {
      std::fprintf(stderr, "%s\n", truth.status().ToString().c_str());
      return 1;
    }
    const Matrix& covariance = truth.value().covariance;
    const auto scheme = perturb::IndependentNoiseScheme::Gaussian(m, sigma);
    const perturb::NoiseModel& noise = scheme.noise_model();
    const uint64_t gen_seed = static_cast<uint64_t>(seed.value()) + n;
    std::printf("-- generation n=%zu m=%zu chunk=%zu\n", n, m, chunk);

    struct ModeCase {
      const char* label;
      pipeline::GeneratorMode mode;
    };
    const ModeCase modes[] = {
        {"seq", pipeline::GeneratorMode::kSequentialRng},
        {"batch", pipeline::GeneratorMode::kCounterBatch},
    };
    double gen_seconds[2] = {0.0, 0.0};
    double e2e_seconds[2] = {0.0, 0.0};
    for (int mode_index = 0; mode_index < 2; ++mode_index) {
      const ModeCase& mode_case = modes[mode_index];
      // Raw generation throughput: drain the disguised stream once.
      gen_seconds[mode_index] = bench::TimeMedian(reps, [&] {
        auto source = bench::MakeDisguisedSource(mean, covariance, n, gen_seed,
                                                 &scheme, mode_case.mode);
        if (bench::DrainSource(&source, chunk, m) != n) std::exit(1);
      });
      // End-to-end: two-pass streaming SF attack regenerating the stream
      // from the seed on every pass (the out-of-core story).
      pipeline::StreamingAttackOptions options;
      options.attack = pipeline::StreamingAttack::kSpectralFiltering;
      options.chunk_rows = chunk;
      e2e_seconds[mode_index] = bench::TimeMedian(reps, [&] {
        auto source = bench::MakeDisguisedSource(mean, covariance, n, gen_seed,
                                                 &scheme, mode_case.mode);
        pipeline::NullChunkSink sink;
        auto report = pipeline::StreamingAttackPipeline(options).Run(
            &source, noise, &sink);
        if (!report.ok()) {
          std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
          std::exit(1);
        }
      });
    }
    const std::string gen_stem = "generate_mvn_noise/" + std::to_string(n);
    bench::Record(&results, gen_stem + "/seq", gen_seconds[0], records);
    bench::Record(&results, gen_stem + "/batch", gen_seconds[1], records,
                  {{"speedup", gen_seconds[0] / gen_seconds[1]}});
    const std::string e2e_stem = "e2e_mvn_attack/" + std::to_string(n);
    bench::Record(&results, e2e_stem + "/seq", e2e_seconds[0], records);
    bench::Record(&results, e2e_stem + "/batch", e2e_seconds[1], records,
                  {{"speedup", e2e_seconds[0] / e2e_seconds[1]}});

    // Bitwise invariance of the batch-mode disguised stream across chunk
    // sizes {1, 7, 64, n} x threads {1, 4}, at a reduced record count so
    // the chunk=1 sweep stays cheap.
    const size_t n_check = std::min<size_t>(n, 20000);
    Matrix reference;
    double invariance_diff = 0.0;
    for (size_t sweep_chunk : {size_t{1}, size_t{7}, size_t{64}, n_check}) {
      for (int threads : {1, 4}) {
        ParallelOptions parallel;
        parallel.num_threads = threads;
        auto source = bench::MakeDisguisedSource(
            mean, covariance, n_check, gen_seed, &scheme,
            pipeline::GeneratorMode::kCounterBatch, parallel);
        Matrix streamed = bench::CollectSource(&source, sweep_chunk, m);
        if (reference.rows() == 0) {
          reference = std::move(streamed);
        } else {
          invariance_diff = std::max(
              invariance_diff, linalg::MaxAbsDifference(reference, streamed));
        }
      }
    }
    if (invariance_diff != 0.0) generation_invariant = false;
    BenchResult invariance;
    invariance.name = "generation_invariance/" + std::to_string(n);
    invariance.elapsed_seconds = 0.0;
    invariance.records_per_second = 0.0;
    invariance.metrics.emplace_back("bitwise_invariant",
                                    invariance_diff == 0.0 ? 1.0 : 0.0);
    invariance.metrics.emplace_back("max_abs_diff", invariance_diff);
    results.push_back(invariance);
    std::printf("%-26s chunk{1,7,64,%zu} x threads{1,4}: %s\n",
                invariance.name.c_str(), n_check,
                invariance_diff == 0.0 ? "bitwise identical" : "DIVERGED");
  }

  for (size_t n : sizes) {
    const int reps = n <= 100000 ? 5 : 1;
    const double records = static_cast<double>(n);

    // §7.1 correlated data + independent Gaussian disguise, materialized
    // once: the SAME bytes drive the in-memory baseline and (through
    // MatrixRecordSource) the streaming pipeline, so the comparison is
    // compute-for-compute.
    data::SyntheticDatasetSpec spec;
    spec.eigenvalues = data::TwoLevelSpectrum(m, m / 8, 8.0, 0.1);
    auto generated = data::GenerateSpectrumDataset(spec, n, &rng);
    if (!generated.ok()) {
      std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
      return 1;
    }
    const auto scheme = perturb::IndependentNoiseScheme::Gaussian(m, sigma);
    Matrix disguised = generated.value().dataset.records();
    disguised += scheme.GenerateNoise(n, &rng);
    const perturb::NoiseModel& noise = scheme.noise_model();
    std::printf("-- n=%zu m=%zu chunk=%zu\n", n, m, chunk);

    // ---- Covariance: streaming moments vs in-memory SampleCovariance.
    Matrix cov_inmem, cov_stream;
    const double cov_inmem_seconds = bench::TimeMedian(
        reps, [&] { cov_inmem = stats::SampleCovariance(disguised); });
    const double cov_stream_seconds = bench::TimeMedian(reps, [&] {
      stats::StreamingMoments moments(m);
      pipeline::MatrixRecordSource source(&disguised);
      Matrix buffer(chunk, m);
      for (;;) {
        const size_t rows = source.NextChunk(&buffer).value();
        if (rows == 0) break;
        moments.AccumulateMeans(buffer, rows);
      }
      moments.FinalizeMeans();
      (void)source.Reset();
      for (;;) {
        const size_t rows = source.NextChunk(&buffer).value();
        if (rows == 0) break;
        moments.AccumulateScatter(buffer, rows);
      }
      cov_stream = moments.FinalizeCovariance();
    });
    bench::Record(&results, "covariance/" + std::to_string(n) + "/inmem",
                  cov_inmem_seconds, records);
    bench::Record(&results, "covariance/" + std::to_string(n) + "/stream",
                  cov_stream_seconds, records,
                  {{"max_abs_diff",
                    linalg::MaxAbsDifference(cov_inmem, cov_stream)},
                   {"speedup", cov_inmem_seconds / cov_stream_seconds}});

    // ---- Full attacks: streaming pipeline vs in-memory reconstructors.
    struct AttackCase {
      const char* label;
      pipeline::StreamingAttack kind;
    };
    const AttackCase cases[] = {
        {"attack_pca", pipeline::StreamingAttack::kPcaDr},
        {"attack_sf", pipeline::StreamingAttack::kSpectralFiltering},
    };
    for (const AttackCase& attack_case : cases) {
      Matrix recon_inmem;
      const double inmem_seconds = bench::TimeMedian(reps, [&] {
        Result<Matrix> recon =
            attack_case.kind == pipeline::StreamingAttack::kPcaDr
                ? core::PcaReconstructor().Reconstruct(disguised, noise)
                : core::SpectralFilteringReconstructor().Reconstruct(disguised,
                                                                     noise);
        recon_inmem = std::move(recon).value();
      });

      pipeline::StreamingAttackOptions options;
      options.attack = attack_case.kind;
      options.chunk_rows = chunk;
      double recon_diff = 0.0;
      size_t num_components = 0;
      const double stream_seconds = bench::TimeMedian(reps, [&] {
        pipeline::MatrixRecordSource source(&disguised);
        bench::ComparingSink sink(&recon_inmem);
        auto report = pipeline::StreamingAttackPipeline(options).Run(
            &source, noise, &sink);
        if (!report.ok()) {
          std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
          std::exit(1);
        }
        recon_diff = sink.max_abs_diff();
        num_components = report.value().num_components;
      });
      worst_recon_diff = std::max(worst_recon_diff, recon_diff);

      // Working sets: the pipeline holds 4 chunk buffers (read, centered,
      // scores, reconstructed), the staging block, and O(m²) accumulators;
      // the in-memory attack holds the disguised matrix, its centered
      // copy, and the reconstruction, all n x m.
      const double stream_bytes =
          8.0 * (4.0 * static_cast<double>(chunk) * m +
                 static_cast<double>(linalg::kernels::kGramChunkRows) * m +
                 4.0 * static_cast<double>(m) * m);
      const double inmem_bytes = 8.0 * 3.0 * records * m;
      const std::string stem =
          std::string(attack_case.label) + "/" + std::to_string(n);
      bench::Record(&results, stem + "/inmem", inmem_seconds, records,
                    {{"resident_bytes_inmem", inmem_bytes}});
      bench::Record(&results, stem + "/stream", stream_seconds, records,
                    {{"recon_max_abs_diff", recon_diff},
                     {"num_components", static_cast<double>(num_components)},
                     {"resident_bytes_stream", stream_bytes},
                     {"speedup", inmem_seconds / stream_seconds}});
    }
  }

  if (worst_recon_diff > 1e-10) {
    std::fprintf(stderr,
                 "FAIL: streaming reconstruction diverged from in-memory "
                 "(max_abs_diff %.3g > 1e-10)\n",
                 worst_recon_diff);
    return 1;
  }
  if (!generation_invariant) {
    std::fprintf(stderr,
                 "FAIL: batch-mode disguised stream not bitwise invariant "
                 "across chunk sizes / thread counts\n");
    return 1;
  }

  const bench::BenchConfig config = {
      {"smoke", smoke.value() ? "true" : "false"},
      {"seed", std::to_string(seed.value())},
      {"m", std::to_string(m)},
      {"sigma", FormatDouble(sigma, 2)},
      {"chunk_rows", std::to_string(chunk)},
      {"threads_env", std::getenv("RANDRECON_THREADS")
                          ? std::getenv("RANDRECON_THREADS")
                          : "auto"},
  };
  const Status json_status =
      bench::WriteBenchJson(json_path, "micro_pipeline", config, results);
  if (!json_status.ok()) {
    std::fprintf(stderr, "%s\n", json_status.ToString().c_str());
    return 1;
  }
  std::printf("bench json written to %s\n", json_path.c_str());
  return 0;
}
