// Micro-benchmark for the out-of-core attack pipeline (PR 2): streaming
// covariance + SF/PCA-DR reconstruction against the in-memory paths they
// replace, at n in {1e5, 1e6} records. Writes BENCH_pipeline.json so the
// perf/fidelity trajectory is checked in.
//
// What the numbers demonstrate:
//   * covariance */stream has max_abs_diff == 0 — the streamed moments
//     are BITWISE the in-memory stats::SampleCovariance;
//   * attack_{pca,sf} */stream has recon_max_abs_diff <= 1e-10 against
//     the in-memory reconstructors (acceptance criterion), measured by a
//     comparing sink that never materializes the streamed reconstruction;
//   * resident_bytes_stream vs resident_bytes_inmem — the pipeline's
//     working set is O(chunk_rows·m + m²) while the in-memory attack
//     holds multiple n x m matrices.
//
// Flags: --smoke=true     small sizes / single rep (CI)
//        --seed=N         RNG seed (default 7)
//        --chunk_rows=N   streamed chunk size (default 4096)
//        --json=PATH      output path (default BENCH_pipeline.json)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "core/pca_dr.h"
#include "core/spectral_filtering.h"
#include "data/synthetic.h"
#include "linalg/kernels.h"
#include "linalg/matrix_util.h"
#include "perturb/schemes.h"
#include "pipeline/streaming_attack.h"
#include "stats/moments.h"
#include "stats/rng.h"
#include "stats/streaming_moments.h"

namespace randrecon {
namespace bench {
namespace {

using linalg::Matrix;

/// Tracks the max abs difference against a reference reconstruction
/// without storing the streamed chunks — the streaming side's working
/// set stays O(chunk·m) even while being verified.
class ComparingSink final : public pipeline::ChunkSink {
 public:
  explicit ComparingSink(const Matrix* reference) : reference_(reference) {}

  Status Consume(size_t row_offset, const Matrix& chunk,
                 size_t num_rows) override {
    for (size_t i = 0; i < num_rows; ++i) {
      const double* row = chunk.row_data(i);
      const double* reference_row = reference_->row_data(row_offset + i);
      for (size_t j = 0; j < chunk.cols(); ++j) {
        max_abs_diff_ = std::max(max_abs_diff_,
                                 std::fabs(row[j] - reference_row[j]));
      }
    }
    return Status::OK();
  }

  double max_abs_diff() const { return max_abs_diff_; }

 private:
  const Matrix* reference_;
  double max_abs_diff_ = 0.0;
};

double MedianOf(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Times `fn` `reps` times and returns the median (floored at 1 ns).
template <typename Fn>
double TimeMedian(int reps, const Fn& fn) {
  std::vector<double> samples;
  for (int rep = 0; rep < reps; ++rep) {
    Stopwatch watch;
    fn();
    samples.push_back(std::max(watch.ElapsedSeconds(), 1e-9));
  }
  return MedianOf(std::move(samples));
}

void Record(std::vector<BenchResult>* results, const std::string& name,
            double seconds, double records,
            std::vector<std::pair<std::string, double>> metrics = {}) {
  BenchResult result;
  result.name = name;
  result.elapsed_seconds = seconds;
  result.records_per_second = records / seconds;
  result.metrics = std::move(metrics);
  results->push_back(result);
  std::printf("%-26s %10.4fs  %12.0f rec/s", name.c_str(), seconds,
              result.records_per_second);
  for (const auto& metric : result.metrics) {
    std::printf("  %s=%.3g", metric.first.c_str(), metric.second);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace randrecon

int main(int argc, char** argv) {
  using namespace randrecon;
  using bench::BenchResult;
  using linalg::Matrix;

  Result<Flags> parsed = Flags::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 2;
  }
  const Flags& flags = parsed.value();
  const auto smoke = flags.GetBool("smoke", false);
  const auto seed = flags.GetInt("seed", 7);
  const auto chunk_rows = flags.GetInt("chunk_rows", 4096);
  if (!smoke.ok() || !seed.ok() || !chunk_rows.ok() ||
      chunk_rows.value() < 1) {
    std::fprintf(stderr, "bad flag value\n");
    return 2;
  }
  const std::string json_path = flags.GetString("json", "BENCH_pipeline.json");

  const size_t m = smoke.value() ? 16 : 32;
  const std::vector<size_t> sizes =
      smoke.value() ? std::vector<size_t>{2000, 10000}
                    : std::vector<size_t>{100000, 1000000};
  const size_t chunk = static_cast<size_t>(chunk_rows.value());
  const double sigma = 0.5;

  stats::Rng rng(static_cast<uint64_t>(seed.value()));
  std::vector<BenchResult> results;
  double worst_recon_diff = 0.0;

  for (size_t n : sizes) {
    const int reps = n <= 100000 ? 5 : 1;
    const double records = static_cast<double>(n);

    // §7.1 correlated data + independent Gaussian disguise, materialized
    // once: the SAME bytes drive the in-memory baseline and (through
    // MatrixRecordSource) the streaming pipeline, so the comparison is
    // compute-for-compute.
    data::SyntheticDatasetSpec spec;
    spec.eigenvalues = data::TwoLevelSpectrum(m, m / 8, 8.0, 0.1);
    auto generated = data::GenerateSpectrumDataset(spec, n, &rng);
    if (!generated.ok()) {
      std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
      return 1;
    }
    const auto scheme = perturb::IndependentNoiseScheme::Gaussian(m, sigma);
    Matrix disguised = generated.value().dataset.records();
    disguised += scheme.GenerateNoise(n, &rng);
    const perturb::NoiseModel& noise = scheme.noise_model();
    std::printf("-- n=%zu m=%zu chunk=%zu\n", n, m, chunk);

    // ---- Covariance: streaming moments vs in-memory SampleCovariance.
    Matrix cov_inmem, cov_stream;
    const double cov_inmem_seconds = bench::TimeMedian(
        reps, [&] { cov_inmem = stats::SampleCovariance(disguised); });
    const double cov_stream_seconds = bench::TimeMedian(reps, [&] {
      stats::StreamingMoments moments(m);
      pipeline::MatrixRecordSource source(&disguised);
      Matrix buffer(chunk, m);
      for (;;) {
        const size_t rows = source.NextChunk(&buffer).value();
        if (rows == 0) break;
        moments.AccumulateMeans(buffer, rows);
      }
      moments.FinalizeMeans();
      (void)source.Reset();
      for (;;) {
        const size_t rows = source.NextChunk(&buffer).value();
        if (rows == 0) break;
        moments.AccumulateScatter(buffer, rows);
      }
      cov_stream = moments.FinalizeCovariance();
    });
    bench::Record(&results, "covariance/" + std::to_string(n) + "/inmem",
                  cov_inmem_seconds, records);
    bench::Record(&results, "covariance/" + std::to_string(n) + "/stream",
                  cov_stream_seconds, records,
                  {{"max_abs_diff",
                    linalg::MaxAbsDifference(cov_inmem, cov_stream)},
                   {"speedup", cov_inmem_seconds / cov_stream_seconds}});

    // ---- Full attacks: streaming pipeline vs in-memory reconstructors.
    struct AttackCase {
      const char* label;
      pipeline::StreamingAttack kind;
    };
    const AttackCase cases[] = {
        {"attack_pca", pipeline::StreamingAttack::kPcaDr},
        {"attack_sf", pipeline::StreamingAttack::kSpectralFiltering},
    };
    for (const AttackCase& attack_case : cases) {
      Matrix recon_inmem;
      const double inmem_seconds = bench::TimeMedian(reps, [&] {
        Result<Matrix> recon =
            attack_case.kind == pipeline::StreamingAttack::kPcaDr
                ? core::PcaReconstructor().Reconstruct(disguised, noise)
                : core::SpectralFilteringReconstructor().Reconstruct(disguised,
                                                                     noise);
        recon_inmem = std::move(recon).value();
      });

      pipeline::StreamingAttackOptions options;
      options.attack = attack_case.kind;
      options.chunk_rows = chunk;
      double recon_diff = 0.0;
      size_t num_components = 0;
      const double stream_seconds = bench::TimeMedian(reps, [&] {
        pipeline::MatrixRecordSource source(&disguised);
        bench::ComparingSink sink(&recon_inmem);
        auto report = pipeline::StreamingAttackPipeline(options).Run(
            &source, noise, &sink);
        if (!report.ok()) {
          std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
          std::exit(1);
        }
        recon_diff = sink.max_abs_diff();
        num_components = report.value().num_components;
      });
      worst_recon_diff = std::max(worst_recon_diff, recon_diff);

      // Working sets: the pipeline holds 4 chunk buffers (read, centered,
      // scores, reconstructed), the staging block, and O(m²) accumulators;
      // the in-memory attack holds the disguised matrix, its centered
      // copy, and the reconstruction, all n x m.
      const double stream_bytes =
          8.0 * (4.0 * static_cast<double>(chunk) * m +
                 static_cast<double>(linalg::kernels::kGramChunkRows) * m +
                 4.0 * static_cast<double>(m) * m);
      const double inmem_bytes = 8.0 * 3.0 * records * m;
      const std::string stem =
          std::string(attack_case.label) + "/" + std::to_string(n);
      bench::Record(&results, stem + "/inmem", inmem_seconds, records,
                    {{"resident_bytes_inmem", inmem_bytes}});
      bench::Record(&results, stem + "/stream", stream_seconds, records,
                    {{"recon_max_abs_diff", recon_diff},
                     {"num_components", static_cast<double>(num_components)},
                     {"resident_bytes_stream", stream_bytes},
                     {"speedup", inmem_seconds / stream_seconds}});
    }
  }

  if (worst_recon_diff > 1e-10) {
    std::fprintf(stderr,
                 "FAIL: streaming reconstruction diverged from in-memory "
                 "(max_abs_diff %.3g > 1e-10)\n",
                 worst_recon_diff);
    return 1;
  }

  const bench::BenchConfig config = {
      {"smoke", smoke.value() ? "true" : "false"},
      {"seed", std::to_string(seed.value())},
      {"m", std::to_string(m)},
      {"sigma", FormatDouble(sigma, 2)},
      {"chunk_rows", std::to_string(chunk)},
      {"threads_env", std::getenv("RANDRECON_THREADS")
                          ? std::getenv("RANDRECON_THREADS")
                          : "auto"},
  };
  const Status json_status =
      bench::WriteBenchJson(json_path, "micro_pipeline", config, results);
  if (!json_status.ok()) {
    std::fprintf(stderr, "%s\n", json_status.ToString().c_str());
    return 1;
  }
  std::printf("bench json written to %s\n", json_path.c_str());
  return 0;
}
