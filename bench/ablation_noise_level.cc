// Ablation A3 — noise level sigma.
//
// Sweeps the perturbation magnitude and reports every attack's RMSE.
// Sanity anchors: NDR's RMSE equals sigma exactly (§4.1); the attack
// ordering BE-DR <= PCA-DR <= SF <= UDR <= NDR should hold at every
// sigma on strongly correlated data.

#include <cstdio>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/attack_suite.h"
#include "data/synthetic.h"
#include "perturb/schemes.h"

using namespace randrecon;  // NOLINT(build/namespaces): bench binary.

int main() {
  Stopwatch stopwatch;
  const size_t m = 50, n = 1000;
  std::printf(
      "Ablation A3: noise level sweep (m = %zu, p* = 5, n = %zu, "
      "per-attribute variance = 100)\n\n",
      m, n);
  std::printf("%s%s%s%s%s%s\n", PadLeft("sigma", 8).c_str(),
              PadLeft("NDR", 10).c_str(), PadLeft("UDR", 10).c_str(),
              PadLeft("SF", 10).c_str(), PadLeft("PCA-DR", 10).c_str(),
              PadLeft("BE-DR", 10).c_str());
  std::printf("%s\n", std::string(58, '-').c_str());

  for (double sigma : {1.0, 2.0, 5.0, 10.0, 20.0}) {
    stats::Rng rng(8000 + static_cast<uint64_t>(sigma * 10));
    data::SyntheticDatasetSpec spec;
    spec.eigenvalues = data::TwoLevelSpectrumWithTrace(m, 5, 1.0, 100.0);
    auto synthetic = data::GenerateSpectrumDataset(spec, n, &rng);
    if (!synthetic.ok()) return 1;
    auto scheme = perturb::IndependentNoiseScheme::Gaussian(m, sigma);
    auto disguised = scheme.Disguise(synthetic.value().dataset, &rng);
    if (!disguised.ok()) return 1;

    auto reports = core::AttackSuite::PaperSuite().RunAll(
        synthetic.value().dataset, disguised.value(), scheme.noise_model());
    if (!reports.ok()) {
      std::fprintf(stderr, "%s\n", reports.status().ToString().c_str());
      return 1;
    }
    double by_name[5] = {0, 0, 0, 0, 0};
    for (const auto& report : reports.value()) {
      if (report.attack_name == "NDR") by_name[0] = report.rmse;
      if (report.attack_name == "UDR") by_name[1] = report.rmse;
      if (report.attack_name == "SF") by_name[2] = report.rmse;
      if (report.attack_name == "PCA-DR") by_name[3] = report.rmse;
      if (report.attack_name == "BE-DR") by_name[4] = report.rmse;
    }
    std::printf("%s", PadLeft(FormatDouble(sigma, 1), 8).c_str());
    for (double rmse : by_name) {
      std::printf("%s", PadLeft(FormatDouble(rmse, 4), 10).c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "\nReading: NDR tracks sigma exactly; correlation-based attacks "
      "filter a growing absolute amount of noise as sigma rises, so the "
      "privacy 'bought' per unit of added noise keeps shrinking.\n");
  std::printf("elapsed: %.2fs\n\n", stopwatch.ElapsedSeconds());
  return 0;
}
