// Ablation A5 — UDR machinery: AS2000 grid resolution/iterations vs the
// closed-form Gaussian posterior.
//
// On the multivariate-normal data of the §7 experiments the closed form
// is the exact posterior mean; the AS2000 grid should converge to the
// same RMSE as the grid refines — this justifies the fast_udr default in
// the figure benches. Wall time per attribute is reported as well.

#include <cstdio>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/udr.h"
#include "data/synthetic.h"
#include "perturb/schemes.h"
#include "stats/moments.h"

using namespace randrecon;  // NOLINT(build/namespaces): bench binary.

int main() {
  Stopwatch total;
  const size_t m = 8, n = 2000;
  const double sigma = 5.0;
  std::printf(
      "Ablation A5: UDR estimator variants (m = %zu, n = %zu, sigma = %.1f, "
      "Gaussian marginals)\n\n",
      m, n, sigma);

  stats::Rng rng(20050614);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = data::TwoLevelSpectrumWithTrace(m, 2, 1.0, 100.0);
  auto synthetic = data::GenerateSpectrumDataset(spec, n, &rng);
  if (!synthetic.ok()) return 1;
  auto scheme = perturb::IndependentNoiseScheme::Gaussian(m, sigma);
  auto disguised = scheme.Disguise(synthetic.value().dataset, &rng);
  if (!disguised.ok()) return 1;
  const linalg::Matrix& x = synthetic.value().dataset.records();
  const linalg::Matrix& y = disguised.value().records();

  std::printf("%s%s%s\n", PadRight("estimator", 30).c_str(),
              PadLeft("rmse", 10).c_str(), PadLeft("ms/attr", 12).c_str());
  std::printf("%s\n", std::string(52, '-').c_str());

  auto run_variant = [&](const std::string& label,
                         const core::UdrOptions& options) -> int {
    core::UdrReconstructor udr(options);
    Stopwatch watch;
    auto x_hat = udr.Reconstruct(y, scheme.noise_model());
    const double elapsed_ms = watch.ElapsedMillis();
    if (!x_hat.ok()) {
      std::fprintf(stderr, "%s: %s\n", label.c_str(),
                   x_hat.status().ToString().c_str());
      return 1;
    }
    std::printf("%s%s%s\n", PadRight(label, 30).c_str(),
                PadLeft(FormatDouble(
                            stats::RootMeanSquareError(x, x_hat.value()), 4),
                        10)
                    .c_str(),
                PadLeft(FormatDouble(elapsed_ms / static_cast<double>(m), 2),
                        12)
                    .c_str());
    return 0;
  };

  core::UdrOptions closed;
  closed.estimator = core::UdrDensityEstimator::kGaussianClosedForm;
  if (run_variant("closed-form Gaussian", closed) != 0) return 1;

  for (size_t grid : {50u, 100u, 200u, 400u}) {
    core::UdrOptions options;
    options.estimator = core::UdrDensityEstimator::kAs2000Grid;
    options.density_options.grid_size = grid;
    if (run_variant("AS2000 grid=" + std::to_string(grid), options) != 0) {
      return 1;
    }
  }
  for (int iters : {1, 5, 25, 200}) {
    core::UdrOptions options;
    options.estimator = core::UdrDensityEstimator::kAs2000Grid;
    options.density_options.max_iterations = iters;
    if (run_variant("AS2000 iters=" + std::to_string(iters), options) != 0) {
      return 1;
    }
  }

  std::printf(
      "\nReading: the grid estimator converges to the closed form as the "
      "grid refines and the EM iterates — and costs orders of magnitude "
      "more per attribute, which is why the figure benches default to the "
      "closed form on these Gaussian datasets.\n");
  std::printf("elapsed: %.2fs\n\n", total.ElapsedSeconds());
  return 0;
}
