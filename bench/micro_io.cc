// Micro-benchmark for the storage backends (PR 4): CSV parsing vs the
// memory-mapped binary column store, over the exact ingest path the
// streaming attacks use (RecordSource chunks). Writes BENCH_io.json so
// the ingest trajectory is checked in.
//
// Methodology: a synthetic disguised population is exported to CSV
// (precision 10, a realistic report log), then converted to a column
// store — so BOTH files hold bitwise-identical f64 records (the CSV's
// rounding happened before the store was built) and any reader
// divergence is a bug, not precision. The benchmark then times:
//   * write_csv / write_store  — streaming each file out;
//   * ingest_csv / ingest_store — a full chunked drain of each source
//     (the store pays its lazy per-block checksum verification here);
//   * e2e_sf_csv / e2e_sf_store — the two-pass streaming SF attack,
//     whose wall clock at n >= 1e6 was dominated by CSV parsing;
//   * sharded ingest — the same records behind a shard manifest
//     (docs/FORMAT.md §7), drained as 1 vs 8 shards x threads {1, 4}
//     with block-parallel ReadRows, against the single-file sequential
//     drain at the same (large) chunk size.
//
// Exit gates (CI runs --smoke=true):
//   * every backend must stream bitwise-identical records (CSV, store,
//     sharded manifest), and the SF attack over the store AND over the
//     manifest must report bitwise-identical eigenvalues/mean/RMSE to
//     the CSV path (which also pins the columnar pass-1 fast path, used
//     by the store-backed sources, against the row-major CSV path);
//   * ingest_store must beat ingest_csv by >= 10x at n = 1e6
//     (>= 4x in smoke, where fixed overheads weigh more);
//   * the parallel sharded drain (8 shards, 4 threads) vs the
//     single-file sequential drain, gated ADAPTIVELY by the machine's
//     core count: on >= 4 cores it must be >= 1.4x faster (>= 1.1x in
//     smoke, where drains are sub-millisecond and noisy); on fewer
//     cores — including the 1-core dev VM, where no thread-parallel
//     speedup is physically possible — it must stay >= 0.85x, i.e.
//     sharding + manifest validation may cost at most ~15% over the
//     single file. Both views are recorded in the json either way;
//   * the disarmed fault-injection check (common/failpoint.h, one
//     relaxed atomic load guarding every block flush) must cost <= 2%
//     of a measured pure-store block flush;
//   * one metrics event (a Counter::Add + a Histogram::Record,
//     common/metrics.h — more than any single hot-path site pays) must
//     cost <= 2% of the same measured block flush, and the SF attack
//     with a trace capture active must report bitwise-identical numbers
//     (telemetry observes, never perturbs).
//
// Flags: --smoke=true     small sizes / fewer reps (CI)
//        --seed=N         RNG seed (default 7)
//        --chunk_rows=N   streamed chunk size (default 4096)
//        --json=PATH      output path (default BENCH_io.json)
//        --keep_files=true  leave the generated files on disk

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/failpoint.h"
#include "common/flags.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "data/column_store.h"
#include "data/shard_store.h"
#include "data/synthetic.h"
#include "linalg/eigen.h"
#include "perturb/schemes.h"
#include "pipeline/chunk_sink.h"
#include "pipeline/record_source.h"
#include "pipeline/source_factory.h"
#include "pipeline/streaming_attack.h"
#include "stats/random_orthogonal.h"
#include "stats/rng.h"

namespace randrecon {
namespace bench {
namespace {

using linalg::Matrix;

double MedianOf(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

template <typename Fn>
double TimeMedian(int reps, const Fn& fn) {
  std::vector<double> samples;
  for (int rep = 0; rep < reps; ++rep) {
    Stopwatch watch;
    fn();
    samples.push_back(std::max(watch.ElapsedSeconds(), 1e-9));
  }
  return MedianOf(std::move(samples));
}

void Record(std::vector<BenchResult>* results, const std::string& name,
            double seconds, double records,
            std::vector<std::pair<std::string, double>> metrics = {}) {
  BenchResult result;
  result.name = name;
  result.elapsed_seconds = seconds;
  result.records_per_second = records / seconds;
  result.metrics = std::move(metrics);
  results->push_back(result);
  std::printf("%-24s %10.4fs  %12.0f rec/s", name.c_str(), seconds,
              result.records_per_second);
  for (const auto& metric : result.metrics) {
    std::printf("  %s=%.4g", metric.first.c_str(), metric.second);
  }
  std::printf("\n");
}

double FileBytes(const std::string& path) {
  struct stat file_stat;
  return ::stat(path.c_str(), &file_stat) == 0
             ? static_cast<double>(file_stat.st_size)
             : 0.0;
}

[[noreturn]] void Die(const Status& status) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  std::exit(1);
}

/// Opens `path` through the sniffing factory (so the bench exercises the
/// CLI ingest path) and drains it in `chunk`-row reads. `threads` bounds
/// the store backends' block-parallel verify/gather (1 = sequential).
size_t DrainFile(const std::string& path, size_t chunk, size_t m,
                 int threads = 1) {
  pipeline::RecordSourceOptions options;
  options.store.parallel.num_threads = threads;
  auto opened = pipeline::OpenRecordSource(path, options);
  if (!opened.ok()) Die(opened.status());
  Matrix buffer(chunk, m);
  size_t total = 0;
  for (;;) {
    auto rows = opened.value().source->NextChunk(&buffer);
    if (!rows.ok()) Die(rows.status());
    if (rows.value() == 0) break;
    total += rows.value();
  }
  return total;
}

pipeline::StreamingAttackReport RunSfAttack(const std::string& path,
                                            const perturb::NoiseModel& noise,
                                            size_t chunk) {
  auto opened = pipeline::OpenRecordSource(path);
  if (!opened.ok()) Die(opened.status());
  pipeline::StreamingAttackOptions options;
  options.attack = pipeline::StreamingAttack::kSpectralFiltering;
  options.chunk_rows = chunk;
  pipeline::NullChunkSink sink;
  auto report = pipeline::StreamingAttackPipeline(options).Run(
      opened.value().source.get(), noise, &sink);
  if (!report.ok()) Die(report.status());
  return std::move(report).value();
}

/// memcmp-equality of two double vectors: IEEE operator== would wave
/// through a +0.0 vs -0.0 divergence and spuriously fail on NaNs.
bool BitwiseEqual(const linalg::Vector& a, const linalg::Vector& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// Bitwise equality of everything the SF attack derives from the stream.
bool ReportsIdentical(const pipeline::StreamingAttackReport& a,
                      const pipeline::StreamingAttackReport& b) {
  return a.num_records == b.num_records && a.num_components == b.num_components &&
         BitwiseEqual(a.eigenvalues, b.eigenvalues) &&
         BitwiseEqual(a.mean, b.mean) &&
         std::memcmp(&a.rmse_vs_disguised, &b.rmse_vs_disguised,
                     sizeof(double)) == 0;
}

}  // namespace
}  // namespace bench
}  // namespace randrecon

int main(int argc, char** argv) {
  using namespace randrecon;
  using bench::BenchResult;
  using linalg::Matrix;

  Result<Flags> parsed = Flags::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 2;
  }
  const Flags& flags = parsed.value();
  const auto smoke = flags.GetBool("smoke", false);
  const auto seed = flags.GetInt("seed", 7);
  const auto chunk_rows = flags.GetInt("chunk_rows", 4096);
  const auto keep_files = flags.GetBool("keep_files", false);
  const std::string json_path = flags.GetString("json", "BENCH_io.json");
  if (!smoke.ok() || !seed.ok() || !chunk_rows.ok() || chunk_rows.value() < 1 ||
      !keep_files.ok()) {
    std::fprintf(stderr, "bad flag value\n");
    return 2;
  }

  const size_t m = smoke.value() ? 8 : 16;
  const std::vector<size_t> sizes = smoke.value()
                                        ? std::vector<size_t>{50000}
                                        : std::vector<size_t>{100000, 1000000};
  const size_t chunk = static_cast<size_t>(chunk_rows.value());
  const double sigma = 0.5;
  const double min_speedup = smoke.value() ? 4.0 : 10.0;
  // Shard-parallel ingest can only beat the sequential single file when
  // the machine has cores to run shards on; on a single core the honest
  // measurable property is that sharding costs little (see header).
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const double min_sharded_speedup =
      cores >= 4 ? (smoke.value() ? 1.1 : 1.4) : 0.85;

  std::vector<BenchResult> results;
  double worst_speedup = 1e300;
  double worst_sharded_speedup = 1e300;
  bool all_bitwise = true;

  for (size_t n : sizes) {
    const int reps = n <= 100000 ? 5 : 3;
    const double records = static_cast<double>(n);
    const std::string csv_path = "micro_io_" + std::to_string(n) + ".csv";
    const std::string store_path =
        "micro_io_" + std::to_string(n) + pipeline::kColumnStoreExtension;
    std::printf("-- n=%zu m=%zu chunk=%zu\n", n, m, chunk);

    // §7.1-style correlated population, disguised — streamed, never held.
    stats::Rng rng(static_cast<uint64_t>(seed.value()) + n);
    data::SyntheticDatasetSpec spec;
    spec.eigenvalues = data::TwoLevelSpectrum(m, m / 4, 6.0, 0.2);
    const Matrix basis = stats::RandomOrthogonalMatrix(m, &rng);
    const Matrix covariance = linalg::ComposeFromEigen(spec.eigenvalues, basis);
    const auto scheme = perturb::IndependentNoiseScheme::Gaussian(m, sigma);
    const perturb::NoiseModel& noise = scheme.noise_model();
    std::vector<std::string> names;
    for (size_t j = 0; j < m; ++j) names.push_back("a" + std::to_string(j));

    auto make_stream = [&](uint64_t stream_seed) {
      auto mvn = pipeline::MvnRecordSource::Create(linalg::Vector(m, 0.0),
                                                   covariance, n, stream_seed);
      if (!mvn.ok()) bench::Die(mvn.status());
      return pipeline::PerturbingRecordSource(
          std::make_unique<pipeline::MvnRecordSource>(std::move(mvn).value()),
          &scheme, stream_seed + 1);
    };

    // ---- Write side: the same generated stream to each backend.
    const double csv_write_seconds = bench::TimeMedian(1, [&] {
      auto source = make_stream(static_cast<uint64_t>(seed.value()));
      auto created = pipeline::CsvChunkSink::Create(csv_path, names);
      if (!created.ok()) bench::Die(created.status());
      pipeline::CsvChunkSink sink = std::move(created).value();
      Matrix buffer(chunk, m);
      size_t offset = 0;
      for (;;) {
        auto rows = source.NextChunk(&buffer);
        if (!rows.ok()) bench::Die(rows.status());
        if (rows.value() == 0) break;
        Status consumed = sink.Consume(offset, buffer, rows.value());
        if (!consumed.ok()) bench::Die(consumed);
        offset += rows.value();
      }
      Status closed = sink.Close();
      if (!closed.ok()) bench::Die(closed);
    });
    // The store is built FROM the CSV, so both files hold the same
    // (precision-rounded) doubles and every later comparison is bitwise.
    const double store_write_seconds = bench::TimeMedian(1, [&] {
      auto opened = pipeline::CsvRecordSource::Open(csv_path);
      if (!opened.ok()) bench::Die(opened.status());
      pipeline::CsvRecordSource source = std::move(opened).value();
      auto created = pipeline::ColumnStoreChunkSink::Create(store_path, names);
      if (!created.ok()) bench::Die(created.status());
      pipeline::ColumnStoreChunkSink sink = std::move(created).value();
      Matrix buffer(chunk, m);
      size_t offset = 0;
      for (;;) {
        auto rows = source.NextChunk(&buffer);
        if (!rows.ok()) bench::Die(rows.status());
        if (rows.value() == 0) break;
        Status consumed = sink.Consume(offset, buffer, rows.value());
        if (!consumed.ok()) bench::Die(consumed);
        offset += rows.value();
      }
      Status closed = sink.Close();
      if (!closed.ok()) bench::Die(closed);
    });
    const double csv_bytes = bench::FileBytes(csv_path);
    const double store_bytes = bench::FileBytes(store_path);
    const std::string write_stem = "write/" + std::to_string(n);
    bench::Record(&results, write_stem + "/csv", csv_write_seconds, records,
                  {{"file_bytes", csv_bytes}});
    bench::Record(&results, write_stem + "/store_from_csv", store_write_seconds,
                  records, {{"file_bytes", store_bytes}});

    // ---- Ingest: full chunked drain, the attacks' pass-1 access pattern.
    auto drain_exactly = [&](const std::string& path) {
      const size_t drained = bench::DrainFile(path, chunk, m);
      if (drained != n) {
        std::fprintf(stderr, "FAIL: '%s' served %zu records, expected %zu\n",
                     path.c_str(), drained, n);
        std::exit(1);
      }
    };
    const double csv_ingest_seconds =
        bench::TimeMedian(reps, [&] { drain_exactly(csv_path); });
    const double store_ingest_seconds =
        bench::TimeMedian(reps, [&] { drain_exactly(store_path); });
    const double speedup = csv_ingest_seconds / store_ingest_seconds;
    worst_speedup = std::min(worst_speedup, speedup);
    const std::string ingest_stem = "ingest/" + std::to_string(n);
    bench::Record(&results, ingest_stem + "/csv", csv_ingest_seconds, records,
                  {{"bytes_per_second", csv_bytes / csv_ingest_seconds}});
    bench::Record(&results, ingest_stem + "/store", store_ingest_seconds,
                  records,
                  {{"bytes_per_second", store_bytes / store_ingest_seconds},
                   {"speedup", speedup}});

    // ---- Fidelity: both sources must serve bitwise-identical records.
    const Status bitwise =
        pipeline::VerifyStreamsBitwiseEqual(csv_path, store_path, chunk);
    all_bitwise = all_bitwise && bitwise.ok();
    BenchResult fidelity;
    fidelity.name = "bitwise/" + std::to_string(n);
    fidelity.metrics.emplace_back("streams_bitwise_equal",
                                  bitwise.ok() ? 1.0 : 0.0);
    results.push_back(fidelity);
    std::printf("%-24s %s\n", fidelity.name.c_str(),
                bitwise.ok() ? "csv and store streams bitwise identical"
                             : bitwise.ToString().c_str());

    // ---- End-to-end: the two-pass streaming SF attack over each backend.
    pipeline::StreamingAttackReport csv_report, store_report;
    const double e2e_csv_seconds = bench::TimeMedian(reps, [&] {
      csv_report = bench::RunSfAttack(csv_path, noise, chunk);
    });
    const double e2e_store_seconds = bench::TimeMedian(reps, [&] {
      store_report = bench::RunSfAttack(store_path, noise, chunk);
    });
    const bool reports_equal =
        bench::ReportsIdentical(csv_report, store_report);
    all_bitwise = all_bitwise && reports_equal;
    const std::string e2e_stem = "e2e_sf/" + std::to_string(n);
    bench::Record(&results, e2e_stem + "/csv", e2e_csv_seconds, records);
    bench::Record(&results, e2e_stem + "/store", e2e_store_seconds, records,
                  {{"speedup", e2e_csv_seconds / e2e_store_seconds},
                   {"attack_bitwise_equal", reports_equal ? 1.0 : 0.0}});
    if (!reports_equal) {
      std::printf("%-24s ATTACK REPORTS DIVERGED\n", e2e_stem.c_str());
    }

    // Telemetry determinism: the same attack under an active trace
    // capture must report bitwise-identical numbers (common/metrics.h:
    // instruments observe, they never perturb).
    trace::StartTracing();
    const pipeline::StreamingAttackReport traced_report =
        bench::RunSfAttack(store_path, noise, chunk);
    const size_t traced_spans = trace::StopTracing().size();
    const bool traced_equal =
        bench::ReportsIdentical(store_report, traced_report) &&
        traced_spans > 0;
    all_bitwise = all_bitwise && traced_equal;
    BenchResult traced;
    traced.name = e2e_stem + "/traced";
    traced.metrics.emplace_back("attack_bitwise_equal",
                                traced_equal ? 1.0 : 0.0);
    traced.metrics.emplace_back("spans", static_cast<double>(traced_spans));
    results.push_back(traced);
    std::printf("%-24s %s (%zu spans)\n", traced.name.c_str(),
                traced_equal ? "traced attack bitwise identical"
                             : "TRACED ATTACK DIVERGED",
                traced_spans);

    // ---- Sharded ingest: 1 vs 8 shards x threads {1, 4}. --------------
    // A large drain chunk (many blocks per ReadRows) is what gives the
    // block-parallel gather room to work; the single-file SEQUENTIAL
    // drain at the same chunk size is the baseline the gate compares
    // against (the paper-scale "one big file, one reader" status quo).
    const size_t kShards = 8;
    const size_t sharded_chunk = 65536;
    const std::string manifest1_path =
        "micro_io_" + std::to_string(n) + "_s1" + data::kShardManifestExtension;
    const std::string manifest8_path =
        "micro_io_" + std::to_string(n) + "_s8" + data::kShardManifestExtension;
    auto write_sharded = [&](const std::string& path, size_t shards) {
      auto source = pipeline::OpenRecordSource(store_path);
      if (!source.ok()) bench::Die(source.status());
      data::ShardedStoreOptions sharded_options;
      sharded_options.shard_rows = (n + shards - 1) / shards;
      auto created =
          pipeline::ShardedChunkSink::Create(path, names, sharded_options);
      if (!created.ok()) bench::Die(created.status());
      pipeline::ShardedChunkSink sink = std::move(created).value();
      Matrix buffer(chunk, m);
      size_t offset = 0;
      for (;;) {
        auto rows = source.value().source->NextChunk(&buffer);
        if (!rows.ok()) bench::Die(rows.status());
        if (rows.value() == 0) break;
        Status consumed = sink.Consume(offset, buffer, rows.value());
        if (!consumed.ok()) bench::Die(consumed);
        offset += rows.value();
      }
      Status closed = sink.Close();
      if (!closed.ok()) bench::Die(closed);
    };
    const double sharded_write_seconds =
        bench::TimeMedian(1, [&] { write_sharded(manifest8_path, kShards); });
    write_sharded(manifest1_path, 1);
    bench::Record(&results, write_stem + "/sharded_from_store",
                  sharded_write_seconds, records,
                  {{"shards", static_cast<double>(kShards)}});

    // Fidelity: the manifest serves the store's records bitwise.
    const Status sharded_bitwise =
        pipeline::VerifyStreamsBitwiseEqual(store_path, manifest8_path, chunk);
    all_bitwise = all_bitwise && sharded_bitwise.ok();
    if (!sharded_bitwise.ok()) {
      std::printf("sharded bitwise FAIL: %s\n",
                  sharded_bitwise.ToString().c_str());
    }

    const std::string sharded_stem = "ingest_sharded/" + std::to_string(n);
    const double single_seq_seconds = bench::TimeMedian(reps, [&] {
      if (bench::DrainFile(store_path, sharded_chunk, m, 1) != n) {
        std::fprintf(stderr, "FAIL: short drain of '%s'\n",
                     store_path.c_str());
        std::exit(1);
      }
    });
    bench::Record(&results, sharded_stem + "/file_threads1",
                  single_seq_seconds, records,
                  {{"bytes_per_second", store_bytes / single_seq_seconds}});
    for (const size_t shards : {size_t{1}, kShards}) {
      const std::string& manifest_path =
          shards == 1 ? manifest1_path : manifest8_path;
      for (const int threads : {1, 4}) {
        const double seconds = bench::TimeMedian(reps, [&] {
          if (bench::DrainFile(manifest_path, sharded_chunk, m, threads) !=
              n) {
            std::fprintf(stderr, "FAIL: short drain of '%s'\n",
                         manifest_path.c_str());
            std::exit(1);
          }
        });
        const double speedup = single_seq_seconds / seconds;
        if (shards == kShards && threads == 4) {
          worst_sharded_speedup = std::min(worst_sharded_speedup, speedup);
        }
        bench::Record(&results,
                      sharded_stem + "/shards" + std::to_string(shards) +
                          "_threads" + std::to_string(threads),
                      seconds, records,
                      {{"speedup_vs_file_seq", speedup}});
      }
    }

    // e2e: the SF attack over the manifest must report bitwise-identical
    // results to the store (and therefore to CSV, gated above).
    pipeline::StreamingAttackReport sharded_report;
    const double e2e_sharded_seconds = bench::TimeMedian(reps, [&] {
      sharded_report = bench::RunSfAttack(manifest8_path, noise, chunk);
    });
    const bool sharded_reports_equal =
        bench::ReportsIdentical(store_report, sharded_report);
    all_bitwise = all_bitwise && sharded_reports_equal;
    bench::Record(&results, e2e_stem + "/sharded", e2e_sharded_seconds,
                  records,
                  {{"attack_bitwise_equal", sharded_reports_equal ? 1.0 : 0.0}});
    if (!sharded_reports_equal) {
      std::printf("%-24s SHARDED ATTACK REPORT DIVERGED\n",
                  e2e_stem.c_str());
    }

    if (!keep_files.value()) {
      std::remove(csv_path.c_str());
      std::remove(store_path.c_str());
      data::RemoveShardedStoreFiles(manifest1_path);
      data::RemoveShardedStoreFiles(manifest8_path);
    }
  }

  // ---- Disarmed-failpoint overhead gate. ----------------------------
  // The ingest hot loop performs exactly one failpoint check per block
  // flush (store.block_write; seal/fsync/rename fire once per file).
  // Measure the disarmed check head-on and compare it against a
  // measured pure-store block flush: the check must stay <= 2% of a
  // flush, i.e. arming infrastructure that is off must be free.
  static Failpoint bench_probe("bench.probe");
  const size_t fp_checks = size_t{1} << 24;
  uint64_t armed_hits = 0;
  const double checks_seconds = bench::TimeMedian(5, [&] {
    for (size_t i = 0; i < fp_checks; ++i) {
      armed_hits += bench_probe.armed() ? 1 : 0;
    }
  });
  if (armed_hits != 0) {  // Impossible; also keeps the loop observable.
    std::fprintf(stderr, "FAIL: disarmed probe reported armed\n");
    return 1;
  }
  const size_t fp_rows = smoke.value() ? (size_t{1} << 15) : (size_t{1} << 17);
  stats::Rng fp_rng(static_cast<uint64_t>(seed.value()) + 99);
  const Matrix fp_records = fp_rng.GaussianMatrix(fp_rows, m);
  std::vector<std::string> fp_names;
  for (size_t j = 0; j < m; ++j) fp_names.push_back("a" + std::to_string(j));
  const std::string fp_path =
      std::string("micro_io_failpoint") + pipeline::kColumnStoreExtension;
  const double fp_write_seconds = bench::TimeMedian(3, [&] {
    auto created = pipeline::ColumnStoreChunkSink::Create(fp_path, fp_names);
    if (!created.ok()) bench::Die(created.status());
    pipeline::ColumnStoreChunkSink sink = std::move(created).value();
    Status consumed = sink.Consume(0, fp_records, fp_rows);
    if (!consumed.ok()) bench::Die(consumed);
    Status closed = sink.Close();
    if (!closed.ok()) bench::Die(closed);
  });
  if (!keep_files.value()) std::remove(fp_path.c_str());
  const double blocks = static_cast<double>(
      (fp_rows + data::kDefaultColumnStoreBlockRows - 1) /
      data::kDefaultColumnStoreBlockRows);
  const double per_check_seconds = checks_seconds / fp_checks;
  const double per_block_seconds = fp_write_seconds / blocks;
  const double overhead_percent =
      100.0 * per_check_seconds / per_block_seconds;
  bench::Record(&results, "failpoint/disarmed", checks_seconds, fp_checks,
                {{"check_ns", per_check_seconds * 1e9},
                 {"block_flush_us", per_block_seconds * 1e6},
                 {"ingest_overhead_percent", overhead_percent}});

  // ---- Metrics overhead gate (same discipline, same baseline). ------
  // A store block flush pays two Counter::Adds; a pipeline chunk pays
  // one Add plus one Histogram::Record. Measure the dearer combination
  // head-on against the measured block flush: one metrics event must
  // stay <= 2% of a flush, or the telemetry is not free enough to leave
  // on by default.
  static metrics::Counter bench_event_counter("bench.metrics_probe_events");
  static metrics::Histogram bench_event_nanos("bench.metrics_probe_nanos");
  const size_t metric_events = size_t{1} << 22;
  const double events_seconds = bench::TimeMedian(5, [&] {
    for (size_t i = 0; i < metric_events; ++i) {
      bench_event_counter.Add(1);
      bench_event_nanos.Record(i);
    }
  });
  // Counts are exact (and keep the loop observable): 5 timed reps.
  if (bench_event_counter.Value() != 5 * metric_events) {
    std::fprintf(stderr, "FAIL: metrics probe counter lost events\n");
    return 1;
  }
  const double per_event_seconds = events_seconds / metric_events;
  const double metrics_overhead_percent =
      100.0 * per_event_seconds / per_block_seconds;
  bench::Record(&results, "metrics/event", events_seconds, metric_events,
                {{"event_ns", per_event_seconds * 1e9},
                 {"block_flush_us", per_block_seconds * 1e6},
                 {"ingest_overhead_percent", metrics_overhead_percent}});

  if (!all_bitwise) {
    std::fprintf(stderr,
                 "FAIL: column-store stream or attack output diverged from "
                 "the CSV path\n");
    return 1;
  }
  if (overhead_percent > 2.0) {
    std::fprintf(stderr,
                 "FAIL: disarmed failpoint check costs %.3f%% of a block "
                 "flush (gate: 2%%)\n",
                 overhead_percent);
    return 1;
  }
  if (metrics_overhead_percent > 2.0) {
    std::fprintf(stderr,
                 "FAIL: one metrics event costs %.3f%% of a block flush "
                 "(gate: 2%%)\n",
                 metrics_overhead_percent);
    return 1;
  }
  if (worst_speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: store ingest speedup %.2fx below the %.0fx gate\n",
                 worst_speedup, min_speedup);
    return 1;
  }
  if (worst_sharded_speedup < min_sharded_speedup) {
    std::fprintf(stderr,
                 "FAIL: parallel sharded ingest speedup %.2fx below the "
                 "%.2fx gate\n",
                 worst_sharded_speedup, min_sharded_speedup);
    return 1;
  }

  const bench::BenchConfig config = {
      {"smoke", smoke.value() ? "true" : "false"},
      {"seed", std::to_string(seed.value())},
      {"m", std::to_string(m)},
      {"sigma", FormatDouble(sigma, 2)},
      {"chunk_rows", std::to_string(chunk)},
      {"block_rows", std::to_string(data::kDefaultColumnStoreBlockRows)},
      {"min_speedup_gate", FormatDouble(min_speedup, 1)},
      {"min_sharded_speedup_gate", FormatDouble(min_sharded_speedup, 2)},
      {"failpoint_overhead_gate_percent", "2"},
      {"metrics_overhead_gate_percent", "2"},
      {"cores", std::to_string(cores)},
  };
  const Status json_status =
      bench::WriteBenchJson(json_path, "micro_io", config, results);
  if (!json_status.ok()) {
    std::fprintf(stderr, "%s\n", json_status.ToString().c_str());
    return 1;
  }
  std::printf("bench json written to %s\n", json_path.c_str());
  return 0;
}
