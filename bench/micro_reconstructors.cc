// Google-benchmark microbenchmarks for the reconstruction attacks
// themselves: cost per full n x m reconstruction, on the same disguised
// dataset per dimension so numbers are directly comparable across
// schemes.

#include <benchmark/benchmark.h>

#include "core/be_dr.h"
#include "core/ndr.h"
#include "core/pca_dr.h"
#include "core/spectral_filtering.h"
#include "core/udr.h"
#include "data/synthetic.h"
#include "perturb/schemes.h"

namespace randrecon {
namespace {

struct Fixture {
  linalg::Matrix disguised;
  perturb::NoiseModel noise;
};

Fixture MakeFixture(size_t m) {
  stats::Rng rng(42 + m);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = data::TwoLevelSpectrumWithTrace(m, 5, 1.0, 100.0);
  auto synthetic = data::GenerateSpectrumDataset(spec, 1000, &rng);
  auto scheme = perturb::IndependentNoiseScheme::Gaussian(m, 5.0);
  auto disguised = scheme.Disguise(synthetic.value().dataset, &rng);
  return {disguised.value().records(), scheme.noise_model()};
}

void BM_NdrReconstruct(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<size_t>(state.range(0)));
  core::NdrReconstructor attack;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack.Reconstruct(f.disguised, f.noise));
  }
}
BENCHMARK(BM_NdrReconstruct)->Arg(20)->Arg(100);

void BM_UdrClosedFormReconstruct(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<size_t>(state.range(0)));
  core::UdrOptions options;
  options.estimator = core::UdrDensityEstimator::kGaussianClosedForm;
  core::UdrReconstructor attack(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack.Reconstruct(f.disguised, f.noise));
  }
}
BENCHMARK(BM_UdrClosedFormReconstruct)->Arg(20)->Arg(100);

void BM_UdrAs2000Reconstruct(benchmark::State& state) {
  // The expensive path: EM density reconstruction per attribute. Kept to
  // m = 8 so the default benchmark time budget stays sane.
  Fixture f = MakeFixture(8);
  core::UdrOptions options;
  options.estimator = core::UdrDensityEstimator::kAs2000Grid;
  core::UdrReconstructor attack(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack.Reconstruct(f.disguised, f.noise));
  }
}
BENCHMARK(BM_UdrAs2000Reconstruct);

void BM_SfReconstruct(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<size_t>(state.range(0)));
  core::SpectralFilteringReconstructor attack;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack.Reconstruct(f.disguised, f.noise));
  }
}
BENCHMARK(BM_SfReconstruct)->Arg(20)->Arg(100);

void BM_PcaDrReconstruct(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<size_t>(state.range(0)));
  core::PcaReconstructor attack;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack.Reconstruct(f.disguised, f.noise));
  }
}
BENCHMARK(BM_PcaDrReconstruct)->Arg(20)->Arg(100);

void BM_BeDrReconstruct(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<size_t>(state.range(0)));
  core::BayesEstimateReconstructor attack;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack.Reconstruct(f.disguised, f.noise));
  }
}
BENCHMARK(BM_BeDrReconstruct)->Arg(20)->Arg(100);

void BM_BeDrLiteralFormula(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<size_t>(state.range(0)));
  core::BeDrOptions options;
  options.use_literal_formula = true;
  options.moment_options.eigen_floor = 1e-6;
  core::BayesEstimateReconstructor attack(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack.Reconstruct(f.disguised, f.noise));
  }
}
BENCHMARK(BM_BeDrLiteralFormula)->Arg(20)->Arg(100);

}  // namespace
}  // namespace randrecon

BENCHMARK_MAIN();
