// Extension E3 — the *utility* side of randomization: the Agrawal-
// Srikant density reconstruction (our stats::ReconstructDensity) is what
// makes randomized data minable at all. This bench measures how well the
// original marginal density is recovered from disguised samples as the
// sample count and the noise level vary, for Gaussian and Laplace noise
// and for a bimodal original.
//
// Reported metric: L1 distance between the reconstructed density and the
// true density on the reconstruction grid (0 = perfect, 2 = disjoint).

#include <cmath>
#include <cstdio>
#include <memory>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "stats/density_reconstruction.h"
#include "stats/distribution.h"
#include "stats/rng.h"

using namespace randrecon;  // NOLINT(build/namespaces): bench binary.

namespace {

double L1AgainstTruth(const stats::GridDensity& estimate,
                      const stats::ScalarDistribution& truth) {
  double l1 = 0.0;
  for (size_t k = 0; k < estimate.points.size(); ++k) {
    l1 += std::fabs(estimate.density[k] - truth.Pdf(estimate.points[k])) *
          estimate.step;
  }
  return l1;
}

std::unique_ptr<stats::ScalarDistribution> Bimodal() {
  std::vector<std::unique_ptr<stats::ScalarDistribution>> parts;
  parts.push_back(std::make_unique<stats::NormalDistribution>(-6.0, 1.5));
  parts.push_back(std::make_unique<stats::NormalDistribution>(6.0, 1.5));
  return std::move(stats::MixtureDistribution::Create(std::move(parts),
                                                      {1.0, 1.0}))
      .value()
      .Clone();
}

int RunCase(const char* label, const stats::ScalarDistribution& original,
            const stats::ScalarDistribution& noise) {
  std::printf("%s, noise %s\n", label, noise.ToString().c_str());
  std::printf("%s%s\n", PadLeft("n", 10).c_str(), PadLeft("L1 err", 10).c_str());
  for (size_t n : {200u, 1000u, 5000u, 20000u}) {
    stats::Rng rng(31337 + n);
    linalg::Vector disguised(n);
    for (double& y : disguised) {
      y = original.Sample(&rng) + noise.Sample(&rng);
    }
    auto density = stats::ReconstructDensity(disguised, noise);
    if (!density.ok()) {
      std::fprintf(stderr, "%s\n", density.status().ToString().c_str());
      return 1;
    }
    std::printf("%s%s\n", PadLeft(std::to_string(n), 10).c_str(),
                PadLeft(FormatDouble(L1AgainstTruth(density.value(), original),
                                     4),
                        10)
                    .c_str());
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main() {
  Stopwatch stopwatch;
  std::printf(
      "Extension E3: AS2000 distribution recovery quality (the data-mining "
      "utility that randomization promises)\n\n");

  const stats::NormalDistribution normal_original(0.0, 4.0);
  const stats::NormalDistribution gaussian_noise(0.0, 4.0);
  const stats::LaplaceDistribution laplace_noise(0.0, 4.0 / std::sqrt(2.0));
  const auto bimodal = Bimodal();

  if (RunCase("Original N(0, 16)", normal_original, gaussian_noise) != 0) {
    return 1;
  }
  if (RunCase("Original N(0, 16)", normal_original, laplace_noise) != 0) {
    return 1;
  }
  if (RunCase("Original bimodal mixture", *bimodal, gaussian_noise) != 0) {
    return 1;
  }
  std::printf(
      "Reading: the aggregate distribution converges with n for every "
      "noise family — exactly why randomization is useful for mining — "
      "while the figure benches show the *individual records* leaking. "
      "Both halves of the paper's trade-off, measured.\n");
  std::printf("elapsed: %.2fs\n\n", stopwatch.ElapsedSeconds());
  return 0;
}
