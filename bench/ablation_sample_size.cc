// Ablation A2 — sample size n.
//
// Theorem 5.1's covariance estimate is exact only as n -> infinity; this
// bench sweeps n and reports (a) the max-abs error of the estimated
// original covariance and (b) the honest-attacker RMSE of PCA-DR and
// BE-DR, showing both converge toward the oracle-covariance attack.

#include <cstdio>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/be_dr.h"
#include "core/covariance_estimation.h"
#include "core/pca_dr.h"
#include "core/privacy_evaluator.h"
#include "data/synthetic.h"
#include "linalg/matrix_util.h"
#include "perturb/schemes.h"
#include "stats/moments.h"

using namespace randrecon;  // NOLINT(build/namespaces): bench binary.

int main() {
  Stopwatch stopwatch;
  const size_t m = 50;
  const double sigma = 5.0;
  std::printf(
      "Ablation A2: sample size vs Theorem 5.1 estimation quality "
      "(m = %zu, p* = 5, sigma = %.1f)\n\n",
      m, sigma);
  std::printf("%s%s%s%s%s\n", PadLeft("n", 8).c_str(),
              PadLeft("cov_err", 12).c_str(), PadLeft("pca_rmse", 12).c_str(),
              PadLeft("be_rmse", 12).c_str(),
              PadLeft("be_oracle", 12).c_str());
  std::printf("%s\n", std::string(56, '-').c_str());

  for (size_t n : {100u, 200u, 500u, 1000u, 2000u, 5000u, 10000u}) {
    stats::Rng rng(7000 + n);
    data::SyntheticDatasetSpec spec;
    spec.eigenvalues = data::TwoLevelSpectrumWithTrace(m, 5, 1.0, 100.0);
    auto synthetic = data::GenerateSpectrumDataset(spec, n, &rng);
    if (!synthetic.ok()) return 1;
    auto scheme = perturb::IndependentNoiseScheme::Gaussian(m, sigma);
    auto disguised = scheme.Disguise(synthetic.value().dataset, &rng);
    if (!disguised.ok()) return 1;
    const linalg::Matrix& x = synthetic.value().dataset.records();
    const linalg::Matrix& y = disguised.value().records();

    auto moments = core::EstimateOriginalMoments(y, scheme.noise_model());
    if (!moments.ok()) return 1;
    const double cov_err = linalg::MaxAbsDifference(
        moments.value().covariance, synthetic.value().covariance);

    auto pca_hat = core::PcaReconstructor().Reconstruct(y, scheme.noise_model());
    auto be_hat =
        core::BayesEstimateReconstructor().Reconstruct(y, scheme.noise_model());
    core::BeDrOptions oracle;
    oracle.oracle_covariance = stats::SampleCovariance(x);
    oracle.oracle_mean = stats::ColumnMeans(x);
    auto be_oracle_hat = core::BayesEstimateReconstructor(oracle).Reconstruct(
        y, scheme.noise_model());
    if (!pca_hat.ok() || !be_hat.ok() || !be_oracle_hat.ok()) return 1;

    std::printf(
        "%s%s%s%s%s\n", PadLeft(std::to_string(n), 8).c_str(),
        PadLeft(FormatDouble(cov_err, 3), 12).c_str(),
        PadLeft(FormatDouble(stats::RootMeanSquareError(x, pca_hat.value()), 4),
                12)
            .c_str(),
        PadLeft(FormatDouble(stats::RootMeanSquareError(x, be_hat.value()), 4),
                12)
            .c_str(),
        PadLeft(FormatDouble(
                    stats::RootMeanSquareError(x, be_oracle_hat.value()), 4),
                12)
            .c_str());
  }
  std::printf(
      "\nReading: cov_err shrinks ~1/sqrt(n); the honest-attacker columns "
      "approach the be_oracle column, confirming the paper's 'only minor "
      "differences' remark (S5.3).\n");
  std::printf("elapsed: %.2fs\n\n", stopwatch.ElapsedSeconds());
  return 0;
}
