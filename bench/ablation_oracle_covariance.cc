// Ablation A4 — oracle vs estimated covariance (the §5.3 simplification).
//
// The paper analyzes (and plots) PCA-DR/BE-DR with the covariance taken
// from the original data, noting "only minor differences" vs the
// Theorem 5.1 estimate. This bench quantifies that difference for both
// schemes, and shows the bulk-eigenvalue-averaging estimation refinement
// recovering most of the gap for BE-DR.

#include <cstdio>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/be_dr.h"
#include "core/pca_dr.h"
#include "core/privacy_evaluator.h"
#include "data/synthetic.h"
#include "perturb/schemes.h"
#include "stats/moments.h"

using namespace randrecon;  // NOLINT(build/namespaces): bench binary.

namespace {

double Rmse(const linalg::Matrix& x, const Result<linalg::Matrix>& x_hat) {
  if (!x_hat.ok()) return -1.0;
  return stats::RootMeanSquareError(x, x_hat.value());
}

}  // namespace

int main() {
  Stopwatch stopwatch;
  const double sigma = 5.0;
  std::printf(
      "Ablation A4: oracle (S5.3) vs honest-attacker moments "
      "(p* = 5, sigma = %.1f, per-attribute variance = 100)\n\n",
      sigma);
  std::printf("%s%s%s%s%s%s%s\n", PadLeft("m", 6).c_str(),
              PadLeft("n", 8).c_str(), PadLeft("pca_oracle", 12).c_str(),
              PadLeft("pca_est", 12).c_str(), PadLeft("be_oracle", 12).c_str(),
              PadLeft("be_est", 12).c_str(), PadLeft("be_bulk", 12).c_str());
  std::printf("%s\n", std::string(74, '-').c_str());

  for (size_t m : {20u, 50u, 100u}) {
    for (size_t n : {500u, 1000u, 4000u}) {
      stats::Rng rng(9000 + m * 17 + n);
      data::SyntheticDatasetSpec spec;
      spec.eigenvalues = data::TwoLevelSpectrumWithTrace(m, 5, 1.0, 100.0);
      auto synthetic = data::GenerateSpectrumDataset(spec, n, &rng);
      if (!synthetic.ok()) return 1;
      auto scheme = perturb::IndependentNoiseScheme::Gaussian(m, sigma);
      auto disguised = scheme.Disguise(synthetic.value().dataset, &rng);
      if (!disguised.ok()) return 1;
      const linalg::Matrix& x = synthetic.value().dataset.records();
      const linalg::Matrix& y = disguised.value().records();
      const perturb::NoiseModel& noise = scheme.noise_model();
      const linalg::Matrix original_cov = stats::SampleCovariance(x);

      core::PcaOptions pca_oracle;
      pca_oracle.oracle_covariance = original_cov;
      core::BeDrOptions be_oracle;
      be_oracle.oracle_covariance = original_cov;
      be_oracle.oracle_mean = stats::ColumnMeans(x);
      core::BeDrOptions be_bulk;
      be_bulk.moment_options.bulk_average_nonprincipal = true;

      std::printf(
          "%s%s%s%s%s%s%s\n", PadLeft(std::to_string(m), 6).c_str(),
          PadLeft(std::to_string(n), 8).c_str(),
          PadLeft(FormatDouble(Rmse(x, core::PcaReconstructor(pca_oracle)
                                           .Reconstruct(y, noise)),
                               4),
                  12)
              .c_str(),
          PadLeft(FormatDouble(
                      Rmse(x, core::PcaReconstructor().Reconstruct(y, noise)),
                      4),
                  12)
              .c_str(),
          PadLeft(FormatDouble(Rmse(x, core::BayesEstimateReconstructor(
                                          be_oracle)
                                           .Reconstruct(y, noise)),
                               4),
                  12)
              .c_str(),
          PadLeft(FormatDouble(Rmse(x, core::BayesEstimateReconstructor()
                                           .Reconstruct(y, noise)),
                               4),
                  12)
              .c_str(),
          PadLeft(FormatDouble(Rmse(x, core::BayesEstimateReconstructor(
                                          be_bulk)
                                           .Reconstruct(y, noise)),
                               4),
                  12)
              .c_str());
    }
  }
  std::printf(
      "\nReading: oracle and estimated PCA-DR stay close at practical n; "
      "BE-DR is more sensitive to eigenvalue-estimation noise (be_est vs "
      "be_oracle), and bulk averaging (be_bulk) recovers most of the "
      "gap. With the oracle both share, BE-DR <= PCA-DR everywhere — the "
      "paper's consistent ordering.\n");
  std::printf("elapsed: %.2fs\n\n", stopwatch.ElapsedSeconds());
  return 0;
}
