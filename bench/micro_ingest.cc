// Micro-benchmark for the overload-safe concurrent ingest core (PR 8):
// multi-producer Offer → bounded queue → rolling sharded store, over
// the exact path the continuous-ingest attack service will use. Writes
// BENCH_ingest.json so the ingest-latency trajectory is checked in.
//
// Methodology: P producer threads each stream batches from their own
// substreamed generator (one independent seed per producer, derived
// Philox-style from the root seed, so the offered rows are reproducible
// for any interleaving and any producer count). Two regimes:
//   * steady   — a roomy queue and a generous admission budget. Nothing
//     may shed; p50/p99 append latency is read from the
//     ingest.append_nanos histogram and recorded.
//   * overload — a tiny queue and a near-zero admission budget against
//     the same producers. Load MUST shed (that is the regime), every
//     rejection must be the retryable kind, and no Offer may block
//     meaningfully past its admission deadline.
//
// Exit gates (CI runs --smoke=true). Machine-independent first — the
// accounting identity and store validity are exact on any machine:
//   * offered == appended + shed (batches AND rows), in both regimes;
//   * the final published snapshot opens, validates, and holds exactly
//     rows_appended rows; in the steady regime with one producer the
//     rows are additionally verified bitwise against the generator;
//   * steady regime: zero shed batches;
//   * overload regime: shed > 0, every rejection retryable Unavailable;
//   * no single Offer may exceed the admission timeout by more than the
//     scheduling slack (the never-block-forever contract).
// Latency gates adapt to the core count per the 1-core dev-VM note:
// p99 append latency must stay under 250ms on a single core (the bound
// is scheduling noise, not the append) and under 50ms with >= 2 cores,
// where the writer thread owns a core.
//
// Flags: --smoke=true   fewer batches (CI)
//        --seed=N       root seed (default 7)
//        --producers=N  producer threads (default 4)
//        --json=PATH    output path (default BENCH_ingest.json)

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "data/rolling_store.h"
#include "data/shard_store.h"
#include "net/metrics_recorder.h"
#include "pipeline/ingest.h"
#include "stats/rng.h"

namespace randrecon {
namespace bench {
namespace {

using linalg::Matrix;

constexpr size_t kCols = 8;
constexpr size_t kBatchRows = 64;

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "FAIL: %s\n", message.c_str());
  std::exit(1);
}

/// Batch `index` of producer `p`: regenerable from (root_seed, p, index)
/// alone, so a readback can verify landed rows without any shared state
/// between producers.
Matrix ProducerBatch(uint64_t root_seed, size_t producer, size_t index) {
  // Substream derivation: mix the coordinates through the root-seeded
  // stream the way a counter-based (Philox-style) generator keys its
  // substreams — cheap, collision-free for this coordinate range, and
  // independent of how many producers actually run.
  stats::Rng rng(root_seed * 1000003 + producer * 131 + index);
  return rng.GaussianMatrix(kBatchRows, kCols);
}

std::vector<std::string> Names() {
  std::vector<std::string> names;
  for (size_t j = 0; j < kCols; ++j) names.push_back("a" + std::to_string(j));
  return names;
}

uint64_t CounterValue(const metrics::MetricsSnapshot& snapshot,
                      const std::string& name) {
  for (const auto& counter : snapshot.counters) {
    if (counter.name == name) return counter.value;
  }
  return 0;
}

const metrics::HistogramSnapshot* FindHistogram(
    const metrics::MetricsSnapshot& snapshot, const std::string& name) {
  for (const auto& histogram : snapshot.histograms) {
    if (histogram.name == name) return &histogram;
  }
  return nullptr;
}

struct RegimeOutcome {
  pipeline::IngestStats stats;
  uint64_t published_rows = 0;
  double offers_per_second = 0.0;
  double max_offer_seconds = 0.0;
  double append_p50_nanos = 0.0;
  double append_p99_nanos = 0.0;
  uint64_t recorder_samples = 0;
};

/// Removes a metrics series directory and its contents.
void RemoveSeriesDir(const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return;
  while (struct dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    std::remove((dir + "/" + name).c_str());
  }
  ::closedir(handle);
  ::rmdir(dir.c_str());
}

/// Runs one regime: `producers` threads x `batches` offers against a
/// fresh service, then closes, validates the store, and collects the
/// ingest.* histogram percentiles. When `recorder_dir` is non-empty a
/// live MetricsRecorder samples the whole run — the introspection
/// plane's observe-don't-perturb contract means the latency gates must
/// hold with it running (ISSUE contract: <= 2% overhead).
RegimeOutcome RunRegime(const std::string& manifest_path, size_t producers,
                        size_t batches, uint64_t root_seed,
                        const pipeline::IngestOptions& options,
                        bool expect_all_ok,
                        const std::string& recorder_dir = "") {
  data::RemoveShardedStoreFiles(manifest_path);
  metrics::ResetAllMetrics();
  std::unique_ptr<net::MetricsRecorder> recorder;
  if (!recorder_dir.empty()) {
    RemoveSeriesDir(recorder_dir);
    net::MetricsRecorder::Options recorder_options;
    recorder_options.series_dir = recorder_dir;
    recorder_options.interval_nanos = 10ull * 1000 * 1000;  // 10ms.
    auto created = net::MetricsRecorder::Create(recorder_options);
    if (!created.ok()) Die(created.status().ToString());
    recorder = std::move(created).value();
    recorder->Start();
  }
  auto started = pipeline::IngestService::Start(manifest_path, Names(), options);
  if (!started.ok()) Die(started.status().ToString());
  std::unique_ptr<pipeline::IngestService> service = std::move(started).value();

  std::atomic<uint64_t> worst_offer_nanos{0};
  Stopwatch wall;
  ParallelOptions parallel;
  parallel.num_threads = static_cast<int>(producers);
  parallel.min_parallel_items = 1;
  ParallelForEach(
      0, producers,
      [&](size_t p) {
        for (size_t b = 0; b < batches; ++b) {
          const Matrix batch = ProducerBatch(root_seed, p, b);
          Stopwatch offer_watch;
          const Status offered = service->Offer(batch, kBatchRows);
          const uint64_t nanos =
              static_cast<uint64_t>(offer_watch.ElapsedSeconds() * 1e9);
          uint64_t seen = worst_offer_nanos.load(std::memory_order_relaxed);
          while (nanos > seen && !worst_offer_nanos.compare_exchange_weak(
                                     seen, nanos, std::memory_order_relaxed)) {
          }
          if (offered.ok()) continue;
          if (expect_all_ok) Die("steady regime shed: " + offered.ToString());
          if (offered.code() != StatusCode::kUnavailable ||
              !offered.IsRetryable()) {
            Die("non-retryable rejection: " + offered.ToString());
          }
        }
      },
      parallel);
  const Status closed = service->Close();
  if (!closed.ok()) Die(closed.ToString());
  const double wall_seconds = std::max(wall.ElapsedSeconds(), 1e-9);

  RegimeOutcome outcome;
  if (recorder != nullptr) {
    const Status recorder_closed = recorder->Close();
    if (!recorder_closed.ok()) Die(recorder_closed.ToString());
    outcome.recorder_samples = recorder->samples();
    recorder.reset();
    RemoveSeriesDir(recorder_dir);
  }
  outcome.stats = service->stats();
  outcome.published_rows = service->published_rows();
  outcome.offers_per_second =
      static_cast<double>(outcome.stats.batches_offered) / wall_seconds;
  outcome.max_offer_seconds =
      static_cast<double>(worst_offer_nanos.load()) / 1e9;

  // The accounting identity is exact at Close on any machine.
  if (outcome.stats.batches_offered !=
          outcome.stats.batches_appended + outcome.stats.batches_shed ||
      outcome.stats.rows_offered !=
          outcome.stats.rows_appended + outcome.stats.rows_shed) {
    Die("accounting identity violated: offered != appended + shed");
  }
  if (outcome.stats.batches_offered != producers * batches) {
    Die("offered count does not cover every Offer call");
  }
  // The metrics mirror the same identity (check_report.py's view).
  const metrics::MetricsSnapshot snapshot = metrics::Snapshot();
  if (CounterValue(snapshot, "ingest.offered") !=
      CounterValue(snapshot, "ingest.appended") +
          CounterValue(snapshot, "ingest.shed")) {
    Die("ingest.* counters violate the accounting identity");
  }
  const metrics::HistogramSnapshot* append =
      FindHistogram(snapshot, "ingest.append_nanos");
  if (append != nullptr) {
    outcome.append_p50_nanos = static_cast<double>(append->p50);
    outcome.append_p99_nanos = static_cast<double>(append->p99);
  }

  // The published snapshot must hold exactly the appended rows.
  if (outcome.stats.rows_appended != outcome.published_rows) {
    Die("published rows diverge from rows_appended");
  }
  if (outcome.published_rows > 0) {
    auto opened = data::RollingStoreSnapshotReader::Open(manifest_path);
    if (!opened.ok()) Die(opened.status().ToString());
    if (opened.value().num_records() != outcome.published_rows) {
      Die("snapshot row count diverges from the writer's accounting");
    }
  }
  data::RemoveShardedStoreFiles(manifest_path);
  return outcome;
}

}  // namespace
}  // namespace bench
}  // namespace randrecon

int main(int argc, char** argv) {
  using namespace randrecon;
  using bench::BenchResult;
  using linalg::Matrix;

  Result<Flags> parsed = Flags::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 2;
  }
  const Flags& flags = parsed.value();
  const auto smoke = flags.GetBool("smoke", false);
  const auto seed = flags.GetInt("seed", 7);
  const auto producers_flag = flags.GetInt("producers", 4);
  const std::string json_path = flags.GetString("json", "BENCH_ingest.json");
  if (!smoke.ok() || !seed.ok() || !producers_flag.ok() ||
      producers_flag.value() < 1) {
    std::fprintf(stderr, "bad flag value\n");
    return 2;
  }
  const size_t producers = static_cast<size_t>(producers_flag.value());
  const size_t batches = smoke.value() ? 150 : 1500;
  const uint64_t root_seed = static_cast<uint64_t>(seed.value());
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  // Core-count-adaptive latency gate: on one core the writer thread
  // shares its core with every producer, so the p99 bound is really a
  // scheduling-noise bound; with real parallelism the append itself is
  // the bound.
  const double p99_gate_nanos = cores >= 2 ? 50e6 : 250e6;
  // An Offer may legitimately wait out its whole admission budget; the
  // slack above it covers descheduling, not queue time.
  const double offer_slack_seconds = 0.25;

  std::vector<BenchResult> results;
  const std::string manifest_path =
      std::string("micro_ingest") + data::kShardManifestExtension;

  // ---- Steady regime: nothing may shed. -----------------------------
  pipeline::IngestOptions steady;
  steady.queue_batches = 256;
  steady.admission_timeout_nanos = 2ull * 1000 * 1000 * 1000;  // 2s.
  steady.store.shard_rows = 4096;
  steady.store.block_rows = 256;
  // The steady regime runs with a live MetricsRecorder sampling every
  // 10ms: the p99 gate below therefore also gates the recorder's
  // overhead (observe, don't perturb).
  const bench::RegimeOutcome steady_outcome = bench::RunRegime(
      manifest_path, producers, batches, root_seed, steady,
      /*expect_all_ok=*/true, "micro_ingest_series");
  {
    BenchResult result;
    result.name = "steady/p" + std::to_string(producers);
    result.elapsed_seconds =
        static_cast<double>(steady_outcome.stats.batches_offered) /
        std::max(steady_outcome.offers_per_second, 1e-9);
    result.records_per_second = steady_outcome.offers_per_second * bench::kBatchRows;
    result.metrics = {
        {"batches_offered",
         static_cast<double>(steady_outcome.stats.batches_offered)},
        {"batches_shed", static_cast<double>(steady_outcome.stats.batches_shed)},
        {"append_p50_us", steady_outcome.append_p50_nanos / 1e3},
        {"append_p99_us", steady_outcome.append_p99_nanos / 1e3},
        {"max_offer_ms", steady_outcome.max_offer_seconds * 1e3},
        {"recorder_samples",
         static_cast<double>(steady_outcome.recorder_samples)},
    };
    results.push_back(result);
    std::printf("steady    p=%zu  %12.0f rows/s  p50=%.1fus p99=%.1fus shed=%llu\n",
                producers, result.records_per_second,
                steady_outcome.append_p50_nanos / 1e3,
                steady_outcome.append_p99_nanos / 1e3,
                static_cast<unsigned long long>(
                    steady_outcome.stats.batches_shed));
  }
  if (steady_outcome.stats.batches_shed != 0) {
    std::fprintf(stderr, "FAIL: the steady regime shed load\n");
    return 1;
  }
  if (steady_outcome.append_p99_nanos > p99_gate_nanos) {
    std::fprintf(stderr,
                 "FAIL: p99 append latency %.1fms above the %.0fms gate "
                 "(%u cores, recorder live)\n",
                 steady_outcome.append_p99_nanos / 1e6, p99_gate_nanos / 1e6,
                 cores);
    return 1;
  }
  if (steady_outcome.recorder_samples == 0) {
    std::fprintf(stderr, "FAIL: the metrics recorder never sampled\n");
    return 1;
  }

  // ---- Overload regime: shedding is the contract. -------------------
  pipeline::IngestOptions overload;
  overload.queue_batches = 4;
  overload.admission_timeout_nanos = 100ull * 1000;  // 100us.
  overload.store.shard_rows = 4096;
  overload.store.block_rows = 256;
  const bench::RegimeOutcome overload_outcome = bench::RunRegime(
      manifest_path, producers, batches, root_seed, overload,
      /*expect_all_ok=*/false);
  const double shed_rate =
      static_cast<double>(overload_outcome.stats.batches_shed) /
      static_cast<double>(overload_outcome.stats.batches_offered);
  {
    BenchResult result;
    result.name = "overload/p" + std::to_string(producers);
    result.elapsed_seconds =
        static_cast<double>(overload_outcome.stats.batches_offered) /
        std::max(overload_outcome.offers_per_second, 1e-9);
    result.records_per_second =
        overload_outcome.offers_per_second * bench::kBatchRows;
    result.metrics = {
        {"batches_offered",
         static_cast<double>(overload_outcome.stats.batches_offered)},
        {"batches_shed",
         static_cast<double>(overload_outcome.stats.batches_shed)},
        {"shed_rate", shed_rate},
        {"append_p99_us", overload_outcome.append_p99_nanos / 1e3},
        {"max_offer_ms", overload_outcome.max_offer_seconds * 1e3},
    };
    results.push_back(result);
    std::printf("overload  p=%zu  %12.0f rows/s  shed_rate=%.3f max_offer=%.1fms\n",
                producers, result.records_per_second, shed_rate,
                overload_outcome.max_offer_seconds * 1e3);
  }
  if (overload_outcome.stats.batches_shed == 0) {
    std::fprintf(stderr,
                 "FAIL: sustained overload against a 4-deep queue shed "
                 "nothing — admission control is not engaging\n");
    return 1;
  }
  const double overload_budget_seconds =
      static_cast<double>(overload.admission_timeout_nanos) / 1e9 +
      offer_slack_seconds;
  if (overload_outcome.max_offer_seconds > overload_budget_seconds) {
    std::fprintf(stderr,
                 "FAIL: an Offer blocked %.3fs, past its %.3fs admission "
                 "budget + slack — the never-block-forever contract broke\n",
                 overload_outcome.max_offer_seconds, overload_budget_seconds);
    return 1;
  }

  const bench::BenchConfig config = {
      {"smoke", smoke.value() ? "true" : "false"},
      {"seed", std::to_string(root_seed)},
      {"producers", std::to_string(producers)},
      {"batches_per_producer", std::to_string(batches)},
      {"batch_rows", std::to_string(bench::kBatchRows)},
      {"cols", std::to_string(bench::kCols)},
      {"p99_gate_ms", FormatDouble(p99_gate_nanos / 1e6, 0)},
      {"offer_slack_ms", FormatDouble(offer_slack_seconds * 1e3, 0)},
      {"cores", std::to_string(cores)},
  };
  const Status json_status =
      bench::WriteBenchJson(json_path, "micro_ingest", config, results);
  if (!json_status.ok()) {
    std::fprintf(stderr, "%s\n", json_status.ToString().c_str());
    return 1;
  }
  std::printf("bench json written to %s\n", json_path.c_str());
  return 0;
}
