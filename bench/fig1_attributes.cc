// Regenerates Figure 1 (§7.2): RMSE of UDR / SF / PCA-DR / BE-DR as the
// number of attributes m grows from 5 to 100 with p = 5 principal
// components fixed. Expected shape (paper): UDR flat; the three
// correlation-based schemes fall monotonically; BE-DR best throughout.
//
// Flags: --num_records=N --sigma=S --trials=T --seed=S
//        --oracle_moments=true|false (default true, the paper's §5.3 mode)

#include "bench/bench_util.h"
#include "common/flags.h"
#include "experiment/figures.h"

int main(int argc, char** argv) {
  randrecon::Stopwatch stopwatch;
  randrecon::experiment::Figure1Config config;
  // Paper-shaped sweep: every multiple of 10 plus the m = p start point.
  config.attribute_counts = {5,  10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  config.common.num_trials = 3;
  if (int rc = randrecon::bench::ApplyCommonFlags(argc, argv, &config.common);
      rc != 0) {
    return rc;
  }
  std::printf(
      "Reproduces: Figure 1 'Experiment 1: Increase the Number of "
      "Attributes'\n"
      "Setup: p = %zu fixed, trace-pinned spectrum (Eq. 12), n = %zu, "
      "sigma = %.1f, %zu trials/point\n\n",
      config.num_principal, config.common.num_records,
      config.common.noise_stddev, config.common.num_trials);
  return randrecon::bench::ReportExperiment(
      randrecon::experiment::RunFigure1(config), "fig1_attributes.csv",
      stopwatch, &config.common);
}
