// Google-benchmark microbenchmarks for the linear-algebra and sampling
// substrate: the building blocks every attack and every experiment run
// through.

#include <benchmark/benchmark.h>

#include "data/synthetic.h"
#include "linalg/cholesky.h"
#include "linalg/eigen.h"
#include "linalg/lu.h"
#include "linalg/matrix_util.h"
#include "linalg/orthogonal.h"
#include "stats/moments.h"
#include "stats/mvn.h"
#include "stats/random_orthogonal.h"
#include "stats/rng.h"

namespace randrecon {
namespace {

linalg::Matrix RandomSpd(size_t m, uint64_t seed) {
  stats::Rng rng(seed);
  linalg::Matrix g = rng.GaussianMatrix(m, m);
  linalg::Matrix a = linalg::Symmetrize(g * g.Transpose());
  for (size_t i = 0; i < m; ++i) a(i, i) += 1.0;
  return a;
}

void BM_MatrixMultiply(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  stats::Rng rng(1);
  const linalg::Matrix a = rng.GaussianMatrix(m, m);
  const linalg::Matrix b = rng.GaussianMatrix(m, m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
  state.SetComplexityN(static_cast<int64_t>(m));
}
BENCHMARK(BM_MatrixMultiply)->Arg(16)->Arg(64)->Arg(128)->Complexity();

void BM_JacobiEigen(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const linalg::Matrix a = RandomSpd(m, 2);
  for (auto _ : state) {
    auto eig = linalg::SymmetricEigen(a);
    benchmark::DoNotOptimize(eig);
  }
}
BENCHMARK(BM_JacobiEigen)->Arg(16)->Arg(50)->Arg(100);

void BM_Cholesky(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const linalg::Matrix a = RandomSpd(m, 3);
  for (auto _ : state) {
    auto chol = linalg::CholeskyFactorization::Compute(a);
    benchmark::DoNotOptimize(chol);
  }
}
BENCHMARK(BM_Cholesky)->Arg(16)->Arg(50)->Arg(100);

void BM_LuInverse(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const linalg::Matrix a = RandomSpd(m, 4);
  for (auto _ : state) {
    auto inv = linalg::InvertMatrix(a);
    benchmark::DoNotOptimize(inv);
  }
}
BENCHMARK(BM_LuInverse)->Arg(16)->Arg(50)->Arg(100);

void BM_GramSchmidt(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  stats::Rng rng(5);
  const linalg::Matrix g = rng.GaussianMatrix(m, m);
  for (auto _ : state) {
    auto q = linalg::GramSchmidtOrthonormalize(g);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_GramSchmidt)->Arg(16)->Arg(50)->Arg(100);

void BM_MvnSample1000Records(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  stats::Rng setup_rng(6);
  const linalg::Matrix cov = linalg::ComposeFromEigen(
      data::TwoLevelSpectrum(m, m / 10 + 1, 100.0, 1.0),
      stats::RandomOrthogonalMatrix(m, &setup_rng));
  auto sampler = stats::MultivariateNormalSampler::CreateZeroMean(cov);
  stats::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.value().SampleMatrix(1000, &rng));
  }
}
BENCHMARK(BM_MvnSample1000Records)->Arg(20)->Arg(100);

void BM_SampleCovariance(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  stats::Rng rng(8);
  const linalg::Matrix data = rng.GaussianMatrix(1000, m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::SampleCovariance(data));
  }
}
BENCHMARK(BM_SampleCovariance)->Arg(20)->Arg(100);

void BM_SyntheticDatasetGeneration(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = data::TwoLevelSpectrumWithTrace(m, 5, 1.0, 100.0);
  stats::Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::GenerateSpectrumDataset(spec, 1000, &rng));
  }
}
BENCHMARK(BM_SyntheticDatasetGeneration)->Arg(20)->Arg(100);

}  // namespace
}  // namespace randrecon

BENCHMARK_MAIN();
