// Attack-scheduler cycle latency vs a direct full recompute.
//
// The AttackScheduler's value proposition is that a scheduled cycle is
// the SAME attack as an offline sweep — pin, recompute, publish — so
// its cost must stay within a small factor of the bare
// StreamingAttackPipeline run over the same manifest. This benchmark
// builds a rolling store once, times
//
//   direct     — ShardedRecordSource::Open + StreamingAttackPipeline::Run
//                (what sweep_attack does per manifest job), and
//   scheduled  — AttackScheduler::RunCycleNow() (snapshot pin + the same
//                attack + versioned report publish),
//
// and gates two things:
//
//   1. Bitwise equality (machine-independent, exact): the scheduled
//      cycle's eigenvalues / mean / rmse memcmp-equal the direct run's.
//      This is the contract check that scheduling never perturbs
//      numerics, run at benchmark scale rather than unit-test scale.
//   2. Latency: the best scheduled cycle stays under 2x the best direct
//      run plus a fixed slack for the publish I/O. Pinning a snapshot
//      and rendering one JSON report must never dominate the attack.
//
// Flags: --smoke=true shrinks the store for CI; --seed, --shards,
// --json=PATH (default BENCH_scheduler.json).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <dirent.h>
#include <unistd.h>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "data/rolling_store.h"
#include "data/shard_store.h"
#include "linalg/matrix.h"
#include "pipeline/attack_scheduler.h"
#include "pipeline/chunk_sink.h"
#include "pipeline/record_source.h"
#include "stats/rng.h"

namespace randrecon {
namespace bench {
namespace {

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "FAIL: %s\n", message.c_str());
  std::exit(1);
}

std::vector<std::string> ColumnNames(size_t cols) {
  std::vector<std::string> names;
  names.reserve(cols);
  for (size_t c = 0; c < cols; ++c) {
    names.push_back("col" + std::to_string(c));
  }
  return names;
}

void RemoveDirRecursive(const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return;
  while (struct dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    std::remove((dir + "/" + name).c_str());
  }
  ::closedir(handle);
  ::rmdir(dir.c_str());
}

/// Builds a sealed rolling store of `shards` full shards.
void BuildStore(const std::string& manifest_path, size_t shards,
                size_t shard_rows, size_t cols, uint64_t seed) {
  data::RollingStoreOptions options;
  options.shard_rows = shard_rows;
  options.block_rows = 256;
  auto created = data::RollingShardedStoreWriter::Create(
      manifest_path, ColumnNames(cols), options);
  if (!created.ok()) Die("store create: " + created.status().ToString());
  data::RollingShardedStoreWriter writer = std::move(created).value();
  for (size_t s = 0; s < shards; ++s) {
    stats::Rng rng(seed * 1000003ull + s);
    const linalg::Matrix records = rng.GaussianMatrix(shard_rows, cols);
    const Status appended = writer.Append(records, shard_rows);
    if (!appended.ok()) Die("store append: " + appended.ToString());
  }
  const Status closed = writer.Close();
  if (!closed.ok()) Die("store close: " + closed.ToString());
}

}  // namespace
}  // namespace bench
}  // namespace randrecon

int main(int argc, char** argv) {
  using namespace randrecon;
  using bench::BenchResult;
  using bench::Die;

  Result<Flags> parsed = Flags::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 2;
  }
  const Flags& flags = parsed.value();
  const auto smoke = flags.GetBool("smoke", false);
  const auto seed = flags.GetInt("seed", 7);
  const auto shards_flag = flags.GetInt("shards", 0);
  const std::string json_path = flags.GetString("json", "BENCH_scheduler.json");
  if (!smoke.ok() || !seed.ok() || !shards_flag.ok() ||
      shards_flag.value() < 0) {
    std::fprintf(stderr, "bad flag value\n");
    return 2;
  }

  const size_t shards = shards_flag.value() > 0
                            ? static_cast<size_t>(shards_flag.value())
                            : (smoke.value() ? 6 : 24);
  const size_t shard_rows = smoke.value() ? 256 : 2048;
  const size_t cols = 8;
  const size_t reps = smoke.value() ? 3 : 5;
  const double sigma = 0.5;
  const uint64_t root_seed = static_cast<uint64_t>(seed.value());
  const uint64_t total_rows = static_cast<uint64_t>(shards) * shard_rows;

  const std::string manifest_path =
      std::string("micro_scheduler") + data::kShardManifestExtension;
  const std::string report_dir = "micro_scheduler_reports";
  data::RemoveShardedStoreFiles(manifest_path);
  bench::RemoveDirRecursive(report_dir);
  metrics::ResetAllMetrics();

  bench::BuildStore(manifest_path, shards, shard_rows, cols, root_seed);

  pipeline::StreamingAttackOptions attack;
  attack.chunk_rows = 4096;
  const perturb::NoiseModel noise =
      perturb::NoiseModel::IndependentGaussian(cols, sigma);

  // ---- Direct recompute: the sweep_attack whole-manifest job. --------
  pipeline::StreamingAttackReport direct_report;
  double direct_best = 1e300;
  for (size_t rep = 0; rep < reps; ++rep) {
    Stopwatch stopwatch;
    auto opened = pipeline::ShardedRecordSource::Open(
        manifest_path, data::ColumnStoreReadOptions());
    if (!opened.ok()) Die("direct open: " + opened.status().ToString());
    pipeline::ShardedRecordSource source = std::move(opened).value();
    pipeline::NullChunkSink sink;
    pipeline::StreamingAttackPipeline pipeline(attack);
    auto run = pipeline.Run(&source, noise, &sink);
    if (!run.ok()) Die("direct run: " + run.status().ToString());
    const double elapsed = stopwatch.ElapsedSeconds();
    if (elapsed < direct_best) direct_best = elapsed;
    direct_report = std::move(run).value();
  }

  // ---- Scheduled cycle: pin + the same attack + versioned publish. ---
  pipeline::AttackSchedulerOptions scheduler_options;
  scheduler_options.sigma = sigma;
  scheduler_options.attack = attack;
  scheduler_options.attack_unchanged = true;  // Re-attack the same store.
  scheduler_options.report_dir = report_dir;
  auto created =
      pipeline::AttackScheduler::Create(manifest_path, scheduler_options);
  if (!created.ok()) Die("scheduler create: " + created.status().ToString());
  std::unique_ptr<pipeline::AttackScheduler> scheduler =
      std::move(created).value();

  pipeline::SchedulerCycleResult last_cycle;
  double scheduled_best = 1e300;
  for (size_t rep = 0; rep < reps; ++rep) {
    Stopwatch stopwatch;
    pipeline::SchedulerCycleResult cycle = scheduler->RunCycleNow();
    const double elapsed = stopwatch.ElapsedSeconds();
    if (cycle.outcome != pipeline::CycleOutcome::kOk) {
      Die(std::string("scheduled cycle ended ") +
          pipeline::CycleOutcomeName(cycle.outcome) + ": " +
          cycle.status.ToString());
    }
    if (cycle.version != rep + 1) Die("report versions are not contiguous");
    if (elapsed < scheduled_best) scheduled_best = elapsed;
    last_cycle = std::move(cycle);
  }
  if (scheduler->reports_published() != reps ||
      scheduler->cycles_ok() != scheduler->cycles()) {
    Die("cycle accounting identity broken");
  }

  // ---- Gate 1 (machine-independent): bitwise equality. ---------------
  if (last_cycle.report.num_records != direct_report.num_records ||
      last_cycle.report.num_components != direct_report.num_components ||
      last_cycle.report.eigenvalues.size() !=
          direct_report.eigenvalues.size() ||
      last_cycle.report.mean.size() != direct_report.mean.size()) {
    Die("scheduled and direct runs disagree on shape");
  }
  const double scheduled_rmse = last_cycle.report.rmse_vs_disguised;
  const double direct_rmse = direct_report.rmse_vs_disguised;
  if (std::memcmp(last_cycle.report.eigenvalues.data(),
                  direct_report.eigenvalues.data(),
                  direct_report.eigenvalues.size() * sizeof(double)) != 0 ||
      std::memcmp(last_cycle.report.mean.data(), direct_report.mean.data(),
                  direct_report.mean.size() * sizeof(double)) != 0 ||
      std::memcmp(&scheduled_rmse, &direct_rmse, sizeof(double)) != 0) {
    Die("scheduled attack output is not bitwise equal to the direct run");
  }

  // ---- Gate 2: a cycle never dominates the attack it wraps. ----------
  // 2x covers the snapshot pin + report render/write; the absolute
  // slack covers descheduling on loaded CI runners, not real work.
  const double latency_gate = 2.0 * direct_best + 0.25;
  const double overhead_ratio =
      direct_best > 0.0 ? scheduled_best / direct_best : 0.0;
  std::printf("direct     best %8.2fms  %12.0f rows/s\n", direct_best * 1e3,
              total_rows / direct_best);
  std::printf("scheduled  best %8.2fms  %12.0f rows/s  (%.2fx direct)\n",
              scheduled_best * 1e3, total_rows / scheduled_best,
              overhead_ratio);
  if (scheduled_best > latency_gate) {
    std::fprintf(stderr,
                 "FAIL: scheduled cycle %.1fms above the %.1fms gate "
                 "(2x direct + 250ms slack)\n",
                 scheduled_best * 1e3, latency_gate * 1e3);
    return 1;
  }

  std::vector<BenchResult> results;
  {
    BenchResult result;
    result.name = "direct_recompute";
    result.elapsed_seconds = direct_best;
    result.records_per_second = total_rows / direct_best;
    result.metrics = {{"reps", static_cast<double>(reps)}};
    results.push_back(result);
  }
  {
    BenchResult result;
    result.name = "scheduler_cycle";
    result.elapsed_seconds = scheduled_best;
    result.records_per_second = total_rows / scheduled_best;
    result.metrics = {
        {"reps", static_cast<double>(reps)},
        {"overhead_vs_direct", overhead_ratio},
        {"reports_published",
         static_cast<double>(scheduler->reports_published())},
    };
    results.push_back(result);
  }
  const bench::BenchConfig config = {
      {"shards", std::to_string(shards)},
      {"shard_rows", std::to_string(shard_rows)},
      {"cols", std::to_string(cols)},
      {"sigma", "0.5"},
      {"chunk_rows", std::to_string(attack.chunk_rows)},
      {"seed", std::to_string(root_seed)},
      {"smoke", smoke.value() ? "true" : "false"},
  };
  const Status written =
      bench::WriteBenchJson(json_path, "micro_scheduler", config, results);
  if (!written.ok()) Die("bench json: " + written.ToString());
  std::printf("bench json written to %s\n", json_path.c_str());

  scheduler.reset();
  data::RemoveShardedStoreFiles(manifest_path);
  bench::RemoveDirRecursive(report_dir);
  return 0;
}
