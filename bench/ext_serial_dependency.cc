// Extension E2 — Sample Dependency (§3 second bullet): time-series data
// disguised sample-by-sample leaks through its serial correlation.
//
// Sweeps the AR(1) coefficient rho (stationary std fixed at 10, noise
// sigma = 5) and reports the de-noised RMSE for several embedding
// windows plus the NDR baseline (the disguised series itself). Expected
// shape: at rho = 0 nothing beats the univariate shrinkage bound
// (~4.47); as rho -> 1 the reconstruction error collapses toward the
// Wiener optimum — serial dependency is as dangerous as attribute
// correlation.
//
// Flags: --num_records=L (series length) --sigma=S --trials=T --seed=S

#include "bench/bench_util.h"
#include "experiment/extensions.h"

int main(int argc, char** argv) {
  randrecon::Stopwatch stopwatch;
  randrecon::experiment::SerialDependencyConfig config;
  config.common.num_records = 6000;  // Series length.
  config.common.num_trials = 3;
  if (int rc = randrecon::bench::ApplyCommonFlags(argc, argv, &config.common);
      rc != 0) {
    return rc;
  }
  std::printf(
      "Extension E2: serial dependency attack on AR(1) series "
      "(length = %zu, stationary std = %.0f, sigma = %.1f, %zu "
      "trials/point)\n\n",
      config.common.num_records, config.stationary_stddev,
      config.common.noise_stddev, config.common.num_trials);
  const int rc = randrecon::bench::ReportExperiment(
      randrecon::experiment::RunSerialDependencySweep(config),
      "ext_serial_dependency.csv", stopwatch, &config.common);
  if (rc == 0) {
    std::printf(
        "Reading: the disguised series itself (NDR) always sits at sigma; "
        "a univariate attack can at best reach ~4.47 here. Everything "
        "below that is privacy surrendered to *serial* correlation — the "
        "paper's §3 warning made concrete.\n\n");
  }
  return rc;
}
