// Shared helpers for the figure benchmark binaries: print the paper-style
// table to stdout and drop a CSV next to the working directory for
// replotting.

#ifndef RANDRECON_BENCH_BENCH_UTIL_H_
#define RANDRECON_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "common/stopwatch.h"
#include "experiment/config.h"
#include "experiment/series.h"

namespace randrecon {
namespace bench {

/// Applies the shared bench flags (--num_records, --sigma, --trials,
/// --seed, --oracle_moments, --fast_udr) to a CommonConfig. Returns a
/// non-zero process exit code on a malformed command line.
inline int ApplyCommonFlags(int argc, const char* const* argv,
                            experiment::CommonConfig* common) {
  Result<Flags> parsed = Flags::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 2;
  }
  const Flags& flags = parsed.value();
  auto num_records = flags.GetInt("num_records",
                                  static_cast<int64_t>(common->num_records));
  auto sigma = flags.GetDouble("sigma", common->noise_stddev);
  auto trials = flags.GetInt("trials",
                             static_cast<int64_t>(common->num_trials));
  auto seed =
      flags.GetInt("seed", static_cast<int64_t>(common->seed));
  auto oracle = flags.GetBool("oracle_moments", common->oracle_moments);
  auto fast_udr = flags.GetBool("fast_udr", common->fast_udr);
  for (const Status& status :
       {num_records.status(), sigma.status(), trials.status(), seed.status(),
        oracle.status(), fast_udr.status()}) {
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 2;
    }
  }
  common->num_records = static_cast<size_t>(num_records.value());
  common->noise_stddev = sigma.value();
  common->num_trials = static_cast<size_t>(trials.value());
  common->seed = static_cast<uint64_t>(seed.value());
  common->oracle_moments = oracle.value();
  common->fast_udr = fast_udr.value();
  for (const std::string& name : flags.UnusedFlags()) {
    std::fprintf(stderr, "warning: unknown flag --%s ignored\n", name.c_str());
  }
  return 0;
}

/// Prints the experiment table, writes `<csv_name>` in the current
/// directory, and reports elapsed time. Returns 0 on success (process
/// exit code).
inline int ReportExperiment(const Result<experiment::ExperimentResult>& result,
                            const std::string& csv_name,
                            const Stopwatch& stopwatch) {
  if (!result.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", experiment::FormatExperimentTable(result.value()).c_str());
  const Status csv_status =
      experiment::WriteExperimentCsv(result.value(), csv_name);
  if (csv_status.ok()) {
    std::printf("series written to %s\n", csv_name.c_str());
  } else {
    std::fprintf(stderr, "CSV export skipped: %s\n",
                 csv_status.ToString().c_str());
  }
  std::printf("elapsed: %.2fs\n\n", stopwatch.ElapsedSeconds());
  return 0;
}

}  // namespace bench
}  // namespace randrecon

#endif  // RANDRECON_BENCH_BENCH_UTIL_H_
