// Shared helpers for the figure benchmark binaries: print the paper-style
// table to stdout and drop a CSV next to the working directory for
// replotting.

#ifndef RANDRECON_BENCH_BENCH_UTIL_H_
#define RANDRECON_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/flags.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "experiment/config.h"
#include "experiment/series.h"

namespace randrecon {
namespace bench {

/// One timed measurement for WriteBenchJson: a name, the wall time, a
/// throughput figure, and any extra metrics (speedups, error bounds, ...).
struct BenchResult {
  std::string name;
  double elapsed_seconds = 0.0;
  double records_per_second = 0.0;
  std::vector<std::pair<std::string, double>> metrics;
};

/// Key/value pairs echoing the benchmark configuration into the JSON.
using BenchConfig = std::vector<std::pair<std::string, std::string>>;

namespace internal {
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // Drop control chars.
    out.push_back(c);
  }
  return out;
}
}  // namespace internal

/// Writes a machine-readable benchmark report:
///   {"bench": ..., "config": {...}, "results": [{"name": ...,
///    "elapsed_seconds": ..., "records_per_second": ..., <metrics>}]}
/// so successive PRs can track a perf trajectory from checked-in files.
inline Status WriteBenchJson(const std::string& path,
                             const std::string& bench_name,
                             const BenchConfig& config,
                             const std::vector<BenchResult>& results) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("WriteBenchJson: cannot open " + path);
  }
  char buffer[64];
  auto number = [&buffer](double v) {
    if (!std::isfinite(v)) return std::string("null");  // JSON has no inf/nan.
    std::snprintf(buffer, sizeof(buffer), "%.9g", v);
    return std::string(buffer);
  };
  out << "{\n  \"bench\": \"" << internal::JsonEscape(bench_name) << "\",\n";
  out << "  \"config\": {";
  for (size_t i = 0; i < config.size(); ++i) {
    if (i > 0) out << ", ";
    out << "\"" << internal::JsonEscape(config[i].first) << "\": \""
        << internal::JsonEscape(config[i].second) << "\"";
  }
  out << "},\n  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    out << "    {\"name\": \"" << internal::JsonEscape(r.name)
        << "\", \"elapsed_seconds\": " << number(r.elapsed_seconds)
        << ", \"records_per_second\": " << number(r.records_per_second);
    for (const auto& metric : r.metrics) {
      out << ", \"" << internal::JsonEscape(metric.first)
          << "\": " << number(metric.second);
    }
    out << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  out.flush();
  if (!out) {
    return Status::IoError("WriteBenchJson: write failed for " + path);
  }
  return Status::OK();
}

/// Standard config echo for experiment binaries driven by CommonConfig.
inline BenchConfig EchoCommonConfig(const experiment::CommonConfig& common) {
  return BenchConfig{
      {"num_records", std::to_string(common.num_records)},
      {"sigma", FormatDouble(common.noise_stddev, 4)},
      {"trials", std::to_string(common.num_trials)},
      {"seed", std::to_string(common.seed)},
      {"oracle_moments", common.oracle_moments ? "true" : "false"},
      {"fast_udr", common.fast_udr ? "true" : "false"},
  };
}

/// Applies the shared bench flags (--num_records, --sigma, --trials,
/// --seed, --oracle_moments, --fast_udr) to a CommonConfig. Returns a
/// non-zero process exit code on a malformed command line.
inline int ApplyCommonFlags(int argc, const char* const* argv,
                            experiment::CommonConfig* common) {
  Result<Flags> parsed = Flags::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 2;
  }
  const Flags& flags = parsed.value();
  auto num_records = flags.GetInt("num_records",
                                  static_cast<int64_t>(common->num_records));
  auto sigma = flags.GetDouble("sigma", common->noise_stddev);
  auto trials = flags.GetInt("trials",
                             static_cast<int64_t>(common->num_trials));
  auto seed =
      flags.GetInt("seed", static_cast<int64_t>(common->seed));
  auto oracle = flags.GetBool("oracle_moments", common->oracle_moments);
  auto fast_udr = flags.GetBool("fast_udr", common->fast_udr);
  for (const Status& status :
       {num_records.status(), sigma.status(), trials.status(), seed.status(),
        oracle.status(), fast_udr.status()}) {
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 2;
    }
  }
  common->num_records = static_cast<size_t>(num_records.value());
  common->noise_stddev = sigma.value();
  common->num_trials = static_cast<size_t>(trials.value());
  common->seed = static_cast<uint64_t>(seed.value());
  common->oracle_moments = oracle.value();
  common->fast_udr = fast_udr.value();
  for (const std::string& name : flags.UnusedFlags()) {
    std::fprintf(stderr, "warning: unknown flag --%s ignored\n", name.c_str());
  }
  return 0;
}

/// Prints the experiment table, writes `<csv_name>` (and, when `common`
/// is supplied, a machine-readable `<stem>_bench.json`) in the current
/// directory, and reports elapsed time. Returns 0 on success (process
/// exit code).
inline int ReportExperiment(const Result<experiment::ExperimentResult>& result,
                            const std::string& csv_name,
                            const Stopwatch& stopwatch,
                            const experiment::CommonConfig* common = nullptr) {
  if (!result.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", experiment::FormatExperimentTable(result.value()).c_str());
  const Status csv_status =
      experiment::WriteExperimentCsv(result.value(), csv_name);
  if (csv_status.ok()) {
    std::printf("series written to %s\n", csv_name.c_str());
  } else {
    std::fprintf(stderr, "CSV export skipped: %s\n",
                 csv_status.ToString().c_str());
  }
  const double elapsed = stopwatch.ElapsedSeconds();
  if (common != nullptr) {
    const std::string stem =
        csv_name.size() > 4 && csv_name.rfind(".csv") == csv_name.size() - 4
            ? csv_name.substr(0, csv_name.size() - 4)
            : csv_name;
    const size_t num_points = result.value().series.empty()
                                  ? 0
                                  : result.value().series[0].points.size();
    // Throughput in reconstructed records: every swept point runs
    // `trials` full attacks over `num_records` records.
    const double total_records = static_cast<double>(common->num_records) *
                                 static_cast<double>(common->num_trials) *
                                 static_cast<double>(num_points);
    BenchResult timing;
    timing.name = result.value().experiment_id.empty()
                      ? stem
                      : result.value().experiment_id;
    timing.elapsed_seconds = elapsed;
    timing.records_per_second = elapsed > 0.0 ? total_records / elapsed : 0.0;
    timing.metrics.emplace_back("num_points",
                                static_cast<double>(num_points));
    const std::string json_name = stem + "_bench.json";
    const Status json_status = WriteBenchJson(
        json_name, stem, EchoCommonConfig(*common), {timing});
    if (json_status.ok()) {
      std::printf("bench json written to %s\n", json_name.c_str());
    } else {
      std::fprintf(stderr, "bench json skipped: %s\n",
                   json_status.ToString().c_str());
    }
  }
  std::printf("elapsed: %.2fs\n\n", elapsed);
  return 0;
}

}  // namespace bench
}  // namespace randrecon

#endif  // RANDRECON_BENCH_BENCH_UTIL_H_
