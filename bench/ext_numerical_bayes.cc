// Extension E4 — §6's future-work item, measured: numerical (gradient-
// ascent) Bayes estimation for NON-Gaussian original data.
//
// Data: two clusters of records (a mixture of Gaussians) — the kind of
// structure a single multivariate-normal prior cannot represent. Sweep
// the cluster separation and compare:
//   * BE-DR   — the paper's closed-form attack (single-Gaussian prior
//               fitted to the pooled data),
//   * NB-DR   — numerical MAP with the true two-component mixture prior.
// Expected shape: at zero separation the two coincide (the mixture IS a
// Gaussian); as the clusters separate, the single-Gaussian prior smears
// them together and NB-DR pulls ahead.

#include <cmath>
#include <cstdio>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/be_dr.h"
#include "core/numerical_bayes.h"
#include "data/synthetic.h"
#include "perturb/schemes.h"
#include "stats/moments.h"

using namespace randrecon;  // NOLINT(build/namespaces): bench binary.

int main() {
  Stopwatch stopwatch;
  const size_t m = 6, n = 800;
  const double sigma = 6.0;
  std::printf(
      "Extension E4: numerical Bayes (gradient ascent) vs closed-form BE-DR "
      "on clustered data\n"
      "(m = %zu, n = %zu, sigma = %.1f, two equal clusters, within-cluster "
      "eigenvalues {8,4,2,1,1,1})\n\n",
      m, n, sigma);
  std::printf("%s%s%s%s\n", PadLeft("separation", 12).c_str(),
              PadLeft("NDR", 10).c_str(), PadLeft("BE-DR", 10).c_str(),
              PadLeft("NB-DR", 10).c_str());
  std::printf("%s\n", std::string(42, '-').c_str());

  for (double separation : {0.0, 5.0, 10.0, 20.0, 40.0}) {
    stats::Rng rng(51000 + static_cast<uint64_t>(separation));
    linalg::Matrix means(2, m);
    for (size_t j = 0; j < m; ++j) {
      means(0, j) = -0.5 * separation;
      means(1, j) = 0.5 * separation;
    }
    auto mixture = data::GenerateGaussianMixtureDataset(
        means, linalg::Vector{8.0, 4.0, 2.0, 1.0, 1.0, 1.0}, n, &rng);
    if (!mixture.ok()) {
      std::fprintf(stderr, "%s\n", mixture.status().ToString().c_str());
      return 1;
    }
    const linalg::Matrix& x = mixture.value().dataset.records();
    auto scheme = perturb::IndependentNoiseScheme::Gaussian(m, sigma);
    linalg::Matrix y = x + scheme.GenerateNoise(n, &rng);

    core::BayesEstimateReconstructor be;
    auto be_hat = be.Reconstruct(y, scheme.noise_model());

    std::vector<core::GaussianComponent> components;
    for (size_t k = 0; k < 2; ++k) {
      components.push_back(core::GaussianComponent{
          0.5, means.Row(k), mixture.value().within_covariance});
    }
    auto prior = core::GaussianMixturePrior::Create(std::move(components));
    if (!prior.ok()) return 1;
    core::NumericalBayesReconstructor nb(std::move(prior).value());
    auto nb_hat = nb.Reconstruct(y, scheme.noise_model());
    if (!be_hat.ok() || !nb_hat.ok()) {
      std::fprintf(stderr, "reconstruction failed\n");
      return 1;
    }

    std::printf(
        "%s%s%s%s\n", PadLeft(FormatDouble(separation, 1), 12).c_str(),
        PadLeft(FormatDouble(stats::RootMeanSquareError(x, y), 4), 10).c_str(),
        PadLeft(FormatDouble(stats::RootMeanSquareError(x, be_hat.value()), 4),
                10)
            .c_str(),
        PadLeft(FormatDouble(stats::RootMeanSquareError(x, nb_hat.value()), 4),
                10)
            .c_str());
  }
  std::printf(
      "\nReading: at separation 0 the mixture degenerates to one Gaussian "
      "and NB-DR == BE-DR; as the clusters separate, the single-Gaussian "
      "prior's 'covariance' inflates with the between-cluster spread and "
      "BE-DR stops filtering, while the mixture-prior MAP keeps improving "
      "— non-Gaussian structure leaks even more than the paper's Gaussian "
      "analysis promises.\n");
  std::printf("elapsed: %.2fs\n\n", stopwatch.ElapsedSeconds());
  return 0;
}
