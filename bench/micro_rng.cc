// Micro-benchmark for the random substrate (PR 3): scalar stats::Rng
// (mt19937_64 + std:: distributions) vs the Philox counter substrate's
// batch fills, for Gaussian / uniform / Bernoulli draws and the MVN
// SampleMatrix path, at n in {1e5, 1e6} draws. Writes BENCH_rng.json so
// the perf trajectory is checked in.
//
// The binary is also a perf gate: it exits non-zero if the batch
// Gaussian fill is not at least kMinGaussianSpeedup x faster than the
// scalar Rng loop at the largest size — CI runs `micro_rng --smoke` next
// to the linalg/pipeline smokes, so a regression that deoptimizes the
// substrate (or silently knocks dispatch down to the scalar engine on
// SIMD hardware) fails the build.
//
// Flags: --smoke=true   small sizes / fewer reps (CI)
//        --seed=N       RNG seed (default 7)
//        --json=PATH    output path (default BENCH_rng.json)

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "stats/mvn.h"
#include "stats/philox.h"
#include "stats/rng.h"

namespace randrecon {
namespace bench {
namespace {

/// The CI gate: batch Gaussian fill must beat the scalar Rng loop by at
/// least this factor on every machine the bench runs on.
constexpr double kMinGaussianSpeedup = 4.0;

double Median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct Comparison {
  double scalar_seconds = 0.0;
  double batch_seconds = 0.0;
  double speedup = 0.0;
};

/// Times scalar vs batch back to back per rep and reports medians plus
/// the median per-rep ratio (pairing the reps makes the ratio robust
/// against machine noise drifting between the two measurements).
template <typename ScalarFn, typename BatchFn>
Comparison Compare(int reps, const ScalarFn& scalar_fn,
                   const BatchFn& batch_fn) {
  std::vector<double> scalar_times, batch_times, ratios;
  for (int rep = 0; rep < reps; ++rep) {
    Stopwatch scalar_watch;
    scalar_fn();
    const double scalar_seconds =
        std::max(scalar_watch.ElapsedSeconds(), 1e-9);
    Stopwatch batch_watch;
    batch_fn();
    const double batch_seconds = std::max(batch_watch.ElapsedSeconds(), 1e-9);
    scalar_times.push_back(scalar_seconds);
    batch_times.push_back(batch_seconds);
    ratios.push_back(scalar_seconds / batch_seconds);
  }
  Comparison comparison;
  comparison.scalar_seconds = Median(std::move(scalar_times));
  comparison.batch_seconds = Median(std::move(batch_times));
  comparison.speedup = Median(std::move(ratios));
  return comparison;
}

void Report(std::vector<BenchResult>* results, const std::string& stem,
            double draws, const Comparison& comparison) {
  BenchResult scalar;
  scalar.name = stem + "/scalar";
  scalar.elapsed_seconds = comparison.scalar_seconds;
  scalar.records_per_second = draws / comparison.scalar_seconds;
  results->push_back(scalar);
  BenchResult batch;
  batch.name = stem + "/batch";
  batch.elapsed_seconds = comparison.batch_seconds;
  batch.records_per_second = draws / comparison.batch_seconds;
  batch.metrics.emplace_back("speedup", comparison.speedup);
  results->push_back(batch);
  std::printf(
      "%-24s scalar %8.2f ns/draw  batch %8.2f ns/draw  speedup %5.2fx\n",
      stem.c_str(), 1e9 * comparison.scalar_seconds / draws,
      1e9 * comparison.batch_seconds / draws, comparison.speedup);
}

}  // namespace
}  // namespace bench
}  // namespace randrecon

int main(int argc, char** argv) {
  using namespace randrecon;
  using bench::BenchResult;

  Result<Flags> parsed = Flags::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 2;
  }
  const Flags& flags = parsed.value();
  const auto smoke = flags.GetBool("smoke", false);
  const auto seed = flags.GetInt("seed", 7);
  if (!smoke.ok() || !seed.ok()) {
    std::fprintf(stderr, "bad flag value\n");
    return 2;
  }
  const std::string json_path = flags.GetString("json", "BENCH_rng.json");

  const std::vector<size_t> sizes = smoke.value()
                                        ? std::vector<size_t>{200000}
                                        : std::vector<size_t>{100000, 1000000};
  std::printf("substrate engine: %s\n", stats::philox_internal::ActiveEngine());

  std::vector<BenchResult> results;
  double gaussian_speedup_at_max = 0.0;

  // Warm the engines, the thread pool and the buffers before timing.
  {
    std::vector<double> warm(sizes.back());
    stats::Philox gen(1);
    gen.FillGaussian(warm.data(), warm.size());
    stats::Rng rng(1);
    for (size_t i = 0; i < 1000; ++i) warm[i % warm.size()] = rng.Gaussian();
  }

  for (size_t n : sizes) {
    const int reps = n <= 200000 ? 9 : 5;
    const double draws = static_cast<double>(n);
    const std::string suffix = "/" + std::to_string(n);
    std::vector<double> buffer(n);
    std::vector<uint8_t> bits(n);
    stats::Rng rng(static_cast<uint64_t>(seed.value()));
    stats::Philox gen(static_cast<uint64_t>(seed.value()));

    const bench::Comparison gaussian = bench::Compare(
        reps,
        [&] {
          for (size_t i = 0; i < n; ++i) buffer[i] = rng.Gaussian();
        },
        [&] { gen.FillGaussian(buffer.data(), n); });
    bench::Report(&results, "gaussian" + suffix, draws, gaussian);
    if (n == sizes.back()) gaussian_speedup_at_max = gaussian.speedup;

    const bench::Comparison uniform = bench::Compare(
        reps,
        [&] {
          for (size_t i = 0; i < n; ++i) buffer[i] = rng.Uniform(0.0, 1.0);
        },
        [&] { gen.FillUniform(buffer.data(), n); });
    bench::Report(&results, "uniform" + suffix, draws, uniform);

    const bench::Comparison bernoulli = bench::Compare(
        reps,
        [&] {
          for (size_t i = 0; i < n; ++i) {
            bits[i] = rng.Uniform(0.0, 1.0) < 0.3 ? 1 : 0;
          }
        },
        [&] { gen.FillBernoulli(0.3, bits.data(), n); });
    bench::Report(&results, "bernoulli" + suffix, draws, bernoulli);

    // MVN records: m = 32 attributes, n/32 rows, so both sides consume n
    // Gaussian draws; the factor product is the same blocked kernel in
    // both, isolating the generation substrate.
    const size_t m = 32;
    const size_t rows = n / m;
    stats::Rng cov_rng(99);
    linalg::Matrix g = cov_rng.GaussianMatrix(m, m);
    linalg::Matrix cov(m, m);
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < m; ++j) {
        double dot = 0.0;
        for (size_t k = 0; k < m; ++k) dot += g(i, k) * g(j, k);
        cov(i, j) = dot / m + (i == j ? 1.0 : 0.0);
      }
    }
    auto sampler = stats::MultivariateNormalSampler::CreateZeroMean(cov);
    if (!sampler.ok()) {
      std::fprintf(stderr, "%s\n", sampler.status().ToString().c_str());
      return 1;
    }
    const bench::Comparison sample_matrix = bench::Compare(
        reps,
        [&] { sampler.value().SampleMatrix(rows, &rng); },
        [&] { sampler.value().SampleMatrix(rows, &gen); });
    bench::Report(&results, "sample_matrix" + suffix, static_cast<double>(rows),
                  sample_matrix);
  }

  const bench::BenchConfig config = {
      {"smoke", smoke.value() ? "true" : "false"},
      {"seed", std::to_string(seed.value())},
      {"engine", stats::philox_internal::ActiveEngine()},
      {"min_gaussian_speedup", FormatDouble(bench::kMinGaussianSpeedup, 1)},
  };
  const Status json_status =
      bench::WriteBenchJson(json_path, "micro_rng", config, results);
  if (!json_status.ok()) {
    std::fprintf(stderr, "%s\n", json_status.ToString().c_str());
    return 1;
  }
  std::printf("bench json written to %s\n", json_path.c_str());

  if (gaussian_speedup_at_max < bench::kMinGaussianSpeedup) {
    std::fprintf(stderr,
                 "FAIL: batch Gaussian fill speedup %.2fx < required %.1fx\n",
                 gaussian_speedup_at_max, bench::kMinGaussianSpeedup);
    return 1;
  }
  return 0;
}
