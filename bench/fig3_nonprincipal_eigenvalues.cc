// Regenerates Figure 3 (§7.4): RMSE of UDR / SF / PCA-DR / BE-DR as the
// eigenvalues of the 80 non-principal components grow from 1 to 50
// (m = 100, first 20 eigenvalues fixed at lambda = 400). Expected shape
// (paper): UDR ~flat; SF and PCA-DR rise and eventually cross ABOVE UDR;
// BE-DR rises but converges to UDR from below.

#include "bench/bench_util.h"
#include "common/flags.h"
#include "experiment/figures.h"

int main(int argc, char** argv) {
  randrecon::Stopwatch stopwatch;
  randrecon::experiment::Figure3Config config;
  config.residual_eigenvalues = {1.0,  5.0,  10.0, 15.0, 20.0, 25.0,
                                 30.0, 35.0, 40.0, 45.0, 50.0};
  config.common.num_trials = 3;
  if (int rc = randrecon::bench::ApplyCommonFlags(argc, argv, &config.common);
      rc != 0) {
    return rc;
  }
  std::printf(
      "Reproduces: Figure 3 'Experiment 3: Increase the Eigenvalues of the "
      "non-Principal Components'\n"
      "Setup: m = %zu, first %zu eigenvalues = %.0f, n = %zu, sigma = %.1f, "
      "%zu trials/point\n\n",
      config.num_attributes, config.num_principal, config.principal_eigenvalue,
      config.common.num_records, config.common.noise_stddev,
      config.common.num_trials);
  return randrecon::bench::ReportExperiment(
      randrecon::experiment::RunFigure3(config),
      "fig3_nonprincipal_eigenvalues.csv", stopwatch, &config.common);
}
