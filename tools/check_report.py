#!/usr/bin/env python3
"""Validates a randrecon run report (docs/REPORT_SCHEMA.md).

Usage: check_report.py report.json [report2.json ...]
       check_report.py --series DIR [--manifest STORE.rrcm] [--sweep SWEEP.json]

Checks every report against the schema_version-1 layout — required keys,
value types, histogram invariants, span-tree topology — and, for tools
whose sections it knows (sweep_attack, convert_csv, ingest_load,
attack_scheduler), cross-checks the telemetry counters against the
tool's own accounting: every job, retry and excluded shard counted
exactly once, and for ingest runs the overload-safety identity
shed + appended == offered (batch- and row-wise, with every shed
attributed to a cause). Stdlib only, so CI can run it on a bare python3.

--series DIR validates an AttackScheduler report directory as a whole:
every report-NNNNNN.json individually, strictly increasing versions
with no gap, exact row-delta chaining between surviving reports, the
cycle-attribution identity inside every report_series block, and the
latest.json pointer. With --manifest, the newest report's snapshot
identity is checked against the store's actual manifest bytes (trailing
RRH64 hash and row count). With --sweep, the newest report's
whole-stream attack numbers must be EXACTLY equal (%.17g round-trips
doubles, so float equality here is bitwise equality) to an offline
sweep_attack report over the same manifest.

Exit status: 0 iff every report validates; failures name the report and
the violated invariant.
"""

import json
import os
import re
import struct
import sys

SCHEMA_VERSION = 2
TOP_LEVEL_KEYS = ["schema_version", "tool", "build_info", "config",
                  "counters", "gauges", "histograms", "spans"]
HISTOGRAM_KEYS = {"count", "sum", "min", "max", "p50", "p95", "p99"}
BUILD_INFO_STRING_KEYS = ["git_describe", "compiler", "flags", "build_type",
                          "simd_compiled", "simd_dispatch"]


class ReportError(Exception):
    """One violated invariant, with enough context to locate it."""


def require(condition, message):
    if not condition:
        raise ReportError(message)


def check_common(report):
    for key in TOP_LEVEL_KEYS:
        require(key in report, f"missing top-level key '{key}'")
    require(report["schema_version"] == SCHEMA_VERSION,
            f"schema_version is {report['schema_version']}, "
            f"expected {SCHEMA_VERSION}")
    require(isinstance(report["tool"], str) and report["tool"],
            "tool must be a non-empty string")

    # v2: every report pins its binary's provenance (common/build_info.h).
    build_info = report["build_info"]
    require(isinstance(build_info, dict), "build_info must be an object")
    for key in BUILD_INFO_STRING_KEYS:
        require(isinstance(build_info.get(key), str) and build_info[key],
                f"build_info.{key} must be a non-empty string")
    require(isinstance(build_info.get("metrics_disabled"), bool),
            "build_info.metrics_disabled must be a bool")
    require(build_info["simd_dispatch"] in ("avx512", "avx2", "scalar"),
            f"build_info.simd_dispatch must name a philox engine, got "
            f"{build_info['simd_dispatch']!r}")

    require(isinstance(report["config"], dict), "config must be an object")

    counters = report["counters"]
    require(isinstance(counters, dict), "counters must be an object")
    for name, value in counters.items():
        require(isinstance(value, int) and value >= 0,
                f"counter '{name}' must be a non-negative integer, "
                f"got {value!r}")

    gauges = report["gauges"]
    require(isinstance(gauges, dict), "gauges must be an object")
    for name, value in gauges.items():
        require(isinstance(value, int),
                f"gauge '{name}' must be an integer, got {value!r}")

    histograms = report["histograms"]
    require(isinstance(histograms, dict), "histograms must be an object")
    for name, hist in histograms.items():
        require(isinstance(hist, dict) and set(hist) == HISTOGRAM_KEYS,
                f"histogram '{name}' must have exactly keys "
                f"{sorted(HISTOGRAM_KEYS)}")
        for key in HISTOGRAM_KEYS:
            require(isinstance(hist[key], int) and hist[key] >= 0,
                    f"histogram '{name}'.{key} must be a non-negative "
                    f"integer")
        if hist["count"] == 0:
            require(hist["sum"] == 0 and hist["max"] == 0,
                    f"empty histogram '{name}' must have zero sum/max")
        else:
            require(hist["min"] <= hist["p50"] <= hist["p95"]
                    <= hist["p99"] <= hist["max"],
                    f"histogram '{name}' percentiles must be ordered "
                    f"min <= p50 <= p95 <= p99 <= max")
            require(hist["sum"] >= hist["max"],
                    f"histogram '{name}' sum must be >= max")

    spans = report["spans"]
    require(isinstance(spans, list), "spans must be an array")
    for i, span in enumerate(spans):
        require(isinstance(span, dict), f"span {i} must be an object")
        for key, kind in [("name", str), ("start_ns", int),
                          ("duration_ns", int), ("parent", int),
                          ("thread", int)]:
            require(isinstance(span.get(key), kind),
                    f"span {i} needs {kind.__name__} '{key}'")
        require(-1 <= span["parent"] < i,
                f"span {i} parent {span['parent']} must be -1 or an "
                f"earlier index (topological order)")
        if span["parent"] >= 0:
            require(spans[span["parent"]]["thread"] == span["thread"],
                    f"span {i} and its parent must share a thread")


def check_sweep_attack(report):
    counters = report["counters"]
    config = report["config"]
    jobs = report.get("jobs")
    exclusions = report.get("exclusions")
    require(isinstance(jobs, list), "sweep_attack report needs a 'jobs' array")
    require(isinstance(exclusions, list),
            "sweep_attack report needs an 'exclusions' array")

    for i, job in enumerate(jobs):
        for key, kind in [("name", str), ("ok", bool), ("status", str),
                          ("records", int), ("attributes", int),
                          ("components", int), ("attempts", int)]:
            require(isinstance(job.get(key), kind),
                    f"job {i} needs {kind.__name__} '{key}'")
    for i, excl in enumerate(exclusions):
        for key, kind in [("manifest", str), ("shard_index", int),
                          ("shard_path", str), ("row_begin", int),
                          ("row_count", int), ("reason", str)]:
            require(isinstance(excl.get(key), kind),
                    f"exclusion {i} needs {kind.__name__} '{key}'")

    # Every job, retry and excluded shard accounted exactly once.
    require(config.get("jobs_total") == len(jobs),
            f"config.jobs_total {config.get('jobs_total')} != "
            f"{len(jobs)} jobs listed")
    failed = sum(1 for job in jobs if not job["ok"])
    require(config.get("jobs_failed") == failed,
            f"config.jobs_failed {config.get('jobs_failed')} != "
            f"{failed} failing jobs listed")
    require(counters.get("pipeline.jobs_run") == len(jobs),
            f"pipeline.jobs_run {counters.get('pipeline.jobs_run')} != "
            f"{len(jobs)} jobs listed")
    require(counters.get("pipeline.jobs_ok") == len(jobs) - failed,
            "pipeline.jobs_ok does not match the jobs listed as ok")
    require(counters.get("pipeline.jobs_failed") == failed,
            "pipeline.jobs_failed does not match the jobs listed as failed")
    retries = sum(max(job["attempts"] - 1, 0) for job in jobs)
    require(counters.get("pipeline.job_retries") == retries,
            f"pipeline.job_retries {counters.get('pipeline.job_retries')} "
            f"!= {retries} retries implied by job attempts")
    require(counters.get("pipeline.shards_excluded") == len(exclusions),
            f"pipeline.shards_excluded "
            f"{counters.get('pipeline.shards_excluded')} != "
            f"{len(exclusions)} exclusions listed")
    hist = report["histograms"].get("pipeline.job_wall_nanos")
    require(hist is not None and hist["count"] == len(jobs),
            "pipeline.job_wall_nanos must hold one sample per job")

    # Snapshot provenance (rolling stores): every parsed manifest the
    # sweep attacked is pinned by path + row count.
    snapshots = report.get("snapshots")
    if snapshots is not None:
        require(isinstance(snapshots, list), "'snapshots' must be an array")
        for i, snap in enumerate(snapshots):
            for key, kind in [("manifest", str), ("rows", int),
                              ("shards", int)]:
                require(isinstance(snap.get(key), kind),
                        f"snapshot {i} needs {kind.__name__} '{key}'")
            require(snap["rows"] >= 0 and snap["shards"] >= 1,
                    f"snapshot {i} must name at least one shard")


def check_ingest_load(report):
    """The overload-safety contract (docs/ARCHITECTURE.md contract 8):
    every offered batch is appended or shed — never dropped silently,
    never blocked forever — and the telemetry agrees with the tool's
    own accounting, batch-wise and row-wise."""
    config = report["config"]
    counters = report["counters"]
    gauges = report["gauges"]
    for key in ["store", "producers", "batches_offered", "batches_appended",
                "batches_shed", "rows_offered", "rows_appended", "rows_shed",
                "published_rows", "published_shards"]:
        require(key in config, f"ingest_load report needs config.{key}")

    # The accounting identity, from the tool's own view...
    require(config["batches_offered"]
            == config["batches_appended"] + config["batches_shed"],
            "config: offered != appended + shed (batches)")
    require(config["rows_offered"]
            == config["rows_appended"] + config["rows_shed"],
            "config: offered != appended + shed (rows)")
    # ...and from the process-global ingest.* counters, which must agree.
    for name in ["ingest.offered", "ingest.appended", "ingest.shed",
                 "ingest.rows_offered", "ingest.rows_appended",
                 "ingest.rows_shed", "ingest.rotations",
                 "ingest.manifest_publishes"]:
        require(name in counters, f"ingest_load report needs counter {name}")
    require(counters["ingest.offered"]
            == counters["ingest.appended"] + counters["ingest.shed"],
            "counters: ingest.offered != ingest.appended + ingest.shed")
    require(counters["ingest.rows_offered"]
            == counters["ingest.rows_appended"] + counters["ingest.rows_shed"],
            "counters: ingest row identity violated")
    for batch_key, counter in [("batches_offered", "ingest.offered"),
                               ("batches_appended", "ingest.appended"),
                               ("batches_shed", "ingest.shed"),
                               ("rows_appended", "ingest.rows_appended")]:
        require(config[batch_key] == counters[counter],
                f"config.{batch_key} != counter {counter}")
    # Sheds are attributed to exactly one cause.
    shed_causes = (counters.get("ingest.shed_admission", 0)
                   + counters.get("ingest.shed_expired", 0)
                   + counters.get("ingest.shed_store_error", 0))
    require(shed_causes == counters["ingest.shed"],
            "shed-cause counters do not sum to ingest.shed")

    # The queue fully drained (Close's contract) and the published
    # gauge matches what the tool reported.
    require(gauges.get("ingest.queue_depth") == 0,
            "ingest.queue_depth must be 0 after Close")
    require(gauges.get("ingest.published_rows") == config["published_rows"],
            "ingest.published_rows gauge != config.published_rows")
    require(config["rows_appended"] == config["published_rows"],
            "appended rows must all be published at Close")

    # Append latency: one sample per appended batch, plus at most the
    # store-error batches that failed inside Append before the error
    # stuck.
    hist = report["histograms"].get("ingest.append_nanos")
    require(hist is not None,
            "ingest_load report needs histogram ingest.append_nanos")
    require(hist["count"] >= config["batches_appended"],
            "ingest.append_nanos undercounts appended batches")
    require(hist["count"] - config["batches_appended"]
            <= counters.get("ingest.shed_store_error", 0),
            "ingest.append_nanos holds samples no batch accounts for")


SERIES_KEYS = ["version", "manifest", "manifest_hash", "snapshot_rows",
               "snapshot_shards", "rows_since_last_report", "prev_version",
               "prev_rows", "outcome", "cycles", "cycles_ok",
               "cycles_degraded", "cycles_failed", "skipped_no_manifest",
               "skipped_unchanged", "overruns", "reports_published"]


def check_attack_scheduler(report):
    """One report of the scheduler's series: the per-job/exclusion shapes
    it shares with sweep_attack, the report_series identity block, and
    the within-report cycle-attribution arithmetic."""
    config = report["config"]
    jobs = report.get("jobs")
    exclusions = report.get("exclusions")
    series = report.get("report_series")
    require(isinstance(jobs, list) and jobs,
            "attack_scheduler report needs a non-empty 'jobs' array")
    require(isinstance(exclusions, list),
            "attack_scheduler report needs an 'exclusions' array")
    require(isinstance(series, dict),
            "attack_scheduler report needs a 'report_series' object")

    for i, job in enumerate(jobs):
        for key, kind in [("name", str), ("ok", bool), ("status", str),
                          ("records", int), ("attributes", int),
                          ("components", int), ("attempts", int)]:
            require(isinstance(job.get(key), kind),
                    f"job {i} needs {kind.__name__} '{key}'")
    for i, excl in enumerate(exclusions):
        for key, kind in [("manifest", str), ("shard_index", int),
                          ("shard_path", str), ("row_begin", int),
                          ("row_count", int), ("reason", str)]:
            require(isinstance(excl.get(key), kind),
                    f"exclusion {i} needs {kind.__name__} '{key}'")

    for key in SERIES_KEYS:
        require(key in series, f"report_series needs '{key}'")
    require(re.fullmatch(r"0x[0-9a-f]{16}", series["manifest_hash"]),
            f"manifest_hash {series['manifest_hash']!r} is not a "
            f"0x-prefixed 16-digit hex digest")
    require(series["version"] == config.get("version"),
            "report_series.version != config.version")
    require(series["version"] >= 1, "versions start at 1")
    require(series["outcome"] in ("ok", "degraded"),
            f"a published report's outcome must be ok or degraded, "
            f"got {series['outcome']!r}")
    require(config.get("degraded") == (series["outcome"] == "degraded"),
            "config.degraded disagrees with report_series.outcome")

    # The attribution identity, exact as of this report committing.
    require(series["cycles"] == series["cycles_ok"]
            + series["cycles_degraded"] + series["cycles_failed"],
            "cycles != cycles_ok + cycles_degraded + cycles_failed")
    require(series["reports_published"]
            == series["cycles_ok"] + series["cycles_degraded"],
            "reports_published != cycles_ok + cycles_degraded")
    require(series["reports_published"] >= 1,
            "a published report counts itself")

    # The row-delta chain, within this report's own claims.
    require(series["rows_since_last_report"]
            == series["snapshot_rows"] - series["prev_rows"],
            "rows_since_last_report != snapshot_rows - prev_rows")
    require(series["prev_version"] < series["version"],
            "prev_version must precede this version")
    require(series["snapshot_shards"] >= 1,
            "a published report names at least one shard")

    # The whole-stream job leads; a degraded report's leader failed and
    # at least one shard job succeeded.
    failed = sum(1 for job in jobs if not job["ok"])
    require(config.get("jobs_total") == len(jobs),
            f"config.jobs_total {config.get('jobs_total')} != "
            f"{len(jobs)} jobs listed")
    require(config.get("jobs_failed") == failed,
            f"config.jobs_failed {config.get('jobs_failed')} != "
            f"{failed} failing jobs listed")
    if series["outcome"] == "ok":
        require(jobs[0]["ok"], "an ok report's whole-stream job must be ok")
        require(jobs[0]["records"] == series["snapshot_rows"],
                "whole-stream job records != snapshot_rows")
    else:
        require(not jobs[0]["ok"],
                "a degraded report's whole-stream job must have failed")
        require(any(job["ok"] for job in jobs[1:]),
                "a degraded report needs at least one healthy shard job")


def check_convert_csv(report):
    config = report["config"]
    counters = report["counters"]
    for key in ["input", "output", "records"]:
        require(key in config, f"convert_csv report needs config.{key}")
    require(isinstance(config["records"], int) and config["records"] >= 0,
            "config.records must be a non-negative integer")
    if config["output"].endswith(".rrcs") or config["output"].endswith(".rrcm"):
        require(counters.get("store.blocks_written", 0) > 0,
                "a store-writing conversion must write at least one block")


def check_report(path):
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    check_common(report)
    tool = report["tool"]
    if tool == "sweep_attack":
        check_sweep_attack(report)
    elif tool == "convert_csv":
        check_convert_csv(report)
    elif tool == "ingest_load":
        check_ingest_load(report)
    elif tool == "attack_scheduler":
        check_attack_scheduler(report)
    return tool


def check_series(directory, manifest_path=None, sweep_path=None):
    """The whole report directory: every report individually, strict
    version order with no gap among the surviving files, exact row-delta
    chaining, and the latest.json pointer. Optionally pins the newest
    report to the store's actual manifest bytes and to an offline
    sweep_attack run (exact float equality — %.17g round-trips)."""
    versions = {}
    for name in sorted(os.listdir(directory)):
        match = re.fullmatch(r"report-(\d+)\.json", name)
        if not match:
            continue
        path = os.path.join(directory, name)
        tool = check_report(path)
        require(tool == "attack_scheduler",
                f"{name}: tool is {tool!r}, expected attack_scheduler")
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
        series = report["report_series"]
        require(series["version"] == int(match.group(1)),
                f"{name}: report_series.version {series['version']} does "
                f"not match the file name")
        versions[series["version"]] = (name, series, report)
    require(versions, f"{directory}: no report-NNNNNN.json files")

    ordered = sorted(versions)
    # Retention trims the OLD end only: surviving versions are contiguous.
    require(ordered == list(range(ordered[0], ordered[-1] + 1)),
            f"series has a version gap: {ordered}")
    for version in ordered:
        name, series, _ = versions[version]
        prev = series["prev_version"]
        require(prev < version, f"{name}: prev_version {prev} >= {version}")
        if prev in versions:
            _, prev_series, _ = versions[prev]
            require(series["prev_rows"] == prev_series["snapshot_rows"],
                    f"{name}: prev_rows {series['prev_rows']} != report "
                    f"{prev}'s snapshot_rows "
                    f"{prev_series['snapshot_rows']} — the row-delta "
                    f"chain is broken")
            require(series["manifest"] == prev_series["manifest"],
                    f"{name}: manifest changed mid-series")

    latest_path = os.path.join(directory, "latest.json")
    with open(latest_path, "r", encoding="utf-8") as handle:
        latest = json.load(handle)
    require(latest.get("version") == ordered[-1],
            f"latest.json points at {latest.get('version')}, newest "
            f"report is {ordered[-1]}")
    require(latest.get("path") == versions[ordered[-1]][0],
            "latest.json path does not name the newest report file")

    newest_name, newest_series, newest_report = versions[ordered[-1]]
    if manifest_path is not None:
        with open(manifest_path, "rb") as handle:
            raw = handle.read()
        require(len(raw) >= 24 and raw[:8] == b"RRSHMANF",
                f"{manifest_path}: not a shard manifest")
        num_records = struct.unpack_from("<Q", raw, 16)[0]
        stored_hash = struct.unpack_from("<Q", raw, len(raw) - 8)[0]
        require(int(newest_series["manifest_hash"], 16) == stored_hash,
                f"{newest_name}: manifest_hash != the store manifest's "
                f"own trailing hash — the report names a snapshot that "
                f"is not the published one")
        require(newest_series["snapshot_rows"] == num_records,
                f"{newest_name}: snapshot_rows "
                f"{newest_series['snapshot_rows']} != manifest rows "
                f"{num_records}")

    if sweep_path is not None:
        require(check_report(sweep_path) == "sweep_attack",
                f"{sweep_path}: --sweep needs a sweep_attack report")
        with open(sweep_path, "r", encoding="utf-8") as handle:
            sweep = json.load(handle)
        scheduled = newest_report["jobs"][0]
        offline = sweep["jobs"][0]
        require(scheduled["ok"] and offline["ok"],
                "bitwise comparison needs both whole-stream jobs ok")
        for key in ["records", "attributes", "components",
                    "rmse_vs_disguised"]:
            require(scheduled[key] == offline[key],
                    f"{newest_name}: scheduled {key} {scheduled[key]!r} != "
                    f"offline sweep {key} {offline[key]!r} — the "
                    f"scheduler changed the numbers")
    return len(ordered)


def main(argv):
    args = argv[1:]
    if "--series" in args:
        values = {}
        rest = []
        i = 0
        while i < len(args):
            if args[i] in ("--series", "--manifest", "--sweep"):
                if i + 1 >= len(args):
                    print(f"{args[i]} needs a value", file=sys.stderr)
                    return 2
                values[args[i]] = args[i + 1]
                i += 2
            else:
                rest.append(args[i])
                i += 1
        if rest:
            print(f"unexpected arguments with --series: {rest}",
                  file=sys.stderr)
            return 2
        directory = values["--series"]
        try:
            count = check_series(directory, values.get("--manifest"),
                                 values.get("--sweep"))
            print(f"{directory}: OK ({count} report(s) in series)")
            return 0
        except (ReportError, OSError, json.JSONDecodeError, KeyError) \
                as error:
            print(f"{directory}: FAIL: {error}", file=sys.stderr)
            return 1
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    for path in args:
        try:
            tool = check_report(path)
            print(f"{path}: OK ({tool})")
        except (ReportError, OSError, json.JSONDecodeError) as error:
            print(f"{path}: FAIL: {error}", file=sys.stderr)
            failures += 1
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
