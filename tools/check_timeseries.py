#!/usr/bin/env python3
"""Validates a MetricsRecorder time series (docs/OBSERVABILITY.md).

Usage: check_timeseries.py --series DIR [--report report.json]
       check_timeseries.py metrics-000001.jsonl [more.jsonl ...]

A series is a directory of metrics-NNNNNN.jsonl files: one JSON object
per line, {"seq":N,"t_nanos":T,"counters":{...},"gauges":{...},
"histograms":{...}} — the metrics members being exactly what
metrics::SnapshotJson() renders (and what run reports embed, so this
tool and check_report.py parse the same shapes). Checks:

  * file names and contiguity — retention trims the OLD end only, so
    the surviving indices form one gap-free range;
  * per-sample schema — exact key set, value types, the histogram
    percentile ordering min <= p50 <= p95 <= p99 <= max;
  * run boundaries — seq restarts at 1 when a new recorder takes over
    the series, and increments by exactly 1 within a run;
  * monotone time — t_nanos never decreases within a run (runs may
    restart the clock: fake-clock harnesses start at 0);
  * counter monotonicity — counters never decrease within a run;
  * histogram monotone slack — count/sum/max never decrease and min
    never increases (between samples with data) within a run: the
    recorder snapshots live histograms, so successive samples may each
    lag reality, but they may never contradict each other.

With --report, the FINAL sample must reconcile EXACTLY with the run
report: its counters/gauges/histograms objects equal the report's.
That gate only holds when the daemon honored the ordering contract —
quiesce, write the report, then MetricsRecorder::Close() — which is
precisely what it is here to enforce. Stdlib only, so CI can run it on
a bare python3.

Exit status: 0 iff the series validates; failures name the file, line
and violated invariant.
"""

import json
import os
import re
import sys

SAMPLE_KEYS = {"seq", "t_nanos", "counters", "gauges", "histograms"}
HISTOGRAM_KEYS = {"count", "sum", "min", "max", "p50", "p95", "p99"}


class SeriesError(Exception):
    """One violated invariant, with enough context to locate it."""


def require(condition, message):
    if not condition:
        raise SeriesError(message)


def check_sample(sample, where):
    require(isinstance(sample, dict) and set(sample) == SAMPLE_KEYS,
            f"{where}: sample must have exactly keys {sorted(SAMPLE_KEYS)}")
    require(isinstance(sample["seq"], int) and sample["seq"] >= 1,
            f"{where}: seq must be a positive integer")
    require(isinstance(sample["t_nanos"], int) and sample["t_nanos"] >= 0,
            f"{where}: t_nanos must be a non-negative integer")
    require(isinstance(sample["counters"], dict),
            f"{where}: counters must be an object")
    for name, value in sample["counters"].items():
        require(isinstance(value, int) and value >= 0,
                f"{where}: counter '{name}' must be a non-negative integer")
    require(isinstance(sample["gauges"], dict),
            f"{where}: gauges must be an object")
    for name, value in sample["gauges"].items():
        require(isinstance(value, int),
                f"{where}: gauge '{name}' must be an integer")
    require(isinstance(sample["histograms"], dict),
            f"{where}: histograms must be an object")
    for name, hist in sample["histograms"].items():
        require(isinstance(hist, dict) and set(hist) == HISTOGRAM_KEYS,
                f"{where}: histogram '{name}' must have exactly keys "
                f"{sorted(HISTOGRAM_KEYS)}")
        for key in HISTOGRAM_KEYS:
            require(isinstance(hist[key], int) and hist[key] >= 0,
                    f"{where}: histogram '{name}'.{key} must be a "
                    f"non-negative integer")
        if hist["count"] == 0:
            require(hist["sum"] == 0 and hist["max"] == 0,
                    f"{where}: empty histogram '{name}' must have zero "
                    f"sum/max")
        else:
            require(hist["min"] <= hist["p50"] <= hist["p95"]
                    <= hist["p99"] <= hist["max"],
                    f"{where}: histogram '{name}' percentiles must be "
                    f"ordered min <= p50 <= p95 <= p99 <= max")


def check_progression(prev, sample, where):
    """Within-run invariants between two consecutive samples."""
    require(sample["seq"] == prev["seq"] + 1,
            f"{where}: seq {sample['seq']} does not follow {prev['seq']} "
            f"(within a run it increments by exactly 1)")
    require(sample["t_nanos"] >= prev["t_nanos"],
            f"{where}: t_nanos {sample['t_nanos']} went backwards from "
            f"{prev['t_nanos']}")
    for name, value in prev["counters"].items():
        if name in sample["counters"]:
            require(sample["counters"][name] >= value,
                    f"{where}: counter '{name}' decreased "
                    f"{value} -> {sample['counters'][name]}")
    for name, hist in prev["histograms"].items():
        cur = sample["histograms"].get(name)
        if cur is None:
            continue
        for key in ("count", "sum", "max"):
            require(cur[key] >= hist[key],
                    f"{where}: histogram '{name}'.{key} decreased "
                    f"{hist[key]} -> {cur[key]}")
        if hist["count"] > 0 and cur["count"] > 0:
            require(cur["min"] <= hist["min"],
                    f"{where}: histogram '{name}'.min increased "
                    f"{hist['min']} -> {cur['min']}")


def load_samples(paths):
    """All samples of `paths` in order, schema-checked, with locations."""
    samples = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        require(lines, f"{path}: a published series file is never empty")
        for lineno, line in enumerate(lines, start=1):
            where = f"{path}:{lineno}"
            try:
                sample = json.loads(line)
            except json.JSONDecodeError as error:
                raise SeriesError(f"{where}: not valid JSON: {error}")
            check_sample(sample, where)
            samples.append((where, sample))
    return samples


def check_files(paths):
    """One ordered list of series files as a single stream of runs.
    Returns (num_samples, num_runs, final_sample)."""
    samples = load_samples(paths)
    runs = 0
    prev = None
    for where, sample in samples:
        if sample["seq"] == 1:
            runs += 1       # A new recorder took over: a run boundary.
            prev = None
        require(prev is not None or sample["seq"] == 1,
                f"{where}: a run must start at seq 1, got {sample['seq']}")
        if prev is not None:
            check_progression(prev, sample, where)
        prev = sample
    return len(samples), runs, samples[-1][1]


def check_series(directory, report_path=None):
    """The whole series directory, plus the exact final-sample-vs-report
    reconciliation when --report names the daemon's run report."""
    indices = {}
    for name in sorted(os.listdir(directory)):
        match = re.fullmatch(r"metrics-(\d{6})\.jsonl", name)
        if not match:
            continue
        indices[int(match.group(1))] = os.path.join(directory, name)
    require(indices, f"{directory}: no metrics-NNNNNN.jsonl files")
    ordered = sorted(indices)
    # Retention trims the OLD end only: surviving indices are contiguous.
    require(ordered == list(range(ordered[0], ordered[-1] + 1)),
            f"{directory}: series has an index gap: {ordered}")
    count, runs, final = check_files([indices[i] for i in ordered])

    if report_path is not None:
        with open(report_path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
        for section in ("counters", "gauges", "histograms"):
            require(final[section] == report.get(section),
                    f"final sample's {section} do not reconcile exactly "
                    f"with {report_path} — the daemon broke the "
                    f"quiesce/report/Close ordering contract")
    return count, runs


def main(argv):
    args = argv[1:]
    values = {}
    rest = []
    i = 0
    while i < len(args):
        if args[i] in ("--series", "--report"):
            if i + 1 >= len(args):
                print(f"{args[i]} needs a value", file=sys.stderr)
                return 2
            values[args[i]] = args[i + 1]
            i += 2
        else:
            rest.append(args[i])
            i += 1
    if "--series" in values:
        if rest:
            print(f"unexpected arguments with --series: {rest}",
                  file=sys.stderr)
            return 2
        directory = values["--series"]
        try:
            count, runs = check_series(directory, values.get("--report"))
            reconciled = " (reconciled with report)" if "--report" in values \
                else ""
            print(f"{directory}: OK ({count} sample(s), {runs} run(s))"
                  f"{reconciled}")
            return 0
        except (SeriesError, OSError, json.JSONDecodeError) as error:
            print(f"{directory}: FAIL: {error}", file=sys.stderr)
            return 1
    if "--report" in values:
        print("--report needs --series", file=sys.stderr)
        return 2
    if not rest:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        count, runs = check_files(rest)[:2]
        print(f"OK ({count} sample(s), {runs} run(s))")
        return 0
    except (SeriesError, OSError) as error:
        print(f"FAIL: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
