#!/usr/bin/env python3
"""Scrapes a randrecon stats server and validates every endpoint.

Usage: scrape_stats.py --port PORT [--host 127.0.0.1]

Fetches the five endpoints of the live introspection plane
(docs/OBSERVABILITY.md) and checks each response:

  /healthz   body is exactly "ok";
  /varz      JSON with counters/gauges/histograms objects (the same
             shapes check_report.py validates in run reports);
  /metricsz  Prometheus text exposition v0.0.4: every sample named
             [a-zA-Z_:][a-zA-Z0-9_:]*, preceded by a # TYPE line for
             its family; histogram bucket values cumulative and
             non-decreasing, ending at le="+Inf" == the family's
             _count, with _sum present;
  /statusz   JSON with a build_info object (git_describe, compiler,
             simd fields), uptime, armed_failpoints array, sections;
  /tracez    JSON with a captures array of {id,label,spans} objects.

Also checks that an unknown path answers 404. Stdlib only (http.client)
so CI can run it on a bare python3 right after curling the same port.

Exit status: 0 iff every endpoint validates; failures name the endpoint
and the violated invariant.
"""

import http.client
import json
import re
import sys

METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
SAMPLE_LINE = re.compile(
    r"(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? (?P<value>\S+)")
TYPE_LINE = re.compile(
    r"# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) "
    r"(?P<type>counter|gauge|histogram|summary|untyped)")


class ScrapeError(Exception):
    """One violated invariant, with enough context to locate it."""


def require(condition, message):
    if not condition:
        raise ScrapeError(message)


def fetch(host, port, path):
    """(status, body) of one GET; a fresh connection per request
    (the server answers Connection: close)."""
    connection = http.client.HTTPConnection(host, port, timeout=10)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, response.read().decode("utf-8")
    finally:
        connection.close()


def base_family(name):
    """The histogram family of a _bucket/_sum/_count sample name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check_exposition(body):
    """Prometheus text exposition v0.0.4 — returns the family count."""
    types = {}
    histograms = {}   # family -> list of (le, value)
    sums = {}
    counts = {}
    for lineno, line in enumerate(body.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("#"):
            match = TYPE_LINE.fullmatch(line)
            require(match is not None,
                    f"/metricsz:{lineno}: malformed comment {line!r} "
                    f"(only # TYPE is emitted)")
            name = match.group("name")
            require(name not in types,
                    f"/metricsz:{lineno}: duplicate # TYPE for {name}")
            types[name] = match.group("type")
            continue
        match = SAMPLE_LINE.fullmatch(line)
        require(match is not None,
                f"/metricsz:{lineno}: malformed sample line {line!r}")
        name = match.group("name")
        family = base_family(name)
        require(family in types,
                f"/metricsz:{lineno}: sample {name} has no preceding "
                f"# TYPE for {family}")
        value = float(match.group("value"))
        require(value == value, f"/metricsz:{lineno}: NaN value")
        if types[family] == "histogram":
            if name == family + "_bucket":
                labels = match.group("labels") or ""
                le = re.fullmatch(r'le="([^"]*)"', labels)
                require(le is not None,
                        f"/metricsz:{lineno}: histogram bucket needs "
                        f"exactly an le label, got {labels!r}")
                histograms.setdefault(family, []).append(
                    (le.group(1), value))
            elif name == family + "_sum":
                sums[family] = value
            elif name == family + "_count":
                counts[family] = value
            else:
                raise ScrapeError(
                    f"/metricsz:{lineno}: unexpected histogram sample "
                    f"{name}")
        else:
            require(match.group("labels") is None,
                    f"/metricsz:{lineno}: unexpected labels on {name}")

    for family, buckets in histograms.items():
        require(family in sums, f"/metricsz: {family} has no _sum")
        require(family in counts, f"/metricsz: {family} has no _count")
        require(buckets[-1][0] == "+Inf",
                f"/metricsz: {family} buckets must end at le=\"+Inf\"")
        previous = -1.0
        bounds = []
        for le, value in buckets:
            require(value >= previous,
                    f"/metricsz: {family} buckets must be cumulative "
                    f"(le={le} went {previous} -> {value})")
            previous = value
            bounds.append(le)
        require(bounds == sorted(set(bounds),
                                 key=lambda b: float("inf")
                                 if b == "+Inf" else float(b)),
                f"/metricsz: {family} bucket bounds must strictly "
                f"increase, got {bounds}")
        require(buckets[-1][1] == counts[family],
                f"/metricsz: {family} le=\"+Inf\" {buckets[-1][1]} != "
                f"_count {counts[family]}")
    return len(types)


def check_metrics_json(document, where):
    for section in ("counters", "gauges", "histograms"):
        require(isinstance(document.get(section), dict),
                f"{where}: needs a {section} object")


def scrape(host, port):
    status, body = fetch(host, port, "/healthz")
    require(status == 200 and body.strip() == "ok",
            f"/healthz: expected 200 'ok', got {status} {body!r}")

    status, body = fetch(host, port, "/varz")
    require(status == 200, f"/varz: status {status}")
    check_metrics_json(json.loads(body), "/varz")

    status, body = fetch(host, port, "/metricsz")
    require(status == 200, f"/metricsz: status {status}")
    families = check_exposition(body)
    require(families > 0, "/metricsz: no metric families at all")

    status, body = fetch(host, port, "/statusz")
    require(status == 200, f"/statusz: status {status}")
    statusz = json.loads(body)
    build_info = statusz.get("build_info")
    require(isinstance(build_info, dict), "/statusz: needs build_info")
    for key in ("git_describe", "compiler", "flags", "build_type",
                "simd_compiled", "simd_dispatch"):
        require(isinstance(build_info.get(key), str),
                f"/statusz: build_info needs string '{key}'")
    require(isinstance(build_info.get("metrics_disabled"), bool),
            "/statusz: build_info needs bool metrics_disabled")
    require(isinstance(statusz.get("uptime_nanos"), int)
            and statusz["uptime_nanos"] >= 0,
            "/statusz: needs non-negative uptime_nanos")
    require(isinstance(statusz.get("armed_failpoints"), list),
            "/statusz: needs an armed_failpoints array")
    require(isinstance(statusz.get("sections"), dict),
            "/statusz: needs a sections object")

    status, body = fetch(host, port, "/tracez")
    require(status == 200, f"/tracez: status {status}")
    tracez = json.loads(body)
    captures = tracez.get("captures")
    require(isinstance(captures, list), "/tracez: needs a captures array")
    for i, capture in enumerate(captures):
        for key, kind in [("id", int), ("label", str), ("spans", list)]:
            require(isinstance(capture.get(key), kind),
                    f"/tracez: capture {i} needs {kind.__name__} '{key}'")

    status, _ = fetch(host, port, "/no-such-endpoint")
    require(status == 404,
            f"unknown path: expected 404, got {status}")
    return families, len(captures)


def main(argv):
    args = argv[1:]
    values = {"--host": "127.0.0.1"}
    i = 0
    while i < len(args):
        if args[i] in ("--port", "--host"):
            if i + 1 >= len(args):
                print(f"{args[i]} needs a value", file=sys.stderr)
                return 2
            values[args[i]] = args[i + 1]
            i += 2
        else:
            print(f"unexpected argument {args[i]!r}", file=sys.stderr)
            return 2
    if "--port" not in values:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    host = values["--host"]
    port = int(values["--port"])
    try:
        families, captures = scrape(host, port)
        print(f"{host}:{port}: OK ({families} metric familie(s), "
              f"{captures} trace capture(s))")
        return 0
    except (ScrapeError, OSError, json.JSONDecodeError, ValueError) \
            as error:
        print(f"{host}:{port}: FAIL: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
