#!/usr/bin/env python3
"""Fail on dead relative links in markdown files.

Usage: check_doc_links.py FILE.md [FILE.md ...]

Checks every inline markdown link/image `[text](target)` whose target is
a relative path: the referenced file or directory must exist relative to
the directory of the markdown file containing the link. External
schemes (http/https/mailto) and pure in-page anchors (#...) are skipped;
a `path#fragment` target is checked for the path part only.

Exit status: 0 if every link resolves, 1 otherwise (each dead link is
printed as `file:line: dead link -> target`). Run from anywhere; paths
resolve against each markdown file's own location. CI runs this over
README.md and docs/*.md.
"""

import re
import sys
from pathlib import Path

# Inline links and images: [text](target) / ![alt](target). Targets with
# spaces or an optional "title" part are cut at the first whitespace.
LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# Inline code spans are blanked before link matching: `[&](int x)` in a
# code span is C++, not a markdown link.
INLINE_CODE_PATTERN = re.compile(r"`[^`]*`")
FENCE_PATTERN = re.compile(r"^(```|~~~)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def dead_links(markdown_path: Path):
    base = markdown_path.parent
    in_fence = False
    for line_number, line in enumerate(
            markdown_path.read_text(encoding="utf-8").splitlines(), start=1):
        # Fenced code blocks hold code, not links: a snippet containing a
        # lambda like `[&](int)` must not read as a dead link.
        if FENCE_PATTERN.match(line.lstrip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_PATTERN.finditer(INLINE_CODE_PATTERN.sub("``", line)):
            target = match.group(1)
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            if not (base / path_part).exists():
                yield line_number, target


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    checked = 0
    for name in argv[1:]:
        markdown_path = Path(name)
        if not markdown_path.exists():
            print(f"{name}: file not found", file=sys.stderr)
            failures += 1
            continue
        checked += 1
        for line_number, target in dead_links(markdown_path):
            print(f"{name}:{line_number}: dead link -> {target}",
                  file=sys.stderr)
            failures += 1
    if failures:
        print(f"doc-link check FAILED: {failures} problem(s)", file=sys.stderr)
        return 1
    print(f"doc-link check OK ({checked} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
