// The attack service in one process: continuous ingest into a rolling
// sharded store on one side, the AttackScheduler daemon re-running the
// SF / PCA-DR reconstruction over every published snapshot on the
// other. The scheduler emits a monotonically versioned report series
// (report-NNNNNN.json + latest.json) into --reports, which
// tools/check_report.py --series validates end to end.
//
//   attack_service                                  # demo with default knobs
//   attack_service --store=live.rrcm --reports=reports --producers=4
//   attack_service --fake_clock=true --shards=6     # deterministic harness
//   attack_service --stats_port=0 --metrics_series=metrics \
//                  --report=run.json --serve_ms=30000
//
// Two modes:
//
//   * Real time (default): IngestService producers offer batches under
//     admission control while the scheduler's background thread ticks
//     on its poll. How many cycles land is timing-dependent; every
//     published report is still a consistent sealed snapshot.
//   * --fake_clock=true: the deterministic harness CI smokes. A
//     synchronous rolling writer publishes one shard at a time; after
//     every publish the injected clock advances one cadence and the
//     scheduler Ticks — no daemon thread, no sleeps, no timing
//     dependence. The resulting series is bit-for-bit reproducible,
//     and each report's attack numbers are bitwise identical to an
//     offline sweep_attack run over the same snapshot (CI compares
//     them through check_report.py).
//
// The live introspection plane (all optional, docs/OBSERVABILITY.md):
//
//   * --stats_port=N  binds the stats server on 127.0.0.1:N (0 picks an
//     ephemeral port; the chosen one is printed as "stats server
//     listening on 127.0.0.1:PORT"). /healthz /varz /metricsz /statusz
//     /tracez; the scheduler (and, live mode, the ingest service)
//     publish /statusz sections, and cycles run traced so /tracez
//     shows recent span trees. Scraping observes, never perturbs: the
//     report series is bitwise identical under scrape load
//     (tests/net/scrape_under_load_test.cc).
//   * --metrics_series=DIR  runs a MetricsRecorder appending periodic
//     registry snapshots to crash-safe metrics-NNNNNN.jsonl files. In
//     fake-clock mode the recorder Ticks on the same injected clock as
//     the scheduler (deterministic cadence); live mode samples on a
//     background thread.
//   * --report=PATH  writes an attack_service run report at the end.
//     Ordering is the reconciliation contract: quiesce, write the
//     report, then Close() the recorder — so the final time-series
//     sample agrees EXACTLY with the report's counters
//     (tools/check_timeseries.py --series DIR --report PATH gates it).
//   * --serve_ms=N  keeps serving stats for up to N ms after the run
//     (or until SIGTERM/SIGINT), announced by "run complete; serving
//     stats" — scrape only after that line to see reconciled state.
//
// Exits non-zero on any failed cycle, a violated attribution identity
// (cycles != ok + degraded + failed), or a store/scheduler error.

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/build_info.h"
#include "common/flags.h"
#include "common/metrics.h"
#include "common/run_report.h"
#include "common/trace.h"
#include "data/rolling_store.h"
#include "net/metrics_recorder.h"
#include "net/stats_server.h"
#include "pipeline/attack_scheduler.h"
#include "pipeline/ingest.h"
#include "stats/rng.h"

using namespace randrecon;  // NOLINT(build/namespaces): example code.

namespace {

volatile std::sig_atomic_t g_interrupted = 0;

void HandleSignal(int) { g_interrupted = 1; }

/// The optional introspection plane, parsed once in main.
struct IntrospectionOptions {
  int stats_port = -1;              ///< -1 disables; 0 = ephemeral.
  std::string metrics_series;       ///< Empty disables the recorder.
  uint64_t metrics_interval_nanos = 1000000;  ///< 1ms default cadence.
  std::string report_path;          ///< Empty disables the run report.
  uint64_t serve_ms = 0;            ///< Post-run serve window.
};

/// Batch `index` of producer `producer` — the same substream keying as
/// ingest_load, so offered rows are reproducible across runs and modes.
linalg::Matrix ProducerBatch(uint64_t seed, size_t producer, size_t index,
                             size_t rows, size_t cols) {
  stats::Rng rng(seed * 1000003ull + producer * 131ull + index);
  return rng.GaussianMatrix(rows, cols);
}

void PrintCycle(const pipeline::SchedulerCycleResult& result) {
  if (result.outcome == pipeline::CycleOutcome::kNotDue) return;
  std::printf("cycle -> %s", pipeline::CycleOutcomeName(result.outcome));
  if (result.version > 0) {
    std::printf(" (report %llu: %llu rows in %zu shard(s), hash %s)",
                static_cast<unsigned long long>(result.version),
                static_cast<unsigned long long>(result.snapshot_rows),
                result.snapshot_shards,
                data::ManifestHashHex(result.manifest_hash).c_str());
  } else if (!result.status.ok()) {
    std::printf(" (%s)", result.status.ToString().c_str());
  }
  std::printf("\n");
}

/// Starts the stats server when enabled and prints the port line the CI
/// smoke parses. Returns false on a bind failure (fatal).
bool StartStats(const IntrospectionOptions& intro,
                pipeline::AttackScheduler* scheduler,
                std::unique_ptr<net::StatsServer>* server) {
  if (intro.stats_port < 0) return true;
  net::StatsServer::Options options;
  options.port = static_cast<uint16_t>(intro.stats_port);
  auto started = net::StatsServer::Start(options);
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.status().ToString().c_str());
    return false;
  }
  *server = std::move(started).value();
  (*server)->AddStatusSection(
      "scheduler", [scheduler] { return scheduler->StatusJson(); });
  std::printf("stats server listening on 127.0.0.1:%d\n", (*server)->port());
  std::fflush(stdout);
  return true;
}

/// Creates the metrics recorder when enabled. Returns false on a series
/// directory failure (fatal).
bool StartRecorder(const IntrospectionOptions& intro,
                   std::unique_ptr<net::MetricsRecorder>* recorder) {
  if (intro.metrics_series.empty()) return true;
  net::MetricsRecorder::Options options;
  options.series_dir = intro.metrics_series;
  options.interval_nanos = intro.metrics_interval_nanos;
  auto created = net::MetricsRecorder::Create(options);
  if (!created.ok()) {
    std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
    return false;
  }
  *recorder = std::move(created).value();
  return true;
}

/// Writes the run report (when enabled). MUST run after the last unit
/// of instrumented work and BEFORE MetricsRecorder::Close(), so the
/// recorder's final sample sees exactly the state the report captured.
int WriteRunReport(const IntrospectionOptions& intro, bool fake_clock,
                   pipeline::AttackScheduler* scheduler) {
  if (intro.report_path.empty()) return 0;
  report::RunReportBuilder builder("attack_service");
  builder.AddConfigBool("fake_clock", fake_clock);
  builder.AddConfig("reports", scheduler->report_dir());
  builder.AddConfigInt("cycles", static_cast<int64_t>(scheduler->cycles()));
  builder.AddConfigInt(
      "reports_published",
      static_cast<int64_t>(scheduler->reports_published()));
  builder.AddRawSection("scheduler", scheduler->StatusJson());
  const Status written = builder.WriteFile(intro.report_path);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("run report -> %s\n", intro.report_path.c_str());
  return 0;
}

/// Reconciliation epilogue + serve window. Returns nonzero if the
/// report or the recorder's final sample failed.
int FinishIntrospection(const IntrospectionOptions& intro, bool fake_clock,
                        pipeline::AttackScheduler* scheduler,
                        net::MetricsRecorder* recorder,
                        net::StatsServer* server) {
  // Live-mode recorders stop their sampling thread FIRST: a sample
  // landing between the report write and the final sample would see a
  // recorder.samples the report did not.
  if (recorder != nullptr) recorder->Stop();
  int rc = WriteRunReport(intro, fake_clock, scheduler);
  if (recorder != nullptr) {
    const Status closed = recorder->Close();
    if (!closed.ok()) {
      std::fprintf(stderr, "%s\n", closed.ToString().c_str());
      rc = rc != 0 ? rc : 1;
    }
  }
  if (server != nullptr) {
    // Printed only after Close(): a scraper that waits for this line
    // observes the reconciled final state.
    std::printf("run complete; serving stats\n");
    std::fflush(stdout);
    if (intro.serve_ms > 0) {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(intro.serve_ms);
      while (g_interrupted == 0 &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    }
    server->Stop();
  }
  return rc;
}

/// Shared epilogue: stats, the attribution identity, exit code.
int Finish(pipeline::AttackScheduler* scheduler, bool any_failed) {
  std::printf(
      "scheduler: %llu cycle(s) = %llu ok + %llu degraded + %llu failed; "
      "%llu skipped (no manifest), %llu skipped (unchanged), "
      "%llu overrun(s)\n",
      static_cast<unsigned long long>(scheduler->cycles()),
      static_cast<unsigned long long>(scheduler->cycles_ok()),
      static_cast<unsigned long long>(scheduler->cycles_degraded()),
      static_cast<unsigned long long>(scheduler->cycles_failed()),
      static_cast<unsigned long long>(scheduler->skipped_no_manifest()),
      static_cast<unsigned long long>(scheduler->skipped_unchanged()),
      static_cast<unsigned long long>(scheduler->overruns()));
  std::printf("published %llu report(s), latest version %llu -> %s\n",
              static_cast<unsigned long long>(scheduler->reports_published()),
              static_cast<unsigned long long>(
                  scheduler->last_published_version()),
              scheduler->report_dir().c_str());
  if (scheduler->cycles() != scheduler->cycles_ok() +
                                 scheduler->cycles_degraded() +
                                 scheduler->cycles_failed()) {
    std::fprintf(stderr, "cycle attribution identity violated\n");
    return 1;
  }
  if (scheduler->reports_published() !=
      scheduler->cycles_ok() + scheduler->cycles_degraded()) {
    std::fprintf(stderr, "published reports do not match ok+degraded\n");
    return 1;
  }
  if (any_failed || scheduler->cycles_failed() > 0) {
    std::fprintf(stderr, "at least one cycle failed\n");
    return 1;
  }
  if (scheduler->reports_published() == 0) {
    std::fprintf(stderr, "no report was ever published\n");
    return 1;
  }
  return 0;
}

/// --fake_clock=true: the deterministic harness. A synchronous writer
/// publishes `shards` full shards; after each publish the fake clock
/// advances one cadence, the scheduler Ticks, and the metrics recorder
/// Ticks on the same injected clock. Zero sleeps, zero timing
/// dependence — the report series AND the metrics series are
/// bit-for-bit reproducible.
int RunFakeClock(const std::string& store, const std::string& reports,
                 size_t shards, size_t producers, size_t rows, size_t cols,
                 uint64_t seed, size_t shard_rows, size_t retain_shards,
                 pipeline::AttackSchedulerOptions scheduler_options,
                 const IntrospectionOptions& intro) {
  trace::FakeClockGuard clock(0);
  const uint64_t cadence = scheduler_options.cadence_nanos;

  auto created = pipeline::AttackScheduler::Create(store, scheduler_options);
  if (!created.ok()) {
    std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<pipeline::AttackScheduler> scheduler =
      std::move(created).value();
  std::unique_ptr<net::MetricsRecorder> recorder;
  if (!StartRecorder(intro, &recorder)) return 1;
  // The server is declared (and therefore destroyed) last: its serving
  // thread must join before the scheduler its /statusz closure reads.
  std::unique_ptr<net::StatsServer> server;
  if (!StartStats(intro, scheduler.get(), &server)) return 1;

  bool any_failed = false;
  // Warm-up tick: due immediately, skipped with a cause (no manifest).
  PrintCycle(scheduler->Tick());

  std::vector<std::string> names;
  for (size_t c = 0; c < cols; ++c) names.push_back("a" + std::to_string(c));
  data::RollingStoreOptions store_options;
  store_options.shard_rows = shard_rows;
  store_options.retain_shards = retain_shards;
  auto writer_created =
      data::RollingShardedStoreWriter::Create(store, names, store_options);
  if (!writer_created.ok()) {
    std::fprintf(stderr, "%s\n", writer_created.status().ToString().c_str());
    return 1;
  }
  data::RollingShardedStoreWriter writer = std::move(writer_created).value();

  // Round-robin the producers' batches until `shards` shards published,
  // ticking the scheduler (then the recorder) after every publish it
  // can observe.
  size_t batch_index = 0;
  while (writer.publishes() < shards) {
    for (size_t p = 0; p < producers && writer.publishes() < shards; ++p) {
      const uint64_t before = writer.publishes();
      const Status appended =
          writer.Append(ProducerBatch(seed, p, batch_index, rows, cols), rows);
      if (!appended.ok()) {
        std::fprintf(stderr, "%s\n", appended.ToString().c_str());
        return 1;
      }
      if (writer.publishes() > before) {
        clock.Advance(cadence);
        const pipeline::SchedulerCycleResult result = scheduler->Tick();
        PrintCycle(result);
        any_failed |= result.outcome == pipeline::CycleOutcome::kFailed;
        if (recorder != nullptr) recorder->Tick();
      }
    }
    ++batch_index;
  }
  const Status closed = writer.Close();
  if (!closed.ok()) {
    std::fprintf(stderr, "%s\n", closed.ToString().c_str());
    return 1;
  }
  // One forced final cycle over the sealed store, so the last report
  // always covers every published row.
  clock.Advance(cadence);
  const pipeline::SchedulerCycleResult final_cycle = scheduler->RunCycleNow();
  PrintCycle(final_cycle);
  any_failed |= final_cycle.outcome == pipeline::CycleOutcome::kFailed;
  const int run_rc = Finish(scheduler.get(), any_failed);
  const int intro_rc = FinishIntrospection(intro, /*fake_clock=*/true,
                                           scheduler.get(), recorder.get(),
                                           server.get());
  return run_rc != 0 ? run_rc : intro_rc;
}

/// Real-time mode: IngestService producers + the scheduler daemon.
int RunLive(const std::string& store, const std::string& reports,
            size_t producers, size_t batches, size_t rows, size_t cols,
            uint64_t seed, pipeline::IngestOptions ingest_options,
            pipeline::AttackSchedulerOptions scheduler_options,
            const IntrospectionOptions& intro) {
  auto created = pipeline::AttackScheduler::Create(store, scheduler_options);
  if (!created.ok()) {
    std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<pipeline::AttackScheduler> scheduler =
      std::move(created).value();
  const Status started_daemon = scheduler->Start();
  if (!started_daemon.ok()) {
    std::fprintf(stderr, "%s\n", started_daemon.ToString().c_str());
    return 1;
  }

  std::vector<std::string> names;
  for (size_t c = 0; c < cols; ++c) names.push_back("a" + std::to_string(c));
  auto service_started =
      pipeline::IngestService::Start(store, names, ingest_options);
  if (!service_started.ok()) {
    std::fprintf(stderr, "%s\n",
                 service_started.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<pipeline::IngestService> service =
      std::move(service_started).value();
  std::unique_ptr<net::MetricsRecorder> recorder;
  if (!StartRecorder(intro, &recorder)) return 1;
  if (recorder != nullptr) recorder->Start();
  // Declared last so its serving thread joins before the scheduler and
  // ingest service its /statusz closures read.
  std::unique_ptr<net::StatsServer> server;
  if (!StartStats(intro, scheduler.get(), &server)) return 1;
  if (server != nullptr) {
    pipeline::IngestService* ingest = service.get();
    server->AddStatusSection("ingest",
                             [ingest] { return ingest->StatusJson(); });
  }

  Status first_error = Status::OK();
  for (size_t i = 0; i < batches && first_error.ok(); ++i) {
    for (size_t p = 0; p < producers; ++p) {
      const Status offered =
          service->Offer(ProducerBatch(seed, p, i, rows, cols), rows, 0);
      if (!offered.ok() && !offered.IsRetryable()) {
        first_error = offered;
        break;
      }
    }
  }
  const Status closed = service->Close();
  scheduler->Stop();
  if (!first_error.ok()) {
    std::fprintf(stderr, "%s\n", first_error.ToString().c_str());
    return 1;
  }
  if (!closed.ok()) {
    std::fprintf(stderr, "%s\n", closed.ToString().c_str());
    return 1;
  }
  std::printf("ingest published %llu row(s) in %zu shard(s) -> %s\n",
              static_cast<unsigned long long>(service->published_rows()),
              service->published_shards(), service->manifest_path().c_str());
  // The forced final cycle covers the sealed store even if the daemon
  // never caught the last republish.
  const pipeline::SchedulerCycleResult final_cycle = scheduler->RunCycleNow();
  PrintCycle(final_cycle);
  const int run_rc =
      Finish(scheduler.get(),
             final_cycle.outcome == pipeline::CycleOutcome::kFailed);
  const int intro_rc = FinishIntrospection(intro, /*fake_clock=*/false,
                                           scheduler.get(), recorder.get(),
                                           server.get());
  return run_rc != 0 ? run_rc : intro_rc;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = Flags::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 2;
  }
  const Flags& flags = parsed.value();
  const std::string store = flags.GetString("store", "attack_service.rrcm");
  const std::string reports =
      flags.GetString("reports", "attack_service_reports");
  const auto fake_clock = flags.GetBool("fake_clock", false);
  const auto producers = flags.GetInt("producers", 4);
  const auto batches = flags.GetInt("batches", 200);
  const auto shards = flags.GetInt("shards", 5);
  const auto rows = flags.GetInt("rows", 64);
  const auto cols = flags.GetInt("cols", 8);
  const auto queue = flags.GetInt("queue", 16);
  const auto shard_rows = flags.GetInt("shard_rows", 1024);
  const auto retain_shards = flags.GetInt("retain_shards", 0);
  const auto seed = flags.GetInt("seed", 20050607);
  const std::string attack = flags.GetString("attack", "pca");
  const auto sigma = flags.GetDouble("sigma", 0.5);
  const auto chunk_rows = flags.GetInt("chunk_rows", 4096);
  const auto cadence_us = flags.GetInt("cadence_us", 2000);
  const auto min_new_rows = flags.GetInt("min_new_rows", 0);
  const auto retain_reports = flags.GetInt("retain_reports", 0);
  const auto poll_us = flags.GetInt("poll_us", 500);
  const auto stats_port = flags.GetInt("stats_port", -1);
  const std::string metrics_series = flags.GetString("metrics_series", "");
  const auto metrics_interval_us = flags.GetInt("metrics_interval_us", 1000);
  const std::string report_path = flags.GetString("report", "");
  const auto serve_ms = flags.GetInt("serve_ms", 0);
  if (!fake_clock.ok() || !producers.ok() || producers.value() < 1 ||
      !batches.ok() || batches.value() < 1 || !shards.ok() ||
      shards.value() < 1 || !rows.ok() || rows.value() < 1 || !cols.ok() ||
      cols.value() < 1 || !queue.ok() || queue.value() < 1 ||
      !shard_rows.ok() || shard_rows.value() < 1 || !retain_shards.ok() ||
      retain_shards.value() < 0 || !seed.ok() || !sigma.ok() ||
      sigma.value() <= 0 || !chunk_rows.ok() || chunk_rows.value() < 1 ||
      !cadence_us.ok() || cadence_us.value() < 1 || !min_new_rows.ok() ||
      min_new_rows.value() < 0 || !retain_reports.ok() ||
      retain_reports.value() < 0 || !poll_us.ok() || poll_us.value() < 1 ||
      !stats_port.ok() || stats_port.value() < -1 ||
      stats_port.value() > 65535 || !metrics_interval_us.ok() ||
      metrics_interval_us.value() < 1 || !serve_ms.ok() ||
      serve_ms.value() < 0 || (attack != "pca" && attack != "sf")) {
    std::fprintf(stderr, "bad flag value\n");
    return 2;
  }

  LogBuildInfoBanner();

  IntrospectionOptions intro;
  intro.stats_port = static_cast<int>(stats_port.value());
  intro.metrics_series = metrics_series;
  intro.metrics_interval_nanos =
      static_cast<uint64_t>(metrics_interval_us.value()) * 1000;
  intro.report_path = report_path;
  intro.serve_ms = static_cast<uint64_t>(serve_ms.value());
  if (intro.serve_ms > 0) {
    // The serve window ends on SIGTERM/SIGINT (clean shutdown, exit 0)
    // — how the CI smoke tears the service down.
    std::signal(SIGTERM, HandleSignal);
    std::signal(SIGINT, HandleSignal);
  }

  // This binary owns the process-global telemetry (same convention as
  // sweep_attack/ingest_load): the scheduler's reports snapshot it.
  metrics::ResetAllMetrics();

  pipeline::AttackSchedulerOptions scheduler_options;
  scheduler_options.cadence_nanos =
      static_cast<uint64_t>(cadence_us.value()) * 1000;
  scheduler_options.min_new_rows =
      static_cast<uint64_t>(min_new_rows.value());
  scheduler_options.sigma = sigma.value();
  scheduler_options.attack.attack = attack == "pca"
                                        ? pipeline::StreamingAttack::kPcaDr
                                        : pipeline::StreamingAttack::kSpectralFiltering;
  scheduler_options.attack.chunk_rows =
      static_cast<size_t>(chunk_rows.value());
  scheduler_options.report_dir = reports;
  scheduler_options.retain_reports =
      static_cast<size_t>(retain_reports.value());
  scheduler_options.poll_nanos = static_cast<uint64_t>(poll_us.value()) * 1000;
  // Snapshot opens racing a republish surface as retryable Unavailable.
  scheduler_options.retry.max_attempts = 3;
  // With the stats server up, cycles run traced so /tracez shows the
  // recent span trees. Tracing observes the cycle, never steers it.
  scheduler_options.trace_cycles = intro.stats_port >= 0;

  if (fake_clock.value()) {
    return RunFakeClock(store, reports, static_cast<size_t>(shards.value()),
                        static_cast<size_t>(producers.value()),
                        static_cast<size_t>(rows.value()),
                        static_cast<size_t>(cols.value()),
                        static_cast<uint64_t>(seed.value()),
                        static_cast<size_t>(shard_rows.value()),
                        static_cast<size_t>(retain_shards.value()),
                        scheduler_options, intro);
  }
  pipeline::IngestOptions ingest_options;
  ingest_options.queue_batches = static_cast<size_t>(queue.value());
  ingest_options.store.shard_rows = static_cast<size_t>(shard_rows.value());
  ingest_options.store.retain_shards =
      static_cast<size_t>(retain_shards.value());
  return RunLive(store, reports, static_cast<size_t>(producers.value()),
                 static_cast<size_t>(batches.value()),
                 static_cast<size_t>(rows.value()),
                 static_cast<size_t>(cols.value()),
                 static_cast<uint64_t>(seed.value()), ingest_options,
                 scheduler_options, intro);
}
