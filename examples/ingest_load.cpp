// Continuous-ingest load generator: N producer threads offer
// deterministic Gaussian batches through the admission-controlled
// IngestService (pipeline/ingest.h) into a rolling sharded store, then
// print — and, with --report, persist — the exact accounting identity
// offered == appended + shed. The binary exits non-zero if the identity
// is violated or the store fails, so CI can use it as a gate.
//
//   ingest_load                                     # demo with default knobs
//   ingest_load --store=live.rrcm --producers=8 --queue=4 --admission_us=100
//   ingest_load --store=live.rrcm --report=ingest_report.json
//   ingest_load --store=live.rrcm --recover=true    # crash recovery, no load
//
// The last form runs RecoverShardedStore over a store whose writer
// crashed (e.g. under RANDRECON_FAILPOINTS="roll.publish=crash@2") and
// proves the recovered prefix opens as a snapshot — the CI
// crash-torture-rotation step drives exactly that sequence.
//
// Batches are substreamed per (seed, producer, index) so reruns offer
// bitwise-identical rows regardless of producer interleaving; WHICH
// batches shed under overload is scheduling-dependent, but every
// outcome is counted and the identity always closes.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/run_report.h"
#include "common/trace.h"
#include "data/rolling_store.h"
#include "data/store_recovery.h"
#include "pipeline/ingest.h"
#include "stats/rng.h"

using namespace randrecon;  // NOLINT(build/namespaces): example code.

namespace {

/// Batch `index` of producer `producer`: an independent substream keyed
/// on (seed, producer, index), so the offered rows are reproducible and
/// distinct across producers without any shared generator state.
linalg::Matrix ProducerBatch(uint64_t seed, size_t producer, size_t index,
                             size_t rows, size_t cols) {
  stats::Rng rng(seed * 1000003ull + producer * 131ull + index);
  return rng.GaussianMatrix(rows, cols);
}

/// --recover=true: turn whatever a crashed writer left at `store` back
/// into a valid snapshot (or a provably empty path) and prove the
/// recovered prefix opens and reports its rows.
int RunRecovery(const std::string& store) {
  auto recovered = data::RecoverShardedStore(store);
  if (!recovered.ok()) {
    std::fprintf(stderr, "%s\n", recovered.status().ToString().c_str());
    return 1;
  }
  const data::StoreRecoveryReport& report = recovered.value();
  std::printf(
      "recovery: %zu shard(s), %llu record(s), manifest %s, "
      "%zu file(s) removed, %zu quarantined\n",
      report.recovered_shards,
      static_cast<unsigned long long>(report.recovered_records),
      report.store_empty ? "removed (store empty)"
                         : (report.manifest_rebuilt ? "rebuilt" : "kept"),
      report.removed_files.size(), report.quarantined_files.size());
  for (const std::string& path : report.quarantined_files) {
    std::printf("  quarantined: %s\n", path.c_str());
  }
  if (report.store_empty) return 0;
  auto snapshot = data::RollingStoreSnapshotReader::Open(store);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "recovered store does not open: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  if (snapshot.value().num_records() != report.recovered_records) {
    std::fprintf(stderr, "snapshot reads %zu records, recovery reported %llu\n",
                 snapshot.value().num_records(),
                 static_cast<unsigned long long>(report.recovered_records));
    return 1;
  }
  std::printf("recovered snapshot opens: %zu record(s) x %zu attribute(s)\n",
              snapshot.value().num_records(),
              snapshot.value().num_attributes());
  return 0;
}

int RunLoad(const std::string& store, size_t producers, size_t batches,
            size_t rows, size_t cols, uint64_t seed,
            const pipeline::IngestOptions& options, uint64_t deadline_us,
            const std::string& report_path) {
  // A reporting run owns the process-global telemetry for its duration
  // (same convention as sweep_attack): counters restart at zero so the
  // report accounts for exactly this run.
  const bool reporting = !report_path.empty();
  if (reporting) {
    metrics::ResetAllMetrics();
    trace::StartTracing();
  }

  std::vector<std::string> names;
  for (size_t c = 0; c < cols; ++c) names.push_back("a" + std::to_string(c));
  auto started = pipeline::IngestService::Start(store, names, options);
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<pipeline::IngestService> service = std::move(started).value();

  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> shed{0};
  std::mutex error_mutex;
  Status first_error = Status::OK();
  ParallelForEach(0, producers, [&](size_t p) {
    for (size_t i = 0; i < batches; ++i) {
      const linalg::Matrix batch = ProducerBatch(seed, p, i, rows, cols);
      const uint64_t deadline =
          deadline_us == 0 ? 0 : trace::NowNanos() + deadline_us * 1000;
      const Status offered = service->Offer(batch, rows, deadline);
      if (offered.ok()) {
        accepted.fetch_add(1, std::memory_order_relaxed);
      } else if (offered.IsRetryable()) {
        // Admission shed: a production producer would back off and
        // re-offer; the load generator just counts it — the service's
        // own accounting (printed below) must agree.
        shed.fetch_add(1, std::memory_order_relaxed);
      } else {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error.ok()) first_error = offered;
        return;  // Sticky store error: this producer stops offering.
      }
    }
  });
  const Status closed = service->Close();
  const pipeline::IngestStats stats = service->stats();

  std::printf(
      "offered %llu batch(es) / %llu row(s): %llu appended, %llu shed\n"
      "published %llu row(s) in %zu shard(s) -> %s\n",
      static_cast<unsigned long long>(stats.batches_offered),
      static_cast<unsigned long long>(stats.rows_offered),
      static_cast<unsigned long long>(stats.batches_appended),
      static_cast<unsigned long long>(stats.batches_shed),
      static_cast<unsigned long long>(service->published_rows()),
      service->published_shards(), service->manifest_path().c_str());
  std::printf("producers saw %llu admitted, %llu shed at admission\n",
              static_cast<unsigned long long>(accepted.load()),
              static_cast<unsigned long long>(shed.load()));

  // The load-bearing invariant, enforced in-binary: every offered batch
  // is accounted exactly once — no silent drops, ever.
  if (stats.batches_offered != stats.batches_appended + stats.batches_shed ||
      stats.rows_offered != stats.rows_appended + stats.rows_shed) {
    std::fprintf(stderr, "accounting identity violated\n");
    return 1;
  }
  if (stats.rows_appended != service->published_rows()) {
    std::fprintf(stderr, "published rows do not match appended rows\n");
    return 1;
  }
  // Producer-side counters are a weaker view (an accepted batch may
  // still shed later on an expired deadline), so the only cross-check
  // is that the service never reported MORE sheds than producers saw
  // plus the expirable accepted ones.
  if (shed.load() > stats.batches_shed) {
    std::fprintf(stderr, "producers saw more sheds than the service counted\n");
    return 1;
  }
  if (!closed.ok()) {
    std::fprintf(stderr, "%s\n", closed.ToString().c_str());
    return 1;
  }
  if (!first_error.ok()) {
    std::fprintf(stderr, "%s\n", first_error.ToString().c_str());
    return 1;
  }

  if (reporting) {
    report::RunReportBuilder builder("ingest_load");
    builder.AddConfig("store", store);
    builder.AddConfigInt("producers", static_cast<int64_t>(producers));
    builder.AddConfigInt("batches_per_producer", static_cast<int64_t>(batches));
    builder.AddConfigInt("rows_per_batch", static_cast<int64_t>(rows));
    builder.AddConfigInt("cols", static_cast<int64_t>(cols));
    builder.AddConfigInt("queue_batches",
                         static_cast<int64_t>(options.queue_batches));
    builder.AddConfigInt(
        "admission_us",
        static_cast<int64_t>(options.admission_timeout_nanos / 1000));
    builder.AddConfigInt("deadline_us", static_cast<int64_t>(deadline_us));
    builder.AddConfigInt("shard_rows",
                         static_cast<int64_t>(options.store.shard_rows));
    builder.AddConfigInt("seed", static_cast<int64_t>(seed));
    builder.AddConfigInt("batches_offered",
                         static_cast<int64_t>(stats.batches_offered));
    builder.AddConfigInt("batches_appended",
                         static_cast<int64_t>(stats.batches_appended));
    builder.AddConfigInt("batches_shed",
                         static_cast<int64_t>(stats.batches_shed));
    builder.AddConfigInt("rows_offered",
                         static_cast<int64_t>(stats.rows_offered));
    builder.AddConfigInt("rows_appended",
                         static_cast<int64_t>(stats.rows_appended));
    builder.AddConfigInt("rows_shed", static_cast<int64_t>(stats.rows_shed));
    builder.AddConfigInt("published_rows",
                         static_cast<int64_t>(service->published_rows()));
    builder.AddConfigInt("published_shards",
                         static_cast<int64_t>(service->published_shards()));
    builder.SetSpans(trace::StopTracing());
    const Status written = builder.WriteFile(report_path);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("report written to %s\n", report_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = Flags::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 2;
  }
  const Flags& flags = parsed.value();
  const std::string store = flags.GetString("store", "ingest_demo.rrcm");
  const auto recover = flags.GetBool("recover", false);
  const auto producers = flags.GetInt("producers", 4);
  const auto batches = flags.GetInt("batches", 300);
  const auto rows = flags.GetInt("rows", 64);
  const auto cols = flags.GetInt("cols", 8);
  const auto queue = flags.GetInt("queue", 16);
  const auto admission_us = flags.GetInt("admission_us", 50000);
  const auto deadline_us = flags.GetInt("deadline_us", 0);
  const auto shard_rows = flags.GetInt("shard_rows", 2048);
  const auto retain_shards = flags.GetInt("retain_shards", 0);
  const auto seed = flags.GetInt("seed", 20050609);
  const std::string report_path = flags.GetString("report", "");
  if (!recover.ok() || !producers.ok() || producers.value() < 1 ||
      !batches.ok() || batches.value() < 1 || !rows.ok() || rows.value() < 1 ||
      !cols.ok() || cols.value() < 1 || !queue.ok() || queue.value() < 1 ||
      !admission_us.ok() || admission_us.value() < 0 || !deadline_us.ok() ||
      deadline_us.value() < 0 || !shard_rows.ok() || shard_rows.value() < 1 ||
      !retain_shards.ok() || retain_shards.value() < 0 || !seed.ok()) {
    std::fprintf(stderr, "bad flag value\n");
    return 2;
  }
  if (recover.value()) return RunRecovery(store);
  pipeline::IngestOptions options;
  options.queue_batches = static_cast<size_t>(queue.value());
  options.admission_timeout_nanos =
      static_cast<uint64_t>(admission_us.value()) * 1000;
  options.store.shard_rows = static_cast<size_t>(shard_rows.value());
  options.store.retain_shards = static_cast<size_t>(retain_shards.value());
  return RunLoad(store, static_cast<size_t>(producers.value()),
                 static_cast<size_t>(batches.value()),
                 static_cast<size_t>(rows.value()),
                 static_cast<size_t>(cols.value()),
                 static_cast<uint64_t>(seed.value()), options,
                 static_cast<uint64_t>(deadline_us.value()), report_path);
}
