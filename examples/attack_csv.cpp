// Command-line attack tool: run the paper's reconstruction suite against
// YOUR disguised records.
//
// Usage:
//   attack_csv --sigma=<noise stddev> disguised.csv [original.csv]
//
// Both files may be CSV exports or binary column stores (docs/FORMAT.md,
// written by convert_csv / ColumnStoreChunkSink) — the format is sniffed
// from the leading bytes, not the extension.
//
// The disguised file must be the output of an additive randomization
// Y = X + R with i.i.d. N(0, sigma²) noise (sigma is public in
// randomization-based PPDM). With only the disguised file the tool
// reports each attack's *claimed* noise removal (distance between the
// reconstruction and the published data); when the true original is also
// given, it scores every attack exactly like the paper does.
//
// With no arguments the tool demonstrates itself on a generated dataset.

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "core/attack_suite.h"
#include "data/column_store.h"
#include "data/csv.h"
#include "data/synthetic.h"
#include "perturb/schemes.h"
#include "stats/moments.h"

using namespace randrecon;  // NOLINT(build/namespaces): example code.

namespace {

int RunDemo(double sigma) {
  std::printf(
      "No input files given — demonstrating on a generated dataset\n"
      "(30 attributes, 3 principal components, 800 records, sigma = %.1f).\n"
      "Usage: attack_csv --sigma=S disguised.csv [original.csv]\n\n",
      sigma);
  stats::Rng rng(424242);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = data::TwoLevelSpectrumWithTrace(30, 3, 1.0, 100.0);
  auto synthetic = data::GenerateSpectrumDataset(spec, 800, &rng);
  if (!synthetic.ok()) return 1;
  auto scheme = perturb::IndependentNoiseScheme::Gaussian(30, sigma);
  auto disguised = scheme.Disguise(synthetic.value().dataset, &rng);
  if (!disguised.ok()) return 1;

  auto reports = core::AttackSuite::PaperSuite().RunAll(
      synthetic.value().dataset, disguised.value(), scheme.noise_model());
  if (!reports.ok()) {
    std::fprintf(stderr, "%s\n", reports.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", core::FormatReportTable(reports.value()).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }
  auto sigma = flags.value().GetDouble("sigma", 5.0);
  if (!sigma.ok() || sigma.value() <= 0.0) {
    std::fprintf(stderr, "--sigma must be a positive number\n");
    return 2;
  }

  const auto& files = flags.value().positional();
  if (files.empty()) return RunDemo(sigma.value());

  auto disguised = data::ReadRecords(files[0]);
  if (!disguised.ok()) {
    std::fprintf(stderr, "cannot read '%s': %s\n", files[0].c_str(),
                 disguised.status().ToString().c_str());
    return 1;
  }
  std::printf("Loaded %zu records x %zu attributes from %s (sigma = %.3f)\n\n",
              disguised.value().num_records(),
              disguised.value().num_attributes(), files[0].c_str(),
              sigma.value());
  const perturb::NoiseModel noise = perturb::NoiseModel::IndependentGaussian(
      disguised.value().num_attributes(), sigma.value());

  if (files.size() >= 2) {
    // Scored mode: the true original is available.
    auto original = data::ReadRecords(files[1]);
    if (!original.ok()) {
      std::fprintf(stderr, "cannot read '%s': %s\n", files[1].c_str(),
                   original.status().ToString().c_str());
      return 1;
    }
    auto reports = core::AttackSuite::PaperSuite().RunAll(
        original.value(), disguised.value(), noise);
    if (!reports.ok()) {
      std::fprintf(stderr, "%s\n", reports.status().ToString().c_str());
      return 1;
    }
    std::printf("Reconstruction error vs the true original:\n%s",
                core::FormatReportTable(reports.value()).c_str());
    return 0;
  }

  // Blind mode: no ground truth. Report how far each attack moves the
  // published values — i.e. how much claimed noise it strips out.
  core::AttackSuite suite = core::AttackSuite::PaperSuite();
  std::printf(
      "No original given; reporting each attack's estimated noise removal\n"
      "(RMS distance between its reconstruction and the published data;\n"
      "the noise RMS itself is sigma = %.3f):\n\n",
      sigma.value());
  for (size_t a = 0; a < suite.size(); ++a) {
    auto x_hat = suite.attack(a).Reconstruct(disguised.value().records(), noise);
    if (!x_hat.ok()) {
      std::fprintf(stderr, "%s: %s\n", suite.attack(a).name().c_str(),
                   x_hat.status().ToString().c_str());
      return 1;
    }
    const double moved = stats::RootMeanSquareError(
        disguised.value().records(), x_hat.value());
    std::printf("  %-8s claims to remove %7.3f of noise RMS\n",
                suite.attack(a).name().c_str(), moved);
  }
  std::printf(
      "\nA claim close to sigma with strong attribute correlation means "
      "the\npublished table is effectively un-noised for an adversary.\n");
  return 0;
}
