// Scenario: the paper's §8 defense in action. Same data, same total
// noise power — but the noise is drawn with the *data's own correlation
// structure* (Σr ∝ Σx), so it hides inside the principal components the
// attacks rely on.
//
// The example shows three things:
//   1. Against independent noise, PCA-DR/BE-DR strip most of the noise.
//   2. Against correlation-mimicking noise, the same attacks (upgraded
//      with Theorem 8.1!) recover far less.
//   3. Utility survives: the data miner can still recover the original
//      covariance via Theorem 8.2 (Σx = Σy − Σr).
//
// Build & run:  ./build/examples/defense_correlated_noise

#include <cstdio>

#include "common/string_util.h"
#include "core/attack_suite.h"
#include "core/be_dr.h"
#include "core/pca_dr.h"
#include "core/spectral_filtering.h"
#include "data/synthetic.h"
#include "linalg/matrix_util.h"
#include "perturb/schemes.h"
#include "stats/dissimilarity.h"
#include "stats/moments.h"

int main() {
  using namespace randrecon;  // NOLINT(build/namespaces): example code.

  // Strongly correlated table: 40 attributes, 4 principal directions.
  stats::Rng rng(808);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = data::TwoLevelSpectrumWithTrace(40, 4, 1.0, 100.0);
  auto synthetic = data::GenerateSpectrumDataset(spec, 1200, &rng);
  if (!synthetic.ok()) return 1;
  const data::Dataset& original = synthetic.value().dataset;

  // Equal noise power for both schemes: trace(Σr) = m σ².
  const double sigma = 5.0;
  const double scale = sigma * sigma * 40.0 /
                       linalg::Trace(synthetic.value().covariance);

  const auto independent = perturb::IndependentNoiseScheme::Gaussian(40, sigma);
  auto mimicking = perturb::CorrelatedGaussianScheme::MimicCovariance(
      synthetic.value().covariance, scale);
  if (!mimicking.ok()) return 1;

  auto run = [&](const perturb::RandomizationScheme& scheme,
                 const char* label) -> int {
    stats::Rng noise_rng(4242);
    auto published = scheme.Disguise(original, &noise_rng);
    if (!published.ok()) return 1;

    auto corr_x =
        linalg::CovarianceToCorrelation(synthetic.value().covariance);
    auto corr_r =
        linalg::CovarianceToCorrelation(scheme.noise_model().covariance());
    auto dissimilarity = stats::CorrelationDissimilarity(corr_x, corr_r);

    core::AttackSuite suite;
    suite.Add(std::make_unique<core::SpectralFilteringReconstructor>())
        .Add(std::make_unique<core::PcaReconstructor>())
        .Add(std::make_unique<core::BayesEstimateReconstructor>());
    auto reports =
        suite.RunAll(original, published.value(), scheme.noise_model());
    if (!reports.ok()) {
      std::fprintf(stderr, "%s\n", reports.status().ToString().c_str());
      return 1;
    }
    std::printf("%s (correlation dissimilarity to data: %s)\n", label,
                FormatDouble(dissimilarity.ValueOr(-1.0), 4).c_str());
    std::printf("%s\n", core::FormatReportTable(reports.value()).c_str());
    return 0;
  };

  std::printf(
      "Same data, same total noise power (sigma = %.1f equivalent).\n"
      "Reconstruction error = privacy (higher is better for the "
      "publisher).\n\n",
      sigma);
  if (run(independent, "[1] Independent noise (classic randomization)") != 0) {
    return 1;
  }
  if (run(mimicking.value(),
          "[2] Correlation-mimicking noise (Section 8 defense)") != 0) {
    return 1;
  }

  // Utility check: the miner's view (Theorem 8.2).
  stats::Rng verify_rng(4242);
  auto published = mimicking.value().Disguise(original, &verify_rng);
  if (!published.ok()) return 1;
  const linalg::Matrix sigma_y =
      stats::SampleCovariance(published.value().records());
  const linalg::Matrix recovered =
      sigma_y - mimicking.value().noise_model().covariance();
  const double recovery_error =
      linalg::MaxAbsDifference(recovered, synthetic.value().covariance) /
      linalg::FrobeniusNorm(synthetic.value().covariance);
  std::printf(
      "[3] Utility: covariance recovered from the defended release via\n"
      "    Theorem 8.2 with relative error %.3f — aggregate data mining\n"
      "    still works, while per-record reconstruction got ~2x worse.\n",
      recovery_error);
  return 0;
}
