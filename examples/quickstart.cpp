// Quickstart: the whole library in ~60 lines.
//
// 1. Generate a correlated dataset (the §7.1 recipe).
// 2. Disguise it with the classic additive Gaussian randomization.
// 3. Run every reconstruction attack from the paper.
// 4. See how little privacy the randomization actually bought.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/attack_suite.h"
#include "data/synthetic.h"
#include "perturb/schemes.h"

int main() {
  using namespace randrecon;  // NOLINT(build/namespaces): example code.

  // --- 1. A dataset with strong inter-attribute correlation: 50
  // attributes whose variance concentrates in 5 principal directions.
  stats::Rng rng(/*seed=*/2005);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = data::TwoLevelSpectrumWithTrace(
      /*num_attributes=*/50, /*num_principal=*/5,
      /*residual_value=*/1.0, /*per_attribute_variance=*/100.0);
  auto synthetic = data::GenerateSpectrumDataset(spec, /*num_records=*/1000,
                                                 &rng);
  if (!synthetic.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 synthetic.status().ToString().c_str());
    return 1;
  }

  // --- 2. Randomize: Y = X + R with R ~ N(0, 5²) per attribute. The
  // noise model is public — that's how randomized PPDM works.
  const auto scheme = perturb::IndependentNoiseScheme::Gaussian(50, 5.0);
  auto disguised = scheme.Disguise(synthetic.value().dataset, &rng);
  if (!disguised.ok()) {
    std::fprintf(stderr, "disguise failed: %s\n",
                 disguised.status().ToString().c_str());
    return 1;
  }

  // --- 3. Attack with the paper's full line-up: NDR, UDR, SF, PCA-DR,
  // BE-DR.
  const core::AttackSuite suite = core::AttackSuite::PaperSuite();
  auto reports = suite.RunAll(synthetic.value().dataset, disguised.value(),
                              scheme.noise_model());
  if (!reports.ok()) {
    std::fprintf(stderr, "attack failed: %s\n",
                 reports.status().ToString().c_str());
    return 1;
  }

  // --- 4. Report. NDR's RMSE is the noise level (5.0) — the "privacy"
  // the publisher thinks they added. Everything below it is leakage.
  std::printf("Per-attack reconstruction error (lower = more disclosure):\n\n");
  std::printf("%s\n", core::FormatReportTable(reports.value()).c_str());
  std::printf(
      "The correlation-aware attacks (PCA-DR, BE-DR) reconstruct records\n"
      "several times more accurately than the noise level suggests —\n"
      "the central finding of Huang, Du & Chen (SIGMOD 2005).\n");
  return 0;
}
