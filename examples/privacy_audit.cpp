// Scenario: the *defender's* side. A data publisher wants to release a
// randomized household-finance table and asks: "how much privacy does my
// noise budget actually buy against the best known reconstruction
// attacks?"
//
// This example runs the full attack suite at several noise budgets and
// prints an audit table a data officer could act on — including the
// epsilon-disclosure rate (fraction of cells an adversary pins down to
// within half a standard deviation).
//
// Build & run:  ./build/examples/privacy_audit

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/string_util.h"
#include "core/attack_suite.h"
#include "data/realistic.h"
#include "linalg/vector_ops.h"
#include "perturb/schemes.h"
#include "stats/moments.h"

int main() {
  using namespace randrecon;  // NOLINT(build/namespaces): example code.

  stats::Rng rng(99);
  auto table =
      data::GenerateLatentFactorTable(data::HouseholdFinanceSpec(), 1500, &rng);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  const data::Dataset& households = table.value();
  const size_t m = households.num_attributes();

  // Express the noise budget as a fraction of the pooled attribute
  // standard deviation, the way a publisher would think about it.
  const linalg::Vector variances = stats::ColumnVariances(households.records());
  const double pooled_std = std::sqrt(linalg::Mean(variances));

  std::printf(
      "Privacy audit: household finance table (%zu records, %zu attributes, "
      "pooled std = %.0f)\n\n",
      households.num_records(), m, pooled_std);
  std::printf("%s%s%s%s%s\n", PadLeft("noise/std", 11).c_str(),
              PadLeft("attack", 10).c_str(), PadLeft("rmse", 10).c_str(),
              PadLeft("rmse/std", 10).c_str(),
              PadLeft("pinned", 10).c_str());
  std::printf("%s\n", std::string(51, '-').c_str());

  for (double budget : {0.25, 0.5, 1.0, 2.0}) {
    const double sigma = budget * pooled_std;
    const auto scheme = perturb::IndependentNoiseScheme::Gaussian(m, sigma);
    auto published = scheme.Disguise(households, &rng);
    if (!published.ok()) return 1;

    auto reports = core::AttackSuite::PaperSuite().RunAll(
        households, published.value(), scheme.noise_model());
    if (!reports.ok()) {
      std::fprintf(stderr, "%s\n", reports.status().ToString().c_str());
      return 1;
    }
    // Report the publisher's assumption (NDR) and the strongest attack.
    const core::ReconstructionReport* ndr = nullptr;
    const core::ReconstructionReport* best = nullptr;
    for (const auto& report : reports.value()) {
      if (report.attack_name == "NDR") ndr = &report;
      if (best == nullptr || report.rmse < best->rmse) best = &report;
    }
    for (const core::ReconstructionReport* r : {ndr, best}) {
      std::printf(
          "%s%s%s%s%s\n", PadLeft(FormatDouble(budget, 2), 11).c_str(),
          PadLeft(r->attack_name, 10).c_str(),
          PadLeft(FormatDouble(r->rmse, 1), 10).c_str(),
          PadLeft(FormatDouble(r->rmse / pooled_std, 2), 10).c_str(),
          PadLeft(FormatDouble(100.0 * r->fraction_within_epsilon, 1) + "%",
                  10)
              .c_str());
    }
  }

  std::printf(
      "\nReading: 'noise/std' is the budget the publisher thinks they "
      "spent;\n'rmse/std' is what the strongest attack leaves of it; "
      "'pinned' is the\nshare of cells recovered to within half a standard "
      "deviation.\nEven a 2x-std noise budget leaves most of the table "
      "exposed —\nindependent randomization cannot protect correlated "
      "attributes.\nSee defense_correlated_noise for the paper's mitigation "
      "(Section 8).\n");
  return 0;
}
