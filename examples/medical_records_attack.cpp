// Scenario: a hospital publishes a randomized patient table (the §3
// motivating example). Each sensitive attribute was perturbed with
// zero-mean Gaussian noise, and the noise parameters are public so
// researchers can reconstruct aggregate distributions.
//
// An adversary runs BE-DR and recovers individual records far more
// accurately than the noise level implies — because vitals, labs and
// costs are strongly correlated through age and health factors.
//
// Build & run:  ./build/examples/medical_records_attack

#include <cmath>
#include <cstdio>

#include "common/string_util.h"
#include "core/be_dr.h"
#include "core/ndr.h"
#include "core/privacy_evaluator.h"
#include "data/realistic.h"
#include "perturb/schemes.h"
#include "stats/moments.h"

int main() {
  using namespace randrecon;  // NOLINT(build/namespaces): example code.

  // --- The hospital's private table: 2000 patients, 8 attributes tied
  // together by age / cardiovascular / metabolic factors.
  stats::Rng rng(1337);
  const data::LatentFactorSpec spec = data::MedicalRecordsSpec();
  auto table = data::GenerateLatentFactorTable(spec, 2000, &rng);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  const data::Dataset& patients = table.value();

  // --- Publication: add N(0, 10²) to every attribute. Ten units of
  // noise on blood pressure / cholesterol looks like plenty of cover.
  const double sigma = 10.0;
  const auto scheme = perturb::IndependentNoiseScheme::Gaussian(
      patients.num_attributes(), sigma);
  auto published = scheme.Disguise(patients, &rng);
  if (!published.ok()) {
    std::fprintf(stderr, "%s\n", published.status().ToString().c_str());
    return 1;
  }

  // --- The adversary: disguised table + public noise model only.
  core::BayesEstimateReconstructor be;
  auto reconstructed =
      be.Reconstruct(published.value().records(), scheme.noise_model());
  if (!reconstructed.ok()) {
    std::fprintf(stderr, "%s\n", reconstructed.status().ToString().c_str());
    return 1;
  }

  auto be_report = core::EvaluateReconstruction("BE-DR", patients.records(),
                                                reconstructed.value());
  auto ndr_report = core::EvaluateReconstruction(
      "no attack", patients.records(), published.value().records());

  std::printf("Randomized medical table: sigma = %.0f on every attribute\n\n",
              sigma);
  std::printf("%s%s%s%s\n", PadRight("attribute", 14).c_str(),
              PadLeft("true std", 12).c_str(),
              PadLeft("noise rmse", 12).c_str(),
              PadLeft("BE-DR rmse", 12).c_str());
  std::printf("%s\n", std::string(50, '-').c_str());
  const linalg::Vector variances = stats::ColumnVariances(patients.records());
  for (size_t j = 0; j < patients.num_attributes(); ++j) {
    std::printf(
        "%s%s%s%s\n", PadRight(patients.attribute_names()[j], 14).c_str(),
        PadLeft(FormatDouble(std::sqrt(variances[j]), 2), 12).c_str(),
        PadLeft(FormatDouble(ndr_report.value().per_attribute_rmse[j], 2), 12)
            .c_str(),
        PadLeft(FormatDouble(be_report.value().per_attribute_rmse[j], 2), 12)
            .c_str());
  }
  std::printf(
      "\nOverall: %s\n         %s\n",
      core::FormatReport(ndr_report.value()).c_str(),
      core::FormatReport(be_report.value()).c_str());

  // --- A concrete victim: compare one patient's published vs
  // reconstructed record.
  const size_t victim = 7;
  std::printf("\nPatient #%zu (true / published / reconstructed):\n", victim);
  for (size_t j = 0; j < patients.num_attributes(); ++j) {
    std::printf("  %s %10.1f / %10.1f / %10.1f\n",
                PadRight(patients.attribute_names()[j], 14).c_str(),
                patients.records()(victim, j),
                published.value().records()(victim, j),
                reconstructed.value()(victim, j));
  }
  std::printf(
      "\nCorrelation across attributes lets BE-DR strip most of the noise:\n"
      "privacy is far weaker than the per-attribute sigma suggests.\n");
  return 0;
}
