// Scenario: a utility company publishes per-minute smart-meter readings
// "anonymized" by adding i.i.d. Gaussian noise to every sample — the
// §3 "Sample Dependency" warning in the flesh. Household load is highly
// autocorrelated (appliances run for many minutes), so the serial-
// dependency attack strips most of the noise and the household's
// activity pattern (when they wake, cook, sleep) re-emerges.
//
// Build & run:  ./build/examples/smartmeter_series_attack

#include <cmath>
#include <cstdio>

#include "common/string_util.h"
#include "core/serial_reconstruction.h"
#include "data/timeseries.h"
#include "stats/rng.h"

int main() {
  using namespace randrecon;  // NOLINT(build/namespaces): example code.

  // --- A day of per-minute load: smooth AR(1) "appliance inertia"
  // around a daily baseline profile.
  const size_t minutes = 1440;
  stats::Rng rng(7777);
  data::Ar1Spec inertia;
  inertia.coefficient = 0.97;
  inertia.innovation_stddev = 35.0;
  auto fluctuations = data::GenerateAr1Series(inertia, minutes, &rng);
  if (!fluctuations.ok()) {
    std::fprintf(stderr, "%s\n", fluctuations.status().ToString().c_str());
    return 1;
  }
  linalg::Vector load(minutes);
  for (size_t t = 0; t < minutes; ++t) {
    const double hour = static_cast<double>(t) / 60.0;
    // Baseline: overnight trough, morning and evening peaks (watts).
    const double base = 300.0 + 350.0 * std::exp(-(hour - 7.5) * (hour - 7.5) / 4.0) +
                        500.0 * std::exp(-(hour - 19.0) * (hour - 19.0) / 6.0);
    load[t] = base + fluctuations.value()[t];
  }

  // --- Publication: add N(0, sigma²) per minute.
  const double sigma = 200.0;
  linalg::Vector published = load;
  for (double& y : published) y += rng.Gaussian(0.0, sigma);

  // --- The attack: exploit serial correlation, nothing else.
  core::SerialReconstructionOptions options;
  options.window = 32;
  core::SerialCorrelationReconstructor attack(options);
  auto recovered = attack.Reconstruct(published, sigma * sigma);
  if (!recovered.ok()) {
    std::fprintf(stderr, "%s\n", recovered.status().ToString().c_str());
    return 1;
  }

  auto rmse = [&](const linalg::Vector& estimate) {
    double sum = 0.0;
    for (size_t t = 0; t < minutes; ++t) {
      sum += (estimate[t] - load[t]) * (estimate[t] - load[t]);
    }
    return std::sqrt(sum / static_cast<double>(minutes));
  };

  std::printf("Smart-meter release, sigma = %.0f W of per-minute noise\n\n",
              sigma);
  std::printf("  published series RMSE vs truth: %8.1f W (the noise floor)\n",
              rmse(published));
  std::printf("  after serial-dependency attack: %8.1f W\n\n",
              rmse(recovered.value()));

  // Hourly profile: the privacy question is "can anyone see when this
  // household is active?" — compare hourly means.
  std::printf("%s%s%s%s\n", PadLeft("hour", 6).c_str(),
              PadLeft("true W", 10).c_str(), PadLeft("published", 12).c_str(),
              PadLeft("recovered", 12).c_str());
  std::printf("%s\n", std::string(40, '-').c_str());
  for (size_t hour = 0; hour < 24; hour += 3) {
    double true_sum = 0.0, published_sum = 0.0, recovered_sum = 0.0;
    for (size_t t = hour * 60; t < (hour + 1) * 60; ++t) {
      true_sum += load[t];
      published_sum += published[t];
      recovered_sum += recovered.value()[t];
    }
    std::printf("%s%s%s%s\n", PadLeft(std::to_string(hour), 6).c_str(),
                PadLeft(FormatDouble(true_sum / 60.0, 0), 10).c_str(),
                PadLeft(FormatDouble(published_sum / 60.0, 0), 12).c_str(),
                PadLeft(FormatDouble(recovered_sum / 60.0, 0), 12).c_str());
  }
  std::printf(
      "\nPer-sample randomization cannot hide a serially dependent signal:\n"
      "the recovered minute-level curve tracks the household's real\n"
      "activity far inside the published noise band (Section 3, second\n"
      "bullet, of Huang, Du & Chen 2005).\n");
  return 0;
}
