// Streaming pipeline CLI: attack a file of disguised records out-of-core
// and write the reconstructed records to another file — bounded memory
// end to end (no n x m matrix is ever held).
//
//   ./example_streaming_pipeline                       # self-contained demo
//   ./example_streaming_pipeline --csv=reports.csv --sigma=0.5 \
//       --attack=sf --out=recon.csv --chunk_rows=4096
//   ./example_streaming_pipeline --csv=reports.rrcs --out=recon.rrcs
//
// The input may be a CSV export or a binary column store (docs/FORMAT.md)
// — the format is sniffed from the file's leading bytes; the mmap'd
// store skips parsing entirely (see bench/micro_io.cc). The output
// format follows the --out extension: ".rrcs" writes a column store.
//
// Without --csv the program first *streams out* a demo table
// (streaming_demo.csv): a §7.1 correlated population disguised with
// independent Gaussian noise, generated chunk-by-chunk through the same
// source/sink machinery, then attacks it.

#include <cstdio>
#include <memory>
#include <string>

#include "common/flags.h"
#include "common/stopwatch.h"
#include "data/csv.h"
#include "data/synthetic.h"
#include "linalg/eigen.h"
#include "perturb/schemes.h"
#include "stats/random_orthogonal.h"
#include "pipeline/chunk_sink.h"
#include "pipeline/record_source.h"
#include "pipeline/source_factory.h"
#include "pipeline/streaming_attack.h"

using namespace randrecon;

namespace {

/// Streams a synthetic disguised population into `path`, never holding it.
Status WriteDemoCsv(const std::string& path, size_t n, size_t m,
                    double sigma, size_t chunk_rows) {
  stats::Rng rng(17);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = data::TwoLevelSpectrum(m, 2, 6.0, 0.2);
  const linalg::Matrix q = stats::RandomOrthogonalMatrix(m, &rng);
  const linalg::Matrix covariance = linalg::ComposeFromEigen(spec.eigenvalues, q);

  Result<pipeline::MvnRecordSource> original = pipeline::MvnRecordSource::Create(
      linalg::Vector(m, 0.0), covariance, n, /*seed=*/rng.NextSeed());
  RR_RETURN_NOT_OK(original.status());
  const auto scheme = perturb::IndependentNoiseScheme::Gaussian(m, sigma);
  pipeline::PerturbingRecordSource disguised(
      std::make_unique<pipeline::MvnRecordSource>(std::move(original).value()),
      &scheme, /*seed=*/rng.NextSeed());

  std::vector<std::string> names;
  for (size_t j = 0; j < m; ++j) names.push_back("a" + std::to_string(j));
  RR_ASSIGN_OR_RETURN(pipeline::CsvChunkSink sink,
                      pipeline::CsvChunkSink::Create(path, names));
  linalg::Matrix buffer(chunk_rows, m);
  size_t row_offset = 0;
  for (;;) {
    RR_ASSIGN_OR_RETURN(const size_t rows, disguised.NextChunk(&buffer));
    if (rows == 0) break;
    RR_RETURN_NOT_OK(sink.Consume(row_offset, buffer, rows));
    row_offset += rows;
  }
  return sink.Close();
}

}  // namespace

int main(int argc, char** argv) {
  Result<Flags> parsed = Flags::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 2;
  }
  const Flags& flags = parsed.value();
  std::string csv_path = flags.GetString("csv", "");
  const std::string out_path = flags.GetString("out", "streaming_recon.csv");
  const std::string attack_name = flags.GetString("attack", "pca");
  const auto sigma = flags.GetDouble("sigma", 0.5);
  const auto chunk_rows = flags.GetInt("chunk_rows", 4096);
  if (!sigma.ok() || !chunk_rows.ok() || chunk_rows.value() < 1 ||
      (attack_name != "pca" && attack_name != "sf")) {
    std::fprintf(stderr, "bad flag value (--attack must be pca or sf)\n");
    return 2;
  }

  if (csv_path.empty()) {
    csv_path = "streaming_demo.csv";
    std::printf("no --csv given; generating demo stream -> %s\n",
                csv_path.c_str());
    const Status demo = WriteDemoCsv(csv_path, /*n=*/20000, /*m=*/8,
                                     sigma.value(),
                                     static_cast<size_t>(chunk_rows.value()));
    if (!demo.ok()) {
      std::fprintf(stderr, "%s\n", demo.ToString().c_str());
      return 1;
    }
  }

  Result<pipeline::OpenedRecordSource> source =
      pipeline::OpenRecordSource(csv_path);
  if (!source.ok()) {
    std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
    return 1;
  }
  pipeline::OpenedRecordSource opened = std::move(source).value();
  const size_t m = opened.attribute_names.size();
  std::printf("input %s detected as %s\n", csv_path.c_str(),
              opened.format == data::RecordFileFormat::kColumnStore
                  ? "column store (mmap)"
                  : opened.format == data::RecordFileFormat::kShardManifest
                        ? "sharded store (manifest + mmap'd shards)"
                        : "csv");

  pipeline::StreamingAttackOptions options;
  options.attack = attack_name == "sf"
                       ? pipeline::StreamingAttack::kSpectralFiltering
                       : pipeline::StreamingAttack::kPcaDr;
  options.chunk_rows = static_cast<size_t>(chunk_rows.value());
  const perturb::NoiseModel noise =
      perturb::NoiseModel::IndependentGaussian(m, sigma.value());

  Result<std::unique_ptr<pipeline::ChunkSink>> sink =
      pipeline::CreateRecordSink(out_path, opened.attribute_names);
  if (!sink.ok()) {
    std::fprintf(stderr, "%s\n", sink.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<pipeline::ChunkSink> out_sink = std::move(sink).value();

  Stopwatch stopwatch;
  Result<pipeline::StreamingAttackReport> report =
      pipeline::StreamingAttackPipeline(options).Run(opened.source.get(),
                                                     noise, out_sink.get());
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  const Status closed = out_sink->Close();
  if (!closed.ok()) {
    std::fprintf(stderr, "%s\n", closed.ToString().c_str());
    return 1;
  }

  const pipeline::StreamingAttackReport& r = report.value();
  std::printf("%s attack over %zu records x %zu attributes (chunks of %d)\n",
              attack_name == "sf" ? "SF" : "PCA-DR", r.num_records,
              r.num_attributes, chunk_rows.value());
  std::printf("  kept components  : %zu\n", r.num_components);
  std::printf("  rmse vs disguised: %.6f (≈ removed noise energy)\n",
              r.rmse_vs_disguised);
  std::printf("  reconstruction   -> %s\n", out_path.c_str());
  std::printf("  elapsed          : %.2fs\n", stopwatch.ElapsedSeconds());
  return 0;
}
