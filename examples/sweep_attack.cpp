// Directory sweep driver: attack every record file in a mixed batch —
// CSV exports, binary column stores (.rrcs) and sharded-store manifests
// (.rrcm) — through one PipelineRunner invocation.
//
//   sweep_attack logs/                        # every record file in logs/
//   sweep_attack a.csv b.rrcs c.rrcm --attack=pca --sigma=0.5
//   sweep_attack logs/ --per_shard=true       # manifests fan out per shard
//   sweep_attack live                         # rolling-store stem: attacks
//                                             # live.rrcm, the latest
//                                             # PUBLISHED snapshot
//
// Arguments are files or directories (directories are scanned one level
// deep for *.csv, *.rrcs, *.rrcm). Shard files that a collected manifest
// already covers are excluded from the standalone list, so a directory
// holding "reports.rrcm" + its shards yields ONE logical job, not one
// per shard file — unless --per_shard=true, which expands each manifest
// into independent per-shard jobs (pipeline::MakePerShardJobs) for
// shard-parallel scheduling.
//
// Every job runs the same attack configuration under an independent
// noise model sized to its stream; failures (unreadable file, corrupt
// shard) are isolated per job and reported in the result table, never
// aborting the batch.
//
// With no arguments the tool demonstrates itself: it writes the same
// disguised records as a CSV, a column store and a 3-shard manifest into
// sweep_demo/, then sweeps the directory — three jobs over identical
// bytes, whose reports therefore agree (the bitwise guarantee is pinned
// in tests/pipeline/sharded_source_test.cc).

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/metrics.h"
#include "common/run_report.h"
#include "common/trace.h"
#include "data/column_store.h"
#include "data/csv.h"
#include "data/shard_store.h"
#include "data/synthetic.h"
#include "perturb/schemes.h"
#include "pipeline/runner.h"
#include "pipeline/source_factory.h"
#include "stats/rng.h"

using namespace randrecon;  // NOLINT(build/namespaces): example code.

namespace {

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsDirectory(const std::string& path) {
  struct stat file_stat;
  return ::stat(path.c_str(), &file_stat) == 0 && S_ISDIR(file_stat.st_mode);
}

bool FileExists(const std::string& path) {
  struct stat file_stat;
  return ::stat(path.c_str(), &file_stat) == 0;
}

bool LooksLikeRecordFile(const std::string& name) {
  // The store/manifest predicates come from the factory so this driver
  // stays in sync with what CreateRecordSink/OpenRecordSource dispatch
  // on; CSV has no constant (it is the extensionless fallback format).
  return EndsWith(name, ".csv") || pipeline::HasColumnStoreExtension(name) ||
         pipeline::HasShardManifestExtension(name);
}

/// Expands files/directories into a sorted list of candidate record
/// files (directories scanned one level deep).
std::vector<std::string> CollectInputs(const std::vector<std::string>& args) {
  std::vector<std::string> inputs;
  for (const std::string& arg : args) {
    if (!IsDirectory(arg)) {
      // A rolling-store STEM (the path an IngestService was started
      // with, minus the manifest extension) resolves to its manifest:
      // the latest PUBLISHED snapshot — open shards and sealed-but-
      // unpublished shards are invisible by protocol, so the sweep
      // attacks exactly what any concurrent snapshot reader would see.
      if (!LooksLikeRecordFile(arg) && !FileExists(arg) &&
          FileExists(arg + data::kShardManifestExtension)) {
        inputs.push_back(arg + data::kShardManifestExtension);
        continue;
      }
      inputs.push_back(arg);
      continue;
    }
    DIR* dir = ::opendir(arg.c_str());
    if (dir == nullptr) {
      std::fprintf(stderr, "warning: cannot open directory '%s'\n",
                   arg.c_str());
      continue;
    }
    const std::string prefix = EndsWith(arg, "/") ? arg : arg + "/";
    std::vector<std::string> found;
    while (struct dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (LooksLikeRecordFile(name) && !IsDirectory(prefix + name)) {
        found.push_back(prefix + name);
      }
    }
    ::closedir(dir);
    std::sort(found.begin(), found.end());  // Deterministic job order.
    inputs.insert(inputs.end(), found.begin(), found.end());
  }
  return inputs;
}

/// The sweep's resolved inputs: record files to attack, plus every
/// successfully-parsed manifest (each read exactly ONCE — the shard
/// exclusion, the noise-model width and the per-shard expansion all
/// reuse the same parse).
struct SweepInputs {
  std::vector<std::string> files;
  std::map<std::string, data::ShardManifest> manifests;
};

/// Parses the collected manifests and drops standalone shard files a
/// manifest already covers — a directory with "x.rrcm" + its shards is
/// ONE stream.
SweepInputs ResolveInputs(std::vector<std::string> inputs) {
  SweepInputs resolved;
  std::set<std::string> covered;
  for (const std::string& path : inputs) {
    if (!pipeline::HasShardManifestExtension(path)) continue;
    auto manifest = data::ReadShardManifest(path);
    if (!manifest.ok()) continue;  // Unreadable manifests fail as jobs.
    const std::string directory = data::ManifestDirectory(path);
    for (const auto& shard : manifest.value().shards) {
      covered.insert(directory + shard.relative_path);
    }
    resolved.manifests.emplace(path, std::move(manifest).value());
  }
  for (std::string& path : inputs) {
    if (covered.count(path) == 0) resolved.files.push_back(std::move(path));
  }
  return resolved;
}

pipeline::PipelineJob MakeJob(const std::string& path, size_t num_attributes,
                              double sigma,
                              const pipeline::StreamingAttackOptions& attack) {
  pipeline::PipelineJob job;
  job.name = path;
  job.attack = attack;
  job.noise = perturb::NoiseModel::IndependentGaussian(
      std::max<size_t>(1, num_attributes), sigma);
  job.disguised = [path]() -> Result<std::unique_ptr<pipeline::RecordSource>> {
    RR_ASSIGN_OR_RETURN(pipeline::OpenedRecordSource opened,
                        pipeline::OpenRecordSource(path));
    return std::move(opened.source);
  };
  return job;
}

/// One excluded shard, remembered with the manifest it came from so the
/// report can account for every row the sweep did not cover.
struct ManifestExclusion {
  std::string manifest;
  pipeline::ShardExclusion exclusion;
};

std::string RenderDouble(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  std::string rendered = buffer;
  if (rendered.find_first_of("nN") != std::string::npos) rendered = "null";
  return rendered;
}

int RunSweep(const SweepInputs& inputs, double sigma,
             const std::string& attack_name, size_t chunk_rows,
             int workers, bool per_shard, int retries,
             const std::string& report_path) {
  // A reporting sweep owns the process-global telemetry for its
  // duration: counters restart at zero so the written report accounts
  // for exactly this batch, and a span capture brackets the run.
  const bool reporting = !report_path.empty();
  if (reporting) {
    metrics::ResetAllMetrics();
    trace::StartTracing();
  }

  pipeline::StreamingAttackOptions attack;
  attack.attack = attack_name == "pca"
                      ? pipeline::StreamingAttack::kPcaDr
                      : pipeline::StreamingAttack::kSpectralFiltering;
  attack.chunk_rows = chunk_rows;

  std::vector<pipeline::PipelineJob> jobs;
  std::vector<std::string> degraded_notes;
  std::vector<ManifestExclusion> exclusions;
  for (const std::string& path : inputs.files) {
    const auto manifest = inputs.manifests.find(path);
    size_t m = 0;
    if (manifest != inputs.manifests.end()) {
      m = manifest->second.column_names.size();
    } else {
      // The noise model must match the stream's width, which costs one
      // metadata open here; an unreadable file keeps a placeholder
      // model and fails cleanly inside its own job when the factory
      // reopens it.
      auto probed = pipeline::OpenRecordSource(path);
      if (probed.ok()) m = probed.value().attribute_names.size();
    }
    pipeline::PipelineJob job = MakeJob(path, m, sigma, attack);
    job.retry.max_attempts = retries;
    if (per_shard && manifest != inputs.manifests.end()) {
      // Degraded decomposition: a store that recovery left partially
      // usable still sweeps — healthy shards become jobs, quarantined
      // or rotten shards are named in the report instead of failing.
      auto job_set = pipeline::MakePerShardJobsDegraded(path, job);
      if (!job_set.ok()) {
        jobs.push_back(std::move(job));  // Fails in-job with the reason.
        continue;
      }
      for (auto& shard_job : job_set.value().jobs) {
        jobs.push_back(std::move(shard_job));
      }
      if (job_set.value().degraded()) {
        degraded_notes.push_back(path + ": " +
                                 job_set.value().DegradedSummary());
      }
      for (const pipeline::ShardExclusion& exclusion :
           job_set.value().excluded) {
        exclusions.push_back({path, exclusion});
      }
      continue;
    }
    jobs.push_back(std::move(job));
  }
  if (jobs.empty()) {
    std::fprintf(stderr, "no record files (*.csv, *.rrcs, *.rrcm) found\n");
    return 1;
  }

  pipeline::PipelineRunnerOptions runner_options;
  runner_options.num_workers = workers;
  const std::vector<pipeline::PipelineJobResult> results =
      pipeline::RunPipelineJobs(jobs, runner_options);

  std::printf("%-44s %8s %6s %4s %12s %9s\n", "job", "records", "attrs", "p",
              "rmse_vs_Y", "seconds");
  size_t failures = 0;
  for (const auto& result : results) {
    if (result.status.ok()) {
      std::printf("%-44s %8zu %6zu %4zu %12.6f %9.3f\n", result.name.c_str(),
                  result.report.num_records, result.report.num_attributes,
                  result.report.num_components,
                  result.report.rmse_vs_disguised, result.elapsed_seconds);
    } else {
      ++failures;
      std::printf("%-44s FAILED: %s\n", result.name.c_str(),
                  result.status.ToString().c_str());
    }
  }
  std::printf("%zu job(s), %zu failed\n", results.size(), failures);
  size_t total_retries = 0;
  for (const auto& result : results) {
    if (result.attempts > 1) total_retries += result.attempts - 1;
  }
  size_t quarantined = 0;
  for (const ManifestExclusion& entry : exclusions) {
    if (entry.exclusion.reason.find("quarantined") != std::string::npos) {
      ++quarantined;
    }
  }
  for (const std::string& note : degraded_notes) {
    std::printf("%s\n", note.c_str());
  }
  if (!degraded_notes.empty() || total_retries > 0) {
    // The degraded summary names the shards; this line accounts for the
    // sweep's health in counters (mirrored under "counters" in the
    // report as pipeline.job_retries / pipeline.shards_excluded).
    std::printf(
        "sweep telemetry: %zu retry(ies), %zu shard(s) excluded "
        "(%zu quarantined by recovery)\n",
        total_retries, exclusions.size(), quarantined);
  }

  if (reporting) {
    std::string jobs_json = "[";
    for (size_t i = 0; i < results.size(); ++i) {
      const pipeline::PipelineJobResult& result = results[i];
      if (i > 0) jobs_json.append(",");
      jobs_json.append(
          "{\"name\":\"" + report::JsonEscape(result.name) + "\",\"ok\":" +
          (result.status.ok() ? "true" : "false") + ",\"status\":\"" +
          report::JsonEscape(result.status.ToString()) +
          "\",\"records\":" + std::to_string(result.report.num_records) +
          ",\"attributes\":" + std::to_string(result.report.num_attributes) +
          ",\"components\":" + std::to_string(result.report.num_components) +
          ",\"rmse_vs_disguised\":" +
          RenderDouble(result.report.rmse_vs_disguised) +
          ",\"attempts\":" + std::to_string(result.attempts) +
          ",\"elapsed_seconds\":" + RenderDouble(result.elapsed_seconds) +
          "}");
    }
    jobs_json.append("]");
    std::string exclusions_json = "[";
    for (size_t i = 0; i < exclusions.size(); ++i) {
      const ManifestExclusion& entry = exclusions[i];
      if (i > 0) exclusions_json.append(",");
      exclusions_json.append(
          "{\"manifest\":\"" + report::JsonEscape(entry.manifest) +
          "\",\"shard_index\":" + std::to_string(entry.exclusion.shard_index) +
          ",\"shard_path\":\"" + report::JsonEscape(entry.exclusion.shard_path) +
          "\",\"row_begin\":" + std::to_string(entry.exclusion.row_begin) +
          ",\"row_count\":" + std::to_string(entry.exclusion.row_count) +
          ",\"reason\":\"" + report::JsonEscape(entry.exclusion.reason) +
          "\"}");
    }
    exclusions_json.append("]");
    // Which published snapshot each manifest job attacked: the manifest
    // path and its row count as parsed at resolve time. For a rolling
    // store this pins the run to one snapshot even if a writer
    // republished the manifest while the sweep ran.
    std::string snapshots_json = "[";
    bool first_snapshot = true;
    for (const auto& entry : inputs.manifests) {
      if (!first_snapshot) snapshots_json.append(",");
      first_snapshot = false;
      snapshots_json.append(
          "{\"manifest\":\"" + report::JsonEscape(entry.first) +
          "\",\"rows\":" + std::to_string(entry.second.num_records) +
          ",\"shards\":" + std::to_string(entry.second.shards.size()) + "}");
    }
    snapshots_json.append("]");

    report::RunReportBuilder builder("sweep_attack");
    builder.AddConfigDouble("sigma", sigma);
    builder.AddConfig("attack", attack_name);
    builder.AddConfigInt("chunk_rows", static_cast<int64_t>(chunk_rows));
    builder.AddConfigInt("workers", workers);
    builder.AddConfigBool("per_shard", per_shard);
    builder.AddConfigInt("retries", retries);
    builder.AddConfigInt("jobs_total", static_cast<int64_t>(results.size()));
    builder.AddConfigInt("jobs_failed", static_cast<int64_t>(failures));
    builder.AddRawSection("jobs", jobs_json);
    builder.AddRawSection("exclusions", exclusions_json);
    builder.AddRawSection("snapshots", snapshots_json);
    builder.SetSpans(trace::StopTracing());
    const Status written = builder.WriteFile(report_path);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("report written to %s\n", report_path.c_str());
  }
  return failures == 0 ? 0 : 1;
}

/// Self-demo: the same disguised records as CSV + store + 3-shard
/// manifest in sweep_demo/, swept as one batch (three jobs over
/// identical bytes — their reports agree).
int RunDemo(double sigma, size_t chunk_rows, int workers) {
  std::printf(
      "No input given — demonstrating a mixed-format directory sweep.\n"
      "Usage: sweep_attack <files-or-dirs>... [--attack=sf|pca] "
      "[--sigma=S] [--chunk_rows=N] [--workers=W] [--per_shard=true] "
      "[--retries=N] [--report=PATH]\n\n");
  ::mkdir("sweep_demo", 0755);
  stats::Rng rng(20050608);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = data::TwoLevelSpectrum(8, 2, 6.0, 0.2);
  auto generated = data::GenerateSpectrumDataset(spec, 5000, &rng);
  if (!generated.ok()) {
    std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
    return 1;
  }
  auto scheme = perturb::IndependentNoiseScheme::Gaussian(8, sigma);
  auto disguised = scheme.Disguise(generated.value().dataset, &rng);
  if (!disguised.ok()) {
    std::fprintf(stderr, "%s\n", disguised.status().ToString().c_str());
    return 1;
  }
  // One CSV, then the store and the manifest built from the CSV's parsed
  // values so all three backends hold identical doubles.
  if (!data::WriteCsv(disguised.value(), "sweep_demo/reports.csv").ok()) {
    std::fprintf(stderr, "cannot write sweep_demo/reports.csv\n");
    return 1;
  }
  auto parsed = data::ReadCsv("sweep_demo/reports.csv");
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  if (!data::WriteColumnStore(parsed.value(), "sweep_demo/reports.rrcs")
           .ok()) {
    std::fprintf(stderr, "cannot write sweep_demo/reports.rrcs\n");
    return 1;
  }
  data::ShardedStoreOptions sharded;
  sharded.shard_rows = 1700;  // 3 shards, the last one partial.
  const Status written = data::WriteShardedStore(
      parsed.value(), "sweep_demo/reports.rrcm", sharded);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  return RunSweep(ResolveInputs(CollectInputs({"sweep_demo"})), sigma,
                  "sf", chunk_rows, workers, /*per_shard=*/false,
                  /*retries=*/1, /*report_path=*/"");
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = Flags::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 2;
  }
  const Flags& flags = parsed.value();
  const auto sigma = flags.GetDouble("sigma", 0.5);
  const std::string attack = flags.GetString("attack", "sf");
  const auto chunk_rows = flags.GetInt("chunk_rows", 4096);
  const auto workers = flags.GetInt("workers", 0);
  const auto per_shard = flags.GetBool("per_shard", false);
  const auto retries = flags.GetInt("retries", 1);
  const std::string report_path = flags.GetString("report", "");
  if (!sigma.ok() || sigma.value() <= 0 || !chunk_rows.ok() ||
      chunk_rows.value() < 1 || !workers.ok() || workers.value() < 0 ||
      !per_shard.ok() || !retries.ok() || retries.value() < 1 ||
      (attack != "sf" && attack != "pca")) {
    std::fprintf(stderr, "bad flag value\n");
    return 2;
  }
  if (flags.positional().empty()) {
    return RunDemo(sigma.value(), static_cast<size_t>(chunk_rows.value()),
                   static_cast<int>(workers.value()));
  }
  return RunSweep(ResolveInputs(CollectInputs(flags.positional())),
                  sigma.value(), attack,
                  static_cast<size_t>(chunk_rows.value()),
                  static_cast<int>(workers.value()), per_shard.value(),
                  static_cast<int>(retries.value()), report_path);
}
