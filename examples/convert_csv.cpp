// CSV <-> column-store converter: the on-ramp to the native storage
// backends (docs/FORMAT.md).
//
//   convert_csv reports.csv                  # -> reports.rrcs
//   convert_csv reports.rrcs                 # -> reports.csv
//   convert_csv in.csv out.rrcs --block_rows=4096 --verify=true
//   convert_csv reports.csv --shards=8       # -> reports.rrcm + 8 shards
//   convert_csv reports.csv out.rrcm --shard_rows=100000
//
// Direction is chosen by sniffing the INPUT's leading bytes (not its
// extension): a column-store file or sharded-store manifest converts to
// CSV, anything else parses as CSV and converts to a store; the OUTPUT
// format follows its extension (".rrcs" -> store, ".rrcm" -> sharded
// store, else CSV). --shards=N splits the output into N shards
// (counting the input first when its length isn't known up front);
// --shard_rows=R rolls shards at R records — either flag makes the
// derived output a ".rrcm" manifest. Store -> CSV writes precision 17,
// so every f64 round-trips bitwise. --verify (default true) re-streams
// both files after converting and fails unless they are bitwise
// identical record for record — the sharded path included. A *derived*
// output path that already exists is not overwritten unless --force=true
// (an explicitly named output always is).
//
// With no arguments the tool demonstrates itself: it generates a small
// disguised CSV, converts CSV -> store -> CSV, and verifies both hops
// (the CI round-trip gate runs exactly this, plus a sharded hop).

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "common/failpoint.h"
#include "common/flags.h"
#include "common/metrics.h"
#include "common/run_report.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "data/column_store.h"
#include "data/csv.h"
#include "data/shard_store.h"
#include "data/synthetic.h"
#include "perturb/schemes.h"
#include "pipeline/source_factory.h"
#include "stats/rng.h"

using namespace randrecon;  // NOLINT(build/namespaces): example code.

namespace {

/// %.17g round-trips every finite double exactly, so a CSV written from a
/// store parses back to bitwise-identical values.
constexpr int kLosslessPrecision = 17;

double FileSizeMb(const std::string& path) {
  struct stat file_stat;
  if (::stat(path.c_str(), &file_stat) != 0) return 0.0;
  return static_cast<double>(file_stat.st_size) / (1024.0 * 1024.0);
}

/// True iff both paths name the same existing file (inode-level, so
/// "./t.rrcs" and "t.rrcs" match). In-place conversion must be refused:
/// the sink would truncate the very file the source has open/mmap'd.
bool SameFile(const std::string& a, const std::string& b) {
  struct stat a_stat, b_stat;
  if (::stat(a.c_str(), &a_stat) != 0 || ::stat(b.c_str(), &b_stat) != 0) {
    return false;
  }
  return a_stat.st_dev == b_stat.st_dev && a_stat.st_ino == b_stat.st_ino;
}

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// reports.csv -> reports.rrcs and back, driven by the sniffed format —
/// except that a sharding request always derives a ".rrcm" manifest
/// (so `convert_csv reports.rrcs --shards=8` re-shards the store).
std::string DeriveOutputPath(const std::string& input,
                             data::RecordFileFormat format, bool sharded) {
  std::string stem = input;
  for (const std::string extension :
       {std::string(pipeline::kColumnStoreExtension),
        std::string(data::kShardManifestExtension), std::string(".csv")}) {
    if (EndsWith(input, extension) && input.size() > extension.size()) {
      stem = input.substr(0, input.size() - extension.size());
      break;
    }
  }
  if (sharded) return stem + data::kShardManifestExtension;
  if (format == data::RecordFileFormat::kColumnStore ||
      format == data::RecordFileFormat::kShardManifest) {
    return stem + ".csv";
  }
  return stem + pipeline::kColumnStoreExtension;
}

const char* FormatLabel(data::RecordFileFormat format) {
  switch (format) {
    case data::RecordFileFormat::kColumnStore:
      return "column store";
    case data::RecordFileFormat::kShardManifest:
      return "sharded store";
    case data::RecordFileFormat::kCsv:
      break;
  }
  return "csv";
}

/// Removes whatever `output_path` names — the manifest plus every shard
/// for a sharded output, the single file otherwise.
void RemoveOutput(const std::string& output_path) {
  if (pipeline::HasShardManifestExtension(output_path)) {
    const Status removed = data::RemoveShardedStoreFiles(output_path);
    // Leftovers are worth a warning — a plausible-looking partial store
    // the user believes deleted is exactly what the sweep must not find.
    if (!removed.ok()) {
      std::fprintf(stderr, "warning: %s\n", removed.ToString().c_str());
    }
  } else {
    std::remove(output_path.c_str());
  }
}

bool FileExists(const std::string& path) {
  struct stat file_stat;
  return ::stat(path.c_str(), &file_stat) == 0;
}

/// Streams `input_path` into `output_path`; the converted record count
/// comes back on success. `*output_touched` turns true the moment the
/// output may have been created/truncated, so a failure before that
/// point (e.g. an unreadable input) must not delete a pre-existing file.
Result<size_t> Convert(const std::string& input_path,
                       const std::string& output_path, size_t block_rows,
                       size_t chunk_rows, size_t shards, size_t shard_rows,
                       bool* output_touched) {
  RR_ASSIGN_OR_RETURN(pipeline::OpenedRecordSource input,
                      pipeline::OpenRecordSource(input_path));
  pipeline::RecordSinkOptions sink_options;
  sink_options.block_rows = block_rows;
  sink_options.csv_precision = kLosslessPrecision;
  if (pipeline::HasShardManifestExtension(output_path)) {
    if (shard_rows > 0) {
      sink_options.shard_rows = shard_rows;
    } else if (shards > 0) {
      // --shards=N needs the record count to size the shards evenly.
      // Store and manifest inputs know it up front; a CSV's length is
      // only discoverable by streaming, so count first, then rewind.
      size_t count = input.num_records;
      if (count == 0) {
        linalg::Matrix buffer(chunk_rows, input.attribute_names.size());
        for (;;) {
          RR_ASSIGN_OR_RETURN(const size_t rows,
                              input.source->NextChunk(&buffer));
          if (rows == 0) break;
          count += rows;
        }
        RR_RETURN_NOT_OK(input.source->Reset());
      }
      sink_options.shard_rows =
          std::max<size_t>(1, (count + shards - 1) / shards);
    }
  }
  *output_touched = true;  // CreateRecordSink truncates even when it fails.
  RR_ASSIGN_OR_RETURN(std::unique_ptr<pipeline::ChunkSink> sink,
                      pipeline::CreateRecordSink(
                          output_path, input.attribute_names, sink_options));
  linalg::Matrix buffer(chunk_rows, input.attribute_names.size());
  size_t row_offset = 0;
  for (;;) {
    RR_ASSIGN_OR_RETURN(const size_t rows, input.source->NextChunk(&buffer));
    if (rows == 0) break;
    RR_RETURN_NOT_OK(sink->Consume(row_offset, buffer, rows));
    row_offset += rows;
  }
  RR_RETURN_NOT_OK(sink->Close());
  return row_offset;
}

int RunConversion(const std::string& input, std::string output,
                  size_t block_rows, size_t chunk_rows, size_t shards,
                  size_t shard_rows, bool verify, bool force,
                  const std::string& report_path = "") {
  // A reporting conversion restarts the process-global counters so the
  // report accounts for exactly this run (blocks/bytes written, shards
  // sealed, checksum verifies), and captures a span tree around it.
  const bool reporting = !report_path.empty();
  if (reporting) {
    metrics::ResetAllMetrics();
    trace::StartTracing();
  }
  auto format = data::DetectRecordFileFormat(input);
  if (!format.ok()) {
    std::fprintf(stderr, "%s\n", format.status().ToString().c_str());
    return 1;
  }
  const bool sharded_requested = shards > 0 || shard_rows > 0;
  if (output.empty()) {
    output = DeriveOutputPath(input, format.value(), sharded_requested);
    // The user never named this path: refuse to clobber an existing
    // file they may care about (an explicit output is overwritten, as
    // for any converter).
    if (FileExists(output) && !force) {
      std::fprintf(stderr,
                   "derived output '%s' already exists; name it explicitly "
                   "or pass --force=true to overwrite\n",
                   output.c_str());
      return 1;
    }
  }
  if (sharded_requested && !pipeline::HasShardManifestExtension(output)) {
    std::fprintf(stderr,
                 "--shards/--shard_rows need a '%s' manifest output, got "
                 "'%s'\n",
                 data::kShardManifestExtension, output.c_str());
    return 1;
  }
  if (SameFile(input, output)) {
    std::fprintf(stderr,
                 "refusing to convert '%s' onto itself — the output would "
                 "truncate the input before it is read\n",
                 input.c_str());
    return 1;
  }
  Stopwatch stopwatch;
  bool output_touched = false;
  auto converted = Convert(input, output, block_rows, chunk_rows, shards,
                           shard_rows, &output_touched);
  if (!converted.ok()) {
    std::fprintf(stderr, "%s\n", converted.status().ToString().c_str());
    // The sink's destructor sealed whatever prefix reached disk, so the
    // output now looks like a complete, valid file holding a silent
    // truncation of the input. Remove it (every shard of a sharded
    // output): a failed convert must not leave an attackable-looking
    // store behind.
    if (output_touched) RemoveOutput(output);
    return 1;
  }
  const double elapsed = stopwatch.ElapsedSeconds();
  std::printf("%s (%.2f MB, %s) -> %s (%.2f MB): %zu records in %.3fs"
              " (%.0f rec/s)\n",
              input.c_str(), FileSizeMb(input), FormatLabel(format.value()),
              output.c_str(), FileSizeMb(output), converted.value(), elapsed,
              static_cast<double>(converted.value()) / elapsed);
  if (verify) {
    const Status verified =
        pipeline::VerifyStreamsBitwiseEqual(input, output, chunk_rows);
    if (!verified.ok()) {
      std::fprintf(stderr, "%s\n", verified.ToString().c_str());
      RemoveOutput(output);  // A file that failed --verify is junk.
      return 1;
    }
    std::printf("verified: both files stream bitwise-identical records\n");
  }
  if (reporting) {
    report::RunReportBuilder builder("convert_csv");
    builder.AddConfig("input", input);
    builder.AddConfig("output", output);
    builder.AddConfigInt("block_rows", static_cast<int64_t>(block_rows));
    builder.AddConfigInt("chunk_rows", static_cast<int64_t>(chunk_rows));
    builder.AddConfigInt("shards", static_cast<int64_t>(shards));
    builder.AddConfigInt("shard_rows", static_cast<int64_t>(shard_rows));
    builder.AddConfigBool("verified", verify);
    builder.AddConfigInt("records", static_cast<int64_t>(converted.value()));
    builder.AddConfigDouble("elapsed_seconds", elapsed);
    builder.SetSpans(trace::StopTracing());
    const Status written_report = builder.WriteFile(report_path);
    if (!written_report.ok()) {
      std::fprintf(stderr, "%s\n", written_report.ToString().c_str());
      return 1;
    }
    std::printf("report written to %s\n", report_path.c_str());
  }
  return 0;
}

/// Self-demo + self-test: CSV -> store -> CSV with both hops verified,
/// plus a CSV -> sharded-store hop.
int RunDemo(size_t block_rows, size_t chunk_rows) {
  std::printf("No input given — demonstrating a CSV -> store -> CSV "
              "round-trip.\nUsage: convert_csv input [output] "
              "[--block_rows=N] [--shards=N] [--shard_rows=R] "
              "[--verify=true|false] [--force=true] [--report=PATH]\n\n");
  stats::Rng rng(20050607);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = data::TwoLevelSpectrum(8, 2, 6.0, 0.2);
  auto generated = data::GenerateSpectrumDataset(spec, 5000, &rng);
  if (!generated.ok()) {
    std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
    return 1;
  }
  auto scheme = perturb::IndependentNoiseScheme::Gaussian(8, 0.5);
  auto disguised = scheme.Disguise(generated.value().dataset, &rng);
  if (!disguised.ok()) {
    std::fprintf(stderr, "%s\n", disguised.status().ToString().c_str());
    return 1;
  }
  const std::string csv_path = "convert_demo.csv";
  const Status written = data::WriteCsv(disguised.value(), csv_path);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  if (int rc = RunConversion(csv_path, "convert_demo.rrcs", block_rows,
                             chunk_rows, /*shards=*/0, /*shard_rows=*/0,
                             /*verify=*/true, /*force=*/false)) {
    return rc;
  }
  if (int rc = RunConversion("convert_demo.rrcs", "convert_demo_roundtrip.csv",
                             block_rows, chunk_rows, /*shards=*/0,
                             /*shard_rows=*/0, /*verify=*/true,
                             /*force=*/false)) {
    return rc;
  }
  // Sharded hop: the same CSV split across 3 shards + a manifest, then
  // bitwise re-verified through the manifest path.
  if (int rc = RunConversion(csv_path, "convert_demo.rrcm", block_rows,
                             chunk_rows, /*shards=*/3, /*shard_rows=*/0,
                             /*verify=*/true, /*force=*/true)) {
    return rc;
  }
  std::printf("\nround-trip OK: convert_demo.csv == convert_demo.rrcs == "
              "convert_demo_roundtrip.csv == convert_demo.rrcm (bitwise)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = Flags::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 2;
  }
  const Flags& flags = parsed.value();
  // CI's fault-injection matrix enumerates the failpoints this binary
  // links (then re-runs it once per name with RANDRECON_FAILPOINTS set).
  const auto list_failpoints = flags.GetBool("list_failpoints", false);
  if (list_failpoints.ok() && list_failpoints.value()) {
    for (const std::string& name : ListFailpoints()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  const auto block_rows =
      flags.GetInt("block_rows", data::kDefaultColumnStoreBlockRows);
  const auto chunk_rows = flags.GetInt("chunk_rows", 4096);
  const auto shards = flags.GetInt("shards", 0);
  const auto shard_rows = flags.GetInt("shard_rows", 0);
  const auto verify = flags.GetBool("verify", true);
  const auto force = flags.GetBool("force", false);
  const std::string report_path = flags.GetString("report", "");
  if (!block_rows.ok() || block_rows.value() < 1 || !chunk_rows.ok() ||
      chunk_rows.value() < 1 || !shards.ok() || shards.value() < 0 ||
      !shard_rows.ok() || shard_rows.value() < 0 || !verify.ok() ||
      !force.ok()) {
    std::fprintf(stderr, "bad flag value\n");
    return 2;
  }
  const auto& files = flags.positional();
  if (files.empty()) {
    return RunDemo(static_cast<size_t>(block_rows.value()),
                   static_cast<size_t>(chunk_rows.value()));
  }
  return RunConversion(files[0], files.size() > 1 ? files[1] : "",
                       static_cast<size_t>(block_rows.value()),
                       static_cast<size_t>(chunk_rows.value()),
                       static_cast<size_t>(shards.value()),
                       static_cast<size_t>(shard_rows.value()), verify.value(),
                       force.value(), report_path);
}
