#include "experiment/figures.h"

#include <map>
#include <memory>

#include "common/string_util.h"
#include "core/attack_suite.h"
#include "core/be_dr.h"
#include "core/pca_dr.h"
#include "core/spectral_filtering.h"
#include "core/udr.h"
#include "data/synthetic.h"
#include "linalg/matrix_util.h"
#include "perturb/schemes.h"
#include "stats/dissimilarity.h"
#include "stats/moments.h"

namespace randrecon {
namespace experiment {
namespace {

/// Deterministic per-(sweep point, trial) seed derivation.
uint64_t DeriveSeed(uint64_t base, size_t point, size_t trial) {
  uint64_t h = base;
  h ^= (static_cast<uint64_t>(point) + 1) * 0x9E3779B97F4A7C15ULL;
  h ^= (static_cast<uint64_t>(trial) + 1) * 0xC2B2AE3D27D4EB4FULL;
  h ^= h >> 29;
  return h;
}

/// The four curves of Figures 1-3. When `common.oracle_moments` is set,
/// PCA-DR and BE-DR receive the sample covariance / mean of the original
/// data (the paper's §5.3 analysis mode); SF and UDR never use Σx.
core::AttackSuite FigureAttacks(const CommonConfig& common,
                                const data::SyntheticDataset& synthetic) {
  core::AttackSuite suite;
  core::UdrOptions udr;
  udr.estimator = common.fast_udr
                      ? core::UdrDensityEstimator::kGaussianClosedForm
                      : core::UdrDensityEstimator::kAs2000Grid;
  suite.Add(std::make_unique<core::UdrReconstructor>(udr));
  suite.Add(std::make_unique<core::SpectralFilteringReconstructor>());

  core::PcaOptions pca;
  core::BeDrOptions be;
  if (common.oracle_moments) {
    const linalg::Matrix original_cov =
        stats::SampleCovariance(synthetic.dataset.records());
    pca.oracle_covariance = original_cov;
    be.oracle_covariance = original_cov;
    be.oracle_mean = stats::ColumnMeans(synthetic.dataset.records());
  }
  suite.Add(std::make_unique<core::PcaReconstructor>(pca));
  suite.Add(std::make_unique<core::BayesEstimateReconstructor>(be));
  return suite;
}

/// One independent-noise trial: generate X from `spectrum`, disguise with
/// N(0, σ²) noise, run the suite, return RMSE per attack name.
Result<std::map<std::string, double>> RunIndependentNoiseTrial(
    const linalg::Vector& spectrum, const CommonConfig& common,
    uint64_t seed) {
  stats::Rng rng(seed);
  data::SyntheticDatasetSpec spec;
  spec.eigenvalues = spectrum;
  RR_ASSIGN_OR_RETURN(
      data::SyntheticDataset synthetic,
      data::GenerateSpectrumDataset(spec, common.num_records, &rng));

  const perturb::IndependentNoiseScheme scheme =
      perturb::IndependentNoiseScheme::Gaussian(spectrum.size(),
                                                common.noise_stddev);
  RR_ASSIGN_OR_RETURN(data::Dataset disguised,
                      scheme.Disguise(synthetic.dataset, &rng));

  const core::AttackSuite suite = FigureAttacks(common, synthetic);
  RR_ASSIGN_OR_RETURN(
      std::vector<core::ReconstructionReport> reports,
      suite.RunAll(synthetic.dataset, disguised, scheme.noise_model()));

  std::map<std::string, double> rmse;
  for (const core::ReconstructionReport& report : reports) {
    rmse[report.attack_name] = report.rmse;
  }
  return rmse;
}

/// Averages RunIndependentNoiseTrial over common.num_trials.
Result<std::map<std::string, double>> AverageIndependentNoiseTrials(
    const linalg::Vector& spectrum, const CommonConfig& common,
    size_t point_index) {
  std::map<std::string, double> sums;
  for (size_t trial = 0; trial < common.num_trials; ++trial) {
    RR_ASSIGN_OR_RETURN(
        auto rmse,
        RunIndependentNoiseTrial(
            spectrum, common, DeriveSeed(common.seed, point_index, trial)));
    for (const auto& [name, value] : rmse) sums[name] += value;
  }
  for (auto& [name, value] : sums) {
    value /= static_cast<double>(common.num_trials);
  }
  return sums;
}

/// Appends one x point to each of the four scheme series.
void AppendPoint(double x, const std::map<std::string, double>& rmse,
                 std::map<std::string, Series>* series) {
  for (const auto& [name, value] : rmse) {
    (*series)[name].name = name;
    (*series)[name].points.push_back({x, value});
  }
}

/// Assembles series in the paper's legend order.
std::vector<Series> InLegendOrder(std::map<std::string, Series> series,
                                  const std::vector<std::string>& order) {
  std::vector<Series> out;
  for (const std::string& name : order) {
    auto it = series.find(name);
    if (it != series.end()) out.push_back(std::move(it->second));
  }
  return out;
}

}  // namespace

Result<ExperimentResult> RunFigure1(const Figure1Config& config) {
  RR_RETURN_NOT_OK(config.common.Validate());
  if (config.num_principal == 0) {
    return Status::InvalidArgument("Figure1: num_principal must be >= 1");
  }
  ExperimentResult result;
  result.experiment_id = "Figure 1";
  result.title = "Increase the Number of Attributes (p = " +
                 std::to_string(config.num_principal) + " fixed)";
  result.x_label = "num_attributes";
  result.y_label = "Root Mean Square Error";

  std::map<std::string, Series> series;
  size_t point_index = 0;
  for (size_t m : config.attribute_counts) {
    if (m < config.num_principal) {
      return Status::InvalidArgument(
          "Figure1: attribute count " + std::to_string(m) +
          " below num_principal");
    }
    // Eq. 12 trace pin: Σλ = m · per_attribute_variance keeps the UDR
    // baseline flat while m (hence correlation redundancy) grows.
    const linalg::Vector spectrum = data::TwoLevelSpectrumWithTrace(
        m, config.num_principal, config.residual_eigenvalue,
        config.common.per_attribute_variance);
    RR_ASSIGN_OR_RETURN(auto rmse, AverageIndependentNoiseTrials(
                                       spectrum, config.common, point_index));
    AppendPoint(static_cast<double>(m), rmse, &series);
    ++point_index;
  }
  result.series =
      InLegendOrder(std::move(series), {"UDR", "SF", "PCA-DR", "BE-DR"});
  return result;
}

Result<ExperimentResult> RunFigure2(const Figure2Config& config) {
  RR_RETURN_NOT_OK(config.common.Validate());
  ExperimentResult result;
  result.experiment_id = "Figure 2";
  result.title = "Increase the Number of Principal Components (m = " +
                 std::to_string(config.num_attributes) + ")";
  result.x_label = "num_principal";
  result.y_label = "Root Mean Square Error";

  std::map<std::string, Series> series;
  size_t point_index = 0;
  for (size_t p : config.principal_counts) {
    if (p == 0 || p > config.num_attributes) {
      return Status::InvalidArgument("Figure2: invalid principal count " +
                                     std::to_string(p));
    }
    const linalg::Vector spectrum = data::TwoLevelSpectrumWithTrace(
        config.num_attributes, p, config.residual_eigenvalue,
        config.common.per_attribute_variance);
    RR_ASSIGN_OR_RETURN(auto rmse, AverageIndependentNoiseTrials(
                                       spectrum, config.common, point_index));
    AppendPoint(static_cast<double>(p), rmse, &series);
    ++point_index;
  }
  result.series =
      InLegendOrder(std::move(series), {"UDR", "SF", "PCA-DR", "BE-DR"});
  return result;
}

Result<ExperimentResult> RunFigure3(const Figure3Config& config) {
  RR_RETURN_NOT_OK(config.common.Validate());
  if (config.num_principal == 0 ||
      config.num_principal > config.num_attributes) {
    return Status::InvalidArgument("Figure3: invalid num_principal");
  }
  ExperimentResult result;
  result.experiment_id = "Figure 3";
  result.title =
      "Increase the Eigenvalues of the non-Principal Components (lambda = " +
      FormatDouble(config.principal_eigenvalue, 0) + ")";
  result.x_label = "residual_eigenvalue";
  result.y_label = "Root Mean Square Error";

  std::map<std::string, Series> series;
  size_t point_index = 0;
  for (double residual : config.residual_eigenvalues) {
    if (residual < 0.0 || residual >= config.principal_eigenvalue) {
      return Status::InvalidArgument(
          "Figure3: residual eigenvalue must be in [0, lambda)");
    }
    const linalg::Vector spectrum = data::TwoLevelSpectrum(
        config.num_attributes, config.num_principal,
        config.principal_eigenvalue, residual);
    RR_ASSIGN_OR_RETURN(auto rmse, AverageIndependentNoiseTrials(
                                       spectrum, config.common, point_index));
    AppendPoint(residual, rmse, &series);
    ++point_index;
  }
  result.series =
      InLegendOrder(std::move(series), {"UDR", "SF", "PCA-DR", "BE-DR"});
  return result;
}

Result<ExperimentResult> RunFigure4(const Figure4Config& config) {
  RR_RETURN_NOT_OK(config.common.Validate());
  if (config.num_principal == 0 ||
      config.num_principal > config.num_attributes) {
    return Status::InvalidArgument("Figure4: invalid num_principal");
  }
  ExperimentResult result;
  result.experiment_id = "Figure 4";
  result.title =
      "Increasing the correlation dissimilarity of data and random noise";
  result.x_label = "dissimilarity";
  result.y_label = "Root Mean Square Error";

  const size_t m = config.num_attributes;
  const double sigma2 = config.common.noise_stddev * config.common.noise_stddev;
  // Data spectrum: first 50 eigenvalues "have large numbers" (trace-pinned
  // like the other figures).
  const linalg::Vector data_spectrum = data::TwoLevelSpectrumWithTrace(
      m, config.num_principal, config.residual_eigenvalue,
      config.common.per_attribute_variance);

  // Noise eigenvalue profiles at the two interpolation ends, both with
  // trace m·σ² (total noise power equal to independent noise):
  //  * t = 0 "similar": proportional to the data spectrum — noise
  //    concentrates on the data's principal components (§8.1's recipe);
  //  * t = 1 "dissimilar": the reversed profile — noise concentrates on
  //    the non-principal components (the paper's right-of-the-line
  //    regime).
  const double noise_trace = static_cast<double>(m) * sigma2;
  const double data_trace = data::SpectrumTrace(data_spectrum);
  linalg::Vector similar(m), dissimilar(m);
  for (size_t i = 0; i < m; ++i) {
    similar[i] = data_spectrum[i] * noise_trace / data_trace;
    dissimilar[i] = data_spectrum[m - 1 - i] * noise_trace / data_trace;
  }

  std::map<std::string, Series> series;
  double independent_dissimilarity_sum = 0.0;
  size_t independent_dissimilarity_count = 0;

  size_t point_index = 0;
  for (double knob : config.similarity_knobs) {
    if (knob < 0.0 || knob > 1.0) {
      return Status::InvalidArgument("Figure4: similarity knob out of [0,1]");
    }
    const linalg::Vector noise_spectrum =
        perturb::InterpolateSpectra(similar, dissimilar, knob);

    std::map<std::string, double> rmse_sums;
    double dissimilarity_sum = 0.0;
    for (size_t trial = 0; trial < config.common.num_trials; ++trial) {
      stats::Rng rng(DeriveSeed(config.common.seed, point_index, trial));
      data::SyntheticDatasetSpec spec;
      spec.eigenvalues = data_spectrum;
      RR_ASSIGN_OR_RETURN(
          data::SyntheticDataset synthetic,
          data::GenerateSpectrumDataset(spec, config.common.num_records, &rng));

      // §8.2: "we fix the eigenvectors of the noises to be the same as
      // those of the original data, and we then change the eigenvalues."
      RR_ASSIGN_OR_RETURN(perturb::CorrelatedGaussianScheme scheme,
                          perturb::CorrelatedGaussianScheme::FromEigenstructure(
                              synthetic.eigenvectors, noise_spectrum));
      RR_ASSIGN_OR_RETURN(data::Dataset disguised,
                          scheme.Disguise(synthetic.dataset, &rng));

      // x-axis: Definition 8.1 on the data vs noise correlation matrices.
      const linalg::Matrix corr_x =
          linalg::CovarianceToCorrelation(synthetic.covariance);
      const linalg::Matrix corr_r =
          linalg::CovarianceToCorrelation(scheme.noise_model().covariance());
      RR_ASSIGN_OR_RETURN(double dis,
                          stats::CorrelationDissimilarity(corr_x, corr_r));
      dissimilarity_sum += dis;

      RR_ASSIGN_OR_RETURN(double independent_dis,
                          stats::DissimilarityToIndependentNoise(corr_x));
      independent_dissimilarity_sum += independent_dis;
      ++independent_dissimilarity_count;

      // Figure 4's line-up: SF, PCA-DR and the improved (Theorem 8.1)
      // BE-DR — our BE-DR applies Theorem 8.1 whenever the NoiseModel is
      // correlated. Oracle moments per the shared §5.3 analysis mode.
      core::AttackSuite suite;
      suite.Add(std::make_unique<core::SpectralFilteringReconstructor>());
      core::PcaOptions pca;
      core::BeDrOptions be;
      if (config.common.oracle_moments) {
        const linalg::Matrix original_cov =
            stats::SampleCovariance(synthetic.dataset.records());
        pca.oracle_covariance = original_cov;
        be.oracle_covariance = original_cov;
        be.oracle_mean = stats::ColumnMeans(synthetic.dataset.records());
      }
      suite.Add(std::make_unique<core::PcaReconstructor>(pca));
      suite.Add(std::make_unique<core::BayesEstimateReconstructor>(be));
      RR_ASSIGN_OR_RETURN(
          std::vector<core::ReconstructionReport> reports,
          suite.RunAll(synthetic.dataset, disguised, scheme.noise_model()));
      for (const core::ReconstructionReport& report : reports) {
        rmse_sums[report.attack_name] += report.rmse;
      }
    }
    const double trials = static_cast<double>(config.common.num_trials);
    const double x = dissimilarity_sum / trials;
    for (auto& [name, value] : rmse_sums) value /= trials;
    AppendPoint(x, rmse_sums, &series);
    ++point_index;
  }

  result.series =
      InLegendOrder(std::move(series), {"SF", "PCA-DR", "BE-DR"});
  // The paper labels Figure 4's Bayes curve "Improved BE-DR" (it applies
  // Theorem 8.1 instead of Eq. 11).
  for (Series& s : result.series) {
    if (s.name == "BE-DR") s.name = "Improved-BE-DR";
  }
  if (independent_dissimilarity_count > 0) {
    result.notes.push_back(
        "independent (uncorrelated) noise falls at dissimilarity = " +
        FormatDouble(independent_dissimilarity_sum /
                         static_cast<double>(independent_dissimilarity_count),
                     4) +
        " (the paper's vertical line)");
  }
  return result;
}

}  // namespace experiment
}  // namespace randrecon
