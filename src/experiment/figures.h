// Runners that regenerate each figure of the paper's evaluation section.
// Each returns an ExperimentResult whose series correspond one-to-one to
// the curves in the published plot; bench/fig*_ binaries print them.

#ifndef RANDRECON_EXPERIMENT_FIGURES_H_
#define RANDRECON_EXPERIMENT_FIGURES_H_

#include "common/result.h"
#include "experiment/config.h"
#include "experiment/series.h"

namespace randrecon {
namespace experiment {

/// Figure 1 — "Increase the Number of Attributes" (§7.2).
/// Series: UDR, SF, PCA-DR, BE-DR; x = m; y = RMSE.
Result<ExperimentResult> RunFigure1(const Figure1Config& config);

/// Figure 2 — "Increase the Number of Principal Components" (§7.3).
/// Series: UDR, SF, PCA-DR, BE-DR; x = p; y = RMSE.
Result<ExperimentResult> RunFigure2(const Figure2Config& config);

/// Figure 3 — "Increase the Eigenvalues of the non-Principal
/// Components" (§7.4). Series: UDR, SF, PCA-DR, BE-DR; x = residual
/// eigenvalue; y = RMSE.
Result<ExperimentResult> RunFigure3(const Figure3Config& config);

/// Figure 4 — "Increasing the correlation dissimilarity of the original
/// data and random noise" (§8.2). Series: SF, PCA-DR, BE-DR (the
/// Theorem 8.1 "improved" form); x = correlation dissimilarity
/// (Definition 8.1); y = RMSE. The result's notes record where
/// independent noise would fall on the x-axis (the paper's vertical
/// line).
Result<ExperimentResult> RunFigure4(const Figure4Config& config);

}  // namespace experiment
}  // namespace randrecon

#endif  // RANDRECON_EXPERIMENT_FIGURES_H_
