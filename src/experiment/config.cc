#include "experiment/config.h"

namespace randrecon {
namespace experiment {

Status CommonConfig::Validate() const {
  if (num_records < 2) {
    return Status::InvalidArgument("CommonConfig: num_records must be >= 2");
  }
  if (noise_stddev <= 0.0) {
    return Status::InvalidArgument("CommonConfig: noise_stddev must be > 0");
  }
  if (per_attribute_variance <= 0.0) {
    return Status::InvalidArgument(
        "CommonConfig: per_attribute_variance must be > 0");
  }
  if (num_trials == 0) {
    return Status::InvalidArgument("CommonConfig: num_trials must be >= 1");
  }
  return Status::OK();
}

}  // namespace experiment
}  // namespace randrecon
