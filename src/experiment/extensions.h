// Runners for the extension experiments (E1/E2): the §3 threat scenarios
// swept the same way the paper's figures are, returning ExperimentResult
// series that benches print and tests assert on.

#ifndef RANDRECON_EXPERIMENT_EXTENSIONS_H_
#define RANDRECON_EXPERIMENT_EXTENSIONS_H_

#include <vector>

#include "common/result.h"
#include "experiment/config.h"
#include "experiment/series.h"

namespace randrecon {
namespace experiment {

/// E1 — partial value disclosure (§3, third bullet): sweep how many
/// attributes the adversary knows out-of-band; y = RMSE on the unknown
/// attributes.
struct PartialDisclosureConfig {
  CommonConfig common;
  size_t num_attributes = 30;
  size_t num_principal = 3;
  double residual_eigenvalue = 1.0;
  /// Numbers of known attributes to sweep (each must be < m).
  std::vector<size_t> known_counts = {0, 1, 2, 4, 8, 16, 24, 29};
};

/// Series: "est" (honest attacker) and "oracle" (§5.3 moments).
Result<ExperimentResult> RunPartialDisclosureSweep(
    const PartialDisclosureConfig& config);

/// E2 — serial dependency (§3, second bullet): sweep the AR(1)
/// coefficient; y = de-noised series RMSE per embedding window.
struct SerialDependencyConfig {
  CommonConfig common;  ///< num_records = series length; noise_stddev = σ.
  /// Stationary standard deviation of the series (plays the role of the
  /// per-attribute variance pin).
  double stationary_stddev = 10.0;
  std::vector<double> coefficients = {0.0, 0.3, 0.6, 0.8, 0.9, 0.95, 0.99};
  std::vector<size_t> windows = {4, 16, 32};
};

/// Series: one per window width ("w=4", ...) plus "NDR" (the disguised
/// series itself).
Result<ExperimentResult> RunSerialDependencySweep(
    const SerialDependencyConfig& config);

}  // namespace experiment
}  // namespace randrecon

#endif  // RANDRECON_EXPERIMENT_EXTENSIONS_H_
