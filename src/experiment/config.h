// Experiment configurations. The paper omits n, σ and λ magnitudes; the
// defaults here (documented in EXPERIMENTS.md §Calibration) put every
// curve in the same numeric range as the published plots while keeping
// runtimes laptop-friendly. All fields are overridable.

#ifndef RANDRECON_EXPERIMENT_CONFIG_H_
#define RANDRECON_EXPERIMENT_CONFIG_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace randrecon {
namespace experiment {

/// Knobs shared by all four figures.
struct CommonConfig {
  /// Records per generated dataset (the paper's n is unstated).
  size_t num_records = 1000;
  /// Independent noise stddev σ: NDR's RMSE is exactly σ.
  double noise_stddev = 5.0;
  /// Average per-attribute data variance (Eq. 12 trace pin): keeps the
  /// UDR baseline constant across sweep points in Figures 1-2.
  double per_attribute_variance = 100.0;
  /// Independent repetitions averaged per sweep point.
  size_t num_trials = 3;
  /// Base seed; trial t of sweep point k derives its own stream.
  uint64_t seed = 20050614;
  /// Use the closed-form Gaussian UDR (exact for these MVN datasets and
  /// ~100x faster than the AS2000 grid; see ablation A5).
  bool fast_udr = true;
  /// §5.3 analysis mode (the paper's own setting): PCA-DR and BE-DR use
  /// the sample covariance of the *original* data rather than the
  /// Theorem 5.1 estimate ("we only analyze PCA-DR using covariance
  /// matrix from the original data ... there are only minor
  /// differences"). Set false for the honest attacker that estimates
  /// everything from the disguised data; ablation A4 quantifies the gap.
  bool oracle_moments = true;

  /// Validates ranges (positive sizes, σ > 0, ...).
  Status Validate() const;
};

/// Figure 1 (§7.2): fixed p, sweep the number of attributes m.
struct Figure1Config {
  CommonConfig common;
  /// The paper's p = 5.
  size_t num_principal = 5;
  /// Non-principal eigenvalues ("relatively small numbers").
  double residual_eigenvalue = 1.0;
  /// The m sweep, 5 → 100 like the paper's x-axis.
  std::vector<size_t> attribute_counts = {5,  10, 20, 30, 40, 50,
                                          60, 70, 80, 90, 100};
};

/// Figure 2 (§7.3): fixed m = 100, sweep the principal-component count p.
struct Figure2Config {
  CommonConfig common;
  size_t num_attributes = 100;
  double residual_eigenvalue = 1.0;
  /// The p sweep, 2 → 100 like the paper's x-axis.
  std::vector<size_t> principal_counts = {2,  5,  10, 20, 30, 40,
                                          50, 60, 70, 80, 90, 100};
};

/// Figure 3 (§7.4): m = 100, first 20 eigenvalues fixed at λ = 400,
/// sweep the non-principal eigenvalue.
struct Figure3Config {
  CommonConfig common;
  size_t num_attributes = 100;
  size_t num_principal = 20;
  /// The paper's λ = 400.
  double principal_eigenvalue = 400.0;
  /// The sweep of the other 80 eigenvalues, 1 → 50 like the paper.
  std::vector<double> residual_eigenvalues = {1.0,  5.0,  10.0, 15.0,
                                              20.0, 25.0, 30.0, 35.0,
                                              40.0, 45.0, 50.0};
};

/// Figure 4 (§8.2): m = 100, first 50 eigenvalues large; noise shares the
/// data's eigenvectors and its eigenvalue profile is interpolated from
/// "similar to the data" (t = 0) to "concentrated on the non-principal
/// components" (t = 1). The x-axis is the resulting correlation
/// dissimilarity (Definition 8.1).
struct Figure4Config {
  CommonConfig common;
  size_t num_attributes = 100;
  size_t num_principal = 50;
  double residual_eigenvalue = 1.0;
  /// Interpolation knob values; each maps to one x (dissimilarity) value.
  std::vector<double> similarity_knobs = {0.0, 0.125, 0.25, 0.375, 0.5,
                                          0.625, 0.75, 0.875, 1.0};
};

}  // namespace experiment
}  // namespace randrecon

#endif  // RANDRECON_EXPERIMENT_CONFIG_H_
