// Result containers for the experiment harness: each paper figure is a
// set of named series (one per attack scheme) over a swept parameter,
// printable as a fixed-width table (the "rows the paper reports") and
// exportable as CSV for replotting.

#ifndef RANDRECON_EXPERIMENT_SERIES_H_
#define RANDRECON_EXPERIMENT_SERIES_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace randrecon {
namespace experiment {

/// One point of one curve.
struct SeriesPoint {
  double x = 0.0;
  double y = 0.0;
};

/// One curve (e.g. "PCA-DR" in Figure 1).
struct Series {
  std::string name;
  std::vector<SeriesPoint> points;
};

/// A complete figure reproduction.
struct ExperimentResult {
  std::string experiment_id;  ///< e.g. "Figure 1".
  std::string title;
  std::string x_label;
  std::string y_label;
  std::vector<Series> series;
  /// Free-form annotations (e.g. Figure 4's "noise is independent at
  /// dissimilarity = ...").
  std::vector<std::string> notes;

  /// Looks a series up by name; nullptr if absent.
  const Series* FindSeries(const std::string& name) const;
};

/// Fixed-width table: one row per x value, one column per series.
std::string FormatExperimentTable(const ExperimentResult& result,
                                  int precision = 4);

/// CSV with header "x,<series1>,<series2>,..." — one row per x value.
/// Assumes all series share the same x grid (the runners guarantee it);
/// fails with InvalidArgument otherwise.
Result<std::string> ExperimentToCsv(const ExperimentResult& result);

/// Writes ExperimentToCsv output to `path`.
Status WriteExperimentCsv(const ExperimentResult& result,
                          const std::string& path);

}  // namespace experiment
}  // namespace randrecon

#endif  // RANDRECON_EXPERIMENT_SERIES_H_
