#include "experiment/extensions.h"

#include <cmath>

#include "core/be_dr.h"
#include "core/partial_disclosure.h"
#include "core/serial_reconstruction.h"
#include "data/synthetic.h"
#include "data/timeseries.h"
#include "perturb/schemes.h"
#include "stats/moments.h"

namespace randrecon {
namespace experiment {
namespace {

uint64_t DeriveSeed(uint64_t base, size_t point, size_t trial) {
  uint64_t h = base;
  h ^= (static_cast<uint64_t>(point) + 1) * 0x9E3779B97F4A7C15ULL;
  h ^= (static_cast<uint64_t>(trial) + 1) * 0xC2B2AE3D27D4EB4FULL;
  h ^= h >> 29;
  return h;
}

double UnknownColumnsRmse(const linalg::Matrix& x, const linalg::Matrix& x_hat,
                          size_t num_known) {
  double sum = 0.0;
  size_t count = 0;
  for (size_t j = num_known; j < x.cols(); ++j) {
    for (size_t i = 0; i < x.rows(); ++i) {
      const double d = x(i, j) - x_hat(i, j);
      sum += d * d;
      ++count;
    }
  }
  return count > 0 ? std::sqrt(sum / static_cast<double>(count)) : 0.0;
}

double SeriesRmse(const linalg::Vector& a, const linalg::Vector& b) {
  double sum = 0.0;
  for (size_t t = 0; t < a.size(); ++t) sum += (a[t] - b[t]) * (a[t] - b[t]);
  return std::sqrt(sum / static_cast<double>(a.size()));
}

}  // namespace

Result<ExperimentResult> RunPartialDisclosureSweep(
    const PartialDisclosureConfig& config) {
  RR_RETURN_NOT_OK(config.common.Validate());
  if (config.num_principal == 0 ||
      config.num_principal > config.num_attributes) {
    return Status::InvalidArgument("PartialDisclosureSweep: bad principal count");
  }
  for (size_t k : config.known_counts) {
    if (k >= config.num_attributes) {
      return Status::InvalidArgument(
          "PartialDisclosureSweep: known count " + std::to_string(k) +
          " must be < m");
    }
  }

  ExperimentResult result;
  result.experiment_id = "Extension E1";
  result.title = "Partial value disclosure: privacy of the unknown attributes";
  result.x_label = "known_attributes";
  result.y_label = "Root Mean Square Error (unknown attributes)";
  Series est{"est", {}};
  Series oracle{"oracle", {}};

  size_t point = 0;
  for (size_t k : config.known_counts) {
    double est_sum = 0.0;
    double oracle_sum = 0.0;
    for (size_t trial = 0; trial < config.common.num_trials; ++trial) {
      stats::Rng rng(DeriveSeed(config.common.seed, point, trial));
      data::SyntheticDatasetSpec spec;
      spec.eigenvalues = data::TwoLevelSpectrumWithTrace(
          config.num_attributes, config.num_principal,
          config.residual_eigenvalue, config.common.per_attribute_variance);
      RR_ASSIGN_OR_RETURN(
          data::SyntheticDataset synthetic,
          data::GenerateSpectrumDataset(spec, config.common.num_records, &rng));
      auto scheme = perturb::IndependentNoiseScheme::Gaussian(
          config.num_attributes, config.common.noise_stddev);
      RR_ASSIGN_OR_RETURN(data::Dataset disguised,
                          scheme.Disguise(synthetic.dataset, &rng));
      const linalg::Matrix& x = synthetic.dataset.records();

      std::vector<size_t> known;
      linalg::Matrix known_values(x.rows(), k);
      for (size_t j = 0; j < k; ++j) {
        known.push_back(j);
        for (size_t i = 0; i < x.rows(); ++i) known_values(i, j) = x(i, j);
      }
      core::PartialDisclosureReconstructor honest({known});
      core::BeDrOptions oracle_options;
      oracle_options.oracle_covariance = stats::SampleCovariance(x);
      oracle_options.oracle_mean = stats::ColumnMeans(x);
      core::PartialDisclosureReconstructor with_oracle({known},
                                                       oracle_options);
      RR_ASSIGN_OR_RETURN(linalg::Matrix honest_hat,
                          honest.Reconstruct(disguised.records(),
                                             scheme.noise_model(),
                                             known_values));
      RR_ASSIGN_OR_RETURN(linalg::Matrix oracle_hat,
                          with_oracle.Reconstruct(disguised.records(),
                                                  scheme.noise_model(),
                                                  known_values));
      est_sum += UnknownColumnsRmse(x, honest_hat, k);
      oracle_sum += UnknownColumnsRmse(x, oracle_hat, k);
    }
    const double trials = static_cast<double>(config.common.num_trials);
    est.points.push_back({static_cast<double>(k), est_sum / trials});
    oracle.points.push_back({static_cast<double>(k), oracle_sum / trials});
    ++point;
  }
  result.series = {std::move(est), std::move(oracle)};
  return result;
}

Result<ExperimentResult> RunSerialDependencySweep(
    const SerialDependencyConfig& config) {
  RR_RETURN_NOT_OK(config.common.Validate());
  if (config.stationary_stddev <= 0.0) {
    return Status::InvalidArgument(
        "SerialDependencySweep: stationary_stddev must be positive");
  }
  for (double rho : config.coefficients) {
    if (std::fabs(rho) >= 1.0) {
      return Status::InvalidArgument(
          "SerialDependencySweep: |coefficient| must be < 1");
    }
  }
  if (config.windows.empty()) {
    return Status::InvalidArgument("SerialDependencySweep: no windows");
  }

  ExperimentResult result;
  result.experiment_id = "Extension E2";
  result.title = "Serial dependency: de-noising an AR(1) series";
  result.x_label = "ar1_coefficient";
  result.y_label = "Root Mean Square Error";
  std::vector<Series> series;
  for (size_t window : config.windows) {
    series.push_back({"w=" + std::to_string(window), {}});
  }
  series.push_back({"NDR", {}});

  const double sigma = config.common.noise_stddev;
  size_t point = 0;
  for (double rho : config.coefficients) {
    std::vector<double> sums(config.windows.size() + 1, 0.0);
    for (size_t trial = 0; trial < config.common.num_trials; ++trial) {
      stats::Rng rng(DeriveSeed(config.common.seed, point, trial));
      data::Ar1Spec spec;
      spec.coefficient = rho;
      spec.innovation_stddev =
          config.stationary_stddev * std::sqrt(1.0 - rho * rho);
      RR_ASSIGN_OR_RETURN(
          linalg::Vector original,
          data::GenerateAr1Series(spec, config.common.num_records, &rng));
      linalg::Vector disguised = original;
      for (double& y : disguised) y += rng.Gaussian(0.0, sigma);

      for (size_t w = 0; w < config.windows.size(); ++w) {
        core::SerialReconstructionOptions options;
        options.window = config.windows[w];
        RR_ASSIGN_OR_RETURN(
            linalg::Vector estimate,
            core::SerialCorrelationReconstructor(options).Reconstruct(
                disguised, sigma * sigma));
        sums[w] += SeriesRmse(original, estimate);
      }
      sums.back() += SeriesRmse(original, disguised);
    }
    const double trials = static_cast<double>(config.common.num_trials);
    for (size_t s = 0; s < series.size(); ++s) {
      series[s].points.push_back({rho, sums[s] / trials});
    }
    ++point;
  }
  result.series = std::move(series);
  return result;
}

}  // namespace experiment
}  // namespace randrecon
