#include "experiment/series.h"

#include <fstream>
#include <sstream>

#include "common/check.h"
#include "common/string_util.h"

namespace randrecon {
namespace experiment {

const Series* ExperimentResult::FindSeries(const std::string& name) const {
  for (const Series& s : series) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string FormatExperimentTable(const ExperimentResult& result,
                                  int precision) {
  std::ostringstream out;
  out << "== " << result.experiment_id << ": " << result.title << " ==\n";
  out << result.y_label << " vs " << result.x_label << "\n\n";

  const size_t col_width = 16;
  out << PadLeft(result.x_label.size() > col_width
                     ? result.x_label.substr(0, col_width)
                     : result.x_label,
                 col_width);
  for (const Series& s : result.series) {
    out << PadLeft(s.name, col_width);
  }
  out << "\n" << std::string(col_width * (result.series.size() + 1), '-')
      << "\n";

  const size_t num_rows =
      result.series.empty() ? 0 : result.series.front().points.size();
  for (size_t row = 0; row < num_rows; ++row) {
    out << PadLeft(FormatDouble(result.series.front().points[row].x, 3),
                   col_width);
    for (const Series& s : result.series) {
      if (row < s.points.size()) {
        out << PadLeft(FormatDouble(s.points[row].y, precision), col_width);
      } else {
        out << PadLeft("-", col_width);
      }
    }
    out << "\n";
  }
  for (const std::string& note : result.notes) {
    out << "note: " << note << "\n";
  }
  return out.str();
}

Result<std::string> ExperimentToCsv(const ExperimentResult& result) {
  std::ostringstream out;
  out << "x";
  for (const Series& s : result.series) out << "," << s.name;
  out << "\n";
  const size_t num_rows =
      result.series.empty() ? 0 : result.series.front().points.size();
  for (const Series& s : result.series) {
    if (s.points.size() != num_rows) {
      return Status::InvalidArgument("ExperimentToCsv: series '" + s.name +
                                     "' has a different length");
    }
  }
  for (size_t row = 0; row < num_rows; ++row) {
    const double x = result.series.front().points[row].x;
    for (const Series& s : result.series) {
      if (s.points[row].x != x) {
        return Status::InvalidArgument(
            "ExperimentToCsv: series x grids differ at row " +
            std::to_string(row));
      }
    }
    out << FormatDouble(x, 6);
    for (const Series& s : result.series) {
      out << "," << FormatDouble(s.points[row].y, 6);
    }
    out << "\n";
  }
  return out.str();
}

Status WriteExperimentCsv(const ExperimentResult& result,
                          const std::string& path) {
  RR_ASSIGN_OR_RETURN(std::string csv, ExperimentToCsv(result));
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IoError("WriteExperimentCsv: cannot open '" + path + "'");
  }
  file << csv;
  file.close();
  if (file.fail()) {
    return Status::IoError("WriteExperimentCsv: write failed for '" + path +
                           "'");
  }
  return Status::OK();
}

}  // namespace experiment
}  // namespace randrecon
