#include "pipeline/ingest.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace randrecon {
namespace pipeline {
namespace {

// Ingest telemetry (common/metrics.h). The accounting identity
// `offered == appended + shed` (batches and rows) is exact at Close —
// every counter below ticks exactly once per batch outcome — and
// tools/check_report.py refuses any ingest run report that breaks it.
// The shed_* counters partition ingest.shed by cause.
metrics::Counter m_offered("ingest.offered");
metrics::Counter m_appended("ingest.appended");
metrics::Counter m_shed("ingest.shed");
metrics::Counter m_shed_admission("ingest.shed_admission");
metrics::Counter m_shed_expired("ingest.shed_expired");
metrics::Counter m_shed_store_error("ingest.shed_store_error");
metrics::Counter m_rows_offered("ingest.rows_offered");
metrics::Counter m_rows_appended("ingest.rows_appended");
metrics::Counter m_rows_shed("ingest.rows_shed");
metrics::Gauge g_queue_depth("ingest.queue_depth");
metrics::Histogram h_push_block("ingest.queue_push_block_nanos");
metrics::Histogram h_pop_block("ingest.queue_pop_block_nanos");
metrics::Histogram h_append("ingest.append_nanos");

BoundedQueueInstruments QueueInstruments() {
  BoundedQueueInstruments instruments;
  instruments.depth = &g_queue_depth;
  instruments.push_block_nanos = &h_push_block;
  instruments.pop_block_nanos = &h_pop_block;
  return instruments;
}

}  // namespace

IngestService::IngestService(data::RollingShardedStoreWriter writer,
                             IngestOptions options)
    : options_(options),
      writer_(std::move(writer)),
      queue_(options.queue_batches, QueueInstruments()) {}

Result<std::unique_ptr<IngestService>> IngestService::Start(
    const std::string& manifest_path, std::vector<std::string> column_names,
    IngestOptions options) {
  if (options.queue_batches == 0) {
    return Status::InvalidArgument("ingest '" + manifest_path +
                                   "': queue_batches must be >= 1");
  }
  RR_ASSIGN_OR_RETURN(data::RollingShardedStoreWriter writer,
                      data::RollingShardedStoreWriter::Create(
                          manifest_path, std::move(column_names),
                          options.store));
  // No make_unique: the constructor is private.
  std::unique_ptr<IngestService> service(
      new IngestService(std::move(writer), options));
  service->writer_thread_ =
      std::thread(&IngestService::WriterLoop, service.get());
  return service;
}

IngestService::~IngestService() {
  Close();  // Best-effort; errors surface via explicit Close().
}

const std::string& IngestService::manifest_path() const {
  // Immutable after construction, so safe from any thread.
  return writer_.manifest_path();
}

void IngestService::CountShed(size_t num_rows) {
  batches_shed_.fetch_add(1, std::memory_order_relaxed);
  rows_shed_.fetch_add(num_rows, std::memory_order_relaxed);
  m_shed.Add(1);
  m_rows_shed.Add(num_rows);
}

Status IngestService::Offer(const linalg::Matrix& chunk, size_t num_rows,
                            uint64_t deadline_nanos) {
  if (closed_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("ingest '" + manifest_path() +
                                      "': Offer after Close");
  }
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (!error_.ok()) return error_;
  }
  const size_t m = writer_.num_attributes();
  if (chunk.cols() != m) {
    return Status::InvalidArgument(
        "ingest '" + manifest_path() + "': chunk has " +
        std::to_string(chunk.cols()) + " columns, store has " +
        std::to_string(m));
  }
  RR_CHECK(num_rows <= chunk.rows())
      << "IngestService::Offer: num_rows exceeds chunk";
  // From here the batch is OFFERED: whatever happens next counts as
  // exactly one of appended / shed.
  batches_offered_.fetch_add(1, std::memory_order_relaxed);
  rows_offered_.fetch_add(num_rows, std::memory_order_relaxed);
  m_offered.Add(1);
  m_rows_offered.Add(num_rows);

  Batch batch;
  batch.num_rows = num_rows;
  batch.deadline_nanos = deadline_nanos;
  batch.rows = linalg::Matrix(num_rows, m);
  std::memcpy(batch.rows.data(), chunk.data(),
              num_rows * m * sizeof(double));

  // Admission is bounded by the tighter of the service's admission
  // timeout and the batch's own deadline; with neither, a full queue
  // sheds immediately (pure try semantics). Never block forever.
  bool bounded = false;
  uint64_t admission_deadline = 0;
  if (options_.admission_timeout_nanos > 0) {
    admission_deadline = trace::NowNanos() + options_.admission_timeout_nanos;
    bounded = true;
  }
  if (deadline_nanos != 0) {
    admission_deadline =
        bounded ? std::min(admission_deadline, deadline_nanos)
                : deadline_nanos;
    bounded = true;
  }
  const QueueOpResult pushed =
      bounded ? queue_.PushUntil(std::move(batch), admission_deadline)
              : queue_.TryPush(std::move(batch));
  switch (pushed) {
    case QueueOpResult::kOk:
      return Status::OK();
    case QueueOpResult::kFull:
    case QueueOpResult::kTimedOut: {
      CountShed(num_rows);
      m_shed_admission.Add(1);
      // Overload sheds thousands of batches per second; rate-limited so
      // the shed path stays cheap and stderr stays readable (the exact
      // totals live in the counters, not the log).
      RR_LOG_EVERY_N(kWarning, 64)
          << "ingest '" << manifest_path() << "': batch of " << num_rows
          << " rows shed at admission (queue full)";
      return Status::Unavailable(
          "ingest '" + manifest_path() +
          "': queue full past the admission deadline — batch shed, retry "
          "with backoff");
    }
    case QueueOpResult::kClosed:
      // Raced a Close() that won after our closed_ check. The batch was
      // counted offered, so it must be counted shed — never silent.
      CountShed(num_rows);
      m_shed_admission.Add(1);
      return Status::FailedPrecondition("ingest '" + manifest_path() +
                                        "': Offer after Close");
    case QueueOpResult::kEmpty:
      break;  // Unreachable for a push.
  }
  RR_CHECK(false) << "IngestService::Offer: impossible queue result";
  return Status::OK();
}

void IngestService::WriterLoop() {
  Batch batch;
  while (queue_.Pop(&batch) == QueueOpResult::kOk) {
    // A deadline that expired while the batch sat in the queue sheds it
    // HERE, at dequeue: the write must start before the deadline or not
    // at all.
    if (batch.deadline_nanos != 0 &&
        trace::NowNanos() >= batch.deadline_nanos) {
      CountShed(batch.num_rows);
      m_shed_expired.Add(1);
      RR_LOG_EVERY_N(kWarning, 64)
          << "ingest '" << manifest_path() << "': batch of "
          << batch.num_rows << " rows shed — deadline expired in queue";
      continue;
    }
    // Once the store errored sticky, remaining batches shed (counted)
    // instead of piling more errors onto a dead store.
    {
      std::lock_guard<std::mutex> lock(error_mutex_);
      if (!error_.ok()) {
        CountShed(batch.num_rows);
        m_shed_store_error.Add(1);
        // The sticky error repeats for every remaining batch; the first
        // few lines say everything.
        RR_LOG_FIRST_N(kWarning, 4)
            << "ingest '" << manifest_path()
            << "': batch shed — store already failed: " << error_.ToString();
        continue;
      }
    }
    Status appended;
    {
      trace::TraceSpan span("ingest.append", &h_append);
      appended = writer_.Append(batch.rows, batch.num_rows);
    }
    if (!appended.ok()) {
      std::lock_guard<std::mutex> lock(error_mutex_);
      if (error_.ok()) error_ = appended;
      CountShed(batch.num_rows);
      m_shed_store_error.Add(1);
      continue;
    }
    batches_appended_.fetch_add(1, std::memory_order_relaxed);
    rows_appended_.fetch_add(batch.num_rows, std::memory_order_relaxed);
    m_appended.Add(1);
    m_rows_appended.Add(batch.num_rows);
    // Honor the age trigger even when Append alone did not rotate. A
    // retryable failure here (e.g. a transient publish error) is left
    // for the next rotation — the rows ARE in the store and the
    // manifest on disk is still the previous good one.
    const Status rotated = writer_.MaybeRotate();
    if (!rotated.ok() && !rotated.IsRetryable()) {
      std::lock_guard<std::mutex> lock(error_mutex_);
      if (error_.ok()) error_ = rotated;
    }
  }
  // Closed and drained: final rotation + manifest publish.
  const Status closed = writer_.Close();
  if (!closed.ok()) {
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (error_.ok()) error_ = closed;
  }
}

Status IngestService::Close() {
  const bool already = closed_.exchange(true, std::memory_order_acq_rel);
  if (!already) {
    queue_.Close();
    if (writer_thread_.joinable()) writer_thread_.join();
  }
  std::lock_guard<std::mutex> lock(error_mutex_);
  return error_;
}

IngestStats IngestService::stats() const {
  IngestStats stats;
  stats.batches_offered = batches_offered_.load(std::memory_order_relaxed);
  stats.batches_appended = batches_appended_.load(std::memory_order_relaxed);
  stats.batches_shed = batches_shed_.load(std::memory_order_relaxed);
  stats.rows_offered = rows_offered_.load(std::memory_order_relaxed);
  stats.rows_appended = rows_appended_.load(std::memory_order_relaxed);
  stats.rows_shed = rows_shed_.load(std::memory_order_relaxed);
  return stats;
}

std::string IngestService::StatusJson() const {
  const IngestStats momentary = stats();
  std::string json = "{";
  json.append("\"queue_depth\":" + std::to_string(queue_.size()));
  json.append(",\"queue_capacity\":" +
              std::to_string(options_.queue_batches));
  json.append(",\"closed\":");
  json.append(closed_.load(std::memory_order_relaxed) ? "true" : "false");
  json.append(",\"batches_offered\":" +
              std::to_string(momentary.batches_offered));
  json.append(",\"batches_appended\":" +
              std::to_string(momentary.batches_appended));
  json.append(",\"batches_shed\":" + std::to_string(momentary.batches_shed));
  json.append(",\"rows_offered\":" + std::to_string(momentary.rows_offered));
  json.append(",\"rows_appended\":" +
              std::to_string(momentary.rows_appended));
  json.append(",\"rows_shed\":" + std::to_string(momentary.rows_shed));
  json.append("}");
  return json;
}

}  // namespace pipeline
}  // namespace randrecon
