#include "pipeline/streaming_attack.h"

#include <cmath>
#include <cstring>
#include <utility>

#include "common/metrics.h"
#include "common/trace.h"
#include "linalg/eigen.h"
#include "linalg/kernels.h"
#include "stats/streaming_moments.h"

namespace randrecon {
namespace pipeline {
namespace {

// Attack-pipeline telemetry (common/metrics.h). Record/chunk counters
// are exact; the per-chunk latency histograms and the stage spans are
// timing-only — nothing below branches on them, so the numeric output
// is bitwise identical with telemetry compiled out.
metrics::Counter m_attack_runs("attack.runs");
metrics::Counter m_records_pass1("attack.records_pass1");
metrics::Counter m_records_pass2("attack.records_pass2");
metrics::Counter m_chunks_pass1("attack.chunks_pass1");
metrics::Counter m_chunks_pass2("attack.chunks_pass2");
metrics::Gauge m_last_rows_per_second("attack.last_rows_per_second");
metrics::Histogram m_pass1_chunk_nanos("attack.pass1_chunk_nanos");
metrics::Histogram m_pass2_chunk_nanos("attack.pass2_chunk_nanos");

/// The eigenbasis and diagnostics pass 2 projects through.
struct AttackBasis {
  linalg::Matrix q_hat;  ///< m x p principal eigenvectors.
  linalg::Vector eigenvalues;
  size_t num_components = 0;
};

Result<AttackBasis> SelectBasis(const StreamingAttackOptions& options,
                                const linalg::Matrix& cov_y,
                                const perturb::NoiseModel& noise,
                                size_t num_records) {
  AttackBasis basis;
  switch (options.attack) {
    case StreamingAttack::kSpectralFiltering: {
      // SF separates signal from noise on Cov(Y) directly via the
      // Marchenko–Pastur bound — no noise subtraction.
      RR_ASSIGN_OR_RETURN(linalg::EigenDecomposition eig,
                          linalg::SymmetricEigen(cov_y));
      basis.num_components = core::SelectSfComponents(
          eig.eigenvalues, noise, num_records, options.sf);
      basis.eigenvalues = std::move(eig.eigenvalues);
      basis.q_hat = eig.eigenvectors.LeftColumns(basis.num_components);
      return basis;
    }
    case StreamingAttack::kPcaDr: {
      // Theorem 5.1/8.2 estimate (or the §5.3 oracle), then the eigengap
      // rule — the exact code path of core::PcaReconstructor.
      linalg::Matrix cov_x;
      if (options.pca.oracle_covariance.has_value()) {
        if (options.pca.oracle_covariance->rows() != cov_y.rows()) {
          return Status::InvalidArgument(
              "StreamingAttackPipeline: oracle covariance dimension mismatch");
        }
        cov_x = *options.pca.oracle_covariance;
      } else {
        RR_ASSIGN_OR_RETURN(cov_x,
                            core::EstimateOriginalCovariance(
                                cov_y, noise, options.pca.moment_options));
      }
      RR_ASSIGN_OR_RETURN(linalg::EigenDecomposition eig,
                          linalg::SymmetricEigen(cov_x));
      basis.num_components =
          core::SelectNumComponents(eig.eigenvalues, options.pca);
      basis.eigenvalues = std::move(eig.eigenvalues);
      basis.q_hat = eig.eigenvectors.LeftColumns(basis.num_components);
      return basis;
    }
  }
  return Status::InvalidArgument("StreamingAttackPipeline: unknown attack");
}

/// Elapsed nanos since `start`, saturating at 0 (a test's FakeClockGuard
/// may move the clock backwards under a running measurement).
uint64_t NanosSince(uint64_t start) {
  const uint64_t now = trace::NowNanos();
  return now >= start ? now - start : 0;
}

}  // namespace

Result<StreamingAttackReport> StreamingAttackPipeline::Run(
    RecordSource* disguised, const perturb::NoiseModel& noise, ChunkSink* sink,
    RecordSource* reference) const {
  RR_CHECK(disguised != nullptr) << "StreamingAttackPipeline: null source";
  RR_CHECK(sink != nullptr) << "StreamingAttackPipeline: null sink";
  // chunk_rows is plain job configuration (possibly external), so a bad
  // value fails the job instead of RR_CHECK-aborting a whole batch.
  if (options_.chunk_rows == 0) {
    return Status::InvalidArgument(
        "StreamingAttackPipeline: chunk_rows must be positive");
  }
  const size_t m = disguised->num_attributes();
  if (m == 0 || m != noise.num_attributes()) {
    return Status::InvalidArgument(
        "StreamingAttackPipeline: noise model has " +
        std::to_string(noise.num_attributes()) + " attributes, stream has " +
        std::to_string(m));
  }
  if (reference != nullptr && reference->num_attributes() != m) {
    return Status::InvalidArgument(
        "StreamingAttackPipeline: reference stream width mismatch");
  }

  linalg::Matrix chunk(options_.chunk_rows, m);

  // ---- Pass 1: moments (two sweeps) + one eigendecomposition. ---------
  // Store-backed sources expose zero-copy columnar block slices; the
  // moment sweeps then run straight over the mapping, skipping the
  // columnar→row-major gather entirely. The columnar accumulators are
  // bitwise identical to the row-major ones (stats/streaming_moments.h),
  // so which path runs never changes the covariance.
  m_attack_runs.Add(1);
  const uint64_t run_start_nanos = trace::NowNanos();
  stats::StreamingMoments moments(m, options_.parallel);
  ColumnarBlockStream* columnar = disguised->columnar_blocks();
  std::vector<const double*> block_columns;
  {
    trace::TraceSpan means_span("attack.pass1_means");
    if (columnar != nullptr) {
      RR_RETURN_NOT_OK(columnar->ResetBlocks());
      for (;;) {
        const uint64_t chunk_start = trace::NowNanos();
        RR_ASSIGN_OR_RETURN(const size_t rows,
                            columnar->NextBlockColumns(&block_columns));
        if (rows == 0) break;
        moments.AccumulateMeansColumns(block_columns.data(), rows);
        m_pass1_chunk_nanos.Record(NanosSince(chunk_start));
        m_chunks_pass1.Add(1);
        m_records_pass1.Add(rows);
      }
    } else {
      RR_RETURN_NOT_OK(disguised->Reset());
      for (;;) {
        const uint64_t chunk_start = trace::NowNanos();
        RR_ASSIGN_OR_RETURN(const size_t rows, disguised->NextChunk(&chunk));
        if (rows == 0) break;
        moments.AccumulateMeans(chunk, rows);
        m_pass1_chunk_nanos.Record(NanosSince(chunk_start));
        m_chunks_pass1.Add(1);
        m_records_pass1.Add(rows);
      }
    }
  }
  const size_t n = moments.num_records();
  if (n < 2) {
    return Status::InvalidArgument(
        "StreamingAttackPipeline: need at least 2 records, saw " +
        std::to_string(n));
  }
  moments.FinalizeMeans();
  size_t scatter_records = 0;
  {
    trace::TraceSpan scatter_span("attack.pass1_scatter");
    if (columnar != nullptr) {
      RR_RETURN_NOT_OK(columnar->ResetBlocks());
      for (;;) {
        const uint64_t chunk_start = trace::NowNanos();
        RR_ASSIGN_OR_RETURN(const size_t rows,
                            columnar->NextBlockColumns(&block_columns));
        if (rows == 0) break;
        moments.AccumulateScatterColumns(block_columns.data(), rows);
        scatter_records += rows;
        m_pass1_chunk_nanos.Record(NanosSince(chunk_start));
        m_chunks_pass1.Add(1);
      }
    } else {
      RR_RETURN_NOT_OK(disguised->Reset());
      for (;;) {
        const uint64_t chunk_start = trace::NowNanos();
        RR_ASSIGN_OR_RETURN(const size_t rows, disguised->NextChunk(&chunk));
        if (rows == 0) break;
        moments.AccumulateScatter(chunk, rows);
        scatter_records += rows;
        m_pass1_chunk_nanos.Record(NanosSince(chunk_start));
        m_chunks_pass1.Add(1);
      }
    }
  }
  // A drifting source (records appended/lost between sweeps) is a data
  // error, not a programming error: fail the job before the accumulator's
  // own count RR_CHECK would abort the process.
  if (scatter_records != n) {
    return Status::InvalidArgument(
        "StreamingAttackPipeline: source served " +
        std::to_string(scatter_records) + " records on the scatter sweep but " +
        std::to_string(n) + " on the means sweep");
  }
  const linalg::Vector mean = moments.means();
  const linalg::Matrix cov_y = moments.FinalizeCovariance();

  AttackBasis basis;
  {
    trace::TraceSpan eigen_span("attack.eigen");
    RR_ASSIGN_OR_RETURN(basis, SelectBasis(options_, cov_y, noise, n));
  }
  const size_t p = basis.num_components;

  // ---- Pass 2: project every chunk through the basis. -----------------
  RR_RETURN_NOT_OK(disguised->Reset());
  if (reference != nullptr) RR_RETURN_NOT_OK(reference->Reset());
  linalg::Matrix reference_chunk(reference != nullptr ? options_.chunk_rows : 0,
                                 reference != nullptr ? m : 0);
  linalg::Matrix centered(options_.chunk_rows, m);
  linalg::Matrix scores(options_.chunk_rows, m);  // p <= m columns used.
  linalg::Matrix reconstructed(options_.chunk_rows, m);
  double squared_vs_disguised = 0.0;
  double squared_vs_reference = 0.0;
  size_t row_offset = 0;
  trace::TraceSpan pass2_span("attack.pass2");
  for (;;) {
    const uint64_t chunk_start = trace::NowNanos();
    RR_ASSIGN_OR_RETURN(const size_t rows, disguised->NextChunk(&chunk));
    if (rows == 0) break;
    // X̂ = Ȳ Q̂ Q̂ᵀ + µ̂, chunk-wise through the pointer kernels (no
    // per-chunk allocation): scores = Ȳ Q̂, then X̂ = scores Q̂ᵀ.
    for (size_t i = 0; i < rows; ++i) {
      const double* in_row = chunk.row_data(i);
      double* out_row = centered.row_data(i);
      for (size_t j = 0; j < m; ++j) out_row[j] = in_row[j] - mean[j];
    }
    linalg::kernels::MatMul(centered.data(), basis.q_hat.data(), scores.data(),
                            rows, m, p, options_.parallel);
    linalg::kernels::MatMulABt(scores.data(), basis.q_hat.data(),
                               reconstructed.data(), rows, p, m,
                               options_.parallel);
    for (size_t i = 0; i < rows; ++i) {
      double* row = reconstructed.row_data(i);
      for (size_t j = 0; j < m; ++j) row[j] += mean[j];
    }
    // Running metrics fold element-by-element in record order, so they
    // are independent of the chunking too.
    for (size_t i = 0; i < rows; ++i) {
      const double* recon_row = reconstructed.row_data(i);
      const double* disguised_row = chunk.row_data(i);
      for (size_t j = 0; j < m; ++j) {
        const double d = recon_row[j] - disguised_row[j];
        squared_vs_disguised += d * d;
      }
    }
    if (reference != nullptr) {
      // Gather exactly `rows` reference records. A source may legally
      // under-fill its buffer (NextChunk only promises "how many were
      // written"), so drain it until this chunk is covered; only true
      // exhaustion is a misalignment. Asking for the full buffer directly
      // is safe only when the targets coincide — requesting more than
      // `rows` could consume records belonging to the next chunk.
      size_t gathered = 0;
      if (rows == reference_chunk.rows()) {
        RR_ASSIGN_OR_RETURN(gathered, reference->NextChunk(&reference_chunk));
      }
      while (gathered < rows) {  // Under-filled or ragged final chunk.
        linalg::Matrix window(rows - gathered, m);
        RR_ASSIGN_OR_RETURN(const size_t got, reference->NextChunk(&window));
        if (got == 0) {
          return Status::InvalidArgument(
              "StreamingAttackPipeline: reference stream ended at record " +
              std::to_string(row_offset + gathered) + ", input has more");
        }
        std::memcpy(reference_chunk.row_data(gathered), window.data(),
                    got * m * sizeof(double));
        gathered += got;
      }
      for (size_t i = 0; i < rows; ++i) {
        const double* recon_row = reconstructed.row_data(i);
        const double* reference_row = reference_chunk.row_data(i);
        for (size_t j = 0; j < m; ++j) {
          const double d = recon_row[j] - reference_row[j];
          squared_vs_reference += d * d;
        }
      }
    }
    RR_RETURN_NOT_OK(sink->Consume(row_offset, reconstructed, rows));
    row_offset += rows;
    m_pass2_chunk_nanos.Record(NanosSince(chunk_start));
    m_chunks_pass2.Add(1);
    m_records_pass2.Add(rows);
  }
  pass2_span.Finish();
  if (row_offset != n) {
    return Status::InvalidArgument(
        "StreamingAttackPipeline: source served " + std::to_string(row_offset) +
        " records on pass 2 but " + std::to_string(n) + " on pass 1");
  }
  if (reference != nullptr) {
    RR_ASSIGN_OR_RETURN(const size_t extra, reference->NextChunk(&reference_chunk));
    if (extra != 0) {
      return Status::InvalidArgument(
          "StreamingAttackPipeline: reference stream longer than the input");
    }
  }

  StreamingAttackReport report;
  report.num_records = n;
  report.num_attributes = m;
  report.num_components = p;
  report.eigenvalues = std::move(basis.eigenvalues);
  report.mean = mean;
  const double denom = static_cast<double>(n) * static_cast<double>(m);
  report.rmse_vs_disguised = std::sqrt(squared_vs_disguised / denom);
  report.has_reference = reference != nullptr;
  if (report.has_reference) {
    report.rmse_vs_reference = std::sqrt(squared_vs_reference / denom);
  }
  const uint64_t run_nanos = NanosSince(run_start_nanos);
  if (run_nanos > 0) {
    m_last_rows_per_second.Set(static_cast<int64_t>(
        static_cast<double>(n) * 1e9 / static_cast<double>(run_nanos)));
  }
  return report;
}

}  // namespace pipeline
}  // namespace randrecon
