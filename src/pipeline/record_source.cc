#include "pipeline/record_source.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "common/failpoint.h"

namespace randrecon {
namespace pipeline {

namespace {

/// Fires in every store-backed NextChunk — the seam retry tests and the
/// CI fault-injection matrix use to make a read-side stage fail or crash
/// on its Nth chunk without corrupting any file.
Failpoint fp_next_chunk("source.next_chunk");

}  // namespace

Result<size_t> MatrixRecordSource::NextChunk(linalg::Matrix* buffer) {
  RR_CHECK_EQ(buffer->cols(), records_->cols())
      << "MatrixRecordSource: chunk buffer width mismatch";
  const size_t rows =
      std::min(buffer->rows(), records_->rows() - next_row_);
  if (rows > 0) {
    std::memcpy(buffer->data(), records_->row_data(next_row_),
                rows * records_->cols() * sizeof(double));
    next_row_ += rows;
  }
  return rows;
}

Result<CsvRecordSource> CsvRecordSource::Open(const std::string& path) {
  RR_ASSIGN_OR_RETURN(data::CsvChunkReader reader,
                      data::CsvChunkReader::Open(path));
  return CsvRecordSource(std::move(reader));
}

Result<CsvRecordSource> CsvRecordSource::FromString(std::string text) {
  RR_ASSIGN_OR_RETURN(data::CsvChunkReader reader,
                      data::CsvChunkReader::FromString(std::move(text)));
  return CsvRecordSource(std::move(reader));
}

Result<ColumnStoreRecordSource> ColumnStoreRecordSource::Open(
    const std::string& path, data::ColumnStoreReadOptions options) {
  RR_ASSIGN_OR_RETURN(data::ColumnStoreReader reader,
                      data::ColumnStoreReader::Open(path, options));
  return ColumnStoreRecordSource(std::move(reader));
}

Result<size_t> ColumnStoreRecordSource::NextChunk(linalg::Matrix* buffer) {
  RR_CHECK_EQ(buffer->cols(), reader_.num_attributes())
      << "ColumnStoreRecordSource: chunk buffer width mismatch";
  RR_FAILPOINT(fp_next_chunk);
  const size_t rows =
      std::min(buffer->rows(), reader_.num_records() - next_row_);
  if (rows > 0) {
    RR_RETURN_NOT_OK(reader_.ReadRows(next_row_, rows, buffer));
    next_row_ += rows;
  }
  return rows;
}

Result<size_t> ColumnStoreRecordSource::NextBlockColumns(
    std::vector<const double*>* columns) {
  if (next_block_ == reader_.num_blocks()) return size_t{0};
  const size_t m = reader_.num_attributes();
  columns->resize(m);
  for (size_t j = 0; j < m; ++j) {
    // The first column's fetch verifies the block checksum; the rest hit
    // the verified bitmap.
    RR_ASSIGN_OR_RETURN((*columns)[j], reader_.BlockColumn(next_block_, j));
  }
  const size_t rows = reader_.rows_in_block(next_block_);
  ++next_block_;
  return rows;
}

Result<ShardedRecordSource> ShardedRecordSource::Open(
    const std::string& manifest_path,
    data::ColumnStoreReadOptions store_options) {
  RR_ASSIGN_OR_RETURN(data::ShardedStoreReader reader,
                      data::ShardedStoreReader::Open(manifest_path,
                                                     store_options));
  return ShardedRecordSource(std::move(reader));
}

Result<size_t> ShardedRecordSource::NextChunk(linalg::Matrix* buffer) {
  RR_CHECK_EQ(buffer->cols(), reader_.num_attributes())
      << "ShardedRecordSource: chunk buffer width mismatch";
  RR_FAILPOINT(fp_next_chunk);
  const size_t rows =
      std::min(buffer->rows(), reader_.num_records() - next_row_);
  if (rows > 0) {
    RR_RETURN_NOT_OK(reader_.ReadRows(next_row_, rows, buffer));
    next_row_ += rows;
  }
  return rows;
}

Result<size_t> ShardedRecordSource::NextBlockColumns(
    std::vector<const double*>* columns) {
  // Blocks are enumerated shard by shard, each shard's blocks in order —
  // the same record order NextChunk serves. Shards' final blocks may be
  // partial, so global blocks are ragged; consumers only see per-block
  // row counts, which is all the moment accumulator needs.
  for (;;) {
    if (block_shard_ == reader_.num_shards()) return size_t{0};
    RR_ASSIGN_OR_RETURN(data::ColumnStoreReader * shard,
                        reader_.shard(block_shard_));
    if (block_in_shard_ == shard->num_blocks()) {
      ++block_shard_;
      block_in_shard_ = 0;
      continue;
    }
    const size_t m = shard->num_attributes();
    columns->resize(m);
    for (size_t j = 0; j < m; ++j) {
      RR_ASSIGN_OR_RETURN((*columns)[j],
                          shard->BlockColumn(block_in_shard_, j));
    }
    const size_t rows = shard->rows_in_block(block_in_shard_);
    ++block_in_shard_;
    return rows;
  }
}

Result<size_t> SnapshotRecordSource::NextChunk(linalg::Matrix* buffer) {
  RR_CHECK_EQ(buffer->cols(), snapshot_.num_attributes())
      << "SnapshotRecordSource: chunk buffer width mismatch";
  RR_FAILPOINT(fp_next_chunk);
  const size_t rows =
      std::min(buffer->rows(), snapshot_.num_records() - next_row_);
  if (rows > 0) {
    RR_RETURN_NOT_OK(snapshot_.ReadRows(next_row_, rows, buffer));
    next_row_ += rows;
  }
  return rows;
}

Result<size_t> SnapshotRecordSource::NextBlockColumns(
    std::vector<const double*>* columns) {
  // Identical enumeration to ShardedRecordSource::NextBlockColumns —
  // the bitwise contract between a scheduled snapshot attack and an
  // offline sweep over the same manifest depends on the two sources
  // serving the same ragged block sequence.
  data::ShardedStoreReader& reader = snapshot_.store_reader();
  for (;;) {
    if (block_shard_ == reader.num_shards()) return size_t{0};
    RR_ASSIGN_OR_RETURN(data::ColumnStoreReader * shard,
                        reader.shard(block_shard_));
    if (block_in_shard_ == shard->num_blocks()) {
      ++block_shard_;
      block_in_shard_ = 0;
      continue;
    }
    const size_t m = shard->num_attributes();
    columns->resize(m);
    for (size_t j = 0; j < m; ++j) {
      RR_ASSIGN_OR_RETURN((*columns)[j],
                          shard->BlockColumn(block_in_shard_, j));
    }
    const size_t rows = shard->rows_in_block(block_in_shard_);
    ++block_in_shard_;
    return rows;
  }
}

Result<MvnRecordSource> MvnRecordSource::Create(
    const linalg::Vector& mean, const linalg::Matrix& covariance,
    size_t num_records, uint64_t seed, GeneratorMode mode) {
  RR_ASSIGN_OR_RETURN(
      stats::MultivariateNormalSampler sampler,
      stats::MultivariateNormalSampler::Create(mean, covariance));
  return MvnRecordSource(std::move(sampler), num_records, seed, mode);
}

Result<size_t> MvnRecordSource::NextChunk(linalg::Matrix* buffer) {
  RR_CHECK_EQ(buffer->cols(), sampler_.dimension())
      << "MvnRecordSource: chunk buffer width mismatch";
  const size_t rows = std::min(buffer->rows(), num_records_ - served_);
  if (mode_ == GeneratorMode::kCounterBatch) {
    return NextChunkBatch(buffer, rows);
  }
  // Sequential path: draws are strictly record-ordered, so record i
  // receives the same pseudo-random values no matter how the stream is
  // chunked.
  for (size_t i = 0; i < rows; ++i) {
    buffer->SetRow(i, sampler_.SampleRecord(&rng_));
  }
  served_ += rows;
  return rows;
}

Result<size_t> MvnRecordSource::NextChunkBatch(linalg::Matrix* buffer,
                                               size_t rows) {
  constexpr uint64_t kBlock = stats::kBatchBlockRows;
  const size_t m = sampler_.dimension();
  const uint64_t r0 = served_;
  const uint64_t r1 = served_ + rows;
  if (rows == 0) return size_t{0};
  const uint64_t b0 = r0 / kBlock;
  const uint64_t b1 = (r1 - 1) / kBlock;
  // Pass 1 (parallel): every block fully covered by this chunk is
  // generated straight into the caller's buffer.
  ParallelForEach(0, static_cast<size_t>(b1 - b0 + 1), [&](size_t i) {
    const uint64_t b = b0 + i;
    if (b * kBlock < r0 || (b + 1) * kBlock > r1) return;  // edge block
    sampler_.SampleBlockSlice(base_, b, 0, kBlock,
                              buffer->row_data(
                                  static_cast<size_t>(b * kBlock - r0)));
  }, parallel_);
  // Pass 2 (serial): edge blocks straddling the chunk go through the
  // one-block cache; consecutive small chunks reuse it.
  for (uint64_t b = b0; b <= b1; ++b) {
    const uint64_t lo = std::max(r0, b * kBlock);
    const uint64_t hi = std::min(r1, (b + 1) * kBlock);
    if (lo == b * kBlock && hi == (b + 1) * kBlock) continue;  // done above
    if (cached_block_ != b) {
      if (block_cache_.rows() != kBlock || block_cache_.cols() != m) {
        block_cache_ = linalg::Matrix(kBlock, m);
      }
      sampler_.SampleBlockSlice(base_, b, 0, kBlock, block_cache_.data());
      cached_block_ = b;
    }
    std::memcpy(buffer->row_data(static_cast<size_t>(lo - r0)),
                block_cache_.row_data(static_cast<size_t>(lo - b * kBlock)),
                static_cast<size_t>(hi - lo) * m * sizeof(double));
  }
  served_ += rows;
  return rows;
}

PerturbingRecordSource::PerturbingRecordSource(
    std::unique_ptr<RecordSource> inner,
    const perturb::RandomizationScheme* scheme, uint64_t seed,
    GeneratorMode mode)
    : inner_(std::move(inner)),
      scheme_(scheme),
      seed_(seed),
      mode_(mode),
      rng_(seed),
      base_(seed, kNoiseStreamTag) {
  RR_CHECK(inner_ != nullptr) << "PerturbingRecordSource: null inner source";
  RR_CHECK(scheme_ != nullptr) << "PerturbingRecordSource: null scheme";
  RR_CHECK_EQ(inner_->num_attributes(), scheme_->num_attributes())
      << "PerturbingRecordSource: scheme/source width mismatch";
  if (mode_ == GeneratorMode::kCounterBatch && !scheme_->SupportsBatchNoise()) {
    mode_ = GeneratorMode::kSequentialRng;
  }
}

Result<size_t> PerturbingRecordSource::NextChunk(linalg::Matrix* buffer) {
  RR_ASSIGN_OR_RETURN(const size_t rows, inner_->NextChunk(buffer));
  if (rows == 0) return rows;
  if (mode_ == GeneratorMode::kCounterBatch) {
    scheme_->AddNoiseAt(base_, served_, rows, buffer, parallel_);
    served_ += rows;
    return rows;
  }
  // Noise draws are record-ordered inside GenerateNoise, so the disguised
  // stream is also chunk-size invariant.
  const linalg::Matrix noise = scheme_->GenerateNoise(rows, &rng_);
  for (size_t i = 0; i < rows; ++i) {
    double* row = buffer->row_data(i);
    const double* noise_row = noise.row_data(i);
    for (size_t j = 0; j < noise.cols(); ++j) row[j] += noise_row[j];
  }
  served_ += rows;
  return rows;
}

}  // namespace pipeline
}  // namespace randrecon
