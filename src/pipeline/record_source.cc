#include "pipeline/record_source.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace randrecon {
namespace pipeline {

Result<size_t> MatrixRecordSource::NextChunk(linalg::Matrix* buffer) {
  RR_CHECK_EQ(buffer->cols(), records_->cols())
      << "MatrixRecordSource: chunk buffer width mismatch";
  const size_t rows =
      std::min(buffer->rows(), records_->rows() - next_row_);
  if (rows > 0) {
    std::memcpy(buffer->data(), records_->row_data(next_row_),
                rows * records_->cols() * sizeof(double));
    next_row_ += rows;
  }
  return rows;
}

Result<CsvRecordSource> CsvRecordSource::Open(const std::string& path) {
  RR_ASSIGN_OR_RETURN(data::CsvChunkReader reader,
                      data::CsvChunkReader::Open(path));
  return CsvRecordSource(std::move(reader));
}

Result<CsvRecordSource> CsvRecordSource::FromString(std::string text) {
  RR_ASSIGN_OR_RETURN(data::CsvChunkReader reader,
                      data::CsvChunkReader::FromString(std::move(text)));
  return CsvRecordSource(std::move(reader));
}

Result<MvnRecordSource> MvnRecordSource::Create(
    const linalg::Vector& mean, const linalg::Matrix& covariance,
    size_t num_records, uint64_t seed) {
  RR_ASSIGN_OR_RETURN(
      stats::MultivariateNormalSampler sampler,
      stats::MultivariateNormalSampler::Create(mean, covariance));
  return MvnRecordSource(std::move(sampler), num_records, seed);
}

Result<size_t> MvnRecordSource::NextChunk(linalg::Matrix* buffer) {
  RR_CHECK_EQ(buffer->cols(), sampler_.dimension())
      << "MvnRecordSource: chunk buffer width mismatch";
  const size_t rows = std::min(buffer->rows(), num_records_ - served_);
  // Draws are strictly record-ordered, so record i receives the same
  // pseudo-random values no matter how the stream is chunked.
  for (size_t i = 0; i < rows; ++i) {
    buffer->SetRow(i, sampler_.SampleRecord(&rng_));
  }
  served_ += rows;
  return rows;
}

PerturbingRecordSource::PerturbingRecordSource(
    std::unique_ptr<RecordSource> inner,
    const perturb::RandomizationScheme* scheme, uint64_t seed)
    : inner_(std::move(inner)), scheme_(scheme), seed_(seed), rng_(seed) {
  RR_CHECK(inner_ != nullptr) << "PerturbingRecordSource: null inner source";
  RR_CHECK(scheme_ != nullptr) << "PerturbingRecordSource: null scheme";
  RR_CHECK_EQ(inner_->num_attributes(), scheme_->num_attributes())
      << "PerturbingRecordSource: scheme/source width mismatch";
}

Result<size_t> PerturbingRecordSource::NextChunk(linalg::Matrix* buffer) {
  RR_ASSIGN_OR_RETURN(const size_t rows, inner_->NextChunk(buffer));
  if (rows == 0) return rows;
  // Noise draws are record-ordered inside GenerateNoise, so the disguised
  // stream is also chunk-size invariant.
  const linalg::Matrix noise = scheme_->GenerateNoise(rows, &rng_);
  for (size_t i = 0; i < rows; ++i) {
    double* row = buffer->row_data(i);
    const double* noise_row = noise.row_data(i);
    for (size_t j = 0; j < noise.cols(); ++j) row[j] += noise_row[j];
  }
  return rows;
}

}  // namespace pipeline
}  // namespace randrecon
