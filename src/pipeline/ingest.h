// The overload-safe concurrent ingest core: N producers → bounded
// queue → one writer thread → rolling sharded store.
//
// This is the robustness substrate the continuous-ingest attack service
// (ROADMAP) sits on. Producers call Offer() from any thread; the rows
// cross a BoundedQueue (common/bounded_queue.h) into a dedicated writer
// thread draining into a RollingShardedStoreWriter
// (data/rolling_store.h), which rotates shards and republishes the
// manifest so concurrent RollingStoreSnapshotReaders always have a
// sealed prefix to attack. Three properties are load-bearing:
//
//   * Bounded memory: at most `queue_batches` batches are in flight.
//     A full queue pushes back on producers, never the allocator.
//   * Admission control, never unbounded blocking: Offer waits at most
//     `admission_timeout_nanos` (and never past the batch's own
//     deadline) for room. If the queue stays full, the batch is SHED:
//     Offer returns Status::Unavailable — the retryable-transient code
//     (common/status.h), so a producer with a retry budget backs off
//     and re-offers — and the shed is counted, never silent.
//   * Exact accounting: every offered batch is either appended or shed,
//     so `ingest.shed + ingest.appended == ingest.offered` (same for
//     the row counters) holds at Close. tools/check_report.py enforces
//     the identity on every ingest run report.
//
// Per-batch deadlines propagate THROUGH the queue: a batch whose
// deadline_nanos passes while it waits in the queue is shed at dequeue
// (counted under ingest.shed_expired) instead of being written late —
// admission latency and queue latency share one budget, measured on
// trace::NowNanos() like every deadline in the repo.
//
// Shutdown: Close() closes the queue (producers start failing fast),
// drains every already-accepted batch into the store (the queue's
// drain-after-close contract), closes the writer (final rotation +
// manifest publish), and joins the thread. Batches accepted before
// Close are never lost.

#ifndef RANDRECON_PIPELINE_INGEST_H_
#define RANDRECON_PIPELINE_INGEST_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/result.h"
#include "data/rolling_store.h"
#include "linalg/matrix.h"

namespace randrecon {
namespace pipeline {

/// Ingest service knobs.
struct IngestOptions {
  /// Queue capacity, in batches (>= 1) — the memory bound.
  size_t queue_batches = 64;
  /// Longest an Offer may wait for queue room before shedding. 0 means
  /// shed immediately when full (pure try semantics). A batch deadline
  /// tightens (never loosens) this bound.
  uint64_t admission_timeout_nanos = 50ull * 1000 * 1000;
  /// Rotation + retention policy of the underlying rolling store.
  data::RollingStoreOptions store;
};

/// Running totals of the accounting identity (all exact at Close; a
/// momentary view mid-run). offered == appended + shed, batch-wise and
/// row-wise.
struct IngestStats {
  uint64_t batches_offered = 0;
  uint64_t batches_appended = 0;
  uint64_t batches_shed = 0;
  uint64_t rows_offered = 0;
  uint64_t rows_appended = 0;
  uint64_t rows_shed = 0;
};

/// The producer-facing ingest front end. Thread-safe: Offer may be
/// called from any number of threads; Close from one.
class IngestService {
 public:
  /// Validates options (and the store options, per
  /// RollingShardedStoreWriter::Create) and starts the writer thread.
  /// Touches no files until the first batch is appended.
  static Result<std::unique_ptr<IngestService>> Start(
      const std::string& manifest_path, std::vector<std::string> column_names,
      IngestOptions options = {});

  IngestService(const IngestService&) = delete;
  IngestService& operator=(const IngestService&) = delete;

  /// Close()s best-effort — call Close() explicitly to observe errors.
  ~IngestService();

  /// Copies the leading `num_rows` rows of `chunk` into the queue.
  /// `deadline_nanos` (0 = none) is an absolute trace::NowNanos()
  /// deadline for the WHOLE batch — admission and queue residency
  /// included; the write itself starts before the deadline or not at
  /// all. Returns:
  ///   * OK                 — accepted (will be appended unless the
  ///                          deadline expires in the queue);
  ///   * Unavailable        — SHED at admission: queue full past the
  ///                          admission timeout / batch deadline.
  ///                          Retryable; counted under ingest.shed;
  ///   * FailedPrecondition — the service is closed;
  ///   * the writer's error — ingest already failed sticky (a shed is
  ///                          also counted, so accounting stays exact).
  Status Offer(const linalg::Matrix& chunk, size_t num_rows,
               uint64_t deadline_nanos = 0);

  /// Stops admission, drains accepted batches, closes the store (final
  /// rotation + publish), joins the writer thread. Idempotent. Returns
  /// the first writer/store error, if any.
  Status Close();

  /// Exact once Close() returned; a momentary snapshot before that.
  IngestStats stats() const;

  /// Momentary service state as a JSON object — the ingest section of
  /// the stats server's /statusz. Reads only atomics and the queue's
  /// own depth accessor, so it is safe (and non-perturbing) from the
  /// serving thread while producers and the writer run full tilt.
  std::string StatusJson() const;

  /// The manifest path snapshots attack.
  const std::string& manifest_path() const;

  /// Published-manifest state — safe to read only after Close().
  uint64_t published_rows() const { return writer_.published_rows(); }
  size_t published_shards() const { return writer_.published_shards(); }

 private:
  /// One queued unit of work.
  struct Batch {
    linalg::Matrix rows;
    size_t num_rows = 0;
    uint64_t deadline_nanos = 0;
  };

  IngestService(data::RollingShardedStoreWriter writer, IngestOptions options);

  /// Writer-thread body: drain until closed-and-empty.
  void WriterLoop();

  /// Counts one shed batch everywhere the identity needs it.
  void CountShed(size_t num_rows);

  IngestOptions options_;
  data::RollingShardedStoreWriter writer_;
  BoundedQueue<Batch> queue_;
  std::thread writer_thread_;
  /// First store/writer error, sticky (mirrors the writer's own
  /// deferred error so producers fail fast instead of queueing into a
  /// dead store). Guarded by error_mutex_.
  mutable std::mutex error_mutex_;
  Status error_;
  std::atomic<bool> closed_{false};
  std::atomic<uint64_t> batches_offered_{0};
  std::atomic<uint64_t> batches_appended_{0};
  std::atomic<uint64_t> batches_shed_{0};
  std::atomic<uint64_t> rows_offered_{0};
  std::atomic<uint64_t> rows_appended_{0};
  std::atomic<uint64_t> rows_shed_{0};
};

}  // namespace pipeline
}  // namespace randrecon

#endif  // RANDRECON_PIPELINE_INGEST_H_
