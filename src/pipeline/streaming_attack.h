// StreamingAttackPipeline: the paper's covariance-driven attacks (SF and
// PCA-DR) run out-of-core over a chunked record stream.
//
// Everything those attacks need from the n x m disguised matrix Y is its
// column means, its m x m sample covariance, and one more look at every
// record to project it — all streamable. The pipeline therefore runs in
// two logical passes with peak resident data
// O((chunk_rows + kGramChunkRows)·m + m²) — the second term is the
// moment accumulator's fixed 4096-row staging block, which dominates if
// chunk_rows is shrunk below it:
//
//   Pass 1 — moments: stream Y through stats::StreamingMoments (two
//     sweeps: means, then centered scatter), eigendecompose ONCE:
//       SF      — eigenvectors of Cov(Y), p from the Marchenko–Pastur
//                 bound (core::SelectSfComponents);
//       PCA-DR  — Theorem 5.1/8.2 estimate Σ̂x = Cov(Y) − Σr
//                 (core::EstimateOriginalCovariance), p from the
//                 eigengap rule (core::SelectNumComponents).
//   Pass 2 — projection: stream Y again, reconstruct each chunk as
//     X̂ = Ȳ Q̂ Q̂ᵀ + µ̂, emit it to a ChunkSink, and fold running error
//     metrics (vs. the disguised input, and vs. an optional aligned
//     ground-truth stream).
//
// Fidelity contract (tested in streaming_attack_test): the streamed
// covariance is BITWISE equal to the in-memory stats::SampleCovariance,
// so the eigenbasis and component count match the in-memory attack
// exactly; the chunked projection agrees with core::PcaReconstructor /
// SpectralFilteringReconstructor to <= 1e-10 per entry.

#ifndef RANDRECON_PIPELINE_STREAMING_ATTACK_H_
#define RANDRECON_PIPELINE_STREAMING_ATTACK_H_

#include "common/parallel.h"
#include "common/result.h"
#include "core/pca_dr.h"
#include "core/spectral_filtering.h"
#include "perturb/noise_model.h"
#include "pipeline/chunk_sink.h"
#include "pipeline/record_source.h"

namespace randrecon {
namespace pipeline {

/// Which covariance attack the pipeline runs.
enum class StreamingAttack {
  kPcaDr,
  kSpectralFiltering,
};

/// Configuration for StreamingAttackPipeline.
struct StreamingAttackOptions {
  StreamingAttack attack = StreamingAttack::kPcaDr;
  /// Records per streamed chunk. The default matches the Gram
  /// accumulation block, but ANY value yields bitwise-identical moments.
  size_t chunk_rows = 4096;
  /// PCA-DR knobs (component selection, PSD clipping, §5.3 oracle mode).
  core::PcaOptions pca;
  /// SF knobs (bound scale, minimum components).
  core::SfOptions sf;
  /// Kernel parallelism; results are bitwise identical for any setting.
  ParallelOptions parallel;
};

/// What the pipeline learned, next to the emitted reconstruction.
struct StreamingAttackReport {
  size_t num_records = 0;
  size_t num_attributes = 0;
  /// Selected component count p.
  size_t num_components = 0;
  /// The spectrum the selection ran on: Cov(Y)'s eigenvalues for SF, the
  /// estimated original eigenvalues for PCA-DR (descending).
  linalg::Vector eigenvalues;
  /// Estimated mean µ̂ (column means of the disguised stream).
  linalg::Vector mean;
  /// RMSE between the reconstruction and the disguised input — how much
  /// the attack moved the data (≈ removed noise energy).
  double rmse_vs_disguised = 0.0;
  /// RMSE against the aligned ground-truth stream, when one was given —
  /// the paper's privacy measure.
  double rmse_vs_reference = 0.0;
  bool has_reference = false;
};

/// Runs SF / PCA-DR over unbounded record streams in bounded memory.
class StreamingAttackPipeline {
 public:
  StreamingAttackPipeline() = default;
  explicit StreamingAttackPipeline(StreamingAttackOptions options)
      : options_(std::move(options)) {}

  /// Attacks the `disguised` stream, emitting reconstructed chunks to
  /// `sink` (pass NullChunkSink to keep metrics only). `reference`, when
  /// non-null, must be an aligned stream of the original records (same
  /// n, same order) and feeds rmse_vs_reference. Fails with
  /// InvalidArgument on shape mismatches or misaligned streams and
  /// propagates source/sink errors.
  Result<StreamingAttackReport> Run(RecordSource* disguised,
                                    const perturb::NoiseModel& noise,
                                    ChunkSink* sink,
                                    RecordSource* reference = nullptr) const;

  const StreamingAttackOptions& options() const { return options_; }

 private:
  StreamingAttackOptions options_;
};

}  // namespace pipeline
}  // namespace randrecon

#endif  // RANDRECON_PIPELINE_STREAMING_ATTACK_H_
