#include "pipeline/runner.h"

#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "data/file_io.h"
#include "data/shard_store.h"
#include "pipeline/source_factory.h"

namespace randrecon {
namespace pipeline {
namespace {

// Runner telemetry (common/metrics.h). Job counters are exact for any
// worker count: each job increments its own outcome counter exactly
// once, and integer adds commute.
metrics::Counter m_jobs_run("pipeline.jobs_run");
metrics::Counter m_jobs_ok("pipeline.jobs_ok");
metrics::Counter m_jobs_failed("pipeline.jobs_failed");
metrics::Counter m_job_retries("pipeline.job_retries");
metrics::Counter m_deadline_exceeded("pipeline.deadline_exceeded");
metrics::Counter m_shard_probes("pipeline.shard_probes");
metrics::Counter m_shards_excluded("pipeline.shards_excluded");
metrics::Histogram m_job_wall_nanos("pipeline.job_wall_nanos");
metrics::Histogram m_backoff_nanos("pipeline.backoff_nanos");

/// One attempt: build fresh sources, run the pipeline once.
Status RunJobAttempt(const PipelineJob& job, StreamingAttackReport* report) {
  Result<std::unique_ptr<RecordSource>> disguised = job.disguised();
  if (!disguised.ok()) return disguised.status();

  std::unique_ptr<RecordSource> reference;
  if (job.reference) {
    Result<std::unique_ptr<RecordSource>> made = job.reference();
    if (!made.ok()) return made.status();
    reference = std::move(made).value();
  }

  NullChunkSink null_sink;
  ChunkSink* sink = job.sink != nullptr ? job.sink.get() : &null_sink;

  const StreamingAttackPipeline pipeline(job.attack);
  Result<StreamingAttackReport> run = pipeline.Run(
      disguised.value().get(), job.noise, sink, reference.get());
  if (!run.ok()) return run.status();
  *report = std::move(run).value();
  return Status::OK();
}

PipelineJobResult RunOneJobOrThrow(const PipelineJob& job) {
  PipelineJobResult result;
  result.name = job.name;
  trace::TraceSpan job_span("pipeline.job", &m_job_wall_nanos);
  m_jobs_run.Add(1);
  Stopwatch stopwatch;
  auto finish = [&](Status status) {
    (status.ok() ? m_jobs_ok : m_jobs_failed).Add(1);
    if (status.code() == StatusCode::kDeadlineExceeded) {
      m_deadline_exceeded.Add(1);
    }
    result.status = std::move(status);
    result.elapsed_seconds = stopwatch.ElapsedSeconds();
    return result;
  };

  if (!job.disguised) {
    return finish(
        Status::InvalidArgument("PipelineJob: no disguised source factory"));
  }

  const int max_attempts = std::max(job.retry.max_attempts, 1);
  const double deadline = job.retry.deadline_seconds;
  const uint64_t job_key = RetryJobKey(job.name);
  auto deadline_error = [&](const Status& last) {
    return Status::DeadlineExceeded(
        "PipelineJob '" + job.name + "': deadline of " +
        std::to_string(deadline) + "s exceeded after " +
        std::to_string(result.attempts) + " attempt(s); last error: " +
        last.ToString());
  };

  Status last;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      // Deterministic capped-exponential backoff: the wait for (job,
      // attempt) replays exactly on a rerun (pipeline/retry.h).
      const double backoff = RetryBackoffSeconds(job.retry, job_key, attempt);
      if (deadline > 0.0 &&
          stopwatch.ElapsedSeconds() + backoff >= deadline) {
        return finish(deadline_error(last));
      }
      if (backoff > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      }
      m_job_retries.Add(1);
      m_backoff_nanos.Record(static_cast<uint64_t>(backoff * 1e9));
      RR_LOG(kWarning) << "job '" << job.name << "': attempt " << attempt
                       << " of " << max_attempts << " after "
                       << last.ToString();
    }
    result.attempts = attempt;
    Status status = RunJobAttempt(job, &result.report);
    if (status.ok()) return finish(Status::OK());
    last = std::move(status);
    // Deterministic failures reproduce on every attempt — stop now.
    if (!last.IsRetryable()) break;
    if (deadline > 0.0 && stopwatch.ElapsedSeconds() >= deadline) {
      return finish(deadline_error(last));
    }
  }
  return finish(std::move(last));
}

/// The documented isolation contract covers user-supplied factories and
/// sinks too: an exception escaping one job (e.g. bad_alloc materializing
/// a huge source) must fail that job, not reach the thread pool's
/// catch-all abort or escape RunPipelineJobs.
PipelineJobResult RunOneJob(const PipelineJob& job) {
  try {
    return RunOneJobOrThrow(job);
  } catch (const std::exception& e) {
    m_jobs_failed.Add(1);
    PipelineJobResult result;
    result.name = job.name;
    result.status = Status::FailedPrecondition(
        std::string("PipelineJob: uncaught exception: ") + e.what());
    return result;
  } catch (...) {
    m_jobs_failed.Add(1);
    PipelineJobResult result;
    result.name = job.name;
    result.status =
        Status::FailedPrecondition("PipelineJob: uncaught non-std exception");
    return result;
  }
}

}  // namespace

std::vector<PipelineJobResult> RunPipelineJobs(
    const std::vector<PipelineJob>& jobs,
    const PipelineRunnerOptions& options) {
  std::vector<PipelineJobResult> results(jobs.size());
  if (jobs.empty()) return results;
  // One dynamically-claimed pool task per job, so a single expensive job
  // never serializes the jobs queued behind it. Each body writes only
  // its own result slot, and a job's numbers are deterministic on their
  // own (sources are seeded/rewindable, kernels are thread-count
  // invariant), so the batch output is independent of the worker count
  // and of which worker ran which job.
  ParallelOptions parallel;
  parallel.num_threads = options.num_workers;
  parallel.min_parallel_items = 2;
  ParallelForEach(
      0, jobs.size(), [&](size_t i) { results[i] = RunOneJob(jobs[i]); },
      parallel);
  return results;
}

Result<std::vector<PipelineJob>> MakePerShardJobs(
    const std::string& manifest_path, const PipelineJob& prototype) {
  RR_ASSIGN_OR_RETURN(const data::ShardManifest manifest,
                      data::ReadShardManifest(manifest_path));
  return MakePerShardJobs(manifest, data::ManifestDirectory(manifest_path),
                          prototype);
}

std::vector<PipelineJob> MakePerShardJobs(const data::ShardManifest& manifest,
                                          const std::string& directory,
                                          const PipelineJob& prototype) {
  std::vector<PipelineJob> jobs;
  jobs.reserve(manifest.shards.size());
  for (size_t s = 0; s < manifest.shards.size(); ++s) {
    PipelineJob job;
    job.name = prototype.name + "/shard-" + std::to_string(s);
    job.noise = prototype.noise;
    job.attack = prototype.attack;
    job.retry = prototype.retry;
    // Shards are ordinary sealed column stores, so each job opens its
    // shard file directly — the store's own header and block checksums
    // still guard it, and a missing/corrupt shard fails just this job.
    const std::string shard_path = directory + manifest.shards[s].relative_path;
    job.disguised = [shard_path]() -> Result<std::unique_ptr<RecordSource>> {
      RR_ASSIGN_OR_RETURN(OpenedRecordSource opened,
                          OpenRecordSource(shard_path));
      return std::move(opened.source);
    };
    jobs.push_back(std::move(job));
  }
  return jobs;
}

namespace {

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

/// OK iff the shard file matches the manifest's record of it (opens,
/// schema, row count, seal digest). The error message is the exclusion
/// reason, so it names the mismatch precisely.
Status ProbeShard(const std::string& shard_path,
                  const data::ShardManifest& manifest,
                  const data::ShardManifestEntry& entry,
                  const data::ColumnStoreReadOptions& probe_options) {
  Result<data::ColumnStoreReader> probe =
      data::ColumnStoreReader::Open(shard_path, probe_options);
  if (!probe.ok()) {
    // A shard recovery renamed aside is the common cause of a missing
    // file — say so when the quarantined copy is sitting right there.
    if (FileExists(shard_path + data::kQuarantineFileSuffix)) {
      return Status::FailedPrecondition(
          "shard was quarantined by recovery ('" + shard_path +
          data::kQuarantineFileSuffix + "'); " + probe.status().ToString());
    }
    return probe.status();
  }
  const data::ColumnStoreReader& reader = probe.value();
  if (reader.attribute_names() != manifest.column_names) {
    return Status::InvalidArgument("shard schema does not match the manifest");
  }
  if (reader.num_records() != entry.row_count) {
    return Status::InvalidArgument(
        "shard holds " + std::to_string(reader.num_records()) +
        " records where the manifest promises " +
        std::to_string(entry.row_count));
  }
  if (data::ComputeShardSealDigest(reader) != entry.seal_digest) {
    return Status::InvalidArgument(
        "shard seal digest does not match the manifest (resealed or "
        "swapped shard file)");
  }
  return Status::OK();
}

}  // namespace

std::string PerShardJobSet::DegradedSummary() const {
  if (excluded.empty()) return "";
  std::string summary =
      "degraded sweep: excluded " + std::to_string(excluded.size()) + " of " +
      std::to_string(total_shards) + " shards (" +
      std::to_string(excluded_rows) + " of " + std::to_string(total_rows) +
      " rows not covered):";
  for (const ShardExclusion& exclusion : excluded) {
    summary += "\n  shard " + std::to_string(exclusion.shard_index) + " ('" +
               exclusion.shard_path + "', rows [" +
               std::to_string(exclusion.row_begin) + ", " +
               std::to_string(exclusion.row_begin + exclusion.row_count) +
               ")): " + exclusion.reason;
  }
  return summary;
}

Result<PerShardJobSet> MakePerShardJobsDegraded(
    const std::string& manifest_path, const PipelineJob& prototype,
    data::ColumnStoreReadOptions probe_options) {
  RR_ASSIGN_OR_RETURN(const data::ShardManifest manifest,
                      data::ReadShardManifest(manifest_path));
  const std::string directory = data::ManifestDirectory(manifest_path);
  // Build jobs exactly the way the non-degraded decomposition does (same
  // names, same factories — a healthy store yields the identical batch),
  // then keep only the shards that pass the probe.
  std::vector<PipelineJob> all_jobs =
      MakePerShardJobs(manifest, directory, prototype);
  PerShardJobSet set;
  set.total_shards = manifest.shards.size();
  set.total_rows = manifest.num_records;
  for (size_t s = 0; s < manifest.shards.size(); ++s) {
    const data::ShardManifestEntry& entry = manifest.shards[s];
    const std::string shard_path = directory + entry.relative_path;
    m_shard_probes.Add(1);
    const Status probed = ProbeShard(shard_path, manifest, entry,
                                     probe_options);
    if (probed.ok()) {
      set.jobs.push_back(std::move(all_jobs[s]));
      set.shard_of_job.push_back(s);
      continue;
    }
    ShardExclusion exclusion;
    exclusion.shard_index = s;
    exclusion.shard_path = shard_path;
    exclusion.row_begin = entry.row_begin;
    exclusion.row_count = entry.row_count;
    exclusion.reason = probed.ToString();
    set.excluded_rows += entry.row_count;
    m_shards_excluded.Add(1);
    RR_LOG(kWarning) << "degraded sweep: excluding shard "
                     << exclusion.shard_index << " ('" << exclusion.shard_path
                     << "'): " << exclusion.reason;
    set.excluded.push_back(std::move(exclusion));
  }
  return set;
}

}  // namespace pipeline
}  // namespace randrecon
