#include "pipeline/runner.h"

#include "common/parallel.h"
#include "common/stopwatch.h"
#include "data/shard_store.h"
#include "pipeline/source_factory.h"

namespace randrecon {
namespace pipeline {
namespace {

PipelineJobResult RunOneJobOrThrow(const PipelineJob& job) {
  PipelineJobResult result;
  result.name = job.name;
  Stopwatch stopwatch;
  auto finish = [&](Status status) {
    result.status = std::move(status);
    result.elapsed_seconds = stopwatch.ElapsedSeconds();
    return result;
  };

  if (!job.disguised) {
    return finish(
        Status::InvalidArgument("PipelineJob: no disguised source factory"));
  }
  Result<std::unique_ptr<RecordSource>> disguised = job.disguised();
  if (!disguised.ok()) return finish(disguised.status());

  std::unique_ptr<RecordSource> reference;
  if (job.reference) {
    Result<std::unique_ptr<RecordSource>> made = job.reference();
    if (!made.ok()) return finish(made.status());
    reference = std::move(made).value();
  }

  NullChunkSink null_sink;
  ChunkSink* sink = job.sink != nullptr ? job.sink.get() : &null_sink;

  const StreamingAttackPipeline pipeline(job.attack);
  Result<StreamingAttackReport> report = pipeline.Run(
      disguised.value().get(), job.noise, sink, reference.get());
  if (!report.ok()) return finish(report.status());
  result.report = std::move(report).value();
  return finish(Status::OK());
}

/// The documented isolation contract covers user-supplied factories and
/// sinks too: an exception escaping one job (e.g. bad_alloc materializing
/// a huge source) must fail that job, not reach the thread pool's
/// catch-all abort or escape RunPipelineJobs.
PipelineJobResult RunOneJob(const PipelineJob& job) {
  try {
    return RunOneJobOrThrow(job);
  } catch (const std::exception& e) {
    PipelineJobResult result;
    result.name = job.name;
    result.status = Status::FailedPrecondition(
        std::string("PipelineJob: uncaught exception: ") + e.what());
    return result;
  } catch (...) {
    PipelineJobResult result;
    result.name = job.name;
    result.status =
        Status::FailedPrecondition("PipelineJob: uncaught non-std exception");
    return result;
  }
}

}  // namespace

std::vector<PipelineJobResult> RunPipelineJobs(
    const std::vector<PipelineJob>& jobs,
    const PipelineRunnerOptions& options) {
  std::vector<PipelineJobResult> results(jobs.size());
  if (jobs.empty()) return results;
  // One dynamically-claimed pool task per job, so a single expensive job
  // never serializes the jobs queued behind it. Each body writes only
  // its own result slot, and a job's numbers are deterministic on their
  // own (sources are seeded/rewindable, kernels are thread-count
  // invariant), so the batch output is independent of the worker count
  // and of which worker ran which job.
  ParallelOptions parallel;
  parallel.num_threads = options.num_workers;
  parallel.min_parallel_items = 2;
  ParallelForEach(
      0, jobs.size(), [&](size_t i) { results[i] = RunOneJob(jobs[i]); },
      parallel);
  return results;
}

Result<std::vector<PipelineJob>> MakePerShardJobs(
    const std::string& manifest_path, const PipelineJob& prototype) {
  RR_ASSIGN_OR_RETURN(const data::ShardManifest manifest,
                      data::ReadShardManifest(manifest_path));
  return MakePerShardJobs(manifest, data::ManifestDirectory(manifest_path),
                          prototype);
}

std::vector<PipelineJob> MakePerShardJobs(const data::ShardManifest& manifest,
                                          const std::string& directory,
                                          const PipelineJob& prototype) {
  std::vector<PipelineJob> jobs;
  jobs.reserve(manifest.shards.size());
  for (size_t s = 0; s < manifest.shards.size(); ++s) {
    PipelineJob job;
    job.name = prototype.name + "/shard-" + std::to_string(s);
    job.noise = prototype.noise;
    job.attack = prototype.attack;
    // Shards are ordinary sealed column stores, so each job opens its
    // shard file directly — the store's own header and block checksums
    // still guard it, and a missing/corrupt shard fails just this job.
    const std::string shard_path = directory + manifest.shards[s].relative_path;
    job.disguised = [shard_path]() -> Result<std::unique_ptr<RecordSource>> {
      RR_ASSIGN_OR_RETURN(OpenedRecordSource opened,
                          OpenRecordSource(shard_path));
      return std::move(opened.source);
    };
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace pipeline
}  // namespace randrecon
